// Translate walks the paper's first use case (§3) verbosely: the full
// Table 2 error scenario on the example Cisco configuration, printing
// every prompt of the fast automated loop and the slow human loop, then
// the verified Juniper output.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	res, err := repro.Translate(repro.ExampleCiscoConfig(), repro.TranslateOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Verified Prompt Programming: Cisco -> Juniper ===")
	for i, rec := range res.Transcript {
		tag := "AUTO "
		if rec.Kind == core.Human {
			tag = "HUMAN"
		}
		fmt.Printf("%2d %s [%s]\n   %s\n", i+1, tag, rec.Stage, oneLine(rec.Prompt))
	}
	if len(res.PuntedFindings) > 0 {
		fmt.Println("\nFindings the automated loop punted to the human:")
		for _, p := range res.PuntedFindings {
			fmt.Println("  -", p)
		}
	}
	fmt.Println()
	fmt.Println(repro.Summary("translation", res))
	fmt.Println("\n=== Final verified Juniper configuration ===")
	fmt.Println(res.Configs["translation"])
}

func oneLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
