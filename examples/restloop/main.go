// Restloop runs the translation pipeline with the verification suite
// behind the REST wrapper: it starts an in-process batfishd, points the
// engine's verifier at it over HTTP, and runs the same §3 experiment —
// demonstrating that the loop is agnostic to where the verifiers live.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"repro"
	"repro/internal/batfish"
	"repro/internal/batfish/rest"
)

func main() {
	// Serve the suite exactly as cmd/batfishd would.
	srv := httptest.NewServer(rest.NewHandler())
	defer srv.Close()
	fmt.Printf("verification suite listening at %s\n", srv.URL)

	client := rest.NewClient(srv.URL)
	if err := client.Health(); err != nil {
		log.Fatal(err)
	}

	res, err := repro.Translate(repro.ExampleCiscoConfig(), repro.TranslateOptions{
		Seed:     1,
		Verifier: client, // every check is an HTTP round trip
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.Summary("translation via REST verifier", res))

	// The same endpoints are callable directly, e.g. SearchRoutePolicies:
	// which routes carrying the provider community does the verified
	// to_provider policy still accept? (Exactly the our-networks routes —
	// the witness shows one.)
	result, err := client.Search(res.Configs["translation"], batfish.SearchQuery{
		Policy: "to_provider",
		Action: "permit",
		Constraints: batfish.RouteConstraints{
			HasCommunities: []string{"65001:100"},
			Protocol:       "any",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search: permits provider-tagged routes? found=%v witness=%q\n",
		result.Found, result.Witness)
}
