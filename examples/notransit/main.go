// Notransit walks the paper's second use case (§4): synthesize Cisco
// configurations for the 7-router star of Figure 4 implementing the
// no-transit policy via local per-router specifications, ending with the
// whole-network BGP simulation as the global check.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/core"
)

func main() {
	topo, description, err := repro.StarTopology(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Figure 4 star topology (%d routers) ===\n", len(topo.Routers))
	fmt.Println(description)

	res, err := repro.SynthesizeNoTransit(repro.SynthesizeOptions{Routers: 7, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Transcript ===")
	for i, rec := range res.Transcript {
		tag := "AUTO "
		if rec.Kind == core.Human {
			tag = "HUMAN"
		}
		fmt.Printf("%2d %s [%s] %s\n", i+1, tag, rec.Stage, oneLine(rec.Prompt))
	}
	fmt.Println()
	fmt.Println(repro.Summary("no-transit", res))

	fmt.Println("\n=== Final verified configurations ===")
	names := make([]string, 0, len(res.Configs))
	for name := range res.Configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("--- %s.cfg ---\n%s\n", name, res.Configs[name])
	}
}

func oneLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}
