// Quickstart: translate the bundled Cisco configuration to Juniper under
// Verified Prompt Programming and print the leverage — the smallest
// possible use of the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	res, err := repro.Translate(repro.ExampleCiscoConfig(), repro.TranslateOptions{})
	if err != nil {
		log.Fatal(err)
	}
	automated, human, leverage := repro.Leverage(res)
	fmt.Printf("verified: %v\n", res.Verified)
	fmt.Printf("automated prompts: %d\n", automated)
	fmt.Printf("human prompts:     %d\n", human)
	fmt.Printf("leverage:          %.1fX\n", leverage)
	fmt.Println("\nFinal Juniper configuration:")
	fmt.Println(res.Configs["translation"])
}
