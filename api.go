package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/batfish"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/exampledata"
	"repro/internal/llm"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Result re-exports the engine result type.
type Result = core.Result

// Verifier re-exports the verification-suite interface, so callers can
// plug the REST client (internal/batfish/rest.Client) or a custom suite.
type Verifier = core.Verifier

// TranslateOptions configures Translate.
type TranslateOptions struct {
	// Seed drives the simulated LLM's stochastic choices (default 1).
	Seed int64
	// Verifier overrides the in-process suite (e.g. a REST client).
	Verifier Verifier
	// ErrorClasses restricts the injected translation errors; nil injects
	// the paper's full Table 2 scenario.
	ErrorClasses []llm.TranslateError
	// DisableVerifierCache turns off the incremental verification cache,
	// restoring the seed behaviour of re-parsing and re-verifying the
	// translation on every iteration.
	DisableVerifierCache bool
	// CacheDir mounts a durable disk tier under the verification cache:
	// results persist across process restarts, shared by every run —
	// translation or synthesis — pointed at the same directory. An
	// unusable directory is an error; ignored under DisableVerifierCache.
	CacheDir string
	// CheckpointPath turns on crash checkpoints: the repair loop snapshots
	// its progress to this file (atomically) every iteration. With Resume,
	// a run killed mid-loop restarts from the snapshot and produces a
	// byte-identical final transcript.
	CheckpointPath string
	// Resume continues the run CheckpointPath describes; a missing file
	// starts fresh, a checkpoint from different run coordinates (seed,
	// error classes, input) is an error.
	Resume bool
	// Metrics, when set, is the registry the run's instruments — cache
	// hit/miss counters, transport counters, dispatch histograms — register
	// into, for scraping via obs.Handler/obs.Serve. Observability only:
	// transcripts and results are byte-identical with or without it.
	Metrics *obs.Registry
	// Trace, when set, receives the run's structured trace events as JSONL
	// spans (see internal/obs: llm_call, local_check, global_check,
	// batch_rpc, cache and checkpoint events). Observability only.
	Trace *obs.Tracer
}

// Translate runs the paper's first use case (§3): translate a Cisco
// configuration to Juniper under Verified Prompt Programming and return
// the verified result with its transcript and leverage.
func Translate(ciscoConfig string, opts TranslateOptions) (*Result, error) {
	cfg := llm.DefaultTranslateConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.ErrorClasses != nil {
		cfg.Inject = map[llm.TranslateError]bool{}
		for _, e := range opts.ErrorClasses {
			cfg.Inject[e] = true
		}
	}
	copts := core.TranslateOptions{
		Model:        llm.NewTranslator(cfg),
		Verifier:     opts.Verifier,
		DisableCache: opts.DisableVerifierCache,
		Metrics:      opts.Metrics,
		Trace:        opts.Trace,
	}
	if opts.CacheDir != "" && !opts.DisableVerifierCache {
		d, err := durable.Open(opts.CacheDir, durable.Options{})
		if err != nil {
			return nil, err
		}
		copts.DurableCache = d
	}
	if opts.CheckpointPath != "" {
		copts.Checkpoint = &core.CheckpointOptions{
			Path:   opts.CheckpointPath,
			Resume: opts.Resume,
			RunKey: runKey("translate", cfg.Seed, opts.ErrorClasses, ciscoConfig),
		}
	}
	return core.Translate(ciscoConfig, copts)
}

// runKey derives a stable identity for a run's coordinates, recorded in
// its checkpoint so a resume into different coordinates is refused instead
// of silently forking the run.
func runKey(parts ...interface{}) string {
	data, _ := json.Marshal(parts)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ExampleCiscoConfig returns the bundled Cisco configuration used by the
// paper-scale translation experiments.
func ExampleCiscoConfig() string { return exampledata.CiscoExample }

// SynthesizeOptions configures Synthesize and SynthesizeNoTransit.
type SynthesizeOptions struct {
	// Routers is the star size n for SynthesizeNoTransit (default 7, the
	// paper's network); ignored by Synthesize, which takes a topology.
	Routers int
	// Seed drives the simulated LLM (default 1).
	Seed int64
	// Verifier overrides the in-process suite.
	Verifier Verifier
	// DisableIIP ablates the initial instruction prompt database (§4.2).
	DisableIIP bool
	// Parallelism bounds the per-router repair worker pool; values <= 1
	// run the paper's sequential loop. Per-router transcripts merge
	// deterministically in topology order, so the accounting is
	// reproducible either way and matches the sequential loop on runs
	// that converge (iteration caps and human give-ups are scoped per
	// router in parallel, per run sequentially).
	Parallelism int
	// SuiteParallelism bounds the worker pool for the independent checks
	// inside one pipeline iteration (per-router syntax/topology scans and
	// per-requirement policy checks). The lowest topology-order finding
	// wins deterministically, so transcripts are byte-identical to the
	// sequential scan; values <= 1 scan sequentially. This is the lever
	// that speeds up the star hub, where all repair concentrates on one
	// router.
	SuiteParallelism int
	// DisableVerifierCache turns off the incremental verification cache,
	// restoring the paper's behaviour of re-verifying every router on
	// every iteration.
	DisableVerifierCache bool
	// FullConfigPipeline disables the stanza-level incremental pipeline:
	// the simulated LLM re-prints every configuration section from
	// scratch instead of reusing unchanged stanzas, and the default
	// in-process verifier parses whole configurations instead of
	// reassembling cached stanza fragments. Transcripts and
	// configurations are byte-identical either way — this is the baseline
	// the equivalence suite and benchmarks compare the incremental
	// pipeline against. Ignored when Verifier is set (a custom verifier
	// brings its own parse strategy).
	FullConfigPipeline bool
	// ErrorPlan replaces the simulated LLM's default error scenario with
	// an attachment-keyed injection plan (see internal/fuzz): which error
	// classes fire at which (router, external-neighbor, direction) site.
	// Nil keeps the paper's default per-router scenario; a non-nil empty
	// plan injects nothing. This is the seam cofuzz counterexamples
	// replay through (`cosynth -errors plan.json`).
	ErrorPlan []llm.SiteErrors
	// CompositionalGlobalCheck replaces the final whole-network BGP
	// simulation with the verified-local-specs fast path plus seeded
	// sampled falsification (the scale configuration; see
	// core.GlobalCheckCompositional). The default keeps the paper's full
	// simulation. Falls back to the simulation automatically on topologies
	// whose local spec coverage is incomplete.
	CompositionalGlobalCheck bool
	// FalsificationSeed keys the compositional check's falsification
	// sampling (0 = seed 1). Ignored without CompositionalGlobalCheck.
	FalsificationSeed int64
	// CacheDir mounts a durable disk tier under the verification cache:
	// results persist across process restarts, shared by every run pointed
	// at the same directory (including concurrent cosynth/cofuzz processes
	// and batfishd shards mounting it with -cache-dir). An unusable
	// directory is an error; ignored under DisableVerifierCache.
	CacheDir string
	// CheckpointPath turns on crash checkpoints: sequential runs snapshot
	// the repair loop every iteration, parallel runs snapshot after every
	// completed router. With Resume, a run killed mid-loop restarts from
	// the snapshot and produces a byte-identical final transcript.
	CheckpointPath string
	// Resume continues the run CheckpointPath describes; a missing file
	// starts fresh, a checkpoint from different run coordinates (topology,
	// seed, error plan, parallelism) is an error.
	Resume bool
	// Metrics, when set, is the registry the run's instruments — cache
	// hit/miss counters, transport counters, dispatch histograms — register
	// into, for scraping via obs.Handler/obs.Serve. Observability only:
	// transcripts and results are byte-identical with or without it.
	Metrics *obs.Registry
	// Trace, when set, receives the run's structured trace events as JSONL
	// spans (see internal/obs: llm_call, local_check, global_check,
	// batch_rpc, cache and checkpoint events). Observability only.
	Trace *obs.Tracer
}

// Synthesize runs the VPP synthesis pipeline on an arbitrary topology —
// any scenario from the registry (see Topologies) or a hand-built
// dictionary — implementing the no-transit policy via local per-router
// specifications: hub-centric on stars, attachment-point on other graphs.
func Synthesize(topo *topology.Topology, opts SynthesizeOptions) (*Result, error) {
	cfg := llm.DefaultSynthConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	cfg.Plan = opts.ErrorPlan
	cfg.FullRender = opts.FullConfigPipeline
	verifier := opts.Verifier
	if opts.FullConfigPipeline && verifier == nil {
		verifier = core.LocalVerifier{Parses: batfish.NewWholeParseCache()}
	}
	mode := core.GlobalCheckSimulated
	if opts.CompositionalGlobalCheck {
		mode = core.GlobalCheckCompositional
	}
	copts := core.SynthOptions{
		Model:            llm.NewSynthesizer(cfg),
		Verifier:         verifier,
		NoIIP:            opts.DisableIIP,
		Parallelism:      opts.Parallelism,
		SuiteParallelism: opts.SuiteParallelism,
		DisableCache:     opts.DisableVerifierCache,
		GlobalCheck:      mode,
		GlobalCheckSeed:  opts.FalsificationSeed,
		Metrics:          opts.Metrics,
		Trace:            opts.Trace,
	}
	if opts.CacheDir != "" && !opts.DisableVerifierCache {
		d, err := durable.Open(opts.CacheDir, durable.Options{})
		if err != nil {
			return nil, err
		}
		copts.DurableCache = d
	}
	if opts.CheckpointPath != "" {
		copts.Checkpoint = &core.CheckpointOptions{
			Path:   opts.CheckpointPath,
			Resume: opts.Resume,
			RunKey: runKey("synthesize", topo.Name, len(topo.Routers), cfg.Seed, cfg.Plan,
				opts.DisableIIP, opts.Parallelism > 1),
		}
	}
	return core.Synthesize(topo, copts)
}

// SynthesizeNoTransit runs the paper's second use case (§4): synthesize
// Cisco configurations for an n-router star network implementing the
// no-transit policy via local per-router specifications. It is a thin
// wrapper over Synthesize with the Figure 4 star topology.
func SynthesizeNoTransit(opts SynthesizeOptions) (*Result, error) {
	n := opts.Routers
	if n == 0 {
		n = 7
	}
	topo, err := netgen.Star(n)
	if err != nil {
		return nil, err
	}
	return Synthesize(topo, opts)
}

// StarTopology generates the Figure 4 star network description: the JSON
// dictionary and its machine-generated natural-language description.
// Unlike GenerateTopology, the size is not defaulted: n < 2 is an error.
func StarTopology(n int) (*topology.Topology, string, error) {
	topo, err := netgen.Star(n)
	if err != nil {
		return nil, "", err
	}
	return topo, netgen.Describe(topo), nil
}

// TopologyInfo describes one registered topology scenario.
type TopologyInfo struct {
	// Name identifies the scenario for GenerateTopology.
	Name string
	// Summary is a one-line description.
	Summary string
	// SizeHint documents the generator's size parameter.
	SizeHint string
	// DefaultSize is the paper-scale default for the parameter.
	DefaultSize int
}

// Topologies lists the registered topology scenarios the synthesis
// engine can target: star, ring, full-mesh, and fat-tree.
func Topologies() []TopologyInfo {
	var out []TopologyInfo
	for _, s := range netgen.Scenarios() {
		out = append(out, TopologyInfo{Name: s.Name, Summary: s.Summary,
			SizeHint: s.SizeHint, DefaultSize: s.DefaultSize})
	}
	return out
}

// GenerateTopology builds a registered scenario's topology: the JSON
// dictionary and its machine-generated natural-language description.
// size <= 0 uses the scenario's default.
func GenerateTopology(name string, size int) (*topology.Topology, string, error) {
	topo, err := netgen.Generate(name, size)
	if err != nil {
		return nil, "", err
	}
	return topo, netgen.Describe(topo), nil
}

// Leverage summarizes a run in the paper's terms.
func Leverage(r *Result) (automated, human int, leverage float64) {
	automated, human = r.Transcript.Counts()
	return automated, human, r.Leverage()
}

// Summary renders the one-line result the paper reports per use case.
func Summary(name string, r *Result) string {
	a, h, l := Leverage(r)
	status := "verified"
	if !r.Verified {
		status = "NOT verified"
	}
	return fmt.Sprintf("%s: %d automated prompts, %d human prompts, leverage %.1fX, %s",
		name, a, h, l, status)
}
