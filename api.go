package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exampledata"
	"repro/internal/llm"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// Result re-exports the engine result type.
type Result = core.Result

// Verifier re-exports the verification-suite interface, so callers can
// plug the REST client (internal/batfish/rest.Client) or a custom suite.
type Verifier = core.Verifier

// TranslateOptions configures Translate.
type TranslateOptions struct {
	// Seed drives the simulated LLM's stochastic choices (default 1).
	Seed int64
	// Verifier overrides the in-process suite (e.g. a REST client).
	Verifier Verifier
	// ErrorClasses restricts the injected translation errors; nil injects
	// the paper's full Table 2 scenario.
	ErrorClasses []llm.TranslateError
}

// Translate runs the paper's first use case (§3): translate a Cisco
// configuration to Juniper under Verified Prompt Programming and return
// the verified result with its transcript and leverage.
func Translate(ciscoConfig string, opts TranslateOptions) (*Result, error) {
	cfg := llm.DefaultTranslateConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.ErrorClasses != nil {
		cfg.Inject = map[llm.TranslateError]bool{}
		for _, e := range opts.ErrorClasses {
			cfg.Inject[e] = true
		}
	}
	return core.Translate(ciscoConfig, core.TranslateOptions{
		Model:    llm.NewTranslator(cfg),
		Verifier: opts.Verifier,
	})
}

// ExampleCiscoConfig returns the bundled Cisco configuration used by the
// paper-scale translation experiments.
func ExampleCiscoConfig() string { return exampledata.CiscoExample }

// SynthesizeOptions configures SynthesizeNoTransit.
type SynthesizeOptions struct {
	// Routers is the star size n (default 7, the paper's network).
	Routers int
	// Seed drives the simulated LLM (default 1).
	Seed int64
	// Verifier overrides the in-process suite.
	Verifier Verifier
	// DisableIIP ablates the initial instruction prompt database (§4.2).
	DisableIIP bool
}

// SynthesizeNoTransit runs the paper's second use case (§4): synthesize
// Cisco configurations for an n-router star network implementing the
// no-transit policy via local per-router specifications.
func SynthesizeNoTransit(opts SynthesizeOptions) (*Result, error) {
	n := opts.Routers
	if n == 0 {
		n = 7
	}
	topo, err := netgen.Star(n)
	if err != nil {
		return nil, err
	}
	cfg := llm.DefaultSynthConfig()
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	return core.Synthesize(topo, core.SynthOptions{
		Model:    llm.NewSynthesizer(cfg),
		Verifier: opts.Verifier,
		NoIIP:    opts.DisableIIP,
	})
}

// StarTopology generates the Figure 4 star network description: the JSON
// dictionary and its machine-generated natural-language description.
func StarTopology(n int) (*topology.Topology, string, error) {
	topo, err := netgen.Star(n)
	if err != nil {
		return nil, "", err
	}
	return topo, netgen.Describe(topo), nil
}

// Leverage summarizes a run in the paper's terms.
func Leverage(r *Result) (automated, human int, leverage float64) {
	automated, human = r.Transcript.Counts()
	return automated, human, r.Leverage()
}

// Summary renders the one-line result the paper reports per use case.
func Summary(name string, r *Result) string {
	a, h, l := Leverage(r)
	status := "verified"
	if !r.Verified {
		status = "NOT verified"
	}
	return fmt.Sprintf("%s: %d automated prompts, %d human prompts, leverage %.1fX, %s",
		name, a, h, l, status)
}
