// The benchmark harness regenerates every table and figure of the paper's
// evaluation (the E1–E10 index in DESIGN.md). Each benchmark prints the
// regenerated rows once (via b.Logf, visible with -v or on shape
// mismatch) and reports the paper's headline quantities as custom metrics
// so `go test -bench=. -benchmem` reproduces the evaluation wholesale:
//
//	leverage            automated prompts per human prompt (§3.2: ~10, §4.2: 6)
//	automated-prompts   the fast-loop prompt count
//	human-prompts       the slow-loop prompt count
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/batfish"
	"repro/internal/batfish/rest"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/modularizer"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/suite"
)

// benchJSON emits one machine-readable result line per benchmark so CI
// and scripts can scrape the evaluation without parsing the Go benchmark
// format: `go test -bench=. | grep '^BENCH '` yields JSON objects.
func benchJSON(b *testing.B, metrics map[string]float64) {
	b.Helper()
	payload, err := json.Marshal(struct {
		Bench   string             `json:"bench"`
		Metrics map[string]float64 `json:"metrics"`
	}{Bench: b.Name(), Metrics: metrics})
	if err != nil {
		b.Fatal(err)
	}
	fmt.Printf("BENCH %s\n", payload)
}

// BenchmarkTable1RectificationPrompts (E1) regenerates the four sample
// translation rectification prompts of Table 1.
func BenchmarkTable1RectificationPrompts(b *testing.B) {
	var prompts []GeneratedPrompt
	var err error
	for i := 0; i < b.N; i++ {
		prompts, err = Table1RectificationPrompts()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range prompts {
		b.Logf("Table 1 [%s]: %s", p.Type, p.Prompt)
	}
	b.ReportMetric(float64(len(prompts)), "prompt-classes")
}

// BenchmarkTable2TranslationErrors (E2) regenerates Table 2: the eight
// error classes and whether generated prompts alone fixed each.
func BenchmarkTable2TranslationErrors(b *testing.B) {
	var rows []Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Table2TranslationErrors()
		if err != nil {
			b.Fatal(err)
		}
	}
	fixed := 0
	for _, r := range rows {
		b.Logf("Table 2: %-35s %-20s fixed=%v", r.Error, r.Type, r.FixedByAutomated)
		if r.FixedByAutomated {
			fixed++
		}
	}
	b.ReportMetric(float64(fixed), "fixed-by-automated")
	b.ReportMetric(float64(len(rows)-fixed), "needing-human")
}

// BenchmarkLeverageTranslation (E3) reproduces §3.2: the full error
// scenario, ~20 automated / 2 human prompts, leverage 10X.
func BenchmarkLeverageTranslation(b *testing.B) {
	var rep LeverageReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = ExperimentTranslationLeverage()
		if err != nil {
			b.Fatal(err)
		}
	}
	if !rep.Verified {
		b.Fatal("translation did not verify")
	}
	b.Logf("E3: %s (paper: ~20 automated / 2 human, 10X)", rep)
	reportLeverage(b, rep)
}

// BenchmarkTable3SynthesisPrompts (E4) regenerates Table 3's sample
// rectification prompts for local synthesis.
func BenchmarkTable3SynthesisPrompts(b *testing.B) {
	var prompts []GeneratedPrompt
	var err error
	for i := 0; i < b.N; i++ {
		prompts, err = Table3RectificationPrompts()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range prompts {
		b.Logf("Table 3 [%s]: %s", p.Type, p.Prompt)
	}
	b.ReportMetric(float64(len(prompts)), "prompt-classes")
}

// BenchmarkLeverageNoTransit (E5) reproduces §4.2: the 7-router star,
// 12 automated / 2 human prompts, leverage 6X.
func BenchmarkLeverageNoTransit(b *testing.B) {
	var rep LeverageReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = ExperimentNoTransitLeverage(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	if !rep.Verified {
		b.Fatal("synthesis did not verify")
	}
	b.Logf("E5: %s (paper: 12 automated / 2 human, 6X)", rep)
	reportLeverage(b, rep)
}

// BenchmarkFigure4StarTopology (E6) regenerates the Figure 4 star: the
// JSON dictionary plus the textual description the network generator
// emits.
func BenchmarkFigure4StarTopology(b *testing.B) {
	var txt string
	for i := 0; i < b.N; i++ {
		topo, err := netgen.Star(7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := topo.Marshal(); err != nil {
			b.Fatal(err)
		}
		txt = netgen.Describe(topo)
	}
	b.ReportMetric(float64(len(txt)), "description-bytes")
}

// BenchmarkAblationLocalVsGlobal (E7) contrasts local-spec prompting
// (converges, leverage 6X) with global-spec prompting (oscillates, never
// verifies) — §4.1's central lesson.
func BenchmarkAblationLocalVsGlobal(b *testing.B) {
	var local, global LeverageReport
	var err error
	for i := 0; i < b.N; i++ {
		local, global, err = AblationLocalVsGlobal(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("E7 local:  %s", local)
	b.Logf("E7 global: %s", global)
	if !local.Verified || global.Verified {
		b.Fatalf("shape violated: local verified=%v global verified=%v",
			local.Verified, global.Verified)
	}
	b.ReportMetric(local.Leverage, "local-leverage")
	b.ReportMetric(boolMetric(global.Verified), "global-verified")
}

// BenchmarkAblationIIP (E8) measures the initial-instruction-prompt
// database: without it, the common error classes reappear and cost extra
// automated corrections (§4.2).
func BenchmarkAblationIIP(b *testing.B) {
	var withIIP, withoutIIP LeverageReport
	var err error
	for i := 0; i < b.N; i++ {
		withIIP, withoutIIP, err = AblationIIP(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("E8 with IIP:    %s", withIIP)
	b.Logf("E8 without IIP: %s", withoutIIP)
	if withoutIIP.Automated <= withIIP.Automated {
		b.Fatalf("shape violated: IIP should save prompts (with=%d without=%d)",
			withIIP.Automated, withoutIIP.Automated)
	}
	b.ReportMetric(float64(withoutIIP.Automated-withIIP.Automated), "prompts-saved-by-iip")
}

// BenchmarkAblationHumanizer measures the humanizer (DESIGN.md ablation
// 3): raw verifier feedback shifts work to the human and drops leverage.
func BenchmarkAblationHumanizer(b *testing.B) {
	var humanized, raw LeverageReport
	var err error
	for i := 0; i < b.N; i++ {
		humanized, raw, err = AblationHumanizer()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("humanized: %s", humanized)
	b.Logf("raw:       %s", raw)
	if raw.Leverage >= humanized.Leverage {
		b.Fatalf("shape violated: humanized leverage %.1f <= raw %.1f",
			humanized.Leverage, raw.Leverage)
	}
	b.ReportMetric(humanized.Leverage, "humanized-leverage")
	b.ReportMetric(raw.Leverage, "raw-leverage")
}

// BenchmarkRESTVerifier (E9) runs the translation loop against the suite
// behind the REST wrapper and measures the round-trip overhead relative
// to the in-process suite.
func BenchmarkRESTVerifier(b *testing.B) {
	srv := httptest.NewServer(rest.NewHandler())
	defer srv.Close()
	client := rest.NewClient(srv.URL)
	var rep *core.Result
	for i := 0; i < b.N; i++ {
		model := llm.NewTranslator(llm.DefaultTranslateConfig())
		res, err := core.Translate(ExampleCiscoConfig(), core.TranslateOptions{
			Model: model, Verifier: client})
		if err != nil {
			b.Fatal(err)
		}
		rep = res
	}
	if !rep.Verified {
		b.Fatal("REST-backed translation did not verify")
	}
	a, h := rep.Transcript.Counts()
	b.ReportMetric(float64(a)/float64(h), "leverage")
}

// BenchmarkLeverageVsNetworkSize (E10) sweeps the star size: automated
// prompts grow with the router count while human prompts stay flat, so
// leverage grows with network size.
func BenchmarkLeverageVsNetworkSize(b *testing.B) {
	sizes := []int{3, 5, 7, 9, 11}
	for _, n := range sizes {
		n := n
		b.Run(fmt.Sprintf("star-%d", n), func(b *testing.B) {
			var rep LeverageReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = ExperimentNoTransitLeverage(n)
				if err != nil {
					b.Fatal(err)
				}
			}
			if !rep.Verified {
				b.Fatalf("star-%d did not verify", n)
			}
			b.Logf("E10: %s", rep)
			reportLeverage(b, rep)
		})
	}
}

func reportLeverage(b *testing.B, rep LeverageReport) {
	b.Helper()
	b.ReportMetric(rep.Leverage, "leverage")
	b.ReportMetric(float64(rep.Automated), "automated-prompts")
	b.ReportMetric(float64(rep.Human), "human-prompts")
	benchJSON(b, map[string]float64{
		"leverage":          rep.Leverage,
		"automated-prompts": float64(rep.Automated),
		"human-prompts":     float64(rep.Human),
		"verified":          boolMetric(rep.Verified),
	})
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkTopologyScenarios (E12, extension) sweeps the topology
// scenario registry: the same VPP loop converges on the ring, full mesh,
// and fat-tree with the attachment-point local specification, not just
// the paper's star.
func BenchmarkTopologyScenarios(b *testing.B) {
	for _, info := range Topologies() {
		info := info
		b.Run(info.Name, func(b *testing.B) {
			var rep LeverageReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = ExperimentTopologyLeverage(info.Name, info.DefaultSize, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			if !rep.Verified {
				b.Fatalf("%s did not verify", info.Name)
			}
			b.Logf("E12: %s", rep)
			reportLeverage(b, rep)
		})
	}
}

// BenchmarkParallelVsSequentialSynthesis (E13, extension) contrasts the
// sequential repair loop with the bounded worker pool on a 16-router full
// mesh and on the dual-homed ring, whose per-attachment obligations give
// each router two independent blocks of semantic work: per-router loops
// avoid the sequential loop's whole-network re-verification scans, so the
// parallel path wins wall-clock even on one CPU — and adds core
// parallelism on real hardware. The star is the adversarial case (all
// repair concentrates on the hub), which is why the dense graphs are the
// headline.
func BenchmarkParallelVsSequentialSynthesis(b *testing.B) {
	for _, sc := range []struct {
		scenario string
		size     int
	}{{"full-mesh", 16}, {"dual-homed", 8}} {
		sc := sc
		for _, par := range []int{1, 8} {
			par := par
			mode := "sequential"
			if par > 1 {
				mode = fmt.Sprintf("parallel-%d", par)
			}
			b.Run(fmt.Sprintf("%s-%d/%s", sc.scenario, sc.size, mode), func(b *testing.B) {
				var rep LeverageReport
				var err error
				for i := 0; i < b.N; i++ {
					rep, err = ExperimentTopologyLeverage(sc.scenario, sc.size, par)
					if err != nil {
						b.Fatal(err)
					}
				}
				// b.Elapsed() excludes pause/resume and setup, unlike the
				// manual wall-clock bracketing this replaced.
				elapsed := b.Elapsed()
				if !rep.Verified {
					b.Fatalf("%s-%d did not verify", sc.scenario, sc.size)
				}
				b.ReportMetric(rep.Leverage, "leverage")
				benchJSON(b, map[string]float64{
					"parallelism":       float64(par),
					"routers":           float64(sc.size),
					"wall-ms-per-run":   float64(elapsed.Milliseconds()) / float64(b.N),
					"leverage":          rep.Leverage,
					"automated-prompts": float64(rep.Automated),
					"human-prompts":     float64(rep.Human),
				})
			})
		}
	}
}

// BenchmarkIncrementalVerification (E14, extension) measures the
// incremental re-verification cache: cached vs uncached sequential
// synthesis on the 16-router full mesh (the re-scan-heavy case), the
// 16-router star (the hub-concentrated case), the dual-homed ring (two
// attachment-scoped obligation blocks per router), and the seeded random
// graph (mixed single-/dual-homing). The cached loop re-checks only the
// attachment-scoped units whose configuration the last prompt changed;
// transcripts are byte-identical either way (see
// TestAcceleratedSynthesisByteIdentical).
func BenchmarkIncrementalVerification(b *testing.B) {
	for _, sc := range []struct {
		scenario string
		size     int
	}{{"full-mesh", 16}, {"star", 16}, {"dual-homed", 8}, {"random", 12}} {
		sc := sc
		for _, cached := range []bool{false, true} {
			cached := cached
			mode := "uncached"
			if cached {
				mode = "cached"
			}
			b.Run(fmt.Sprintf("%s-%d/%s", sc.scenario, sc.size, mode), func(b *testing.B) {
				var res *core.Result
				for i := 0; i < b.N; i++ {
					topo, err := netgen.Generate(sc.scenario, sc.size)
					if err != nil {
						b.Fatal(err)
					}
					res, err = Synthesize(topo, SynthesizeOptions{
						DisableVerifierCache: !cached})
					if err != nil {
						b.Fatal(err)
					}
				}
				if !res.Verified {
					b.Fatalf("%s-%d did not verify", sc.scenario, sc.size)
				}
				wallMS := float64(b.Elapsed().Milliseconds()) / float64(b.N)
				b.ReportMetric(wallMS, "wall-ms-per-run")
				metrics := map[string]float64{
					"cached":          boolMetric(cached),
					"routers":         float64(sc.size),
					"wall-ms-per-run": wallMS,
				}
				if res.CacheStats != nil {
					metrics["cache-hits"] = float64(res.CacheStats.Hits)
					metrics["cache-misses"] = float64(res.CacheStats.Misses)
				}
				benchJSON(b, metrics)
			})
		}
	}
}

// BenchmarkBatchedRESTVerifier (E15, extension) contrasts the batched REST
// transport (protocol v2, carrying per-attachment requirement identities)
// with the seed's one-HTTP-call-per-check loop on the fat-tree and on the
// seeded random graph: with the cache and /v1/batch, each pipeline
// iteration costs at most one verification round-trip (plus one final
// global check per run), however many attachment-scoped checks it carries.
func BenchmarkBatchedRESTVerifier(b *testing.B) {
	srv := httptest.NewServer(rest.NewHandler())
	defer srv.Close()
	for _, scenario := range []string{"fat-tree", "random"} {
		info := TopologyInfo{Name: scenario}
		for _, t := range Topologies() {
			if t.Name == scenario {
				info = t
			}
		}
		for _, batched := range []bool{false, true} {
			batched := batched
			mode := "per-check"
			if batched {
				mode = "batched"
			}
			b.Run(fmt.Sprintf("%s/%s", info.Name, mode), func(b *testing.B) {
				client := rest.NewClient(srv.URL)
				var res *core.Result
				for i := 0; i < b.N; i++ {
					topo, err := netgen.Generate(info.Name, info.DefaultSize)
					if err != nil {
						b.Fatal(err)
					}
					res, err = Synthesize(topo, SynthesizeOptions{
						Verifier:             client,
						DisableVerifierCache: !batched,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if !res.Verified {
					b.Fatalf("%s REST run did not verify", info.Name)
				}
				callsPerRun := float64(client.Calls()) / float64(b.N)
				wallMS := float64(b.Elapsed().Milliseconds()) / float64(b.N)
				b.ReportMetric(callsPerRun, "rest-calls-per-run")
				metrics := map[string]float64{
					"batched":            boolMetric(batched),
					"rest-calls-per-run": callsPerRun,
					"wall-ms-per-run":    wallMS,
				}
				if res.CacheStats != nil {
					iters := float64(res.CacheStats.Prefetches)
					metrics["iterations-per-run"] = iters
					// The acceptance shape: ≤ 1 verification round-trip per
					// iteration, plus the final global check.
					if callsPerRun > iters+1 {
						b.Fatalf("shape violated: %.1f calls for %.0f iterations",
							callsPerRun, iters)
					}
				}
				benchJSON(b, metrics)
			})
		}
	}
}

// BenchmarkShardedRESTVerifier (E16, extension) fans the batched suite
// out across batfishd shards: synthesis on the fat-tree and the seeded
// random graph against a consistent-hash ring of 1 vs 3 in-process shard
// servers. The accounting contract generalizes PR 2's: at most one
// verification round-trip per iteration *per shard*, issued in parallel,
// plus the final global check — so total REST calls may grow with the
// shard count while each shard's queue shrinks.
func BenchmarkShardedRESTVerifier(b *testing.B) {
	for _, scenario := range []string{"fat-tree", "random"} {
		info := TopologyInfo{Name: scenario}
		for _, t := range Topologies() {
			if t.Name == scenario {
				info = t
			}
		}
		for _, nshards := range []int{1, 3} {
			nshards := nshards
			b.Run(fmt.Sprintf("%s/shards-%d", info.Name, nshards), func(b *testing.B) {
				endpoints := make([]string, nshards)
				for i := range endpoints {
					srv := httptest.NewServer(rest.NewHandler())
					defer srv.Close()
					endpoints[i] = srv.URL
				}
				client, err := rest.NewShardedClient(endpoints)
				if err != nil {
					b.Fatal(err)
				}
				var res *core.Result
				for i := 0; i < b.N; i++ {
					topo, err := netgen.Generate(info.Name, info.DefaultSize)
					if err != nil {
						b.Fatal(err)
					}
					res, err = Synthesize(topo, SynthesizeOptions{Verifier: client})
					if err != nil {
						b.Fatal(err)
					}
				}
				if !res.Verified {
					b.Fatalf("%s sharded run did not verify", info.Name)
				}
				callsPerRun := float64(client.Calls()) / float64(b.N)
				wallMS := float64(b.Elapsed().Milliseconds()) / float64(b.N)
				b.ReportMetric(callsPerRun, "rest-calls-per-run")
				b.ReportMetric(float64(nshards), "shards")
				metrics := map[string]float64{
					"shards":             float64(nshards),
					"rest-calls-per-run": callsPerRun,
					"wall-ms-per-run":    wallMS,
				}
				if res.CacheStats != nil {
					iters := float64(res.CacheStats.Prefetches)
					metrics["iterations-per-run"] = iters
					// The sharded acceptance shape: ≤ 1 round-trip per
					// iteration per shard, plus the final global check.
					if callsPerRun > iters*float64(nshards)+1 {
						b.Fatalf("shape violated: %.1f calls for %.0f iterations on %d shards",
							callsPerRun, iters, nshards)
					}
				}
				benchJSON(b, metrics)
			})
		}
	}
}

// BenchmarkFuzzCampaignThroughput (E17, extension) measures the fuzz
// campaign engine's case throughput: the same deterministic
// (random × sizes × seeds) sweep — every case a full synthesis pipeline
// run under a seeded error plan — on 1 worker vs 8. The sweep must pass
// (the default alphabet is the repairable set), so the benchmark doubles
// as a campaign regression gate; cases/s is the headline metric the
// campaign budget trades against coverage.
func BenchmarkFuzzCampaignThroughput(b *testing.B) {
	for _, workers := range []int{1, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var rep *fuzz.Report
			for i := 0; i < b.N; i++ {
				c := fuzz.Campaign{
					Family:  "random",
					Sizes:   []int{6, 8, 10, 12},
					Seeds:   4,
					Workers: workers,
				}
				var err error
				rep, err = c.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if rep.Failures != 0 {
					b.Fatalf("campaign failed %d cases: %+v", rep.Failures, rep.Counterexample)
				}
			}
			wallMS := float64(b.Elapsed().Milliseconds()) / float64(b.N)
			cps := 0.0
			if wallMS > 0 {
				cps = float64(rep.Cases) / (wallMS / 1000)
			}
			b.ReportMetric(cps, "cases-per-sec")
			b.ReportMetric(float64(rep.Cases), "cases")
			benchJSON(b, map[string]float64{
				"workers":          float64(workers),
				"cases":            float64(rep.Cases),
				"planned-errors":   float64(rep.PlannedErrors),
				"total-iterations": float64(rep.TotalIterations),
				"wall-ms-per-run":  wallMS,
				"cases-per-sec":    cps,
			})
		})
	}
}

// BenchmarkScaleWall (E18, extension) sweeps the scale wall: synthesis
// wall-clock across (routers × parallelism × global-check mode). The
// paper-faithful configuration — sequential repair plus the full
// whole-network BGP simulation — is the baseline; the scale configuration
// runs the forked per-router workers with the compositional global check.
// On the dense 16-router full mesh the full simulation IS the wall (the
// CPU profile puts batfish.(*Sim).step at ~60% of the run), so the
// mixed cells isolate how much each lever contributes; the random-200
// rows take the same sweep two hundred routers up, where the sequential
// simulated baseline is no longer worth benchmarking per iteration.
// Every compositional cell asserts the fast path actually ran (no silent
// fallback), and verdict agreement with the simulation is pinned
// scenario-by-scenario in TestCompositionalAgreesWithSimulation.
func BenchmarkScaleWall(b *testing.B) {
	cells := []struct {
		scenario      string
		size          int
		parallelism   int
		compositional bool
		label         string
	}{
		// The headline pair: the paper-faithful loop vs the scale
		// configuration on the dense mesh.
		{"full-mesh", 16, 1, false, "sequential"},
		{"full-mesh", 16, 8, true, "parallel-8"},
		// Mixed cells: one lever at a time.
		{"full-mesh", 16, 1, true, "sequential-compositional"},
		{"full-mesh", 16, 8, false, "parallel-8-simulated"},
		// 100× the paper's scale (the paper's star has 7 routers; these
		// graphs have hundreds of routers and attachments).
		{"fat-tree", 8, 8, true, "parallel-8"},
		{"random", 200, 8, false, "parallel-8-simulated"},
		{"random", 200, 8, true, "parallel-8"},
	}
	for _, c := range cells {
		c := c
		b.Run(fmt.Sprintf("%s-%d/%s", c.scenario, c.size, c.label), func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				topo, err := netgen.Generate(c.scenario, c.size)
				if err != nil {
					b.Fatal(err)
				}
				res, err = Synthesize(topo, SynthesizeOptions{
					Parallelism:              c.parallelism,
					CompositionalGlobalCheck: c.compositional,
					FalsificationSeed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if !res.Verified {
				b.Fatalf("%s-%d did not verify", c.scenario, c.size)
			}
			wantMethod := "simulated"
			if c.compositional {
				wantMethod = "compositional"
			}
			if res.Global == nil || res.Global.Method != wantMethod {
				b.Fatalf("global method = %+v, want %s", res.Global, wantMethod)
			}
			wallMS := float64(b.Elapsed().Milliseconds()) / float64(b.N)
			b.ReportMetric(wallMS, "wall-ms-per-run")
			a, h := res.Transcript.Counts()
			benchJSON(b, map[string]float64{
				"routers":           float64(len(res.Configs)),
				"parallelism":       float64(c.parallelism),
				"compositional":     boolMetric(c.compositional),
				"wall-ms-per-run":   wallMS,
				"automated-prompts": float64(a),
				"human-prompts":     float64(h),
			})
		})
	}
}

// BenchmarkWarmRestart (E19, extension) measures what the durable cache
// buys a restarted process: the same no-transit synthesis runs twice
// against one cache directory — once cold (empty disk tier) and once
// warm (a fresh in-memory cache, as after a crash or redeploy, but a
// populated disk tier). The warm run must answer part of its
// verification load from disk and spend fewer backend verifier calls
// (Misses) while producing the identical transcript; the cold/warm
// wall-clock pair is the headline. Note: E18 is BenchmarkScaleWall, so
// the durability experiment takes E19.
func BenchmarkWarmRestart(b *testing.B) {
	var cold, warm *Result
	var coldMS, warmMS float64
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		start := time.Now()
		var err error
		cold, err = SynthesizeNoTransit(SynthesizeOptions{CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		coldMS = float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		warm, err = SynthesizeNoTransit(SynthesizeOptions{CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		warmMS = float64(time.Since(start).Microseconds()) / 1000
	}
	if cold.CacheStats.DiskWrites == 0 || warm.CacheStats.DiskHits == 0 {
		b.Fatalf("durable tier idle: cold %+v, warm %+v", cold.CacheStats, warm.CacheStats)
	}
	if warm.CacheStats.Misses >= cold.CacheStats.Misses {
		b.Fatalf("warm restart not cheaper: %d backend calls vs %d cold",
			warm.CacheStats.Misses, cold.CacheStats.Misses)
	}
	if cold.Transcript.String() != warm.Transcript.String() {
		b.Fatal("warm restart changed the transcript")
	}
	b.ReportMetric(coldMS, "cold-wall-ms")
	b.ReportMetric(warmMS, "warm-wall-ms")
	benchJSON(b, map[string]float64{
		"cold-wall-ms":       coldMS,
		"warm-wall-ms":       warmMS,
		"cold-backend-calls": float64(cold.CacheStats.Misses),
		"warm-backend-calls": float64(warm.CacheStats.Misses),
		"warm-disk-hits":     float64(warm.CacheStats.DiskHits),
		"cold-disk-writes":   float64(cold.CacheStats.DiskWrites),
	})
}

// BenchmarkIncrementalGlobal (E20, extension) measures what the
// persistent simulator session buys a repair loop's per-iteration global
// check: one attachment router's egress filters are spliced to permit-all
// and reverted — the shape of a repair iteration — and each network state
// is verified both cold (CheckGlobalNoTransit, a fresh whole-network
// simulation) and incrementally (GlobalSession.Check with the changed
// router named, re-simulating only the flooding frontier). Verdicts are
// pinned equal every iteration; the headline metric is the speedup.
func BenchmarkIncrementalGlobal(b *testing.B) {
	for _, c := range []struct {
		scenario string
		size     int
	}{{"fat-tree", 0}, {"random", 200}} {
		c := c
		name := c.scenario
		if c.size > 0 {
			name = fmt.Sprintf("%s-%d", c.scenario, c.size)
		}
		b.Run(name, func(b *testing.B) {
			topo, err := netgen.Generate(c.scenario, c.size)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Synthesize(topo, core.SynthOptions{
				Model: llm.NewSynthesizer(llm.SynthConfig{Seed: 1,
					Errors: map[string][]llm.SynthError{}}),
				SkipGlobalCheck: true,
				Parallelism:     8,
			})
			if err != nil {
				b.Fatal(err)
			}
			parse := func() map[string]*netcfg.Device {
				devs := make(map[string]*netcfg.Device, len(res.Configs))
				for rn, text := range res.Configs {
					dev, _ := batfish.ParseConfig(text)
					devs[rn] = dev
				}
				return devs
			}
			golden := parse()
			atts := lightyear.ISPAttachments(topo)
			if len(atts) == 0 {
				b.Fatalf("%s has no ISP attachments to mutate", name)
			}
			target := atts[0].Router
			mutant := parse()
			for _, a := range atts {
				if a.Router != target {
					continue
				}
				mutant[target].RoutePolicies[a.EgressPolicy()] = &netcfg.RoutePolicy{
					Name:    a.EgressPolicy(),
					Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Permit}},
				}
			}

			sess := lightyear.NewGlobalSession(topo)
			if _, err := sess.Check(golden, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var coldNS, incNS int64
			for i := 0; i < b.N; i++ {
				start := time.Now()
				coldMut, err := lightyear.CheckGlobalNoTransit(topo, mutant)
				if err != nil {
					b.Fatal(err)
				}
				coldRev, err := lightyear.CheckGlobalNoTransit(topo, golden)
				if err != nil {
					b.Fatal(err)
				}
				coldNS += time.Since(start).Nanoseconds()

				start = time.Now()
				incMut, err := sess.Check(mutant, []string{target})
				if err != nil {
					b.Fatal(err)
				}
				incRev, err := sess.Check(golden, []string{target})
				if err != nil {
					b.Fatal(err)
				}
				incNS += time.Since(start).Nanoseconds()

				if !reflect.DeepEqual(coldMut, incMut) || !reflect.DeepEqual(coldRev, incRev) {
					b.Fatal("incremental verdicts diverge from cold")
				}
			}
			b.StopTimer()
			checks := float64(2 * b.N)
			coldMS := float64(coldNS) / 1e6 / checks
			incMS := float64(incNS) / 1e6 / checks
			speedup := 0.0
			if incNS > 0 {
				speedup = float64(coldNS) / float64(incNS)
			}
			b.ReportMetric(coldMS, "cold-ms-per-check")
			b.ReportMetric(incMS, "incremental-ms-per-check")
			b.ReportMetric(speedup, "speedup")
			benchJSON(b, map[string]float64{
				"routers":                  float64(len(res.Configs)),
				"cold-ms-per-check":        coldMS,
				"incremental-ms-per-check": incMS,
				"speedup":                  speedup,
			})
		})
	}
}

// BenchmarkPromptRender (E20's prompt-render series) measures the
// modularizer's per-router prompt derivation on the 200-router random
// graph: the spec is bucketed by router and every community tag is
// formatted once, so rendering is linear in V+E instead of the seed's
// O(V·(V+E)) rescans. Prompts are byte-identical to the seed's (pinned by
// the modularizer tests); the wall-clock per derivation is the metric.
func BenchmarkPromptRender(b *testing.B) {
	topo, err := netgen.Generate("random", 200)
	if err != nil {
		b.Fatal(err)
	}
	var tasks []modularizer.Task
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks = modularizer.Tasks(topo)
	}
	b.StopTimer()
	bytes := 0
	for _, t := range tasks {
		bytes += len(t.Prompt)
	}
	wallMS := float64(b.Elapsed().Milliseconds()) / float64(b.N)
	b.ReportMetric(float64(len(tasks)), "tasks")
	b.ReportMetric(float64(bytes), "prompt-bytes")
	benchJSON(b, map[string]float64{
		"tasks":           float64(len(tasks)),
		"prompt-bytes":    float64(bytes),
		"wall-ms-per-run": wallMS,
	})
}

// BenchmarkIncrementalConfig (E21, extension) measures the stanza-level
// incremental config pipeline per repair iteration, cold vs incremental,
// on the 200-router random graph and the fat-tree. One repair iteration
// re-emits one router's configuration and re-verifies the new revision;
// the benchmark isolates the three costs the pipeline attacks:
//
//	render — the model re-prints a router after a one-section fix. The
//	FullRender baseline re-prints every section; the incremental renderer
//	re-renders the changed section and joins the cached rest.
//	parse — the verifier parses the new revision (fresh text every
//	iteration, as in the real loop). The whole-text cache re-parses the
//	full device; the stanza sub-cache re-parses only the changed stanza
//	and reassembles the device from cached fragments.
//	bytes-on-wire — the REST client ships the revision to a shard holding
//	the prior revision. Protocol v4 sends a stanza delta; a v3-capped
//	fleet (after the client's one-time latch) receives full bodies.
//
// Results are pinned byte-identical elsewhere (render tests, stanza
// round-trip tests, TestAcceleratedSynthesisByteIdentical); here delta
// and full-body wire results are compared directly. The acceptance shape
// on random-200: ≥3× combined render+parse reduction and ≥5× bytes-on-
// wire reduction per iteration.
func BenchmarkIncrementalConfig(b *testing.B) {
	for _, c := range []struct {
		scenario string
		size     int
	}{{"random", 200}, {"fat-tree", 0}} {
		c := c
		name := c.scenario
		if c.size > 0 {
			name = fmt.Sprintf("%s-%d", c.scenario, c.size)
		}
		b.Run(name, func(b *testing.B) {
			topo, err := netgen.Generate(c.scenario, c.size)
			if err != nil {
				b.Fatal(err)
			}
			tasks := modularizer.Tasks(topo)
			errs := map[string][]llm.SynthError{}
			for _, task := range tasks {
				errs[task.Router] = []llm.SynthError{llm.SErrTopoWrongIP}
			}
			res, err := core.Synthesize(topo, core.SynthOptions{
				Model: llm.NewSynthesizer(llm.SynthConfig{Seed: 1,
					Errors: map[string][]llm.SynthError{}}),
				SkipGlobalCheck: true,
				Parallelism:     8,
			})
			if err != nil {
				b.Fatal(err)
			}
			// The iteration target is the largest configuration — the shape
			// of a hub repair, where incrementality matters most and the
			// seed's whole-config costs are worst.
			text := ""
			for _, t := range res.Configs {
				if len(t) > len(text) {
					text = t
				}
			}
			if !strings.HasSuffix(text, "\n") {
				text += "\n"
			}
			// revision(i) is the target config with exactly one stanza
			// changed: fresh text each iteration, so every cache tier sees a
			// genuinely new revision, differing from its predecessor in one
			// stanza — a repair iteration's output.
			revision := func(i int) string {
				return fmt.Sprintf("%s!\nip community-list 90 permit 900:%d\n",
					text, i%60000+1)
			}

			const itersPerRun = 8
			var renderFullNS, renderIncNS, parseFullNS, parseIncNS int64
			var bytesFull, bytesDelta int64
			var renderIters, parseIters, wireIters int
			ctx := context.Background()

			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				// Render: generate every router (untimed), then time one
				// fix + re-print round per router on each model.
				for _, full := range []bool{true, false} {
					model := llm.NewSynthesizer(llm.SynthConfig{
						Seed: 1, Errors: errs, FullRender: full})
					for _, task := range tasks {
						if _, err := model.Complete([]llm.Message{
							{Role: llm.RoleAutomated, Content: task.Prompt}}); err != nil {
							b.Fatal(err)
						}
					}
					runtime.GC()
					start := time.Now()
					for _, task := range tasks {
						fix := "The interface ip address does not match the topology on router " +
							task.Router + "."
						if _, err := model.Complete([]llm.Message{
							{Role: llm.RoleAutomated, Content: fix}}); err != nil {
							b.Fatal(err)
						}
						if _, err := model.Complete([]llm.Message{
							{Role: llm.RoleAutomated, Content: llm.PrintRequest}}); err != nil {
							b.Fatal(err)
						}
					}
					ns := time.Since(start).Nanoseconds()
					if full {
						renderFullNS += ns
					} else {
						renderIncNS += ns
					}
				}
				runtime.GC() // keep collector noise out of the sub-ms parse windows
				renderIters += 2 * len(tasks)

				// Parse: both caches warmed with the golden family, then each
				// revision parsed cold (new text) through each cache.
				incCache := batfish.NewParseCache()
				fullCache := batfish.NewWholeParseCache()
				for _, t := range res.Configs {
					incCache.Parse(t)
					fullCache.Parse(t)
				}
				base := n * (itersPerRun + 2)
				for i := 0; i < itersPerRun; i++ {
					rev := revision(base + 2 + i)
					runtime.GC()
					start := time.Now()
					fullCache.Parse(rev)
					parseFullNS += time.Since(start).Nanoseconds()
					runtime.GC()
					start = time.Now()
					incCache.Parse(rev)
					parseIncNS += time.Since(start).Nanoseconds()
				}
				parseIters += itersPerRun

				// Wire: the same revision stream checked against a v4 shard
				// (deltas) and a v3-capped shard (full bodies). Two warm
				// calls seed the prior revision on one side and burn the
				// delta-reject latch on the other; the measured window then
				// compares steady-state bytes per iteration.
				srvV4 := httptest.NewServer(rest.NewHandler())
				srvV3 := httptest.NewServer(rest.NewHandlerOpts(
					rest.HandlerOptions{MaxBatchProtocol: 3}))
				cl4 := rest.NewClient(srvV4.URL)
				cl3 := rest.NewClient(srvV3.URL)
				for i := 0; i < 2; i++ {
					checks := []suite.Check{{Kind: suite.KindSyntax, Config: revision(base + i)}}
					if _, err := cl4.CheckBatch(ctx, checks); err != nil {
						b.Fatal(err)
					}
					if _, err := cl3.CheckBatch(ctx, checks); err != nil {
						b.Fatal(err)
					}
				}
				b4, b3 := cl4.BytesSent(), cl3.BytesSent()
				for i := 0; i < itersPerRun; i++ {
					checks := []suite.Check{{Kind: suite.KindSyntax, Config: revision(base + 2 + i)}}
					r4, err := cl4.CheckBatch(ctx, checks)
					if err != nil {
						b.Fatal(err)
					}
					r3, err := cl3.CheckBatch(ctx, checks)
					if err != nil {
						b.Fatal(err)
					}
					if !reflect.DeepEqual(r4, r3) {
						b.Fatal("delta-carried results diverge from full-body results")
					}
				}
				bytesDelta += cl4.BytesSent() - b4
				bytesFull += cl3.BytesSent() - b3
				wireIters += itersPerRun
				srvV4.Close()
				srvV3.Close()
			}
			b.StopTimer()

			renderFullMS := float64(renderFullNS) / 1e6 / float64(renderIters)
			renderIncMS := float64(renderIncNS) / 1e6 / float64(renderIters)
			parseFullMS := float64(parseFullNS) / 1e6 / float64(parseIters)
			parseIncMS := float64(parseIncNS) / 1e6 / float64(parseIters)
			renderParseSpeedup := 0.0
			if renderIncMS+parseIncMS > 0 {
				renderParseSpeedup = (renderFullMS + parseFullMS) / (renderIncMS + parseIncMS)
			}
			bytesFullPer := float64(bytesFull) / float64(wireIters)
			bytesDeltaPer := float64(bytesDelta) / float64(wireIters)
			wireReduction := 0.0
			if bytesDeltaPer > 0 {
				wireReduction = bytesFullPer / bytesDeltaPer
			}
			if c.scenario == "random" {
				if renderParseSpeedup < 3 {
					b.Fatalf("shape violated: render+parse speedup %.1fx < 3x "+
						"(full %.3f+%.3f ms, incremental %.3f+%.3f ms)",
						renderParseSpeedup, renderFullMS, parseFullMS, renderIncMS, parseIncMS)
				}
				if wireReduction < 5 {
					b.Fatalf("shape violated: bytes-on-wire reduction %.1fx < 5x "+
						"(full %.0f B/iter, delta %.0f B/iter)",
						wireReduction, bytesFullPer, bytesDeltaPer)
				}
			}
			b.ReportMetric(renderParseSpeedup, "render+parse-speedup")
			b.ReportMetric(wireReduction, "wire-reduction")
			benchJSON(b, map[string]float64{
				"routers":               float64(len(res.Configs)),
				"render-full-ms":        renderFullMS,
				"render-incremental-ms": renderIncMS,
				"parse-full-ms":         parseFullMS,
				"parse-incremental-ms":  parseIncMS,
				"render-parse-speedup":  renderParseSpeedup,
				"bytes-full-per-iter":   bytesFullPer,
				"bytes-delta-per-iter":  bytesDeltaPer,
				"wire-reduction":        wireReduction,
			})
		})
	}
}

// BenchmarkIncrementalPolicyAddition (E11, extension) runs the paper's §6
// open question: add a policy to an already-verified network and catch
// the interference the careless edit introduces.
func BenchmarkIncrementalPolicyAddition(b *testing.B) {
	topo, err := netgen.Star(5)
	if err != nil {
		b.Fatal(err)
	}
	var automated, human int
	for i := 0; i < b.N; i++ {
		model := llm.NewSynthesizer(llm.DefaultSynthConfig())
		base, err := core.Synthesize(topo, core.SynthOptions{Model: model})
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.AddPolicyIncremental(topo, base.Configs,
			core.IncrementalOptions{Model: model})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatal("incremental change did not verify")
		}
		automated, human = res.Transcript.Counts()
	}
	b.ReportMetric(float64(automated), "automated-prompts")
	b.ReportMetric(float64(human), "human-prompts")
}

// BenchmarkTelemetryOverhead (E22, extension) prices the observability
// layer on a scale synthesis (random:200): the same run with telemetry
// off, with a metrics registry and a JSONL trace sink armed, and with a
// live /metrics scraper reading the registry mid-run on top. The BENCH
// line reports the three wall-clocks and the on-vs-off overhead
// percentages; the transcripts are asserted byte-identical across the
// legs, so the numbers price the telemetry alone.
func BenchmarkTelemetryOverhead(b *testing.B) {
	topo, err := netgen.Generate("random", 200)
	if err != nil {
		b.Fatal(err)
	}
	run := func(o SynthesizeOptions) (*Result, time.Duration) {
		t, err := netgen.Generate("random", 200)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := Synthesize(t, o)
		if err != nil {
			b.Fatal(err)
		}
		return res, time.Since(start)
	}
	_ = topo
	var offNS, onNS, scrapedNS int64
	for i := 0; i < b.N; i++ {
		base, offD := run(SynthesizeOptions{SuiteParallelism: 8})
		offNS += int64(offD)

		reg := obs.NewRegistry()
		tracer, err := obs.OpenTrace(filepath.Join(b.TempDir(), "trace.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		traced, onD := run(SynthesizeOptions{SuiteParallelism: 8, Metrics: reg, Trace: tracer})
		if err := tracer.Close(); err != nil {
			b.Fatal(err)
		}
		onNS += int64(onD)
		if !reflect.DeepEqual(base.Transcript, traced.Transcript) {
			b.Fatal("telemetry changed the transcript")
		}

		reg2 := obs.NewRegistry()
		tracer2, err := obs.OpenTrace(filepath.Join(b.TempDir(), "trace2.jsonl"))
		if err != nil {
			b.Fatal(err)
		}
		msrv := httptest.NewServer(obs.Handler(reg2))
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			// A deliberately aggressive scrape cadence — every 10ms, three
			// orders of magnitude hotter than a production Prometheus —
			// so the leg prices scrape contention, not idle time.
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					resp, gerr := http.Get(msrv.URL + obs.MetricsPath)
					if gerr == nil {
						resp.Body.Close()
					}
				}
			}
		}()
		scraped, scD := run(SynthesizeOptions{SuiteParallelism: 8, Metrics: reg2, Trace: tracer2})
		close(stop)
		<-done
		msrv.Close()
		if err := tracer2.Close(); err != nil {
			b.Fatal(err)
		}
		scrapedNS += int64(scD)
		if !reflect.DeepEqual(base.Transcript, scraped.Transcript) {
			b.Fatal("a live scraper changed the transcript")
		}
	}
	overheadOn := 100 * (float64(onNS) - float64(offNS)) / float64(offNS)
	overheadScraped := 100 * (float64(scrapedNS) - float64(offNS)) / float64(offNS)
	b.ReportMetric(float64(offNS)/float64(b.N)/1e6, "off-ms")
	b.ReportMetric(float64(onNS)/float64(b.N)/1e6, "on-ms")
	b.ReportMetric(float64(scrapedNS)/float64(b.N)/1e6, "scraped-ms")
	b.ReportMetric(overheadOn, "overhead-pct")
	benchJSON(b, map[string]float64{
		"off_ms":               float64(offNS) / float64(b.N) / 1e6,
		"on_ms":                float64(onNS) / float64(b.N) / 1e6,
		"scraped_ms":           float64(scrapedNS) / float64(b.N) / 1e6,
		"overhead_on_pct":      overheadOn,
		"overhead_scraped_pct": overheadScraped,
	})
}
