package repro

import (
	"strings"
	"testing"

	"repro/internal/llm"
)

func TestTable1(t *testing.T) {
	prompts, err := Table1RectificationPrompts()
	if err != nil {
		t.Fatal(err)
	}
	if len(prompts) != 4 {
		t.Fatalf("got %d prompts, want 4:\n%+v", len(prompts), prompts)
	}
	for _, p := range prompts {
		t.Logf("%s: %s", p.Type, p.Prompt)
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2TranslationErrors()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	fixed := 0
	for _, r := range rows {
		t.Logf("%-35s %-20s fixed=%v", r.Error, r.Type, r.FixedByAutomated)
		if r.FixedByAutomated {
			fixed++
		}
	}
	// Paper shape: 6 of 8 fixed by generated prompts; redistribution needs
	// the human. (The prefix-length class converges through generated
	// prompts via its syntax detour, see DESIGN.md.)
	if fixed < 6 {
		t.Errorf("only %d/8 classes fixed by automated prompts", fixed)
	}
}

func TestTable3(t *testing.T) {
	prompts, err := Table3RectificationPrompts()
	if err != nil {
		t.Fatal(err)
	}
	if len(prompts) < 9 {
		t.Fatalf("got %d prompts, want >= 9 (1 syntax + 7 topology + 1 semantic)", len(prompts))
	}
	for _, p := range prompts {
		t.Logf("%s: %s", p.Type, p.Prompt)
	}
}

func TestAblations(t *testing.T) {
	local, global, err := AblationLocalVsGlobal(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("local:  %s", local)
	t.Logf("global: %s", global)
	if !local.Verified || global.Verified {
		t.Errorf("want local verified and global not; got local=%v global=%v",
			local.Verified, global.Verified)
	}
	withIIP, withoutIIP, err := AblationIIP(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with IIP:    %s", withIIP)
	t.Logf("without IIP: %s", withoutIIP)
	if withoutIIP.Automated <= withIIP.Automated {
		t.Errorf("IIP should reduce automated prompts: with=%d without=%d",
			withIIP.Automated, withoutIIP.Automated)
	}
	h, r, err := AblationHumanizer()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("humanized: %s", h)
	t.Logf("raw:       %s", r)
	if r.Leverage >= h.Leverage {
		t.Errorf("humanizer should raise leverage: humanized=%.1f raw=%.1f",
			h.Leverage, r.Leverage)
	}
}

func TestTranslateFacade(t *testing.T) {
	res, err := Translate(ExampleCiscoConfig(), TranslateOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	a, h, l := Leverage(res)
	if a != 20 || h != 2 || l != 10.0 {
		t.Errorf("leverage = (%d,%d,%.1f), want (20,2,10.0)", a, h, l)
	}
	if !strings.Contains(Summary("t", res), "leverage 10.0X") {
		t.Errorf("summary = %q", Summary("t", res))
	}
}

func TestTranslateFacadeWithErrorSubset(t *testing.T) {
	res, err := Translate(ExampleCiscoConfig(), TranslateOptions{
		Seed:         1,
		ErrorClasses: []llm.TranslateError{llm.ErrOSPFCost},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.HumanPrompts() != 1 {
		t.Errorf("verified=%v human=%d", res.Verified, res.HumanPrompts())
	}
}

func TestSynthesizeFacade(t *testing.T) {
	res, err := SynthesizeNoTransit(SynthesizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("not verified")
	}
	a, h, l := Leverage(res)
	if a != 12 || h != 2 || l != 6.0 {
		t.Errorf("leverage = (%d,%d,%.1f), want (12,2,6.0)", a, h, l)
	}
	if len(res.Configs) != 7 {
		t.Errorf("configs = %d", len(res.Configs))
	}
}

func TestStarTopologyFacade(t *testing.T) {
	topo, desc, err := StarTopology(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Routers) != 5 || !strings.Contains(desc, "Router R5") {
		t.Errorf("topology = %d routers, desc ok=%v", len(topo.Routers),
			strings.Contains(desc, "Router R5"))
	}
	if _, _, err := StarTopology(0); err == nil {
		t.Error("invalid size should error")
	}
}

func TestLeverageVsNetworkSizeMonotonic(t *testing.T) {
	reports, err := LeverageVsNetworkSize([]int{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].Leverage < reports[i-1].Leverage {
			t.Errorf("leverage not monotonic: %v", reports)
		}
		if !reports[i].Verified {
			t.Errorf("%s not verified", reports[i].Name)
		}
	}
}
