package repro

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/netgen"
)

// synthModel returns the seed-1 simulated LLM the byte-identity gates
// all run against.
func synthModel() llm.Model {
	cfg := llm.DefaultSynthConfig()
	cfg.Seed = 1
	return llm.NewSynthesizer(cfg)
}

// TestCompositionalAgreesWithSimulation is the acceptance gate for the
// compositional global check: on every registry scenario, synthesis under
// GlobalCheckCompositional must reach the same verdict as the default
// full-simulation run, with byte-identical transcripts and
// configurations (the mode only changes how the final verdict is
// computed, never the repair loop), and must actually have taken the
// compositional path — a silent fallback to the simulation would make
// the agreement vacuous.
func TestCompositionalAgreesWithSimulation(t *testing.T) {
	for _, s := range netgen.Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			topo := mustTopo(t, s.Name, s.DefaultSize)
			run := func(mode core.GlobalCheckMode) *Result {
				res, err := core.Synthesize(topo, core.SynthOptions{
					Model:           synthModel(),
					GlobalCheck:     mode,
					GlobalCheckSeed: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			sim := run(core.GlobalCheckSimulated)
			comp := run(core.GlobalCheckCompositional)
			requireSameRun(t, s.Name, sim, comp)
			if sim.Global == nil || sim.Global.Method != lightyear.MethodSimulated {
				t.Errorf("default run's global method = %+v, want %q",
					sim.Global, lightyear.MethodSimulated)
			}
			if comp.Global == nil || comp.Global.Method != lightyear.MethodCompositional {
				t.Errorf("compositional run's global method = %+v, want %q",
					comp.Global, lightyear.MethodCompositional)
			}
			if comp.Global != nil && comp.Global.Method == lightyear.MethodCompositional &&
				len(comp.Global.FalsificationProbes) == 0 {
				t.Errorf("compositional run sampled no falsification probes")
			}
		})
	}
}

// opaqueModel hides a model's Forker capability, forcing the parallel
// loop onto its mutex-guarded shared-model fallback.
type opaqueModel struct{ m llm.Model }

func (o opaqueModel) Complete(messages []llm.Message) (string, error) {
	return o.m.Complete(messages)
}

// TestForkedParallelSynthesisByteIdentical is the acceptance gate for the
// forked per-router model sessions: on every registry scenario, the
// parallel-8 run on independent forked sessions must be byte-identical to
// the parallel-8 run on the serialized shared model it replaced. (The
// parallel transcript legitimately differs from the sequential one — the
// task prompt and repair loop interleave per router — so the gate pins
// forking against the lock, the two implementations of the same merge.)
func TestForkedParallelSynthesisByteIdentical(t *testing.T) {
	for _, s := range netgen.Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			topo := mustTopo(t, s.Name, s.DefaultSize)
			run := func(model llm.Model) *Result {
				res, err := core.Synthesize(topo, core.SynthOptions{
					Model:       model,
					Parallelism: 8,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			locked := run(opaqueModel{m: synthModel()})
			forked := run(synthModel())
			if _, ok := interface{}(synthModel()).(llm.Forker); !ok {
				t.Fatalf("synthesizer no longer implements llm.Forker; the gate is vacuous")
			}
			requireSameRun(t, s.Name, locked, forked)
		})
	}
}

// TestFalsificationSamplingDeterministic pins the compositional check's
// sampled falsification: the same seed must neutralize the same egress
// filters in the same order on repeated runs (replayability of a scale
// run's verdict), and the sample must respect the configured bound.
func TestFalsificationSamplingDeterministic(t *testing.T) {
	topo := mustTopo(t, "random", 20)
	run := func(seed int64) []string {
		res, err := core.Synthesize(topo, core.SynthOptions{
			Model:           synthModel(),
			GlobalCheck:     core.GlobalCheckCompositional,
			GlobalCheckSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Global == nil || res.Global.Method != lightyear.MethodCompositional {
			t.Fatalf("run did not take the compositional path: %+v", res.Global)
		}
		return res.Global.FalsificationProbes
	}
	first := run(7)
	again := run(7)
	if !reflect.DeepEqual(first, again) {
		t.Errorf("same seed sampled different probes:\n%v\n%v", first, again)
	}
	if len(first) == 0 || len(first) > 4 {
		t.Errorf("probe count %d outside the default bound of 4", len(first))
	}
	other := run(8)
	if len(other) == 0 || len(other) > 4 {
		t.Errorf("probe count %d outside the default bound of 4", len(other))
	}
}
