package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exampledata"
	"repro/internal/llm"
	"repro/internal/netgen"
)

// LeverageReport summarizes a leverage experiment (§3.2, §4.2).
type LeverageReport struct {
	Name      string
	Automated int
	Human     int
	Leverage  float64
	Verified  bool
}

// String renders the report the way the paper states its results.
func (r LeverageReport) String() string {
	return fmt.Sprintf("%s: %d automated / %d human prompts, leverage %.1fX, verified=%v",
		r.Name, r.Automated, r.Human, r.Leverage, r.Verified)
}

func report(name string, res *core.Result) LeverageReport {
	a, h := res.Transcript.Counts()
	return LeverageReport{Name: name, Automated: a, Human: h,
		Leverage: res.Leverage(), Verified: res.Verified}
}

// ExperimentTranslationLeverage runs the §3.2 experiment: the full Table 2
// error scenario on the example config. Expected shape: ~20 automated / 2
// human prompts, leverage ≈ 10X, verified.
func ExperimentTranslationLeverage() (LeverageReport, error) {
	model := llm.NewTranslator(llm.DefaultTranslateConfig())
	res, err := core.Translate(exampledata.CiscoExample, core.TranslateOptions{Model: model})
	if err != nil {
		return LeverageReport{}, err
	}
	return report("translation (Cisco->Juniper)", res), nil
}

// ExperimentNoTransitLeverage runs the §4.2 experiment on an n-router
// star. Expected shape at n=7: 12 automated / 2 human prompts, leverage
// 6X, verified (including the global BGP simulation).
func ExperimentNoTransitLeverage(n int) (LeverageReport, error) {
	topo, err := netgen.Star(n)
	if err != nil {
		return LeverageReport{}, err
	}
	model := llm.NewSynthesizer(llm.DefaultSynthConfig())
	res, err := core.Synthesize(topo, core.SynthOptions{Model: model})
	if err != nil {
		return LeverageReport{}, err
	}
	return report(fmt.Sprintf("no-transit (star-%d)", n), res), nil
}

// AblationLocalVsGlobal contrasts local-specification prompting (§4.1,
// converges) with global-policy prompting (oscillates and fails): the
// paper's "Local versus Global Policy Prompts" finding.
func AblationLocalVsGlobal(n int) (local, global LeverageReport, err error) {
	topo, err := netgen.Star(n)
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	localRes, err := core.Synthesize(topo, core.SynthOptions{
		Model: llm.NewSynthesizer(llm.DefaultSynthConfig())})
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	globalRes, err := core.SynthesizeGlobal(topo, core.GlobalSynthOptions{
		Model: llm.NewGlobalSynthesizer()})
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	return report("local specs", localRes), report("global spec", globalRes), nil
}

// AblationIIP contrasts synthesis with and without the initial instruction
// prompt database (§4.2): without it the common syntax-error classes
// reappear and cost extra correction prompts.
func AblationIIP(n int) (withIIP, withoutIIP LeverageReport, err error) {
	topo, err := netgen.Star(n)
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	withRes, err := core.Synthesize(topo, core.SynthOptions{
		Model: llm.NewSynthesizer(llm.DefaultSynthConfig())})
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	withoutRes, err := core.Synthesize(topo, core.SynthOptions{
		Model: llm.NewSynthesizer(llm.DefaultSynthConfig()), NoIIP: true})
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	return report("with IIP", withRes), report("without IIP", withoutRes), nil
}

// AblationHumanizer contrasts humanized prompts with raw verifier output
// on the translation task: with raw feedback the model fixes less and the
// human carries more of the loop, so leverage drops — the paper's claim
// that verification needs "actionable localized feedback" (§1).
func AblationHumanizer() (humanized, raw LeverageReport, err error) {
	humanRes, err := core.Translate(exampledata.CiscoExample, core.TranslateOptions{
		Model: llm.NewTranslator(llm.DefaultTranslateConfig())})
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	rawRes, err := core.Translate(exampledata.CiscoExample, core.TranslateOptions{
		Model:       llm.NewTranslator(llm.DefaultTranslateConfig()),
		RawFeedback: true,
		Human:       core.HumanizerHuman{},
	})
	if err != nil {
		return LeverageReport{}, LeverageReport{}, err
	}
	return report("humanized feedback", humanRes), report("raw feedback", rawRes), nil
}

// LeverageVsNetworkSize sweeps the star size (extension experiment E10):
// automated prompts grow with the number of routers while human prompts
// stay constant, so leverage grows with network size.
func LeverageVsNetworkSize(sizes []int) ([]LeverageReport, error) {
	var out []LeverageReport
	for _, n := range sizes {
		r, err := ExperimentNoTransitLeverage(n)
		if err != nil {
			return nil, fmt.Errorf("star-%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ExperimentTopologyLeverage runs the no-transit synthesis on one
// registered topology scenario (extension experiment E12): the same VPP
// loop, the scenario registry's topology, and the attachment-point local
// specification on non-star graphs. size <= 0 uses the scenario default;
// parallelism <= 1 runs the sequential loop.
func ExperimentTopologyLeverage(scenario string, size, parallelism int) (LeverageReport, error) {
	topo, err := netgen.Generate(scenario, size)
	if err != nil {
		return LeverageReport{}, err
	}
	model := llm.NewSynthesizer(llm.DefaultSynthConfig())
	res, err := core.Synthesize(topo, core.SynthOptions{
		Model:       model,
		Parallelism: parallelism,
	})
	if err != nil {
		return LeverageReport{}, err
	}
	return report(fmt.Sprintf("no-transit (%s)", topo.Name), res), nil
}

// TopologySweep runs the no-transit synthesis on every registered
// scenario at its default size.
func TopologySweep() ([]LeverageReport, error) {
	var out []LeverageReport
	for _, info := range Topologies() {
		r, err := ExperimentTopologyLeverage(info.Name, info.DefaultSize, 0)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", info.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
