// Command cofuzz runs property-based fuzz campaigns over the erroneous-
// LLM-output space (internal/fuzz) and replays minimized counterexamples.
//
//	cofuzz -family random -sizes 6..24 -seeds 32 -budget 60s -report fuzz.json
//	cofuzz -family dual-homed -sizes 4,6,8 -seeds 8 -workers 8
//	cofuzz -classes default,egress-deny-all -sizes 6..10   # seed a violation
//	cofuzz -replay fuzz.json                               # re-run the minimized case
//	cofuzz -family random -rest http://h1:9876,http://h2:9876
//	cofuzz -family random -checkpoint camp.json            # kill-safe campaign
//	cofuzz -family random -checkpoint camp.json -resume    # pick up after a kill
//	cofuzz -family random -cache-dir /var/cache/cosynth    # durable verification cache
//	cofuzz -family random -shards 3 -kill-shard 40         # chaos: sever shard 0 mid-run
//
// A campaign sweeps (family × size × seed × derived error plan) cases on
// a bounded worker pool, asserts the pipeline's end-to-end properties on
// each, and — on the first failure — shrinks it along the topology and
// plan-cardinality axes to a minimal counterexample recorded in the JSON
// report. The same report file replays through this command (-replay,
// re-running the recorded oracle) and through the main CLI
// (`cosynth -mode notransit -errors fuzz.json`, reproducing the failing
// run byte-identically). Exit status: 0 when every case passed or the
// replay reproduced, 1 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/batfish"
	"repro/internal/batfish/rest"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/fuzz"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/prof"
)

// parseSizes reads the -sizes syntax: "lo..hi" (inclusive range) or a
// comma-separated list.
func parseSizes(arg string) ([]int, error) {
	if arg == "" {
		return nil, nil
	}
	if lo, hi, ok := strings.Cut(arg, ".."); ok {
		l, err1 := strconv.Atoi(lo)
		h, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || l <= 0 || h < l {
			return nil, fmt.Errorf("-sizes %q: want lo..hi with 0 < lo <= hi", arg)
		}
		var out []int
		for n := l; n <= h; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, s := range strings.Split(arg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-sizes %q: %q is not a positive size", arg, s)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseClasses reads the -classes list: class names as printed by the
// report, with "default" expanding to the repairable alphabet and "all"
// to every class including the unrepairable ones.
func parseClasses(arg string) ([]llm.SynthError, error) {
	if arg == "" || arg == "default" {
		return nil, nil // campaign default
	}
	var out []llm.SynthError
	for _, s := range strings.Split(arg, ",") {
		switch name := strings.TrimSpace(s); name {
		case "default":
			out = append(out, fuzz.DefaultAlphabet()...)
		case "all":
			out = append(out, llm.AllSynthErrors()...)
		default:
			e, err := llm.ParseSynthError(name)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// buildVerifier resolves -rest endpoints like cosynth does: none for the
// in-process suite, one plain client, several a consistent-hash ring.
func buildVerifier(endpoints []string) (core.Verifier, error) {
	switch len(endpoints) {
	case 0:
		return nil, nil
	case 1:
		client := rest.NewClient(endpoints[0])
		if err := client.Health(); err != nil {
			return nil, fmt.Errorf("verifier %s unreachable: %w", endpoints[0], err)
		}
		return client, nil
	default:
		sharded, err := rest.NewShardedClient(endpoints)
		if err != nil {
			return nil, err
		}
		if err := sharded.Health(); err != nil {
			return nil, err
		}
		return sharded, nil
	}
}

func main() {
	family := flag.String("family", "random", "netgen scenario family to fuzz")
	sizesArg := flag.String("sizes", "", "topology sizes: lo..hi or a comma list (default: the family's registry default)")
	seeds := flag.Int("seeds", 8, "seeds per size")
	workers := flag.Int("workers", 4, "concurrent cases")
	budget := flag.Duration("budget", 0, "wall-clock budget; cases not started in time are skipped (0 = sweep everything)")
	classesArg := flag.String("classes", "default", "plan alphabet: comma list of class names, 'default' (repairable set) or 'all' (includes unrepairable classes — seeds violations)")
	maxIterations := flag.Int("max-iterations", 0, "per-case pipeline iteration cap (0 = engine default)")
	falsify := flag.Bool("falsify", false, "additionally falsify the composed global check per case")
	reportPath := flag.String("report", "", "write the campaign report JSON here")
	replayPath := flag.String("replay", "", "replay the minimized counterexample of an existing report instead of running a campaign")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "",
		"serve the campaign's metrics registry over HTTP at this address (GET /metrics, GET /debug/vars)")
	tracePath := flag.String("trace", "",
		"stream structured JSONL trace events — per-case pipeline spans plus one fuzz_case verdict "+
			"event per case — to this file (fold with cosynth -trace-summary)")
	checkpointPath := flag.String("checkpoint", "",
		"snapshot completed case results to this file (atomically, after every case) so a killed campaign can resume")
	resume := flag.Bool("resume", false,
		"resume the campaign recorded at -checkpoint, reusing its completed case results and running only the remainder")
	cacheDir := flag.String("cache-dir", "",
		"durable verification-cache directory shared across campaign restarts and with cosynth/batfishd runs")
	shards := flag.Int("shards", 0, "spawn N in-process shard servers and fan each case's checks over them")
	killShard := flag.Int64("kill-shard", 0,
		"with -shards: sever the first in-process shard after it serves N requests — the mid-run shard-kill "+
			"chaos harness; the ring re-hashes its work onto the survivors and results must not change")
	var restEndpoints string
	flag.StringVar(&restEndpoints, "rest", "", "batfishd endpoint(s), comma-separated; several form a consistent-hash shard ring")
	flag.Parse()

	stopProfiles, err := prof.StartOpts(prof.Options{
		CPUPath: *cpuProfile, MemPath: *memProfile,
		BlockPath: *blockProfile, MutexPath: *mutexProfile,
	})
	if err != nil {
		log.Fatalf("cofuzz: %v", err)
	}
	defer stopProfiles()
	var reg *obs.Registry
	if *metricsAddr != "" || *tracePath != "" {
		reg = obs.NewRegistry()
	}
	if *metricsAddr != "" {
		bound, stopMetrics, merr := obs.Serve(*metricsAddr, reg)
		if merr != nil {
			log.Fatalf("cofuzz: -metrics-addr: %v", merr)
		}
		defer stopMetrics()
		fmt.Printf("metrics on http://%s%s\n", bound, obs.MetricsPath)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer, err = obs.OpenTrace(*tracePath)
		if err != nil {
			log.Fatalf("cofuzz: -trace: %v", err)
		}
		defer func() {
			if cerr := tracer.Close(); cerr != nil {
				log.Printf("cofuzz: -trace: %v", cerr)
			}
		}()
	}

	if *replayPath != "" {
		replay(*replayPath)
		return
	}

	sizes, err := parseSizes(*sizesArg)
	if err != nil {
		log.Fatalf("cofuzz: %v", err)
	}
	alphabet, err := parseClasses(*classesArg)
	if err != nil {
		log.Fatalf("cofuzz: -classes: %v", err)
	}
	var endpoints []string
	if restEndpoints != "" {
		endpoints, err = rest.SplitEndpoints([]string{restEndpoints})
		if err != nil {
			log.Fatalf("cofuzz: -rest: %v", err)
		}
	}
	var dcache *durable.Cache
	if *cacheDir != "" {
		dcache, err = durable.Open(*cacheDir, durable.Options{})
		if err != nil {
			log.Fatalf("cofuzz: -cache-dir: %v", err)
		}
	}
	for i := 0; i < *shards; i++ {
		// In-process shards mirror cosynth's: shared parse cache, the
		// durable tier when -cache-dir is set, no scenario warmer. The
		// first shard optionally carries the kill switch — after serving
		// -kill-shard requests it severs every connection mid-flight,
		// exercising retry, failover, and re-hash under a live campaign.
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			log.Fatalf("cofuzz: -shards: %v", lerr)
		}
		handler := http.Handler(rest.NewHandlerOpts(rest.HandlerOptions{
			Parses: batfish.NewParseCache(), Durable: dcache}))
		if i == 0 && *killShard > 0 {
			handler = faultinject.AbortAfter(handler, *killShard)
		}
		srv := &http.Server{Handler: handler}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		endpoints = append(endpoints, "http://"+ln.Addr().String())
	}
	verifier, err := buildVerifier(endpoints)
	if err != nil {
		log.Fatalf("cofuzz: %v", err)
	}

	campaign := fuzz.Campaign{
		Family:        *family,
		Sizes:         sizes,
		Seeds:         *seeds,
		Workers:       *workers,
		Budget:        *budget,
		Verifier:      verifier,
		Alphabet:      alphabet,
		MaxIterations: *maxIterations,
		Falsify:       *falsify,
		Checkpoint:    *checkpointPath,
		Resume:        *resume,
		DurableCache:  dcache,
		Metrics:       reg,
		Tracer:        tracer,
	}
	rep, err := campaign.Run(context.Background())
	stopProfiles()
	if err != nil {
		log.Fatalf("cofuzz: %v", err)
	}
	if *reportPath != "" {
		if err := rep.WriteFile(*reportPath); err != nil {
			log.Fatalf("cofuzz: writing report: %v", err)
		}
	}

	fmt.Printf("campaign %s sizes=%v seeds=%d: %d cases (%d skipped), %d failures, "+
		"%d planned errors, %d iterations, %.1f cases/s in %dms\n",
		rep.Family, rep.Sizes, rep.Seeds, rep.Cases, rep.Skipped, rep.Failures,
		rep.PlannedErrors, rep.TotalIterations, rep.CasesPerSecond, rep.ElapsedMS)
	if cx := rep.Counterexample; cx != nil {
		fmt.Printf("FAIL %s\n", cx.Failure.Property)
		fmt.Printf("  detail:    %s\n", cx.Failure.Detail)
		fmt.Printf("  original:  %s\n", cx.Original)
		fmt.Printf("  minimized: %s  (%d shrink steps, %d oracle runs)\n",
			cx.Case, cx.ShrinkSteps, cx.OracleRuns)
		if *reportPath != "" {
			fmt.Printf("  replay:    cofuzz -replay %[1]s   # or: cosynth -mode notransit -errors %[1]s\n",
				*reportPath)
		}
		os.Exit(1)
	}
}

// replay re-runs a report's minimized counterexample through the oracle
// it was found under.
func replay(path string) {
	rep, err := fuzz.LoadReport(path)
	if err != nil {
		log.Fatalf("cofuzz: %v", err)
	}
	if rep.Counterexample == nil {
		log.Fatalf("cofuzz: %s records no counterexample (the campaign passed)", path)
	}
	res, reproduced, err := rep.Replay()
	if err != nil {
		log.Fatalf("cofuzz: %v", err)
	}
	fmt.Printf("replaying %s\n", rep.Counterexample.Case)
	if reproduced {
		fmt.Printf("reproduced %s: %s\n", res.Failure.Property, res.Failure.Detail)
		return
	}
	if res.Failure != nil {
		fmt.Printf("MISMATCH: recorded %s, got %s (%s)\n",
			rep.Counterexample.Failure.Property, res.Failure.Property, res.Failure.Detail)
	} else {
		fmt.Printf("MISMATCH: recorded %s, but the case now passes\n",
			rep.Counterexample.Failure.Property)
	}
	os.Exit(1)
}
