// Command batfishd serves the verification suite over HTTP: syntax
// checking, Campion diffing, topology verification, local-policy checks,
// SearchRoutePolicies, and the global no-transit BGP simulation. The
// COSYNTH engine can point at it with --verifier (see cmd/cosynth), which
// is how the Batfish dependency is reproduced without Go bindings.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/batfish/rest"
)

func main() {
	addr := flag.String("addr", "localhost:9876", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rest.NewHandler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("batfishd: serving verification suite on http://%s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("batfishd: %v", err)
	}
}
