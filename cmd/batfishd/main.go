// Command batfishd serves the verification suite over HTTP: syntax
// checking, Campion diffing, topology verification, local-policy checks,
// SearchRoutePolicies, batched whole-iteration checks (/v1/batch), and the
// global no-transit BGP simulation. The COSYNTH engine can point at it
// with --verifier (see cmd/cosynth), which is how the Batfish dependency
// is reproduced without Go bindings. Several batfishd instances form a
// shard fleet: cosynth -rest takes a comma-separated endpoint list and
// consistent-hashes the suite across them.
//
// The daemon is registry-aware: it serves the version-gated /v1/scenario
// endpoint, which accepts a registered topology family as "name:size"
// ("fat-tree:4"), validates it against the scenario registry, and
// pre-warms the server's shared parse cache by synthesizing the family
// with the deterministic simulated LLM and parsing the resulting
// configurations — so a client that then drives the same family hits warm
// parses on its batched checks. Disable with -no-warm to serve the
// endpoint validation-only.
//
// Observability: the daemon serves GET /metrics (Prometheus text
// exposition of its request, batch, parse, and durable-cache counters)
// and GET /debug/vars (the same registry as a JSON snapshot) on the main
// listen address.
package main

import (
	"flag"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/batfish"
	"repro/internal/batfish/rest"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/llm"
	"repro/internal/netcfg"
	"repro/internal/obs"
	"repro/internal/topology"
)

// warmScenario is the daemon's ScenarioWarmer: synthesize the family with
// the deterministic simulated LLM at the client's seed (zero: default —
// the same run a default cosynth client performs) and parse the final
// configurations into the shared cache. Under a ring-scoped warm (a shard
// fleet's broadcast), owned admits only the configurations the fleet's
// consistent-hash ring routes to this instance; the synthesis still runs
// whole — configurations depend on each other's prompts — but the cache
// only grows by this shard's share.
func warmScenario(topo *topology.Topology, seed int64, parses *netcfg.ParseCache,
	owned func(config string) bool) (int, error) {
	cfg := llm.DefaultSynthConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	res, err := core.Synthesize(topo, core.SynthOptions{
		Model: llm.NewSynthesizer(cfg),
	})
	if err != nil {
		return 0, err
	}
	warmed := 0
	for _, cfg := range res.Configs {
		if !owned(cfg) {
			continue
		}
		parses.Parse(cfg)
		warmed++
	}
	log.Printf("batfishd: warmed %s: %d routers, %d of %d configs parsed (ring share)",
		topo.Name, len(topo.Routers), warmed, len(res.Configs))
	return warmed, nil
}

func main() {
	addr := flag.String("addr", "localhost:9876", "listen address")
	batchWorkers := flag.Int("batch-workers", 0,
		"worker pool size for /v1/batch check evaluation (0 = GOMAXPROCS)")
	noWarm := flag.Bool("no-warm", false,
		"serve /v1/scenario validation-only: no shared parse cache, no pre-warm synthesis")
	cacheDir := flag.String("cache-dir", "",
		"mount a durable verification-result cache at this directory: batched checks are "+
			"answered from disk when content-addressed entries exist and persisted when they "+
			"don't, so restarts (and fleets sharing the directory) stay warm")
	flag.Parse()

	reg := obs.NewRegistry()
	opts := rest.HandlerOptions{BatchWorkers: *batchWorkers, Metrics: reg}
	if !*noWarm {
		opts.Parses = batfish.NewParseCache()
		opts.Warmer = warmScenario
		opts.Parses.SetObs(reg, nil)
	}
	if *cacheDir != "" {
		d, err := durable.Open(*cacheDir, durable.Options{})
		if err != nil {
			// An unusable cache directory (a newer on-disk format, a
			// permission problem) degrades the daemon to uncached serving:
			// the cache is an optimization, not a correctness dependency.
			log.Printf("batfishd: durable cache disabled: %v", err)
		} else {
			opts.Durable = d
			d.SetMetrics(reg)
			log.Printf("batfishd: durable result cache mounted at %s", d.Dir())
		}
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           rest.NewHandlerOpts(opts),
		ReadHeaderTimeout: 5 * time.Second,
	}
	workers := *batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	log.Printf("batfishd: serving verification suite on http://%s (batch workers: %d, registry warm: %v)",
		*addr, workers, !*noWarm)
	log.Printf("batfishd: metrics on http://%s%s and http://%s%s", *addr, obs.MetricsPath, *addr, obs.VarsPath)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("batfishd: %v", err)
	}
}
