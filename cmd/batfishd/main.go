// Command batfishd serves the verification suite over HTTP: syntax
// checking, Campion diffing, topology verification, local-policy checks,
// SearchRoutePolicies, batched whole-iteration checks (/v1/batch), and the
// global no-transit BGP simulation. The COSYNTH engine can point at it
// with --verifier (see cmd/cosynth), which is how the Batfish dependency
// is reproduced without Go bindings.
package main

import (
	"flag"
	"log"
	"net/http"
	"runtime"
	"time"

	"repro/internal/batfish/rest"
)

func main() {
	addr := flag.String("addr", "localhost:9876", "listen address")
	batchWorkers := flag.Int("batch-workers", 0,
		"worker pool size for /v1/batch check evaluation (0 = GOMAXPROCS)")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rest.NewHandlerOpts(rest.HandlerOptions{BatchWorkers: *batchWorkers}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	workers := *batchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	log.Printf("batfishd: serving verification suite on http://%s (batch workers: %d)",
		*addr, workers)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("batfishd: %v", err)
	}
}
