// Command cosynth runs the Verified Prompt Programming pipeline end to
// end for either paper use case and prints the transcript, the final
// configuration(s), and the leverage.
//
//	cosynth -mode translate
//	cosynth -mode notransit -n 7
//	cosynth -mode notransit -topo ring -n 8 -parallel 4
//	cosynth -mode notransit -topo dual-homed:8        # per-attachment specs
//	cosynth -mode notransit -topo random:20 -suite-parallel 8
//	cosynth -mode translate -verifier http://localhost:9876   # via batfishd
//
// The -topo argument names any registered scenario (star, ring,
// full-mesh, fat-tree, dual-homed, multi-customer, random — see `netgen
// -list`) and accepts the name:size shorthand; an explicit :size wins
// over -n. The dual-homed, multi-customer, and random families exercise
// the per-attachment specification: community tags and local obligations
// are allocated per (router, ISP) attachment point, so routers may be
// homed to several ISPs and customers may attach anywhere.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/batfish/rest"
	"repro/internal/core"
	"repro/internal/netgen"
	"repro/internal/topology"
)

func main() {
	mode := flag.String("mode", "translate", "use case: translate | notransit")
	topoName := flag.String("topo", "star", "topology scenario for -mode notransit, as name[:size] (e.g. dual-homed:8)")
	n := flag.Int("n", 0, "topology size for -mode notransit (routers, or pod arity for fat-tree); 0 = scenario default; a :size in -topo wins")
	parallel := flag.Int("parallel", 0, "per-router repair workers for -mode notransit (<=1: sequential)")
	suiteParallel := flag.Int("suite-parallel", 0, "per-iteration verifier-suite workers (<=1: sequential scan)")
	noCache := flag.Bool("no-cache", false, "disable the incremental verification cache")
	seed := flag.Int64("seed", 1, "simulated-LLM seed")
	verifierURL := flag.String("verifier", "", "batfishd base URL (default: in-process suite)")
	inputPath := flag.String("config", "", "Cisco config to translate (default: bundled example)")
	showConfigs := flag.Bool("print-configs", false, "print the final configuration(s)")
	flag.Parse()

	var verifier core.Verifier
	if *verifierURL != "" {
		client := rest.NewClient(*verifierURL)
		if err := client.Health(); err != nil {
			log.Fatalf("cosynth: verifier %s unreachable: %v", *verifierURL, err)
		}
		verifier = client
	}

	var res *repro.Result
	var err error
	switch *mode {
	case "translate":
		cfg := repro.ExampleCiscoConfig()
		if *inputPath != "" {
			data, rerr := os.ReadFile(*inputPath)
			if rerr != nil {
				log.Fatalf("cosynth: %v", rerr)
			}
			cfg = string(data)
		}
		res, err = repro.Translate(cfg, repro.TranslateOptions{
			Seed: *seed, Verifier: verifier, DisableVerifierCache: *noCache})
	case "notransit":
		name, size, perr := netgen.ParseScenarioArg(*topoName)
		if perr != nil {
			log.Fatalf("cosynth: %v", perr)
		}
		if size == 0 {
			size = *n
		}
		var topo *topology.Topology
		topo, _, err = repro.GenerateTopology(name, size)
		if err != nil {
			log.Fatalf("cosynth: %v", err)
		}
		res, err = repro.Synthesize(topo, repro.SynthesizeOptions{
			Seed: *seed, Verifier: verifier, Parallelism: *parallel,
			SuiteParallelism: *suiteParallel, DisableVerifierCache: *noCache})
	default:
		log.Fatalf("cosynth: unknown mode %q", *mode)
	}
	if err != nil {
		log.Fatalf("cosynth: %v", err)
	}

	fmt.Println("=== Transcript ===")
	fmt.Print(res.Transcript.String())
	if len(res.PuntedFindings) > 0 {
		fmt.Println("=== Punted to human ===")
		for _, p := range res.PuntedFindings {
			fmt.Println(" -", p)
		}
	}
	if *showConfigs {
		for name, cfg := range res.Configs {
			fmt.Printf("=== %s ===\n%s\n", name, cfg)
		}
	}
	fmt.Println(repro.Summary(*mode, res))
	if res.CacheStats != nil {
		fmt.Println(res.CacheStats)
	}
	if !res.Verified {
		os.Exit(1)
	}
}
