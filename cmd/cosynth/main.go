// Command cosynth runs the Verified Prompt Programming pipeline end to
// end for either paper use case and prints the transcript, the final
// configuration(s), and the leverage.
//
//	cosynth -mode translate
//	cosynth -mode notransit -n 7
//	cosynth -mode notransit -topo ring -n 8 -parallel 4
//	cosynth -mode notransit -topo dual-homed:8        # per-attachment specs
//	cosynth -mode notransit -topo random:20 -suite-parallel 8
//	cosynth -mode translate -rest http://localhost:9876       # via batfishd
//	cosynth -mode notransit -rest http://h1:9876,http://h2:9876 -rest http://h3:9876
//	cosynth -mode notransit -topo fat-tree:4 -shards 3        # in-process shard fleet
//	cosynth -mode notransit -topo random:12 -seed 5           # seeded graph variant
//	cosynth -mode notransit -errors fuzz.json                 # replay a cofuzz counterexample
//	cosynth -mode notransit -cache-dir .cache                 # durable verification cache
//	cosynth -mode notransit -topo random:40 -checkpoint ck.json -transcript run.txt
//	cosynth -mode notransit -topo random:40 -checkpoint ck.json -resume   # after a kill
//	cosynth -mode notransit -topo random:40 -trace trace.jsonl -metrics-addr :9090
//	cosynth -trace-summary trace.jsonl                        # attribute a traced run's time
//
// The -topo argument names any registered scenario (star, ring,
// full-mesh, fat-tree, dual-homed, multi-customer, random — see `netgen
// -list`) and accepts the name:size shorthand; an explicit :size wins
// over -n. The dual-homed, multi-customer, and random families exercise
// the per-attachment specification: community tags and local obligations
// are allocated per (router, ISP) attachment point, so routers may be
// homed to several ISPs and customers may attach anywhere.
//
// An explicitly-set -seed also selects the random family's graph
// variant (seed 0 and the default are the registry's legacy
// seeded-by-size stream). The -errors flag replays an attachment-keyed
// error plan — a cofuzz campaign report (its minimized counterexample is
// extracted, topology coordinates included) or a hand-written plan JSON
// — through the simulated LLM, reproducing a fuzz failure byte-
// identically in this CLI.
//
// The -rest flag is repeatable and comma-separated: one endpoint uses the
// plain REST client, several build a consistent-hash shard ring
// (rest.ShardedClient) that fans each iteration's batched checks across
// the fleet concurrently and fails a dead shard's work over onto the
// survivors.
//
// Observability: -metrics-addr serves the run's metrics registry over
// HTTP (GET /metrics Prometheus text, GET /debug/vars JSON) for the
// run's duration; -trace streams structured JSONL trace events (one
// span per LLM call, render, parse, check, batch RPC, cache and
// checkpoint event — see internal/obs) to a file; -trace-summary folds
// such a file into a per-stage/per-shard attribution table and exits.
// Telemetry never changes results: transcripts are byte-identical with
// it on, off, or scraped mid-run. -shards N spawns N in-process shard servers (for tests and
// benchmarks) and adds them to the ring. Against registry-aware servers
// the chosen -topo family is pre-warmed via /v1/scenario; older servers
// skip the warm-up gracefully.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"repro"
	"repro/internal/batfish"
	"repro/internal/batfish/rest"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/fuzz"
	"repro/internal/llm"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/topology"
)

// restFlag accumulates repeatable -rest values.
type restFlag []string

func (f *restFlag) String() string { return strings.Join(*f, ",") }

func (f *restFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// buildVerifier resolves the endpoint list into a verifier: nil for the
// in-process suite, the plain client for one endpoint, the sharded client
// for a fleet. The sharded client is returned separately so the caller
// can print per-shard stats.
func buildVerifier(endpoints []string) (core.Verifier, *rest.ShardedClient, error) {
	switch len(endpoints) {
	case 0:
		return nil, nil, nil
	case 1:
		client := rest.NewClient(endpoints[0])
		if err := client.Health(); err != nil {
			return nil, nil, fmt.Errorf("verifier %s unreachable: %w", endpoints[0], err)
		}
		return client, nil, nil
	default:
		sharded, err := rest.NewShardedClient(endpoints)
		if err != nil {
			return nil, nil, err
		}
		if err := sharded.Health(); err != nil {
			return nil, nil, err
		}
		// The ring keeps serving as long as one shard answers, but an
		// operator who listed N endpoints should hear when the run starts
		// on fewer — a silently smaller fleet skews any benchmark.
		for _, st := range sharded.Stats() {
			if st.Dead {
				log.Printf("cosynth: WARNING: shard %s unreachable at startup; continuing on survivors",
					st.Endpoint)
			}
		}
		return sharded, sharded, nil
	}
}

// warmFamily asks registry-aware servers to pre-warm the scenario family
// at this run's seed; servers that predate the endpoint are skipped
// silently — the warm-up is an optimization, never a requirement.
func warmFamily(verifier core.Verifier, sharded *rest.ShardedClient, name string, size int, seed int64) {
	arg := name
	if size > 0 {
		arg = fmt.Sprintf("%s:%d", name, size)
	}
	switch {
	case sharded != nil:
		if n, err := sharded.WarmScenario(arg, seed); err != nil {
			log.Printf("cosynth: scenario pre-warm: %v", err)
		} else if n > 0 {
			fmt.Printf("pre-warmed %s on %d shard(s)\n", arg, n)
		}
	case verifier != nil:
		client, ok := verifier.(*rest.Client)
		if !ok {
			return
		}
		resp, err := client.WarmScenario(arg, seed)
		switch {
		case err == nil:
			fmt.Printf("pre-warmed %s: %d routers, %d configs parsed server-side\n",
				resp.Scenario, resp.Routers, resp.WarmedConfigs)
		case rest.IsScenarioUnsupported(err):
			// Pre-registry server: nothing to warm.
		default:
			log.Printf("cosynth: scenario pre-warm: %v", err)
		}
	}
}

func main() {
	mode := flag.String("mode", "translate", "use case: translate | notransit")
	topoName := flag.String("topo", "star", "topology scenario for -mode notransit, as name[:size] (e.g. dual-homed:8)")
	n := flag.Int("n", 0, "topology size for -mode notransit (routers, or pod arity for fat-tree); 0 = scenario default; a :size in -topo wins")
	parallel := flag.Int("parallel", 0, "per-router repair workers for -mode notransit (<=1: sequential)")
	suiteParallel := flag.Int("suite-parallel", 0, "per-iteration verifier-suite workers (<=1: sequential scan)")
	noCache := flag.Bool("no-cache", false, "disable the incremental verification cache")
	globalMode := flag.String("global", "simulated",
		"global no-transit check for -mode notransit: simulated (full BGP simulation, the paper's default) | "+
			"compositional (verified-local-specs fast path with seeded sampled falsification; "+
			"falls back to the simulation when local spec coverage is incomplete)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "",
		"serve the run's metrics registry over HTTP at this address (GET /metrics, GET /debug/vars); "+
			`":0" picks a port and prints it`)
	tracePath := flag.String("trace", "",
		"stream structured JSONL trace events to this file (one span per pipeline stage; see -trace-summary)")
	traceSummary := flag.String("trace-summary", "",
		"fold a -trace file into a per-stage and per-shard attribution table, print it, and exit")
	seed := flag.Int64("seed", 1,
		"simulated-LLM seed; when set explicitly it also selects the random family's graph variant, so cofuzz cases replay")
	errorsPath := flag.String("errors", "",
		"replay an attachment-keyed error plan (a cofuzz report or plan JSON) in -mode notransit; "+
			"topology coordinates in the file override -topo/-seed")
	var restEndpoints restFlag
	flag.Var(&restEndpoints, "rest",
		"batfishd endpoint(s); repeatable and comma-separated — several endpoints form a consistent-hash shard ring")
	shards := flag.Int("shards", 0,
		"spawn N in-process shard servers and add them to the -rest ring (tests/benchmarks)")
	verifierURL := flag.String("verifier", "", "deprecated alias for a single -rest endpoint")
	inputPath := flag.String("config", "", "Cisco config to translate (default: bundled example)")
	showConfigs := flag.Bool("print-configs", false, "print the final configuration(s)")
	cacheDir := flag.String("cache-dir", "",
		"durable verification-cache directory: results persist across runs and are shared with "+
			"concurrent cosynth/cofuzz processes (also mounted into -shards servers)")
	checkpointPath := flag.String("checkpoint", "",
		"crash-checkpoint file: the repair loop snapshots progress here every iteration "+
			"(parallel runs: after every completed router)")
	resume := flag.Bool("resume", false,
		"resume the run recorded at -checkpoint; the final transcript is byte-identical to an uninterrupted run")
	transcriptPath := flag.String("transcript", "",
		"also write the transcript, punted findings, and summary to this file — the deterministic "+
			"run record, for diffing a resumed run against an uninterrupted one")
	flag.Parse()
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	compositional := false
	switch *globalMode {
	case "simulated":
	case "compositional":
		compositional = true
	default:
		log.Fatalf("cosynth: -global must be simulated or compositional, got %q", *globalMode)
	}
	if *traceSummary != "" {
		f, serr := os.Open(*traceSummary)
		if serr != nil {
			log.Fatalf("cosynth: -trace-summary: %v", serr)
		}
		summary, serr := obs.Summarize(f)
		f.Close()
		if serr != nil {
			log.Fatalf("cosynth: -trace-summary: %v", serr)
		}
		fmt.Print(summary)
		return
	}
	stopProfiles, err := prof.StartOpts(prof.Options{
		CPUPath: *cpuProfile, MemPath: *memProfile,
		BlockPath: *blockProfile, MutexPath: *mutexProfile,
	})
	if err != nil {
		log.Fatalf("cosynth: %v", err)
	}
	var reg *obs.Registry
	if *metricsAddr != "" || *tracePath != "" {
		reg = obs.NewRegistry()
	}
	if *metricsAddr != "" {
		bound, stopMetrics, merr := obs.Serve(*metricsAddr, reg)
		if merr != nil {
			log.Fatalf("cosynth: -metrics-addr: %v", merr)
		}
		defer stopMetrics()
		fmt.Printf("metrics on http://%s%s\n", bound, obs.MetricsPath)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer, err = obs.OpenTrace(*tracePath)
		if err != nil {
			log.Fatalf("cosynth: -trace: %v", err)
		}
		defer func() {
			if cerr := tracer.Close(); cerr != nil {
				log.Printf("cosynth: -trace: %v", cerr)
			}
		}()
	}

	if *verifierURL != "" {
		restEndpoints = append(restEndpoints, *verifierURL)
	}
	endpoints, err := rest.SplitEndpoints(restEndpoints)
	if err != nil {
		log.Fatalf("cosynth: -rest: %v", err)
	}
	var shardCache *durable.Cache
	if *cacheDir != "" && *shards > 0 {
		shardCache, err = durable.Open(*cacheDir, durable.Options{})
		if err != nil {
			log.Fatalf("cosynth: -cache-dir: %v", err)
		}
	}
	for i := 0; i < *shards; i++ {
		// Each in-process shard gets a shared parse cache (cross-request
		// reuse) but no scenario warmer: warming would re-run the very
		// synthesis this process is about to perform. With -cache-dir the
		// shards also mount the durable tier, sharing it with the engine.
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			log.Fatalf("cosynth: -shards: %v", lerr)
		}
		srv := &http.Server{Handler: rest.NewHandlerOpts(rest.HandlerOptions{
			Parses: batfish.NewParseCache(), Durable: shardCache, Metrics: reg})}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		endpoints = append(endpoints, "http://"+ln.Addr().String())
	}
	verifier, sharded, err := buildVerifier(endpoints)
	if err != nil {
		log.Fatalf("cosynth: %v", err)
	}

	var res *repro.Result
	switch *mode {
	case "translate":
		cfg := repro.ExampleCiscoConfig()
		if *inputPath != "" {
			data, rerr := os.ReadFile(*inputPath)
			if rerr != nil {
				log.Fatalf("cosynth: %v", rerr)
			}
			cfg = string(data)
		}
		res, err = repro.Translate(cfg, repro.TranslateOptions{
			Seed: *seed, Verifier: verifier, DisableVerifierCache: *noCache,
			CacheDir: *cacheDir, CheckpointPath: *checkpointPath, Resume: *resume,
			Metrics: reg, Trace: tracer})
	case "notransit":
		name, size, perr := netgen.ParseScenarioArg(*topoName)
		if perr != nil {
			log.Fatalf("cosynth: %v", perr)
		}
		if size == 0 {
			size = *n
		}
		// A fuzz replay file carries the full case: the topology
		// coordinates (family, size, seed, edge cap) and the error plan.
		// Missing coordinates fall back to the -topo/-seed flags, so a
		// bare hand-written plan file still works.
		var plan []llm.SiteErrors
		replay := fuzz.Case{Family: name, Size: size, Seed: 0, ExtraEdges: -1}
		if seedSet {
			replay.Seed = *seed
		}
		if *errorsPath != "" {
			cs, lerr := fuzz.LoadReplayCase(*errorsPath)
			if lerr != nil {
				log.Fatalf("cosynth: -errors: %v", lerr)
			}
			if cs.Family != "" {
				replay.Family = cs.Family
			}
			if cs.Size != 0 {
				replay.Size = cs.Size
			}
			if cs.Seed != 0 || cs.Family != "" {
				replay.Seed = cs.Seed
			}
			replay.ExtraEdges = cs.ExtraEdges
			replay.Plan = cs.Plan
			plan, lerr = cs.Plan.SiteErrors()
			if lerr != nil {
				log.Fatalf("cosynth: -errors: %v", lerr)
			}
			fmt.Printf("replaying fuzz case %s\n", replay)
		}
		warmFamily(verifier, sharded, replay.Family, replay.Size, *seed)
		var topo *topology.Topology
		topo, err = replay.Topology()
		if err != nil {
			log.Fatalf("cosynth: %v", err)
		}
		res, err = repro.Synthesize(topo, repro.SynthesizeOptions{
			Seed: *seed, Verifier: verifier, Parallelism: *parallel,
			SuiteParallelism: *suiteParallel, DisableVerifierCache: *noCache,
			ErrorPlan: plan, CompositionalGlobalCheck: compositional,
			FalsificationSeed: *seed, CacheDir: *cacheDir,
			CheckpointPath: *checkpointPath, Resume: *resume,
			Metrics: reg, Trace: tracer})
	default:
		log.Fatalf("cosynth: unknown mode %q", *mode)
	}
	stopProfiles()
	if err != nil {
		log.Fatalf("cosynth: %v", err)
	}

	fmt.Println("=== Transcript ===")
	fmt.Print(res.Transcript.String())
	if len(res.PuntedFindings) > 0 {
		fmt.Println("=== Punted to human ===")
		for _, p := range res.PuntedFindings {
			fmt.Println(" -", p)
		}
	}
	if *showConfigs {
		for name, cfg := range res.Configs {
			fmt.Printf("=== %s ===\n%s\n", name, cfg)
		}
	}
	fmt.Println(repro.Summary(*mode, res))
	if res.Global != nil && res.Global.Method != "" {
		fmt.Printf("global check: %s", res.Global.Method)
		if n := len(res.Global.FalsificationProbes); n > 0 {
			fmt.Printf(" (%d falsification probes)", n)
		}
		fmt.Println()
	}
	if res.CacheStats != nil {
		fmt.Println(res.CacheStats)
	}
	if sharded != nil {
		fmt.Println("=== Shards ===")
		for _, st := range sharded.Stats() {
			fmt.Println(" -", st)
		}
	}
	if *transcriptPath != "" {
		// The file holds only the run's deterministic record — transcript,
		// punted findings, summary — never cache or timing stats, so a
		// resumed run's file diffs clean against an uninterrupted run's.
		var b strings.Builder
		b.WriteString(res.Transcript.String())
		if len(res.PuntedFindings) > 0 {
			b.WriteString("=== Punted to human ===\n")
			for _, p := range res.PuntedFindings {
				b.WriteString(" - " + p + "\n")
			}
		}
		b.WriteString(repro.Summary(*mode, res) + "\n")
		if werr := os.WriteFile(*transcriptPath, []byte(b.String()), 0o644); werr != nil {
			log.Fatalf("cosynth: -transcript: %v", werr)
		}
	}
	if !res.Verified {
		os.Exit(1)
	}
}
