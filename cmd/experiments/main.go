// Command experiments regenerates every table and figure of the paper
// (the E1–E10 index in DESIGN.md) and prints paper-vs-measured rows in
// the format EXPERIMENTS.md records.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/netgen"
)

func main() {
	sizes := flag.Bool("sweep", true, "include the leverage-vs-size sweep (E10)")
	flag.Parse()

	fmt.Println("== E1: Table 1 — sample rectification prompts (translation) ==")
	prompts, err := repro.Table1RectificationPrompts()
	check(err)
	for _, p := range prompts {
		fmt.Printf("  [%s]\n    %s\n", p.Type, p.Prompt)
	}

	fmt.Println("\n== E2: Table 2 — translation errors and automated fixability ==")
	rows, err := repro.Table2TranslationErrors()
	check(err)
	for _, r := range rows {
		fixed := "Yes"
		if !r.FixedByAutomated {
			fixed = "No"
		}
		fmt.Printf("  %-35s %-20s fixed by generated prompt: %s\n", r.Error, r.Type, fixed)
	}

	fmt.Println("\n== E3: §3.2 — translation leverage ==")
	tl, err := repro.ExperimentTranslationLeverage()
	check(err)
	fmt.Println("  paper:    ~20 automated / 2 human prompts, leverage 10X")
	fmt.Printf("  measured: %s\n", tl)

	fmt.Println("\n== E4: Table 3 — sample rectification prompts (local synthesis) ==")
	prompts, err = repro.Table3RectificationPrompts()
	check(err)
	for _, p := range prompts {
		fmt.Printf("  [%s]\n    %s\n", p.Type, p.Prompt)
	}

	fmt.Println("\n== E5: §4.2 — no-transit leverage ==")
	nl, err := repro.ExperimentNoTransitLeverage(7)
	check(err)
	fmt.Println("  paper:    12 automated / 2 human prompts, leverage 6X")
	fmt.Printf("  measured: %s\n", nl)

	fmt.Println("\n== E6: Figure 4 — star topology ==")
	topo, err := netgen.Star(7)
	check(err)
	fmt.Printf("  %d routers; hub R1 with customer 1.0.0.2/AS %d; spokes R2..R7 each with one ISP\n",
		len(topo.Routers), netgen.CustomerAS)

	fmt.Println("\n== E7: §4.1 — local vs global specification prompting ==")
	local, global, err := repro.AblationLocalVsGlobal(7)
	check(err)
	fmt.Printf("  local:  %s\n  global: %s\n", local, global)

	fmt.Println("\n== E8: §4.2 — IIP database ablation ==")
	withIIP, withoutIIP, err := repro.AblationIIP(7)
	check(err)
	fmt.Printf("  with:    %s\n  without: %s\n", withIIP, withoutIIP)

	fmt.Println("\n== Ablation: humanized vs raw verifier feedback ==")
	h, r, err := repro.AblationHumanizer()
	check(err)
	fmt.Printf("  humanized: %s\n  raw:       %s\n", h, r)

	if *sizes {
		fmt.Println("\n== E10: leverage vs network size ==")
		reports, err := repro.LeverageVsNetworkSize([]int{3, 5, 7, 9, 11})
		check(err)
		for _, rep := range reports {
			fmt.Printf("  %s\n", rep)
		}
	}

	fmt.Println("\n== E12: topology scenario sweep (extension) ==")
	sweep, err := repro.TopologySweep()
	check(err)
	for _, rep := range sweep {
		fmt.Printf("  %s\n", rep)
	}

	fmt.Println("\n== E13: parallel vs sequential synthesis (extension) ==")
	const parScenario, parSize = "full-mesh", 16
	seqStart := time.Now()
	seqRep, err := repro.ExperimentTopologyLeverage(parScenario, parSize, 1)
	check(err)
	seqDur := time.Since(seqStart)
	parStart := time.Now()
	parRep, err := repro.ExperimentTopologyLeverage(parScenario, parSize, 8)
	check(err)
	parDur := time.Since(parStart)
	fmt.Printf("  sequential: %s (%.0f ms)\n", seqRep, float64(seqDur.Microseconds())/1000)
	fmt.Printf("  parallel-8: %s (%.0f ms)\n", parRep, float64(parDur.Microseconds())/1000)
}

func check(err error) {
	if err != nil {
		log.Fatalf("experiments: %v", err)
	}
}
