// Command netgen is the paper's network generator (§4.1), grown into a
// scenario registry: given a topology family and a size parameter it
// emits the JSON dictionary and/or the machine-generated natural-language
// description that the Modularizer consumes. Figure 4's star is joined by
// ring, full-mesh, and fat-tree (single-attachment families) and by
// dual-homed, multi-customer, and random — attachment-keyed families
// whose dictionaries carry first-class attachment ordinals ("attachment"
// on external neighbors) and whose descriptions state the attachment
// facts (ordinal and originated prefixes) per external peer.
//
//	netgen -list
//	netgen -topo dual-homed:8 -json
//	netgen -topo random -n 20 -text
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/netgen"
)

func main() {
	scenario := flag.String("topo", "star", "topology scenario as name[:size]: "+
		strings.Join(netgen.ScenarioNames(), ", "))
	n := flag.Int("n", 0, "size parameter (routers, or pod arity for fat-tree); 0 = scenario default; a :size in -topo wins")
	jsonOut := flag.Bool("json", false, "emit the JSON topology dictionary")
	textOut := flag.Bool("text", false, "emit the natural-language description")
	list := flag.Bool("list", false, "list the registered scenarios and exit")
	flag.Parse()
	if *list {
		for _, s := range netgen.Scenarios() {
			fmt.Printf("%-10s %s (%s; default %d)\n", s.Name, s.Summary, s.SizeHint, s.DefaultSize)
		}
		return
	}
	if !*jsonOut && !*textOut {
		*jsonOut, *textOut = true, true
	}

	name, size, err := netgen.ParseScenarioArg(*scenario)
	if err != nil {
		log.Fatalf("netgen: %v", err)
	}
	if size == 0 {
		size = *n
	}
	topo, err := netgen.Generate(name, size)
	if err != nil {
		log.Fatalf("netgen: %v", err)
	}
	if *jsonOut {
		data, err := topo.Marshal()
		if err != nil {
			log.Fatalf("netgen: %v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
	if *textOut {
		fmt.Print(netgen.Describe(topo))
	}
}
