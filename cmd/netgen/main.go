// Command netgen is the paper's network generator (§4.1): given only the
// number of routers, it emits the star topology's JSON dictionary and/or
// its machine-generated natural-language description (Figure 4).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/netgen"
)

func main() {
	n := flag.Int("n", 7, "number of routers (R1 + n-1 ISP-facing routers)")
	jsonOut := flag.Bool("json", false, "emit the JSON topology dictionary")
	textOut := flag.Bool("text", false, "emit the natural-language description")
	flag.Parse()
	if !*jsonOut && !*textOut {
		*jsonOut, *textOut = true, true
	}

	topo, err := netgen.Star(*n)
	if err != nil {
		log.Fatalf("netgen: %v", err)
	}
	if *jsonOut {
		data, err := topo.Marshal()
		if err != nil {
			log.Fatalf("netgen: %v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
	if *textOut {
		fmt.Print(netgen.Describe(topo))
	}
}
