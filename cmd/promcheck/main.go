// Command promcheck validates a Prometheus text-format (0.0.4) metrics
// exposition — the output of a batfishd or cosynth /metrics scrape —
// without any external dependency, using the same parser the registry's
// tests gate on (internal/obs.ValidateExposition).
//
//	curl -s http://localhost:9876/metrics | promcheck
//	promcheck scrape.txt
//
// Exit status: 0 when the exposition parses (the sample count is
// printed), 1 otherwise with the first violation on stderr. CI uses it
// to prove a mid-test scrape of a live shard is well-formed.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/obs"
)

func main() {
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatalf("promcheck: %v", err)
		}
		defer f.Close()
		r, name = f, os.Args[1]
	}
	data, err := io.ReadAll(r)
	if err != nil {
		log.Fatalf("promcheck: %s: %v", name, err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(data)); err != nil {
		log.Fatalf("promcheck: %s: %v", name, err)
	}
	fmt.Printf("promcheck: %s: valid exposition (%d bytes)\n", name, len(data))
}
