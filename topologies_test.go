package repro

import (
	"testing"

	"repro/internal/batfish"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// TestTopologyVerifyOnScenarios is the topology-verifier property test on
// every registered scenario: a configuration built exactly from the spec
// produces no findings, and representative mutations are each caught.
func TestTopologyVerifyOnScenarios(t *testing.T) {
	for _, info := range Topologies() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			topo, _, err := GenerateTopology(info.Name, info.DefaultSize)
			if err != nil {
				t.Fatal(err)
			}
			for i := range topo.Routers {
				spec := &topo.Routers[i]
				clean := specDevice(spec)
				if finds := topology.Verify(spec, clean); len(finds) != 0 {
					t.Fatalf("%s: spec-faithful config has findings: %v", spec.Name, finds)
				}
				// A wrong interface address must be caught.
				bad := specDevice(spec)
				bad.Interfaces[0].Address.Addr++
				if finds := topology.Verify(spec, bad); len(finds) == 0 {
					t.Errorf("%s: wrong address not caught", spec.Name)
				}
				// A missing neighbor must be caught.
				bad = specDevice(spec)
				bad.BGP.Neighbors = bad.BGP.Neighbors[1:]
				if finds := topology.Verify(spec, bad); len(finds) == 0 {
					t.Errorf("%s: missing neighbor not caught", spec.Name)
				}
			}
		})
	}
}

// TestGlobalNoTransitCatchesMissingFilter breaks one attachment point's
// egress filter on a verified ring and expects the global BGP simulation
// to report the resulting transit path.
func TestGlobalNoTransitCatchesMissingFilter(t *testing.T) {
	res, err := Synthesize(mustTopo(t, "ring", 6), SynthesizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("ring-6 did not verify:\n%s", res.Transcript)
	}
	topo := mustTopo(t, "ring", 6)
	devs := map[string]*netcfg.Device{}
	for name, text := range res.Configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	// Detach R3's egress filter: ISP3 should now see other ISPs' prefixes.
	r3 := devs["R3"]
	for _, nb := range r3.BGP.Neighbors {
		if nb.ExportPolicy != "" {
			nb.ExportPolicy = ""
		}
	}
	global, err := lightyear.CheckGlobalNoTransit(topo, devs)
	if err != nil {
		t.Fatal(err)
	}
	if global.OK() || len(global.Violations) == 0 {
		t.Errorf("broken egress filter not caught: %+v", global)
	}
}

func mustTopo(t *testing.T, name string, size int) *topology.Topology {
	t.Helper()
	topo, _, err := GenerateTopology(name, size)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestTopologySweepExperiment runs the registry sweep experiment end to
// end: every scenario verifies.
func TestTopologySweepExperiment(t *testing.T) {
	reports, err := TopologySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Topologies()) {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		t.Logf("%s", r)
		if !r.Verified {
			t.Errorf("%s did not verify", r.Name)
		}
	}
}
