package repro

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/fuzz"
	"repro/internal/netgen"
)

// TestRandomGraphSpecsImplyGlobal drives the fuzz campaign engine over
// the random family — the migrated form of the old fixed-seed loop.
// Where the seed test pinned one graph per size, the campaign varies
// seeds per size (each (size, seed) pair is a distinct graph variant
// with its own derived error plan) and asserts the full oracle on every
// case: the per-attachment spec satisfies the modular proof obligation,
// the VPP loop converges to a verified result under the injected
// errors, the final configurations independently pass the composed
// global no-transit check, breaking one attachment's egress filter
// breaks it (Falsify — the composition is not vacuous), and the loop's
// iterations stay bounded. Runtime stays bounded via the campaign
// budget: cases that miss the budget are skipped, never failed.
func TestRandomGraphSpecsImplyGlobal(t *testing.T) {
	c := fuzz.Campaign{
		Family:  "random",
		Sizes:   []int{6, 10, 14, 19},
		Seeds:   3,
		Workers: 4,
		Budget:  2 * time.Minute,
		Falsify: true,
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases == 0 {
		t.Fatal("the budget expired before any case ran")
	}
	if rep.Failures != 0 {
		t.Fatalf("campaign failed %d/%d cases; counterexample: %+v",
			rep.Failures, rep.Cases, rep.Counterexample)
	}
	if rep.PlannedErrors == 0 {
		t.Fatal("no errors were planned: the sweep exercised nothing")
	}

	// Seeds genuinely vary the graph per size: two seeds at one size are
	// different topologies, unlike the old seeded-by-size generator.
	a, err := netgen.RandomWith(14, netgen.RandomOpts{Seed: 1, ExtraEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := netgen.RandomWith(14, netgen.RandomOpts{Seed: 2, ExtraEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("seeds 1 and 2 generated the same random-14 graph")
	}
}
