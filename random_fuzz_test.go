package repro

import (
	"testing"

	"repro/internal/batfish"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
)

// TestRandomGraphSpecsImplyGlobal is the seeded random-graph fuzz test
// for the per-attachment spec model: across random scenarios of varying
// size (and therefore varying degree distribution and single-/dual-homed
// ISP mix — the generator is seeded by the size, so every case is
// reproducible), the derived local specification must (1) satisfy the
// modular proof obligation, (2) drive the VPP loop to a verified result,
// and (3) actually compose into the global no-transit check: the final
// configurations pass lightyear's whole-network BGP simulation, and
// breaking one attachment's egress filter breaks it.
func TestRandomGraphSpecsImplyGlobal(t *testing.T) {
	for _, n := range []int{6, 10, 14, 19} {
		topo := mustTopo(t, "random", n)

		// The modular proof obligation: for every ordered pair of
		// attachments, a tag at one and a drop at the other.
		reqs := lightyear.SpecFor(topo)
		if err := lightyear.CoverageComplete(topo, reqs); err != nil {
			t.Fatalf("random-%d: per-attachment spec incomplete: %v", n, err)
		}
		for _, r := range reqs {
			if r.Attachment == (lightyear.AttachmentRef{}) {
				t.Fatalf("random-%d: requirement %q lacks an attachment identity", n, r.Description)
			}
		}

		// End to end: local specs verified per attachment, composed by the
		// global BGP simulation inside Synthesize.
		res, err := Synthesize(mustTopo(t, "random", n), SynthesizeOptions{})
		if err != nil {
			t.Fatalf("random-%d: %v", n, err)
		}
		if !res.Verified {
			t.Fatalf("random-%d did not verify:\n%s", n, res.Transcript)
		}

		// Re-run the global check explicitly on the final configurations,
		// then falsify it: detaching one attachment's egress filter must
		// surface a transit violation, proving the composed check is not
		// vacuous on this graph.
		devs := map[string]*netcfg.Device{}
		for name, text := range res.Configs {
			dev, _ := batfish.ParseConfig(text)
			devs[name] = dev
		}
		global, err := lightyear.CheckGlobalNoTransit(topo, devs)
		if err != nil {
			t.Fatalf("random-%d: %v", n, err)
		}
		if !global.OK() {
			t.Fatalf("random-%d: composed configs fail the global check: %+v", n, global)
		}
		atts := lightyear.ISPAttachments(topo)
		if len(atts) < 2 {
			t.Fatalf("random-%d: %d attachments, want >= 2", n, len(atts))
		}
		victim := atts[0]
		for _, nb := range devs[victim.Router].BGP.Neighbors {
			if nb.ExportPolicy == victim.EgressPolicy() {
				nb.ExportPolicy = ""
			}
		}
		broken, err := lightyear.CheckGlobalNoTransit(topo, devs)
		if err != nil {
			t.Fatalf("random-%d: %v", n, err)
		}
		if broken.OK() || len(broken.Violations) == 0 {
			t.Errorf("random-%d: removing %s's egress filter was not caught: %+v",
				n, victim.Router, broken)
		}
	}
}
