package core

import (
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/netgen"
)

// TestIncrementalPolicyAddition is the paper's §6 open question run as an
// experiment: starting from verified configs, add a new policy, break an
// existing attachment in the process, and rely on the non-interference
// re-verification to catch and fix it.
func TestIncrementalPolicyAddition(t *testing.T) {
	topo, err := netgen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	model := llm.NewSynthesizer(llm.DefaultSynthConfig())
	base, err := Synthesize(topo, SynthOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Verified {
		t.Fatalf("base synthesis not verified:\n%s", base.Transcript)
	}

	res, err := AddPolicyIncremental(topo, base.Configs, IncrementalOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("incremental change did not verify:\n%s", res.Transcript)
	}
	a, h := res.Transcript.Counts()
	if h != 1 {
		t.Errorf("human prompts = %d, want 1 (the change request)", h)
	}
	if a < 1 {
		t.Errorf("automated prompts = %d; the interference must cost at least one", a)
	}
	// The interference prompt must have fired (the model drops an egress
	// attachment on its first edit).
	sawInterference := false
	for _, rec := range res.Transcript {
		if strings.Contains(rec.Prompt, "interferes with the existing") {
			sawInterference = true
		}
	}
	if !sawInterference {
		t.Error("non-interference check never fired; the hazard was not exercised")
	}
	// The final R1 config carries the new policy AND all old attachments.
	r1 := res.Configs["R1"]
	if !strings.Contains(r1, CustomerTagPolicy) {
		t.Error("new route-map missing from final config")
	}
	if !strings.Contains(r1, "route-map "+CustomerTagPolicy+" in") &&
		!strings.Contains(r1, "neighbor 1.0.0.2 route-map "+CustomerTagPolicy+" in") {
		t.Errorf("new route-map not attached at the customer ingress:\n%s", r1)
	}
}

// TestIncrementalRequiresBase rejects the change before any generation.
func TestIncrementalRequiresBase(t *testing.T) {
	topo, _ := netgen.Star(3)
	model := llm.NewSynthesizer(llm.DefaultSynthConfig())
	_, err := AddPolicyIncremental(topo, map[string]string{}, IncrementalOptions{Model: model})
	if err == nil {
		t.Fatal("incremental change without a base should error")
	}
}
