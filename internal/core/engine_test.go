package core

import (
	"strings"
	"testing"

	"repro/internal/exampledata"
	"repro/internal/juniper"
	"repro/internal/llm"
	"repro/internal/netgen"
	"repro/internal/translate"

	"repro/internal/cisco"
)

func TestTranscriptCountsAndLeverage(t *testing.T) {
	tr := Transcript{
		{Kind: Human, Stage: StageTask},
		{Kind: Automated, Stage: StageSyntax},
		{Kind: Automated, Stage: StagePrint},
		{Kind: Human, Stage: StageSemantic},
	}
	a, h := tr.Counts()
	if a != 2 || h != 2 {
		t.Errorf("counts = (%d,%d)", a, h)
	}
	res := &Result{Transcript: tr}
	if res.Leverage() != 1.0 {
		t.Errorf("leverage = %v", res.Leverage())
	}
	allAuto := &Result{Transcript: Transcript{{Kind: Automated}}}
	if allAuto.Leverage() != 1 {
		t.Errorf("zero-human leverage = %v", allAuto.Leverage())
	}
}

// TestTranslateWithScriptedModel drives the engine with a fully controlled
// model: first response is a broken translation, second (after one syntax
// prompt) is the golden one; the print request replays it.
func TestTranslateWithScriptedModel(t *testing.T) {
	orig, _ := cisco.Parse(exampledata.CiscoExample)
	golden := juniper.Print(translate.Golden(orig))
	broken := strings.Replace(golden, "autonomous-system 65000;\n", "", 1)
	model := &llm.ScriptedModel{Responses: []string{broken, golden, golden}}
	res, err := Translate(exampledata.CiscoExample, TranslateOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("not verified:\n%s", res.Transcript)
	}
	a, h := res.Transcript.Counts()
	if h != 1 || a != 2 { // syntax prompt + print
		t.Errorf("counts = (%d auto, %d human):\n%s", a, h, res.Transcript)
	}
	// The syntax prompt must have been humanized.
	if !strings.Contains(model.Calls[1].Content, "There is a syntax error") {
		t.Errorf("second prompt = %q", model.Calls[1].Content)
	}
}

// TestTranslateGivesUpWithoutHuman verifies the loop surrenders cleanly
// when the model never fixes and the oracle refuses to help.
func TestTranslateGivesUpWithoutHuman(t *testing.T) {
	cfg := llm.TranslateConfig{Seed: 1,
		Inject: map[llm.TranslateError]bool{llm.ErrRedistribution: true}}
	res, err := Translate(exampledata.CiscoExample, TranslateOptions{
		Model: llm.NewTranslator(cfg),
		Human: NoHuman{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("should not verify without the human fix")
	}
	a, h := res.Transcript.Counts()
	if h != 1 { // only the task prompt
		t.Errorf("human prompts = %d", h)
	}
	if a != 2 { // the two failed attempts within budget
		t.Errorf("automated prompts = %d:\n%s", a, res.Transcript)
	}
}

func TestTranslateRequiresModel(t *testing.T) {
	if _, err := Translate("hostname x\n", TranslateOptions{}); err == nil {
		t.Fatal("nil model should error")
	}
}

func TestSynthesizeRequiresModel(t *testing.T) {
	topo, _ := netgen.Star(3)
	if _, err := Synthesize(topo, SynthOptions{}); err == nil {
		t.Fatal("nil model should error")
	}
}

// TestSynthesizeSkipGlobalCheck confirms the flag short-circuits the BGP
// simulation (the transcripts must still converge locally).
func TestSynthesizeSkipGlobalCheck(t *testing.T) {
	topo, _ := netgen.Star(3)
	res, err := Synthesize(topo, SynthOptions{
		Model:           llm.NewSynthesizer(llm.DefaultSynthConfig()),
		SkipGlobalCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("not verified:\n%s", res.Transcript)
	}
}

// TestSynthesizeGlobalOscillationFails is E7's global half in isolation.
func TestSynthesizeGlobalOscillationFails(t *testing.T) {
	topo, _ := netgen.Star(5)
	model := llm.NewGlobalSynthesizer()
	res, err := SynthesizeGlobal(topo, GlobalSynthOptions{Model: model, MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("oscillating strategies should never verify")
	}
	a, h := res.Transcript.Counts()
	if h != 1 || a != 4 {
		t.Errorf("counts = (%d,%d), want (4,1)", a, h)
	}
	if model.StrategySwitches < 3 {
		t.Errorf("switches = %d, want oscillation", model.StrategySwitches)
	}
	// Every automated prompt must carry a counterexample.
	for _, rec := range res.Transcript[1:] {
		if !strings.Contains(rec.Prompt, "Counterexample") {
			t.Errorf("prompt lacks counterexample: %q", rec.Prompt)
		}
	}
}

// TestPaperHumanPrompts verifies the oracle recognizes the three cases.
func TestPaperHumanPrompts(t *testing.T) {
	h := PaperHuman{}
	redistPrompt := "the BGP export policy performs the following action: REJECT. But, in the " +
		"translation, the corresponding BGP export policy performs the following action: ACCEPT"
	if p, ok := h.Correct(StageSemantic, redistPrompt); !ok || !strings.Contains(p, "from bgp") {
		t.Errorf("redistribution: ok=%v p=%q", ok, p)
	}
	if p, ok := h.Correct(StageSemantic,
		"The route-map X permits routes that have the community 100:1"); !ok ||
		!strings.Contains(p, "separate route-map stanza") {
		t.Errorf("and/or: ok=%v p=%q", ok, p)
	}
	if p, ok := h.Correct(StageSyntax,
		"There is a syntax error: 'neighbor 1.2.3.4' ('neighbor' is not a top-level command)"); !ok ||
		!strings.Contains(p, "router bgp") {
		t.Errorf("misplaced neighbor: ok=%v p=%q", ok, p)
	}
	if _, ok := h.Correct(StageSyntax, "some unknown mystery"); ok {
		t.Error("oracle should refuse unknown findings")
	}
	if p, ok := (HumanizerHuman{}).Correct(StageSyntax, "some unknown mystery"); !ok || p == "" {
		t.Error("HumanizerHuman should always forward")
	}
}

// TestSynthesizeRESTParity runs the synthesis pipeline against the REST
// verifier and checks it matches the in-process run exactly.
func TestSynthesizeRESTParity(t *testing.T) {
	topo, _ := netgen.Star(5)
	local, err := Synthesize(topo, SynthOptions{Model: llm.NewSynthesizer(llm.DefaultSynthConfig())})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Synthesize(topo, SynthOptions{
		Model:    llm.NewSynthesizer(llm.DefaultSynthConfig()),
		Verifier: newRESTVerifier(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	la, lh := local.Transcript.Counts()
	ra, rh := remote.Transcript.Counts()
	if la != ra || lh != rh || local.Verified != remote.Verified {
		t.Errorf("local (%d,%d,%v) != remote (%d,%d,%v)",
			la, lh, local.Verified, ra, rh, remote.Verified)
	}
}
