package core

import (
	"fmt"

	"repro/internal/humanizer"
	"repro/internal/llm"
	"repro/internal/modularizer"
	"repro/internal/topology"
)

// SynthOptions configures the local-synthesis pipeline (§4).
type SynthOptions struct {
	Model    llm.Model
	Verifier Verifier
	Human    HumanOracle
	// IIP is the initial instruction prompt database (§4.2); nil means
	// the paper's default database. Use NoIIP to ablate.
	IIP []llm.IIP
	// NoIIP disables the IIP database entirely (ablation E8).
	NoIIP bool
	// MaxAttemptsPerFinding bounds automated prompts per finding before
	// punting (default 3, matching the paper's §4 experience where the
	// counterexample prompt was retried before the human stepped in).
	MaxAttemptsPerFinding int
	// MaxIterations bounds total verify/correct cycles (default 128).
	MaxIterations int
	// SkipGlobalCheck skips the final whole-network BGP simulation.
	SkipGlobalCheck bool
}

func (o *SynthOptions) fill() {
	if o.Verifier == nil {
		o.Verifier = LocalVerifier{}
	}
	if o.Human == nil {
		o.Human = PaperHuman{}
	}
	if o.MaxAttemptsPerFinding == 0 {
		o.MaxAttemptsPerFinding = 3
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 128
	}
	if o.IIP == nil && !o.NoIIP {
		o.IIP = llm.DefaultIIPDatabase()
	}
	if o.NoIIP {
		o.IIP = nil
	}
}

// Synthesize runs the full VPP synthesis pipeline on a topology: the human
// task kickoff, the Modularizer's per-router prompts (automated), then the
// verification loop — syntax (Batfish), topology verifier, and local
// policies (Batfish SearchRoutePolicies per Lightyear) — finishing with
// the whole-network BGP simulation as the global check (§4.1).
func Synthesize(topo *topology.Topology, opts SynthOptions) (*Result, error) {
	opts.fill()
	if opts.Model == nil {
		return nil, fmt.Errorf("synthesize: options require a model")
	}
	sess := newSession(opts.Model, opts.IIP)

	// The paper "begin[s] by specifying the task to GPT in an initial
	// prompt using a couple of sentences" (§4.1) — a human prompt.
	kickoff := "We are going to configure a network of routers. The goal is a no-transit " +
		"policy: no two ISPs should be able to reach each other through this network, but " +
		"all ISPs and the CUSTOMER should be able to reach each other. I will describe " +
		"each router in turn; generate its Cisco IOS configuration file."
	if _, _, err := sess.send(Human, StageTask, "kickoff", kickoff); err != nil {
		return nil, err
	}

	// Modularizer prompts: one automated prompt per router (§2).
	tasks := modularizer.Tasks(topo)
	configs := map[string]string{}
	for _, task := range tasks {
		resp, _, err := sess.send(Automated, StageTask, task.Router, task.Prompt)
		if err != nil {
			return nil, err
		}
		configs[task.Router] = resp
	}

	attempts := map[string]int{}
	verified := false
	for iter := 0; iter < opts.MaxIterations; iter++ {
		router, key, stage, prompt, err := nextSynthesisFinding(opts.Verifier, topo, tasks, configs)
		if err != nil {
			return nil, err
		}
		if key == "" {
			verified = true
			break
		}
		attempts[key]++
		kind := Automated
		if attempts[key] > opts.MaxAttemptsPerFinding {
			manual, ok := opts.Human.Correct(stage, prompt)
			if !ok {
				return &Result{Verified: false, Transcript: sess.transcript,
					Configs: configs, PuntedFindings: sess.punted}, nil
			}
			sess.punted = append(sess.punted, key)
			prompt = fmt.Sprintf("For router %s: %s", router, manual)
			kind = Human
		}
		resp, _, err := sess.send(kind, stage, router, prompt)
		if err != nil {
			return nil, err
		}
		configs[router] = resp
	}

	if verified && !opts.SkipGlobalCheck {
		global, err := opts.Verifier.GlobalNoTransit(topo, configs)
		if err != nil {
			return nil, err
		}
		verified = global.OK()
	}
	return &Result{
		Verified:       verified,
		Transcript:     sess.transcript,
		Configs:        configs,
		PuntedFindings: sess.punted,
	}, nil
}

// nextSynthesisFinding returns the first outstanding finding across the
// three per-router verifiers, in the paper's masking order: syntax, then
// topology, then local-policy semantics.
func nextSynthesisFinding(v Verifier, topo *topology.Topology, tasks []modularizer.Task,
	configs map[string]string) (router, key string, stage Stage, prompt string, err error) {
	// Syntax, per router in topology order.
	for _, task := range tasks {
		warns, err := v.CheckSyntax(configs[task.Router])
		if err != nil {
			return "", "", "", "", err
		}
		if len(warns) > 0 {
			w := warns[0]
			prompt := fmt.Sprintf("In the configuration of router %s: %s",
				task.Router, humanizer.Syntax(w))
			return task.Router, "syntax:" + task.Router + ":" + w.Reason + ":" + w.Text,
				StageSyntax, prompt, nil
		}
	}
	// Topology.
	for _, task := range tasks {
		spec := topo.Router(task.Router)
		if spec == nil {
			continue
		}
		finds, err := v.VerifyTopology(*spec, configs[task.Router])
		if err != nil {
			return "", "", "", "", err
		}
		if len(finds) > 0 {
			f := finds[0]
			return task.Router, "topology:" + task.Router + ":" + f.Issue,
				StageTopology, humanizer.Topology(f), nil
		}
	}
	// Local policies.
	for _, task := range tasks {
		for _, req := range task.LocalSpec {
			viol, bad, err := v.CheckLocalPolicy(configs[task.Router], req)
			if err != nil {
				return "", "", "", "", err
			}
			if bad {
				return task.Router, "semantic:" + task.Router + ":" + req.Policy + ":" + req.Description,
					StageSemantic, humanizer.Semantic(viol), nil
			}
		}
	}
	return "", "", "", "", nil
}
