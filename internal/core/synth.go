package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/batfish"
	"repro/internal/durable"
	"repro/internal/humanizer"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/modularizer"
	"repro/internal/netcfg"
	"repro/internal/obs"
	"repro/internal/topology"
)

// SynthOptions configures the local-synthesis pipeline (§4).
type SynthOptions struct {
	Model llm.Model
	// Verifier is the verification suite; nil runs it in process. A
	// verifier that also implements the suite.Backend seam (rest.Client,
	// rest.ShardedClient) gets each iteration's outstanding checks
	// prefetched in bulk — one batched round-trip per shard.
	Verifier Verifier
	Human    HumanOracle
	// IIP is the initial instruction prompt database (§4.2); nil means
	// the paper's default database. Use NoIIP to ablate.
	IIP []llm.IIP
	// NoIIP disables the IIP database entirely (ablation E8).
	NoIIP bool
	// MaxAttemptsPerFinding bounds automated prompts per finding before
	// punting (default 3, matching the paper's §4 experience where the
	// counterexample prompt was retried before the human stepped in).
	MaxAttemptsPerFinding int
	// MaxIterations bounds total verify/correct cycles (default 128).
	MaxIterations int
	// SkipGlobalCheck skips the final whole-network BGP simulation.
	SkipGlobalCheck bool
	// Parallelism bounds the worker pool for per-router synthesis. Values
	// <= 1 run the paper's sequential loop. Each router's inner repair
	// loop is independent of the others (per-router prompts, per-router
	// verifiers), so with Parallelism > 1 the routers are repaired
	// concurrently and the per-router transcripts are merged
	// deterministically in topology order: repeated parallel runs are
	// reproducible, and runs that converge produce the same accounting as
	// the sequential loop. The budgets differ on non-converging runs:
	// sequentially MaxIterations caps total cycles across all routers and
	// a human give-up aborts the whole loop, while in parallel each
	// router's loop has its own MaxIterations cap and a give-up only
	// stops that router's repair. The Model is serialized internally, but
	// Verifier and Human are called concurrently from the workers, so
	// custom implementations must be safe for concurrent use (the
	// built-ins — LocalVerifier, rest.Client, PaperHuman — are stateless).
	Parallelism int
	// SuiteParallelism bounds a second worker pool inside each pipeline
	// iteration: the independent per-router / per-requirement checks of
	// one stage fan out concurrently, with the lowest topology-order
	// finding winning deterministically, so transcripts stay byte-identical
	// to the sequential scan. This is the lever that speeds up the star
	// hub, where every policy lives on one router and the per-router pool
	// has nothing to parallelize. Values <= 1 scan sequentially.
	SuiteParallelism int
	// DisableCache turns off the incremental verification cache, restoring
	// the paper's behaviour of re-verifying every router's configuration
	// on every iteration (the E14 baseline).
	DisableCache bool
	// DurableCache mounts a disk-backed tier under the verification cache
	// (see CachedVerifier.SetDurable): results persist across process
	// restarts and are shared with any concurrent run or resumed run
	// pointed at the same directory. Ignored under DisableCache.
	DurableCache *durable.Cache
	// Checkpoint periodically snapshots repair-loop progress to an
	// atomically-written file so a killed run can resume (see
	// CheckpointOptions). Nil disables checkpointing.
	Checkpoint *CheckpointOptions
	// GlobalCheck selects the final whole-network check (see
	// GlobalCheckMode). The zero value runs the paper-faithful full BGP
	// simulation; GlobalCheckCompositional runs the verified-local-specs
	// fast path with seeded sampled falsification, falling back to the
	// simulation on topologies whose local spec coverage is incomplete.
	// The repair loop's transcript is finished before either check runs,
	// so the mode never changes a byte of the transcript — only how the
	// final verdict is computed.
	GlobalCheck GlobalCheckMode
	// GlobalCheckSeed keys the compositional check's falsification
	// sampling (0 = seed 1). Ignored under GlobalCheckSimulated.
	GlobalCheckSeed int64
	// Metrics is an optional observability registry: the run's cache,
	// parse, durable-tier, and transport instruments register themselves
	// into it so a live /metrics endpoint (or /debug/vars) can watch the
	// run. Nil keeps the instruments private. Telemetry never changes a
	// result — transcripts are byte-identical with it on, off, or
	// scraped mid-run.
	Metrics *obs.Registry
	// Trace is an optional JSONL trace sink (see internal/obs): every
	// pipeline stage emits spans keyed by run/iteration/router so a
	// trace file reconstructs where the run's time and round-trips went.
	// Nil disables tracing.
	Trace *obs.Tracer
	// RunLabel names this run's trace spans; "synth" when empty.
	RunLabel string
}

// GlobalCheckMode selects Synthesize's final whole-network check.
type GlobalCheckMode int

const (
	// GlobalCheckSimulated is the paper's global check: simulate the whole
	// network's BGP and test reachability pairwise. The default.
	GlobalCheckSimulated GlobalCheckMode = iota
	// GlobalCheckCompositional replaces the simulation with the
	// verified-local-specs fast path (lightyear.CheckCompositionalNoTransit)
	// when every attachment's local spec verified — the scale configuration
	// for networks whose simulation cost is the bottleneck. Falls back to
	// the simulation when coverage is incomplete.
	GlobalCheckCompositional
)

func (o *SynthOptions) fill() {
	if o.Verifier == nil {
		o.Verifier = LocalVerifier{}
	}
	if o.Human == nil {
		o.Human = PaperHuman{}
	}
	if o.MaxAttemptsPerFinding == 0 {
		o.MaxAttemptsPerFinding = 3
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 128
	}
	if o.IIP == nil && !o.NoIIP {
		o.IIP = llm.DefaultIIPDatabase()
	}
	if o.NoIIP {
		o.IIP = nil
	}
}

// synthPipeline declares the per-router repair loop: the three local
// verifier stages in the paper's masking order — syntax (Batfish),
// topology verifier, local policies (Batfish SearchRoutePolicies per
// Lightyear) — over the given task set, with synthesis budgets and the
// "For router X:" manual-prompt wrap.
func synthPipeline(v Verifier, topo *topology.Topology, tasks []modularizer.Task,
	opts SynthOptions) Pipeline {
	// The local-policy checks scan in attachment order: tasks follow
	// topology order and each task's LocalSpec preserves the derivation's
	// attachment-major order, so the flattened sequence enumerates every
	// attachment's obligations in topology order of attachments — the
	// deterministic order the finding selection (scanFirst) and the
	// batched prefetch both key on. Dual-homed routers therefore
	// contribute one contiguous block per attachment, not one per router.
	var locals []localCheck
	for _, task := range tasks {
		for _, req := range task.LocalSpec {
			locals = append(locals, localCheck{router: task.Router, req: req})
		}
	}
	p := Pipeline{
		Stages: []PipelineStage{
			synthSyntaxStage{v: v, tasks: tasks, workers: opts.SuiteParallelism},
			synthTopologyStage{v: v, topo: topo, tasks: tasks, workers: opts.SuiteParallelism},
			synthLocalPolicyStage{v: v, checks: locals, workers: opts.SuiteParallelism},
		},
		Human:                 opts.Human,
		MaxAttemptsPerFinding: opts.MaxAttemptsPerFinding,
		MaxIterations:         opts.MaxIterations,
		WrapManual: func(f *Finding, manual string) string {
			return fmt.Sprintf("For router %s: %s", f.Target, manual)
		},
	}
	if cache, ok := v.(*CachedVerifier); ok {
		p.Cache = cache
	}
	return p
}

// Synthesize runs the full VPP synthesis pipeline on a topology: the human
// task kickoff, the Modularizer's per-router prompts (automated), then the
// shared RunPipeline repair driver over the three local stages, finishing
// with the whole-network BGP simulation as the global check (§4.1). With
// Parallelism > 1 the per-router repair loops run concurrently on a
// bounded worker pool.
func Synthesize(topo *topology.Topology, opts SynthOptions) (*Result, error) {
	opts.fill()
	if opts.Model == nil {
		return nil, fmt.Errorf("synthesize: options require a model")
	}
	if opts.RunLabel == "" {
		opts.RunLabel = "synth"
	}
	runStart := time.Now()
	ck, err := newCheckpointer(opts.Checkpoint)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		ck.tracer, ck.runLabel = opts.Trace, opts.RunLabel
	}
	resumed, err := ck.load()
	if err != nil {
		return nil, err
	}
	// One incremental-verification cache for the whole run: it is shared
	// by the parallel per-router workers and by the final global check, so
	// a configuration revision is verified (and parsed) once no matter how
	// many stages and iterations inspect it.
	var cache *CachedVerifier
	if !opts.DisableCache {
		cache = NewCachedVerifier(opts.Verifier)
		cache.SetDurable(opts.DurableCache)
		cache.SetObs(opts.Metrics, opts.Trace, opts.RunLabel)
		opts.Verifier = cache
	} else if opts.Metrics != nil && opts.DurableCache != nil {
		opts.DurableCache.SetMetrics(opts.Metrics)
	}
	sess := newSession(opts.Model, opts.IIP)
	sess.tracer, sess.runLabel = opts.Trace, opts.RunLabel
	if opts.Trace != nil {
		// A model that can report where its render time went (the simulated
		// synthesizer's stanza-incremental vs full re-prints) adopts the
		// run's sink; outputs are byte-identical either way.
		if m, ok := opts.Model.(interface {
			SetObs(*obs.Registry, *obs.Tracer)
		}); ok {
			m.SetObs(opts.Metrics, opts.Trace)
		}
	}

	tasks := modularizer.Tasks(topo)
	var configs map[string]string
	var ps *pipelineState
	if opts.Parallelism <= 1 && resumed != nil {
		// Sequential resume: the checkpointed conversation — kickoff,
		// modularizer prompts, every repair exchange up to the snapshot —
		// is restored verbatim and replayed through the model, so the loop
		// re-enters exactly where the killed process stood.
		sessState, pstate, cfgs, cursor, rerr := resumeSequential(resumed, phaseSynthSequential)
		if rerr != nil {
			return nil, rerr
		}
		if err := restoreSession(sess, sessState); err != nil {
			return nil, err
		}
		if err := checkCursor(sess.model, cursor); err != nil {
			return nil, err
		}
		configs = cfgs
		ps = pstate
	} else {
		// The paper "begin[s] by specifying the task to GPT in an initial
		// prompt using a couple of sentences" (§4.1) — a human prompt. A
		// parallel resume re-sends it: the main session is rebuilt fresh
		// (worker sessions are private), and the kickoff is deterministic.
		kickoff := "We are going to configure a network of routers. The goal is a no-transit " +
			"policy: no two ISPs should be able to reach each other through this network, but " +
			"all ISPs and the CUSTOMER should be able to reach each other. I will describe " +
			"each router in turn; generate its Cisco IOS configuration file."
		if _, _, err := sess.send(Human, StageTask, "kickoff", kickoff); err != nil {
			return nil, err
		}
	}

	var verified bool
	var recent []string
	if opts.Parallelism > 1 {
		if resumed != nil && resumed.Phase != phaseSynthParallel {
			return nil, fmt.Errorf("resume: checkpoint is a %s snapshot, this run is %s",
				resumed.Phase, phaseSynthParallel)
		}
		configs, recent, verified, err = synthesizeParallel(sess, topo, tasks, opts, ck, resumed)
	} else {
		configs, recent, verified, err = synthesizeSequential(sess, topo, tasks, opts, ck, configs, ps)
	}
	if err != nil {
		return nil, err
	}

	var global *lightyear.GlobalResult
	if verified && !opts.SkipGlobalCheck {
		global, err = globalCheck(topo, configs, opts, recent)
		if err != nil {
			return nil, err
		}
		verified = global.OK()
	}
	res := &Result{
		Verified:       verified,
		Transcript:     sess.transcript,
		Configs:        configs,
		PuntedFindings: sess.punted,
		Iterations:     sess.iterations,
		Global:         global,
	}
	if cache != nil {
		stats := cache.MergedStats()
		res.CacheStats = &stats
	}
	opts.Trace.Span(runStart, obs.Event{Stage: obs.StageRun, Run: opts.RunLabel,
		Iter: res.Iterations, Checks: len(res.Configs)})
	return res, nil
}

// globalCheck runs the whole-network check SynthOptions.GlobalCheck
// selects. The compositional mode reuses the run's parse cache (every
// final configuration was just verified, so its device is already parsed)
// and falls back to the full simulation on topologies whose local spec
// coverage is incomplete — the simulation stays the authority wherever
// the compositional argument does not apply. recent names the routers the
// repair loop actually rewrote, steering the compositional check's
// falsification budget toward the filters likeliest to have regressed.
func globalCheck(topo *topology.Topology, configs map[string]string,
	opts SynthOptions, recent []string) (*lightyear.GlobalResult, error) {
	if opts.GlobalCheck == GlobalCheckCompositional {
		var start time.Time
		if opts.Trace != nil {
			start = time.Now()
		}
		devs, err := parseDevices(opts.Verifier, topo, configs)
		if err != nil {
			return nil, err
		}
		global, err := lightyear.CheckCompositionalNoTransit(topo, devs,
			lightyear.CompositionalOptions{Seed: opts.GlobalCheckSeed, RecentRouters: recent})
		if err == nil {
			opts.Trace.Span(start, obs.Event{Stage: obs.StageGlobalCheck,
				Outcome: "compositional", Run: opts.RunLabel, Checks: len(configs)})
			return global, nil
		}
		if !errors.Is(err, lightyear.ErrCoverageIncomplete) {
			return nil, err
		}
		// Coverage fell through to the simulation; the verifier's own
		// global_check span records that run.
	}
	return opts.Verifier.GlobalNoTransit(topo, configs)
}

// parseDevices parses the final configurations into devices for the
// compositional check, going through the run's parse cache when the
// verifier carries one (cache hits for every revision the repair loop
// already verified). Remote verifiers parse locally: the compositional
// check is a client-side fast path, not a suite round-trip.
func parseDevices(v Verifier, topo *topology.Topology,
	configs map[string]string) (map[string]*netcfg.Device, error) {
	parse := batfish.ParseAndCheck
	switch t := v.(type) {
	case *CachedVerifier:
		if lv, ok := t.v.(LocalVerifier); ok {
			parse = lv.parsed
		}
	case LocalVerifier:
		parse = t.parsed
	}
	devs := make(map[string]*netcfg.Device, len(configs))
	for i := range topo.Routers {
		name := topo.Routers[i].Name
		text, ok := configs[name]
		if !ok {
			return nil, fmt.Errorf("router %s has no configuration", name)
		}
		devs[name] = parse(text).Device
	}
	return devs, nil
}

// synthesizeSequential is the paper's loop: modularizer prompts for every
// router first, then one repair pipeline scanning all routers per stage.
// A resume arrives with the checkpointed configurations (resumedConfigs)
// and loop position (ps) already unpacked — the modularizer prompts are
// part of the restored conversation and are not re-sent. The second
// return value names the routers whose configuration the repair loop
// rewrote after its first draft (unknowable — and nil — on a resume,
// whose pre-crash drafts are gone).
func synthesizeSequential(sess *session, topo *topology.Topology,
	tasks []modularizer.Task, opts SynthOptions, ck *checkpointer,
	resumedConfigs map[string]string, ps *pipelineState) (map[string]string, []string, bool, error) {
	configs := resumedConfigs
	var initial map[string]string
	if configs == nil {
		// Modularizer prompts: one automated prompt per router (§2).
		configs = map[string]string{}
		for _, task := range tasks {
			resp, _, err := sess.send(Automated, StageTask, task.Router, task.Prompt)
			if err != nil {
				return nil, nil, false, err
			}
			configs[task.Router] = resp
		}
		initial = make(map[string]string, len(configs))
		for k, v := range configs {
			initial[k] = v
		}
	}
	p := synthPipeline(opts.Verifier, topo, tasks, opts)
	p.saver = ck.sequentialSaver(phaseSynthSequential, sess, configs)
	p.resume = ps
	verified, err := RunPipeline(sess, configs, p)
	var recent []string
	if initial != nil {
		for _, task := range tasks {
			if configs[task.Router] != initial[task.Router] {
				recent = append(recent, task.Router)
			}
		}
	}
	return configs, recent, verified, err
}

// routerOutcome is one worker's result: the router's final configuration
// and the transcript of its private repair loop.
type routerOutcome struct {
	config     string
	transcript Transcript
	punted     []string
	iterations int
	verified   bool
	// repaired reports the final configuration differs from the model's
	// first draft — the router was actually rewritten by the repair loop,
	// which steers the compositional check's falsification bias.
	repaired bool
	err      error
}

// synthesizeParallel repairs each router concurrently: every worker runs
// the same per-router pipeline against its own conversation session. A
// model that can fork (llm.Forker — the simulated LLM's state is per
// router) gives every router an independent session, so workers never
// contend on a model lock; a stateful model that cannot fork (a scripted
// replay, whose responses are ordered across conversations) falls back to
// one mutex-guarded shared model. The per-router transcripts are merged
// into the main session in topology order, so the merged transcript — and
// therefore the leverage accounting — is deterministic regardless of how
// the workers interleave. Unlike the sequential loop, MaxIterations and a
// human-oracle give-up are scoped per router here (see SynthOptions).
func synthesizeParallel(sess *session, topo *topology.Topology,
	tasks []modularizer.Task, opts SynthOptions, ck *checkpointer,
	resumed *checkpointFile) (map[string]string, []string, bool, error) {
	forker, _ := sess.model.(llm.Forker)
	var shared llm.Model
	if forker == nil {
		if ck != nil {
			// A shared stateful model's responses depend on cross-router
			// order; skipping checkpointed routers would silently shift the
			// remaining conversations. Refuse rather than checkpoint
			// something that cannot be resumed faithfully.
			return nil, nil, false, fmt.Errorf("checkpoint: parallel synthesis requires a forkable model")
		}
		shared = &lockedModel{model: sess.model}
	}
	// Routers already completed by the killed run: their outcomes are
	// reused verbatim, only the remainder is repaired. Each worker session
	// is private to its router, so per-router granularity is the natural
	// checkpoint unit here.
	done := map[string]routerSnapshot{}
	if resumed != nil && resumed.Routers != nil {
		done = resumed.Routers
	}
	completed := struct {
		sync.Mutex
		m map[string]routerSnapshot
	}{m: map[string]routerSnapshot{}}
	for k, v := range done {
		completed.m[k] = v
	}
	// record snapshots the accumulated outcomes after one more router
	// completed. The copy under the lock keeps the serialized map stable
	// while other workers keep finishing.
	record := func(router string, out routerOutcome) error {
		if ck == nil || out.err != nil {
			return nil
		}
		completed.Lock()
		completed.m[router] = routerSnapshot{
			Config:     out.config,
			Transcript: out.transcript,
			Punted:     out.punted,
			Iterations: out.iterations,
			Verified:   out.verified,
			Repaired:   out.repaired,
		}
		snap := make(map[string]routerSnapshot, len(completed.m))
		for k, v := range completed.m {
			snap[k] = v
		}
		completed.Unlock()
		return ck.save(&checkpointFile{Phase: phaseSynthParallel, Routers: snap, RNGCursor: -1})
	}
	outcomes := make([]routerOutcome, len(tasks))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := opts.Parallelism
	if workers > len(tasks) {
		workers = len(tasks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if snap, ok := done[tasks[i].Router]; ok {
					outcomes[i] = routerOutcome{
						config:     snap.Config,
						transcript: snap.Transcript,
						punted:     snap.Punted,
						iterations: snap.Iterations,
						verified:   snap.Verified,
						repaired:   snap.Repaired,
					}
					continue
				}
				model := shared
				if forker != nil {
					model = forker.Fork()
				}
				out := repairRouter(model, topo, tasks[i], opts)
				if err := record(tasks[i].Router, out); err != nil {
					out.err = err
				}
				outcomes[i] = out
			}
		}()
	}
	for i := range tasks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	configs := map[string]string{}
	var recent []string
	verified := true
	for i, task := range tasks {
		out := outcomes[i]
		if out.err != nil {
			return nil, nil, false, fmt.Errorf("router %s: %w", task.Router, out.err)
		}
		configs[task.Router] = out.config
		if out.repaired {
			recent = append(recent, task.Router)
		}
		sess.transcript = append(sess.transcript, out.transcript...)
		sess.punted = append(sess.punted, out.punted...)
		sess.iterations += out.iterations
		if !out.verified {
			verified = false
		}
	}
	return configs, recent, verified, nil
}

// repairRouter runs one router's private loop: the modularizer prompt,
// then the repair pipeline restricted to that router's stages.
func repairRouter(model llm.Model, topo *topology.Topology,
	task modularizer.Task, opts SynthOptions) routerOutcome {
	wsess := newSession(model, opts.IIP)
	wsess.tracer, wsess.runLabel = opts.Trace, opts.RunLabel
	resp, _, err := wsess.send(Automated, StageTask, task.Router, task.Prompt)
	if err != nil {
		return routerOutcome{err: err}
	}
	configs := map[string]string{task.Router: resp}
	verified, err := RunPipeline(wsess, configs,
		synthPipeline(opts.Verifier, topo, []modularizer.Task{task}, opts))
	if err != nil {
		return routerOutcome{err: err}
	}
	return routerOutcome{
		config:     configs[task.Router],
		transcript: wsess.transcript,
		punted:     wsess.punted,
		iterations: wsess.iterations,
		verified:   verified,
		repaired:   configs[task.Router] != resp,
	}
}

// lockedModel serializes Complete calls so one stateful simulated LLM can
// serve many concurrent router sessions. Each call carries its own
// conversation, so the model's per-router behaviour is independent of the
// interleaving.
type lockedModel struct {
	mu    sync.Mutex
	model llm.Model
}

// Complete implements llm.Model.
func (l *lockedModel) Complete(messages []llm.Message) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.model.Complete(messages)
}

// synthSyntaxStage checks every router's configuration with the Batfish
// syntax verifier, in topology order. The per-router checks are
// independent, so with workers > 1 they fan out via scanFirst while the
// reported finding stays the sequential scan's.
type synthSyntaxStage struct {
	v       Verifier
	tasks   []modularizer.Task
	workers int
}

// Check implements PipelineStage.
func (s synthSyntaxStage) Check(configs map[string]string) (*Finding, error) {
	return scanFirst(len(s.tasks), s.workers, func(i int) (*Finding, error) {
		task := s.tasks[i]
		warns, err := s.v.CheckSyntax(configs[task.Router])
		if err != nil || len(warns) == 0 {
			return nil, err
		}
		w := warns[0]
		return &Finding{
			Key:    "syntax:" + task.Router + ":" + w.Reason + ":" + w.Text,
			Target: task.Router,
			Stage:  StageSyntax,
			Humanized: fmt.Sprintf("In the configuration of router %s: %s",
				task.Router, humanizer.Syntax(w)),
			Raw: w.String(),
		}, nil
	})
}

// SuiteChecks implements suiteEnumerator.
func (s synthSyntaxStage) SuiteChecks(configs map[string]string) []SuiteCheck {
	out := make([]SuiteCheck, 0, len(s.tasks))
	for _, task := range s.tasks {
		out = append(out, SuiteCheck{Kind: SuiteSyntax, Config: configs[task.Router]})
	}
	return out
}

// synthTopologyStage checks every router's configuration against its
// topology spec.
type synthTopologyStage struct {
	v       Verifier
	topo    *topology.Topology
	tasks   []modularizer.Task
	workers int
}

// Check implements PipelineStage.
func (s synthTopologyStage) Check(configs map[string]string) (*Finding, error) {
	return scanFirst(len(s.tasks), s.workers, func(i int) (*Finding, error) {
		task := s.tasks[i]
		spec := s.topo.Router(task.Router)
		if spec == nil {
			return nil, nil
		}
		finds, err := s.v.VerifyTopology(*spec, configs[task.Router])
		if err != nil || len(finds) == 0 {
			return nil, err
		}
		f := finds[0]
		return &Finding{
			Key:       "topology:" + task.Router + ":" + f.Issue,
			Target:    task.Router,
			Stage:     StageTopology,
			Humanized: humanizer.Topology(f),
			Raw:       f.String(),
		}, nil
	})
}

// SuiteChecks implements suiteEnumerator.
func (s synthTopologyStage) SuiteChecks(configs map[string]string) []SuiteCheck {
	out := make([]SuiteCheck, 0, len(s.tasks))
	for _, task := range s.tasks {
		spec := s.topo.Router(task.Router)
		if spec == nil {
			continue
		}
		out = append(out, SuiteCheck{Kind: SuiteTopology, Spec: spec,
			Config: configs[task.Router]})
	}
	return out
}

// localCheck is one (router, requirement) pair of the local-policy stage,
// flattened so the per-requirement checks — several of which pile onto
// the star hub or onto one dual-homed attachment router — can fan out
// individually. The requirement carries its attachment identity, so each
// check is one attachment-scoped unit of independent work for the
// concurrency and cache layers.
type localCheck struct {
	router string
	req    lightyear.Requirement
}

// synthLocalPolicyStage checks every router's Lightyear local-policy
// requirements.
type synthLocalPolicyStage struct {
	v       Verifier
	checks  []localCheck
	workers int
}

// Check implements PipelineStage.
func (s synthLocalPolicyStage) Check(configs map[string]string) (*Finding, error) {
	return scanFirst(len(s.checks), s.workers, func(i int) (*Finding, error) {
		lc := s.checks[i]
		viol, bad, err := s.v.CheckLocalPolicy(configs[lc.router], lc.req)
		if err != nil || !bad {
			return nil, err
		}
		return &Finding{
			// The attempt budget tracks findings per attachment: the
			// identity segment keeps two same-shaped obligations on one
			// router (a dual-homed pair) from sharing a budget.
			Key: "semantic:" + lc.router + ":" + lc.req.Attachment.String() +
				":" + lc.req.Policy + ":" + lc.req.Description,
			Target:    lc.router,
			Stage:     StageSemantic,
			Humanized: humanizer.Semantic(viol),
			Raw:       viol.String(),
		}, nil
	})
}

// SuiteChecks implements suiteEnumerator.
func (s synthLocalPolicyStage) SuiteChecks(configs map[string]string) []SuiteCheck {
	out := make([]SuiteCheck, 0, len(s.checks))
	for i := range s.checks {
		lc := &s.checks[i]
		out = append(out, SuiteCheck{Kind: SuiteLocal, Req: &lc.req,
			Config: configs[lc.router]})
	}
	return out
}
