package core

import (
	"net/http/httptest"
	"testing"

	"repro/internal/batfish/rest"
)

// newRESTVerifier spins up an in-process batfishd and returns a client
// implementing Verifier against it.
func newRESTVerifier(t *testing.T) Verifier {
	t.Helper()
	srv := httptest.NewServer(rest.NewHandler())
	t.Cleanup(srv.Close)
	return rest.NewClient(srv.URL)
}
