package core

import (
	"sync"
	"sync/atomic"
)

// scanFirst evaluates n independent checks and returns what a sequential
// in-order scan with early exit would return: the outcome (finding or
// error) of the lowest index whose check is not clean, or (nil, nil) when
// all are clean.
//
// With workers <= 1 it is that sequential scan. With workers > 1 the
// checks fan out onto a bounded pool; determinism is preserved because a
// parallel run returns the lowest-index outcome and every index below it
// was verified clean — so the winning finding (and therefore the
// transcript) is byte-identical to the sequential scan's. Indexes above an
// already-found outcome are skipped, mirroring the sequential early exit.
func scanFirst(n, workers int, check func(i int) (*Finding, error)) (*Finding, error) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f, err := check(i)
			if f != nil || err != nil {
				return f, err
			}
		}
		return nil, nil
	}

	type outcome struct {
		f   *Finding
		err error
	}
	results := make([]outcome, n)
	var next atomic.Int64 // next index to claim
	var best atomic.Int64 // lowest index known to have an outcome
	best.Store(int64(n))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				// Indexes only grow and best only shrinks: once this
				// worker's index passes the best outcome, every later
				// index will too.
				if i >= best.Load() {
					return
				}
				f, err := check(int(i))
				if f == nil && err == nil {
					continue
				}
				results[i] = outcome{f: f, err: err}
				for {
					cur := best.Load()
					if i >= cur || best.CompareAndSwap(cur, i) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if w := best.Load(); w < int64(n) {
		return results[w].f, results[w].err
	}
	return nil, nil
}
