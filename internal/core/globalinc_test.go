package core

import (
	"reflect"
	"testing"

	"repro/internal/batfish"
	"repro/internal/llm"
	"repro/internal/netgen"
)

// plainVerifier hides the underlying verifier's concrete type behind the
// bare Verifier interface: CachedVerifier sees neither a LocalVerifier nor
// the incremental-global capability, so every global check runs cold
// through GlobalNoTransit — the pre-incremental behavior.
type plainVerifier struct{ Verifier }

// requireSameOutcome pins two runs' externally visible outcomes against
// each other: the incremental global session must never change what a run
// produces, only what it costs.
func requireSameOutcome(t *testing.T, with, without *Result) {
	t.Helper()
	if with.Verified != without.Verified {
		t.Errorf("Verified: incremental=%v cold=%v", with.Verified, without.Verified)
	}
	if with.Iterations != without.Iterations {
		t.Errorf("Iterations: incremental=%d cold=%d", with.Iterations, without.Iterations)
	}
	if !reflect.DeepEqual(with.Transcript, without.Transcript) {
		t.Errorf("transcripts diverge\nincremental:\n%s\ncold:\n%s",
			with.Transcript, without.Transcript)
	}
	if !reflect.DeepEqual(with.Configs, without.Configs) {
		t.Error("final configurations diverge between incremental and cold global checks")
	}
}

// TestAddPolicyIncrementalUnchangedByIncrementalGlobal runs the §6
// incremental-policy experiment twice — once with the default verifier
// (which carries the in-process incremental global session) and once with
// the capability hidden — and requires byte-identical transcripts and
// configurations.
func TestAddPolicyIncrementalUnchangedByIncrementalGlobal(t *testing.T) {
	topo, err := netgen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(v Verifier) *Result {
		model := llm.NewSynthesizer(llm.DefaultSynthConfig())
		base, err := Synthesize(topo, SynthOptions{Model: model})
		if err != nil {
			t.Fatal(err)
		}
		res, err := AddPolicyIncremental(topo, base.Configs, IncrementalOptions{
			Model: model, Verifier: v})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	requireSameOutcome(t, run(nil), run(plainVerifier{LocalVerifier{}}))
}

// TestAddPolicyIncrementalUnchangedByIncrementalPipeline pins the stanza-
// level config pipeline against its off switch on the §6 experiment: a run
// whose model reuses unchanged rendered sections and whose verifier
// reassembles parses from cached stanza fragments must produce transcripts
// and configurations byte-identical to a run re-printing and re-parsing
// whole configurations from scratch. The policy-addition loop is the
// pipeline's sharpest test: every repair touches one stanza of an
// otherwise-stable config.
func TestAddPolicyIncrementalUnchangedByIncrementalPipeline(t *testing.T) {
	topo, err := netgen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(full bool) *Result {
		cfg := llm.DefaultSynthConfig()
		cfg.FullRender = full
		model := llm.NewSynthesizer(cfg)
		var v Verifier
		if full {
			v = LocalVerifier{Parses: batfish.NewWholeParseCache()}
		}
		base, err := Synthesize(topo, SynthOptions{Model: model, Verifier: v})
		if err != nil {
			t.Fatal(err)
		}
		res, err := AddPolicyIncremental(topo, base.Configs, IncrementalOptions{
			Model: model, Verifier: v})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	requireSameOutcome(t, run(false), run(true))
}

// TestSynthesizeGlobalUnchangedByIncrementalGlobal does the same for the
// global-prompting ablation, whose counterexample loop re-simulates the
// whole network every round — the loop the tracker's hints accelerate.
func TestSynthesizeGlobalUnchangedByIncrementalGlobal(t *testing.T) {
	topo, err := netgen.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(v Verifier) *Result {
		res, err := SynthesizeGlobal(topo, GlobalSynthOptions{
			Model:       llm.NewGlobalSynthesizer(),
			Verifier:    v,
			MaxAttempts: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	requireSameOutcome(t, run(nil), run(plainVerifier{LocalVerifier{}}))
}
