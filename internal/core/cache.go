package core

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/durable"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/topology"
)

// SuiteCheck is one independent check of the verification suite in a
// transport-neutral form (see internal/suite): the pipeline's stages
// enumerate their outstanding checks as SuiteChecks so a batch-capable
// verifier can ship a whole iteration's worth in one round-trip.
type SuiteCheck = suite.Check

// SuiteResult is the outcome of one SuiteCheck; which fields are
// meaningful depends on the check's kind.
type SuiteResult = suite.Result

// Suite check kinds, re-exported from internal/suite.
const (
	SuiteSyntax   = suite.KindSyntax
	SuiteTopology = suite.KindTopology
	SuiteLocal    = suite.KindLocal
	SuiteDiff     = suite.KindDiff
)

// Backend re-exports the transport seam verification dispatches through
// (see internal/suite): one batch of independent checks in, positional
// results out, plus a capability probe. The in-process suite, a single
// REST endpoint, and a sharded REST fan-out are interchangeable Backends.
type Backend = suite.Backend

// CacheStats are a CachedVerifier's counters.
type CacheStats struct {
	// Hits and Misses count memoized-result lookups across CheckSyntax,
	// VerifyTopology, CheckLocalPolicy, and DiffTranslation.
	Hits   uint64
	Misses uint64
	// Prefetches counts batched prefetch calls that shipped work — one
	// per pipeline iteration that had uncached checks — and BatchedChecks
	// the individual checks they carried.
	Prefetches    uint64
	BatchedChecks uint64
	// DiskHits counts checks the durable disk tier answered after the
	// memory stripes missed (each still counts toward Hits — the backend
	// was spared), and DiskWrites the results persisted to it. Both stay
	// zero without a mounted durable cache.
	DiskHits   uint64
	DiskWrites uint64
	// RestRetries counts transport retries across every REST shard the
	// run's backend dispatched to (zero for in-process backends) — the
	// roll-up the per-shard ShardStat lines previously kept to
	// themselves. Populated by MergedStats.
	RestRetries uint64
	// FragmentHits/FragmentMisses/FragmentDiskHits are the stanza
	// fragment sub-cache's tallies (zero when the parse cache has no
	// stanza support mounted). Populated by MergedStats.
	FragmentHits     uint64
	FragmentMisses   uint64
	FragmentDiskHits uint64
}

// String renders the counters.
func (s CacheStats) String() string {
	base := fmt.Sprintf("cache: %d hits / %d misses, %d prefetch round-trips (%d checks)",
		s.Hits, s.Misses, s.Prefetches, s.BatchedChecks)
	if s.DiskHits > 0 || s.DiskWrites > 0 {
		base += fmt.Sprintf(", disk tier: %d hits / %d writes", s.DiskHits, s.DiskWrites)
	}
	if s.FragmentHits > 0 || s.FragmentMisses > 0 {
		base += fmt.Sprintf(", fragments: %d hits / %d misses (%d disk)",
			s.FragmentHits, s.FragmentMisses, s.FragmentDiskHits)
	}
	if s.RestRetries > 0 {
		base += fmt.Sprintf(", transport: %d retries", s.RestRetries)
	}
	return base
}

// CachedVerifier memoizes the per-config checks of a Verifier — syntax,
// topology, local policy, and translation diff — keyed by a hash of the
// check's inputs (config text plus spec/requirement). A pipeline iteration
// therefore only re-verifies the router whose configuration the last
// prompt changed: every other router's results are cache hits. Results are
// pure functions of their inputs, so transcripts are byte-identical to the
// uncached loop.
//
// Every check dispatches through a suite.Backend — the in-process suite,
// one REST endpoint, and the sharded REST fan-out are interchangeable
// behind the seam. When the backend is batched (rest.Client,
// rest.ShardedClient), Prefetch ships all outstanding misses as one
// batched call per iteration — one round-trip per shard — turning a
// pipeline iteration's many verifier round-trips into at most one per
// shard, issued in parallel.
//
// The global BGP simulation is deliberately not memoized: it runs once per
// converged run, on the whole network, and its inputs change whenever any
// router changes.
//
// CachedVerifier is safe for concurrent use and may be shared by the
// parallel per-router repair workers: the result map is striped into
// cacheShards independently-locked shards selected by the first key byte
// (the key is a SHA-256, so the stripe assignment is uniform), which keeps
// 8+ workers from serializing on one RWMutex.
type CachedVerifier struct {
	v       Verifier
	backend Backend // the dispatch seam; never nil

	shards [cacheShards]cacheShard

	// disk is the optional durable tier underneath the memory stripes
	// (see SetDurable): an in-memory miss consults it before dispatching
	// to the backend, and every backend result is persisted to it.
	disk *durable.Cache

	// digests memoizes each configuration revision's TextDigest, so the
	// thousands of check keys a run derives against the same few revisions
	// hash each revision body once (suite.KeyD).
	digests *suite.Digests

	// The counters are obs instruments from birth (standalone atomics);
	// SetObs adopts them into a registry without losing counts. Stats()
	// reads them back, so the struct stays a view over the instruments.
	hits          *obs.Counter
	misses        *obs.Counter
	prefetches    *obs.Counter
	batchedChecks *obs.Counter
	diskHits      *obs.Counter
	diskWrites    *obs.Counter

	// tracer is the optional JSONL trace sink (nil = off) and runLabel
	// the run name its events carry; verifySeconds the optional dispatch
	// histogram a bound registry provides.
	tracer        *obs.Tracer
	runLabel      string
	verifySeconds *obs.Histogram

	// globalMu guards the in-process incremental global session (see
	// GlobalNoTransitIncremental): simulator sessions are stateful and
	// single-threaded, so concurrent global checks serialize here.
	globalMu   sync.Mutex
	globalSess *lightyear.GlobalSession
	globalTopo *topology.Topology
}

// cacheShards is the stripe count of the memoized-result map. 64 shards
// keep the per-shard collision probability negligible for any realistic
// worker count while costing one fixed 64-entry array per verifier.
const cacheShards = 64

// cacheShard is one independently-locked stripe of the result map.
type cacheShard struct {
	mu      sync.RWMutex
	results map[[sha256.Size]byte]SuiteResult
}

// shard selects a key's stripe by its first hash byte.
func (c *CachedVerifier) shard(key [sha256.Size]byte) *cacheShard {
	return &c.shards[key[0]%cacheShards]
}

// NewCachedVerifier wraps a verifier with result memoization. nil (and the
// zero LocalVerifier) become a LocalVerifier threaded with a shared parse
// cache, so each configuration revision is parsed once per run instead of
// once per stage per iteration.
//
// The backend seam is resolved by capability: a verifier that is itself a
// suite.Backend (rest.Client, rest.ShardedClient) is used directly;
// anything else — including the in-process suite — evaluates through
// suite.CheckerBackend, which reports itself unbatched so the stage scan
// keeps its lazy early exit.
func NewCachedVerifier(v Verifier) *CachedVerifier {
	if v == nil {
		v = LocalVerifier{}
	}
	if lv, ok := v.(LocalVerifier); ok && lv.Parses == nil {
		v = LocalVerifier{Parses: batfish.NewParseCache()}
	}
	c := &CachedVerifier{
		v: v, digests: suite.NewDigests(),
		hits: &obs.Counter{}, misses: &obs.Counter{},
		prefetches: &obs.Counter{}, batchedChecks: &obs.Counter{},
		diskHits: &obs.Counter{}, diskWrites: &obs.Counter{},
	}
	for i := range c.shards {
		c.shards[i].results = map[[sha256.Size]byte]SuiteResult{}
	}
	if b, ok := v.(Backend); ok {
		c.backend = b
	} else {
		c.backend = suite.CheckerBackend{Checker: v}
	}
	return c
}

// Batched reports whether the backend amortizes transport cost across the
// checks of one CheckBatch call, i.e. whether eager per-iteration
// prefetching pays for itself.
func (c *CachedVerifier) Batched() bool { return c.backend.Capabilities().Batched }

// SetDurable mounts a disk-backed tier under the memory stripes: an
// in-memory miss consults it (a hit is decoded, promoted into memory, and
// served without touching the backend), and every result the backend
// computes is persisted into it, so later runs — and concurrent processes
// sharing the directory — restart warm. nil unmounts. The disk tier never
// changes a result: entries are content-addressed by suite.Key and results
// are pure functions of the keyed inputs, so transcripts stay
// byte-identical whether a result came from memory, disk, or the backend.
func (c *CachedVerifier) SetDurable(d *durable.Cache) {
	c.disk = d
	// The same directory also backs the stanza sub-cache: fragment parses
	// are content-addressed under a distinct key prefix, so one durable
	// store serves check results and stanza parses side by side.
	if d != nil {
		if lv, ok := c.v.(LocalVerifier); ok && lv.Parses != nil {
			lv.Parses.SetFragmentStore(d)
		}
	}
}

// SetObs binds the verifier's instruments to a metrics registry and/or a
// trace sink; either may be nil. The existing counters are adopted into
// the registry (counts preserved), and the binding propagates to every
// layer the verifier owns: the parse cache (with its fragment sub-cache),
// the durable disk tier, and a REST backend that itself carries a SetObs
// method. runLabel names this run's trace events. Call it before the run
// starts dispatching; telemetry never changes a result.
func (c *CachedVerifier) SetObs(reg *obs.Registry, tr *obs.Tracer, runLabel string) {
	c.tracer = tr
	c.runLabel = runLabel
	if reg != nil {
		reg.RegisterCounter("cosynth_verify_cache_hits_total", c.hits)
		reg.RegisterCounter("cosynth_verify_cache_misses_total", c.misses)
		reg.RegisterCounter("cosynth_verify_prefetch_calls_total", c.prefetches)
		reg.RegisterCounter("cosynth_verify_batched_checks_total", c.batchedChecks)
		reg.RegisterCounter("cosynth_verify_cache_disk_hits_total", c.diskHits)
		reg.RegisterCounter("cosynth_verify_cache_disk_writes_total", c.diskWrites)
		c.verifySeconds = reg.Histogram("cosynth_verify_dispatch_seconds", obs.DefSecondsBuckets)
	}
	if lv, ok := c.v.(LocalVerifier); ok && lv.Parses != nil {
		lv.Parses.SetObs(reg, tr)
	}
	if c.disk != nil {
		c.disk.SetMetrics(reg)
	}
	if bo, ok := c.backend.(interface {
		SetObs(*obs.Registry, *obs.Tracer)
	}); ok {
		bo.SetObs(reg, tr)
	}
}

// Stats returns the cache counters.
func (c *CachedVerifier) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Prefetches:    c.prefetches.Value(),
		BatchedChecks: c.batchedChecks.Value(),
		DiskHits:      c.diskHits.Value(),
		DiskWrites:    c.diskWrites.Value(),
	}
}

// MergedStats returns Stats plus the counters no earlier surface rolled
// up into the top-level result: REST transport retries (summed across
// shards) and the stanza fragment sub-cache's memory/disk tallies.
func (c *CachedVerifier) MergedStats() CacheStats {
	s := c.Stats()
	if r, ok := c.backend.(interface{ Retries() int64 }); ok {
		if n := r.Retries(); n > 0 {
			s.RestRetries = uint64(n)
		}
	}
	if lv, ok := c.v.(LocalVerifier); ok && lv.Parses != nil {
		s.FragmentHits, s.FragmentMisses, s.FragmentDiskHits = lv.Parses.FragmentStats()
	}
	return s
}

// traceCache emits one cache point event, if tracing.
func (c *CachedVerifier) traceCache(stage, tier string, sc SuiteCheck) {
	if c.tracer == nil {
		return
	}
	ev := obs.Event{Stage: stage, Outcome: tier, Run: c.runLabel, Detail: string(sc.Kind)}
	fillCheckIdentity(&ev, sc)
	c.tracer.Emit(ev)
}

// fillCheckIdentity keys a trace event to the check's pipeline position.
func fillCheckIdentity(ev *obs.Event, sc SuiteCheck) {
	switch {
	case sc.Req != nil:
		ev.Router = sc.Req.Router
		if sc.Req.Attachment.Router != "" {
			ev.Attachment = sc.Req.Attachment.String()
		}
	case sc.Spec != nil:
		ev.Router = sc.Spec.Name
	}
}

// lookup returns the memoized result for a check, if present, along with
// the tier that answered ("memory" or "disk"): first the memory stripe,
// then — on a mounted durable tier — the disk, promoting a disk hit into
// memory so it is paid for once per process. A disk entry that fails to
// decode is treated as a miss (the durable layer already quarantined
// anything failing its checksum; a decode failure here means a format
// drift and must fall through to recomputation, not crash).
func (c *CachedVerifier) lookup(key [sha256.Size]byte) (SuiteResult, string, bool) {
	s := c.shard(key)
	s.mu.RLock()
	res, ok := s.results[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Inc()
		return res, "memory", true
	}
	if c.disk != nil {
		if payload, ok := c.disk.Get(key); ok {
			var dres SuiteResult
			if err := json.Unmarshal(payload, &dres); err == nil {
				c.hits.Inc()
				c.diskHits.Inc()
				s.mu.Lock()
				s.results[key] = dres
				s.mu.Unlock()
				return dres, "disk", true
			}
		}
	}
	return SuiteResult{}, "", false
}

// store memoizes one backend-computed result, persisting it through the
// durable tier when one is mounted. Disk failures are deliberately
// swallowed: a full or read-only disk downgrades the run to memory-only
// caching, it does not fail verification.
func (c *CachedVerifier) store(key [sha256.Size]byte, res SuiteResult) {
	c.misses.Inc()
	s := c.shard(key)
	s.mu.Lock()
	s.results[key] = res
	s.mu.Unlock()
	c.persist(key, res)
}

// persist writes one result to the durable tier, if mounted.
func (c *CachedVerifier) persist(key [sha256.Size]byte, res SuiteResult) {
	if c.disk == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return
	}
	if c.disk.Put(key, payload) == nil {
		c.diskWrites.Inc()
	}
}

// check answers one suite check through the cache, dispatching misses
// onto the backend seam as a batch of one. The local_check span covers
// the whole dispatch — key hashing, cache lookup, and (on a miss) the
// backend call — so a traced run's verification time is attributed even
// when the cache answers most of it; Outcome distinguishes "hit" from a
// backend "check".
func (c *CachedVerifier) check(sc SuiteCheck) (SuiteResult, error) {
	var start time.Time
	if c.tracer != nil || c.verifySeconds != nil {
		start = time.Now()
	}
	span := func(outcome string) {
		if start.IsZero() {
			return
		}
		if c.verifySeconds != nil {
			c.verifySeconds.Observe(time.Since(start).Seconds())
		}
		if c.tracer != nil {
			ev := obs.Event{Stage: obs.StageLocalCheck, Outcome: outcome, Checks: 1,
				Run: c.runLabel, Detail: string(sc.Kind)}
			fillCheckIdentity(&ev, sc)
			c.tracer.Span(start, ev)
		}
	}
	key := suite.KeyD(sc, c.digests)
	if res, tier, ok := c.lookup(key); ok {
		c.traceCache(obs.StageCacheHit, tier, sc)
		span("hit")
		return res, nil
	}
	c.traceCache(obs.StageCacheMiss, "", sc)
	results, err := c.backend.CheckBatch(context.Background(), []SuiteCheck{sc})
	span("check")
	if err != nil {
		return SuiteResult{}, err
	}
	if len(results) != 1 {
		return SuiteResult{}, fmt.Errorf("backend returned %d results for 1 check", len(results))
	}
	c.store(key, results[0])
	return results[0], nil
}

// Prefetch warms the cache with every not-yet-cached check in one batched
// call against the backend. It is a no-op when the backend reports itself
// unbatched (the in-process suite evaluates lazily, so the stage scan's
// early exit keeps its savings) or when every check is already cached.
func (c *CachedVerifier) Prefetch(checks []SuiteCheck) error {
	if !c.Batched() || len(checks) == 0 {
		return nil
	}
	// The prefetch span covers the key-hashing probe as well as the
	// batched backend call: on a warm iteration the probe IS the cost.
	var start time.Time
	if c.tracer != nil || c.verifySeconds != nil {
		start = time.Now()
	}
	span := func(n int) {
		if start.IsZero() {
			return
		}
		if c.verifySeconds != nil {
			c.verifySeconds.Observe(time.Since(start).Seconds())
		}
		if c.tracer != nil {
			c.tracer.Span(start, obs.Event{Stage: obs.StageLocalCheck, Outcome: "prefetch",
				Checks: n, Run: c.runLabel})
		}
	}
	var missing []SuiteCheck
	var keys [][sha256.Size]byte
	seen := map[[sha256.Size]byte]bool{}
	for _, sc := range checks {
		key := suite.KeyD(sc, c.digests)
		if seen[key] {
			continue
		}
		seen[key] = true
		if !c.cached(key) {
			missing = append(missing, sc)
			keys = append(keys, key)
		}
	}
	if len(missing) == 0 {
		span(0)
		return nil
	}
	results, err := c.backend.CheckBatch(context.Background(), missing)
	span(len(missing))
	if err != nil {
		return err
	}
	if len(results) != len(missing) {
		return fmt.Errorf("batched backend returned %d results for %d checks",
			len(results), len(missing))
	}
	c.prefetches.Inc()
	c.batchedChecks.Add(uint64(len(missing)))
	for i, res := range results {
		s := c.shard(keys[i])
		s.mu.Lock()
		s.results[keys[i]] = res
		s.mu.Unlock()
		c.persist(keys[i], res)
	}
	return nil
}

// cached reports whether a key is answerable without the backend,
// promoting a disk-tier entry into memory on the way — the prefetch probe,
// which must not ship disk-warm checks to the backend but also must not
// count a memory hit the eventual lookup will count itself.
func (c *CachedVerifier) cached(key [sha256.Size]byte) bool {
	s := c.shard(key)
	s.mu.RLock()
	_, ok := s.results[key]
	s.mu.RUnlock()
	if ok || c.disk == nil {
		return ok
	}
	payload, ok := c.disk.Get(key)
	if !ok {
		return false
	}
	var res SuiteResult
	if err := json.Unmarshal(payload, &res); err != nil {
		return false
	}
	c.diskHits.Inc()
	s.mu.Lock()
	s.results[key] = res
	s.mu.Unlock()
	return true
}

// CheckSyntax implements Verifier.
func (c *CachedVerifier) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	res, err := c.check(SuiteCheck{Kind: SuiteSyntax, Config: config})
	return res.Warnings, err
}

// DiffTranslation implements Verifier.
func (c *CachedVerifier) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	res, err := c.check(SuiteCheck{Kind: SuiteDiff, Original: original, Config: translation})
	return res.Diffs, err
}

// VerifyTopology implements Verifier.
func (c *CachedVerifier) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	res, err := c.check(SuiteCheck{Kind: SuiteTopology, Spec: &spec, Config: config})
	return res.Findings, err
}

// CheckLocalPolicy implements Verifier.
func (c *CachedVerifier) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	res, err := c.check(SuiteCheck{Kind: SuiteLocal, Req: &req, Config: config})
	if err != nil || !res.Violated {
		return lightyear.Violation{}, false, err
	}
	if res.Violation == nil {
		// A prefetched result from a version-skewed remote server could be
		// violated with no violation body; fail loudly instead of panicking.
		return lightyear.Violation{}, false,
			fmt.Errorf("local-policy check on %s violated but carried no violation", req.Policy)
	}
	return *res.Violation, true, nil
}

// GlobalNoTransit implements Verifier; it passes through uncached (see the
// type comment).
func (c *CachedVerifier) GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error) {
	if c.tracer == nil {
		return c.v.GlobalNoTransit(t, configs)
	}
	start := time.Now()
	res, err := c.v.GlobalNoTransit(t, configs)
	c.tracer.Span(start, obs.Event{Stage: obs.StageGlobalCheck, Outcome: "simulated",
		Run: c.runLabel, Checks: len(configs)})
	return res, err
}

// GlobalNoTransitIncremental implements IncrementalGlobalVerifier. An
// underlying verifier with the capability (rest.Client, ShardedClient)
// receives the hint verbatim; over a LocalVerifier the cache keeps an
// in-process lightyear.GlobalSession per topology, so a repair loop's
// per-iteration global check re-simulates only the flooding frontier of
// the router the hint names. Any other underlying verifier — including
// test fakes that count or stub the global check — falls back to its own
// plain GlobalNoTransit: the hint must never change whose simulation
// answers, only its cost.
func (c *CachedVerifier) GlobalNoTransitIncremental(t *topology.Topology,
	configs map[string]string, hint *GlobalHint) (*lightyear.GlobalResult, error) {
	var start time.Time
	if c.tracer != nil {
		start = time.Now()
	}
	res, outcome, err := c.globalNoTransitIncremental(t, configs, hint)
	if c.tracer != nil {
		ev := obs.Event{Stage: obs.StageGlobalCheck, Outcome: outcome,
			Run: c.runLabel, Checks: len(configs)}
		if hint != nil && len(hint.Changed) == 1 {
			ev.Router = hint.Changed[0]
		}
		c.tracer.Span(start, ev)
	}
	return res, err
}

// globalNoTransitIncremental is GlobalNoTransitIncremental minus the
// tracing; the outcome string records which path answered — the
// incremental-vs-cold distinction the trace surfaces.
func (c *CachedVerifier) globalNoTransitIncremental(t *topology.Topology,
	configs map[string]string, hint *GlobalHint) (*lightyear.GlobalResult, string, error) {
	if ig, ok := c.v.(IncrementalGlobalVerifier); ok {
		res, err := ig.GlobalNoTransitIncremental(t, configs, hint)
		return res, "incremental", err
	}
	lv, ok := c.v.(LocalVerifier)
	if !ok || hint == nil {
		res, err := c.v.GlobalNoTransit(t, configs)
		return res, "cold", err
	}
	c.globalMu.Lock()
	defer c.globalMu.Unlock()
	if c.globalSess == nil || c.globalTopo != t {
		c.globalSess = lightyear.NewGlobalSession(t)
		c.globalTopo = t
	}
	devs := make(map[string]*netcfg.Device, len(configs))
	for name, text := range configs {
		devs[name] = lv.parsed(text).Device
	}
	outcome := "incremental"
	if hint.Changed == nil {
		outcome = "cold"
	}
	res, err := c.globalSess.Check(devs, hint.Changed)
	return res, outcome, err
}
