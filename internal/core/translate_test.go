package core

import (
	"strings"
	"testing"

	"repro/internal/exampledata"
	"repro/internal/juniper"
	"repro/internal/llm"
)

// TestTranslatePipelineConverges is the §3.2 experiment: all eight Table 2
// error classes injected, the VPP loop must end with a verified
// configuration, a leverage around 10X, and exactly the paper's two human
// prompts (the task prompt and the redistribution correction).
func TestTranslatePipelineConverges(t *testing.T) {
	model := llm.NewTranslator(llm.DefaultTranslateConfig())
	res, err := Translate(exampledata.CiscoExample, TranslateOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("pipeline did not verify; transcript:\n%s", res.Transcript)
	}
	auto, human := res.Transcript.Counts()
	t.Logf("automated=%d human=%d leverage=%.1f", auto, human, res.Leverage())
	if human != 2 {
		t.Errorf("human prompts = %d, want 2 (task + redistribution); transcript:\n%s",
			human, res.Transcript)
	}
	if auto < 14 || auto > 26 {
		t.Errorf("automated prompts = %d, want ~20; transcript:\n%s", auto, res.Transcript)
	}
	if res.Leverage() < 5 {
		t.Errorf("leverage = %.1f, want >= 5", res.Leverage())
	}
	// The final config must be clean Junos.
	final := res.Configs["translation"]
	if warns := juniper.Check(final); len(warns) != 0 {
		t.Errorf("final config has warnings: %v", warns)
	}
	if !strings.Contains(final, "protocol bgp") {
		t.Error("final config lost its protocol gates")
	}
}

// TestTranslateNoErrorsIsZeroCorrection checks the degenerate case: a
// model that injects nothing needs only the task prompt.
func TestTranslateNoErrorsIsZeroCorrection(t *testing.T) {
	cfg := llm.TranslateConfig{Seed: 1, Inject: map[llm.TranslateError]bool{}}
	model := llm.NewTranslator(cfg)
	res, err := Translate(exampledata.CiscoExample, TranslateOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("clean translation did not verify:\n%s", res.Transcript)
	}
	auto, human := res.Transcript.Counts()
	if auto != 0 || human != 1 {
		t.Errorf("counts = (%d auto, %d human), want (0, 1); transcript:\n%s",
			auto, human, res.Transcript)
	}
}

// TestTranslateSingleErrorClasses verifies each individually injected
// error class converges and reports whether it needed a human prompt,
// matching Table 2's "Fixed" column.
func TestTranslateSingleErrorClasses(t *testing.T) {
	wantHuman := map[llm.TranslateError]bool{
		llm.ErrRedistribution: true, // the only class needing the human
	}
	for _, class := range llm.AllTranslateErrors() {
		class := class
		t.Run(class.String(), func(t *testing.T) {
			cfg := llm.TranslateConfig{Seed: 1,
				Inject: map[llm.TranslateError]bool{class: true}}
			model := llm.NewTranslator(cfg)
			res, err := Translate(exampledata.CiscoExample, TranslateOptions{Model: model})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("did not verify; transcript:\n%s", res.Transcript)
			}
			_, human := res.Transcript.Counts()
			wantH := 1
			if wantHuman[class] {
				wantH = 2
			}
			if human != wantH {
				t.Errorf("human prompts = %d, want %d; transcript:\n%s",
					human, wantH, res.Transcript)
			}
		})
	}
}
