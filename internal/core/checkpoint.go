package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/llm"
	"repro/internal/obs"
)

// CheckpointVersion is the checkpoint file's format version. A file
// declaring a newer version is refused at resume — an old binary must not
// continue a run it cannot faithfully reconstruct — and older versions are
// migrated or refused explicitly as the format evolves.
const CheckpointVersion = 1

// CheckpointOptions turns on periodic crash checkpoints for a repair run:
// the engine snapshots its progress — the conversation, the transcript,
// the per-finding attempt budgets, the current configurations, and the
// simulated LLM's RNG cursor — to an atomically-written file at the top of
// every pipeline iteration (sequential modes) or after every completed
// router (parallel synthesis). A killed process restarted with Resume
// picks the run up at the last snapshot and produces a byte-identical
// final transcript: all engine state is restored verbatim, and the model
// is reconstructed by deterministically replaying the recorded
// conversation against a fresh instance, with every replayed response
// checked against the recording.
type CheckpointOptions struct {
	// Path is the checkpoint file. Required.
	Path string
	// Resume loads Path and continues the run it describes. A missing file
	// starts a fresh (checkpointed) run; a file for a different run
	// (RunKey mismatch) or a newer format version is an error.
	Resume bool
	// RunKey identifies the run's coordinates (topology, mode, seed,
	// options) so a checkpoint is never resumed into a different run.
	// Comparison is skipped when either side is empty.
	RunKey string
	// AbortAfterSaves, when > 0, aborts the run with ErrCheckpointAborted
	// after that many checkpoint writes — the in-process crash-injection
	// seam: tests kill the coordinator at a deterministic point mid-run,
	// then resume and assert byte-identical convergence. 0 never aborts.
	AbortAfterSaves int
}

// ErrCheckpointAborted is returned by a run whose CheckpointOptions
// crash-injection seam (AbortAfterSaves) fired; the checkpoint file on
// disk describes the run's state at the abort.
var ErrCheckpointAborted = errors.New("run aborted by checkpoint crash-injection seam")

// Checkpoint phases: which loop the snapshot was taken in. Resume refuses
// a phase mismatch (e.g. resuming a parallel run sequentially) — the
// snapshot shapes differ.
const (
	phaseSynthSequential = "synth-sequential"
	phaseSynthParallel   = "synth-parallel"
	phaseTranslate       = "translate"
)

// sessionState is the serialized form of a session: everything send()
// accumulates, restored verbatim on resume so the transcript's prefix is
// byte-identical to the killed run's.
type sessionState struct {
	Messages     []llm.Message     `json:"messages"`
	Transcript   Transcript        `json:"transcript"`
	Punted       []string          `json:"punted,omitempty"`
	LastResponse map[string]string `json:"last_response,omitempty"`
	Iterations   int               `json:"iterations"`
}

// snapshotSession captures a session's state.
func snapshotSession(s *session) *sessionState {
	return &sessionState{
		Messages:     s.messages,
		Transcript:   s.transcript,
		Punted:       s.punted,
		LastResponse: s.lastResponse,
		Iterations:   s.iterations,
	}
}

// restoreSession loads a snapshot back into a session and reconstructs the
// model's internal state by replaying the recorded conversation: the
// simulated LLMs are deterministic state machines over their message
// history, so feeding each recorded prompt prefix back through Complete
// rebuilds exactly the state the killed process had — and comparing each
// replayed response against the recording proves it. A divergence means
// the checkpoint belongs to a different model configuration (wrong seed,
// wrong error plan) and resuming would silently fork the run.
func restoreSession(s *session, st *sessionState) error {
	for i, m := range st.Messages {
		if m.Role != llm.RoleModel {
			continue
		}
		resp, err := s.model.Complete(st.Messages[:i])
		if err != nil {
			return fmt.Errorf("resume: replaying conversation turn %d: %w", i, err)
		}
		if resp != m.Content {
			return fmt.Errorf("resume: model diverged from checkpoint at turn %d: "+
				"the checkpoint was taken under a different model configuration", i)
		}
	}
	s.messages = st.Messages
	s.transcript = st.Transcript
	s.punted = st.Punted
	s.iterations = st.Iterations
	s.lastResponse = st.LastResponse
	if s.lastResponse == nil {
		s.lastResponse = map[string]string{}
	}
	return nil
}

// pipelineState is RunPipeline's loop position: the iteration to re-enter
// at and the per-finding attempt budgets consumed so far.
type pipelineState struct {
	Iteration int            `json:"iteration"`
	Attempts  map[string]int `json:"attempts,omitempty"`
}

// routerSnapshot is one completed router's outcome in a parallel-synthesis
// checkpoint — the serialized form of routerOutcome (error outcomes are
// never checkpointed; a failed router reruns on resume).
type routerSnapshot struct {
	Config     string     `json:"config"`
	Transcript Transcript `json:"transcript"`
	Punted     []string   `json:"punted,omitempty"`
	Iterations int        `json:"iterations"`
	Verified   bool       `json:"verified"`
	// Repaired reports the repair loop rewrote the first draft; absent in
	// checkpoints from older builds, which conservatively read as false
	// (the router merely loses the falsification bias, never correctness).
	Repaired bool `json:"repaired,omitempty"`
}

// checkpointFile is the on-disk snapshot. Sequential phases carry the
// session, pipeline position, and configurations; the parallel phase
// carries the completed routers' outcomes instead (each worker session is
// private and dies with its router's completion).
type checkpointFile struct {
	Version   int                       `json:"version"`
	RunKey    string                    `json:"run_key,omitempty"`
	Phase     string                    `json:"phase"`
	Session   *sessionState             `json:"session,omitempty"`
	Pipeline  *pipelineState            `json:"pipeline,omitempty"`
	Configs   map[string]string         `json:"configs,omitempty"`
	RNGCursor int64                     `json:"rng_cursor"` // -1: model exposes no cursor
	Routers   map[string]routerSnapshot `json:"routers,omitempty"`
}

// rngCursored is implemented by models that expose how many random draws
// they have made (llm.Synthesizer, llm.Translator). The cursor is recorded
// at snapshot time and checked after the resume replay: a replayed model
// must land on the same cursor, or its stochastic choices have diverged
// from the run being resumed.
type rngCursored interface {
	RNGCursor() int64
}

// modelCursor reads a model's RNG cursor; -1 when the model has none.
func modelCursor(m llm.Model) int64 {
	if c, ok := m.(rngCursored); ok {
		return c.RNGCursor()
	}
	return -1
}

// checkpointer serializes checkpoint writes for one run. The file write
// itself is atomic (durable.WriteFileAtomic), so a crash mid-save leaves
// the previous snapshot intact; the mutex orders concurrent savers (the
// parallel workers) so snapshots never interleave.
type checkpointer struct {
	opts CheckpointOptions

	// tracer is the optional trace sink: one checkpoint_save span per
	// snapshot write, one checkpoint_restore span per resumed load.
	tracer   *obs.Tracer
	runLabel string

	mu    sync.Mutex
	saves int
}

// newCheckpointer validates the options; nil opts disables checkpointing.
func newCheckpointer(opts *CheckpointOptions) (*checkpointer, error) {
	if opts == nil {
		return nil, nil
	}
	if opts.Path == "" {
		return nil, fmt.Errorf("checkpoint: options require a path")
	}
	return &checkpointer{opts: *opts}, nil
}

// load reads the checkpoint for resume. A missing file means a fresh
// start (nil, nil); a torn file cannot occur (writes are atomic), so any
// unreadable content, version skew, or run-key mismatch is an error the
// caller surfaces rather than silently restarting.
func (c *checkpointer) load() (*checkpointFile, error) {
	if c == nil || !c.opts.Resume {
		return nil, nil
	}
	data, err := os.ReadFile(c.opts.Path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	var start time.Time
	if c.tracer != nil {
		start = time.Now()
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("resume: checkpoint %s is unreadable: %w", c.opts.Path, err)
	}
	if ck.Version > CheckpointVersion {
		return nil, fmt.Errorf("resume: checkpoint %s is format version %d, this binary speaks %d",
			c.opts.Path, ck.Version, CheckpointVersion)
	}
	if ck.RunKey != "" && c.opts.RunKey != "" && ck.RunKey != c.opts.RunKey {
		return nil, fmt.Errorf("resume: checkpoint %s belongs to a different run (key %s, want %s)",
			c.opts.Path, ck.RunKey, c.opts.RunKey)
	}
	if c.tracer != nil {
		c.tracer.Span(start, obs.Event{Stage: obs.StageCheckpointRestore,
			Run: c.runLabel, Bytes: int64(len(data)), Outcome: ck.Phase})
	}
	return &ck, nil
}

// save atomically writes one snapshot, firing the crash-injection seam
// when configured. ErrCheckpointAborted is returned after the write, so
// the on-disk state an aborted run leaves behind is exactly a kill
// immediately after a completed snapshot — the resumable state the seam
// exists to exercise.
func (c *checkpointer) save(ck *checkpointFile) error {
	ck.Version = CheckpointVersion
	ck.RunKey = c.opts.RunKey
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var start time.Time
	if c.tracer != nil {
		start = time.Now()
	}
	if err := durable.WriteFileAtomic(c.opts.Path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if c.tracer != nil {
		c.tracer.Span(start, obs.Event{Stage: obs.StageCheckpointSave,
			Run: c.runLabel, Bytes: int64(len(data)), Outcome: ck.Phase})
	}
	c.saves++
	if c.opts.AbortAfterSaves > 0 && c.saves >= c.opts.AbortAfterSaves {
		return ErrCheckpointAborted
	}
	return nil
}

// sequentialSaver builds RunPipeline's per-iteration snapshot hook for the
// sequential phases: it captures the live session and configuration map
// and serializes their state as of each iteration's top.
func (c *checkpointer) sequentialSaver(phase string, sess *session,
	configs map[string]string) func(iter int, attempts map[string]int) error {
	if c == nil {
		return nil
	}
	return func(iter int, attempts map[string]int) error {
		return c.save(&checkpointFile{
			Phase:     phase,
			Session:   snapshotSession(sess),
			Pipeline:  &pipelineState{Iteration: iter, Attempts: attempts},
			Configs:   configs,
			RNGCursor: modelCursor(sess.model),
		})
	}
}

// resumeSequential validates a loaded checkpoint against the sequential
// phase being started and unpacks it. A nil checkpoint (fresh start)
// returns all zero values.
func resumeSequential(ck *checkpointFile, phase string) (*sessionState,
	*pipelineState, map[string]string, int64, error) {
	if ck == nil {
		return nil, nil, nil, -1, nil
	}
	if ck.Phase != phase {
		return nil, nil, nil, -1, fmt.Errorf("resume: checkpoint is a %s snapshot, this run is %s",
			ck.Phase, phase)
	}
	if ck.Session == nil || ck.Pipeline == nil {
		return nil, nil, nil, -1, fmt.Errorf("resume: %s checkpoint carries no session state", phase)
	}
	return ck.Session, ck.Pipeline, ck.Configs, ck.RNGCursor, nil
}

// checkCursor compares the model's post-replay RNG cursor against the
// recorded one; both must be known for the check to apply.
func checkCursor(m llm.Model, recorded int64) error {
	if recorded < 0 {
		return nil
	}
	if got := modelCursor(m); got >= 0 && got != recorded {
		return fmt.Errorf("resume: model RNG cursor %d does not match checkpoint cursor %d "+
			"(different seed or injection configuration)", got, recorded)
	}
	return nil
}
