package core

import (
	"testing"

	"repro/internal/llm"
	"repro/internal/netgen"
)

// TestSynthesizePipelineConverges is the §4.2 experiment: the 7-router
// star with the default error scenario must end verified with leverage
// around 6X and exactly two human prompts (kickoff + the AND/OR fix).
func TestSynthesizePipelineConverges(t *testing.T) {
	topo, err := netgen.Star(7)
	if err != nil {
		t.Fatal(err)
	}
	model := llm.NewSynthesizer(llm.DefaultSynthConfig())
	res, err := Synthesize(topo, SynthOptions{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	auto, human := res.Transcript.Counts()
	t.Logf("automated=%d human=%d leverage=%.1f", auto, human, res.Leverage())
	if !res.Verified {
		t.Fatalf("pipeline did not verify; transcript:\n%s", res.Transcript)
	}
	if human != 2 {
		t.Errorf("human prompts = %d, want 2; transcript:\n%s", human, res.Transcript)
	}
	if auto < 9 || auto > 15 {
		t.Errorf("automated prompts = %d, want ~12; transcript:\n%s", auto, res.Transcript)
	}
}
