package core

import (
	"sort"

	"repro/internal/lightyear"
	"repro/internal/suite"
	"repro/internal/topology"
)

// GlobalHint re-exports the change-locality hint for global checks (see
// internal/suite): which routers changed since the run's previous global
// check, plus the prior config set's digest.
type GlobalHint = suite.GlobalHint

// IncrementalGlobalVerifier re-exports the optional capability a Verifier
// implements to accept GlobalHints. CachedVerifier, rest.Client, and
// rest.ShardedClient implement it; hints change cost, never verdicts.
type IncrementalGlobalVerifier = suite.IncrementalGlobal

// globalNoTransit dispatches one global check through the incremental
// capability when the verifier has it and a hint is available, falling
// back to the plain interface method otherwise. Either path returns the
// same result bytes.
func globalNoTransit(v Verifier, t *topology.Topology, configs map[string]string,
	hint *GlobalHint) (*lightyear.GlobalResult, error) {
	if hint != nil {
		if ig, ok := v.(IncrementalGlobalVerifier); ok {
			return ig.GlobalNoTransitIncremental(t, configs, hint)
		}
	}
	return v.GlobalNoTransit(t, configs)
}

// globalTracker derives per-call GlobalHints for a repair loop by diffing
// each call's configuration digests against the previous call's: the
// changed-router set is computed, not trusted from the caller, so a hint
// can never understate a change. Each revision body is hashed once (the
// digest memo), so a call over a barely-changed config set costs O(changed)
// in config bytes rather than re-comparing every full text. The zero value
// is ready to use; the first call yields an unknown (cold) hint.
type globalTracker struct {
	prev    map[string]string // router -> TextDigest of its last-seen revision
	digest  string
	digests *suite.Digests
}

// hint returns the hint for a call about to verify configs, and advances
// the tracker to treat configs as the new baseline.
func (g *globalTracker) hint(configs map[string]string) *GlobalHint {
	if g.digests == nil {
		g.digests = suite.NewDigests()
	}
	cur := make(map[string]string, len(configs))
	for name, text := range configs {
		cur[name] = g.digests.Of(text)
	}
	h := &GlobalHint{}
	if g.prev == nil {
		h.Changed = nil // unknown: first call runs cold
	} else {
		h.PriorDigest = g.digest
		changed := []string{}
		for name, dg := range cur {
			if old, ok := g.prev[name]; !ok || old != dg {
				changed = append(changed, name)
			}
		}
		for name := range g.prev {
			if _, ok := cur[name]; !ok {
				changed = append(changed, name)
			}
		}
		sort.Strings(changed)
		h.Changed = changed
	}
	g.prev = cur
	g.digest = suite.ConfigDigestD(configs, g.digests)
	return h
}
