package core

import (
	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// Verifier is the verification-suite seam of Figure 3: syntax (Batfish),
// translation semantics (Campion), topology, local-policy semantics
// (Batfish SearchRoutePolicies à la Lightyear), and the global BGP
// simulation. The engine only talks to this interface, so the suite can
// run in-process (LocalVerifier) or behind the REST wrapper
// (rest.Client) — the repro note's "call verifier via REST wrapper".
type Verifier interface {
	// CheckSyntax returns parse/lint warnings for a config (either dialect).
	CheckSyntax(config string) ([]netcfg.ParseWarning, error)
	// DiffTranslation compares an original Cisco config against a Juniper
	// translation (Campion).
	DiffTranslation(original, translation string) ([]campion.Finding, error)
	// VerifyTopology checks one router's config against its spec.
	VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error)
	// CheckLocalPolicy checks one Lightyear requirement against a config.
	CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error)
	// GlobalNoTransit runs the BGP simulation and checks the global policy.
	GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error)
}

// LocalVerifier runs the suite in-process.
type LocalVerifier struct{}

// CheckSyntax implements Verifier.
func (LocalVerifier) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	return batfish.CheckSyntax(config), nil
}

// DiffTranslation implements Verifier.
func (LocalVerifier) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	orig, _ := batfish.ParseConfig(original)
	trans, _ := batfish.ParseConfig(translation)
	return campion.Diff(orig, trans), nil
}

// VerifyTopology implements Verifier.
func (LocalVerifier) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	dev, _ := batfish.ParseConfig(config)
	return topology.Verify(&spec, dev), nil
}

// CheckLocalPolicy implements Verifier.
func (LocalVerifier) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	dev, _ := batfish.ParseConfig(config)
	v, bad := lightyear.Check(dev, req)
	return v, bad, nil
}

// GlobalNoTransit implements Verifier.
func (LocalVerifier) GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error) {
	devs := map[string]*netcfg.Device{}
	for name, text := range configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	return lightyear.CheckGlobalNoTransit(t, devs)
}
