package core

import (
	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// Verifier is the verification-suite seam of Figure 3: syntax (Batfish),
// translation semantics (Campion), topology, local-policy semantics
// (Batfish SearchRoutePolicies à la Lightyear), and the global BGP
// simulation. The engine only talks to this interface, so the suite can
// run in-process (LocalVerifier) or behind the REST wrapper
// (rest.Client) — the repro note's "call verifier via REST wrapper".
type Verifier interface {
	// CheckSyntax returns parse/lint warnings for a config (either dialect).
	CheckSyntax(config string) ([]netcfg.ParseWarning, error)
	// DiffTranslation compares an original Cisco config against a Juniper
	// translation (Campion).
	DiffTranslation(original, translation string) ([]campion.Finding, error)
	// VerifyTopology checks one router's config against its spec.
	VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error)
	// CheckLocalPolicy checks one Lightyear requirement against a config.
	CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error)
	// GlobalNoTransit runs the BGP simulation and checks the global policy.
	GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error)
}

// LocalVerifier runs the suite in-process. The zero value parses each
// configuration on every call, faithfully re-doing the work the paper's
// loop re-does; with Parses set, each configuration revision is parsed
// exactly once and the resulting device is shared (read-only) across the
// syntax, topology, local-policy, and simulation stages.
type LocalVerifier struct {
	// Parses is an optional shared parse cache (see batfish.NewParseCache).
	Parses *netcfg.ParseCache
}

// parsed returns the parse product for a config, through the cache when
// one is attached.
func (v LocalVerifier) parsed(config string) *netcfg.Parsed {
	if v.Parses != nil {
		return v.Parses.Parse(config)
	}
	return batfish.ParseAndCheck(config)
}

// CheckSyntax implements Verifier.
func (v LocalVerifier) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	return v.parsed(config).CheckWarnings, nil
}

// DiffTranslation implements Verifier.
func (v LocalVerifier) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	orig := v.parsed(original).Device
	trans := v.parsed(translation).Device
	return campion.Diff(orig, trans), nil
}

// VerifyTopology implements Verifier.
func (v LocalVerifier) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	return topology.Verify(&spec, v.parsed(config).Device), nil
}

// CheckLocalPolicy implements Verifier.
func (v LocalVerifier) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	viol, bad := lightyear.Check(v.parsed(config).Device, req)
	return viol, bad, nil
}

// GlobalNoTransit implements Verifier.
func (v LocalVerifier) GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error) {
	devs := map[string]*netcfg.Device{}
	for name, text := range configs {
		devs[name] = v.parsed(text).Device
	}
	return lightyear.CheckGlobalNoTransit(t, devs)
}
