// Package core implements COSYNTH (Figure 3): the Verified Prompt
// Programming engine that drives the LLM / verifier-suite / humanizer loop
// for both use cases — Cisco→Juniper translation (§3) and no-transit
// synthesis via local policies (§4) — and accounts for leverage, the
// paper's central metric (automated prompts / human prompts, §1).
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/obs"
)

// PromptKind distinguishes the two loops of Figure 2: the fast automated
// inner loop (verifier → humanizer → LLM) and the slow manual loop.
type PromptKind int

// Prompt kinds.
const (
	Automated PromptKind = iota
	Human
)

// String implements fmt.Stringer.
func (k PromptKind) String() string {
	if k == Human {
		return "human"
	}
	return "automated"
}

// Stage names the verifier that produced a correction prompt.
type Stage string

// Pipeline stages.
const (
	StageTask      Stage = "task"
	StageSyntax    Stage = "syntax"
	StageStructure Stage = "structure" // Campion structural / attribute
	StageTopology  Stage = "topology"
	StageSemantic  Stage = "semantic"
	StagePrint     Stage = "print"
)

// PromptRecord is one transcript entry.
type PromptRecord struct {
	Kind    PromptKind
	Stage   Stage
	Prompt  string
	Changed bool // whether the model's response differed from its previous output
}

// Transcript is the full prompt/response history of a run.
type Transcript []PromptRecord

// Counts tallies the transcript by kind.
func (t Transcript) Counts() (automated, human int) {
	for _, r := range t {
		if r.Kind == Human {
			human++
		} else {
			automated++
		}
	}
	return automated, human
}

// String renders a readable transcript summary.
func (t Transcript) String() string {
	var b strings.Builder
	for i, r := range t {
		fmt.Fprintf(&b, "%2d. [%s/%s] %s\n", i+1, r.Kind, r.Stage, firstLine(r.Prompt))
	}
	return b.String()
}

// Result is the outcome of one VPP run.
type Result struct {
	Verified   bool
	Transcript Transcript
	// Configs holds the final output: for translation, key "translation";
	// for synthesis, one entry per router.
	Configs map[string]string
	// PuntedFindings lists findings the automated loop gave up on
	// (each consumed a human prompt).
	PuntedFindings []string
	// Iterations counts the verify/correct cycles the run consumed —
	// every pass of RunPipeline's loop, including the final clean scan
	// that declares a pipeline verified. Parallel per-router repair sums
	// the workers' private loops. The fuzz campaign's oracle asserts this
	// stays bounded in the injected-error count.
	Iterations int
	// CacheStats reports the incremental verification cache's counters for
	// the run; nil when the cache was disabled.
	CacheStats *CacheStats
	// Global is the final whole-network check's result; its Method field
	// records whether the BGP simulation or the compositional fast path
	// produced the verdict. nil when the run never reached the global
	// check (local repair failed, SkipGlobalCheck, or translation mode).
	Global *lightyear.GlobalResult
}

// AutomatedPrompts counts automated prompts.
func (r *Result) AutomatedPrompts() int { a, _ := r.Transcript.Counts(); return a }

// HumanPrompts counts human prompts.
func (r *Result) HumanPrompts() int { _, h := r.Transcript.Counts(); return h }

// Leverage is the paper's metric: automated prompts per human prompt.
// The edge cases are pinned so the metric stays monotone in automation
// and a fully-punted run cannot be mistaken for a fully-automatic one:
//
//   - a == 0 && h == 0: 0 — an empty run has no leverage to report;
//   - a > 0 && h == 0: float64(a) — the loop was fully automatic, and the
//     automated count is the conventional lower bound ("at least a
//     automated prompts per human prompt");
//   - a == 0 && h > 0: 0 — every prompt was human (the loop punted
//     everything), the metric's minimum. This is distinguishable from the
//     fully-automatic case, which is never 0 when any prompt was sent.
func (r *Result) Leverage() float64 {
	a, h := r.Transcript.Counts()
	if h == 0 {
		return float64(a)
	}
	return float64(a) / float64(h)
}

// FullyAutomated reports whether the run sent at least one prompt and
// none of them were human — the regime where Leverage() returns the
// automated count as a lower bound rather than a true ratio.
func (r *Result) FullyAutomated() bool {
	a, h := r.Transcript.Counts()
	return a > 0 && h == 0
}

// session drives one conversation with the model, recording the
// transcript and tracking the latest response per target.
type session struct {
	model      llm.Model
	messages   []llm.Message
	transcript Transcript
	punted     []string
	// lastResponse tracks the model's previous output per target key, to
	// detect whether a correction changed anything.
	lastResponse map[string]string
	// iterations counts RunPipeline cycles driven over this session (the
	// Result.Iterations stat).
	iterations int
	// tracer is the optional trace sink (nil = off): every send() emits
	// one llm_call span. runLabel names the run in its events.
	tracer   *obs.Tracer
	runLabel string
}

func newSession(model llm.Model, iip []llm.IIP) *session {
	s := &session{model: model, lastResponse: map[string]string{}}
	s.messages = append(s.messages, llm.IIPMessages(iip)...)
	return s
}

// send issues a prompt and returns the model's response, recording
// whether the response for the target changed.
func (s *session) send(kind PromptKind, stage Stage, target, prompt string) (string, bool, error) {
	role := llm.RoleAutomated
	if kind == Human {
		role = llm.RoleHuman
	}
	s.messages = append(s.messages, llm.Message{Role: role, Content: prompt})
	var start time.Time
	if s.tracer != nil {
		start = time.Now()
	}
	resp, err := s.model.Complete(s.messages)
	if s.tracer != nil {
		s.tracer.Span(start, obs.Event{Stage: obs.StageLLMCall, Run: s.runLabel,
			Iter: s.iterations, Router: target, Detail: string(stage),
			Bytes: int64(len(resp))})
	}
	if err != nil {
		return "", false, fmt.Errorf("model error on %s prompt: %w", stage, err)
	}
	s.messages = append(s.messages, llm.Message{Role: llm.RoleModel, Content: resp})
	changed := s.lastResponse[target] != resp
	s.lastResponse[target] = resp
	s.transcript = append(s.transcript, PromptRecord{Kind: kind, Stage: stage,
		Prompt: prompt, Changed: changed})
	return resp, changed, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
