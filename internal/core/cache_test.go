package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// countingVerifier wraps the in-process suite and counts underlying calls
// per method, so tests can observe what the cache actually re-evaluates.
type countingVerifier struct {
	LocalVerifier
	syntax, topo, local, diff atomic.Int64
}

func (v *countingVerifier) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	v.syntax.Add(1)
	return v.LocalVerifier.CheckSyntax(config)
}

func (v *countingVerifier) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	v.topo.Add(1)
	return v.LocalVerifier.VerifyTopology(spec, config)
}

func (v *countingVerifier) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	v.local.Add(1)
	return v.LocalVerifier.CheckLocalPolicy(config, req)
}

func (v *countingVerifier) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	v.diff.Add(1)
	return v.LocalVerifier.DiffTranslation(original, translation)
}

func testRequirement() lightyear.Requirement {
	return lightyear.Requirement{
		Kind:        lightyear.EgressDropsCommunity,
		Router:      "R1",
		Policy:      "FILTER",
		Community:   netcfg.MustCommunity("100:1"),
		Description: "test requirement",
	}
}

func TestCachedVerifierMemoizesPerRevision(t *testing.T) {
	under := &countingVerifier{}
	cv := NewCachedVerifier(under)
	cfg := "hostname R1\n"

	for i := 0; i < 3; i++ {
		if _, err := cv.CheckSyntax(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := under.syntax.Load(); got != 1 {
		t.Errorf("underlying syntax calls = %d, want 1 (memoized)", got)
	}

	req := testRequirement()
	for i := 0; i < 3; i++ {
		if _, _, err := cv.CheckLocalPolicy(cfg, req); err != nil {
			t.Fatal(err)
		}
	}
	if got := under.local.Load(); got != 1 {
		t.Errorf("underlying local-policy calls = %d, want 1 (memoized)", got)
	}

	stats := cv.Stats()
	if stats.Hits != 4 || stats.Misses != 2 {
		t.Errorf("stats = %+v, want 4 hits / 2 misses", stats)
	}
}

func TestCachedVerifierInvalidatesOnConfigChange(t *testing.T) {
	under := &countingVerifier{}
	cv := NewCachedVerifier(under)

	if _, err := cv.CheckSyntax("hostname R1\n"); err != nil {
		t.Fatal(err)
	}
	// A new revision of the config is a new key: the underlying verifier
	// must run again and must see the new text's warnings.
	warns, err := cv.CheckSyntax("hostname R1\nconfigure terminal\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) == 0 {
		t.Error("changed config's warnings were not recomputed")
	}
	if got := under.syntax.Load(); got != 2 {
		t.Errorf("underlying syntax calls = %d, want 2 (one per revision)", got)
	}

	// Same config under a different requirement is also a distinct key.
	req := testRequirement()
	if _, _, err := cv.CheckLocalPolicy("hostname R1\n", req); err != nil {
		t.Fatal(err)
	}
	req.Community = netcfg.MustCommunity("100:2")
	if _, _, err := cv.CheckLocalPolicy("hostname R1\n", req); err != nil {
		t.Fatal(err)
	}
	if got := under.local.Load(); got != 2 {
		t.Errorf("underlying local calls = %d, want 2 (one per requirement)", got)
	}
}

// driveConcurrently hammers one shared CachedVerifier from many workers
// mixing all four check kinds; run under -race this is the concurrency
// test for the cache (both the result map and the shared parse cache).
func driveConcurrently(t *testing.T, cv *CachedVerifier) {
	t.Helper()
	spec := topology.RouterSpec{Name: "R1", ASN: 1}
	req := testRequirement()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				cfg := fmt.Sprintf("hostname R%d\n", (i+w)%5)
				if _, err := cv.CheckSyntax(cfg); err != nil {
					t.Error(err)
					return
				}
				if _, err := cv.VerifyTopology(spec, cfg); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := cv.CheckLocalPolicy(cfg, req); err != nil {
					t.Error(err)
					return
				}
				if _, err := cv.DiffTranslation(cfg, cfg); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := cv.Stats()
	if stats.Hits+stats.Misses != 8*25*4 {
		t.Errorf("hits+misses = %d, want %d", stats.Hits+stats.Misses, 8*25*4)
	}
}

func TestCachedVerifierConcurrentInProcess(t *testing.T) {
	driveConcurrently(t, NewCachedVerifier(nil))
}

func TestCachedVerifierConcurrentREST(t *testing.T) {
	driveConcurrently(t, NewCachedVerifier(newRESTVerifier(t)))
}

// TestCachedVerifierStripedHammer drives the sharded result map from 16
// goroutines at once — the scale configuration's worker count doubled —
// over enough distinct checks (SHA-keyed, so uniformly spread across all
// 64 stripes) that a regression to one shared mutex surfaces under -race
// and as serialization. Results must stay correct and the counters must
// balance: every lookup is either a hit or a miss.
func TestCachedVerifierStripedHammer(t *testing.T) {
	v := &countingVerifier{}
	c := NewCachedVerifier(v)
	const workers, configs, rounds = 16, 256, 200
	req := testRequirement()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := (i*workers + w*11) % configs
				cfg := fmt.Sprintf("hostname R%d\n", n)
				if _, err := c.CheckSyntax(cfg); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.CheckLocalPolicy(cfg, req); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := c.Stats()
	want := uint64(workers * rounds * 2)
	if stats.Hits+stats.Misses != want {
		t.Errorf("hits+misses = %d, want %d", stats.Hits+stats.Misses, want)
	}
	// Concurrent first sights of one key may each miss and re-evaluate
	// (both store the same pure result), but misses can never fall below
	// the number of distinct (kind, config) keys.
	if stats.Misses < configs*2 {
		t.Errorf("misses = %d, want >= %d", stats.Misses, configs*2)
	}
	if calls := v.syntax.Load() + v.local.Load(); uint64(calls) != stats.Misses {
		t.Errorf("underlying calls = %d, want %d (one per miss)", calls, stats.Misses)
	}
}
