package core

import "strings"

// HumanOracle supplies the manual prompts of Figure 2's slow loop: when
// the automated loop exhausts its attempts on a finding, COSYNTH "punts to
// the user" and the oracle plays the paper's operator, who knows the more
// direct phrasing GPT-4 needs.
type HumanOracle interface {
	// Correct returns a manual correction prompt for a finding the
	// automated loop could not fix, or ok=false to give up.
	Correct(stage Stage, finding string) (prompt string, ok bool)
}

// PaperHuman reproduces the manual interventions the paper reports:
//
//   - redistribution differences: "it was able to fix the problem when
//     asked more directly to add 'from bgp' conditions to routing
//     policies" (§3.2);
//   - AND/OR semantics: "A human prompt was needed to ask GPT-4 to declare
//     each match statement in a separate route-map stanza" (§4.2);
//   - misplaced neighbor commands: move them inside the router bgp block
//     (§4.2).
type PaperHuman struct{}

// Correct implements HumanOracle. It reads the failed humanized prompt the
// way the paper's operator read the verifier output, and answers with the
// "more specific" phrasing.
func (PaperHuman) Correct(stage Stage, prompt string) (string, bool) {
	f := strings.ToLower(prompt)
	switch {
	// The translation exports routes the original rejects: the §3.2
	// redistribution difference (original REJECT, translation ACCEPT).
	case stage == StageSemantic && strings.Contains(f, "action: reject. but"):
		return "The translated export policy applies to routes from every protocol. " +
			"Add a \"from bgp\" condition to each routing policy term that should only " +
			"apply to BGP routes, and keep the redistribution terms gated on their own " +
			"protocols. Then print the entire configuration.", true
	case strings.Contains(f, "permits routes that have the community"):
		return "Declare each match statement in a separate route-map stanza so that the " +
			"route-map denies a route carrying any one of the communities (OR semantics), " +
			"not only routes carrying all of them. Then print the entire configuration.", true
	case strings.Contains(f, "not a top-level command"):
		return "The neighbor and network commands must be placed inside the \"router bgp\" " +
			"block. Move them there and print the entire configuration.", true
	default:
		return "", false
	}
}

// NoHuman is an oracle that never helps: runs with it measure what the
// automated loop achieves alone.
type NoHuman struct{}

// Correct implements HumanOracle.
func (NoHuman) Correct(Stage, string) (string, bool) { return "", false }

// HumanizerHuman plays the operator in the raw-feedback ablation: when the
// loop punts, the human reads the cryptic verifier output and manually
// writes the prompt the humanizer would have written — then falls back to
// the PaperHuman interventions for the two genuinely hard cases.
type HumanizerHuman struct{}

// Correct implements HumanOracle. It receives the humanized description
// (the engine always hands the oracle the readable form) and simply
// forwards it, unless the PaperHuman knows a more direct fix.
func (HumanizerHuman) Correct(stage Stage, humanized string) (string, bool) {
	if p, ok := (PaperHuman{}).Correct(stage, humanized); ok {
		return p, true
	}
	return humanized, true
}
