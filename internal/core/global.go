package core

import (
	"fmt"

	"repro/internal/llm"
	"repro/internal/modularizer"
	"repro/internal/topology"
)

// GlobalSynthOptions configures the global-prompting ablation (§4.1).
type GlobalSynthOptions struct {
	Model    llm.Model
	Verifier Verifier
	// MaxAttempts bounds counterexample rounds before giving up
	// (default 6; the paper gave up too — that is the point).
	MaxAttempts int
}

// SynthesizeGlobal runs the paper's failed first approach: specify the
// global no-transit policy at once and feed back whole-network
// counterexamples (as a global verifier like Minesweeper would produce).
// With the oscillating simulated model this does not converge — the
// result documents the prompts consumed and Verified=false, motivating
// the local-specification approach of Synthesize.
func SynthesizeGlobal(topo *topology.Topology, opts GlobalSynthOptions) (*Result, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("synthesize-global: options require a model")
	}
	if opts.Verifier == nil {
		opts.Verifier = LocalVerifier{}
	}
	// The cached wrapper carries the incremental-global capability: each
	// counterexample round re-simulates only the routers the model's last
	// response actually changed.
	opts.Verifier = NewCachedVerifier(opts.Verifier)
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 6
	}
	sess := newSession(opts.Model, nil)

	resp, _, err := sess.send(Human, StageTask, "network", modularizer.GlobalPrompt(topo))
	if err != nil {
		return nil, err
	}
	configs := llm.SplitConfigs(resp)

	verified := false
	var tracker globalTracker
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		global, err := globalNoTransit(opts.Verifier, topo, configs, tracker.hint(configs))
		if err != nil {
			return nil, err
		}
		if global.OK() {
			verified = true
			break
		}
		// Counterexample feedback, as a global verifier would phrase it.
		var counterexample string
		if len(global.Violations) > 0 {
			counterexample = global.Violations[0]
		} else if len(global.MissingReachability) > 0 {
			counterexample = global.MissingReachability[0]
		} else {
			counterexample = "the BGP simulation did not converge"
		}
		prompt := fmt.Sprintf("The network does not satisfy the no-transit policy. "+
			"Counterexample: %s. Please fix the configurations and print all of them.",
			counterexample)
		resp, _, err := sess.send(Automated, StageSemantic, "network", prompt)
		if err != nil {
			return nil, err
		}
		configs = llm.SplitConfigs(resp)
	}
	return &Result{Verified: verified, Transcript: sess.transcript, Configs: configs}, nil
}
