package core

import (
	"fmt"

	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// IncrementalOptions configures AddPolicyIncremental.
type IncrementalOptions struct {
	Model    llm.Model
	Verifier Verifier
	// MaxAttempts bounds correction rounds (default 8).
	MaxAttempts int
}

// CustomerTagPolicy is the route map the incremental task adds on R1.
const CustomerTagPolicy = "ADD_COMM_CUST"

// CustomerTag is the community the new policy must attach.
var CustomerTag = netcfg.MustCommunity("99:1")

// AddPolicyIncremental runs the paper's §6 open question as an experiment:
// "Can GPT-4 add a new policy incrementally without interfering with
// existing verified policy?" Starting from verified star configurations,
// it asks the model to add a customer-ingress tagging policy on R1, then
// re-verifies BOTH the new requirement and the entire pre-existing
// no-transit specification (local checks plus the global BGP simulation),
// feeding interference findings back as humanized prompts.
func AddPolicyIncremental(topo *topology.Topology, configs map[string]string,
	opts IncrementalOptions) (*Result, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("incremental: options require a model")
	}
	if opts.Verifier == nil {
		opts.Verifier = LocalVerifier{}
	}
	// The non-interference re-check re-verifies every requirement on each
	// attempt even though only R1's config changes; the cache makes each
	// (revision, requirement) pair cost one verification and each revision
	// one parse.
	opts.Verifier = NewCachedVerifier(opts.Verifier)
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 8
	}
	sess := newSession(opts.Model, nil)
	current := map[string]string{}
	for k, v := range configs {
		current[k] = v
	}

	task := fmt.Sprintf("Add to router R1 a new route-map %s that adds the community %s "+
		"additively to every route received from the CUSTOMER neighbor 1.0.0.2, and apply "+
		"it at that ingress. Keep every existing route-map and neighbor attachment "+
		"unchanged. Print the entire corrected configuration for R1.",
		CustomerTagPolicy, CustomerTag)
	resp, _, err := sess.send(Human, StageTask, "R1", task)
	if err != nil {
		return nil, err
	}
	current["R1"] = resp

	// The old spec plus the one new requirement.
	reqs := append(lightyear.NoTransitSpec(topo), lightyear.Requirement{
		Kind:      lightyear.IngressAddsCommunity,
		Router:    "R1",
		Policy:    CustomerTagPolicy,
		Community: CustomerTag,
		Description: fmt.Sprintf("Every route R1 accepts from the CUSTOMER must carry "+
			"community %s after ingress processing.", CustomerTag),
	})

	verified := false
	// Each attempt changes only R1's configuration; the tracker turns that
	// into a change-locality hint so an incremental verifier re-simulates
	// only R1's flooding frontier on the non-interference global re-check.
	var tracker globalTracker
	for attempt := 0; attempt < opts.MaxAttempts; attempt++ {
		sess.iterations++
		prompt, done, err := nextIncrementalFinding(opts.Verifier, topo, reqs, current, &tracker)
		if err != nil {
			return nil, err
		}
		if done {
			verified = true
			break
		}
		resp, _, err := sess.send(Automated, StageSemantic, "R1", prompt)
		if err != nil {
			return nil, err
		}
		current["R1"] = resp
	}
	return &Result{Verified: verified, Transcript: sess.transcript, Configs: current,
		Iterations: sess.iterations}, nil
}

// nextIncrementalFinding checks syntax on R1, every local requirement,
// and finally the global simulation — the non-interference re-check.
func nextIncrementalFinding(v Verifier, topo *topology.Topology,
	reqs []lightyear.Requirement, configs map[string]string,
	tracker *globalTracker) (string, bool, error) {
	warns, err := v.CheckSyntax(configs["R1"])
	if err != nil {
		return "", false, err
	}
	if len(warns) > 0 {
		return fmt.Sprintf("In the configuration of router R1: there is a syntax error: '%s' (%s). "+
			"Please fix it and print the entire corrected configuration.",
			warns[0].Text, warns[0].Reason), false, nil
	}
	for _, req := range reqs {
		viol, bad, err := v.CheckLocalPolicy(configs[req.Router], req)
		if err != nil {
			return "", false, err
		}
		if bad {
			return viol.Explanation + " Please fix the route-map and print the entire " +
				"corrected configuration.", false, nil
		}
	}
	global, err := globalNoTransit(v, topo, configs, tracker.hint(configs))
	if err != nil {
		return "", false, err
	}
	if !global.OK() {
		counterexample := "the BGP simulation did not converge"
		if len(global.Violations) > 0 {
			counterexample = global.Violations[0]
		} else if len(global.MissingReachability) > 0 {
			counterexample = global.MissingReachability[0]
		}
		return fmt.Sprintf("The change interferes with the existing verified no-transit "+
			"policy: %s. Restore the existing policies and neighbor attachments on R1 while "+
			"keeping the new route-map, then print the entire corrected configuration.",
			counterexample), false, nil
	}
	return "", true, nil
}
