package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/llm"
	"repro/internal/netgen"
)

// TestLeverageEdgeSemantics pins the documented edge cases of the paper's
// metric: an empty run and a fully-punted run both report 0, while a
// fully-automatic run reports the automated count — so 0 can never be
// read as "fully automatic".
func TestLeverageEdgeSemantics(t *testing.T) {
	empty := &Result{}
	if got := empty.Leverage(); got != 0 {
		t.Errorf("empty run leverage = %v, want 0", got)
	}
	if empty.FullyAutomated() {
		t.Error("empty run must not count as fully automated")
	}

	punted := &Result{Transcript: Transcript{
		{Kind: Human, Stage: StageTask},
		{Kind: Human, Stage: StageSemantic},
	}}
	if got := punted.Leverage(); got != 0 {
		t.Errorf("fully-punted leverage = %v, want 0", got)
	}
	if punted.FullyAutomated() {
		t.Error("fully-punted run must not count as fully automated")
	}

	auto := &Result{Transcript: Transcript{
		{Kind: Automated, Stage: StageSyntax},
		{Kind: Automated, Stage: StagePrint},
		{Kind: Automated, Stage: StageSemantic},
	}}
	if got := auto.Leverage(); got != 3 {
		t.Errorf("fully-automatic leverage = %v, want 3 (lower bound)", got)
	}
	if !auto.FullyAutomated() {
		t.Error("all-automated run must count as fully automated")
	}
}

// TestSynthesizeTopologyScenariosConverge runs the full VPP loop —
// including the global BGP simulation — on every registered scenario at
// its default size: each must verify, and each non-star scenario must hit
// the AND/OR human-intervention case at an attachment point.
func TestSynthesizeTopologyScenariosConverge(t *testing.T) {
	for _, sc := range netgen.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			topo, err := sc.Generate(sc.DefaultSize)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Synthesize(topo, SynthOptions{
				Model: llm.NewSynthesizer(llm.DefaultSynthConfig())})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("%s did not verify; transcript:\n%s", topo.Name, res.Transcript)
			}
			auto, human := res.Transcript.Counts()
			t.Logf("%s: automated=%d human=%d leverage=%.1f",
				topo.Name, auto, human, res.Leverage())
			if human != 2 {
				t.Errorf("human prompts = %d, want 2 (kickoff + AND/OR); transcript:\n%s",
					human, res.Transcript)
			}
			if len(topo.Routers) != len(res.Configs) {
				t.Errorf("configs for %d of %d routers", len(res.Configs), len(topo.Routers))
			}
		})
	}
}

// TestParallelSynthesisMatchesSequential checks the concurrency contract:
// for every scenario, the parallel worker pool produces the same verified
// status, the same prompt accounting, the same punted findings, and the
// same final configurations as the sequential loop, because each router's
// repair loop is independent and the merge is deterministic.
func TestParallelSynthesisMatchesSequential(t *testing.T) {
	for _, sc := range netgen.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			topo, err := sc.Generate(sc.DefaultSize)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Synthesize(topo, SynthOptions{
				Model: llm.NewSynthesizer(llm.DefaultSynthConfig())})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Synthesize(topo, SynthOptions{
				Model:       llm.NewSynthesizer(llm.DefaultSynthConfig()),
				Parallelism: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			sa, sh := seq.Transcript.Counts()
			pa, ph := par.Transcript.Counts()
			if sa != pa || sh != ph || seq.Verified != par.Verified {
				t.Errorf("sequential (%d,%d,%v) != parallel (%d,%d,%v)",
					sa, sh, seq.Verified, pa, ph, par.Verified)
			}
			if !sortedEqual(seq.PuntedFindings, par.PuntedFindings) {
				t.Errorf("punted findings differ: %v vs %v",
					seq.PuntedFindings, par.PuntedFindings)
			}
			if fmt.Sprint(seq.Configs) != fmt.Sprint(par.Configs) {
				t.Error("final configurations differ between sequential and parallel")
			}
		})
	}
}

// TestSynthesizeSingleAttachmentTopology covers the degenerate scenario
// of one ISP attachment (fat-tree k=2): nothing to filter, so the run
// must still converge and verify globally.
func TestSynthesizeSingleAttachmentTopology(t *testing.T) {
	topo, err := netgen.FatTree(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(topo, SynthOptions{
		Model: llm.NewSynthesizer(llm.DefaultSynthConfig())})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("fat-tree-2 did not verify; transcript:\n%s", res.Transcript)
	}
}

// TestParallelSynthesisIsDeterministic re-runs the parallel loop and
// demands an identical transcript: the merge order is topology order, not
// completion order.
func TestParallelSynthesisIsDeterministic(t *testing.T) {
	topo, err := netgen.Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	var prev string
	for trial := 0; trial < 3; trial++ {
		res, err := Synthesize(topo, SynthOptions{
			Model:       llm.NewSynthesizer(llm.DefaultSynthConfig()),
			Parallelism: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Transcript.String()
		if prev != "" && got != prev {
			t.Fatalf("trial %d transcript differs:\n%s\nvs\n%s", trial, got, prev)
		}
		prev = got
	}
}

func sortedEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
