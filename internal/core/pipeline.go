package core

import "repro/internal/llm"

// Finding is one outstanding verifier finding surfaced by a pipeline
// stage: a stable identity (for the attempt budget), the configuration it
// concerns, the stage label, and the two renderings of the feedback — the
// humanized rectification prompt and the raw verifier output.
type Finding struct {
	// Key is a stable identity so the attempt budget tracks "the same
	// error" across iterations.
	Key string
	// Target names the configuration the finding concerns: "translation"
	// for the translation use case, a router name for synthesis.
	Target string
	// Stage labels the verifier that produced the finding.
	Stage Stage
	// Humanized is the Table 1 / Table 3 rectification prompt.
	Humanized string
	// Raw is the raw verifier output (used by the humanizer ablation);
	// empty means the humanized form is the only rendering.
	Raw string
}

// PipelineStage is one verifier pass of the repair loop (Figure 3): it
// inspects the current configurations and reports the first outstanding
// finding, or nil when the stage is clean. Stages run in declaration
// order, which encodes the paper's masking order — "syntax errors and
// structural mismatches have to be handled earlier since they can mask
// attribute differences and policy behavior differences" (§3.1). The
// transcript label comes from each Finding's Stage field, since one pass
// may surface findings of several kinds (the Campion differ emits both
// structural and semantic findings).
type PipelineStage interface {
	// Check returns the first outstanding finding against the current
	// configurations (keyed by target), or nil when clean.
	Check(configs map[string]string) (*Finding, error)
}

// suiteEnumerator is the optional stage seam for batched verification: a
// stage that can list its independent checks against the current
// configurations, in scan order, so the driver can prefetch them all
// against the verification backend (suite.Backend) before the stage scan
// reads them back from the cache. Against a single REST endpoint the
// prefetch is one round-trip; against a sharded backend it is one
// round-trip per shard, issued in parallel.
type suiteEnumerator interface {
	SuiteChecks(configs map[string]string) []SuiteCheck
}

// Pipeline declares a VPP repair loop: an ordered stage list plus the
// loop's budgets and the knobs that differ between the two use cases.
type Pipeline struct {
	Stages []PipelineStage
	Human  HumanOracle
	// Cache, when set, is the verification cache the stages check through.
	// Each iteration the driver collects every enumerable stage's
	// outstanding checks and prefetches them against the cache's backend
	// seam — one batched round-trip per shard for REST backends, a no-op
	// for unbatched ones; the stage scan then reads the results from the
	// cache instead of issuing one call per check.
	Cache *CachedVerifier
	// MaxAttemptsPerFinding bounds automated prompts per distinct finding
	// before punting to the human.
	MaxAttemptsPerFinding int
	// MaxIterations bounds total verify/correct cycles.
	MaxIterations int
	// RawFeedback ablates the humanizer: correction prompts carry the raw
	// verifier output instead of the Table 1 formulas.
	RawFeedback bool
	// PrintAfterFix re-prompts for the full configuration after an
	// automated fix changed something (§3.1's print half-cycle, used by
	// translation).
	PrintAfterFix bool
	// WrapManual adapts a manual correction before it is sent (synthesis
	// prefixes "For router X:"); nil sends it verbatim.
	WrapManual func(f *Finding, manual string) string
	// saver, when set, snapshots the loop's progress at the top of every
	// iteration — before the iteration counter ticks — so a crash anywhere
	// inside the iteration resumes by redoing that whole iteration (the
	// verify/prompt cycle is deterministic, so the redo reproduces the
	// killed run byte for byte). An error from the saver aborts the loop;
	// the crash-injection seam (CheckpointOptions.AbortAfterSaves) uses
	// exactly that path to simulate a kill.
	saver func(iter int, attempts map[string]int) error
	// resume re-enters the loop mid-run: the iteration to continue from
	// and the attempt budgets consumed before the snapshot. The session
	// must have been restored to the matching snapshot separately.
	resume *pipelineState
}

// RunPipeline drives the generic verify → humanize → reprompt repair loop
// of Figure 3 over a set of configurations: find the first outstanding
// finding across the stages, convert it to a prompt, bill it against the
// finding's attempt budget, punt to the human oracle when the budget is
// exhausted, and stop when every stage is clean (verified=true), the
// human gives up, or the iteration budget runs out (verified=false).
// Both Translate and Synthesize compose their loops from this driver.
func RunPipeline(sess *session, configs map[string]string, p Pipeline) (verified bool, err error) {
	attempts := map[string]int{}
	start := 0
	if p.resume != nil {
		start = p.resume.Iteration
		if p.resume.Attempts != nil {
			attempts = p.resume.Attempts
		}
	}
	for iter := start; iter < p.MaxIterations; iter++ {
		if p.saver != nil {
			if err := p.saver(iter, attempts); err != nil {
				return false, err
			}
		}
		sess.iterations++
		if err := p.prefetch(configs); err != nil {
			return false, err
		}
		finding, err := firstFinding(p.Stages, configs)
		if err != nil {
			return false, err
		}
		if finding == nil {
			return true, nil
		}
		prompt := finding.Humanized
		if p.RawFeedback && finding.Raw != "" {
			prompt = finding.Raw
		}
		attempts[finding.Key]++
		kind := Automated
		if attempts[finding.Key] > p.MaxAttemptsPerFinding {
			// Punt: the slow manual loop takes over for this finding. The
			// oracle always reads the humanized description — a human can
			// interpret the verifier either way.
			manual, ok := p.Human.Correct(finding.Stage, finding.Humanized)
			if !ok {
				return false, nil
			}
			sess.punted = append(sess.punted, finding.Key)
			if p.WrapManual != nil {
				manual = p.WrapManual(finding, manual)
			}
			prompt = manual
			kind = Human
		}
		resp, changed, err := sess.send(kind, finding.Stage, finding.Target, prompt)
		if err != nil {
			return false, err
		}
		configs[finding.Target] = resp
		// The paper's cycle: after a fix attempt, ask the model to print
		// the whole configuration before re-verifying (§3.1). Count it as
		// an automated prompt when the automated fix changed something;
		// human prompts ask for the printout inline.
		if p.PrintAfterFix && changed && kind == Automated {
			resp, _, err = sess.send(Automated, StagePrint, finding.Target, llm.PrintRequest)
			if err != nil {
				return false, err
			}
			configs[finding.Target] = resp
		}
	}
	return false, nil
}

// prefetch warms the pipeline's verification cache with every enumerable
// stage's outstanding checks — dispatched through the backend seam as one
// batched call per iteration (one round-trip per shard) when the backend
// is batched, nothing otherwise.
func (p *Pipeline) prefetch(configs map[string]string) error {
	if p.Cache == nil || !p.Cache.Batched() {
		return nil
	}
	var checks []SuiteCheck
	for _, st := range p.Stages {
		if e, ok := st.(suiteEnumerator); ok {
			checks = append(checks, e.SuiteChecks(configs)...)
		}
	}
	return p.Cache.Prefetch(checks)
}

// firstFinding scans the stages in masking order and returns the first
// outstanding finding, or nil when every stage is clean.
func firstFinding(stages []PipelineStage, configs map[string]string) (*Finding, error) {
	for _, st := range stages {
		f, err := st.Check(configs)
		if err != nil {
			return nil, err
		}
		if f != nil {
			return f, nil
		}
	}
	return nil, nil
}
