package core

import (
	"fmt"

	"repro/internal/campion"
	"repro/internal/humanizer"
	"repro/internal/llm"
)

// TranslateOptions configures the translation pipeline (§3).
type TranslateOptions struct {
	Model    llm.Model
	Verifier Verifier
	Human    HumanOracle
	// MaxAttemptsPerFinding bounds automated prompts per distinct finding
	// before punting to the human (default 2).
	MaxAttemptsPerFinding int
	// MaxIterations bounds total verify/correct cycles (default 64).
	MaxIterations int
	// IIP entries prepended to the conversation (translation used none in
	// the paper; kept configurable for ablations).
	IIP []llm.IIP
	// RawFeedback ablates the humanizer: correction prompts carry the raw
	// verifier output instead of the Table 1 formulas. The paper's claim
	// is that actionable, humanized feedback is what makes the inner loop
	// work (§1); this option measures the difference.
	RawFeedback bool
}

func (o *TranslateOptions) fill() {
	if o.Verifier == nil {
		o.Verifier = LocalVerifier{}
	}
	if o.Human == nil {
		o.Human = PaperHuman{}
	}
	if o.MaxAttemptsPerFinding == 0 {
		o.MaxAttemptsPerFinding = 2
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 64
	}
}

// Translate runs the full VPP translation pipeline on a Cisco
// configuration: task prompt (human), then the fast inner loop — syntax
// verification with Batfish first, Campion semantic diffing second,
// returning to syntax whenever a semantic fix breaks the parse (§3.1) —
// punting to the human oracle when a finding survives the attempt budget.
func Translate(ciscoConfig string, opts TranslateOptions) (*Result, error) {
	opts.fill()
	if opts.Model == nil {
		return nil, fmt.Errorf("translate: options require a model")
	}
	sess := newSession(opts.Model, opts.IIP)
	const target = "translation"

	taskPrompt := "Translate the following Cisco configuration into an equivalent " +
		"Juniper configuration.\n\n" + ciscoConfig
	current, _, err := sess.send(Human, StageTask, target, taskPrompt)
	if err != nil {
		return nil, err
	}

	attempts := map[string]int{}
	verified := false
	for iter := 0; iter < opts.MaxIterations; iter++ {
		finding, stage, humanized, raw, err := nextTranslationFinding(opts.Verifier, ciscoConfig, current)
		if err != nil {
			return nil, err
		}
		if finding == "" {
			verified = true
			break
		}
		prompt := humanized
		if opts.RawFeedback {
			prompt = raw
		}
		attempts[finding]++
		kind := Automated
		if attempts[finding] > opts.MaxAttemptsPerFinding {
			// Punt: the slow manual loop takes over for this finding. The
			// oracle always reads the humanized description — a human can
			// interpret the verifier either way.
			manual, ok := opts.Human.Correct(stage, humanized)
			if !ok {
				result := &Result{Verified: false, Transcript: sess.transcript,
					Configs: map[string]string{target: current}, PuntedFindings: sess.punted}
				return result, nil
			}
			sess.punted = append(sess.punted, finding)
			prompt = manual
			kind = Human
		}
		resp, changed, err := sess.send(kind, stage, target, prompt)
		if err != nil {
			return nil, err
		}
		current = resp
		// The paper's cycle: after a fix attempt, ask the model to print
		// the whole configuration before re-verifying (§3.1). Count it as
		// an automated prompt when the automated fix changed something;
		// human prompts ask for the printout inline.
		if changed && kind == Automated {
			resp, _, err = sess.send(Automated, StagePrint, target, llm.PrintRequest)
			if err != nil {
				return nil, err
			}
			current = resp
		}
	}
	return &Result{
		Verified:       verified,
		Transcript:     sess.transcript,
		Configs:        map[string]string{target: current},
		PuntedFindings: sess.punted,
	}, nil
}

// nextTranslationFinding returns the first outstanding finding: its stable
// key, stage, humanized prompt, and the raw verifier output — or "" when
// the translation verifies. Syntax errors always come first: "syntax
// errors and structural mismatches have to be handled earlier since they
// can mask attribute differences and policy behavior differences" (§3.1).
func nextTranslationFinding(v Verifier, original, translation string) (string, Stage, string, string, error) {
	warns, err := v.CheckSyntax(translation)
	if err != nil {
		return "", "", "", "", err
	}
	if len(warns) > 0 {
		w := warns[0]
		return "syntax:" + w.Text + ":" + w.Reason, StageSyntax, humanizer.Syntax(w), w.String(), nil
	}
	findings, err := v.DiffTranslation(original, translation)
	if err != nil {
		return "", "", "", "", err
	}
	if len(findings) > 0 {
		f := findings[0]
		stage := StageStructure
		if f.Kind == campion.PolicyBehaviorDifference {
			stage = StageSemantic
		}
		return "campion:" + findingKey(f), stage, humanizer.Campion(f), f.String(), nil
	}
	return "", "", "", "", nil
}

// findingKey builds a stable identity for a finding so the attempt budget
// tracks "the same error" across iterations. Policy findings include the
// witness prefix: two different behaviour errors on the same attachment
// (e.g. the §3.2 redistribution and prefix-length errors, both on the
// to_provider export) must not share a budget.
func findingKey(f campion.Finding) string {
	switch f.Kind {
	case campion.PolicyBehaviorDifference:
		return fmt.Sprintf("%s:%s:%s:%s", f.Kind, f.Direction, f.Neighbor, f.Witness.Prefix)
	case campion.AttributeDifference:
		return fmt.Sprintf("%s:%s:%s", f.Kind, f.Component, f.Attribute)
	default:
		return fmt.Sprintf("%s:%s", f.Kind, f.Component)
	}
}
