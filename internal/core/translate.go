package core

import (
	"fmt"
	"time"

	"repro/internal/campion"
	"repro/internal/durable"
	"repro/internal/humanizer"
	"repro/internal/llm"
	"repro/internal/obs"
)

// TranslateOptions configures the translation pipeline (§3).
type TranslateOptions struct {
	Model    llm.Model
	Verifier Verifier
	Human    HumanOracle
	// MaxAttemptsPerFinding bounds automated prompts per distinct finding
	// before punting to the human (default 2).
	MaxAttemptsPerFinding int
	// MaxIterations bounds total verify/correct cycles (default 64).
	MaxIterations int
	// IIP entries prepended to the conversation (translation used none in
	// the paper; kept configurable for ablations).
	IIP []llm.IIP
	// RawFeedback ablates the humanizer: correction prompts carry the raw
	// verifier output instead of the Table 1 formulas. The paper's claim
	// is that actionable, humanized feedback is what makes the inner loop
	// work (§1); this option measures the difference.
	RawFeedback bool
	// DisableCache turns off the incremental verification cache, restoring
	// the seed behaviour of re-parsing and re-verifying the translation on
	// every iteration.
	DisableCache bool
	// DurableCache mounts a disk-backed tier under the verification cache
	// (see CachedVerifier.SetDurable). Ignored under DisableCache.
	DurableCache *durable.Cache
	// Checkpoint periodically snapshots repair-loop progress to an
	// atomically-written file so a killed run can resume (see
	// CheckpointOptions). Nil disables checkpointing.
	Checkpoint *CheckpointOptions
	// Metrics and Trace mirror SynthOptions: an optional registry the
	// run's instruments register into and an optional JSONL trace sink.
	// Telemetry never changes a result.
	Metrics *obs.Registry
	Trace   *obs.Tracer
	// RunLabel names this run's trace spans; "translate" when empty.
	RunLabel string
}

func (o *TranslateOptions) fill() {
	if o.Verifier == nil {
		o.Verifier = LocalVerifier{}
	}
	if o.Human == nil {
		o.Human = PaperHuman{}
	}
	if o.MaxAttemptsPerFinding == 0 {
		o.MaxAttemptsPerFinding = 2
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 64
	}
}

// translationTarget is the single configuration key the translation
// pipeline repairs.
const translationTarget = "translation"

// Translate runs the full VPP translation pipeline on a Cisco
// configuration: task prompt (human), then the fast inner loop — syntax
// verification with Batfish first, Campion semantic diffing second,
// returning to syntax whenever a semantic fix breaks the parse (§3.1) —
// punting to the human oracle when a finding survives the attempt budget.
// The loop itself is the shared RunPipeline driver composed from two
// declarative stages.
func Translate(ciscoConfig string, opts TranslateOptions) (*Result, error) {
	opts.fill()
	if opts.Model == nil {
		return nil, fmt.Errorf("translate: options require a model")
	}
	if opts.RunLabel == "" {
		opts.RunLabel = "translate"
	}
	runStart := time.Now()
	ck, err := newCheckpointer(opts.Checkpoint)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		ck.tracer, ck.runLabel = opts.Trace, opts.RunLabel
	}
	resumed, err := ck.load()
	if err != nil {
		return nil, err
	}
	var cache *CachedVerifier
	if !opts.DisableCache {
		cache = NewCachedVerifier(opts.Verifier)
		cache.SetDurable(opts.DurableCache)
		cache.SetObs(opts.Metrics, opts.Trace, opts.RunLabel)
		opts.Verifier = cache
	} else if opts.Metrics != nil && opts.DurableCache != nil {
		opts.DurableCache.SetMetrics(opts.Metrics)
	}
	sess := newSession(opts.Model, opts.IIP)
	sess.tracer, sess.runLabel = opts.Trace, opts.RunLabel

	var configs map[string]string
	var ps *pipelineState
	if resumed != nil {
		sessState, pstate, cfgs, cursor, rerr := resumeSequential(resumed, phaseTranslate)
		if rerr != nil {
			return nil, rerr
		}
		if err := restoreSession(sess, sessState); err != nil {
			return nil, err
		}
		if err := checkCursor(sess.model, cursor); err != nil {
			return nil, err
		}
		configs = cfgs
		ps = pstate
	} else {
		taskPrompt := "Translate the following Cisco configuration into an equivalent " +
			"Juniper configuration.\n\n" + ciscoConfig
		current, _, serr := sess.send(Human, StageTask, translationTarget, taskPrompt)
		if serr != nil {
			return nil, serr
		}
		configs = map[string]string{translationTarget: current}
	}
	p := Pipeline{
		Stages: []PipelineStage{
			translationSyntaxStage{v: opts.Verifier},
			translationDiffStage{v: opts.Verifier, original: ciscoConfig},
		},
		Human:                 opts.Human,
		MaxAttemptsPerFinding: opts.MaxAttemptsPerFinding,
		MaxIterations:         opts.MaxIterations,
		RawFeedback:           opts.RawFeedback,
		PrintAfterFix:         true,
		Cache:                 cache,
	}
	p.saver = ck.sequentialSaver(phaseTranslate, sess, configs)
	p.resume = ps
	verified, err := RunPipeline(sess, configs, p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Verified:       verified,
		Transcript:     sess.transcript,
		Configs:        configs,
		PuntedFindings: sess.punted,
		Iterations:     sess.iterations,
	}
	if cache != nil {
		stats := cache.MergedStats()
		res.CacheStats = &stats
	}
	opts.Trace.Span(runStart, obs.Event{Stage: obs.StageRun, Run: opts.RunLabel,
		Iter: res.Iterations})
	return res, nil
}

// translationSyntaxStage checks the translation with the Batfish syntax
// verifier. It runs first: "syntax errors and structural mismatches have
// to be handled earlier since they can mask attribute differences and
// policy behavior differences" (§3.1).
type translationSyntaxStage struct{ v Verifier }

// Check implements PipelineStage.
func (s translationSyntaxStage) Check(configs map[string]string) (*Finding, error) {
	warns, err := s.v.CheckSyntax(configs[translationTarget])
	if err != nil {
		return nil, err
	}
	if len(warns) == 0 {
		return nil, nil
	}
	w := warns[0]
	return &Finding{
		Key:       "syntax:" + w.Text + ":" + w.Reason,
		Target:    translationTarget,
		Stage:     StageSyntax,
		Humanized: humanizer.Syntax(w),
		Raw:       w.String(),
	}, nil
}

// SuiteChecks implements suiteEnumerator.
func (s translationSyntaxStage) SuiteChecks(configs map[string]string) []SuiteCheck {
	return []SuiteCheck{{Kind: SuiteSyntax, Config: configs[translationTarget]}}
}

// translationDiffStage compares the translation against the original with
// the Campion differ; structural and attribute findings carry the
// structure label, policy-behavior findings the semantic label.
type translationDiffStage struct {
	v        Verifier
	original string
}

// Check implements PipelineStage.
func (s translationDiffStage) Check(configs map[string]string) (*Finding, error) {
	findings, err := s.v.DiffTranslation(s.original, configs[translationTarget])
	if err != nil {
		return nil, err
	}
	if len(findings) == 0 {
		return nil, nil
	}
	f := findings[0]
	stage := StageStructure
	if f.Kind == campion.PolicyBehaviorDifference {
		stage = StageSemantic
	}
	return &Finding{
		Key:       "campion:" + findingKey(f),
		Target:    translationTarget,
		Stage:     stage,
		Humanized: humanizer.Campion(f),
		Raw:       f.String(),
	}, nil
}

// SuiteChecks implements suiteEnumerator.
func (s translationDiffStage) SuiteChecks(configs map[string]string) []SuiteCheck {
	return []SuiteCheck{{Kind: SuiteDiff, Original: s.original,
		Config: configs[translationTarget]}}
}

// findingKey builds a stable identity for a finding so the attempt budget
// tracks "the same error" across iterations. Policy findings include the
// witness prefix: two different behaviour errors on the same attachment
// (e.g. the §3.2 redistribution and prefix-length errors, both on the
// to_provider export) must not share a budget.
func findingKey(f campion.Finding) string {
	switch f.Kind {
	case campion.PolicyBehaviorDifference:
		return fmt.Sprintf("%s:%s:%s:%s", f.Kind, f.Direction, f.Neighbor, f.Witness.Prefix)
	case campion.AttributeDifference:
		return fmt.Sprintf("%s:%s:%s", f.Kind, f.Component, f.Attribute)
	default:
		return fmt.Sprintf("%s:%s", f.Kind, f.Component)
	}
}
