// Package exampledata bundles the Cisco configuration used by the
// translation use case. It mirrors the Batfish example configuration the
// paper translated (§3.2): "short enough to fit within GPT-4 text input
// limits, but used non-trivial features including BGP, OSPF, prefix lists,
// and route maps" — including the "ge 24" prefix-list entry and OSPF
// redistribution that drive the two hardest error classes.
package exampledata

// CiscoExample is the original configuration for the Cisco→Juniper
// translation experiments (E1–E3).
const CiscoExample = `hostname border1
!
interface Loopback0
 ip address 1.1.1.1 255.255.255.255
!
interface GigabitEthernet0/0
 description LAN
 ip address 1.2.3.1 255.255.255.0
 ip ospf cost 5
!
interface GigabitEthernet0/1
 description PROVIDER-UPLINK
 ip address 2.3.4.6 255.255.255.252
!
router ospf 1
 router-id 1.1.1.1
 passive-interface Loopback0
 network 1.1.1.1 0.0.0.0 area 0
 network 1.2.3.0 0.0.0.255 area 0
!
router bgp 65000
 bgp router-id 1.1.1.1
 network 1.2.3.0 mask 255.255.255.0
 redistribute ospf route-map ospf_to_bgp
 neighbor 2.3.4.5 remote-as 65001
 neighbor 2.3.4.5 description PROVIDER
 neighbor 2.3.4.5 route-map from_provider in
 neighbor 2.3.4.5 route-map to_provider out
!
ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24
ip prefix-list default-route seq 5 permit 0.0.0.0/0
ip prefix-list lan-summary seq 5 permit 1.1.1.1/32
!
ip community-list standard PROVIDER-ROUTES permit 65001:100
!
route-map to_provider permit 10
 match ip address prefix-list our-networks
 set metric 50
!
route-map from_provider permit 10
 match ip address prefix-list default-route
 set local-preference 200
route-map from_provider permit 20
 match community PROVIDER-ROUTES
 set community 65000:300 additive
route-map from_provider deny 100
!
route-map ospf_to_bgp permit 10
 match ip address prefix-list lan-summary
 set metric 10
!
`
