package llm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cisco"
	"repro/internal/netcfg"
)

// This file is the synthesizer's stanza-level incremental renderer: the
// default implementation behind render(). renderFull clones the whole
// golden device, replays every live error class against the clone, and
// prints the result from scratch — O(device) per response even when a
// correction cleared one error on one route map. renderIncremental
// instead renders each printed section (hostname, interfaces, OSPF, BGP,
// prefix lists, community lists, static routes, each route map) from a
// per-section signature that captures exactly the error state the section
// depends on, and caches the rendered text per (section, signature) on
// the routerState. A correction that clears one class re-prints only the
// sections whose signature changed; everything else is concatenated from
// cache. The transforms below mirror renderFull's mutation order —
// strip-additive, then the AND/OR rebuild, then deny-all, then the
// literal-match rewrite — and the section order mirrors cisco.Print, so
// the two paths are byte-identical (pinned by TestRenderIncrementalMatchesFull
// and the end-to-end transcript equivalence suites).

// renderIncremental prints the router's config with its live errors
// applied, re-rendering only the sections whose inputs changed.
func (s *Synthesizer) renderIncremental(st *routerState) string {
	if st.sections == nil {
		st.sections = map[string]string{}
		st.sectionRefs = map[string][]string{}
	}
	g := st.golden
	var b strings.Builder

	b.WriteString(st.section("hostname", "", func() string {
		return cisco.PrintHostname(g.Hostname)
	}))

	wrongIP := st.active[SErrTopoWrongIP] && len(g.Interfaces) > 0
	b.WriteString(st.section("interfaces", sigBool(wrongIP), func() string {
		var sb strings.Builder
		for i, ifc := range g.Interfaces {
			if i == 0 && wrongIP {
				dup := *ifc
				dup.Address.Addr++ // off-by-one address
				sb.WriteString(cisco.PrintInterfaceStanza(&dup))
				continue
			}
			sb.WriteString(cisco.PrintInterfaceStanza(ifc))
		}
		return sb.String()
	}))

	if g.OSPF != nil {
		b.WriteString(st.section("ospf", "", func() string {
			return cisco.PrintOSPFStanza(g.OSPF)
		}))
	}

	if g.BGP != nil {
		missingNet := st.active[SErrTopoMissingNetwork] && len(g.BGP.Networks) > 0
		b.WriteString(st.section("bgp", sigBool(missingNet)+sigBool(st.interfere), func() string {
			bgp := cloneBGP(g.BGP)
			if missingNet {
				bgp.Networks = bgp.Networks[:len(bgp.Networks)-1]
			}
			if st.interfere {
				for _, nb := range bgp.Neighbors {
					if nb.ExportPolicy != "" {
						nb.ExportPolicy = ""
						break
					}
				}
			}
			return cisco.PrintBGPStanza(bgp)
		}))
	}

	b.WriteString(st.section("prefix-lists", "", func() string {
		var sb strings.Builder
		for _, name := range g.PrefixListNames() {
			sb.WriteString(cisco.PrintPrefixListStanza(g.PrefixLists[name]))
		}
		return sb.String()
	}))

	// Route maps render before the community-list section is assembled:
	// the literal-match rewrite decides which lists survive, so the list
	// section's input is the set of lists the rendered policies still
	// reference. The rendered text is buffered and emitted after the
	// lists and static routes, in cisco.Print's order.
	literalActive := st.active[SErrMatchCommunityLiteral]
	literalPols := map[string]bool{}
	if !literalActive {
		for _, peer := range st.scopedPeers(SErrMatchCommunityLiteral) {
			literalPols[st.egressPols[peer]] = true
		}
	}
	additivePols := map[string]bool{}
	for _, peer := range st.scopedPeers(SErrMissingAdditive) {
		additivePols[st.ingressPols[peer]] = true
	}
	andorPols := map[string]bool{}
	for _, peer := range st.scopedPeers(SErrAndOr) {
		andorPols[st.egressPols[peer]] = true
	}
	denyPols := map[string]bool{}
	for _, peer := range st.scopedPeers(SErrEgressDenyAll) {
		denyPols[st.egressPols[peer]] = true
	}

	var maps strings.Builder
	referenced := map[string]bool{}
	for _, name := range g.PolicyNames() {
		_, isEgress := st.egress[name]
		additive := st.active[SErrMissingAdditive] || additivePols[name]
		andor := (st.active[SErrAndOr] && isEgress) || andorPols[name]
		deny := (st.active[SErrEgressDenyAll] && isEgress) || denyPols[name]
		literal := literalActive || literalPols[name]
		sig := sigBool(additive) + sigBool(andor) + sigBool(deny) + sigBool(literal)
		text, refs := st.sectionWithRefs("route-map:"+name, sig, func() (string, []string) {
			var pol *netcfg.RoutePolicy
			if andor {
				pol = egressPolicyClauses(name, st.egress[name], true)
			} else {
				pol = g.RoutePolicies[name].Clone()
				if additive {
					stripAdditive(pol)
				}
			}
			if deny {
				denyAllEgress(pol)
			}
			if literal {
				// The rewrite resolves list contents against the golden
				// device: at this point of renderFull's sequence the
				// clone's lists are still exactly the golden ones.
				rewriteLiteralMatches(g, pol)
			}
			return cisco.PrintRouteMapStanza(pol), referencedLists(pol)
		})
		maps.WriteString(text)
		for _, r := range refs {
			referenced[r] = true
		}
	}

	b.WriteString(st.section("community-lists", communityListsSig(literalActive, literalPols, referenced), func() string {
		if literalActive {
			return "" // every list definition is dropped with the rewrite
		}
		var sb strings.Builder
		for _, name := range g.CommunityListNames() {
			if len(literalPols) > 0 && !referenced[name] {
				continue // no surviving policy references it any more
			}
			sb.WriteString(cisco.PrintCommunityListStanza(g.CommunityLists[name]))
		}
		return sb.String()
	}))

	b.WriteString(st.section("statics", "", func() string {
		return cisco.PrintStaticRoutes(g.StaticRoutes)
	}))

	b.WriteString(maps.String())

	text := b.String()
	if st.active[SErrCommunityListRegex] {
		text += fmt.Sprintf("ip community-list standard COMM_LIST_%s_OUT permit .+\n", st.name)
	}
	if st.active[SErrNeighborOutsideBGP] && g.BGP != nil && len(g.BGP.Neighbors) > 0 {
		// The transforms never touch import policies, so the golden
		// neighbor carries the same attachment the full render re-emits.
		nb := g.BGP.Neighbors[0]
		if nb.ImportPolicy != "" {
			text += fmt.Sprintf("neighbor %s route-map %s in\n",
				netcfg.FormatIP(nb.Addr), nb.ImportPolicy)
		}
	}
	if st.active[SErrCLIKeywords] {
		text = "configure terminal\n" + text + "exit\nwrite\nend\n"
	}
	return text
}

// section returns the cached text for a section under the given
// signature, rendering and caching it on first use.
func (st *routerState) section(name, sig string, render func() string) string {
	key := name + "\x00" + sig
	if text, ok := st.sections[key]; ok {
		return text
	}
	text := render()
	st.sections[key] = text
	return text
}

// sectionWithRefs is section for route maps, which additionally record
// the community lists their rendered form still references.
func (st *routerState) sectionWithRefs(name, sig string, render func() (string, []string)) (string, []string) {
	key := name + "\x00" + sig
	if text, ok := st.sections[key]; ok {
		return text, st.sectionRefs[key]
	}
	text, refs := render()
	st.sections[key] = text
	st.sectionRefs[key] = refs
	return text, refs
}

// communityListsSig is the community-list section's signature: "A" when
// the router-wide literal rewrite drops every list, the sorted surviving
// set when scoped rewrites drop some, "" when no rewrite is live.
func communityListsSig(literalActive bool, literalPols map[string]bool, referenced map[string]bool) string {
	if literalActive {
		return "A"
	}
	if len(literalPols) == 0 {
		return ""
	}
	names := make([]string, 0, len(referenced))
	for n := range referenced {
		names = append(names, n)
	}
	sort.Strings(names)
	return "S:" + strings.Join(names, ",")
}

// referencedLists returns the community lists a rendered policy still
// matches by name — the literal rewrite's survivors computation.
func referencedLists(pol *netcfg.RoutePolicy) []string {
	var out []string
	for _, cl := range pol.Clauses {
		for _, m := range cl.Matches {
			if mcl, ok := m.(netcfg.MatchCommunityList); ok {
				out = append(out, mcl.List)
			}
		}
	}
	return out
}

func sigBool(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// cloneBGP deep-copies one BGP process — the only piece of the golden
// device the BGP section's transforms mutate.
func cloneBGP(in *netcfg.BGP) *netcfg.BGP {
	out := *in
	out.Networks = append([]netcfg.Prefix(nil), in.Networks...)
	out.Redistribute = append([]netcfg.Redistribution(nil), in.Redistribute...)
	out.Neighbors = nil
	for _, n := range in.Neighbors {
		dup := *n
		out.Neighbors = append(out.Neighbors, &dup)
	}
	return &out
}
