package llm

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cisco"
	"repro/internal/netcfg"
	"repro/internal/obs"
)

// SynthError enumerates the synthesis error classes of §4.
type SynthError int

// Synthesis error classes.
const (
	// SErrCLIKeywords: CLI/session keywords in the config (suppressed by
	// the "no-cli-keywords" and "cfg-files-only" IIPs).
	SErrCLIKeywords SynthError = iota
	// SErrMatchCommunityLiteral: "match community 100:1" instead of a
	// community list (suppressed by the "match-community-list" IIP).
	SErrMatchCommunityLiteral
	// SErrMissingAdditive: "set community" without 'additive' (suppressed
	// by the "additive-communities" IIP).
	SErrMissingAdditive
	// SErrCommunityListRegex: a community-list entry holding a regex —
	// Table 3's syntax example.
	SErrCommunityListRegex
	// SErrTopoWrongIP: an interface configured with the wrong address.
	SErrTopoWrongIP
	// SErrTopoMissingNetwork: a required network statement omitted.
	SErrTopoMissingNetwork
	// SErrNeighborOutsideBGP: neighbor/network commands emitted outside
	// the "router bgp" block; Batfish flags it but its output is "not
	// informative enough for GPT-4 to be able to fix the issue" (§4.2).
	SErrNeighborOutsideBGP
	// SErrAndOr: the egress filter puts every community match in a single
	// deny stanza (AND semantics) instead of one stanza per community (OR)
	// — the paper's second human-intervention case.
	SErrAndOr
	// SErrEgressDenyAll: the egress filter's final catch-all clause denies
	// instead of permits, so clean customer routes are dropped. Neither
	// the rectification formulas nor the paper's operator prompts
	// (PaperHuman) have a recipe for it — it models the give-up regime
	// §4.2 reports, where the loop exhausts its attempts and the human
	// declines. The fuzz campaign uses it to seed deliberate oracle
	// violations: a plan carrying it can never verify.
	SErrEgressDenyAll

	numSynthErrors
)

// String implements fmt.Stringer.
func (e SynthError) String() string {
	switch e {
	case SErrCLIKeywords:
		return "cli-keywords"
	case SErrMatchCommunityLiteral:
		return "match-community-literal"
	case SErrMissingAdditive:
		return "missing-additive"
	case SErrCommunityListRegex:
		return "community-list-regex"
	case SErrTopoWrongIP:
		return "topology-wrong-ip"
	case SErrTopoMissingNetwork:
		return "topology-missing-network"
	case SErrNeighborOutsideBGP:
		return "neighbor-outside-bgp"
	case SErrAndOr:
		return "and-or-semantics"
	case SErrEgressDenyAll:
		return "egress-deny-all"
	default:
		return fmt.Sprintf("synth-error(%d)", int(e))
	}
}

// SynthConfig controls the simulated GPT-4 for the local-synthesis task.
type SynthConfig struct {
	Seed int64
	// Errors assigns injected error classes per router name. Nil selects
	// the paper's default scenario: the AND/OR error on R1, a wrong
	// interface address on R4, and a community-list regex on R6 (clamped
	// to the routers that exist).
	Errors map[string][]SynthError
	// Plan assigns injected error classes per attachment site instead of
	// per router name — the seam the fuzz campaign engine drives. A
	// non-nil plan (even an empty one) replaces both Errors and the
	// default scenario: attachment-scoped classes corrupt only the
	// addressed site's ingress tag or egress filter, router-scoped
	// classes fire once per addressed router. Sites whose policies the
	// prompt never asked for are inert, so one plan replays against any
	// topology that contains its sites.
	Plan []SiteErrors
	// RespectIIP: when true (default behaviour of DefaultSynthConfig),
	// the IIP-suppressed classes are only injected if the corresponding
	// IIP entry is absent from the conversation.
	RespectIIP bool
	// FullRender disables the stanza-level incremental renderer: every
	// response re-prints the whole configuration from the transformed
	// device. The two paths are byte-identical (pinned by tests); the flag
	// exists as the baseline for the equivalence suite and benchmarks.
	FullRender bool
}

// DefaultSynthConfig is the paper's deterministic no-transit scenario.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Seed: 1, RespectIIP: true}
}

// defaultErrors returns the default per-router injection plan. The three
// IIP-suppressed classes are *attempted* here and filtered out when the
// corresponding IIP entry is in the conversation — which is how the IIP
// ablation (E8) measures the database's effect. The classes that need a
// configuration feature to exist (the AND/OR error needs an egress
// filter) silently skip routers without it, so the same plan serves every
// topology scenario: on the star only R1 has egress filters and gets the
// AND/OR error, while on attachment-point topologies R3's own egress
// filter triggers it there.
func defaultErrors(router string) []SynthError {
	switch router {
	case "R1":
		return []SynthError{SErrAndOr, SErrMatchCommunityLiteral, SErrMissingAdditive}
	case "R2":
		return []SynthError{SErrCLIKeywords}
	case "R3":
		return []SynthError{SErrAndOr}
	case "R4":
		return []SynthError{SErrTopoWrongIP}
	case "R5":
		return []SynthError{SErrCLIKeywords}
	case "R6":
		return []SynthError{SErrCommunityListRegex}
	default:
		return nil
	}
}

// routerState is the model's memory of one router it has generated.
type routerState struct {
	name   string
	golden *netcfg.Device
	// egress maps policy name -> communities to filter (for AND/OR fix).
	egress map[string][]netcfg.Community
	active map[SynthError]bool
	// scoped tracks attachment-scoped error instances injected by a
	// SynthConfig.Plan: class -> the peers whose policies it fires on.
	// Router-wide activation (active) and scoped instances compose; a
	// correction that names a policy clears only that peer's instance.
	scoped map[SynthError]map[string]bool
	// ingressPols / egressPols map an attachment's peer name to the
	// route-map the prompt assigned it, parsed from the formulaic policy
	// names (ADD_COMM_<peer>, FILTER_COMM_OUT_<peer>).
	ingressPols map[string]string
	egressPols  map[string]string
	// interfere: an incremental change accidentally dropped an existing
	// neighbor attachment (the §6 non-interference hazard).
	interfere bool
	// sections / sectionRefs back the incremental renderer: rendered text
	// per section keyed by "section\x00signature", plus the community
	// lists each rendered route map still references (the input to the
	// community-list section). Both are derived purely from golden + the
	// error state; any golden mutation must reset them (see addPolicy).
	sections    map[string]string
	sectionRefs map[string][]string
}

// clearError reacts to a correction for an error class: when the prompt
// names a policy belonging to one scoped instance, only that peer's
// instance is fixed; otherwise the model fixes every occurrence on the
// router — the scoped instances and any router-wide activation alike
// (a generic "use separate stanzas" prompt plausibly repairs all the
// router's filters at once).
func (st *routerState) clearError(e SynthError, content string) {
	pols := st.ingressPols
	if e.ScopeDirection() == "out" {
		pols = st.egressPols
	}
	// The longest matching policy name wins: FILTER_COMM_OUT_R2 is a
	// prefix of FILTER_COMM_OUT_R20, so a substring hit alone could
	// misattribute the correction on large topologies.
	best := ""
	for _, peer := range st.scopedPeers(e) {
		if strings.Contains(content, pols[peer]) && len(pols[peer]) > len(pols[best]) {
			best = peer
		}
	}
	if best != "" {
		delete(st.scoped[e], best)
		return
	}
	delete(st.active, e)
	delete(st.scoped, e)
}

// scopedPeers returns the peers a class fires on, sorted for
// deterministic rendering.
func (st *routerState) scopedPeers(e SynthError) []string {
	if len(st.scoped[e]) == 0 {
		return nil
	}
	peers := make([]string, 0, len(st.scoped[e]))
	for p := range st.scoped[e] {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	return peers
}

// Synthesizer is the simulated GPT-4 for the no-transit use case. It
// parses the modularizer's formulaic prompts back into structure (a
// deliberately "savant" capability), generates a per-router Cisco config,
// and injects the configured errors.
type Synthesizer struct {
	cfg     SynthConfig
	rng     *rand.Rand
	routers map[string]*routerState
	// policyOwner maps route-map names to the router that defines them,
	// so correction prompts that only mention a policy can be routed.
	policyOwner map[string]string
	last        string // most recently (re)generated router
	// draws counts rng draws (see RNGCursor). The synthesizer's current
	// error model is fully deterministic — the plan decides everything —
	// so the cursor stays 0; it exists so checkpoint/resume can verify
	// replayed stochastic state the day a probabilistic knob is added.
	draws int64
	// tracer is the optional trace sink (nil = off), adopted through
	// SetObs — the engine forwards its own sink when the run is traced.
	// Rendering is deterministic; the tracer only reports where its time
	// went (stanza-incremental vs full re-prints).
	tracer *obs.Tracer
}

// SetObs adopts the run's trace sink, arming per-render spans. The
// engine calls it through an interface assertion when SynthOptions.Trace
// is set; outputs are byte-identical with or without it.
func (s *Synthesizer) SetObs(reg *obs.Registry, tr *obs.Tracer) { s.tracer = tr }

// NewSynthesizer returns a fresh simulated model.
func NewSynthesizer(cfg SynthConfig) *Synthesizer {
	return &Synthesizer{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		routers:     map[string]*routerState{},
		policyOwner: map[string]string{},
	}
}

// Fork implements Forker: the synthesizer's state — generated routers,
// policy ownership, the last-addressed router — is keyed per router, and
// its error model is a pure function of the configuration and the
// addressed site, so a fresh session with the same configuration behaves
// byte-identically on any single router's conversation. The parallel
// repair loop forks one session per router, which removes the shared-model
// mutex and makes the per-worker "most recently addressed router" state
// trivially private.
func (s *Synthesizer) Fork() Model { return NewSynthesizer(s.cfg) }

// RNGCursor reports how many random draws the model has made — the
// stochastic position a checkpoint records and a resume's replay must land
// back on. The engine compares cursors after reconstructing a model from a
// checkpointed conversation; a mismatch means the replayed model made
// different stochastic choices than the run being resumed.
func (s *Synthesizer) RNGCursor() int64 { return s.draws }

// ActiveErrors lists the live error classes for a router — router-wide
// activations and attachment-scoped instances alike — in class order.
// The enumeration is deterministic (sorted by class), which the fuzz
// shrinker's replay comparisons depend on.
func (s *Synthesizer) ActiveErrors(router string) []SynthError {
	st := s.routers[router]
	if st == nil {
		return nil
	}
	var out []SynthError
	for e := SynthError(0); e < numSynthErrors; e++ {
		if st.active[e] || len(st.scoped[e]) > 0 {
			out = append(out, e)
		}
	}
	return out
}

var (
	reGenerate  = regexp.MustCompile(`Generate the Cisco IOS configuration file for router (\w+)\.`)
	reASRouter  = regexp.MustCompile(`Router (\w+) has AS number (\d+) and router ID ([\d.]+)\.`)
	reIfc       = regexp.MustCompile(`Router \w+ has interface (\S+) with IP address ([\d./]+)\.`)
	reNeighbor  = regexp.MustCompile(`Router \w+ is connected to (?:router|external peer) (\S+) at IP address ([\d.]+) in AS (\d+)\.`)
	reNetworks  = regexp.MustCompile(`Router \w+ announces the networks: (.+)\.`)
	reIngress   = regexp.MustCompile(`At the ingress from \S+ \(neighbor ([\d.]+)\), apply route-map (\S+) that adds the community (\S+)`)
	reEgress    = regexp.MustCompile(`At the egress to \S+ \(neighbor ([\d.]+)\), apply route-map (\S+) that denies any route carrying any of the communities ([\d: ]+) and permits`)
	reRouterIn  = regexp.MustCompile(`router (R\d+)`)
	reAddPolicy = regexp.MustCompile(`Add to router R1 a new route-map (\S+) that adds the community (\S+) additively to every route received from the CUSTOMER neighbor ([\d.]+)`)
)

// Complete implements Model.
func (s *Synthesizer) Complete(messages []Message) (string, error) {
	last := LastMessage(messages)
	content := last.Content
	if m := reGenerate.FindStringSubmatch(content); m != nil {
		return s.generate(messages, content, m[1])
	}
	if strings.Contains(content, "no-transit") && len(s.routers) == 0 {
		// The human kickoff prompt (§4.1): acknowledge and wait for the
		// modularizer's per-router prompts.
		return "Understood. Send each router's details and I will generate its " +
			"Cisco IOS configuration file.", nil
	}
	if m := reAddPolicy.FindStringSubmatch(content); m != nil {
		return s.addPolicy(m[1], m[2], m[3])
	}
	if IsPrintRequest(content) {
		if st := s.routers[s.last]; st != nil {
			return s.render(st), nil
		}
		return "", fmt.Errorf("print request before any router was generated")
	}
	return s.correct(content)
}

// generate builds the golden device for a router from the prompt and
// injects the configured errors.
func (s *Synthesizer) generate(messages []Message, content, router string) (string, error) {
	st := &routerState{
		name:        router,
		active:      map[SynthError]bool{},
		scoped:      map[SynthError]map[string]bool{},
		egress:      map[string][]netcfg.Community{},
		ingressPols: map[string]string{},
		egressPols:  map[string]string{},
	}
	dev := netcfg.NewDevice(router, netcfg.VendorCisco)

	if m := reASRouter.FindStringSubmatch(content); m != nil {
		asn, _ := strconv.ParseUint(m[2], 10, 32)
		b := dev.EnsureBGP(uint32(asn))
		if id, err := netcfg.ParseIP(m[3]); err == nil {
			b.RouterID = id
		}
	} else {
		return "", fmt.Errorf("prompt for %s lacks the AS/router-ID sentence", router)
	}
	for i, m := range reIfc.FindAllStringSubmatch(content, -1) {
		addr, length, err := splitCIDR(m[2])
		if err != nil {
			return "", fmt.Errorf("prompt interface %q: %v", m[2], err)
		}
		ifc := dev.EnsureInterface(m[1])
		ifc.Address = netcfg.Prefix{Addr: addr, Len: length}
		ifc.HasAddress = true
		_ = i
	}
	for _, m := range reNeighbor.FindAllStringSubmatch(content, -1) {
		ip, err := netcfg.ParseIP(m[2])
		if err != nil {
			return "", fmt.Errorf("prompt neighbor %q: %v", m[2], err)
		}
		asn, _ := strconv.ParseUint(m[3], 10, 32)
		nb := dev.BGP.EnsureNeighbor(ip)
		nb.RemoteAS = uint32(asn)
		nb.Description = m[1]
	}
	if m := reNetworks.FindStringSubmatch(content); m != nil {
		for _, p := range strings.Split(m[1], ", ") {
			pfx, err := netcfg.ParsePrefix(strings.TrimSpace(p))
			if err != nil {
				return "", fmt.Errorf("prompt network %q: %v", p, err)
			}
			dev.BGP.Networks = append(dev.BGP.Networks, pfx)
		}
	}

	// Policy instructions (hub only).
	for _, m := range reIngress.FindAllStringSubmatch(content, -1) {
		ip, _ := netcfg.ParseIP(m[1])
		comm, err := netcfg.ParseCommunity(m[3])
		if err != nil {
			return "", fmt.Errorf("prompt ingress community %q: %v", m[3], err)
		}
		pol := &netcfg.RoutePolicy{Name: m[2], Clauses: []*netcfg.PolicyClause{{
			Seq: 10, Action: netcfg.Permit,
			Sets: []netcfg.SetAction{netcfg.SetCommunity{
				Communities: []netcfg.Community{comm}, Additive: true,
			}},
		}}}
		dev.RoutePolicies[pol.Name] = pol
		dev.BGP.EnsureNeighbor(ip).ImportPolicy = pol.Name
		s.policyOwner[pol.Name] = router
		st.ingressPols[strings.TrimPrefix(pol.Name, "ADD_COMM_")] = pol.Name
	}
	for _, m := range reEgress.FindAllStringSubmatch(content, -1) {
		ip, _ := netcfg.ParseIP(m[1])
		var comms []netcfg.Community
		for _, cs := range strings.Fields(m[3]) {
			c, err := netcfg.ParseCommunity(cs)
			if err != nil {
				return "", fmt.Errorf("prompt egress community %q: %v", cs, err)
			}
			comms = append(comms, c)
		}
		st.egress[m[2]] = comms
		buildEgressPolicy(dev, m[2], comms, false)
		dev.BGP.EnsureNeighbor(ip).ExportPolicy = m[2]
		s.policyOwner[m[2]] = router
		st.egressPols[strings.TrimPrefix(m[2], "FILTER_COMM_OUT_")] = m[2]
	}

	st.golden = dev
	s.routers[router] = st
	s.last = router

	// Choose errors: the attachment-keyed plan when one is configured,
	// the per-router-name map (or the paper's default scenario) otherwise.
	if s.cfg.Plan != nil {
		s.applyPlan(st, messages)
		return s.render(st), nil
	}
	classes := s.cfg.Errors[router]
	if s.cfg.Errors == nil {
		classes = defaultErrors(router)
	}
	iipDB := DefaultIIPDatabase()
	for _, e := range classes {
		if s.cfg.RespectIIP && suppressedByIIP(e, messages, iipDB) {
			continue
		}
		if e == SErrAndOr && len(st.egress) == 0 {
			continue // nothing to get wrong
		}
		st.active[e] = true
	}
	return s.render(st), nil
}

// applyPlan resolves the configured attachment-keyed plan against a
// freshly generated router: attachment-scoped classes latch onto the
// addressed peer's ingress tag or egress filter (inert when the prompt
// asked for no such policy), router-scoped classes fire router-wide
// whether the site names a peer or not. IIP suppression applies exactly
// as it does to the per-router map, so the ablation semantics carry over.
func (s *Synthesizer) applyPlan(st *routerState, messages []Message) {
	iipDB := DefaultIIPDatabase()
	for _, se := range s.cfg.Plan {
		if se.Site.Router != st.name {
			continue
		}
		for _, e := range se.Classes {
			if s.cfg.RespectIIP && suppressedByIIP(e, messages, iipDB) {
				continue
			}
			if e.AttachmentScoped() && se.Site.Peer != "" {
				pols := st.ingressPols
				if e.ScopeDirection() == "out" {
					pols = st.egressPols
				}
				if pols[se.Site.Peer] == "" {
					continue // the prompt asked for no such policy
				}
				if st.scoped[e] == nil {
					st.scoped[e] = map[string]bool{}
				}
				st.scoped[e][se.Site.Peer] = true
				continue
			}
			if (e == SErrAndOr || e == SErrEgressDenyAll) && len(st.egress) == 0 {
				continue // nothing to get wrong
			}
			st.active[e] = true
		}
	}
}

// suppressedByIIP reports whether an error class is prevented by an IIP
// entry present in the conversation.
func suppressedByIIP(e SynthError, messages []Message, db []IIP) bool {
	switch e {
	case SErrCLIKeywords:
		return HasIIP(messages, db, "no-cli-keywords") || HasIIP(messages, db, "cfg-files-only")
	case SErrMatchCommunityLiteral:
		return HasIIP(messages, db, "match-community-list")
	case SErrMissingAdditive:
		return HasIIP(messages, db, "additive-communities")
	default:
		return false
	}
}

// correct reacts to a correction prompt, locating the router it concerns.
func (s *Synthesizer) correct(content string) (string, error) {
	st := s.target(content)
	if st == nil {
		return "", fmt.Errorf("correction prompt does not identify a known router or policy: %q",
			firstLine(content))
	}
	s.last = st.name
	c := strings.ToLower(content)
	switch {
	case strings.Contains(c, "community-list") && (strings.Contains(c, ".+") ||
		strings.Contains(c, "wrong syntax") || strings.Contains(c, "invalid community")):
		delete(st.active, SErrCommunityListRegex)
	case strings.Contains(c, "ip address does not match"):
		delete(st.active, SErrTopoWrongIP)
	case strings.Contains(c, "not declared") || strings.Contains(c, "incorrect network"):
		delete(st.active, SErrTopoMissingNetwork)
	case strings.Contains(c, "separate") && strings.Contains(c, "stanza"):
		// The paper's human prompt: "declare each match statement in a
		// separate route-map stanza" (§4.2).
		st.clearError(SErrAndOr, content)
	case strings.Contains(c, "inside the \"router bgp\"") ||
		strings.Contains(c, "inside the router bgp block"):
		delete(st.active, SErrNeighborOutsideBGP)
	case strings.Contains(c, "not a top-level command"):
		// Batfish catches the misplaced neighbor command but the warning
		// is not actionable for the model (§4.2): no change.
	case strings.Contains(c, "additive") || strings.Contains(c, "replaces the communities"):
		st.clearError(SErrMissingAdditive, content)
	case strings.Contains(c, "cli") || strings.Contains(c, "session keyword"):
		delete(st.active, SErrCLIKeywords)
	case strings.Contains(c, "must reference a community-list"):
		st.clearError(SErrMatchCommunityLiteral, content)
	case strings.Contains(c, "interferes with the existing") ||
		strings.Contains(c, "restore the existing"):
		st.interfere = false
	case strings.Contains(c, "permits routes that have the community"):
		// The counterexample prompt for the AND/OR error: GPT-4 "failed to
		// rectify the issue" (§4.2) — no change.
	}
	return s.render(st), nil
}

// addPolicy performs the §6 incremental-change task: add a customer
// ingress tagging route-map on R1. Faithfully to the paper's worry, the
// edit also (once) drops an existing neighbor attachment — interference
// the non-regression verification must catch.
func (s *Synthesizer) addPolicy(policy, community, neighborIP string) (string, error) {
	st := s.routers["R1"]
	if st == nil {
		return "", fmt.Errorf("incremental change requested before R1 was generated")
	}
	s.last = "R1"
	comm, err := netcfg.ParseCommunity(community)
	if err != nil {
		return "", fmt.Errorf("incremental prompt community %q: %v", community, err)
	}
	ip, err := netcfg.ParseIP(neighborIP)
	if err != nil {
		return "", fmt.Errorf("incremental prompt neighbor %q: %v", neighborIP, err)
	}
	st.golden.RoutePolicies[policy] = &netcfg.RoutePolicy{Name: policy,
		Clauses: []*netcfg.PolicyClause{{
			Seq: 10, Action: netcfg.Permit,
			Sets: []netcfg.SetAction{netcfg.SetCommunity{
				Communities: []netcfg.Community{comm}, Additive: true,
			}},
		}}}
	st.golden.BGP.EnsureNeighbor(ip).ImportPolicy = policy
	s.policyOwner[policy] = "R1"
	st.interfere = true
	// The golden device changed: every cached section rendered from it is
	// stale (the new route map, and the BGP block if the neighbor is new).
	st.sections = nil
	st.sectionRefs = nil
	return s.render(st), nil
}

// target resolves which router a correction prompt refers to. Policy
// mentions resolve to the longest matching policy name with a
// lexicographic tie-break: FILTER_COMM_OUT_ISP1 is a substring of
// FILTER_COMM_OUT_ISP10, so a first-match scan over the map would route
// the correction to whichever owner the map iteration happened to visit
// — a nondeterminism the fuzz campaigns surfaced on topologies with ten
// or more attachments.
func (s *Synthesizer) target(content string) *routerState {
	if m := reRouterIn.FindStringSubmatch(content); m != nil {
		if st := s.routers[m[1]]; st != nil {
			return st
		}
	}
	best, owner := "", ""
	for pol, router := range s.policyOwner {
		if !strings.Contains(content, pol) {
			continue
		}
		if len(pol) > len(best) || (len(pol) == len(best) && pol < best) {
			best, owner = pol, router
		}
	}
	if best != "" {
		return s.routers[owner]
	}
	if st := s.routers[s.last]; st != nil {
		return st
	}
	return nil
}

// render prints the router's config with its live errors applied. The
// default path is the stanza-level incremental renderer (render.go),
// which re-prints only the sections whose error state changed since the
// previous render of this router; SynthConfig.FullRender selects the
// whole-config print. The outputs are byte-identical.
func (s *Synthesizer) render(st *routerState) string {
	var start time.Time
	if s.tracer != nil {
		start = time.Now()
	}
	var text string
	outcome := "incremental"
	if s.cfg.FullRender {
		text = s.renderFull(st)
		outcome = "full"
	} else {
		text = s.renderIncremental(st)
	}
	if s.tracer != nil {
		s.tracer.Span(start, obs.Event{Stage: obs.StageRender, Router: st.name,
			Bytes: int64(len(text)), Outcome: outcome})
	}
	return text
}

// renderFull prints the whole config from a transformed clone of the
// golden device — the baseline the incremental renderer is pinned against.
func (s *Synthesizer) renderFull(st *routerState) string {
	dev := st.golden.Clone()
	if st.active[SErrTopoWrongIP] {
		if len(dev.Interfaces) > 0 {
			dev.Interfaces[0].Address.Addr++ // off-by-one address
		}
	}
	if st.active[SErrTopoMissingNetwork] && dev.BGP != nil && len(dev.BGP.Networks) > 0 {
		dev.BGP.Networks = dev.BGP.Networks[:len(dev.BGP.Networks)-1]
	}
	if st.active[SErrMissingAdditive] {
		for _, name := range dev.PolicyNames() {
			stripAdditive(dev.RoutePolicies[name])
		}
	} else {
		for _, peer := range st.scopedPeers(SErrMissingAdditive) {
			stripAdditive(dev.RoutePolicies[st.ingressPols[peer]])
		}
	}
	if st.active[SErrAndOr] {
		for pol, comms := range st.egress {
			buildEgressPolicy(dev, pol, comms, true)
		}
	} else {
		for _, peer := range st.scopedPeers(SErrAndOr) {
			pol := st.egressPols[peer]
			buildEgressPolicy(dev, pol, st.egress[pol], true)
		}
	}
	if st.active[SErrEgressDenyAll] {
		for pol := range st.egress {
			denyAllEgress(dev.RoutePolicies[pol])
		}
	} else {
		for _, peer := range st.scopedPeers(SErrEgressDenyAll) {
			denyAllEgress(dev.RoutePolicies[st.egressPols[peer]])
		}
	}
	if st.active[SErrMatchCommunityLiteral] {
		useLiteralCommunityMatches(dev)
	} else if peers := st.scopedPeers(SErrMatchCommunityLiteral); len(peers) > 0 {
		var pols []string
		for _, peer := range peers {
			pols = append(pols, st.egressPols[peer])
		}
		useLiteralCommunityMatchesIn(dev, pols)
	}
	if st.interfere && dev.BGP != nil {
		// The careless incremental edit: the first egress attachment to a
		// peer router silently disappears.
		for _, nb := range dev.BGP.Neighbors {
			if nb.ExportPolicy != "" {
				nb.ExportPolicy = ""
				break
			}
		}
	}

	text := cisco.Print(dev)
	if st.active[SErrCommunityListRegex] {
		text += fmt.Sprintf("ip community-list standard COMM_LIST_%s_OUT permit .+\n", st.name)
	}
	if st.active[SErrNeighborOutsideBGP] && dev.BGP != nil && len(dev.BGP.Neighbors) > 0 {
		nb := dev.BGP.Neighbors[0]
		if nb.ImportPolicy != "" {
			// Re-emit the attachment outside any block: the misplacement.
			text += fmt.Sprintf("neighbor %s route-map %s in\n",
				netcfg.FormatIP(nb.Addr), nb.ImportPolicy)
		}
	}
	if st.active[SErrCLIKeywords] {
		text = "configure terminal\n" + text + "exit\nwrite\nend\n"
	}
	return text
}

// buildEgressPolicy (re)builds an egress community filter on the device.
// Correct form (andSemantics=false): one deny stanza per community, each
// matching its own community list, then a final permit. Erroneous form
// (andSemantics=true): a single deny stanza carrying every match — which
// only filters routes carrying *all* the communities (§4.2).
func buildEgressPolicy(dev *netcfg.Device, name string, comms []netcfg.Community, andSemantics bool) {
	for _, c := range comms {
		ln := egressListName(c)
		if dev.CommunityLists[ln] == nil {
			dev.CommunityLists[ln] = &netcfg.CommunityList{Name: ln, Entries: []netcfg.CommunityListEntry{
				{Action: netcfg.Permit, Community: c},
			}}
		}
	}
	dev.RoutePolicies[name] = egressPolicyClauses(name, comms, andSemantics)
}

// egressListName is the community-list index per the paper: list k holds
// (99+k):1, i.e. R2's tag 100:1 lives in list 1.
func egressListName(c netcfg.Community) string {
	return strconv.Itoa(int(uint32(c)>>16) - 99)
}

// egressPolicyClauses builds just the route-map half of buildEgressPolicy
// — the piece the incremental renderer can rebuild per policy, since the
// community lists it references already exist on the golden device.
func egressPolicyClauses(name string, comms []netcfg.Community, andSemantics bool) *netcfg.RoutePolicy {
	pol := &netcfg.RoutePolicy{Name: name}
	if andSemantics {
		cl := &netcfg.PolicyClause{Seq: 10, Action: netcfg.Deny}
		for _, c := range comms {
			cl.Matches = append(cl.Matches, netcfg.MatchCommunityList{List: egressListName(c)})
		}
		pol.Clauses = append(pol.Clauses, cl,
			&netcfg.PolicyClause{Seq: 20, Action: netcfg.Permit})
	} else {
		seq := 10
		for _, c := range comms {
			pol.Clauses = append(pol.Clauses, &netcfg.PolicyClause{
				Seq: seq, Action: netcfg.Deny,
				Matches: []netcfg.Match{netcfg.MatchCommunityList{List: egressListName(c)}},
			})
			seq += 10
		}
		pol.Clauses = append(pol.Clauses, &netcfg.PolicyClause{Seq: seq, Action: netcfg.Permit})
	}
	return pol
}

// stripAdditive removes the 'additive' keyword from every set-community
// action of one policy (the "Adding Communities" pitfall of §4.2).
func stripAdditive(pol *netcfg.RoutePolicy) {
	if pol == nil {
		return
	}
	for _, cl := range pol.Clauses {
		for i, set := range cl.Sets {
			if sc, ok := set.(netcfg.SetCommunity); ok {
				sc.Additive = false
				cl.Sets[i] = sc
			}
		}
	}
}

// denyAllEgress flips an egress filter's final catch-all permit into a
// deny, dropping clean customer routes (SErrEgressDenyAll).
func denyAllEgress(pol *netcfg.RoutePolicy) {
	if pol == nil || len(pol.Clauses) == 0 {
		return
	}
	last := pol.Clauses[len(pol.Clauses)-1]
	if last.Action == netcfg.Permit && len(last.Matches) == 0 {
		last.Action = netcfg.Deny
	}
}

// useLiteralCommunityMatches rewrites community-list matches into literal
// community matches (invalid Cisco syntax) and drops the list definitions.
func useLiteralCommunityMatches(dev *netcfg.Device) {
	for _, name := range dev.PolicyNames() {
		rewriteLiteralMatches(dev, dev.RoutePolicies[name])
	}
	dev.CommunityLists = map[string]*netcfg.CommunityList{}
}

// useLiteralCommunityMatchesIn applies the literal-match rewrite to the
// named policies only (the attachment-scoped form), then drops the
// community lists no policy references any more.
func useLiteralCommunityMatchesIn(dev *netcfg.Device, pols []string) {
	for _, name := range pols {
		rewriteLiteralMatches(dev, dev.RoutePolicies[name])
	}
	referenced := map[string]bool{}
	for _, name := range dev.PolicyNames() {
		for _, cl := range dev.RoutePolicies[name].Clauses {
			for _, m := range cl.Matches {
				if mcl, ok := m.(netcfg.MatchCommunityList); ok {
					referenced[mcl.List] = true
				}
			}
		}
	}
	for ln := range dev.CommunityLists {
		if !referenced[ln] {
			delete(dev.CommunityLists, ln)
		}
	}
}

// rewriteLiteralMatches swaps one policy's community-list matches for
// literal community matches.
func rewriteLiteralMatches(dev *netcfg.Device, pol *netcfg.RoutePolicy) {
	if pol == nil {
		return
	}
	for _, cl := range pol.Clauses {
		for i, m := range cl.Matches {
			if mcl, ok := m.(netcfg.MatchCommunityList); ok {
				if list := dev.CommunityLists[mcl.List]; list != nil && len(list.Entries) > 0 {
					cl.Matches[i] = netcfg.MatchCommunityLiteral{Community: list.Entries[0].Community}
				}
			}
		}
	}
}

func splitCIDR(s string) (uint32, int, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("missing /len")
	}
	addr, err := netcfg.ParseIP(s[:slash])
	if err != nil {
		return 0, 0, err
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return 0, 0, fmt.Errorf("bad length")
	}
	return addr, length, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
