package llm

// IIP is one Initial Instruction Prompt: a reusable instruction loaded at
// the start of every chat "from a database for avoiding common mistakes"
// (§2). The database "can be built and added by experts over time"; these
// four entries are the ones §4.2 reports.
type IIP struct {
	Name string
	Text string
}

// DefaultIIPDatabase returns the paper's IIP entries for config synthesis.
func DefaultIIPDatabase() []IIP {
	return []IIP{
		{
			Name: "cfg-files-only",
			Text: "Generate complete .cfg configuration files only. Do not generate commands to " +
				"enter on the Cisco command line interface.",
		},
		{
			Name: "no-cli-keywords",
			Text: "Do not use the keywords 'exit', 'end', 'configure terminal', 'ip routing', " +
				"'write', 'hostname prompts' or 'conf t' anywhere in the configuration.",
		},
		{
			Name: "match-community-list",
			Text: "To match against a community in a route-map, first declare a community list " +
				"with 'ip community-list <n> permit <community>' and then match using only " +
				"'match community <n>'. Never match a literal community value directly.",
		},
		{
			Name: "additive-communities",
			Text: "When adding a community to a route in a route-map, always use the 'additive' " +
				"keyword ('set community <value> additive') so that existing communities are " +
				"preserved.",
		},
	}
}

// IIPMessages renders the database as system messages for the start of a
// conversation.
func IIPMessages(db []IIP) []Message {
	out := make([]Message, 0, len(db))
	for _, e := range db {
		out = append(out, Message{Role: RoleSystem, Content: e.Text})
	}
	return out
}

// HasIIP reports whether the conversation contains the named IIP entry.
func HasIIP(messages []Message, db []IIP, name string) bool {
	var text string
	for _, e := range db {
		if e.Name == name {
			text = e.Text
		}
	}
	if text == "" {
		return false
	}
	for _, m := range messages {
		if m.Role == RoleSystem && m.Content == text {
			return true
		}
	}
	return false
}
