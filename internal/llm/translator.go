package llm

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"repro/internal/cisco"
	"repro/internal/juniper"
	"repro/internal/netcfg"
	"repro/internal/translate"
)

// TranslateError enumerates the eight translation error classes of Table 2.
type TranslateError int

// Translation error classes, in Table 2 order.
const (
	// ErrMissingLocalAS: "Missing BGP local-as attribute" (syntax: the
	// translation omits routing-options autonomous-system).
	ErrMissingLocalAS TranslateError = iota
	// ErrPrefixListSyntax: "Invalid syntax for prefix lists" (an invalid
	// length-ranged entry inside a Junos prefix-list).
	ErrPrefixListSyntax
	// ErrMissingImportPolicy: "Missing/extra BGP route policy" (the import
	// route map is not attached to the neighbor).
	ErrMissingImportPolicy
	// ErrOSPFCost: "Different OSPF link cost" (the loopback loses its
	// explicit metric; Junos then reads cost 0 where Cisco defaulted to 1).
	ErrOSPFCost
	// ErrOSPFPassive: "Different OSPF passive interface setting".
	ErrOSPFPassive
	// ErrWrongMED: "Setting wrong BGP MED value" (a route-map clause loses
	// its set metric).
	ErrWrongMED
	// ErrPrefixLenMatch: "Different prefix lengths match in BGP" (the
	// "ge 24" range is dropped; fixing it first produces the invalid
	// "1.2.3.0/24-32" syntax of §3.2 before converging).
	ErrPrefixLenMatch
	// ErrRedistribution: "Different redistribution into BGP" (the export
	// policy loses its "from protocol" gates; only a direct human prompt
	// fixes it, §3.2).
	ErrRedistribution

	numTranslateErrors
)

// String implements fmt.Stringer.
func (e TranslateError) String() string {
	switch e {
	case ErrMissingLocalAS:
		return "missing-bgp-local-as"
	case ErrPrefixListSyntax:
		return "invalid-prefix-list-syntax"
	case ErrMissingImportPolicy:
		return "missing-bgp-route-policy"
	case ErrOSPFCost:
		return "different-ospf-link-cost"
	case ErrOSPFPassive:
		return "different-ospf-passive-setting"
	case ErrWrongMED:
		return "wrong-bgp-med-value"
	case ErrPrefixLenMatch:
		return "different-prefix-length-match"
	case ErrRedistribution:
		return "different-bgp-redistribution"
	default:
		return fmt.Sprintf("translate-error(%d)", int(e))
	}
}

// AllTranslateErrors lists every class.
func AllTranslateErrors() []TranslateError {
	out := make([]TranslateError, 0, int(numTranslateErrors))
	for e := TranslateError(0); e < numTranslateErrors; e++ {
		out = append(out, e)
	}
	return out
}

// TranslateConfig controls the simulated GPT-4 for the translation task.
type TranslateConfig struct {
	// Seed drives all stochastic choices; runs are reproducible.
	Seed int64
	// Inject selects the error classes present in the first draft. Nil
	// means all classes (the paper's full scenario).
	Inject map[TranslateError]bool
	// InjectProb, when in (0,1), samples each enabled class independently
	// instead of always injecting (used by sweep benchmarks). Zero means 1.
	InjectProb float64
	// ReintroducePassiveOnMEDFix makes the MED fix silently re-break the
	// passive-interface setting once — the paper's "sometimes it even
	// reintroduces errors that were previously fixed!" (§3.2).
	ReintroducePassiveOnMEDFix bool
}

// DefaultTranslateConfig is the paper's deterministic full scenario.
func DefaultTranslateConfig() TranslateConfig {
	return TranslateConfig{Seed: 1, ReintroducePassiveOnMEDFix: true}
}

// geStage tracks the multi-step life of ErrPrefixLenMatch.
type geStage int

const (
	geNone    geStage = iota // fixed or never injected
	geDropped                // "ge 24" silently dropped (route-filter exact)
	geInvalid                // fix attempt produced "1.2.3.0/24-32"
)

// Translator is the simulated GPT-4 for the Cisco→Juniper use case.
type Translator struct {
	cfg TranslateConfig
	rng *rand.Rand

	src    *netcfg.Device
	golden *netcfg.Device

	active       map[TranslateError]bool
	ge           geStage
	passiveFixed bool
	current      string
	// draws counts rng draws (see RNGCursor): one per error class decided
	// under a fractional InjectProb.
	draws int64
}

// NewTranslator returns a fresh simulated model.
func NewTranslator(cfg TranslateConfig) *Translator {
	return &Translator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		active: map[TranslateError]bool{},
	}
}

// RNGCursor reports how many random draws the model has made — the
// stochastic position a checkpoint records and a resume's replay must land
// back on. The translator draws once per error class decided under a
// fractional InjectProb (in start), nowhere else, so a faithfully replayed
// conversation reproduces the cursor exactly.
func (t *Translator) RNGCursor() int64 { return t.draws }

// ActiveErrors lists the currently live error classes (tests and the
// Table 2 bench introspect this). The enumeration is deterministic —
// sorted by class — including the multi-stage prefix-length error,
// which is live whenever its state machine has not reached geNone; the
// fuzz shrinker's replay comparisons depend on the stable order.
func (t *Translator) ActiveErrors() []TranslateError {
	var out []TranslateError
	for _, e := range AllTranslateErrors() {
		if t.active[e] || (e == ErrPrefixLenMatch && t.ge != geNone) {
			out = append(out, e)
		}
	}
	return out
}

// Complete implements Model.
func (t *Translator) Complete(messages []Message) (string, error) {
	last := LastMessage(messages)
	content := last.Content
	switch {
	case strings.Contains(content, "Translate the"):
		if err := t.start(content); err != nil {
			return "", err
		}
	case IsPrintRequest(content):
		// No state change; re-render below.
	default:
		t.applyCorrection(content, last.Role)
	}
	if t.golden == nil {
		return "", fmt.Errorf("translator has no task: first prompt must contain the Cisco configuration")
	}
	t.current = t.render()
	return t.current, nil
}

// start parses the Cisco configuration out of the task prompt and chooses
// the initial error set.
func (t *Translator) start(content string) error {
	idx := strings.Index(content, "hostname")
	if idx < 0 {
		return fmt.Errorf("task prompt does not contain a Cisco configuration")
	}
	dev, warns := cisco.Parse(content[idx:])
	if len(warns) > 0 {
		return fmt.Errorf("input Cisco configuration has %d parse warnings (first: %s)",
			len(warns), warns[0])
	}
	t.src = dev
	t.golden = translate.Golden(dev)
	inject := t.cfg.Inject
	for _, e := range AllTranslateErrors() {
		enabled := inject == nil || inject[e]
		if enabled && t.cfg.InjectProb > 0 && t.cfg.InjectProb < 1 {
			t.draws++
			enabled = t.rng.Float64() < t.cfg.InjectProb
		}
		if !enabled {
			continue
		}
		if e == ErrPrefixLenMatch {
			t.ge = geDropped
			continue
		}
		t.active[e] = true
	}
	return nil
}

// applyCorrection reacts to a (humanized or human) correction prompt. The
// prompt classes are tested most-specific first: the policy-behaviour
// formula embeds attribute words like "MED", so keyword fallbacks come
// last.
func (t *Translator) applyCorrection(content string, role Role) {
	c := strings.ToLower(content)
	switch {
	case strings.Contains(c, "syntax error"):
		t.fixSyntax(c)
	case strings.Contains(c, "from bgp") || strings.Contains(c, "protocol bgp") ||
		strings.Contains(c, `"from" condition`):
		// The direct human instruction of §3.2; the humanized policy
		// prompt alone never fixes redistribution.
		delete(t.active, ErrRedistribution)
	case strings.Contains(c, "performs the following action"):
		t.fixPolicyBehavior(c)
	case strings.Contains(c, "no corresponding route map"),
		strings.Contains(c, "import route map"):
		delete(t.active, ErrMissingImportPolicy)
	case strings.Contains(c, "cost"):
		delete(t.active, ErrOSPFCost)
	case strings.Contains(c, "passive"):
		delete(t.active, ErrOSPFPassive)
		t.passiveFixed = true
	}
}

// fixSyntax handles syntax-error prompts by locating which live error the
// quoted line belongs to.
func (t *Translator) fixSyntax(c string) {
	switch {
	case strings.Contains(c, "local as") || strings.Contains(c, "autonomous-system"):
		delete(t.active, ErrMissingLocalAS)
	case strings.Contains(c, "default-route"):
		delete(t.active, ErrPrefixListSyntax)
	case strings.Contains(c, "our-networks") || strings.Contains(c, "24-32"):
		if t.ge == geInvalid {
			// "after informing it of the error, it does eventually find a
			// correct translation" (§3.2): converge to the route-filter.
			t.ge = geNone
		}
	}
}

// fixPolicyBehavior handles Campion policy-difference prompts, telling the
// error classes apart the way GPT-4 plausibly would — by the behaviours in
// the prompt:
//
//   - both sides ACCEPT but attributes differ → the missing set metric
//     (fixed, with the paper's collateral re-breakage of an earlier fix);
//   - the original accepts a 1.2.3.x sub-prefix the translation rejects →
//     the dropped "ge 24" (the fix attempt produces invalid syntax, §3.2);
//   - anything else (the redistribution difference) → no change ("it
//     usually does nothing when asked to fix the error", §3.2).
func (t *Translator) fixPolicyBehavior(c string) {
	orig, trans := extractActions(c)
	switch {
	case strings.HasPrefix(orig, "accept") && strings.HasPrefix(trans, "accept"):
		if t.active[ErrWrongMED] {
			delete(t.active, ErrWrongMED)
			if t.cfg.ReintroducePassiveOnMEDFix && t.passiveFixed {
				// "Sometimes it even reintroduces errors that were
				// previously fixed!" (§3.2).
				t.active[ErrOSPFPassive] = true
				t.passiveFixed = false
			}
		}
	case t.ge == geDropped && mentionsSubprefix(c, "1.2.3.") && strings.HasPrefix(trans, "reject"):
		t.ge = geInvalid
	}
}

var reAction = regexp.MustCompile(`performs the following action: ([^.]+)`)

// extractActions pulls the original and translation behaviours out of a
// Table 1 policy prompt.
func extractActions(c string) (orig, trans string) {
	m := reAction.FindAllStringSubmatch(c, -1)
	if len(m) > 0 {
		orig = strings.TrimSpace(m[0][1])
	}
	if len(m) > 1 {
		trans = strings.TrimSpace(m[1][1])
	}
	return orig, trans
}

// mentionsSubprefix reports whether the prompt's witness prefix lies under
// the given dotted prefix (crude, but the simulated model only needs to
// tell its two policy errors apart the way GPT-4 plausibly would: by the
// prefix it is shown).
func mentionsSubprefix(c, dotted string) bool {
	return strings.Contains(c, strings.ToLower(dotted))
}

// render produces the current Juniper configuration text: the golden IR
// with all live error mutations applied, plus text-level corruption for
// the syntax-error classes.
func (t *Translator) render() string {
	dev := t.golden.Clone()
	if t.active[ErrMissingLocalAS] && dev.BGP != nil {
		dev.BGP.ASN = 0
	}
	if t.active[ErrMissingImportPolicy] && dev.BGP != nil {
		for _, n := range dev.BGP.Neighbors {
			n.ImportPolicy = ""
		}
	}
	if t.active[ErrOSPFCost] {
		if lo := dev.Interface("lo0.0"); lo != nil {
			lo.OSPFCost = 0
		}
	}
	if t.active[ErrOSPFPassive] {
		if lo := dev.Interface("lo0.0"); lo != nil {
			lo.OSPFPassive = false
		}
		if dev.OSPF != nil {
			dev.OSPF.PassiveInterfaces = nil
		}
	}
	if t.active[ErrWrongMED] {
		stripFirstMED(dev)
	}
	switch t.ge {
	case geDropped:
		narrowRouteFilters(dev)
	case geInvalid:
		replaceRouteFiltersWithPrefixList(dev, "our-networks")
	}
	if t.active[ErrRedistribution] {
		stripProtocolGates(dev)
	}

	text := juniper.Print(dev)
	if t.active[ErrPrefixListSyntax] {
		text = strings.Replace(text, "        0.0.0.0/0;\n", "        0.0.0.0/0-32;\n", 1)
	}
	if t.ge == geInvalid {
		text = strings.Replace(text, "policy-options {\n",
			"policy-options {\n    prefix-list our-networks {\n        1.2.3.0/24-32;\n    }\n", 1)
	}
	return text
}

func stripFirstMED(dev *netcfg.Device) {
	for _, name := range dev.PolicyNames() {
		for _, cl := range dev.RoutePolicies[name].Clauses {
			for i, s := range cl.Sets {
				if _, ok := s.(netcfg.SetMED); ok {
					cl.Sets = append(cl.Sets[:i], cl.Sets[i+1:]...)
					return
				}
			}
		}
	}
}

// narrowRouteFilters turns every length-ranged route-filter into an exact
// match: the visible effect of dropping "ge 24" in translation.
func narrowRouteFilters(dev *netcfg.Device) {
	for _, name := range dev.PolicyNames() {
		for _, cl := range dev.RoutePolicies[name].Clauses {
			for i, m := range cl.Matches {
				if rf, ok := m.(netcfg.MatchRouteFilter); ok && rf.MaxLen > rf.MinLen {
					cl.Matches[i] = netcfg.NewMatchRouteFilterExact(rf.Prefix)
				}
			}
		}
	}
}

// replaceRouteFiltersWithPrefixList swaps ranged/exact route-filters for a
// named prefix-list reference; the (invalid) list itself is injected
// textually by render.
func replaceRouteFiltersWithPrefixList(dev *netcfg.Device, list string) {
	for _, name := range dev.PolicyNames() {
		for _, cl := range dev.RoutePolicies[name].Clauses {
			for i, m := range cl.Matches {
				if _, ok := m.(netcfg.MatchRouteFilter); ok {
					cl.Matches[i] = netcfg.MatchPrefixList{List: list}
				}
			}
		}
	}
}

func stripProtocolGates(dev *netcfg.Device) {
	for _, name := range dev.PolicyNames() {
		for _, cl := range dev.RoutePolicies[name].Clauses {
			var kept []netcfg.Match
			for _, m := range cl.Matches {
				if _, ok := m.(netcfg.MatchProtocol); ok {
					continue
				}
				kept = append(kept, m)
			}
			cl.Matches = kept
		}
	}
}
