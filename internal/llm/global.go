package llm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cisco"
	"repro/internal/netcfg"
)

// GlobalSynthesizer simulates GPT-4 under *global* policy prompting — the
// paper's failed first attempt (§4.1): given the whole topology and the
// global no-transit sentence at once, "GPT-4 generated two innovative
// strategies: filtering routes using AS path regular expressions, and
// denying ISP prefixes from being advertised to other routers from the
// customer router", and when fed counterexample packets it "was confused
// and kept oscillating between incorrect strategies".
//
// This model reproduces exactly that: two plausible-but-wrong filtering
// strategies, toggled on every counterexample prompt, never converging.
type GlobalSynthesizer struct {
	specs    []globalRouterSpec
	strategy int // 0 = AS-path regex filtering, 1 = customer-side prefix denial
	started  bool
	// StrategySwitches counts oscillations (introspected by benches).
	StrategySwitches int
}

type globalRouterSpec struct {
	name     string
	asn      uint32
	routerID string
	ifcs     []struct{ name, cidr string }
	nbrs     []struct {
		ip  string
		as  uint32
		ext bool
	}
	networks []string
}

// NewGlobalSynthesizer returns a fresh model.
func NewGlobalSynthesizer() *GlobalSynthesizer { return &GlobalSynthesizer{} }

// ConfigSeparator delimits per-router configs in the model's multi-config
// response.
const ConfigSeparator = "! ==== router %s ====\n"

// SplitConfigs parses a multi-config response back into per-router texts.
func SplitConfigs(response string) map[string]string {
	out := map[string]string{}
	var cur string
	var buf strings.Builder
	for _, line := range strings.SplitAfter(response, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "! ==== router ") {
			if cur != "" {
				out[cur] = buf.String()
				buf.Reset()
			}
			cur = strings.TrimSuffix(strings.TrimPrefix(trimmed, "! ==== router "), " ====")
			continue
		}
		if cur != "" {
			buf.WriteString(line)
		}
	}
	if cur != "" {
		out[cur] = buf.String()
	}
	return out
}

// Complete implements Model.
func (g *GlobalSynthesizer) Complete(messages []Message) (string, error) {
	last := LastMessage(messages)
	content := last.Content
	switch {
	case strings.Contains(content, "Generate Cisco IOS configuration files for all routers"):
		if err := g.parseTopology(content); err != nil {
			return "", err
		}
		g.started = true
	case strings.Contains(content, "can reach") || strings.Contains(content, "cannot reach"):
		// Counterexample feedback from the global verifier: switch to the
		// other incorrect strategy.
		g.strategy = 1 - g.strategy
		g.StrategySwitches++
	}
	if !g.started {
		return "", fmt.Errorf("global synthesizer has no topology yet")
	}
	return g.render(), nil
}

var errMissingSentence = fmt.Errorf("topology description missing expected sentences")

func (g *GlobalSynthesizer) parseTopology(content string) error {
	g.specs = nil
	for _, m := range reASRouter.FindAllStringSubmatch(content, -1) {
		asn, _ := strconv.ParseUint(m[2], 10, 32)
		g.specs = append(g.specs, globalRouterSpec{name: m[1], asn: uint32(asn), routerID: m[3]})
	}
	if len(g.specs) == 0 {
		return errMissingSentence
	}
	// Per-router sentences all start "Router <name> ..."; attribute them.
	byName := map[string]*globalRouterSpec{}
	for i := range g.specs {
		byName[g.specs[i].name] = &g.specs[i]
	}
	for _, line := range strings.Split(content, "\n") {
		var name string
		if _, err := fmt.Sscanf(line, "Router %s", &name); err != nil {
			continue
		}
		name = strings.TrimSuffix(name, ",")
		spec := byName[name]
		if spec == nil {
			continue
		}
		if m := reIfc.FindStringSubmatch(line); m != nil {
			spec.ifcs = append(spec.ifcs, struct{ name, cidr string }{m[1], m[2]})
		}
		if m := reNeighbor.FindStringSubmatch(line); m != nil {
			asn, _ := strconv.ParseUint(m[3], 10, 32)
			ext := strings.Contains(line, "external peer")
			spec.nbrs = append(spec.nbrs, struct {
				ip  string
				as  uint32
				ext bool
			}{m[2], uint32(asn), ext})
		}
		if m := reNetworks.FindStringSubmatch(line); m != nil {
			spec.networks = strings.Split(m[1], ", ")
		}
	}
	return nil
}

// render emits all router configs under the current (incorrect) strategy.
func (g *GlobalSynthesizer) render() string {
	var b strings.Builder
	for _, spec := range g.specs {
		fmt.Fprintf(&b, ConfigSeparator, spec.name)
		b.WriteString(cisco.Print(g.buildRouter(spec)))
	}
	return b.String()
}

func (g *GlobalSynthesizer) buildRouter(spec globalRouterSpec) *netcfg.Device {
	dev := netcfg.NewDevice(spec.name, netcfg.VendorCisco)
	for _, ifc := range spec.ifcs {
		addr, length, err := splitCIDR(ifc.cidr)
		if err != nil {
			continue
		}
		i := dev.EnsureInterface(ifc.name)
		i.Address = netcfg.Prefix{Addr: addr, Len: length}
		i.HasAddress = true
	}
	b := dev.EnsureBGP(spec.asn)
	if id, err := netcfg.ParseIP(spec.routerID); err == nil {
		b.RouterID = id
	}
	for _, n := range spec.networks {
		if p, err := netcfg.ParsePrefix(strings.TrimSpace(n)); err == nil {
			b.Networks = append(b.Networks, p)
		}
	}
	for _, nb := range spec.nbrs {
		ip, err := netcfg.ParseIP(nb.ip)
		if err != nil {
			continue
		}
		neighbor := b.EnsureNeighbor(ip)
		neighbor.RemoteAS = nb.as
	}
	if spec.name == "R1" {
		g.applyStrategy(dev, spec)
	}
	return dev
}

// applyStrategy installs the current incorrect global-filtering strategy
// on the hub.
func (g *GlobalSynthesizer) applyStrategy(dev *netcfg.Device, spec globalRouterSpec) {
	switch g.strategy {
	case 0:
		// Strategy A: AS-path regex filtering at every ISP-facing egress —
		// but keyed on the wrong AS (the customer's), so customer routes
		// are dropped and ISP routes still transit.
		pol := &netcfg.RoutePolicy{Name: "FILTER_ASPATH", Clauses: []*netcfg.PolicyClause{
			{Seq: 10, Action: netcfg.Deny,
				Matches: []netcfg.Match{netcfg.MatchASPathRegex{Regex: "_65500_"}}},
			{Seq: 20, Action: netcfg.Permit},
		}}
		dev.RoutePolicies[pol.Name] = pol
		for _, nb := range dev.BGP.Neighbors {
			if !isCustomerPeer(spec, nb.Addr) {
				nb.ExportPolicy = pol.Name
			}
		}
	case 1:
		// Strategy B: deny ISP prefixes toward the customer router only —
		// transit between ISPs is not blocked at all.
		pol := &netcfg.RoutePolicy{Name: "DENY_ISP_TO_CUSTOMER", Clauses: []*netcfg.PolicyClause{
			{Seq: 10, Action: netcfg.Deny,
				Matches: []netcfg.Match{netcfg.MatchRouteFilter{
					Prefix: netcfg.MustPrefix("150.0.0.0/8"), MinLen: 8, MaxLen: 32}}},
			{Seq: 20, Action: netcfg.Permit},
		}}
		dev.RoutePolicies[pol.Name] = pol
		for _, nb := range dev.BGP.Neighbors {
			if isCustomerPeer(spec, nb.Addr) {
				nb.ExportPolicy = pol.Name
			} else {
				nb.ExportPolicy = ""
			}
		}
	}
}

func isCustomerPeer(spec globalRouterSpec, addr uint32) bool {
	for _, nb := range spec.nbrs {
		if ip, err := netcfg.ParseIP(nb.ip); err == nil && ip == addr {
			return nb.ext
		}
	}
	return false
}
