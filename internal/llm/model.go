// Package llm provides the language-model seam of the VPP loop. The paper
// could not access the GPT-4 API and "manually simulated the API calls with
// prompts to ChatGPT" (§2); this repository substitutes a *simulated LLM*:
// a competent rule-based translator/synthesizer (the "savant") wrapped in a
// calibrated error model that reproduces the paper's observed GPT-4
// behaviour (the "idiot") — the error taxonomy of Table 2 and §4.2, the
// per-class fixability under humanized prompts, collateral and reintroduced
// errors, and the two cases that require human intervention.
//
// The substitution is documented in DESIGN.md: the object of study is the
// verifier/humanizer/LLM loop, not GPT-4's weights, and the paper itself
// drove its LLM by hand.
package llm

import (
	"fmt"
	"strings"
)

// Role identifies the author of a message.
type Role string

// Conversation roles.
const (
	RoleSystem    Role = "system"    // IIP entries
	RoleHuman     Role = "human"     // manually authored prompts
	RoleAutomated Role = "automated" // humanizer / modularizer generated prompts
	RoleModel     Role = "model"     // LLM responses
)

// Message is one conversation turn.
type Message struct {
	Role    Role
	Content string
}

// Model is the LLM abstraction the COSYNTH engine drives: the entire
// conversation so far goes in, the model's next response comes out.
type Model interface {
	Complete(messages []Message) (string, error)
}

// Forker is implemented by models whose sessions are independent given
// independent conversations: Fork returns a fresh model with the same
// configuration and no accumulated state, so concurrent per-router repair
// workers can each drive a private session instead of serializing through
// one mutex-guarded shared model. A model whose responses depend on
// cross-conversation order (ScriptedModel) must not implement Forker.
type Forker interface {
	Model
	// Fork returns an independent session of the same model.
	Fork() Model
}

// ScriptedModel replays canned responses in order; it backs unit tests of
// the engine that need full control of the "LLM".
type ScriptedModel struct {
	Responses []string
	// Calls records every prompt the model received.
	Calls []Message
	next  int
}

// Complete implements Model.
func (m *ScriptedModel) Complete(messages []Message) (string, error) {
	if len(messages) == 0 {
		return "", fmt.Errorf("scripted model called with no messages")
	}
	m.Calls = append(m.Calls, messages[len(messages)-1])
	if m.next >= len(m.Responses) {
		return "", fmt.Errorf("scripted model exhausted after %d responses", m.next)
	}
	r := m.Responses[m.next]
	m.next++
	return r, nil
}

// LastMessage returns the final message of a conversation, or an empty
// message.
func LastMessage(messages []Message) Message {
	if len(messages) == 0 {
		return Message{}
	}
	return messages[len(messages)-1]
}

// IsPrintRequest reports whether a prompt *only* asks the model to print
// the current configuration (the second half of each correction cycle:
// "we ask it to print the entire configuration and check the result using
// verification tools again", §3.1). Correction prompts that merely end
// with a print request are not print requests.
func IsPrintRequest(content string) bool {
	return strings.EqualFold(strings.TrimSpace(content), PrintRequest)
}

// PrintRequest is the canonical automated re-print prompt.
const PrintRequest = "Please print the entire configuration."
