package llm

import (
	"testing"

	"repro/internal/modularizer"
	"repro/internal/netgen"
)

// twinSynthesizers drives two synthesizers — incremental renderer vs
// FullRender baseline — through the same conversation and fails on the
// first byte divergence.
type twinSynthesizers struct {
	t    *testing.T
	inc  *Synthesizer
	full *Synthesizer
	msgs []Message
}

func newTwins(t *testing.T, cfg SynthConfig) *twinSynthesizers {
	t.Helper()
	incCfg := cfg
	incCfg.FullRender = false
	fullCfg := cfg
	fullCfg.FullRender = true
	return &twinSynthesizers{t: t, inc: NewSynthesizer(incCfg), full: NewSynthesizer(fullCfg)}
}

// send forwards one prompt to both models and returns the (identical)
// response after appending it to the shared conversation.
func (tw *twinSynthesizers) send(label, prompt string) string {
	tw.t.Helper()
	tw.msgs = append(tw.msgs, Message{Role: RoleAutomated, Content: prompt})
	got, errInc := tw.inc.Complete(tw.msgs)
	want, errFull := tw.full.Complete(tw.msgs)
	if (errInc == nil) != (errFull == nil) {
		tw.t.Fatalf("%s: error divergence: incremental=%v full=%v", label, errInc, errFull)
	}
	if errInc != nil {
		tw.t.Fatalf("%s: %v", label, errInc)
	}
	if got != want {
		tw.t.Fatalf("%s: incremental render diverges from full render\nincremental:\n%s\nfull:\n%s",
			label, got, want)
	}
	tw.msgs = append(tw.msgs, Message{Role: RoleModel, Content: got})
	return got
}

// TestRenderIncrementalMatchesFull pins the incremental renderer against
// the whole-config print for every registry scenario and every error
// class injected on every router, through the full correction sequence
// the repair loop would issue (each class's fixing prompt, one at a
// time), plus the print requests the loop re-renders with.
func TestRenderIncrementalMatchesFull(t *testing.T) {
	corrections := map[SynthError]string{
		SErrCLIKeywords:           "Remove the CLI session keyword lines from the configuration of router %s.",
		SErrMatchCommunityLiteral: "The match community statement must reference a community-list on router %s.",
		SErrMissingAdditive:       "The set community statement replaces the communities on router %s; use the additive keyword.",
		SErrCommunityListRegex:    "The community-list on router %s uses wrong syntax (.+ is not a community).",
		SErrTopoWrongIP:           "The interface ip address does not match the topology on router %s.",
		SErrTopoMissingNetwork:    "A required network is not declared on router %s.",
		SErrNeighborOutsideBGP:    "Place the neighbor command inside the \"router bgp\" block on router %s.",
		SErrAndOr:                 "Declare each match statement in a separate route-map stanza on router %s.",
		SErrEgressDenyAll:         "The egress filter permits routes that have the community on router %s.",
	}
	for _, sc := range netgen.Scenarios() {
		topo, err := netgen.Generate(sc.Name, sc.DefaultSize)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		tasks := modularizer.Tasks(topo)
		for class := SErrCLIKeywords; class <= SErrEgressDenyAll; class++ {
			errs := map[string][]SynthError{}
			for _, task := range tasks {
				errs[task.Router] = []SynthError{class}
			}
			tw := newTwins(t, SynthConfig{Seed: 1, Errors: errs})
			for _, task := range tasks {
				tw.send(sc.Name+"/"+class.String()+"/"+task.Router, task.Prompt)
			}
			// One correction round per router: clear the class, forcing the
			// incremental path to re-render exactly the changed sections.
			fix, ok := corrections[class]
			if !ok {
				t.Fatalf("no correction prompt for %v", class)
			}
			for _, task := range tasks {
				tw.send(sc.Name+"/"+class.String()+"/fix/"+task.Router,
					sprintfRouter(fix, task.Router))
				tw.send(sc.Name+"/"+class.String()+"/print/"+task.Router, PrintRequest)
			}
		}
	}
}

// TestRenderIncrementalDefaultScenario walks the paper's default error
// scenario plus the §6 incremental-change task (addPolicy mutates the
// golden device, which must invalidate the section cache) on the star.
func TestRenderIncrementalDefaultScenario(t *testing.T) {
	topo, err := netgen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	tw := newTwins(t, DefaultSynthConfig())
	for _, task := range modularizer.Tasks(topo) {
		tw.send("gen/"+task.Router, task.Prompt)
	}
	tw.send("fix/andor", "Declare each match statement in a separate route-map stanza of FILTER_COMM_OUT_R2.")
	tw.send("fix/regex", "The community-list on router R6 uses wrong syntax: .+ is not a valid community.")
	tw.send("fix/ip", "The interface ip address does not match the topology on router R4.")
	tw.send("addpolicy", "Add to router R1 a new route-map NEW_POLICY that adds the community 200:1 "+
		"additively to every route received from the CUSTOMER neighbor 1.0.0.2, and apply it at "+
		"that ingress. Keep every existing route-map and neighbor attachment unchanged.")
	tw.send("fix/interfere", "The new route-map interferes with the existing egress policy on router R1; restore the existing attachment.")
}

func sprintfRouter(format, router string) string {
	out := ""
	for i := 0; i < len(format); i++ {
		if format[i] == '%' && i+1 < len(format) && format[i+1] == 's' {
			out += router
			i++
			continue
		}
		out += string(format[i])
	}
	return out
}
