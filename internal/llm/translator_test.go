package llm

import (
	"strings"
	"testing"

	"repro/internal/exampledata"
	"repro/internal/juniper"
)

func taskMessages() []Message {
	return []Message{{Role: RoleHuman,
		Content: "Translate the following Cisco configuration into an equivalent " +
			"Juniper configuration.\n\n" + exampledata.CiscoExample}}
}

func startTranslator(t *testing.T, cfg TranslateConfig) (*Translator, string) {
	t.Helper()
	m := NewTranslator(cfg)
	out, err := m.Complete(taskMessages())
	if err != nil {
		t.Fatal(err)
	}
	return m, out
}

func single(class TranslateError) TranslateConfig {
	return TranslateConfig{Seed: 1, Inject: map[TranslateError]bool{class: true}}
}

func TestTranslatorCleanWhenNothingInjected(t *testing.T) {
	_, out := startTranslator(t, TranslateConfig{Seed: 1, Inject: map[TranslateError]bool{}})
	if warns := juniper.Check(out); len(warns) != 0 {
		t.Fatalf("clean translator produced warnings: %v", warns)
	}
}

func TestTranslatorDeterministic(t *testing.T) {
	_, out1 := startTranslator(t, DefaultTranslateConfig())
	_, out2 := startTranslator(t, DefaultTranslateConfig())
	if out1 != out2 {
		t.Fatal("same seed produced different drafts")
	}
}

func TestTranslatorInjectsSyntaxErrors(t *testing.T) {
	_, out := startTranslator(t, single(ErrPrefixListSyntax))
	if !strings.Contains(out, "0.0.0.0/0-32") {
		t.Fatal("invalid prefix-list entry not injected")
	}
	if warns := juniper.Check(out); len(warns) == 0 {
		t.Fatal("checker missed the injected syntax error")
	}
}

func TestTranslatorInjectsMissingLocalAS(t *testing.T) {
	_, out := startTranslator(t, single(ErrMissingLocalAS))
	if strings.Contains(out, "autonomous-system") {
		t.Fatal("autonomous-system should be omitted")
	}
	found := false
	for _, w := range juniper.Check(out) {
		if strings.Contains(w.Reason, "no local AS") {
			found = true
		}
	}
	if !found {
		t.Fatal("checker missed the missing local AS")
	}
}

func TestTranslatorGEChainConverges(t *testing.T) {
	m, out := startTranslator(t, single(ErrPrefixLenMatch))
	if !strings.Contains(out, "route-filter 1.2.3.0/24 exact") {
		t.Fatalf("ge-24 drop should appear as an exact route-filter:\n%s", out)
	}
	// Stage 2: the Campion policy prompt triggers the invalid syntax.
	msgs := append(taskMessages(), Message{Role: RoleModel, Content: out},
		Message{Role: RoleAutomated, Content: "In the original configuration, for the prefix " +
			"1.2.3.0/25, the BGP export policy to_provider for BGP neighbor 2.3.4.5 performs " +
			"the following action: ACCEPT with MED 50. But, in the translation, the " +
			"corresponding BGP export policy to_provider performs the following action: REJECT."})
	out2, err := m.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "1.2.3.0/24-32") {
		t.Fatalf("fix attempt should produce the invalid prefix-list form:\n%s", out2)
	}
	// Stage 3: the syntax prompt converges to the correct route-filter.
	msgs = append(msgs, Message{Role: RoleModel, Content: out2},
		Message{Role: RoleAutomated, Content: "There is a syntax error: 'policy-options " +
			"prefix-list our-networks 1.2.3.0/24-32'."})
	out3, err := m.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if warns := juniper.Check(out3); len(warns) != 0 {
		t.Fatalf("final output has warnings: %v", warns)
	}
	if !strings.Contains(out3, "prefix-length-range /24-/32") &&
		!strings.Contains(out3, "orlonger") {
		t.Fatalf("final output lacks the correct range form:\n%s", out3)
	}
}

func TestTranslatorRedistributionNeedsHumanPhrase(t *testing.T) {
	m, out := startTranslator(t, single(ErrRedistribution))
	if strings.Contains(out, "protocol bgp") {
		t.Fatal("protocol gates should be stripped")
	}
	autoPrompt := Message{Role: RoleAutomated, Content: "In the original configuration, for " +
		"the prefix 1.1.1.1/32, the BGP export policy to_provider for BGP neighbor 2.3.4.5 " +
		"performs the following action: REJECT. But, in the translation, the corresponding " +
		"BGP export policy to_provider performs the following action: ACCEPT with MED 10."}
	msgs := append(taskMessages(), Message{Role: RoleModel, Content: out}, autoPrompt)
	out2, err := m.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Fatal("automated policy prompt should not fix redistribution (§3.2)")
	}
	msgs = append(msgs, Message{Role: RoleModel, Content: out2},
		Message{Role: RoleHuman, Content: `Add a "from bgp" condition to each routing policy term.`})
	out3, err := m.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3, "protocol bgp") {
		t.Fatal("human prompt should restore the gates")
	}
}

func TestTranslatorReintroducesPassiveOnMEDFix(t *testing.T) {
	cfg := TranslateConfig{Seed: 1, ReintroducePassiveOnMEDFix: true,
		Inject: map[TranslateError]bool{ErrOSPFPassive: true, ErrWrongMED: true}}
	m, _ := startTranslator(t, cfg)
	// Fix passive first.
	msgs := append(taskMessages(), Message{Role: RoleModel, Content: m.current},
		Message{Role: RoleAutomated, Content: "In the original configuration, the OSPF link " +
			"for Loopback0 has passive interface setting set to true, but in the translation, " +
			"the corresponding lo0.0 has passive interface setting set to false."})
	out, err := m.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "passive") {
		t.Fatal("passive fix did not apply")
	}
	// Now fix MED: passive must silently break again.
	msgs = append(msgs, Message{Role: RoleModel, Content: out},
		Message{Role: RoleAutomated, Content: "In the original configuration, for the prefix " +
			"1.2.3.0/24, the BGP export policy to_provider for BGP neighbor 2.3.4.5 performs " +
			"the following action: ACCEPT with MED 50. But, in the translation, the " +
			"corresponding BGP export policy to_provider performs the following action: ACCEPT."})
	out2, err := m.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "metric 50") {
		t.Fatal("MED fix did not apply")
	}
	if strings.Contains(out2, "passive") {
		t.Fatal("passive should have been silently reintroduced (§3.2)")
	}
}

func TestTranslatorRequiresTaskFirst(t *testing.T) {
	m := NewTranslator(DefaultTranslateConfig())
	if _, err := m.Complete([]Message{{Role: RoleAutomated, Content: "fix it"}}); err == nil {
		t.Fatal("correction before task should error")
	}
	if _, err := m.Complete([]Message{{Role: RoleHuman,
		Content: "Translate the following Cisco configuration"}}); err == nil {
		t.Fatal("task without config should error")
	}
}

func TestIsPrintRequest(t *testing.T) {
	if !IsPrintRequest(PrintRequest) {
		t.Error("canonical print request not recognized")
	}
	if !IsPrintRequest("  please print the entire configuration.  ") {
		t.Error("case/space-insensitive match failed")
	}
	if IsPrintRequest("Fix the error. Then print the entire configuration.") {
		t.Error("correction prompt misclassified as print request")
	}
}

func TestScriptedModel(t *testing.T) {
	m := &ScriptedModel{Responses: []string{"a", "b"}}
	if out, _ := m.Complete([]Message{{Role: RoleHuman, Content: "x"}}); out != "a" {
		t.Errorf("first = %q", out)
	}
	if out, _ := m.Complete([]Message{{Role: RoleHuman, Content: "y"}}); out != "b" {
		t.Errorf("second = %q", out)
	}
	if _, err := m.Complete([]Message{{Role: RoleHuman, Content: "z"}}); err == nil {
		t.Error("exhausted model should error")
	}
	if _, err := m.Complete(nil); err == nil {
		t.Error("empty conversation should error")
	}
	if len(m.Calls) != 3 {
		t.Errorf("calls = %d", len(m.Calls))
	}
}

// TestTranslatorActiveErrorsSortedByClass pins the deterministic
// enumeration order: the multi-stage prefix-length error used to be
// appended after whatever the map iteration produced; the fuzz
// shrinker's replay comparisons need it slotted into class order.
func TestTranslatorActiveErrorsSortedByClass(t *testing.T) {
	tr := NewTranslator(DefaultTranslateConfig())
	tr.active[ErrRedistribution] = true
	tr.active[ErrMissingLocalAS] = true
	tr.ge = geInvalid // prefix-length error live via its state machine
	got := tr.ActiveErrors()
	want := []TranslateError{ErrMissingLocalAS, ErrPrefixLenMatch, ErrRedistribution}
	if len(got) != len(want) {
		t.Fatalf("ActiveErrors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveErrors = %v, want sorted %v", got, want)
		}
	}
	// With the class both active and in a ge stage it appears once.
	tr.active[ErrPrefixLenMatch] = true
	if again := tr.ActiveErrors(); len(again) != len(want) {
		t.Fatalf("duplicate enumeration: %v", again)
	}
}
