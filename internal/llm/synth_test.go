package llm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cisco"
	"repro/internal/lightyear"
	"repro/internal/modularizer"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
)

func star(t *testing.T, n int) *topology.Topology {
	t.Helper()
	topo, err := netgen.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// generateAll feeds every modularizer prompt to a synthesizer, with or
// without the IIP database, and returns the per-router outputs.
func generateAll(t *testing.T, s *Synthesizer, topo *topology.Topology, withIIP bool) map[string]string {
	t.Helper()
	var msgs []Message
	if withIIP {
		msgs = IIPMessages(DefaultIIPDatabase())
	}
	out := map[string]string{}
	for _, task := range modularizer.Tasks(topo) {
		msgs = append(msgs, Message{Role: RoleAutomated, Content: task.Prompt})
		resp, err := s.Complete(msgs)
		if err != nil {
			t.Fatalf("%s: %v", task.Router, err)
		}
		msgs = append(msgs, Message{Role: RoleModel, Content: resp})
		out[task.Router] = resp
	}
	return out
}

func TestSynthesizerParsesPromptsIntoValidConfigs(t *testing.T) {
	topo := star(t, 5)
	cfg := SynthConfig{Seed: 1, Errors: map[string][]SynthError{}} // no errors
	s := NewSynthesizer(cfg)
	configs := generateAll(t, s, topo, true)
	for name, text := range configs {
		if warns := cisco.Check(text); len(warns) != 0 {
			t.Errorf("%s has warnings: %v", name, warns)
		}
		dev, _ := cisco.Parse(text)
		spec := topo.Router(name)
		if finds := topology.Verify(spec, dev); len(finds) != 0 {
			t.Errorf("%s violates topology: %v", name, finds)
		}
	}
	// Hub must carry the tagging and filtering machinery.
	r1, _ := cisco.Parse(configs["R1"])
	for _, i := range []int{2, 3, 4, 5} {
		nbr := r1.BGP.Neighbor(mustIP(t, linkIP(i)))
		if nbr == nil {
			t.Fatalf("R1 missing neighbor R%d", i)
		}
		if nbr.ImportPolicy == "" || nbr.ExportPolicy == "" {
			t.Errorf("R1 neighbor R%d lacks policies: %+v", i, nbr)
		}
	}
}

func linkIP(i int) string {
	return netcfg.FormatIP(netcfg.MustPrefix(itoa(i) + ".0.0.2/32").Addr)
}

func itoa(i int) string { return string(rune('0' + i)) }

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := netcfg.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSynthesizerIIPSuppressesCommonErrors(t *testing.T) {
	topo := star(t, 7)
	// With IIP: the three suppressed classes must not appear.
	s := NewSynthesizer(DefaultSynthConfig())
	configs := generateAll(t, s, topo, true)
	if strings.Contains(configs["R2"], "configure terminal") {
		t.Error("CLI keywords injected despite IIP")
	}
	for _, e := range s.ActiveErrors("R1") {
		if e == SErrMatchCommunityLiteral || e == SErrMissingAdditive {
			t.Errorf("IIP-suppressed class %s active", e)
		}
	}
	// Without IIP: they appear.
	s2 := NewSynthesizer(DefaultSynthConfig())
	configs2 := generateAll(t, s2, topo, false)
	if !strings.Contains(configs2["R2"], "configure terminal") {
		t.Error("CLI keywords not injected without IIP")
	}
}

func TestSynthesizerAndOrErrorAndHumanFix(t *testing.T) {
	topo := star(t, 4)
	s := NewSynthesizer(DefaultSynthConfig())
	configs := generateAll(t, s, topo, true)
	dev, warns := cisco.Parse(configs["R1"])
	if len(warns) != 0 {
		t.Fatalf("R1 warnings: %v", warns)
	}
	// The erroneous egress filter has a single deny stanza with 2 matches.
	pol := dev.RoutePolicies["FILTER_COMM_OUT_R2"]
	if pol == nil || len(pol.Clauses) != 2 || len(pol.Clauses[0].Matches) != 2 {
		t.Fatalf("AND error shape wrong: %+v", pol)
	}
	// The counterexample prompt fails (paper), the human stanza prompt fixes.
	msgs := []Message{{Role: RoleAutomated,
		Content: "The route-map FILTER_COMM_OUT_R2 permits routes that have the community 101:1. " +
			"However, they should be denied."}}
	out, err := s.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	devSame, _ := cisco.Parse(out)
	if len(devSame.RoutePolicies["FILTER_COMM_OUT_R2"].Clauses) != 2 {
		t.Fatal("counterexample prompt should not fix the AND error")
	}
	msgs = append(msgs, Message{Role: RoleModel, Content: out},
		Message{Role: RoleHuman, Content: "For router R1: Declare each match statement in a " +
			"separate route-map stanza."})
	out2, err := s.Complete(msgs)
	if err != nil {
		t.Fatal(err)
	}
	devFixed, _ := cisco.Parse(out2)
	fixed := devFixed.RoutePolicies["FILTER_COMM_OUT_R2"]
	if len(fixed.Clauses) != 3 { // deny, deny, permit for a 4-router star
		t.Fatalf("human fix shape wrong: %+v", fixed)
	}
	for _, cl := range fixed.Clauses[:2] {
		if len(cl.Matches) != 1 || cl.Action != netcfg.Deny {
			t.Errorf("fixed stanza = %+v", cl)
		}
	}
}

func TestSynthesizerTopologyErrorAndFix(t *testing.T) {
	topo := star(t, 5)
	s := NewSynthesizer(DefaultSynthConfig())
	configs := generateAll(t, s, topo, true)
	dev, _ := cisco.Parse(configs["R4"])
	spec := topo.Router("R4")
	finds := topology.Verify(spec, dev)
	if len(finds) == 0 {
		t.Fatal("R4 should carry a topology error")
	}
	if !strings.Contains(finds[0].Issue, "ip address does not match") {
		t.Fatalf("finding = %v", finds[0])
	}
	out, err := s.Complete([]Message{{Role: RoleAutomated,
		Content: finds[0].Issue + " Please fix the configuration of router R4."}})
	if err != nil {
		t.Fatal(err)
	}
	devFixed, _ := cisco.Parse(out)
	if finds := topology.Verify(spec, devFixed); len(finds) != 0 {
		t.Fatalf("fix failed: %v", finds)
	}
}

func TestSynthesizerRoutesPromptsByPolicyName(t *testing.T) {
	topo := star(t, 4)
	s := NewSynthesizer(DefaultSynthConfig())
	generateAll(t, s, topo, true)
	// A prompt mentioning only a policy name must reach R1.
	st := s.target("The route-map ADD_COMM_R3 misbehaves")
	if st == nil || st.name != "R1" {
		t.Fatalf("target = %+v", st)
	}
}

func TestSynthesizerKickoffAcknowledged(t *testing.T) {
	s := NewSynthesizer(DefaultSynthConfig())
	out, err := s.Complete([]Message{{Role: RoleHuman,
		Content: "The goal is a no-transit policy."}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Understood") {
		t.Errorf("kickoff response = %q", out)
	}
}

func TestGlobalSynthesizerOscillates(t *testing.T) {
	topo := star(t, 4)
	g := NewGlobalSynthesizer()
	prompt := modularizer.GlobalPrompt(topo)
	out, err := g.Complete([]Message{{Role: RoleHuman, Content: prompt}})
	if err != nil {
		t.Fatal(err)
	}
	configs := SplitConfigs(out)
	if len(configs) != 4 {
		t.Fatalf("configs = %d (%v)", len(configs), keys(configs))
	}
	for name, text := range configs {
		if warns := cisco.Check(text); len(warns) != 0 {
			t.Errorf("%s warnings: %v", name, warns)
		}
	}
	// Counterexample feedback toggles the strategy.
	out2, err := g.Complete([]Message{{Role: RoleAutomated,
		Content: "Counterexample: ISP2 can reach ISP3's prefix 150.3.0.0/16."}})
	if err != nil {
		t.Fatal(err)
	}
	if out2 == out {
		t.Fatal("counterexample should switch strategies")
	}
	out3, err := g.Complete([]Message{{Role: RoleAutomated,
		Content: "Counterexample: ISP2 cannot reach the customer prefix."}})
	if err != nil {
		t.Fatal(err)
	}
	if out3 != out {
		t.Fatal("second counterexample should oscillate back to strategy A")
	}
	if g.StrategySwitches != 2 {
		t.Errorf("switches = %d", g.StrategySwitches)
	}
}

func keys(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// planTopo generates a registry topology for the plan-seam tests.
func planTopo(t *testing.T, name string, n int) *topology.Topology {
	t.Helper()
	topo, err := netgen.Generate(name, n)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestSynthesizerPlanScopesErrorToOneAttachment(t *testing.T) {
	topo := planTopo(t, "dual-homed", 4)
	atts := lightyear.ISPAttachments(topo)
	if len(atts) < 2 || atts[0].Router != atts[1].Router {
		t.Fatalf("dual-homed-4 should open with two attachments on one router: %+v", atts[:2])
	}
	victim, sibling := atts[0], atts[1]
	s := NewSynthesizer(SynthConfig{Seed: 1, RespectIIP: true, Plan: []SiteErrors{{
		Site:    ErrorSite{Router: victim.Router, Peer: victim.Peer.PeerName, Direction: "out"},
		Classes: []SynthError{SErrAndOr},
	}}})
	configs := generateAll(t, s, topo, true)
	dev, warns := cisco.Parse(configs[victim.Router])
	if len(warns) != 0 {
		t.Fatalf("%s warnings: %v", victim.Router, warns)
	}
	// The addressed attachment's egress filter collapsed to the single
	// AND stanza; the sibling attachment on the same router is intact.
	bad := dev.RoutePolicies[victim.EgressPolicy()]
	if bad == nil || len(bad.Clauses) != 2 || len(bad.Clauses[0].Matches) != len(atts)-1 {
		t.Fatalf("scoped AND error shape wrong: %+v", bad)
	}
	good := dev.RoutePolicies[sibling.EgressPolicy()]
	if good == nil || len(good.Clauses) != len(atts) {
		t.Fatalf("sibling egress filter was corrupted: %+v", good)
	}
	if got := s.ActiveErrors(victim.Router); len(got) != 1 || got[0] != SErrAndOr {
		t.Fatalf("ActiveErrors = %v", got)
	}
}

func TestSynthesizerScopedCorrectionClearsOnlyNamedPolicy(t *testing.T) {
	topo := planTopo(t, "dual-homed", 4)
	atts := lightyear.ISPAttachments(topo)
	victim, sibling := atts[0], atts[1]
	site := func(a lightyear.Attachment) ErrorSite {
		return ErrorSite{Router: a.Router, Peer: a.Peer.PeerName, Direction: "in"}
	}
	s := NewSynthesizer(SynthConfig{Seed: 1, RespectIIP: true, Plan: []SiteErrors{
		{Site: site(victim), Classes: []SynthError{SErrMissingAdditive}},
		{Site: site(sibling), Classes: []SynthError{SErrMissingAdditive}},
	}})
	// Without the IIP database the suppressed class fires at both sites.
	generateAll(t, s, topo, false)
	if got := s.ActiveErrors(victim.Router); len(got) != 1 || got[0] != SErrMissingAdditive {
		t.Fatalf("ActiveErrors = %v", got)
	}
	// A correction naming one policy fixes only that attachment.
	out, err := s.Complete([]Message{{Role: RoleAutomated, Content: fmt.Sprintf(
		"The route-map %s replaces the communities already present on the route instead of "+
			"adding them. Use the 'additive' keyword.", victim.IngressPolicy())}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveErrors(victim.Router); len(got) != 1 || got[0] != SErrMissingAdditive {
		t.Fatalf("sibling instance should survive: ActiveErrors = %v", got)
	}
	dev, _ := cisco.Parse(out)
	fixedSet := dev.RoutePolicies[victim.IngressPolicy()].Clauses[0].Sets[0].(netcfg.SetCommunity)
	if !fixedSet.Additive {
		t.Fatal("named policy not fixed")
	}
	brokenSet := dev.RoutePolicies[sibling.IngressPolicy()].Clauses[0].Sets[0].(netcfg.SetCommunity)
	if brokenSet.Additive {
		t.Fatal("unnamed sibling policy was fixed too")
	}
	// A correction naming no policy clears the remaining instances.
	if _, err := s.Complete([]Message{{Role: RoleAutomated, Content: fmt.Sprintf(
		"For router %s: use the 'additive' keyword in every set community.", victim.Router)}}); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveErrors(victim.Router); len(got) != 0 {
		t.Fatalf("generic correction left %v live", got)
	}
}

func TestSynthesizerEgressDenyAllResistsEveryCorrection(t *testing.T) {
	topo := star(t, 4)
	s := NewSynthesizer(SynthConfig{Seed: 1, RespectIIP: true, Plan: []SiteErrors{{
		Site:    ErrorSite{Router: "R1", Peer: "R2", Direction: "out"},
		Classes: []SynthError{SErrEgressDenyAll},
	}}})
	configs := generateAll(t, s, topo, true)
	dev, _ := cisco.Parse(configs["R1"])
	pol := dev.RoutePolicies["FILTER_COMM_OUT_R2"]
	last := pol.Clauses[len(pol.Clauses)-1]
	if last.Action != netcfg.Deny || len(last.Matches) != 0 {
		t.Fatalf("deny-all shape wrong: %+v", last)
	}
	// Neither the semantic formula nor the paper-human phrasings move it.
	for _, prompt := range []string{
		"The route-map FILTER_COMM_OUT_R2 denies routes that carry no ISP community " +
			"(for example 150.0.0.0/16). However, customer routes should be permitted.",
		"For router R1: Declare each match statement in a separate route-map stanza.",
	} {
		out, err := s.Complete([]Message{{Role: RoleAutomated, Content: prompt}})
		if err != nil {
			t.Fatal(err)
		}
		again, _ := cisco.Parse(out)
		cl := again.RoutePolicies["FILTER_COMM_OUT_R2"].Clauses
		if cl[len(cl)-1].Action != netcfg.Deny {
			t.Fatalf("prompt %q repaired egress-deny-all", prompt)
		}
	}
	if got := s.ActiveErrors("R1"); len(got) != 1 || got[0] != SErrEgressDenyAll {
		t.Fatalf("ActiveErrors = %v", got)
	}
}

func TestSynthesizerActiveErrorsSortedByClass(t *testing.T) {
	topo := star(t, 7)
	// Classes declared in descending order across several sites must
	// come back ascending.
	s := NewSynthesizer(SynthConfig{Seed: 1, RespectIIP: true, Plan: []SiteErrors{
		{Site: ErrorSite{Router: "R1", Peer: "R3", Direction: "out"},
			Classes: []SynthError{SErrEgressDenyAll, SErrAndOr}},
		{Site: ErrorSite{Router: "R1"}, Classes: []SynthError{SErrTopoWrongIP}},
		{Site: ErrorSite{Router: "R1", Peer: "R2", Direction: "in"},
			Classes: []SynthError{SErrMissingAdditive}},
	}})
	generateAll(t, s, topo, false)
	got := s.ActiveErrors("R1")
	want := []SynthError{SErrMissingAdditive, SErrTopoWrongIP, SErrAndOr, SErrEgressDenyAll}
	if len(got) != len(want) {
		t.Fatalf("ActiveErrors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveErrors = %v, want sorted %v", got, want)
		}
	}
}

func TestSynthesizerPlanInertOnMissingSite(t *testing.T) {
	topo := star(t, 4)
	s := NewSynthesizer(SynthConfig{Seed: 1, RespectIIP: true, Plan: []SiteErrors{
		{Site: ErrorSite{Router: "R1", Peer: "R99", Direction: "out"},
			Classes: []SynthError{SErrAndOr}},
		{Site: ErrorSite{Router: "R42"}, Classes: []SynthError{SErrCLIKeywords}},
	}})
	configs := generateAll(t, s, topo, true)
	for name, text := range configs {
		if warns := cisco.Check(text); len(warns) != 0 {
			t.Errorf("%s has warnings despite an inert plan: %v", name, warns)
		}
		if got := s.ActiveErrors(name); len(got) != 0 {
			t.Errorf("%s ActiveErrors = %v, want none", name, got)
		}
	}
}
