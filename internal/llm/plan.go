package llm

import "fmt"

// ErrorSite identifies where a planned synthesis error fires: an
// attachment — the (router, external peer, direction) triple the spec
// model keys requirements on (lightyear.AttachmentRef uses the same
// shape) — or, with Peer empty, a whole router. On the paper's
// hub-centric star the peer is the internal spoke standing in for its
// ISP, exactly as in the spec derivation; everywhere else it is the
// external ISP itself.
type ErrorSite struct {
	Router string `json:"router"`
	Peer   string `json:"peer,omitempty"`
	// Direction documents which flow the site's classes corrupt ("in" or
	// "out"). It is part of the site's identity for plans and reports;
	// application resolves each class to its own scope (ScopeDirection),
	// so a mislabelled direction cannot silently retarget an injection.
	Direction string `json:"direction,omitempty"`
}

// String renders the site for keys and diagnostics.
func (s ErrorSite) String() string {
	if s.Peer == "" {
		return s.Router
	}
	arrow := "<-"
	if s.Direction == "out" {
		arrow = "->"
	}
	return s.Router + arrow + s.Peer
}

// SiteErrors assigns injected error classes to one site. A slice of
// SiteErrors is the attachment-keyed successor of SynthConfig's
// per-router-name Errors map: the fuzz campaign engine generates,
// shrinks, and replays plans in this form.
type SiteErrors struct {
	Site    ErrorSite
	Classes []SynthError
}

// AttachmentScoped reports whether a class can fire at a single
// attachment's policies (one ingress tag or one egress filter) rather
// than the whole router. Router-scoped classes — CLI keywords, a wrong
// interface address, a misplaced neighbor command — corrupt the
// configuration file as a whole and ignore a site's Peer.
func (e SynthError) AttachmentScoped() bool { return e.ScopeDirection() != "" }

// ScopeDirection returns the flow direction an attachment-scoped class
// corrupts: "in" for ingress-tagging policies, "out" for egress
// filters, "" for router-scoped classes.
func (e SynthError) ScopeDirection() string {
	switch e {
	case SErrMissingAdditive:
		return "in"
	case SErrAndOr, SErrMatchCommunityLiteral, SErrEgressDenyAll:
		return "out"
	}
	return ""
}

// AllSynthErrors lists every synthesis error class in enumeration order.
func AllSynthErrors() []SynthError {
	out := make([]SynthError, 0, int(numSynthErrors))
	for e := SynthError(0); e < numSynthErrors; e++ {
		out = append(out, e)
	}
	return out
}

// ParseSynthError resolves a class's String form back to the class, so
// plans and reports can carry stable names instead of enum ordinals.
func ParseSynthError(name string) (SynthError, error) {
	for e := SynthError(0); e < numSynthErrors; e++ {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("unknown synthesis error class %q", name)
}
