package humanizer

import (
	"strings"
	"testing"

	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

func TestSyntaxFollowsTable1Formula(t *testing.T) {
	w := netcfg.ParseWarning{
		Text:   "policy-options prefix-list our-networks 1.2.3.0/24-32",
		Reason: "invalid prefix in prefix-list",
	}
	got := Syntax(w)
	if !strings.HasPrefix(got, "There is a syntax error: 'policy-options prefix-list our-networks 1.2.3.0/24-32'") {
		t.Errorf("prompt = %q", got)
	}
	if !strings.Contains(got, "print the entire corrected configuration") {
		t.Errorf("prompt should request a reprint: %q", got)
	}
	// Without a reason the formula still holds.
	bare := Syntax(netcfg.ParseWarning{Text: "x"})
	if !strings.HasPrefix(bare, "There is a syntax error: 'x'") {
		t.Errorf("bare prompt = %q", bare)
	}
}

func TestStructuralFollowsTable1Formula(t *testing.T) {
	f := campion.Finding{
		Kind:       campion.StructuralMismatch,
		Component:  "import route map for bgp neighbor 2.3.4.5",
		InOriginal: true,
	}
	got := Campion(f)
	want := "In the original configuration, there is a import route map for bgp neighbor " +
		"2.3.4.5, but in the translation, there is no corresponding route map."
	if !strings.HasPrefix(got, want) {
		t.Errorf("prompt = %q\nwant prefix %q", got, want)
	}
	// Reverse direction.
	f.InOriginal, f.InTranslation = false, true
	rev := Campion(f)
	if !strings.HasPrefix(rev, "In the translation, there is a import route map") {
		t.Errorf("reverse prompt = %q", rev)
	}
	if !strings.Contains(rev, "Please remove it") {
		t.Errorf("extra components should ask for removal: %q", rev)
	}
}

func TestAttributeFollowsTable1Formula(t *testing.T) {
	f := campion.Finding{
		Kind:                 campion.AttributeDifference,
		Component:            "OSPF link for Loopback0",
		TranslationComponent: "lo0.0",
		Attribute:            "cost",
		OriginalValue:        "1",
		TranslationValue:     "0",
	}
	got := Campion(f)
	want := "In the original configuration, the OSPF link for Loopback0 has cost set to 1, " +
		"but in the translation, the corresponding lo0.0 has cost set to 0."
	if !strings.HasPrefix(got, want) {
		t.Errorf("prompt = %q\nwant prefix %q", got, want)
	}
}

func TestPolicyFollowsTable1Formula(t *testing.T) {
	w := netcfg.NewRoute(netcfg.MustPrefix("1.2.3.0/25"))
	f := campion.Finding{
		Kind:                campion.PolicyBehaviorDifference,
		Policy:              "to_provider",
		Direction:           "export",
		Neighbor:            "2.3.4.5",
		Witness:             w,
		OriginalBehavior:    "ACCEPT",
		TranslationBehavior: "REJECT",
	}
	got := Campion(f)
	want := "In the original configuration, for the prefix 1.2.3.0/25, the BGP export policy " +
		"to_provider for BGP neighbor 2.3.4.5 performs the following action: ACCEPT. But, in " +
		"the translation, the corresponding BGP export policy to_provider performs the " +
		"following action: REJECT."
	if !strings.HasPrefix(got, want) {
		t.Errorf("prompt = %q\nwant prefix %q", got, want)
	}
}

func TestTopologyPassesIssueThrough(t *testing.T) {
	f := topology.Finding{Router: "R3", Issue: "Network 1.0.0.0/24 not declared"}
	got := Topology(f)
	if !strings.HasPrefix(got, "Network 1.0.0.0/24 not declared") {
		t.Errorf("prompt = %q", got)
	}
	if !strings.Contains(got, "router R3") {
		t.Errorf("prompt should address the router: %q", got)
	}
}

func TestSemanticIncludesCounterexample(t *testing.T) {
	w := netcfg.NewRoute(netcfg.MustPrefix("150.3.0.0/16"))
	w.AddCommunity(netcfg.MustCommunity("101:1"))
	v := lightyear.Violation{
		Explanation: "The route-map FILTER_COMM_OUT_R2 permits routes that have the community " +
			"101:1. However, they should be denied.",
		Witness: w,
	}
	got := Semantic(v)
	if !strings.Contains(got, "FILTER_COMM_OUT_R2 permits routes") {
		t.Errorf("prompt = %q", got)
	}
	if !strings.Contains(got, "150.3.0.0/16") || !strings.Contains(got, "101:1") {
		t.Errorf("prompt should embed the counterexample route: %q", got)
	}
	// Without a witness the prompt still reads well.
	v.Witness = nil
	if got := Semantic(v); strings.Contains(got, "Counterexample") {
		t.Errorf("no-witness prompt should omit the counterexample clause: %q", got)
	}
}

func TestComponentNounExtraction(t *testing.T) {
	cases := map[string]string{
		"import route map for bgp neighbor 1.2.3.4": "route map",
		"bgp neighbor 1.2.3.4":                      "neighbor",
		"interface ge-0/0/0.0":                      "interface",
		"prefix list our-networks":                  "prefix list",
		"mystery widget":                            "component",
	}
	for component, want := range cases {
		f := campion.Finding{Kind: campion.StructuralMismatch, Component: component, InOriginal: true}
		got := Campion(f)
		if !strings.Contains(got, "no corresponding "+want) {
			t.Errorf("component %q: prompt %q lacks noun %q", component, got, want)
		}
	}
}
