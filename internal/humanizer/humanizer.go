// Package humanizer converts verifier findings into natural-language
// correction prompts ("Since verifier feedback is often cryptic, we use
// simple code that we call a humanizer that converts the feedback to
// natural language prompts that are given to GPT-4", §1). Each error class
// has a formulaic template with fields filled from the verifier output —
// the exact scheme of the paper's Table 1 (translation) and Table 3
// (local synthesis).
package humanizer

import (
	"fmt"
	"strings"

	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// Syntax renders a Batfish parse warning as a Table 1 syntax prompt:
// "There is a syntax error: '<line>'".
func Syntax(w netcfg.ParseWarning) string {
	if w.Reason != "" {
		return fmt.Sprintf("There is a syntax error: '%s' (%s). "+
			"Please fix it and print the entire corrected configuration.", w.Text, w.Reason)
	}
	return fmt.Sprintf("There is a syntax error: '%s'. "+
		"Please fix it and print the entire corrected configuration.", w.Text)
}

// Campion renders a Campion finding with the matching Table 1 formula.
func Campion(f campion.Finding) string {
	switch f.Kind {
	case campion.StructuralMismatch:
		if f.InOriginal {
			return fmt.Sprintf("In the original configuration, there is a %s, "+
				"but in the translation, there is no corresponding %s. "+
				"Please add it and print the entire corrected configuration.",
				f.Component, componentNoun(f.Component))
		}
		return fmt.Sprintf("In the translation, there is a %s, "+
			"but in the original configuration, there is no corresponding %s. "+
			"Please remove it and print the entire corrected configuration.",
			f.Component, componentNoun(f.Component))
	case campion.AttributeDifference:
		target := f.TranslationComponent
		if target == "" {
			target = f.Component
		}
		return fmt.Sprintf("In the original configuration, the %s has %s set to %s, "+
			"but in the translation, the corresponding %s has %s set to %s. "+
			"Please fix the translation and print the entire corrected configuration.",
			f.Component, f.Attribute, f.OriginalValue, target, f.Attribute, f.TranslationValue)
	default:
		return fmt.Sprintf("In the original configuration, for the prefix %s, "+
			"the BGP %s policy %s for BGP neighbor %s performs the following action: %s. "+
			"But, in the translation, the corresponding BGP %s policy %s performs the following action: %s. "+
			"Please fix the translation and print the entire corrected configuration.",
			f.Witness.Prefix, f.Direction, f.Policy, f.Neighbor, f.OriginalBehavior,
			f.Direction, f.Policy, f.TranslationBehavior)
	}
}

// componentNoun extracts the generic noun used in the second half of the
// structural formula ("route map", "neighbor", "interface"...).
func componentNoun(component string) string {
	switch {
	case strings.Contains(component, "route map"):
		return "route map"
	case strings.Contains(component, "neighbor"):
		return "neighbor"
	case strings.Contains(component, "interface"):
		return "interface"
	case strings.Contains(component, "prefix list"):
		return "prefix list"
	default:
		return "component"
	}
}

// Topology renders a topology-verifier finding; Table 3 phrases these
// directly, so the humanizer wraps the verbatim issue with a fix request.
func Topology(f topology.Finding) string {
	return fmt.Sprintf("%s Please fix the configuration of router %s and print the entire corrected file.",
		f.Issue, f.Router)
}

// Semantic renders a local-policy violation (Table 3 semantic error):
// the explanation already follows the paper's phrasing.
func Semantic(v lightyear.Violation) string {
	msg := v.Explanation
	if v.Witness != nil {
		msg += fmt.Sprintf(" Counterexample route: %s.", v.Witness)
	}
	return msg + " Please fix the route-map and print the entire corrected configuration."
}
