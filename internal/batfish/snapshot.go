// Package batfish substitutes for Batfish (NSDI'15) in the roles the paper
// uses it for: producing parse warnings for syntax checking, answering
// "Search Route Policies" queries symbolically, and simulating the entire
// BGP control plane as the final global check (§4.1). Go has no Batfish
// bindings, so the suite is also exposed over a REST wrapper (subpackage
// rest, served by cmd/batfishd).
package batfish

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cisco"
	"repro/internal/juniper"
	"repro/internal/netcfg"
)

// DetectVendor guesses the configuration dialect from its shape: Junos
// configurations are brace-structured, IOS configurations are line based.
func DetectVendor(text string) netcfg.Vendor {
	braces := strings.Count(text, "{") + strings.Count(text, "}")
	if braces >= 2 && strings.Contains(text, ";") {
		return netcfg.VendorJuniper
	}
	return netcfg.VendorCisco
}

// ParseConfig parses a configuration in either dialect.
func ParseConfig(text string) (*netcfg.Device, []netcfg.ParseWarning) {
	if DetectVendor(text) == netcfg.VendorJuniper {
		return juniper.Parse(text)
	}
	return cisco.Parse(text)
}

// CheckSyntax returns all parse and lint warnings for a configuration in
// either dialect — the paper's syntax-verifier stage (Figure 3).
func CheckSyntax(text string) []netcfg.ParseWarning {
	if DetectVendor(text) == netcfg.VendorJuniper {
		return juniper.Check(text)
	}
	return cisco.Check(text)
}

// ParseAndCheck parses a configuration once, in either dialect, and
// returns the complete parse product: the device, the parse warnings, and
// the full syntax-check warnings. This is the single-parse feed for
// netcfg.ParseCache — one parse per configuration revision serves the
// syntax, topology, local-policy, and simulation stages alike.
func ParseAndCheck(text string) *netcfg.Parsed {
	var p netcfg.Parsed
	if DetectVendor(text) == netcfg.VendorJuniper {
		p.Device, p.ParseWarnings, p.CheckWarnings = juniper.ParseAndCheck(text)
	} else {
		p.Device, p.ParseWarnings, p.CheckWarnings = cisco.ParseAndCheck(text)
	}
	return &p
}

// NewParseCache returns a shared parse cache over both dialects, keyed by
// configuration text, so each revision is parsed exactly once per cache no
// matter how many verifier stages inspect it. The cache is stanza-enabled:
// a whole-config miss on a Cisco configuration is answered by splitting
// the text into stanzas and reassembling cached per-stanza fragment
// parses, so an iteration that edits one route map re-parses one stanza
// instead of the whole device. Junos configurations (whose parse resolves
// cross-block references in a second pass) and any split the assembler
// cannot prove safe fall back to the whole parse — results are identical
// either way, only the cost changes.
func NewParseCache() *netcfg.ParseCache {
	c := NewWholeParseCache()
	c.EnableStanzas(netcfg.StanzaSupport{
		Split: func(text string) ([]netcfg.Stanza, bool) {
			if DetectVendor(text) == netcfg.VendorJuniper {
				return nil, false
			}
			return cisco.SplitStanzas(text), true
		},
		ParseFragment: cisco.ParseFragment,
		Assemble:      cisco.AssembleFragments,
		SplitResume: func(text string, atTop bool, startLine int) ([]netcfg.Stanza, []bool, bool) {
			if DetectVendor(text) == netcfg.VendorJuniper {
				return nil, nil, false
			}
			return cisco.SplitStanzasResume(text, atTop, startLine)
		},
	})
	return c
}

// NewWholeParseCache returns a parse cache without the stanza sub-cache:
// every distinct revision is parsed in full. This is the baseline the
// incremental-parse equivalence tests compare against.
func NewWholeParseCache() *netcfg.ParseCache {
	return netcfg.NewParseCache(ParseAndCheck)
}

// SplitStanzas segments a configuration into addressable stanzas in either
// dialect — the unit of the batch protocol's config deltas. Lossless:
// netcfg.JoinStanzas over the result reproduces the text exactly.
func SplitStanzas(text string) []netcfg.Stanza {
	if DetectVendor(text) == netcfg.VendorJuniper {
		return juniper.SplitStanzas(text)
	}
	return cisco.SplitStanzas(text)
}

// Snapshot is a set of parsed device configurations, keyed by hostname —
// the folder the paper's Composer assembles "for Batfish".
type Snapshot struct {
	Devices  map[string]*netcfg.Device
	Warnings map[string][]netcfg.ParseWarning
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Devices:  make(map[string]*netcfg.Device),
		Warnings: make(map[string][]netcfg.ParseWarning),
	}
}

// AddConfig parses and adds one configuration under the given name.
func (s *Snapshot) AddConfig(name, text string) {
	dev, warns := ParseConfig(text)
	if dev.Hostname == "" {
		dev.Hostname = name
	}
	s.Devices[name] = dev
	s.Warnings[name] = warns
}

// DeviceNames returns the device names in sorted order.
func (s *Snapshot) DeviceNames() []string {
	names := make([]string, 0, len(s.Devices))
	for n := range s.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LoadSnapshot reads every *.cfg file in a directory into a snapshot, the
// device name being the file basename without extension.
func LoadSnapshot(dir string) (*Snapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("reading snapshot directory: %w", err)
	}
	s := NewSnapshot()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".cfg") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", e.Name(), err)
		}
		s.AddConfig(strings.TrimSuffix(e.Name(), ".cfg"), string(data))
	}
	if len(s.Devices) == 0 {
		return nil, fmt.Errorf("no *.cfg files in %s", dir)
	}
	return s, nil
}
