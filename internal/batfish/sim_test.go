package batfish

import (
	"testing"

	"repro/internal/netcfg"
)

// twoNodeConfigs builds a pair of directly-peered routers: A (AS 1,
// originating 10.0.0.0/8) and B (AS 2).
func twoNodeConfigs(t *testing.T, exportMap, importMap string) (*netcfg.Device, *netcfg.Device) {
	t.Helper()
	a := netcfg.NewDevice("A", netcfg.VendorCisco)
	ifa := a.EnsureInterface("eth0")
	ifa.Address = netcfg.MustPrefix("192.168.0.0/24")
	ifa.Address.Addr = mustIP(t, "192.168.0.1")
	ifa.HasAddress = true
	ba := a.EnsureBGP(1)
	ba.Networks = append(ba.Networks, netcfg.MustPrefix("10.0.0.0/8"))
	na := ba.EnsureNeighbor(mustIP(t, "192.168.0.2"))
	na.RemoteAS = 2
	na.ExportPolicy = exportMap

	b := netcfg.NewDevice("B", netcfg.VendorCisco)
	ifb := b.EnsureInterface("eth0")
	ifb.Address = netcfg.MustPrefix("192.168.0.0/24")
	ifb.Address.Addr = mustIP(t, "192.168.0.2")
	ifb.HasAddress = true
	bb := b.EnsureBGP(2)
	nb := bb.EnsureNeighbor(mustIP(t, "192.168.0.1"))
	nb.RemoteAS = 1
	nb.ImportPolicy = importMap
	return a, b
}

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := netcfg.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSimBasicPropagation(t *testing.T) {
	a, b := twoNodeConfigs(t, "", "")
	sim := NewSim()
	if err := sim.AddDevice("A", a); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddDevice("B", b); err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	route := res.RIB["B"][netcfg.MustPrefix("10.0.0.0/8")]
	if route == nil {
		t.Fatal("B did not learn 10.0.0.0/8")
	}
	if len(route.ASPath) != 1 || route.ASPath[0] != 1 {
		t.Errorf("AS path = %v, want [1]", route.ASPath)
	}
	if !res.CanReach("B", netcfg.MustPrefix("10.1.0.0/16")) {
		t.Error("covering-prefix reachability failed")
	}
}

func TestSimExportPolicyFilters(t *testing.T) {
	a, b := twoNodeConfigs(t, "BLOCK", "")
	a.RoutePolicies["BLOCK"] = &netcfg.RoutePolicy{Name: "BLOCK", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny},
	}}
	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	res := sim.Run()
	if res.RIB["B"][netcfg.MustPrefix("10.0.0.0/8")] != nil {
		t.Error("deny-all export leaked a route")
	}
}

func TestSimImportPolicyTransforms(t *testing.T) {
	a, b := twoNodeConfigs(t, "", "TAG")
	b.CommunityLists["1"] = &netcfg.CommunityList{Name: "1", Entries: []netcfg.CommunityListEntry{
		{Action: netcfg.Permit, Community: netcfg.MustCommunity("100:1")},
	}}
	b.RoutePolicies["TAG"] = &netcfg.RoutePolicy{Name: "TAG", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Permit, Sets: []netcfg.SetAction{
			netcfg.SetCommunity{Communities: []netcfg.Community{netcfg.MustCommunity("100:1")},
				Additive: true},
		}},
	}}
	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	res := sim.Run()
	route := res.RIB["B"][netcfg.MustPrefix("10.0.0.0/8")]
	if route == nil || !route.HasCommunity(netcfg.MustCommunity("100:1")) {
		t.Fatalf("import transform missing: %v", route)
	}
}

func TestSimUndefinedPolicyFailsClosed(t *testing.T) {
	a, b := twoNodeConfigs(t, "NO_SUCH_MAP", "")
	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	res := sim.Run()
	if res.RIB["B"][netcfg.MustPrefix("10.0.0.0/8")] != nil {
		t.Error("undefined export policy should announce nothing")
	}
}

func TestSimOneSidedPeeringNeverComesUp(t *testing.T) {
	a, b := twoNodeConfigs(t, "", "")
	b.BGP.Neighbors = nil // B does not declare A
	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	res := sim.Run()
	if res.RIB["B"][netcfg.MustPrefix("10.0.0.0/8")] != nil {
		t.Error("one-sided peering propagated a route")
	}
}

func TestSimExternalStubOriginatesAndReceives(t *testing.T) {
	a, b := twoNodeConfigs(t, "", "")
	// External stub E peers with A at 1.0.0.2; A declares it.
	ifa := a.EnsureInterface("eth1")
	ifa.Address = netcfg.Prefix{Addr: mustIP(t, "1.0.0.1"), Len: 24}
	ifa.HasAddress = true
	a.BGP.EnsureNeighbor(mustIP(t, "1.0.0.2")).RemoteAS = 99
	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	if err := sim.AddExternal("E", mustIP(t, "1.0.0.2"), 99,
		[]netcfg.Prefix{netcfg.MustPrefix("99.0.0.0/8")}); err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.RIB["B"][netcfg.MustPrefix("99.0.0.0/8")] == nil {
		t.Error("external origination did not propagate A->B")
	}
	e := res.RIB["E"][netcfg.MustPrefix("10.0.0.0/8")]
	if e == nil {
		t.Fatal("external stub did not receive A's network")
	}
	if len(e.ASPath) != 1 || e.ASPath[0] != 1 {
		t.Errorf("external AS path = %v", e.ASPath)
	}
}

func TestSimASPathLoopPrevention(t *testing.T) {
	// Triangle A-B, B-C, C-A with same AS on A and C: C must reject A's
	// route via B (its own AS in path simulation: C has AS 1 too).
	a, b := twoNodeConfigs(t, "", "")
	// C peers with B; C reuses AS 1.
	ifb := b.EnsureInterface("eth1")
	ifb.Address = netcfg.Prefix{Addr: mustIP(t, "192.168.1.1"), Len: 24}
	ifb.HasAddress = true
	b.BGP.EnsureNeighbor(mustIP(t, "192.168.1.2")).RemoteAS = 1

	c := netcfg.NewDevice("C", netcfg.VendorCisco)
	ifc := c.EnsureInterface("eth0")
	ifc.Address = netcfg.Prefix{Addr: mustIP(t, "192.168.1.2"), Len: 24}
	ifc.HasAddress = true
	cb := c.EnsureBGP(1)
	cb.EnsureNeighbor(mustIP(t, "192.168.1.1")).RemoteAS = 2

	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	_ = sim.AddDevice("C", c)
	res := sim.Run()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.RIB["C"][netcfg.MustPrefix("10.0.0.0/8")] != nil {
		t.Error("loop prevention failed: C accepted a route with its own AS")
	}
}

func TestSimSplitHorizon(t *testing.T) {
	a, b := twoNodeConfigs(t, "", "")
	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	res := sim.Run()
	// A's own originated route must remain locally originated (not
	// replaced by B echoing it back).
	route := res.RIB["A"][netcfg.MustPrefix("10.0.0.0/8")]
	if route == nil || len(route.ASPath) != 0 {
		t.Errorf("origin route corrupted: %v", route)
	}
}

func TestSimDuplicateNodeRejected(t *testing.T) {
	a, _ := twoNodeConfigs(t, "", "")
	sim := NewSim()
	if err := sim.AddDevice("A", a); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddDevice("A", a); err == nil {
		t.Error("duplicate device accepted")
	}
	if err := sim.AddExternal("A", 1, 1, nil); err == nil {
		t.Error("duplicate external accepted")
	}
}
