package batfish

import (
	"fmt"

	"repro/internal/netcfg"
	"repro/internal/symbolic"
)

// RouteConstraints restricts the input announcements of a SearchRoutePolicies
// query, mirroring Batfish's BgpRouteConstraints: an optional prefix space
// and communities that must or must not be present.
type RouteConstraints struct {
	// Prefix restricts inputs to announcements within this prefix
	// (any length at or above the prefix length). Empty means any prefix.
	Prefix string `json:"prefix,omitempty"`
	// HasCommunities must all be carried by the input route.
	HasCommunities []string `json:"has_communities,omitempty"`
	// LacksCommunities must all be absent from the input route.
	LacksCommunities []string `json:"lacks_communities,omitempty"`
	// Protocol restricts the input protocol ("bgp", "ospf", "connected",
	// "static"). Empty means BGP.
	Protocol string `json:"protocol,omitempty"`
}

// Space compiles the constraints into a symbolic route space.
func (rc RouteConstraints) Space() (symbolic.Space, error) {
	cls := symbolic.FullClass()
	if rc.Prefix != "" {
		p, err := netcfg.ParsePrefix(rc.Prefix)
		if err != nil {
			return nil, fmt.Errorf("constraint prefix: %w", err)
		}
		cls.Prefixes = symbolic.PrefixSet{symbolic.NewAtom(p, p.Len, 32)}
	}
	cond := symbolic.TrueComm()
	for _, cs := range rc.HasCommunities {
		c, err := netcfg.ParseCommunity(cs)
		if err != nil {
			return nil, fmt.Errorf("constraint community: %w", err)
		}
		next, ok := cond.And(symbolic.RequireComm(c))
		if !ok {
			return nil, fmt.Errorf("inconsistent community constraints")
		}
		cond = next
	}
	for _, cs := range rc.LacksCommunities {
		c, err := netcfg.ParseCommunity(cs)
		if err != nil {
			return nil, fmt.Errorf("constraint community: %w", err)
		}
		next, ok := cond.And(symbolic.ForbidComm(c))
		if !ok {
			return nil, fmt.Errorf("inconsistent community constraints")
		}
		cond = next
	}
	cls.Comms = cond
	switch rc.Protocol {
	case "", "bgp":
		cls.Protos = symbolic.MaskBGP
	case "ospf":
		cls.Protos = symbolic.MaskOSPF
	case "connected":
		cls.Protos = symbolic.MaskConnected
	case "static":
		cls.Protos = symbolic.MaskStatic
	case "any":
		cls.Protos = symbolic.MaskAll
	default:
		return nil, fmt.Errorf("unknown protocol constraint %q", rc.Protocol)
	}
	return symbolic.Space{cls}, nil
}

// SearchQuery asks whether the named policy of a device takes the given
// action on any route satisfying the constraints.
type SearchQuery struct {
	Policy      string           `json:"policy"`
	Action      string           `json:"action"` // "permit" or "deny"
	Constraints RouteConstraints `json:"constraints"`
}

// SearchResult reports a witness route if one exists.
type SearchResult struct {
	Found   bool   `json:"found"`
	Witness string `json:"witness,omitempty"` // human-readable route

	// Structured witness fields for programmatic consumers.
	WitnessPrefix      string   `json:"witness_prefix,omitempty"`
	WitnessCommunities []string `json:"witness_communities,omitempty"`
	WitnessProtocol    string   `json:"witness_protocol,omitempty"`
}

// SearchRoutePolicies answers a query against a device, mirroring the
// Batfish question of the same name the paper uses as its semantic
// verifier for local policies (§4.1).
func SearchRoutePolicies(dev *netcfg.Device, q SearchQuery) (SearchResult, error) {
	pol := dev.RoutePolicies[q.Policy]
	if pol == nil {
		return SearchResult{}, fmt.Errorf("policy %q is not defined on %s", q.Policy, dev.Hostname)
	}
	input, err := q.Constraints.Space()
	if err != nil {
		return SearchResult{}, err
	}
	var action netcfg.Action
	switch q.Action {
	case "permit":
		action = netcfg.Permit
	case "deny":
		action = netcfg.Deny
	default:
		return SearchResult{}, fmt.Errorf("action must be permit or deny, got %q", q.Action)
	}
	witness, found := symbolic.SearchPolicy(pol, dev, symbolic.Query{Input: input, Action: action})
	if !found {
		return SearchResult{Found: false}, nil
	}
	return SearchResult{
		Found:              true,
		Witness:            witness.String(),
		WitnessPrefix:      witness.Prefix.String(),
		WitnessCommunities: witness.CommunityStrings(),
		WitnessProtocol:    witness.Protocol.String(),
	}, nil
}
