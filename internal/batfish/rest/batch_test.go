package rest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/batfish"
	"repro/internal/core"
	"repro/internal/exampledata"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/suite"
)

func lightyearRequirement() lightyear.Requirement {
	return lightyear.Requirement{
		Kind:      lightyear.EgressDropsCommunity,
		Router:    "R1",
		Policy:    "FILTER",
		Community: netcfg.MustCommunity("100:1"),
	}
}

// batchChecks builds one check of every kind against a star-3 scenario.
func batchChecks(t *testing.T) []suite.Check {
	t.Helper()
	topo, err := netgen.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	req := lightyearRequirement()
	return []suite.Check{
		{Kind: suite.KindSyntax, Config: "configure terminal\nhostname R1\n"},
		{Kind: suite.KindTopology, Spec: topo.Router("R2"), Config: "hostname R2\n"},
		{Kind: suite.KindLocal, Req: &req, Config: "hostname R1\n" +
			"ip community-list 1 permit 100:1\n" +
			"route-map FILTER permit 10\n"},
		{Kind: suite.KindDiff, Original: exampledata.CiscoExample,
			Config: "system {\n    host-name border1;\n}\n"},
	}
}

// TestBatchRoundTrip ships one check of every kind in one /v1/batch
// round-trip and requires the results to match the per-check endpoints.
func TestBatchRoundTrip(t *testing.T) {
	c := newTestClient(t)
	checks := batchChecks(t)
	before := c.Calls()
	results, err := c.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Calls() - before; got != 1 {
		t.Errorf("batched round-trips = %d, want 1", got)
	}
	if len(results) != len(checks) {
		t.Fatalf("results = %d, want %d", len(results), len(checks))
	}
	if len(results[0].Warnings) == 0 {
		t.Error("syntax check lost its warning")
	}
	if len(results[1].Findings) == 0 {
		t.Error("topology check lost its findings")
	}
	if !results[2].Violated || results[2].Violation == nil {
		t.Error("local check lost its violation")
	}
	if len(results[3].Diffs) == 0 {
		t.Error("diff check lost its findings")
	}
	// Cross-check one result against the per-check endpoint.
	warns, err := c.CheckSyntax(checks[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warns, results[0].Warnings) {
		t.Errorf("batched syntax = %v, per-check = %v", results[0].Warnings, warns)
	}
}

// TestBatchFallbackOldServer points the client at a server without the
// batch endpoint: the batched path must return identical results over per-check
// calls, and pay the 404 probe only once.
func TestBatchFallbackOldServer(t *testing.T) {
	full := NewHandler()
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathBatch {
			http.NotFound(w, r)
			return
		}
		full.ServeHTTP(w, r)
	}))
	t.Cleanup(old.Close)
	c := NewClient(old.URL)
	checks := batchChecks(t)

	before := c.Calls()
	results, err := c.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	// One failed probe plus one call per check.
	if got := c.Calls() - before; got != int64(len(checks))+1 {
		t.Errorf("round-trips = %d, want %d (probe + per-check)", got, len(checks)+1)
	}
	if !results[2].Violated {
		t.Error("fallback lost the local-policy violation")
	}

	// The probe is remembered: the second batch goes straight to
	// per-check calls.
	before = c.Calls()
	if _, err := c.CheckBatch(context.Background(), checks); err != nil {
		t.Fatal(err)
	}
	if got := c.Calls() - before; got != int64(len(checks)) {
		t.Errorf("round-trips after probe = %d, want %d", got, len(checks))
	}
}

// TestBatchVersionRejected points the client at a server that refuses the
// batch protocol version (as an old strict decoder or a version-gated
// server would): the batched path must downgrade to per-check calls, remember
// the rejection, and still return full results.
func TestBatchVersionRejected(t *testing.T) {
	full := NewHandler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathBatch {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "unsupported batch protocol version 2 (server speaks 1)"})
			return
		}
		full.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	checks := batchChecks(t)

	before := c.Calls()
	results, err := c.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Calls() - before; got != int64(len(checks))+1 {
		t.Errorf("round-trips = %d, want %d (rejected probe + per-check)", got, len(checks)+1)
	}
	if !results[2].Violated {
		t.Error("version fallback lost the local-policy violation")
	}
	before = c.Calls()
	if _, err := c.CheckBatch(context.Background(), checks); err != nil {
		t.Fatal(err)
	}
	if got := c.Calls() - before; got != int64(len(checks)) {
		t.Errorf("round-trips after rejection = %d, want %d", got, len(checks))
	}
}

// TestVersionGateRejectsNewerDialect pins the server half of the version
// negotiation: a request claiming a newer protocol than the server speaks
// is rejected with 400, while the current and pre-versioning (0) dialects
// are served.
func TestVersionGateRejectsNewerDialect(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	t.Cleanup(srv.Close)
	post := func(version int) int {
		body := fmt.Sprintf(`{"version":%d,"checks":[{"kind":"syntax","config":"hostname R1\n"}]}`,
			version)
		resp, err := http.Post(srv.URL+PathBatch, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(BatchProtocolVersion + 1); got != http.StatusBadRequest {
		t.Errorf("newer dialect: HTTP %d, want 400", got)
	}
	for _, v := range []int{0, BatchProtocolVersion} {
		if got := post(v); got != http.StatusOK {
			t.Errorf("version %d: HTTP %d, want 200", v, got)
		}
	}
}

// TestPerCheckPayloadStaysV1 proves the old-server fallback contract end
// to end: a strict pre-attachment server — one whose requirement decoder
// rejects unknown fields, exactly like a binary built before the
// attachment model — must still serve the client's per-check local call
// even when the engine-side requirement carries an attachment identity,
// because the client strips the advisory identity from the v1 wire form.
func TestPerCheckPayloadStaysV1(t *testing.T) {
	// The pre-attachment shape of LocalRequest, decoded strictly.
	type v1Requirement struct {
		Kind        lightyear.ReqKind
		Router      string
		Policy      string
		Community   netcfg.Community
		Communities []netcfg.Community
		Description string
	}
	type v1LocalRequest struct {
		Config      string        `json:"config"`
		Requirement v1Requirement `json:"requirement"`
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathLocal {
			t.Errorf("unexpected path %s", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var req v1LocalRequest
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		dev, _ := batfish.ParseConfig(req.Config)
		v, bad := lightyear.Check(dev, lightyear.Requirement{
			Kind: req.Requirement.Kind, Router: req.Requirement.Router,
			Policy: req.Requirement.Policy, Community: req.Requirement.Community,
			Communities: req.Requirement.Communities, Description: req.Requirement.Description,
		})
		resp := LocalResponse{Violated: bad}
		if bad {
			resp.Violation = &v
		}
		writeJSON(w, http.StatusOK, resp)
	}))
	t.Cleanup(srv.Close)

	req := lightyearRequirement()
	req.Attachment = lightyear.AttachmentRef{Router: "R1", Peer: "ISP2", Direction: lightyear.DirOut}
	c := NewClient(srv.URL)
	_, bad, err := c.CheckLocalPolicy("hostname R1\n"+
		"ip community-list 1 permit 100:1\n"+
		"route-map FILTER permit 10\n", req)
	if err != nil {
		t.Fatalf("strict v1 server rejected the per-check payload: %v", err)
	}
	if !bad {
		t.Error("violation lost on the v1 wire")
	}
}

// TestPrefetchBatchesAndCaches drives core's CachedVerifier over the REST
// client: a prefetch is one round-trip, and the stage-scan reads that
// follow are pure cache hits costing zero HTTP calls.
func TestPrefetchBatchesAndCaches(t *testing.T) {
	c := newTestClient(t)
	cv := core.NewCachedVerifier(c)
	if !cv.Batched() {
		t.Fatal("rest.Client must be detected as a batch verifier")
	}
	checks := batchChecks(t)

	before := c.Calls()
	if err := cv.Prefetch(checks); err != nil {
		t.Fatal(err)
	}
	if got := c.Calls() - before; got != 1 {
		t.Errorf("prefetch round-trips = %d, want 1", got)
	}

	// Reading every prefetched result back must not touch the network.
	before = c.Calls()
	warns, err := cv.CheckSyntax(checks[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) == 0 {
		t.Error("prefetched syntax warnings missing")
	}
	if _, err := cv.VerifyTopology(*checks[1].Spec, checks[1].Config); err != nil {
		t.Fatal(err)
	}
	if _, bad, err := cv.CheckLocalPolicy(checks[2].Config, *checks[2].Req); err != nil || !bad {
		t.Fatalf("prefetched local check: bad=%v err=%v, want violation", bad, err)
	}
	if _, err := cv.DiffTranslation(checks[3].Original, checks[3].Config); err != nil {
		t.Fatal(err)
	}
	if got := c.Calls() - before; got != 0 {
		t.Errorf("round-trips after prefetch = %d, want 0 (all cache hits)", got)
	}

	// Re-prefetching the same checks is free: everything is cached.
	before = c.Calls()
	if err := cv.Prefetch(checks); err != nil {
		t.Fatal(err)
	}
	if got := c.Calls() - before; got != 0 {
		t.Errorf("re-prefetch round-trips = %d, want 0", got)
	}
	stats := cv.Stats()
	if stats.Prefetches != 1 || stats.BatchedChecks != uint64(len(checks)) {
		t.Errorf("stats = %+v, want 1 prefetch carrying %d checks", stats, len(checks))
	}
}
