package rest

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/topology"
)

// ringReplicas is the number of virtual nodes each shard contributes to
// the consistent-hash ring. More replicas smooth the key distribution;
// 64 keeps the ring small while staying within a few percent of even on
// realistic check populations.
const ringReplicas = 64

// shard is one batfishd endpoint of a ShardedClient, with its health flag
// and round-trip accounting.
type shard struct {
	endpoint string
	client   *Client

	dead     atomic.Bool
	batches  atomic.Int64 // batched round-trips attempted against this shard
	failures atomic.Int64 // transport failures observed (cumulative)
	streak   atomic.Int64 // consecutive transport failures; a success resets it
	batchNS  atomic.Int64 // cumulative latency of batched round-trips

	tracer *obs.Tracer // nil until SetObs; failover events only
}

// noteSuccess records a served request: the shard is demonstrably alive,
// so its consecutive-failure budget starts over. Without the reset a
// long run against a slightly flaky fleet would accumulate isolated
// timeouts until every shard crossed the budget and was failed over —
// the budget is meant to catch a shard that is failing now, not one that
// ever failed.
func (s *shard) noteSuccess() { s.streak.Store(0) }

// ShardStat is one shard's counters, for benchmarks and diagnostics.
type ShardStat struct {
	// Endpoint is the shard's base URL.
	Endpoint string
	// Calls is the total HTTP round-trips issued to the shard (batched,
	// per-check fallback, health, and routed per-check traffic alike).
	Calls int64
	// Batches is the number of batched round-trips attempted.
	Batches int64
	// Failures is the number of transport failures observed (cumulative;
	// the failover budget tracks the consecutive streak separately).
	Failures int64
	// Retries is the number of transport-layer retry attempts the shard's
	// client issued riding out transient faults.
	Retries int64
	// Latency is the cumulative wall-clock of the batched round-trips.
	Latency time.Duration
	// Dead reports the shard is currently failed over.
	Dead bool
}

// String renders the counters.
func (s ShardStat) String() string {
	state := "up"
	if s.Dead {
		state = "DEAD"
	}
	return fmt.Sprintf("%s: %d calls, %d batches (%v), %d failures, %d retries, %s",
		s.Endpoint, s.Calls, s.Batches, s.Latency, s.Failures, s.Retries, state)
}

// ringPoint is one virtual node: a position on the hash ring owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// ShardedClient fans the verification suite out over several batfishd
// endpoints. It implements core.Verifier and the engine's backend seam
// (suite.Backend): each CheckBatch partitions its checks over a
// consistent-hash ring keyed by suite.ShardKey — whole-config checks stick
// to one shard for parse locality, attachment-scoped checks spread
// independently — and issues the per-shard batches concurrently, so an
// iteration costs at most one round-trip per shard, in parallel.
//
// Failover: a transport-level failure (connection refused, connection
// died) triggers a health probe of the shard — a dead endpoint fails the
// probe and is failed over at once, while a slow-but-alive one (a client
// timeout on a loaded shard) is kept until it exhausts a small failure
// budget, so one timeout cannot cascade a loaded fleet into "all shards
// dead". A failed-over shard's checks re-hash onto the survivors: the
// ring walk skips dead shards, so the surviving assignment is exactly
// what the ring would have produced without the dead shard, and results
// are unchanged because every check is a pure function of its inputs.
// Served errors (bad request, semantic rejections) propagate instead:
// they would reproduce identically on any shard. Health re-probes dead
// shards and revives the ones that answer. Each shard keeps its own v1
// per-check fallback: a shard running a pre-batch server degrades to
// per-check calls without affecting its peers.
//
// ShardedClient is safe for concurrent use.
type ShardedClient struct {
	shards []*shard
	ring   []ringPoint
	// digests memoizes per-revision hashing for the ring's routing keys
	// (suite.ShardKeyD): a configuration is hashed once per revision no
	// matter how many checks route by it.
	digests *suite.Digests
}

// NewShardedClient returns a client fanning out over the given batfishd
// base URLs with default per-endpoint options.
func NewShardedClient(endpoints []string) (*ShardedClient, error) {
	return NewShardedClientOpts(endpoints, ClientOptions{})
}

// NewShardedClientOpts returns a sharded client with tuned per-endpoint
// transport options. Endpoints must be non-empty and distinct; an empty
// element is rejected loudly — a silently dropped element would quietly
// build a smaller ring than the operator asked for.
func NewShardedClientOpts(endpoints []string, opts ClientOptions) (*ShardedClient, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("sharded client: no endpoints")
	}
	seen := map[string]bool{}
	s := &ShardedClient{digests: suite.NewDigests()}
	for i, ep := range endpoints {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			return nil, fmt.Errorf("sharded client: endpoint %d of %d is empty", i+1, len(endpoints))
		}
		base := strings.TrimRight(ep, "/")
		if seen[base] {
			return nil, fmt.Errorf("sharded client: duplicate endpoint %q", ep)
		}
		seen[base] = true
		s.shards = append(s.shards, &shard{endpoint: base, client: NewClientOpts(base, opts)})
	}
	s.ring = buildRing(s.shards)
	return s, nil
}

// SplitEndpoints normalizes a repeatable, comma-separated endpoint flag
// into the endpoint list a sharded client is built from: every value may
// carry several comma-separated endpoints, whitespace is trimmed, and an
// empty element is a loud error rather than a silently smaller ring.
func SplitEndpoints(values []string) ([]string, error) {
	var out []string
	for _, v := range values {
		for _, ep := range strings.Split(v, ",") {
			ep = strings.TrimSpace(ep)
			if ep == "" {
				return nil, fmt.Errorf("empty endpoint element in %q", v)
			}
			out = append(out, ep)
		}
	}
	return out, nil
}

// buildRing places ringReplicas virtual nodes per shard on the hash ring.
func buildRing(shards []*shard) []ringPoint {
	ring := make([]ringPoint, 0, len(shards)*ringReplicas)
	for i, sh := range shards {
		for r := 0; r < ringReplicas; r++ {
			ring = append(ring, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s|%d", sh.endpoint, r)),
				shard: i,
			})
		}
	}
	sort.Slice(ring, func(a, b int) bool {
		if ring[a].hash != ring[b].hash {
			return ring[a].hash < ring[b].hash
		}
		// Tie-break on shard index so the ring order is deterministic even
		// in the (vanishing) event of a hash collision.
		return ring[a].shard < ring[b].shard
	})
	return ring
}

// hashKey is the ring's hash function: 64-bit FNV-1a, deterministic across
// processes so every client agrees on the assignment.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// normalizeEndpoint brings an endpoint to the ring's canonical form — the
// same trimming NewShardedClientOpts applies — so a server rebuilding the
// client's ring from a wire-shipped endpoint list lands every virtual
// node on the same positions.
func normalizeEndpoint(ep string) string {
	return strings.TrimRight(strings.TrimSpace(ep), "/")
}

// endpointRing is the consistent-hash ring over a fleet's endpoint list
// alone — the placement function of ShardedClient without its liveness
// and failover state. Servers handed the fleet list by a ring-scoped
// scenario warm (protocol v2) rebuild the ring with it and warm only the
// keys they own; because hashKey and the virtual-node layout are shared
// with buildRing, the server's notion of ownership is byte-for-byte the
// client's.
type endpointRing struct {
	points    []ringPoint
	endpoints []string
}

// newEndpointRing builds the ring for a normalized endpoint list.
func newEndpointRing(endpoints []string) *endpointRing {
	r := &endpointRing{}
	for _, ep := range endpoints {
		r.endpoints = append(r.endpoints, normalizeEndpoint(ep))
	}
	for i, ep := range r.endpoints {
		for v := 0; v < ringReplicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s|%d", ep, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// contains reports whether the endpoint is part of the ring.
func (r *endpointRing) contains(ep string) bool {
	ep = normalizeEndpoint(ep)
	for _, have := range r.endpoints {
		if have == ep {
			return true
		}
	}
	return false
}

// owner returns the endpoint the ring routes key to.
func (r *endpointRing) owner(key string) string {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.endpoints[r.points[i%len(r.points)].shard]
}

// shardFor walks the ring clockwise from the key's position to the first
// live shard. Skipping dead shards (rather than rebuilding the ring) makes
// failover minimal: only the dead shard's keys move, and they land exactly
// where the ring without that shard would have put them. Returns -1 when
// every shard is dead.
func (s *ShardedClient) shardFor(key string) int {
	h := hashKey(key)
	n := len(s.ring)
	start := sort.Search(n, func(i int) bool { return s.ring[i].hash >= h })
	for probed := 0; probed < n; probed++ {
		p := s.ring[(start+probed)%n]
		if !s.shards[p.shard].dead.Load() {
			return p.shard
		}
	}
	return -1
}

// Capabilities implements suite.Backend.
func (s *ShardedClient) Capabilities() suite.Capabilities {
	return suite.Capabilities{Batched: true}
}

// Calls returns the total HTTP round-trips issued across all shards.
func (s *ShardedClient) Calls() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.client.Calls()
	}
	return total
}

// Retries returns the transport-layer retry attempts summed across all
// shards — the fleet-wide counterpart of Client.Retries, so stats
// roll-ups see one number whichever backend is in play.
func (s *ShardedClient) Retries() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.client.Retries()
	}
	return total
}

// SetObs fans the registry and tracer out to every shard's client (each
// registers its counters under its own endpoint label) and arms the
// per-shard failover trace events.
func (s *ShardedClient) SetObs(reg *obs.Registry, tr *obs.Tracer) {
	for _, sh := range s.shards {
		sh.client.SetObs(reg, tr)
		sh.tracer = tr
	}
}

// BytesSent returns the request-body bytes put on the wire across all
// shards.
func (s *ShardedClient) BytesSent() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.client.BytesSent()
	}
	return total
}

// Stats returns a snapshot of every shard's counters, in endpoint order.
func (s *ShardedClient) Stats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		out[i] = ShardStat{
			Endpoint: sh.endpoint,
			Calls:    sh.client.Calls(),
			Batches:  sh.batches.Load(),
			Failures: sh.failures.Load(),
			Retries:  sh.client.Retries(),
			Latency:  time.Duration(sh.batchNS.Load()),
			Dead:     sh.dead.Load(),
		}
	}
	return out
}

// Health probes every shard, reviving dead shards that answer and marking
// unresponsive ones dead. It reports an error only when no shard is
// healthy — the ring keeps serving as long as one survivor remains.
func (s *ShardedClient) Health() error {
	healthy := 0
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.client.Health(); err != nil {
			sh.dead.Store(true)
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %s: %w", sh.endpoint, err)
			}
			continue
		}
		sh.dead.Store(false)
		healthy++
	}
	if healthy == 0 {
		return fmt.Errorf("sharded client: no healthy shards: %w", firstErr)
	}
	return nil
}

// maxTransportFailures is the per-shard consecutive-failure budget: a
// shard that keeps failing at the transport layer is failed over even
// when its health endpoint still answers, so a wedged shard cannot stall
// a run with endless retries. A served request resets the streak (see
// noteSuccess) — only failures with no success in between count.
const maxTransportFailures = 3

// noteTransportFailure records a transport failure and decides whether to
// fail the shard over. A quick health probe distinguishes a dead endpoint
// (probe fails → failed over immediately) from a slow-but-alive one — a
// client-side timeout on a big batch must not cascade a loaded fleet into
// "all shards dead" — but an alive shard that exhausts its consecutive
// failure budget is failed over anyway.
func (s *shard) noteTransportFailure() {
	s.failures.Add(1)
	if s.streak.Add(1) >= maxTransportFailures || s.client.Health() != nil {
		if !s.dead.Swap(true) && s.tracer != nil {
			s.tracer.Emit(obs.Event{Stage: obs.StageFailover, Shard: s.endpoint, Outcome: "dead"})
		}
	}
}

// CheckBatch implements suite.Backend: partition the checks over the ring,
// issue one batched round-trip per shard concurrently, and re-hash the
// work of any shard that fails at the transport layer onto the survivors
// until every check has a result or no shard remains.
func (s *ShardedClient) CheckBatch(ctx context.Context, checks []suite.Check) ([]suite.Result, error) {
	if len(checks) == 0 {
		return nil, nil
	}
	out := make([]suite.Result, len(checks))
	// pending holds the original indices of checks still needing results;
	// each round assigns them to live shards, runs the per-shard batches
	// concurrently, and retries the transport casualties next round.
	pending := make([]int, len(checks))
	for i := range checks {
		pending[i] = i
	}
	for len(pending) > 0 {
		groups := map[int][]int{}
		for _, idx := range pending {
			si := s.shardFor(suite.ShardKeyD(checks[idx], s.digests))
			if si < 0 {
				return nil, fmt.Errorf("sharded client: all %d shards dead", len(s.shards))
			}
			groups[si] = append(groups[si], idx)
		}
		type groupOutcome struct {
			shard int
			idxs  []int
			err   error
		}
		outcomes := make([]groupOutcome, 0, len(groups))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for si, idxs := range groups {
			si, idxs := si, idxs
			wg.Add(1)
			go func() {
				defer wg.Done()
				sh := s.shards[si]
				batch := make([]suite.Check, len(idxs))
				for j, idx := range idxs {
					batch[j] = checks[idx]
				}
				sh.batches.Add(1)
				start := time.Now()
				results, err := sh.client.CheckBatch(ctx, batch)
				sh.batchNS.Add(int64(time.Since(start)))
				if err == nil && len(results) != len(batch) {
					err = fmt.Errorf("shard %s: %d results for %d checks",
						sh.endpoint, len(results), len(batch))
				}
				if err == nil {
					for j, idx := range idxs {
						out[idx] = results[j]
					}
				}
				mu.Lock()
				outcomes = append(outcomes, groupOutcome{shard: si, idxs: idxs, err: err})
				mu.Unlock()
			}()
		}
		wg.Wait()
		// A cancelled or expired caller context surfaces as transport
		// errors on every in-flight request; that is the caller's doing,
		// not shard death — propagate it without failing anything over.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pending = pending[:0]
		for _, oc := range outcomes {
			switch {
			case oc.err == nil:
				s.shards[oc.shard].noteSuccess()
			case IsTransportError(oc.err):
				// The shard is down: fail it over and re-hash its checks
				// onto the survivors next round.
				s.shards[oc.shard].noteTransportFailure()
				pending = append(pending, oc.idxs...)
			default:
				// A served error reproduces on any shard; propagate.
				return nil, fmt.Errorf("shard %s: %w", s.shards[oc.shard].endpoint, oc.err)
			}
		}
		sort.Ints(pending)
	}
	return out, nil
}

// withFailover runs one per-shard call against the ring's live owner of
// key, failing dead shards over and retrying on the survivors — the
// single failover loop behind every ctx-less Verifier entry point.
func (s *ShardedClient) withFailover(key string, fn func(c *Client) error) error {
	for {
		si := s.shardFor(key)
		if si < 0 {
			return fmt.Errorf("sharded client: all %d shards dead", len(s.shards))
		}
		err := fn(s.shards[si].client)
		if err == nil {
			s.shards[si].noteSuccess()
			return nil
		}
		if !IsTransportError(err) {
			return err
		}
		s.shards[si].noteTransportFailure()
	}
}

// doCheck routes one per-check Verifier call through the ring with the
// same failover the batched path uses.
func (s *ShardedClient) doCheck(c suite.Check) (suite.Result, error) {
	var res suite.Result
	err := s.withFailover(suite.ShardKeyD(c, s.digests), func(client *Client) error {
		// suite.Eval dispatches onto the shard's per-check client methods,
		// which keep the v1 wire compatibility (attachment stripping).
		var evalErr error
		res, evalErr = suite.Eval(client, c)
		return evalErr
	})
	if err != nil {
		return suite.Result{}, err
	}
	return res, nil
}

// CheckSyntax implements core.Verifier.
func (s *ShardedClient) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	res, err := s.doCheck(suite.Check{Kind: suite.KindSyntax, Config: config})
	return res.Warnings, err
}

// DiffTranslation implements core.Verifier.
func (s *ShardedClient) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	res, err := s.doCheck(suite.Check{Kind: suite.KindDiff, Original: original, Config: translation})
	return res.Diffs, err
}

// VerifyTopology implements core.Verifier.
func (s *ShardedClient) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	res, err := s.doCheck(suite.Check{Kind: suite.KindTopology, Spec: &spec, Config: config})
	return res.Findings, err
}

// CheckLocalPolicy implements core.Verifier.
func (s *ShardedClient) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	res, err := s.doCheck(suite.Check{Kind: suite.KindLocal, Req: &req, Config: config})
	if err != nil || !res.Violated {
		return lightyear.Violation{}, false, err
	}
	if res.Violation == nil {
		return lightyear.Violation{}, false,
			fmt.Errorf("local-policy check on %s violated but carried no violation", req.Policy)
	}
	return *res.Violation, true, nil
}

// globalKey routes whole-network calls: they have no single config, so
// they hash on the topology name — stable for a run, and different
// topologies spread across shards.
func globalKey(t *topology.Topology) string {
	if t == nil {
		return ""
	}
	return "global|" + t.Name
}

// GlobalNoTransit implements core.Verifier, with the ring's failover.
func (s *ShardedClient) GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error) {
	var res *lightyear.GlobalResult
	err := s.withFailover(globalKey(t), func(client *Client) error {
		var callErr error
		res, callErr = client.GlobalNoTransit(t, configs)
		return callErr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// GlobalNoTransitIncremental implements the engine's incremental-global
// capability (suite.IncrementalGlobal) over the ring: the check routes to
// the topology's stable owner shard (globalKey), whose server keeps the
// run's simulator session warm across iterations. A failover lands the
// check on a shard without the session, which simply runs cold and starts
// its own — results are identical, only the first check there pays full
// price.
func (s *ShardedClient) GlobalNoTransitIncremental(t *topology.Topology, configs map[string]string,
	hint *suite.GlobalHint) (*lightyear.GlobalResult, error) {
	var res *lightyear.GlobalResult
	err := s.withFailover(globalKey(t), func(client *Client) error {
		var callErr error
		res, callErr = client.GlobalNoTransitIncremental(t, configs, hint)
		return callErr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Search asks a SearchRoutePolicies question, routed like the config's
// other whole-config checks (by the revision's digest), so it lands on
// the shard that already parsed the revision.
func (s *ShardedClient) Search(config string, q batfish.SearchQuery) (batfish.SearchResult, error) {
	var res batfish.SearchResult
	err := s.withFailover(s.digests.Of(config), func(client *Client) error {
		var callErr error
		res, callErr = client.Search(config, q)
		return callErr
	})
	if err != nil {
		return batfish.SearchResult{}, err
	}
	return res, nil
}

// WarmScenario broadcasts a registry pre-warm to every live shard
// concurrently (see Client.WarmScenario — each warm triggers a full
// server-side family synthesis, so the fan-out costs one synthesis of
// wall-clock rather than one per shard) and returns how many shards
// warmed. Each shard is asked for a ring-scoped warm (scenario protocol
// v2) carrying the fleet's full endpoint list and the shard's own
// endpoint, so it parses only the configurations the ring routes to it;
// shards speaking only the v1 dialect are retried with a plain whole-
// family warm, and shards predating the endpoint entirely degrade
// gracefully: their IsScenarioUnsupported answers are ignored, so a mixed
// fleet warms wherever it can. Transport failures fail the shard over,
// consistent with the batched path.
func (s *ShardedClient) WarmScenario(scenario string, seed int64) (shardsWarmed int, err error) {
	// The ring the servers rebuild must be the ring the batches hash on:
	// the full fleet, dead shards included — deadness is transient and
	// client-local, and a revived shard's ownership must not depend on
	// when the warm happened to run.
	endpoints := make([]string, len(s.shards))
	for i, sh := range s.shards {
		endpoints[i] = sh.endpoint
	}
	errs := make([]error, len(s.shards))
	var warmed atomic.Int64
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		if sh.dead.Load() {
			continue
		}
		i, sh := i, sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, werr := sh.client.WarmScenarioRing(scenario, seed, endpoints, sh.endpoint)
			if IsScenarioUnsupported(werr) {
				// The server may predate the ring dialect yet still warm
				// the v1 way (whole family); only a second rejection
				// classifies it as warm-less.
				resp, werr = sh.client.WarmScenario(scenario, seed)
			}
			switch {
			case werr == nil:
				sh.noteSuccess()
				// A server with no warmer configured answers 200 with zero
				// warmed configs; that shard validated the family but
				// warmed nothing, so it does not count — unless it
				// registered resolvable spec bodies, which future batches
				// profit from just the same. A ring-scoped shard owning
				// zero configs of a small family also counts this way.
				if resp.WarmedConfigs > 0 || resp.SpecsRegistered > 0 {
					warmed.Add(1)
				}
			case IsTransportError(werr):
				sh.noteTransportFailure()
			case IsScenarioUnsupported(werr):
				// Old server: no registry endpoint; nothing to warm there.
			default:
				errs[i] = fmt.Errorf("shard %s: %w", sh.endpoint, werr)
			}
		}()
	}
	wg.Wait()
	for _, werr := range errs {
		if werr != nil {
			return int(warmed.Load()), werr
		}
	}
	return int(warmed.Load()), nil
}
