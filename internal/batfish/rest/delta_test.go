package rest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/suite"
)

// deltaCfg builds a small multi-stanza Cisco configuration whose OSPF
// network statement carries the given marker, so successive "revisions"
// differ in exactly one stanza.
func deltaCfg(host, addr string) string {
	return "hostname " + host + "\n!\n" +
		"interface eth0\n ip address " + addr + " 255.255.255.0\n!\n" +
		"router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n!\n" +
		"route-map FILTER_OUT permit 10\n match community 100:1\n!\n"
}

func TestBuildApplyDeltaRoundTrip(t *testing.T) {
	d := suite.NewDigests()
	prior := deltaCfg("R1", "10.0.0.1")
	cases := map[string]string{
		"one stanza edited":  deltaCfg("R1", "10.0.0.2"),
		"stanza appended":    prior + "ip community-list 1 permit 100:1\n",
		"stanza removed":     strings.Replace(prior, "router ospf 1\n network 10.0.0.0 0.0.0.255 area 0\n!\n", "", 1),
		"identical revision": prior,
	}
	priorSplit := stanzaTexts(prior)
	for name, next := range cases {
		delta := buildDelta(suite.TextDigest(prior), priorSplit, next, d)
		if delta == nil {
			t.Errorf("%s: buildDelta declined", name)
			continue
		}
		got, err := applyDelta(priorSplit, delta)
		if err != nil {
			t.Errorf("%s: applyDelta: %v", name, err)
			continue
		}
		if got != next {
			t.Errorf("%s: reassembly differs from the revision\n got: %q\nwant: %q", name, got, next)
		}
		// The delta's spliced text must be smaller than the revision it
		// encodes — that is its whole reason to exist.
		spliced := 0
		for _, op := range delta.Ops {
			spliced += len(op.Text)
		}
		if spliced >= len(next) {
			t.Errorf("%s: delta splices %d bytes of a %d-byte revision", name, spliced, len(next))
		}
	}
}

func TestBuildDeltaDeclines(t *testing.T) {
	d := suite.NewDigests()
	prior := stanzaTexts(deltaCfg("R1", "10.0.0.1"))
	// Nothing shared: a delta would be the body plus overhead.
	if delta := buildDelta("p", prior, "set system host-name X;\n", d); delta != nil {
		t.Errorf("buildDelta produced a delta with no shared stanzas: %+v", delta)
	}
}

func TestApplyDeltaRejectsMalformed(t *testing.T) {
	prior := stanzaTexts(deltaCfg("R1", "10.0.0.1"))
	if _, err := applyDelta(prior, &ConfigDelta{Ops: []DeltaOp{{Keep: len(prior) + 1}}}); err == nil {
		t.Error("keep past the prior revision's end was accepted")
	}
	if _, err := applyDelta(prior, &ConfigDelta{Ops: []DeltaOp{{Keep: 1}}}); err == nil {
		t.Error("delta leaving prior stanzas unconsumed was accepted")
	}
	full := deltaCfg("R1", "10.0.0.1")
	wrong := &ConfigDelta{Digest: suite.TextDigest("something else"),
		Ops: []DeltaOp{{Keep: len(prior)}}}
	if _, err := applyDelta(prior, wrong); err == nil {
		t.Error("reassembly not matching the claimed digest was accepted")
	}
	ok := &ConfigDelta{Digest: suite.TextDigest(full), Ops: []DeltaOp{{Keep: len(prior)}}}
	if text, err := applyDelta(prior, ok); err != nil || text != full {
		t.Errorf("identity delta: text match %v, err %v", text == full, err)
	}
}

// swappableServer serves a replaceable inner handler and captures every
// request body, so tests can restart "the server" in place (same URL,
// fresh state) and inspect what the client actually put on the wire.
type swappableServer struct {
	mu     sync.Mutex
	inner  http.Handler
	bodies []string
	srv    *httptest.Server
}

func newSwappableServer(t *testing.T, h http.Handler) *swappableServer {
	t.Helper()
	s := &swappableServer{inner: h}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		r.Body = io.NopCloser(bytes.NewReader(body))
		s.mu.Lock()
		s.bodies = append(s.bodies, string(body))
		inner := s.inner
		s.mu.Unlock()
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *swappableServer) swap(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner = h
}

func (s *swappableServer) requestCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bodies)
}

func (s *swappableServer) lastBody() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bodies[len(s.bodies)-1]
}

// suiteChecks builds the whole-config check set one iteration sends for a
// revision.
func suiteChecks(cfg string) []suite.Check {
	return []suite.Check{
		{Kind: suite.KindSyntax, Config: cfg},
		{Kind: suite.KindDiff, Original: cfg, Config: cfg},
	}
}

// TestBatchDeltaProtocol drives the v4 happy path: the first batch ships
// the full body and seeds both revision stores, the second ships a
// stanza-level delta the server reassembles — with byte-identical results
// to a cold full-body client.
func TestBatchDeltaProtocol(t *testing.T) {
	s := newSwappableServer(t, NewHandler())
	c := NewClient(s.srv.URL)
	ctx := context.Background()

	cfgV1 := deltaCfg("R1", "10.0.0.1")
	cfgV2 := deltaCfg("R1", "10.0.0.2")

	if _, err := c.CheckBatch(ctx, suiteChecks(cfgV1)); err != nil {
		t.Fatal(err)
	}
	res, err := c.CheckBatch(ctx, suiteChecks(cfgV2))
	if err != nil {
		t.Fatal(err)
	}

	var wire BatchRequest
	if err := json.Unmarshal([]byte(s.lastBody()), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Version != BatchProtocolVersion {
		t.Errorf("delta batch stamped version %d, want %d", wire.Version, BatchProtocolVersion)
	}
	for i, ch := range wire.Checks {
		if ch.Config != "" {
			t.Errorf("check %d still ships a full config body alongside deltas", i)
		}
		if ch.ConfigDelta == nil {
			t.Errorf("check %d carries no delta", i)
			continue
		}
		if ch.ConfigDelta.PriorDigest != suite.TextDigest(cfgV1) {
			t.Errorf("check %d deltas against %s, want the prior revision", i, ch.ConfigDelta.PriorDigest)
		}
		spliced := 0
		for _, op := range ch.ConfigDelta.Ops {
			spliced += len(op.Text)
		}
		if spliced >= len(cfgV2)/2 {
			t.Errorf("check %d splices %d bytes of a %d-byte revision — not a one-stanza delta",
				i, spliced, len(cfgV2))
		}
	}
	// Note the diff check's Original still ships in full; only Config is
	// delta-eligible.
	cold := NewClient(s.srv.URL)
	want, err := cold.CheckBatch(ctx, suiteChecks(cfgV2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Errorf("delta results differ from full-body results:\n got %+v\nwant %+v", res, want)
	}
}

// TestBatchDeltaStaleRevision409 pins the degrade path: a restarted
// server (empty revision store) answers a delta batch with 409, the
// client re-sends full bodies without latching deltas off, and the next
// iteration deltas again.
func TestBatchDeltaStaleRevision409(t *testing.T) {
	s := newSwappableServer(t, NewHandler())
	c := NewClient(s.srv.URL)
	ctx := context.Background()

	cfg := []string{deltaCfg("R1", "10.0.0.1"), deltaCfg("R1", "10.0.0.2"),
		deltaCfg("R1", "10.0.0.3"), deltaCfg("R1", "10.0.0.4")}
	for _, v := range cfg[:2] {
		if _, err := c.CheckBatch(ctx, suiteChecks(v)); err != nil {
			t.Fatal(err)
		}
	}
	// "Restart" the server: same URL, fresh handler, empty revision store.
	s.swap(NewHandler())
	before := s.requestCount()
	res, err := c.CheckBatch(ctx, suiteChecks(cfg[2]))
	if err != nil {
		t.Fatalf("batch against restarted server: %v", err)
	}
	if got := s.requestCount() - before; got != 2 {
		t.Errorf("stale-revision batch cost %d round-trips, want 2 (409 then full-body resend)", got)
	}
	if strings.Contains(s.lastBody(), `"config_delta"`) {
		t.Error("the 409 resend still carried deltas")
	}
	cold := NewClient(s.srv.URL)
	want, err := cold.CheckBatch(ctx, suiteChecks(cfg[2]))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Errorf("post-409 results differ from full-body results")
	}
	// The capability is intact: the next revision deltas again, in one
	// round-trip, against the store the resend re-seeded.
	before = s.requestCount()
	if _, err := c.CheckBatch(ctx, suiteChecks(cfg[3])); err != nil {
		t.Fatal(err)
	}
	if got := s.requestCount() - before; got != 1 {
		t.Errorf("post-recovery batch cost %d round-trips, want 1", got)
	}
	if !strings.Contains(s.lastBody(), `"config_delta"`) {
		t.Error("deltas were latched off by the 409; they should resume after re-seeding")
	}
}

// TestBatchDeltaAgainstV3Server pins the interop path: a server capped at
// batch protocol 3 rejects the first delta-carrying batch with 400, the
// client pays exactly one extra round-trip, latches deltas off, and every
// later batch ships full bodies — with identical results throughout.
func TestBatchDeltaAgainstV3Server(t *testing.T) {
	s := newSwappableServer(t, NewHandlerOpts(HandlerOptions{MaxBatchProtocol: 3}))
	c := NewClient(s.srv.URL)
	ctx := context.Background()

	cfgV1 := deltaCfg("R1", "10.0.0.1")
	cfgV2 := deltaCfg("R1", "10.0.0.2")
	cfgV3 := deltaCfg("R1", "10.0.0.3")

	if _, err := c.CheckBatch(ctx, suiteChecks(cfgV1)); err != nil {
		t.Fatal(err)
	}
	before := s.requestCount()
	res, err := c.CheckBatch(ctx, suiteChecks(cfgV2))
	if err != nil {
		t.Fatalf("delta batch against v3 server: %v", err)
	}
	if got := s.requestCount() - before; got != 2 {
		t.Errorf("first delta batch cost %d round-trips, want 2 (400 then full-body resend)", got)
	}
	cold := NewClient(s.srv.URL)
	want, err := cold.CheckBatch(ctx, suiteChecks(cfgV2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Errorf("results against v3 server differ from full-body results")
	}
	// Latched: the next batch goes straight to full bodies, one trip.
	before = s.requestCount()
	if _, err := c.CheckBatch(ctx, suiteChecks(cfgV3)); err != nil {
		t.Fatal(err)
	}
	if got := s.requestCount() - before; got != 1 {
		t.Errorf("post-latch batch cost %d round-trips, want 1", got)
	}
	if strings.Contains(s.lastBody(), `"config_delta"`) {
		t.Error("post-latch batch still carried deltas")
	}
	var wire BatchRequest
	if err := json.Unmarshal([]byte(s.lastBody()), &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Version > 3 {
		t.Errorf("post-latch batch stamped version %d against a v3 server", wire.Version)
	}
}

// TestBatchDeltaStrictV3Decoder proves the degrade also works against a
// genuinely old binary whose strict decoder has never heard of the delta
// field — not just against the capped handler.
func TestBatchDeltaStrictV3Decoder(t *testing.T) {
	type v3BatchCheck struct {
		Kind        string          `json:"kind"`
		Config      string          `json:"config"`
		Original    string          `json:"original,omitempty"`
		Spec        json.RawMessage `json:"spec,omitempty"`
		Requirement json.RawMessage `json:"requirement,omitempty"`
		SpecRef     string          `json:"spec_ref,omitempty"`
		ReqRef      string          `json:"req_ref,omitempty"`
	}
	type v3BatchRequest struct {
		Version  int            `json:"version,omitempty"`
		Scenario string         `json:"scenario,omitempty"`
		Seed     int64          `json:"seed,omitempty"`
		Checks   []v3BatchCheck `json:"checks"`
	}
	rejected := 0
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PathBatch {
			http.NotFound(w, r)
			return
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var req v3BatchRequest
		if err := dec.Decode(&req); err != nil || req.Version > 3 {
			rejected++
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request"})
			return
		}
		results := make([]BatchResult, len(req.Checks))
		writeJSON(w, http.StatusOK, BatchResponse{Results: results})
	}))
	t.Cleanup(old.Close)

	c := NewClient(old.URL)
	ctx := context.Background()
	if _, err := c.CheckBatch(ctx, suiteChecks(deltaCfg("R1", "10.0.0.1"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckBatch(ctx, suiteChecks(deltaCfg("R1", "10.0.0.2"))); err != nil {
		t.Fatalf("delta batch against strict old decoder: %v", err)
	}
	if rejected != 1 {
		t.Errorf("old server rejected %d requests, want exactly 1 (the latch probe)", rejected)
	}
	if !c.deltasUnsupported.Load() {
		t.Error("client did not latch deltas off after the strict decoder's 400")
	}
	if c.batchUnsupported.Load() {
		t.Error("client gave up batching entirely instead of just dropping deltas")
	}
}
