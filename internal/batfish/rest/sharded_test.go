package rest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netcfg"
	"repro/internal/suite"
	"repro/internal/topology"
)

// killableShard is an in-process shard server that can be "killed": after
// Kill, every request aborts its connection without a response, exactly
// the failure a crashed batfishd produces (the client sees a transport
// error, not a served error).
type killableShard struct {
	srv    *httptest.Server
	killed atomic.Bool
	served atomic.Int64
}

func newKillableShard(t *testing.T, opts HandlerOptions) *killableShard {
	t.Helper()
	ks := &killableShard{}
	inner := NewHandlerOpts(opts)
	ks.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ks.killed.Load() {
			panic(http.ErrAbortHandler)
		}
		ks.served.Add(1)
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ks.srv.Close)
	return ks
}

func (ks *killableShard) Kill() { ks.killed.Store(true) }

// newShardFleet spins up n in-process shard servers and a sharded client
// over them.
func newShardFleet(t *testing.T, n int) ([]*killableShard, *ShardedClient) {
	t.Helper()
	shards := make([]*killableShard, n)
	endpoints := make([]string, n)
	for i := range shards {
		shards[i] = newKillableShard(t, HandlerOptions{})
		endpoints[i] = shards[i].srv.URL
	}
	sc, err := NewShardedClient(endpoints)
	if err != nil {
		t.Fatal(err)
	}
	return shards, sc
}

// TestShardedClientValidation pins the constructor's loud failures: no
// endpoints, an empty element, and a duplicate are each rejected with a
// descriptive error instead of silently building a smaller ring.
func TestShardedClientValidation(t *testing.T) {
	for _, tc := range []struct {
		endpoints []string
		want      string
	}{
		{nil, "no endpoints"},
		{[]string{"http://a:1", ""}, "empty"},
		{[]string{"http://a:1", "http://a:1"}, "duplicate"},
	} {
		if _, err := NewShardedClient(tc.endpoints); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("NewShardedClient(%v) error = %v, want mention of %q",
				tc.endpoints, err, tc.want)
		}
	}
}

// TestSplitEndpoints pins the CLI flag normalization: repeatable values,
// comma-separated elements, trimming, and the loud empty-element error.
func TestSplitEndpoints(t *testing.T) {
	got, err := SplitEndpoints([]string{"http://a:1, http://b:2", "http://c:3"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitEndpoints = %v, want %v", got, want)
	}
	for _, bad := range [][]string{{"http://a:1,"}, {",http://a:1"}, {""}, {"http://a:1,,http://b:2"}} {
		if _, err := SplitEndpoints(bad); err == nil ||
			!strings.Contains(err.Error(), "empty endpoint element") {
			t.Errorf("SplitEndpoints(%v) error = %v, want empty-element error", bad, err)
		}
	}
}

// TestShardedBatchMatchesSingle requires a 3-shard batch to return exactly
// the results a single endpoint returns, in order, while spreading the
// round-trips across the shards. Extra distinct-config syntax checks pad
// the key population: shard endpoints carry random test-server ports, so
// the ring layout varies per run, and with 16 distinct keys the chance of
// every key landing on one shard is negligible.
func TestShardedBatchMatchesSingle(t *testing.T) {
	single := newTestClient(t)
	shards, sc := newShardFleet(t, 3)
	checks := batchChecks(t)
	for i := 0; i < 12; i++ {
		checks = append(checks, suite.Check{Kind: suite.KindSyntax,
			Config: fmt.Sprintf("hostname X%d\n", i)})
	}

	want, err := single.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sharded results diverge from single endpoint:\n got %+v\nwant %+v", got, want)
	}
	served := 0
	for _, ks := range shards {
		if ks.served.Load() > 0 {
			served++
		}
	}
	if served < 2 {
		t.Errorf("batch of %d checks touched %d shards, want >= 2", len(checks), served)
	}
	if calls := sc.Calls(); calls != int64(served) {
		t.Errorf("total calls = %d, want one per touched shard (%d)", calls, served)
	}
}

// TestShardKeyRoutingIsSticky pins the ring's locality contract: all of a
// config's whole-config checks land on one shard, and repeated lookups are
// stable.
func TestShardKeyRoutingIsSticky(t *testing.T) {
	_, sc := newShardFleet(t, 3)
	cfg := "hostname R1\n"
	syntax := suite.Check{Kind: suite.KindSyntax, Config: cfg}
	topoCheck := suite.Check{Kind: suite.KindTopology,
		Spec: &topology.RouterSpec{Name: "R1"}, Config: cfg}
	a := sc.shardFor(suite.ShardKey(syntax))
	b := sc.shardFor(suite.ShardKey(topoCheck))
	if a != b {
		t.Errorf("syntax routed to shard %d, topology to %d; want same shard", a, b)
	}
	for i := 0; i < 100; i++ {
		if got := sc.shardFor(suite.ShardKey(syntax)); got != a {
			t.Fatalf("routing not stable: %d then %d", a, got)
		}
	}
}

// TestShardedFailover kills one of three shards mid-sequence: the next
// batch re-hashes the dead shard's checks onto the survivors and still
// returns full, correct results; the dead shard is failed over in the
// stats; and a revived shard is taken back after a Health probe.
func TestShardedFailover(t *testing.T) {
	shards, sc := newShardFleet(t, 3)
	checks := batchChecks(t)

	want, err := sc.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}

	// Find a shard that actually served batch work and kill it.
	victim := -1
	for i, ks := range shards {
		if ks.served.Load() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard served the first batch")
	}
	shards[victim].Kill()

	got, err := sc.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatalf("batch after shard kill: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("failover changed the results")
	}
	stats := sc.Stats()
	if !stats[victim].Dead || stats[victim].Failures == 0 {
		t.Errorf("victim shard stats = %+v, want dead with failures", stats[victim])
	}
	for i, st := range stats {
		if i != victim && st.Dead {
			t.Errorf("survivor shard %d marked dead: %+v", i, st)
		}
	}

	// All shards down is a loud error, not a hang.
	for _, ks := range shards {
		ks.Kill()
	}
	if _, err := sc.CheckBatch(context.Background(), checks); err == nil ||
		!strings.Contains(err.Error(), "all 3 shards dead") {
		t.Errorf("all-dead batch error = %v, want all-shards-dead", err)
	}

	// Revive everything: a Health probe must take the shards back.
	for _, ks := range shards {
		ks.killed.Store(false)
	}
	if err := sc.Health(); err != nil {
		t.Fatalf("health after revival: %v", err)
	}
	if _, err := sc.CheckBatch(context.Background(), checks); err != nil {
		t.Fatalf("batch after revival: %v", err)
	}
	for i, st := range sc.Stats() {
		if st.Dead {
			t.Errorf("shard %d still dead after revival", i)
		}
	}
}

// TestShardedPerCheckFailover routes a per-check Verifier call through a
// ring whose responsible shard is dead: the call must fail over to a
// survivor instead of erroring.
func TestShardedPerCheckFailover(t *testing.T) {
	shards, sc := newShardFleet(t, 3)
	cfg := "configure terminal\nhostname R1\n"
	want, err := sc.CheckSyntax(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := sc.shardFor(suite.ShardKey(suite.Check{Kind: suite.KindSyntax, Config: cfg}))
	shards[owner].Kill()
	got, err := sc.CheckSyntax(cfg)
	if err != nil {
		t.Fatalf("per-check call after owner kill: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("per-check failover changed the result")
	}
	if !sc.Stats()[owner].Dead {
		t.Error("owner shard not failed over")
	}
}

// TestShardedServedErrorsPropagate pins the failover discriminator: a
// served error (here a malformed check the server answers per-result, then
// the client surfaces) must propagate, not mark shards dead — it would
// reproduce identically on every shard.
func TestShardedServedErrorsPropagate(t *testing.T) {
	_, sc := newShardFleet(t, 3)
	// A topology check with no spec is served as a per-result error by the
	// batch endpoint; the client turns it into a batch error.
	_, err := sc.CheckBatch(context.Background(),
		[]suite.Check{{Kind: suite.KindTopology, Config: "hostname R1\n"}})
	if err == nil {
		t.Fatal("malformed check did not error")
	}
	for i, st := range sc.Stats() {
		if st.Dead {
			t.Errorf("served error killed shard %d", i)
		}
	}
}

// TestShardedCancelledContextSparesShards pins the failover
// discriminator's other half: a caller-cancelled context surfaces as
// transport errors on every in-flight request, but that is the caller's
// doing — the batch must return the context error without marking any
// shard dead.
func TestShardedCancelledContextSparesShards(t *testing.T) {
	_, sc := newShardFleet(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sc.CheckBatch(ctx, batchChecks(t))
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled batch error = %v, want context cancellation", err)
	}
	for i, st := range sc.Stats() {
		if st.Dead {
			t.Errorf("cancelled context killed shard %d", i)
		}
	}
	// The ring still serves once the caller supplies a live context.
	if _, err := sc.CheckBatch(context.Background(), batchChecks(t)); err != nil {
		t.Fatalf("batch after cancelled batch: %v", err)
	}
}

// TestShardedCountersRace hammers one sharded client from many goroutines
// — batches, per-check calls, stats reads, health probes, and a mid-run
// shard kill — so `go test -race` patrols the per-shard counters and the
// dead-flag transitions.
func TestShardedCountersRace(t *testing.T) {
	shards, sc := newShardFleet(t, 3)
	checks := batchChecks(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if g%2 == 0 {
					_, _ = sc.CheckBatch(context.Background(), checks)
				} else {
					_, _ = sc.CheckSyntax("hostname R1\n")
				}
				_ = sc.Stats()
				_ = sc.Calls()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		shards[1].Kill()
		_ = sc.Health()
	}()
	wg.Wait()
	var batches int64
	for _, st := range sc.Stats() {
		batches += st.Batches
	}
	if batches == 0 {
		t.Error("no batched round-trips recorded")
	}
}

// TestScenarioWarm drives the registry pre-warm endpoint end to end: a
// handler with a shared parse cache and a warmer reports the family shape
// and the warmed revisions, and the shared cache actually holds them.
func TestScenarioWarm(t *testing.T) {
	parses := netcfg.NewParseCache(func(text string) *netcfg.Parsed {
		return &netcfg.Parsed{}
	})
	var seenSeed int64
	warmerCalls := 0
	warmer := func(topo *topology.Topology, seed int64, p *netcfg.ParseCache,
		owned func(config string) bool) (int, error) {
		warmerCalls++
		seenSeed = seed
		warmed := 0
		for i := range topo.Routers {
			cfg := "hostname " + topo.Routers[i].Name + "\n"
			if owned(cfg) {
				p.Parse(cfg)
				warmed++
			}
		}
		return warmed, nil
	}
	srv := httptest.NewServer(NewHandlerOpts(HandlerOptions{Parses: parses, Warmer: warmer}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)

	resp, err := c.WarmScenario("star:5", 7)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scenario != "star:5" || resp.Routers != 5 || resp.WarmedConfigs != 5 {
		t.Errorf("warm response = %+v, want star:5 with 5 routers warmed", resp)
	}
	if resp.Attachments == 0 {
		t.Error("warm response reports no attachments")
	}
	if seenSeed != 7 {
		t.Errorf("warmer saw seed %d, want the client's 7", seenSeed)
	}
	if parses.Len() != 5 {
		t.Errorf("shared parse cache holds %d revisions, want 5", parses.Len())
	}

	// A repeated warm of the same (family, seed) is memoized — the
	// synthesis is pure — while a different seed warms afresh.
	if resp, err = c.WarmScenario("star:5", 7); err != nil || resp.WarmedConfigs != 5 {
		t.Fatalf("repeat warm = %+v, %v; want memoized 5", resp, err)
	}
	if warmerCalls != 1 {
		t.Errorf("warmer ran %d times for one (family, seed), want 1", warmerCalls)
	}
	if _, err = c.WarmScenario("star:5", 8); err != nil {
		t.Fatal(err)
	}
	if warmerCalls != 2 {
		t.Errorf("warmer ran %d times across two seeds, want 2", warmerCalls)
	}

	// Size defaulting mirrors the generators.
	resp, err = c.WarmScenario("fat-tree", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Scenario != "fat-tree:4" {
		t.Errorf("defaulted scenario = %q, want fat-tree:4", resp.Scenario)
	}

	// Unknown families are surfaced, not silently skipped.
	if _, err := c.WarmScenario("hypercube:8", 0); err == nil || IsScenarioUnsupported(err) {
		t.Errorf("unknown family error = %v, want served (supported) error", err)
	}

	// A handler with a warmer but no shared cache has nothing to warm
	// into: the endpoint still validates and reports zero warmed configs
	// instead of invoking the warmer.
	bare := httptest.NewServer(NewHandlerOpts(HandlerOptions{Warmer: warmer}))
	t.Cleanup(bare.Close)
	resp, err = NewClient(bare.URL).WarmScenario("star:5", 0)
	if err != nil || resp.WarmedConfigs != 0 {
		t.Errorf("cache-less warm = %+v, %v; want 0 warmed configs, nil", resp, err)
	}
}

// TestScenarioVersionGateDegrades pins the backward-compatible rollout:
// servers without the endpoint (404) and servers rejecting a newer dialect
// (400) both classify as IsScenarioUnsupported, so clients skip the
// warm-up instead of failing the run.
func TestScenarioVersionGateDegrades(t *testing.T) {
	old := httptest.NewServer(http.HandlerFunc(http.NotFound))
	t.Cleanup(old.Close)
	if _, err := NewClient(old.URL).WarmScenario("star:5", 0); !IsScenarioUnsupported(err) {
		t.Errorf("pre-registry server error = %v, want IsScenarioUnsupported", err)
	}

	gated := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "unsupported scenario protocol version 99 (server speaks 1)"})
	}))
	t.Cleanup(gated.Close)
	if _, err := NewClient(gated.URL).WarmScenario("star:5", 0); !IsScenarioUnsupported(err) {
		t.Errorf("version-gated server error = %v, want IsScenarioUnsupported", err)
	}

	// The server half: a newer dialect is rejected with 400.
	srv := httptest.NewServer(NewHandler())
	t.Cleanup(srv.Close)
	body := strings.NewReader(`{"version":99,"scenario":"star:5"}`)
	resp, err := http.Post(srv.URL+PathScenario, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("newer scenario dialect: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestSharedParseCacheAcrossBatches pins the warm-up payoff path: with a
// shared cache, a batch arriving after a warm re-uses the warmed parse
// instead of parsing again.
func TestSharedParseCacheAcrossBatches(t *testing.T) {
	parses := netcfg.NewParseCache(func(text string) *netcfg.Parsed {
		return &netcfg.Parsed{}
	})
	srv := httptest.NewServer(NewHandlerOpts(HandlerOptions{Parses: parses}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)

	cfg := "hostname R1\n"
	if _, err := c.CheckBatch(context.Background(),
		[]suite.Check{{Kind: suite.KindSyntax, Config: cfg}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckBatch(context.Background(),
		[]suite.Check{{Kind: suite.KindSyntax, Config: cfg}}); err != nil {
		t.Fatal(err)
	}
	hits, misses := parses.Stats()
	if misses != 1 || hits == 0 {
		t.Errorf("shared cache stats = %d hits / %d misses, want 1 parse shared across batches",
			hits, misses)
	}
}
