// Package rest wraps the verification suite behind an HTTP API. Go has no
// Batfish bindings, so — per the reproduction plan — the verifier is
// callable as a service: cmd/batfishd serves it, Client implements the
// engine's core.Verifier interface (and its suite.Backend batch seam)
// over one endpoint, and ShardedClient fans the same seam out over a
// consistent-hash ring of endpoints with failover. The in-process suite
// backs the handlers. All payloads are JSON.
package rest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// API paths (version-prefixed).
const (
	PathSyntax    = "/v1/syntax"
	PathDiff      = "/v1/diff"
	PathTopology  = "/v1/topology"
	PathLocal     = "/v1/local"
	PathNoTransit = "/v1/notransit"
	PathSearch    = "/v1/search"
	PathHealth    = "/v1/health"
	PathBatch     = "/v1/batch"
	PathScenario  = "/v1/scenario"
)

// SyntaxRequest asks for parse warnings on one configuration.
type SyntaxRequest struct {
	Config string `json:"config"`
}

// SyntaxResponse carries the warnings.
type SyntaxResponse struct {
	Warnings []netcfg.ParseWarning `json:"warnings"`
}

// DiffRequest asks for a Campion comparison.
type DiffRequest struct {
	Original    string `json:"original"`
	Translation string `json:"translation"`
}

// DiffResponse carries the findings.
type DiffResponse struct {
	Findings []campion.Finding `json:"findings"`
}

// TopologyRequest asks for a topology verification of one router.
type TopologyRequest struct {
	Spec   topology.RouterSpec `json:"spec"`
	Config string              `json:"config"`
}

// TopologyResponse carries the findings.
type TopologyResponse struct {
	Findings []topology.Finding `json:"findings"`
}

// LocalRequest asks for one Lightyear requirement check.
type LocalRequest struct {
	Config      string                `json:"config"`
	Requirement lightyear.Requirement `json:"requirement"`
}

// LocalResponse carries the violation, if any.
type LocalResponse struct {
	Violated  bool                 `json:"violated"`
	Violation *lightyear.Violation `json:"violation,omitempty"`
}

// NoTransitProtocolVersion is the global-check protocol this tree speaks.
// Version 2 added session continuity: a request may carry PriorDigest —
// the suite.ConfigDigest of the configuration set the same run's previous
// check verified — and the server keeps the converged simulator state of
// recent checks keyed by that digest, so the re-check re-simulates only
// the routers whose configuration text changed since
// (batfish.Sim.RunIncremental) instead of the whole network. Results are
// byte-identical either way; the session is purely a cost optimization.
// A server accepts any version up to its own and rejects newer versions
// with HTTP 400; like the batch protocol, clients treat a 400 on a
// version-stamped request as "dialect unsupported", latch the capability
// off, and re-send the v1 shape — old servers' strict decoders reject the
// unknown fields the same way, so the latch covers both vintages at the
// cost of one extra round-trip per client.
const NoTransitProtocolVersion = 2

// NoTransitRequest asks for the global BGP-simulation check. Version,
// PriorDigest, and Changed are the v2 session fields: Version stamps the
// dialect (zero marks a pre-versioning client and is always accepted);
// PriorDigest keys the server-side simulator session this check continues
// (empty: no prior check, run cold but start a session); Changed is the
// client's advisory list of routers it believes changed — the server
// re-derives the changed set by diffing the shipped configs against the
// session's stored ones, so a hint can never understate a change.
type NoTransitRequest struct {
	Topology    *topology.Topology `json:"topology"`
	Configs     map[string]string  `json:"configs"`
	Version     int                `json:"version,omitempty"`
	PriorDigest string             `json:"prior_digest,omitempty"`
	Changed     []string           `json:"changed,omitempty"`
}

// NoTransitResponse carries the global result.
type NoTransitResponse struct {
	Result *lightyear.GlobalResult `json:"result"`
}

// SearchRequest asks a SearchRoutePolicies question about one config.
type SearchRequest struct {
	Config string              `json:"config"`
	Query  batfish.SearchQuery `json:"query"`
}

// SearchResponse carries the witness, if any.
type SearchResponse struct {
	Result batfish.SearchResult `json:"result"`
}

// Batch check kinds, mirroring core's suite-check kinds on the wire.
const (
	BatchKindSyntax   = "syntax"
	BatchKindTopology = "topology"
	BatchKindLocal    = "local"
	BatchKindDiff     = "diff"
)

// BatchProtocolVersion is the batched-check protocol this tree speaks.
// Version 2 added the per-attachment requirement identity
// (lightyear.Requirement.Attachment) to local checks. Version 3 added
// pre-warmed body references: a check may carry SpecRef/ReqRef — the
// RefDigest of the spec or requirement body it omits — which the server
// resolves against the registry built by a /v1/scenario warm, so a run
// against pre-warmed shards stops re-shipping the same spec bodies on
// every iteration. Version 4 added configuration deltas: a check against
// a server believed to hold the prior revision may replace its Config
// body with a ConfigDelta — the stanza-level line edits from the prior
// revision (keyed by PriorDigest) to the current one — so an iteration
// that touched one route map ships a few hundred bytes instead of the
// whole configuration. The server reassembles the body from its revision
// store and verifies the result digest; a prior revision it no longer
// holds (restart, eviction) or a reassembly that does not reproduce the
// claimed digest answers HTTP 409 Conflict, telling the client to re-send
// that batch with full bodies (which re-seed the store) without giving up
// on deltas for the run. A server accepts any version up to its own and
// rejects newer versions with HTTP 400.
//
// Clients stamp each request with the version of the highest feature the
// payload actually uses — a full-bodied batch is a v2 payload and is sent
// as one — so only ref- or delta-carrying requests are ever rejected by
// older servers. A 400 on a delta-carrying request (an older server's
// version gate, or its strict decoder choking on the unknown field)
// latches deltas off for the client; a 400 on a ref-carrying request
// latches refs off the same way; a 400 on a full-bodied request
// downgrades to per-check calls, whose payloads old servers parse by
// ignoring the unknown field.
const BatchProtocolVersion = 4

// DeltaOp is one instruction of a configuration delta, interpreted
// against the prior revision's stanza sequence: Keep copies the next n
// stanzas of the prior revision, Skip drops the next n, and Text splices
// in replacement bytes verbatim. Exactly one field is meaningful per op.
// The compact keys keep the wire cost of a delta proportional to the
// edit, not to the op count.
type DeltaOp struct {
	Keep int    `json:"k,omitempty"`
	Skip int    `json:"s,omitempty"`
	Text string `json:"t,omitempty"`
}

// ConfigDelta ships one configuration as edits against a prior revision
// the server already holds (batch protocol v4). PriorDigest is the
// suite.TextDigest of the prior revision's full text — the revision-store
// key — and Digest is the TextDigest the reassembled text must hash to;
// any mismatch fails the batch with 409 rather than evaluating checks
// against a body the client did not send.
type ConfigDelta struct {
	PriorDigest string    `json:"prior_digest"`
	Digest      string    `json:"digest"`
	Ops         []DeltaOp `json:"ops"`
}

// RefDigest content-addresses a wire body for the v3 reference scheme:
// hex SHA-256 of the body's JSON encoding. Specs and requirements are
// map-free structs, so the encoding — and therefore the digest — is
// deterministic across processes; a client and server that derive the
// same body from the same scenario agree on the digest, and any drift
// (different code generations deriving different bodies) surfaces as an
// unresolvable ref instead of a silently wrong resolution.
func RefDigest(v interface{}) string {
	data, _ := json.Marshal(v)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// BatchCheck is one independent check inside a batched request; which
// fields are required depends on Kind. Config is the configuration under
// test (the translation for diff checks). SpecRef and ReqRef (protocol
// v3) replace the Spec and Requirement bodies with their RefDigest when
// the server pre-warmed the run's scenario: the server substitutes its
// own registry copy after verifying the digest matches. ConfigDelta
// (protocol v4) replaces the Config body with stanza-level edits against
// a prior revision the server's store holds; Config is empty when it is
// set, and the server reassembles and digest-verifies the body before
// evaluating anything.
type BatchCheck struct {
	Kind        string                 `json:"kind"`
	Config      string                 `json:"config"`
	Original    string                 `json:"original,omitempty"`
	Spec        *topology.RouterSpec   `json:"spec,omitempty"`
	Requirement *lightyear.Requirement `json:"requirement,omitempty"`
	SpecRef     string                 `json:"spec_ref,omitempty"`
	ReqRef      string                 `json:"req_ref,omitempty"`
	ConfigDelta *ConfigDelta           `json:"config_delta,omitempty"`
}

// BatchRequest ships all of a pipeline iteration's outstanding checks in
// one round-trip. Version is the dialect the payload is shaped in (see
// BatchProtocolVersion); zero marks a pre-versioning client and is always
// accepted. Scenario and Seed (v3) name the pre-warmed family whose
// registry resolves the checks' SpecRef/ReqRef references; they are only
// sent on ref-carrying requests.
type BatchRequest struct {
	Version  int          `json:"version,omitempty"`
	Scenario string       `json:"scenario,omitempty"`
	Seed     int64        `json:"seed,omitempty"`
	Checks   []BatchCheck `json:"checks"`
}

// BatchResult is the outcome of one BatchCheck, positionally matched to
// the request. Error is set when that single check was malformed; the
// other checks in the batch still carry results.
type BatchResult struct {
	Warnings  []netcfg.ParseWarning `json:"warnings,omitempty"`
	Findings  []topology.Finding    `json:"findings,omitempty"`
	Diffs     []campion.Finding     `json:"diffs,omitempty"`
	Violated  bool                  `json:"violated,omitempty"`
	Violation *lightyear.Violation  `json:"violation,omitempty"`
	Error     string                `json:"error,omitempty"`
}

// BatchResponse carries one result per requested check, in order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// ScenarioProtocolVersion is the registry pre-warm protocol this tree
// speaks. Version 2 added ring-scoped warming: the request may carry the
// client's shard-fleet endpoint list plus which endpoint the addressed
// server is, so each shard warms only the configurations the fleet's
// consistent-hash ring routes to it instead of all of them. A server
// accepts any version up to its own and rejects newer versions with HTTP
// 400. Like the batch protocol, clients stamp each request with the
// version its payload is shaped in — a plain warm stays a v1 payload —
// and treat 400 like a missing endpoint (404/405 from pre-registry
// servers): the sharded client retries a rejected ring warm as a plain
// v1 warm, and a plain warm that is rejected is skipped, the endpoint
// being an optimization.
const ScenarioProtocolVersion = 2

// ScenarioRequest asks the server to pre-warm its verification state for
// one registered topology family, named with the CLI's name[:size]
// shorthand ("fat-tree:4"). The server validates the name against its own
// scenario registry, so client and server must agree on the family — a
// server that has never heard of the scenario answers 422.
type ScenarioRequest struct {
	// Version is the dialect the payload is shaped in (see
	// ScenarioProtocolVersion); zero marks a pre-versioning client and is
	// always accepted.
	Version  int    `json:"version,omitempty"`
	Scenario string `json:"scenario"`
	// Seed is the simulated-LLM seed the client will drive the family
	// with, so the server's pre-warm synthesis parses the configurations
	// that run will actually produce; zero means the default seed.
	Seed int64 `json:"seed,omitempty"`
	// ShardEndpoints and Self (v2) scope the warm to the addressed shard's
	// share of the fleet: ShardEndpoints is the full endpoint list the
	// client's consistent-hash ring is built from and Self is the endpoint
	// this request is addressed to. The server rebuilds the same ring and
	// parses only the configurations it owns — batched checks for the
	// others will never be routed here. Empty means warm everything (a
	// single-endpoint client, or a fleet of one).
	ShardEndpoints []string `json:"shard_endpoints,omitempty"`
	Self           string   `json:"self,omitempty"`
}

// ScenarioResponse reports what the pre-warm touched.
type ScenarioResponse struct {
	// Scenario echoes the resolved name:size (defaults applied).
	Scenario string `json:"scenario"`
	// Routers and Attachments describe the generated family instance.
	Routers     int `json:"routers"`
	Attachments int `json:"attachments"`
	// WarmedConfigs is the number of configuration revisions the server
	// parsed into its shared parse cache; zero when the server has no
	// warmer or no shared cache configured. Under a ring-scoped warm it
	// counts only the revisions this shard owns.
	WarmedConfigs int `json:"warmed_configs"`
	// SpecsRegistered is the number of spec and requirement bodies the
	// server registered for v3 batch-reference resolution; a client seeing
	// a non-zero count starts shipping SpecRef/ReqRef digests instead of
	// the bodies. Zero from servers predating the reference scheme.
	SpecsRegistered int `json:"specs_registered,omitempty"`
}

// ErrorResponse reports a request failure.
type ErrorResponse struct {
	Error string `json:"error"`
}
