// Package rest wraps the verification suite behind an HTTP API. Go has no
// Batfish bindings, so — per the reproduction plan — the verifier is
// callable as a service: cmd/batfishd serves it, Client implements the
// engine's core.Verifier interface (and its suite.Backend batch seam)
// over one endpoint, and ShardedClient fans the same seam out over a
// consistent-hash ring of endpoints with failover. The in-process suite
// backs the handlers. All payloads are JSON.
package rest

import (
	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// API paths (version-prefixed).
const (
	PathSyntax    = "/v1/syntax"
	PathDiff      = "/v1/diff"
	PathTopology  = "/v1/topology"
	PathLocal     = "/v1/local"
	PathNoTransit = "/v1/notransit"
	PathSearch    = "/v1/search"
	PathHealth    = "/v1/health"
	PathBatch     = "/v1/batch"
	PathScenario  = "/v1/scenario"
)

// SyntaxRequest asks for parse warnings on one configuration.
type SyntaxRequest struct {
	Config string `json:"config"`
}

// SyntaxResponse carries the warnings.
type SyntaxResponse struct {
	Warnings []netcfg.ParseWarning `json:"warnings"`
}

// DiffRequest asks for a Campion comparison.
type DiffRequest struct {
	Original    string `json:"original"`
	Translation string `json:"translation"`
}

// DiffResponse carries the findings.
type DiffResponse struct {
	Findings []campion.Finding `json:"findings"`
}

// TopologyRequest asks for a topology verification of one router.
type TopologyRequest struct {
	Spec   topology.RouterSpec `json:"spec"`
	Config string              `json:"config"`
}

// TopologyResponse carries the findings.
type TopologyResponse struct {
	Findings []topology.Finding `json:"findings"`
}

// LocalRequest asks for one Lightyear requirement check.
type LocalRequest struct {
	Config      string                `json:"config"`
	Requirement lightyear.Requirement `json:"requirement"`
}

// LocalResponse carries the violation, if any.
type LocalResponse struct {
	Violated  bool                 `json:"violated"`
	Violation *lightyear.Violation `json:"violation,omitempty"`
}

// NoTransitRequest asks for the global BGP-simulation check.
type NoTransitRequest struct {
	Topology *topology.Topology `json:"topology"`
	Configs  map[string]string  `json:"configs"`
}

// NoTransitResponse carries the global result.
type NoTransitResponse struct {
	Result *lightyear.GlobalResult `json:"result"`
}

// SearchRequest asks a SearchRoutePolicies question about one config.
type SearchRequest struct {
	Config string              `json:"config"`
	Query  batfish.SearchQuery `json:"query"`
}

// SearchResponse carries the witness, if any.
type SearchResponse struct {
	Result batfish.SearchResult `json:"result"`
}

// Batch check kinds, mirroring core's suite-check kinds on the wire.
const (
	BatchKindSyntax   = "syntax"
	BatchKindTopology = "topology"
	BatchKindLocal    = "local"
	BatchKindDiff     = "diff"
)

// BatchProtocolVersion is the batched-check protocol this tree speaks.
// Version 2 added the per-attachment requirement identity
// (lightyear.Requirement.Attachment) to local checks. A server accepts
// any version up to its own — the identity is advisory for old payloads —
// and rejects newer versions with HTTP 400, which the client treats like
// a missing endpoint: it falls back to per-check calls, whose payloads
// old servers parse by ignoring the unknown field.
const BatchProtocolVersion = 2

// BatchCheck is one independent check inside a batched request; which
// fields are required depends on Kind. Config is the configuration under
// test (the translation for diff checks).
type BatchCheck struct {
	Kind        string                 `json:"kind"`
	Config      string                 `json:"config"`
	Original    string                 `json:"original,omitempty"`
	Spec        *topology.RouterSpec   `json:"spec,omitempty"`
	Requirement *lightyear.Requirement `json:"requirement,omitempty"`
}

// BatchRequest ships all of a pipeline iteration's outstanding checks in
// one round-trip. Version is the client's BatchProtocolVersion; zero
// marks a pre-versioning client and is always accepted.
type BatchRequest struct {
	Version int          `json:"version,omitempty"`
	Checks  []BatchCheck `json:"checks"`
}

// BatchResult is the outcome of one BatchCheck, positionally matched to
// the request. Error is set when that single check was malformed; the
// other checks in the batch still carry results.
type BatchResult struct {
	Warnings  []netcfg.ParseWarning `json:"warnings,omitempty"`
	Findings  []topology.Finding    `json:"findings,omitempty"`
	Diffs     []campion.Finding     `json:"diffs,omitempty"`
	Violated  bool                  `json:"violated,omitempty"`
	Violation *lightyear.Violation  `json:"violation,omitempty"`
	Error     string                `json:"error,omitempty"`
}

// BatchResponse carries one result per requested check, in order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// ScenarioProtocolVersion is the registry pre-warm protocol this tree
// speaks. A server accepts any version up to its own and rejects newer
// versions with HTTP 400; clients treat 400 like a missing endpoint
// (404/405 from pre-registry servers) and skip the warm-up — the endpoint
// is an optimization, so new dialects degrade gracefully against old
// servers.
const ScenarioProtocolVersion = 1

// ScenarioRequest asks the server to pre-warm its verification state for
// one registered topology family, named with the CLI's name[:size]
// shorthand ("fat-tree:4"). The server validates the name against its own
// scenario registry, so client and server must agree on the family — a
// server that has never heard of the scenario answers 422.
type ScenarioRequest struct {
	// Version is the client's ScenarioProtocolVersion; zero marks a
	// pre-versioning client and is always accepted.
	Version  int    `json:"version,omitempty"`
	Scenario string `json:"scenario"`
	// Seed is the simulated-LLM seed the client will drive the family
	// with, so the server's pre-warm synthesis parses the configurations
	// that run will actually produce; zero means the default seed.
	Seed int64 `json:"seed,omitempty"`
}

// ScenarioResponse reports what the pre-warm touched.
type ScenarioResponse struct {
	// Scenario echoes the resolved name:size (defaults applied).
	Scenario string `json:"scenario"`
	// Routers and Attachments describe the generated family instance.
	Routers     int `json:"routers"`
	Attachments int `json:"attachments"`
	// WarmedConfigs is the number of configuration revisions the server
	// parsed into its shared parse cache; zero when the server has no
	// warmer or no shared cache configured.
	WarmedConfigs int `json:"warmed_configs"`
}

// ErrorResponse reports a request failure.
type ErrorResponse struct {
	Error string `json:"error"`
}
