package rest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/batfish"
	"repro/internal/core"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/suite"
	"repro/internal/topology"
)

// starConfigs synthesizes deterministic star configurations for the
// incremental no-transit round-trip tests.
func starConfigs(t *testing.T, n int) (*topology.Topology, map[string]string) {
	t.Helper()
	topo, err := netgen.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(topo, core.SynthOptions{
		Model:           llm.NewSynthesizer(llm.SynthConfig{Seed: 1, Errors: map[string][]llm.SynthError{}}),
		SkipGlobalCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo, res.Configs
}

// requireSameNoTransit pins an incremental response against a stateless one.
func requireSameNoTransit(t *testing.T, label string, plain, inc *lightyear.GlobalResult) {
	t.Helper()
	if !reflect.DeepEqual(plain, inc) {
		t.Errorf("%s: incremental response diverges from stateless check\nplain: %+v\nincremental: %+v",
			label, plain, inc)
	}
}

// TestNoTransitIncrementalMatchesStateless drives the v2 session protocol
// through golden -> broken -> golden against a live handler and pins every
// response against the stateless v1 check of the same configurations —
// including a stale prior digest, which must degrade to a cold run, not an
// error.
func TestNoTransitIncrementalMatchesStateless(t *testing.T) {
	topo, golden := starConfigs(t, 5)
	c := newTestClient(t)

	broken := make(map[string]string, len(golden))
	for k, v := range golden {
		broken[k] = v
	}
	broken["R1"] = "hostname R1\n"

	plainGolden, err := c.GlobalNoTransit(topo, golden)
	if err != nil {
		t.Fatal(err)
	}
	plainBroken, err := c.GlobalNoTransit(topo, broken)
	if err != nil {
		t.Fatal(err)
	}
	if plainBroken.OK() {
		t.Fatal("a BGP-less hub cannot satisfy the no-transit policy")
	}

	// First v2 call: no prior digest, runs cold, seeds the session.
	inc, err := c.GlobalNoTransitIncremental(topo, golden, &suite.GlobalHint{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "seed", plainGolden, inc)

	// Continue the session into the broken set and back.
	inc, err = c.GlobalNoTransitIncremental(topo, broken, &suite.GlobalHint{
		PriorDigest: suite.ConfigDigest(golden), Changed: []string{"R1"}})
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "broken", plainBroken, inc)

	inc, err = c.GlobalNoTransitIncremental(topo, golden, &suite.GlobalHint{
		PriorDigest: suite.ConfigDigest(broken), Changed: []string{"R1"}})
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "reverted", plainGolden, inc)

	// A prior digest the server does not hold (evicted, restarted, or
	// plain wrong): cold run, same verdict.
	inc, err = c.GlobalNoTransitIncremental(topo, broken, &suite.GlobalHint{
		PriorDigest: "no-such-session", Changed: []string{"R1"}})
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "stale digest", plainBroken, inc)

	// A nil hint is the plain stateless check.
	inc, err = c.GlobalNoTransitIncremental(topo, golden, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "nil hint", plainGolden, inc)
}

// oldNoTransitHandler mimics a server that predates the v2 session
// protocol: it decodes the original request shape strictly — unknown
// fields are an error, exactly how old decode() behaves — and serves the
// stateless check.
func oldNoTransitHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathNoTransit, func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Topology *topology.Topology `json:"topology"`
			Configs  map[string]string  `json:"configs"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		devs := make(map[string]*netcfg.Device, len(req.Configs))
		for name, text := range req.Configs {
			dev, _ := batfish.ParseConfig(text)
			devs[name] = dev
		}
		res, err := lightyear.CheckGlobalNoTransit(req.Topology, devs)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, NoTransitResponse{Result: res})
	})
	return mux
}

// TestNoTransitIncrementalOldServerFallback sends the v2 dialect to a
// server whose strict decoder rejects it: the client must fall back to
// the stateless v1 check, return its result, and latch — the second
// incremental call costs exactly one round-trip.
func TestNoTransitIncrementalOldServerFallback(t *testing.T) {
	topo, golden := starConfigs(t, 3)
	srv := httptest.NewServer(oldNoTransitHandler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)

	plain, err := c.GlobalNoTransit(topo, golden)
	if err != nil {
		t.Fatal(err)
	}

	hint := &suite.GlobalHint{PriorDigest: suite.ConfigDigest(golden), Changed: []string{"R1"}}
	before := c.Calls()
	inc, err := c.GlobalNoTransitIncremental(topo, golden, hint)
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "fallback", plain, inc)
	if got := c.Calls() - before; got != 2 {
		t.Errorf("first incremental call against an old server cost %d round-trips, want 2 (probe + fallback)", got)
	}

	before = c.Calls()
	inc, err = c.GlobalNoTransitIncremental(topo, golden, hint)
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "latched", plain, inc)
	if got := c.Calls() - before; got != 1 {
		t.Errorf("latched incremental call cost %d round-trips, want 1", got)
	}
}

// TestShardedNoTransitIncremental routes the incremental check through the
// sharded client: same responses as the stateless check, shard failover
// semantics untouched.
func TestShardedNoTransitIncremental(t *testing.T) {
	topo, golden := starConfigs(t, 4)
	srv1 := httptest.NewServer(NewHandler())
	srv2 := httptest.NewServer(NewHandler())
	t.Cleanup(srv1.Close)
	t.Cleanup(srv2.Close)
	sc, err := NewShardedClient([]string{srv1.URL, srv2.URL})
	if err != nil {
		t.Fatal(err)
	}

	plain, err := sc.GlobalNoTransit(topo, golden)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sc.GlobalNoTransitIncremental(topo, golden, &suite.GlobalHint{})
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "sharded seed", plain, inc)

	broken := make(map[string]string, len(golden))
	for k, v := range golden {
		broken[k] = v
	}
	broken["R1"] = "hostname R1\n"
	plainBroken, err := sc.GlobalNoTransit(topo, broken)
	if err != nil {
		t.Fatal(err)
	}
	inc, err = sc.GlobalNoTransitIncremental(topo, broken, &suite.GlobalHint{
		PriorDigest: suite.ConfigDigest(golden), Changed: []string{"R1"}})
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoTransit(t, "sharded broken", plainBroken, inc)
}
