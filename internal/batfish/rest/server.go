package rest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// HandlerOptions tunes the verification-suite handler.
type HandlerOptions struct {
	// BatchWorkers bounds the worker pool evaluating the checks of one
	// /v1/batch request concurrently; <= 0 uses GOMAXPROCS.
	BatchWorkers int
}

// NewHandler returns the HTTP handler serving the verification suite with
// default options.
func NewHandler() http.Handler {
	return NewHandlerOpts(HandlerOptions{})
}

// NewHandlerOpts returns the HTTP handler serving the verification suite.
func NewHandlerOpts(opts HandlerOptions) http.Handler {
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealth, handleHealth)
	mux.HandleFunc(PathSyntax, handleSyntax)
	mux.HandleFunc(PathDiff, handleDiff)
	mux.HandleFunc(PathTopology, handleTopology)
	mux.HandleFunc(PathLocal, handleLocal)
	mux.HandleFunc(PathNoTransit, handleNoTransit)
	mux.HandleFunc(PathSearch, handleSearch)
	mux.HandleFunc(PathBatch, func(w http.ResponseWriter, r *http.Request) {
		handleBatch(w, r, opts.BatchWorkers)
	})
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decode reads a JSON POST body; it writes the error response itself and
// reports whether decoding succeeded.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func handleSyntax(w http.ResponseWriter, r *http.Request) {
	var req SyntaxRequest
	if !decode(w, r, &req) {
		return
	}
	warns := batfish.CheckSyntax(req.Config)
	writeJSON(w, http.StatusOK, SyntaxResponse{Warnings: warns})
}

func handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	if !decode(w, r, &req) {
		return
	}
	orig, _ := batfish.ParseConfig(req.Original)
	trans, _ := batfish.ParseConfig(req.Translation)
	writeJSON(w, http.StatusOK, DiffResponse{Findings: campion.Diff(orig, trans)})
}

func handleTopology(w http.ResponseWriter, r *http.Request) {
	var req TopologyRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	writeJSON(w, http.StatusOK, TopologyResponse{Findings: topology.Verify(&req.Spec, dev)})
}

func handleLocal(w http.ResponseWriter, r *http.Request) {
	var req LocalRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	v, bad := lightyear.Check(dev, req.Requirement)
	resp := LocalResponse{Violated: bad}
	if bad {
		resp.Violation = &v
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleNoTransit(w http.ResponseWriter, r *http.Request) {
	var req NoTransitRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Topology == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "topology required"})
		return
	}
	devs := map[string]*netcfg.Device{}
	for name, text := range req.Configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	result, err := lightyear.CheckGlobalNoTransit(req.Topology, devs)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, NoTransitResponse{Result: result})
}

// evalBatchCheck answers one batched check; parses goes through the
// request-scoped cache so a batch carrying the same configuration for its
// syntax, topology, and local checks parses it once.
func evalBatchCheck(c BatchCheck, parses *netcfg.ParseCache) BatchResult {
	switch c.Kind {
	case BatchKindSyntax:
		return BatchResult{Warnings: parses.Parse(c.Config).CheckWarnings}
	case BatchKindTopology:
		if c.Spec == nil {
			return BatchResult{Error: "topology check requires a spec"}
		}
		dev := parses.Parse(c.Config).Device
		return BatchResult{Findings: topology.Verify(c.Spec, dev)}
	case BatchKindLocal:
		if c.Requirement == nil {
			return BatchResult{Error: "local check requires a requirement"}
		}
		dev := parses.Parse(c.Config).Device
		v, bad := lightyear.Check(dev, *c.Requirement)
		res := BatchResult{Violated: bad}
		if bad {
			res.Violation = &v
		}
		return res
	case BatchKindDiff:
		orig := parses.Parse(c.Original).Device
		trans := parses.Parse(c.Config).Device
		return BatchResult{Diffs: campion.Diff(orig, trans)}
	default:
		return BatchResult{Error: fmt.Sprintf("unknown check kind %q", c.Kind)}
	}
}

// handleBatch evaluates a whole batch of independent checks in one
// round-trip, fanning them onto a bounded worker pool. Results are
// positional; a malformed individual check yields a per-result error
// without failing the batch.
func handleBatch(w http.ResponseWriter, r *http.Request, workers int) {
	var req BatchRequest
	if !decode(w, r, &req) {
		return
	}
	// Version gate: accept anything up to our own dialect (older payloads
	// simply lack the newer advisory fields), reject newer ones so a
	// future client downgrades to the per-check endpoints instead of
	// having half-understood checks evaluated. Pre-versioning clients send
	// no version at all (0).
	if req.Version > BatchProtocolVersion {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
			"unsupported batch protocol version %d (server speaks %d)",
			req.Version, BatchProtocolVersion)})
		return
	}
	parses := batfish.NewParseCache()
	results := make([]BatchResult, len(req.Checks))
	if workers > len(req.Checks) {
		workers = len(req.Checks)
	}
	if workers <= 1 {
		for i, c := range req.Checks {
			results[i] = evalBatchCheck(c, parses)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i] = evalBatchCheck(req.Checks[i], parses)
				}
			}()
		}
		for i := range req.Checks {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

func handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	result, err := batfish.SearchRoutePolicies(dev, req.Query)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{Result: result})
}
