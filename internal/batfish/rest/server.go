package rest

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/durable"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/topology"
)

// ScenarioWarmer pre-warms server state for one registered topology
// family (see /v1/scenario): given the generated family instance, the
// client's simulated-LLM seed (zero: default), the handler's shared
// parse cache, and the warm's ownership predicate, it returns how many
// configuration revisions it parsed into the cache. cmd/batfishd wires a
// warmer that synthesizes the family with the deterministic simulated LLM
// at that seed and parses the resulting configurations, so the client run
// that follows hits warm parses. owned reports whether a configuration is
// this server's to warm: under a ring-scoped warm (scenario protocol v2)
// it is the fleet's consistent-hash placement — configurations owned by
// other shards are never routed here, so parsing them would only burn
// memory — and under a plain warm it admits everything. The warmer is
// only invoked when the handler has a shared cache to warm.
type ScenarioWarmer func(topo *topology.Topology, seed int64, parses *netcfg.ParseCache,
	owned func(config string) bool) (int, error)

// HandlerOptions tunes the verification-suite handler.
type HandlerOptions struct {
	// BatchWorkers bounds the worker pool evaluating the checks of one
	// /v1/batch request concurrently; <= 0 uses GOMAXPROCS.
	BatchWorkers int
	// Parses, when set, is a parse cache shared across requests: batched
	// checks parse through it instead of a request-scoped cache, so
	// /v1/scenario pre-warms pay off on later batches. It grows with every
	// distinct configuration revision seen, so long-lived servers trade
	// memory for parse time; leave nil to keep the request-scoped
	// behaviour.
	Parses *netcfg.ParseCache
	// Warmer, when set with Parses, backs the /v1/scenario registry
	// pre-warm endpoint. The endpoint itself is always served (it
	// validates the family and reports its shape); without a warmer it
	// simply warms nothing.
	Warmer ScenarioWarmer
	// Durable, when set, answers batched checks from a disk cache keyed by
	// suite.Key and persists computed results into it — the same
	// content-addressed store the engine's CachedVerifier mounts, so a
	// restarted shard (or a whole fleet sharing a directory) comes back
	// warm instead of re-verifying every revision it had already seen.
	// Per-check errors are never cached. When Parses is also set, the
	// store doubles as the stanza sub-cache's durable fragment tier, so a
	// restarted shard re-parses only the stanzas it has never seen.
	Durable *durable.Cache
	// Metrics, when set, is the registry behind the handler's
	// observability surface: GET /metrics (Prometheus text exposition) and
	// GET /debug/vars (JSON snapshot) are mounted on the handler's mux,
	// and the handler's own request/batch counters register into it. Nil
	// gets the handler a private registry, so the endpoints are always
	// live — an in-process shard scrapes the same way a remote one does.
	Metrics *obs.Registry
	// MaxBatchProtocol, when positive, caps the batch dialect this handler
	// accepts below its native BatchProtocolVersion: requests stamped
	// higher — and checks carrying newer-dialect fields (a v3 body
	// reference, a v4 ConfigDelta) — are rejected with 400 exactly as a
	// genuinely older server would reject them. Interop tests and
	// mixed-vintage fleets use it to prove clients degrade cleanly. Zero
	// means native.
	MaxBatchProtocol int
}

// NewHandler returns the HTTP handler serving the verification suite with
// default options.
func NewHandler() http.Handler {
	return NewHandlerOpts(HandlerOptions{})
}

// NewHandlerOpts returns the HTTP handler serving the verification suite.
func NewHandlerOpts(opts HandlerOptions) http.Handler {
	if opts.BatchWorkers <= 0 {
		opts.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.Durable != nil && opts.Parses != nil {
		// The disk cache doubles as the stanza sub-cache's durable
		// fragment tier: restarted shards re-parse only unseen stanzas.
		opts.Parses.SetFragmentStore(opts.Durable)
	}
	maxProto := BatchProtocolVersion
	if opts.MaxBatchProtocol > 0 && opts.MaxBatchProtocol < maxProto {
		maxProto = opts.MaxBatchProtocol
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	mux := http.NewServeMux()
	obsHandler := obs.Handler(opts.Metrics)
	mux.Handle(obs.MetricsPath, obsHandler)
	mux.Handle(obs.VarsPath, obsHandler)
	mux.HandleFunc(PathHealth, handleHealth)
	mux.HandleFunc(PathSyntax, handleSyntax)
	mux.HandleFunc(PathDiff, handleDiff)
	mux.HandleFunc(PathTopology, handleTopology)
	mux.HandleFunc(PathLocal, handleLocal)
	sessions := &globalSessions{entries: map[string]*globalSessEntry{}}
	mux.HandleFunc(PathNoTransit, func(w http.ResponseWriter, r *http.Request) {
		handleNoTransit(w, r, sessions)
	})
	mux.HandleFunc(PathSearch, handleSearch)
	warms := &scenarioWarms{done: map[string]int{}, regs: map[string]*scenarioRegistry{}}
	env := &batchEnv{
		workers:  opts.BatchWorkers,
		parses:   opts.Parses,
		warms:    warms,
		disk:     opts.Durable,
		revs:     &revisionStore{entries: map[string][]string{}},
		digests:  suite.NewDigests(),
		maxProto: maxProto,
		reg:      opts.Metrics,
	}
	mux.HandleFunc(PathBatch, func(w http.ResponseWriter, r *http.Request) {
		handleBatch(w, r, env)
	})
	mux.HandleFunc(PathScenario, func(w http.ResponseWriter, r *http.Request) {
		handleScenario(w, r, opts.Parses, opts.Warmer, warms)
	})
	// Per-path request accounting wraps the whole mux; the observability
	// endpoints themselves are excluded so a scrape loop does not inflate
	// the very numbers it reads.
	reg := opts.Metrics
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != obs.MetricsPath && r.URL.Path != obs.VarsPath {
			reg.Counter("batfishd_requests_total", "path", r.URL.Path).Inc()
		}
		mux.ServeHTTP(w, r)
	})
}

// batchEnv is the handler state every /v1/batch request is served with.
type batchEnv struct {
	workers  int
	parses   *netcfg.ParseCache
	warms    *scenarioWarms
	disk     *durable.Cache
	revs     *revisionStore
	digests  *suite.Digests
	maxProto int
	reg      *obs.Registry
}

// scenarioWarms memoizes completed scenario warms per handler. A warm is a
// pure function of (name, size, seed, ring scope) and its parses persist
// in the shared cache, so repeating it — every cosynth run broadcasts a
// warm, and an unauthenticated POST could demand one — would re-pay a
// whole family synthesis for nothing. The mutex doubles as singleflight:
// concurrent warms of the same family serialize and the later one returns
// the memo. It also holds the per-family spec registries that resolve v3
// batch references.
type scenarioWarms struct {
	mu   sync.Mutex
	done map[string]int
	// regs maps the resolved "name:size" to the family's registered spec
	// and requirement bodies. Registries are seed- and ring-independent:
	// the bodies derive from the generated topology alone.
	regs map[string]*scenarioRegistry
}

// registry returns the warmed family's registry, or nil.
func (s *scenarioWarms) registry(scenario string) *scenarioRegistry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.regs[scenario]
}

// scenarioRegistry holds one warmed family's spec and requirement bodies,
// content-addressed by RefDigest, so ref-carrying batched checks (batch
// protocol v3) resolve server-side instead of re-shipping the bodies on
// every iteration. A digest the registry cannot resolve means client and
// server derived different bodies for the same scenario (a code-
// generation drift) and fails the batch rather than answering against the
// wrong spec.
type scenarioRegistry struct {
	specs map[string]*topology.RouterSpec
	reqs  map[string]*lightyear.Requirement
}

// buildScenarioRegistry registers the family's router specs and local
// no-transit requirements under their content digests.
func buildScenarioRegistry(topo *topology.Topology) *scenarioRegistry {
	reg := &scenarioRegistry{
		specs: make(map[string]*topology.RouterSpec, len(topo.Routers)),
		reqs:  map[string]*lightyear.Requirement{},
	}
	for i := range topo.Routers {
		spec := &topo.Routers[i]
		reg.specs[RefDigest(spec)] = spec
	}
	for _, req := range lightyear.SpecFor(topo) {
		req := req
		reg.reqs[RefDigest(&req)] = &req
	}
	return reg
}

// size returns the number of registered bodies, reported to clients as
// SpecsRegistered.
func (r *scenarioRegistry) size() int { return len(r.specs) + len(r.reqs) }

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decode reads a JSON POST body; it writes the error response itself and
// reports whether decoding succeeded.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func handleSyntax(w http.ResponseWriter, r *http.Request) {
	var req SyntaxRequest
	if !decode(w, r, &req) {
		return
	}
	warns := batfish.CheckSyntax(req.Config)
	writeJSON(w, http.StatusOK, SyntaxResponse{Warnings: warns})
}

func handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	if !decode(w, r, &req) {
		return
	}
	orig, _ := batfish.ParseConfig(req.Original)
	trans, _ := batfish.ParseConfig(req.Translation)
	writeJSON(w, http.StatusOK, DiffResponse{Findings: campion.Diff(orig, trans)})
}

func handleTopology(w http.ResponseWriter, r *http.Request) {
	var req TopologyRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	writeJSON(w, http.StatusOK, TopologyResponse{Findings: topology.Verify(&req.Spec, dev)})
}

func handleLocal(w http.ResponseWriter, r *http.Request) {
	var req LocalRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	v, bad := lightyear.Check(dev, req.Requirement)
	resp := LocalResponse{Violated: bad}
	if bad {
		resp.Violation = &v
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxGlobalSessions bounds the handler's simulator-session store: each
// entry holds a whole network's converged RIB history, so an unbounded
// store would let every distinct run (or an unauthenticated POST) pin
// memory forever. Eviction is oldest-first; an evicted run's next check
// simply runs cold and starts a fresh session.
const maxGlobalSessions = 8

// globalSessions holds the handler's live simulator sessions for the v2
// no-transit protocol, keyed by the suite.ConfigDigest of the last
// configuration set each session verified. A request continuing a session
// claims the entry (removing it from the store) for the duration of the
// check — GlobalSession is not concurrency-safe, and claiming makes a
// concurrent request with the same prior digest miss and run cold rather
// than race — then re-stores it under the new digest.
type globalSessions struct {
	mu      sync.Mutex
	entries map[string]*globalSessEntry
	order   []string // insertion order, for oldest-first eviction
}

// globalSessEntry is one stored session: the simulator plus what it last
// verified, for server-side change derivation and topology validation.
type globalSessEntry struct {
	topoDigest string
	configs    map[string]string
	sess       *lightyear.GlobalSession
}

// claim removes and returns the session keyed by digest, if any.
func (g *globalSessions) claim(digest string) (*globalSessEntry, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.entries[digest]
	if !ok {
		return nil, false
	}
	delete(g.entries, digest)
	for i, k := range g.order {
		if k == digest {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	return e, true
}

// put stores a session under digest, evicting oldest entries past the
// bound.
func (g *globalSessions) put(digest string, e *globalSessEntry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.entries[digest]; ok {
		for i, k := range g.order {
			if k == digest {
				g.order = append(g.order[:i], g.order[i+1:]...)
				break
			}
		}
	}
	g.entries[digest] = e
	g.order = append(g.order, digest)
	for len(g.order) > maxGlobalSessions {
		delete(g.entries, g.order[0])
		g.order = g.order[1:]
	}
}

// diffConfigs derives the changed-router set server-side: routers whose
// text differs, appeared, or vanished between the session's stored set
// and the incoming one. Always non-nil — an empty diff still means
// "known: nothing changed", which the session serves without any
// re-simulation.
func diffConfigs(prev, next map[string]string) []string {
	changed := []string{}
	for name, text := range next {
		if old, ok := prev[name]; !ok || old != text {
			changed = append(changed, name)
		}
	}
	for name := range prev {
		if _, ok := next[name]; !ok {
			changed = append(changed, name)
		}
	}
	sort.Strings(changed)
	return changed
}

// handleNoTransit serves the global BGP-simulation check. A v2 request
// (see NoTransitProtocolVersion) continues or starts a simulator session:
// when PriorDigest claims a stored session for the same topology, only
// the routers whose configuration text changed are re-simulated; any
// mismatch — no session, evicted, different topology — degrades to a cold
// run that seeds a fresh session. v1 requests are served statelessly,
// exactly as before.
func handleNoTransit(w http.ResponseWriter, r *http.Request, sessions *globalSessions) {
	var req NoTransitRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Version > NoTransitProtocolVersion {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
			"unsupported no-transit protocol version %d (server speaks %d)",
			req.Version, NoTransitProtocolVersion)})
		return
	}
	if req.Topology == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "topology required"})
		return
	}
	devs := map[string]*netcfg.Device{}
	for name, text := range req.Configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	if req.Version < 2 {
		result, err := lightyear.CheckGlobalNoTransit(req.Topology, devs)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, NoTransitResponse{Result: result})
		return
	}
	topoDig := suite.TopologyDigest(req.Topology)
	var sess *lightyear.GlobalSession
	var changed []string // nil: cold run
	if req.PriorDigest != "" {
		if e, ok := sessions.claim(req.PriorDigest); ok && e.topoDigest == topoDig {
			sess = e.sess
			// The client's Changed list is advisory only: the session's
			// stored configs let the server derive the true change set, so
			// a hint can never understate a change.
			changed = diffConfigs(e.configs, req.Configs)
		}
	}
	if sess == nil {
		sess = lightyear.NewGlobalSession(req.Topology)
	}
	result, err := sess.Check(devs, changed)
	if err != nil {
		// The session may hold half-updated state; drop it rather than
		// re-store. The run's next check misses and runs cold.
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	sessions.put(suite.ConfigDigest(req.Configs), &globalSessEntry{
		topoDigest: topoDig,
		configs:    req.Configs,
		sess:       sess,
	})
	writeJSON(w, http.StatusOK, NoTransitResponse{Result: result})
}

// evalBatchCheck answers one batched check; parses goes through the
// request-scoped cache so a batch carrying the same configuration for its
// syntax, topology, and local checks parses it once.
func evalBatchCheck(c BatchCheck, parses *netcfg.ParseCache) BatchResult {
	switch c.Kind {
	case BatchKindSyntax:
		return BatchResult{Warnings: parses.Parse(c.Config).CheckWarnings}
	case BatchKindTopology:
		if c.Spec == nil {
			return BatchResult{Error: "topology check requires a spec"}
		}
		dev := parses.Parse(c.Config).Device
		return BatchResult{Findings: topology.Verify(c.Spec, dev)}
	case BatchKindLocal:
		if c.Requirement == nil {
			return BatchResult{Error: "local check requires a requirement"}
		}
		dev := parses.Parse(c.Config).Device
		v, bad := lightyear.Check(dev, *c.Requirement)
		res := BatchResult{Violated: bad}
		if bad {
			res.Violation = &v
		}
		return res
	case BatchKindDiff:
		orig := parses.Parse(c.Original).Device
		trans := parses.Parse(c.Config).Device
		return BatchResult{Diffs: campion.Diff(orig, trans)}
	default:
		return BatchResult{Error: fmt.Sprintf("unknown check kind %q", c.Kind)}
	}
}

// evalBatchCheckDurable answers one batched check through the server's
// mounted disk cache: a hit (decoded from the content-addressed entry)
// skips the evaluation entirely, a miss computes and — unless the check
// itself was malformed — persists. The cache key is suite.Key over the
// check's resolved form, the same identity the engine's client-side cache
// uses, so a cosynth run and the shard it talks to can share one
// directory without double-keying. Decode failures fall through to
// recomputation; disk write failures are swallowed (a full disk degrades
// the shard to uncached, it does not fail the batch).
func evalBatchCheckDurable(c BatchCheck, parses *netcfg.ParseCache, d *durable.Cache,
	digests *suite.Digests) BatchResult {
	key := suite.KeyD(suite.Check{
		Kind:     suite.Kind(c.Kind),
		Config:   c.Config,
		Original: c.Original,
		Spec:     c.Spec,
		Req:      c.Requirement,
	}, digests)
	if payload, ok := d.Get(key); ok {
		var res BatchResult
		if err := json.Unmarshal(payload, &res); err == nil && res.Error == "" {
			return res
		}
	}
	res := evalBatchCheck(c, parses)
	if res.Error == "" {
		if payload, err := json.Marshal(res); err == nil {
			_ = d.Put(key, payload)
		}
	}
	return res
}

// resolveBatchRefs substitutes the registry bodies for the request's
// SpecRef/ReqRef references (batch protocol v3). An unresolvable ref —
// no scenario named, no registry for it, or a digest the registry does
// not hold — is a dialect-level failure of the whole batch: answering
// the other checks while silently mis-resolving one would hand back
// untrustworthy results, and the client's reaction to the 400 (latch
// refs off, re-send full bodies) repairs the run in one round-trip.
func resolveBatchRefs(req *BatchRequest, warms *scenarioWarms) error {
	refs := false
	for i := range req.Checks {
		if req.Checks[i].SpecRef != "" || req.Checks[i].ReqRef != "" {
			refs = true
			break
		}
	}
	if !refs {
		return nil
	}
	if req.Scenario == "" {
		return fmt.Errorf("batch carries body references but names no scenario")
	}
	name, size, err := netgen.ParseScenarioArg(req.Scenario)
	if err != nil {
		return err
	}
	if size <= 0 {
		sc, _ := netgen.Lookup(name)
		size = sc.DefaultSize
	}
	resolved := fmt.Sprintf("%s:%d", name, size)
	reg := warms.registry(resolved)
	if reg == nil {
		return fmt.Errorf("scenario %s is not pre-warmed on this server", resolved)
	}
	for i := range req.Checks {
		c := &req.Checks[i]
		if c.SpecRef != "" {
			if c.Spec = reg.specs[c.SpecRef]; c.Spec == nil {
				return fmt.Errorf("unresolvable spec ref %s for %s", c.SpecRef, resolved)
			}
		}
		if c.ReqRef != "" {
			if c.Requirement = reg.reqs[c.ReqRef]; c.Requirement == nil {
				return fmt.Errorf("unresolvable requirement ref %s for %s", c.ReqRef, resolved)
			}
		}
	}
	return nil
}

// maxRevisions bounds the handler's revision store for v4 deltas: each
// entry holds one revision's stanza split, so the store costs about one
// config set's worth of memory per recent run. Eviction is oldest-first;
// a delta against an evicted revision answers 409 and the client re-seeds
// the store with full bodies.
const maxRevisions = 256

// revisionStore holds the stanza splits of recently seen configuration
// revisions, keyed by suite.TextDigest of the full text — the server half
// of the v4 delta protocol. Splits are recorded once per distinct
// revision and never mutated, so readers share them without copying.
type revisionStore struct {
	mu      sync.Mutex
	entries map[string][]string
	order   []string // insertion order, for oldest-first eviction
}

// get returns the stored split of the revision, if any.
func (s *revisionStore) get(digest string) ([]string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	return e, ok
}

// record splits and stores one revision; already-stored revisions are not
// re-split.
func (s *revisionStore) record(text string, d *suite.Digests) {
	digest := d.Of(text)
	s.mu.Lock()
	_, ok := s.entries[digest]
	s.mu.Unlock()
	if ok {
		return
	}
	split := stanzaTexts(text)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[digest]; ok {
		return
	}
	s.entries[digest] = split
	s.order = append(s.order, digest)
	for len(s.order) > maxRevisions {
		delete(s.entries, s.order[0])
		s.order = s.order[1:]
	}
}

// resolveBatchDeltas reassembles the full Config body of every
// delta-carrying check (batch protocol v4) from the revision store. Any
// failure — a prior revision the store no longer holds, ops that do not
// consume it exactly, a reassembly that does not hash to the claimed
// digest — fails the whole batch: evaluating the other checks while one
// body is unreconstructible would interleave two protocol states. The
// caller answers 409 Conflict, and the client re-sends the batch with
// full bodies, re-seeding the store.
func resolveBatchDeltas(req *BatchRequest, revs *revisionStore) error {
	for i := range req.Checks {
		c := &req.Checks[i]
		if c.ConfigDelta == nil {
			continue
		}
		prior, ok := revs.get(c.ConfigDelta.PriorDigest)
		if !ok {
			return fmt.Errorf("check %d: unknown prior revision %s", i, c.ConfigDelta.PriorDigest)
		}
		text, err := applyDelta(prior, c.ConfigDelta)
		if err != nil {
			return fmt.Errorf("check %d: %v", i, err)
		}
		c.Config = text
		c.ConfigDelta = nil
	}
	return nil
}

// handleBatch evaluates a whole batch of independent checks in one
// round-trip, fanning them onto a bounded worker pool. Results are
// positional; a malformed individual check yields a per-result error
// without failing the batch. env.parses, when non-nil, replaces the
// request-scoped parse cache so scenario pre-warms and earlier requests'
// parses are reused.
func handleBatch(w http.ResponseWriter, r *http.Request, env *batchEnv) {
	var req BatchRequest
	if !decode(w, r, &req) {
		return
	}
	start := time.Now()
	env.reg.Counter("batfishd_batch_requests_total", "proto", strconv.Itoa(req.Version)).Inc()
	env.reg.Counter("batfishd_batch_checks_total").Add(uint64(len(req.Checks)))
	defer func() {
		env.reg.Histogram("batfishd_batch_seconds", obs.DefSecondsBuckets).Observe(time.Since(start).Seconds())
	}()
	// Version gate: accept anything up to our dialect (older payloads
	// simply lack the newer advisory fields), reject newer ones so a
	// future client downgrades to the per-check endpoints instead of
	// having half-understood checks evaluated. Pre-versioning clients send
	// no version at all (0). A capped handler (MaxBatchProtocol) also
	// rejects newer-dialect fields on unstamped payloads, exactly as an
	// old server's strict decoder would.
	if req.Version > env.maxProto {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
			"unsupported batch protocol version %d (server speaks %d)",
			req.Version, env.maxProto)})
		return
	}
	if env.maxProto < BatchProtocolVersion {
		for i := range req.Checks {
			c := &req.Checks[i]
			if c.ConfigDelta != nil {
				writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
					"check %d carries a config delta (batch protocol 4; server speaks %d)",
					i, env.maxProto)})
				return
			}
			if env.maxProto < 3 && (c.SpecRef != "" || c.ReqRef != "") {
				writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
					"check %d carries body references (batch protocol 3; server speaks %d)",
					i, env.maxProto)})
				return
			}
		}
	}
	if err := resolveBatchDeltas(&req, env.revs); err != nil {
		// 409, not 400: the dialect is fine, this server just lost the
		// prior revisions. The client re-sends full bodies without
		// latching deltas off.
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
		return
	}
	if env.maxProto >= BatchProtocolVersion {
		// Every revision this batch carried (as a body or a reassembled
		// delta) is now resolvable; record it so the client's next batch
		// can delta against it.
		recorded := map[string]bool{}
		for i := range req.Checks {
			if cfg := req.Checks[i].Config; cfg != "" && !recorded[cfg] {
				recorded[cfg] = true
				env.revs.record(cfg, env.digests)
			}
		}
	}
	if err := resolveBatchRefs(&req, env.warms); err != nil {
		// 400, like a version-gate rejection: the client latches the
		// reference dialect off and retries with full bodies.
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	parses := env.parses
	if parses == nil {
		parses = batfish.NewParseCache()
	}
	eval := func(c BatchCheck) BatchResult {
		if env.disk != nil {
			return evalBatchCheckDurable(c, parses, env.disk, env.digests)
		}
		return evalBatchCheck(c, parses)
	}
	results := make([]BatchResult, len(req.Checks))
	workers := env.workers
	if workers > len(req.Checks) {
		workers = len(req.Checks)
	}
	if workers <= 1 {
		for i, c := range req.Checks {
			results[i] = eval(c)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for n := 0; n < workers; n++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i] = eval(req.Checks[i])
				}
			}()
		}
		for i := range req.Checks {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// handleScenario serves the registry pre-warm endpoint: validate the
// requested family against the server's own scenario registry, generate
// the instance, and hand it to the warmer (if any) to pre-parse the
// family's expected configurations into the shared cache. Version-gated
// like the batch endpoint: a newer dialect is rejected with 400, which
// clients treat like a missing endpoint and skip the warm-up.
func handleScenario(w http.ResponseWriter, r *http.Request, parses *netcfg.ParseCache,
	warmer ScenarioWarmer, warms *scenarioWarms) {
	var req ScenarioRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Version > ScenarioProtocolVersion {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf(
			"unsupported scenario protocol version %d (server speaks %d)",
			req.Version, ScenarioProtocolVersion)})
		return
	}
	name, size, err := netgen.ParseScenarioArg(req.Scenario)
	if err != nil {
		// 422, not 400: the dialect is fine, this server just cannot serve
		// the family — clients must surface it rather than silently skip.
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	if size <= 0 {
		sc, _ := netgen.Lookup(name)
		size = sc.DefaultSize
	}
	topo, err := netgen.Generate(name, size)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	resolved := fmt.Sprintf("%s:%d", name, size)
	// Register the family's spec and requirement bodies for v3 batch
	// references. Registration is independent of the config warm — it
	// needs no synthesis, only the topology just generated — so even a
	// validation-only server resolves references.
	warms.mu.Lock()
	reg, ok := warms.regs[resolved]
	if !ok {
		reg = buildScenarioRegistry(topo)
		warms.regs[resolved] = reg
	}
	warms.mu.Unlock()
	// Ring scope (v2): warm only the configurations the fleet's
	// consistent-hash ring routes to this server. An unusable scope — an
	// endpoint list that does not contain Self — degrades to warming
	// everything rather than failing: the warm is an optimization.
	owned := func(string) bool { return true }
	if len(req.ShardEndpoints) > 1 && req.Self != "" {
		if ring := newEndpointRing(req.ShardEndpoints); ring.contains(req.Self) {
			self := normalizeEndpoint(req.Self)
			// The ring hashes the client's routing key — the revision's
			// digest (suite.ShardKeyD), not its body — so ownership here
			// must digest before walking the ring to agree with it.
			owned = func(config string) bool { return ring.owner(suite.TextDigest(config)) == self }
		}
	}
	warmed := 0
	// The warmer contract hands it the shared cache; with no cache there
	// is nothing to warm into, so skip the synthesis instead of paying for
	// parses that are thrown away (or passing the warmer a nil cache).
	// Completed warms are memoized per (name, size, seed, ring scope) —
	// the synthesis is pure and its parses persist — so repeat warms are
	// free.
	if warmer != nil && parses != nil {
		key := fmt.Sprintf("%s|%d|%s|%s", resolved, req.Seed,
			strings.Join(req.ShardEndpoints, ","), req.Self)
		warms.mu.Lock()
		memo, ok := warms.done[key]
		if ok {
			warmed = memo
		} else {
			if warmed, err = warmer(topo, req.Seed, parses, owned); err != nil {
				warms.mu.Unlock()
				writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: fmt.Sprintf(
					"warming %s: %v", req.Scenario, err)})
				return
			}
			warms.done[key] = warmed
		}
		warms.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, ScenarioResponse{
		Scenario:        resolved,
		Routers:         len(topo.Routers),
		Attachments:     len(topo.ExternalAttachments()),
		WarmedConfigs:   warmed,
		SpecsRegistered: reg.size(),
	})
}

func handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	result, err := batfish.SearchRoutePolicies(dev, req.Query)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{Result: result})
}
