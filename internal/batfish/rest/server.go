package rest

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// NewHandler returns the HTTP handler serving the verification suite.
func NewHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealth, handleHealth)
	mux.HandleFunc(PathSyntax, handleSyntax)
	mux.HandleFunc(PathDiff, handleDiff)
	mux.HandleFunc(PathTopology, handleTopology)
	mux.HandleFunc(PathLocal, handleLocal)
	mux.HandleFunc(PathNoTransit, handleNoTransit)
	mux.HandleFunc(PathSearch, handleSearch)
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// decode reads a JSON POST body; it writes the error response itself and
// reports whether decoding succeeded.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST required"})
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func handleSyntax(w http.ResponseWriter, r *http.Request) {
	var req SyntaxRequest
	if !decode(w, r, &req) {
		return
	}
	warns := batfish.CheckSyntax(req.Config)
	writeJSON(w, http.StatusOK, SyntaxResponse{Warnings: warns})
}

func handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	if !decode(w, r, &req) {
		return
	}
	orig, _ := batfish.ParseConfig(req.Original)
	trans, _ := batfish.ParseConfig(req.Translation)
	writeJSON(w, http.StatusOK, DiffResponse{Findings: campion.Diff(orig, trans)})
}

func handleTopology(w http.ResponseWriter, r *http.Request) {
	var req TopologyRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	writeJSON(w, http.StatusOK, TopologyResponse{Findings: topology.Verify(&req.Spec, dev)})
}

func handleLocal(w http.ResponseWriter, r *http.Request) {
	var req LocalRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	v, bad := lightyear.Check(dev, req.Requirement)
	resp := LocalResponse{Violated: bad}
	if bad {
		resp.Violation = &v
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleNoTransit(w http.ResponseWriter, r *http.Request) {
	var req NoTransitRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Topology == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "topology required"})
		return
	}
	devs := map[string]*netcfg.Device{}
	for name, text := range req.Configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	result, err := lightyear.CheckGlobalNoTransit(req.Topology, devs)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, NoTransitResponse{Result: result})
}

func handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decode(w, r, &req) {
		return
	}
	dev, _ := batfish.ParseConfig(req.Config)
	result, err := batfish.SearchRoutePolicies(dev, req.Query)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{Result: result})
}
