package rest

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/suite"
	"repro/internal/topology"
)

// scenarioChecks builds checks whose spec and requirement bodies derive
// from the registered star:3 family — the bodies a scenario warm makes
// resolvable by reference.
func scenarioChecks(t *testing.T) []suite.Check {
	t.Helper()
	topo, err := netgen.Generate("star", 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := lightyear.SpecFor(topo)
	if len(reqs) == 0 {
		t.Fatal("star:3 derives no requirements")
	}
	return []suite.Check{
		{Kind: suite.KindSyntax, Config: "configure terminal\nhostname R1\n"},
		{Kind: suite.KindTopology, Spec: topo.Router("R2"), Config: "hostname R2\n"},
		{Kind: suite.KindLocal, Req: &reqs[0], Config: "hostname " + reqs[0].Router + "\n"},
	}
}

// recordBatches wraps a handler, capturing the raw body of the last
// /v1/batch request so tests can assert what was actually on the wire.
func recordBatches(inner http.Handler, last *[]byte, mu *sync.Mutex) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathBatch {
			body, _ := io.ReadAll(r.Body)
			mu.Lock()
			*last = append([]byte(nil), body...)
			mu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.ServeHTTP(w, r)
	})
}

// TestBatchRefsRoundTrip pins the v3 reference scheme end to end: after a
// scenario warm registers the family's bodies, batched checks ship
// content digests instead of spec and requirement bodies, and the results
// are identical to the full-bodied wire form.
func TestBatchRefsRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var last []byte
	srv := httptest.NewServer(recordBatches(NewHandler(), &last, &mu))
	t.Cleanup(srv.Close)
	checks := scenarioChecks(t)

	baselineClient := NewClient(srv.URL)
	baseline, err := baselineClient.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	wire := string(last)
	mu.Unlock()
	if strings.Contains(wire, "spec_ref") || strings.Contains(wire, "req_ref") {
		t.Fatal("un-warmed client shipped body references")
	}

	c := NewClient(srv.URL)
	resp, err := c.WarmScenario("star:3", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SpecsRegistered == 0 {
		t.Fatal("warm registered no spec bodies")
	}
	before := c.Calls()
	got, err := c.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Calls() - before; n != 1 {
		t.Errorf("ref-carrying batch cost %d round-trips, want 1", n)
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Errorf("ref-resolved results differ from full-bodied results:\n%+v\nvs\n%+v", got, baseline)
	}
	mu.Lock()
	wire = string(last)
	mu.Unlock()
	for _, want := range []string{`"spec_ref"`, `"req_ref"`, `"scenario":"star:3"`, `"version":3`} {
		if !strings.Contains(wire, want) {
			t.Errorf("ref-carrying wire form lacks %s", want)
		}
	}
	for _, dropped := range []string{`"spec":`, `"requirement":`} {
		if strings.Contains(wire, dropped) {
			t.Errorf("ref-carrying wire form still ships %s bodies", dropped)
		}
	}
}

// TestBatchRefsFallbackOnUnresolvable pins the digest guard: a check
// whose body the server's registry cannot resolve — here a hand-built
// requirement that is not part of the warmed family — fails the ref-
// carrying batch with 400, and the client transparently retries with full
// bodies, latches, and never pays the rejected round-trip again.
func TestBatchRefsFallbackOnUnresolvable(t *testing.T) {
	srv := httptest.NewServer(NewHandler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	if _, err := c.WarmScenario("star:3", 0); err != nil {
		t.Fatal(err)
	}
	foreign := lightyearRequirement() // not derived from any scenario
	checks := []suite.Check{
		{Kind: suite.KindLocal, Req: &foreign, Config: "hostname R1\n" +
			"ip community-list 1 permit 100:1\n" +
			"route-map FILTER permit 10\n"},
	}
	before := c.Calls()
	results, err := c.CheckBatch(context.Background(), checks)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Calls() - before; n != 2 {
		t.Errorf("first batch cost %d round-trips, want 2 (rejected refs + full retry)", n)
	}
	if !results[0].Violated {
		t.Error("fallback lost the local-policy violation")
	}
	before = c.Calls()
	if _, err := c.CheckBatch(context.Background(), checks); err != nil {
		t.Fatal(err)
	}
	if n := c.Calls() - before; n != 1 {
		t.Errorf("post-latch batch cost %d round-trips, want 1 (full bodies straight away)", n)
	}
}

// ringWarmServer is one fleet member for the ring-scoped warm tests: a
// full handler whose warmer records which configurations it was allowed
// to parse.
func ringWarmServer(t *testing.T, warmedConfigs *[]string, mu *sync.Mutex) *httptest.Server {
	t.Helper()
	parses := netcfg.NewParseCache(func(text string) *netcfg.Parsed { return &netcfg.Parsed{} })
	warmer := func(topo *topology.Topology, seed int64, p *netcfg.ParseCache,
		owned func(config string) bool) (int, error) {
		warmed := 0
		for i := range topo.Routers {
			cfg := "hostname " + topo.Routers[i].Name + "\n"
			if !owned(cfg) {
				continue
			}
			p.Parse(cfg)
			mu.Lock()
			*warmedConfigs = append(*warmedConfigs, cfg)
			mu.Unlock()
			warmed++
		}
		return warmed, nil
	}
	srv := httptest.NewServer(NewHandlerOpts(HandlerOptions{Parses: parses, Warmer: warmer}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRingScopedWarmPartitions drives a two-shard fleet's warm broadcast:
// each shard parses only the configurations the consistent-hash ring
// routes to it, and the shares partition the family — disjoint, with
// nothing lost.
func TestRingScopedWarmPartitions(t *testing.T) {
	var mu sync.Mutex
	var warmedA, warmedB []string
	srvA := ringWarmServer(t, &warmedA, &mu)
	srvB := ringWarmServer(t, &warmedB, &mu)

	sc, err := NewShardedClient([]string{srvA.URL, srvB.URL})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := sc.WarmScenario("star:8", 0)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 2 {
		t.Errorf("shards warmed = %d, want 2", shards)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]int{}
	for _, cfg := range warmedA {
		seen[cfg]++
	}
	for _, cfg := range warmedB {
		seen[cfg]++
	}
	if len(seen) != 8 {
		t.Errorf("union of ring-scoped warms holds %d configs, want all 8", len(seen))
	}
	for cfg, n := range seen {
		if n != 1 {
			t.Errorf("config %q warmed on %d shards, want exactly 1 (disjoint shares)", cfg, n)
		}
	}
	// The server-side ring must agree with the client's placement: each
	// shard warmed exactly the configurations the sharded client would
	// route to it. The routing key is the revision's digest
	// (suite.ShardKeyD), not its body.
	ring := newEndpointRing([]string{srvA.URL, srvB.URL})
	for _, cfg := range warmedA {
		if owner := ring.owner(suite.TextDigest(cfg)); owner != normalizeEndpoint(srvA.URL) {
			t.Errorf("shard A warmed %q, but the ring routes it to %s", cfg, owner)
		}
	}
	for _, cfg := range warmedB {
		if owner := ring.owner(suite.TextDigest(cfg)); owner != normalizeEndpoint(srvB.URL) {
			t.Errorf("shard B warmed %q, but the ring routes it to %s", cfg, owner)
		}
	}
}

// TestRingWarmDegradesToV1 pins the mixed-fleet rollout: a shard whose
// scenario decoder predates the ring fields (strict v1) rejects the
// ring-scoped shape, and the sharded broadcast retries it with a plain
// whole-family warm instead of losing the shard's warm entirely.
func TestRingWarmDegradesToV1(t *testing.T) {
	var mu sync.Mutex
	var warmedNew []string
	newSrv := ringWarmServer(t, &warmedNew, &mu)

	type v1ScenarioRequest struct {
		Version  int    `json:"version,omitempty"`
		Scenario string `json:"scenario"`
		Seed     int64  `json:"seed,omitempty"`
	}
	plainWarms := 0
	oldSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathHealth:
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		case PathScenario:
			dec := json.NewDecoder(r.Body)
			dec.DisallowUnknownFields()
			var req v1ScenarioRequest
			if err := dec.Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
				return
			}
			mu.Lock()
			plainWarms++
			mu.Unlock()
			writeJSON(w, http.StatusOK, ScenarioResponse{
				Scenario: "star:8", Routers: 8, Attachments: 7, WarmedConfigs: 8})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(oldSrv.Close)

	sc, err := NewShardedClient([]string{newSrv.URL, oldSrv.URL})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := sc.WarmScenario("star:8", 0)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 2 {
		t.Errorf("shards warmed = %d, want 2 (ring-scoped + v1 fallback)", shards)
	}
	mu.Lock()
	defer mu.Unlock()
	if plainWarms != 1 {
		t.Errorf("old shard served %d plain warms, want exactly 1 (the fallback)", plainWarms)
	}
	// The new shard's warm stayed ring-scoped: it parsed exactly its own
	// ring share (which may legitimately be small — the fleet's ports are
	// random — but never another shard's configuration).
	ring := newEndpointRing([]string{newSrv.URL, oldSrv.URL})
	self := normalizeEndpoint(newSrv.URL)
	want := map[string]bool{}
	for i := 1; i <= 8; i++ {
		cfg := "hostname R" + string(rune('0'+i)) + "\n"
		if ring.owner(suite.TextDigest(cfg)) == self {
			want[cfg] = true
		}
	}
	if len(warmedNew) != len(want) {
		t.Errorf("new shard warmed %d configs, ring routes it %d", len(warmedNew), len(want))
	}
	for _, cfg := range warmedNew {
		if !want[cfg] {
			t.Errorf("new shard warmed %q, which the ring routes elsewhere", cfg)
		}
	}
}
