package rest

import (
	"fmt"
	"strings"

	"repro/internal/batfish"
	"repro/internal/suite"
)

// stanzaTexts splits a configuration into its stanza byte segments — the
// unit the v4 delta ops count in. The splitters are lossless, so
// concatenating the result in order reproduces the text exactly; that is
// what lets a delta be applied by splicing stored segments.
func stanzaTexts(text string) []string {
	stanzas := batfish.SplitStanzas(text)
	out := make([]string, len(stanzas))
	for i, s := range stanzas {
		out[i] = s.Text
	}
	return out
}

// deltaWorthRatio bounds when a delta pays: when the spliced replacement
// text reaches this fraction of the full body, the delta saves too little
// wire to justify the server-side reassembly — ship the body instead.
const deltaWorthRatio = 0.75

// buildDelta computes the stanza-level edit from a prior revision's
// stanza sequence to text: the common stanza prefix and suffix are kept
// from the prior revision, the differing middle is skipped from it and
// spliced in from the new text verbatim. A repair-loop iteration edits
// one stanza of one router, so the middle is typically a single stanza
// and the delta a few hundred bytes. Returns nil when the delta would not
// pay (no shared stanzas, or the replacement approaches the full body).
func buildDelta(priorDigest string, prior []string, text string, d *suite.Digests) *ConfigDelta {
	next := stanzaTexts(text)
	if len(prior) == 0 || len(next) == 0 {
		return nil
	}
	limit := len(prior)
	if len(next) < limit {
		limit = len(next)
	}
	p := 0
	for p < limit && prior[p] == next[p] {
		p++
	}
	s := 0
	for s < limit-p && prior[len(prior)-1-s] == next[len(next)-1-s] {
		s++
	}
	if p+s == 0 {
		return nil
	}
	var middle strings.Builder
	for _, t := range next[p : len(next)-s] {
		middle.WriteString(t)
	}
	if float64(middle.Len()) >= deltaWorthRatio*float64(len(text)) {
		return nil
	}
	delta := &ConfigDelta{PriorDigest: priorDigest, Digest: d.Of(text)}
	if p > 0 {
		delta.Ops = append(delta.Ops, DeltaOp{Keep: p})
	}
	if skip := len(prior) - p - s; skip > 0 {
		delta.Ops = append(delta.Ops, DeltaOp{Skip: skip})
	}
	if middle.Len() > 0 {
		delta.Ops = append(delta.Ops, DeltaOp{Text: middle.String()})
	}
	if s > 0 {
		delta.Ops = append(delta.Ops, DeltaOp{Keep: s})
	}
	return delta
}

// applyDelta reassembles a configuration from a prior revision's stanza
// sequence and a delta, verifying the result hashes to the delta's
// claimed digest. The ops must consume the prior sequence exactly — a
// delta that leaves stanzas unaccounted for is malformed, not silently
// truncated.
func applyDelta(prior []string, delta *ConfigDelta) (string, error) {
	var b strings.Builder
	pos := 0
	for _, op := range delta.Ops {
		switch {
		case op.Keep > 0:
			if pos+op.Keep > len(prior) {
				return "", fmt.Errorf("delta keeps %d stanzas past the prior revision's %d", op.Keep, len(prior))
			}
			for _, s := range prior[pos : pos+op.Keep] {
				b.WriteString(s)
			}
			pos += op.Keep
		case op.Skip > 0:
			if pos+op.Skip > len(prior) {
				return "", fmt.Errorf("delta skips %d stanzas past the prior revision's %d", op.Skip, len(prior))
			}
			pos += op.Skip
		case op.Text != "":
			b.WriteString(op.Text)
		}
	}
	if pos != len(prior) {
		return "", fmt.Errorf("delta consumed %d of the prior revision's %d stanzas", pos, len(prior))
	}
	text := b.String()
	if suite.TextDigest(text) != delta.Digest {
		return "", fmt.Errorf("reassembled revision does not hash to the claimed digest")
	}
	return text, nil
}

// deltaKey identifies which device a configuration text is a revision of,
// so the client can pair each revision with its predecessor when building
// deltas: successive revisions of one router share a hostname while
// differing in body. Scans the leading lines for the Cisco or Junos
// hostname statement; an empty key means "unknown device" and disables
// deltas for that text. A wrong pairing can never corrupt results — the
// delta is built from the actual stored stanzas and digest-verified — it
// only compresses worse.
func deltaKey(text string) string {
	for _, line := range strings.SplitN(text, "\n", 64) {
		t := strings.TrimSpace(line)
		if h, ok := strings.CutPrefix(t, "hostname "); ok {
			return "h:" + strings.TrimSpace(h)
		}
		if h, ok := strings.CutPrefix(t, "host-name "); ok {
			return "j:" + strings.TrimSpace(strings.TrimSuffix(h, ";"))
		}
	}
	return ""
}
