package rest

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/suite"
)

// retryTestOpts keeps the backoff sleeps out of the test's wall clock.
func retryTestOpts() ClientOptions {
	return ClientOptions{
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
	}
}

// TestRetryRidesOutTransientFault starts a server whose first two
// requests die at the transport layer — a backend mid-restart — and
// expects the client to ride the fault out within its default attempt
// budget, with the retries accounted.
func TestRetryRidesOutTransientFault(t *testing.T) {
	srv := httptest.NewServer(faultinject.AbortFirst(NewHandler(), 2))
	defer srv.Close()
	c := NewClientOpts(srv.URL, retryTestOpts())
	if _, err := c.CheckSyntax("hostname R1\n"); err != nil {
		t.Fatalf("transient fault not ridden out: %v", err)
	}
	if got := c.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := c.Calls(); got != 3 {
		t.Errorf("calls = %d, want 3 (two aborted + one served)", got)
	}
}

// TestRetryBudgetExhausted points the client at a server that kills
// every request: the failure must propagate as a *TransportError after
// exactly MaxAttempts round-trips, so the failover layer above sees one
// classified failure, not an unbounded stall.
func TestRetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer srv.Close()
	opts := retryTestOpts()
	opts.MaxAttempts = 3
	c := NewClientOpts(srv.URL, opts)
	_, err := c.CheckSyntax("hostname R1\n")
	if !IsTransportError(err) {
		t.Fatalf("exhausted retries did not yield a transport error: %v", err)
	}
	if got := c.Calls(); got != 3 {
		t.Errorf("calls = %d, want 3 attempts", got)
	}
}

// TestCallerCancellationPropagatesImmediately cancels the caller's
// context while the server sits on the request. The cancellation must
// come back as the bare context error — not a *TransportError, which the
// sharded client would misread as a dead shard — and must not consume
// retry attempts: one round-trip, no retries.
func TestCallerCancellationPropagatesImmediately(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer srv.Close()
	defer close(release)
	c := NewClientOpts(srv.URL, retryTestOpts())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := c.CheckBatch(ctx, []suite.Check{{Kind: suite.KindSyntax, Config: "hostname R1\n"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if IsTransportError(err) {
		t.Error("caller cancellation came back wrapped as a transport error")
	}
	if got := c.Calls(); got != 1 {
		t.Errorf("calls = %d, want 1 — a cancelled request must not be retried", got)
	}
}

// TestFlakyShardSurvivesWithBudgetReset runs a fleet whose first shard
// drops every second batch request but always recovers. Each drop is
// followed by a success, so with the consecutive-failure budget the
// shard must never be failed over — cumulative isolated faults are not
// shard death. Client-side retries are disabled to expose every fault to
// the failover layer.
func TestFlakyShardSurvivesWithBudgetReset(t *testing.T) {
	inner := NewHandler()
	var batches atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Only batch traffic is flaky: the health endpoint stays reliable,
		// so the failover decision rests on the failure budget alone.
		if r.URL.Path == PathBatch && batches.Add(1)%2 == 0 {
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	})
	srv0 := httptest.NewServer(flaky)
	defer srv0.Close()
	srv1 := httptest.NewServer(NewHandler())
	defer srv1.Close()
	opts := retryTestOpts()
	opts.MaxAttempts = 1
	sc, err := NewShardedClientOpts([]string{srv0.URL, srv1.URL}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		checks := []suite.Check{{Kind: suite.KindSyntax,
			Config: fmt.Sprintf("hostname R%d\n", i)}}
		if _, err := sc.CheckBatch(context.Background(), checks); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	for _, st := range sc.Stats() {
		if st.Dead {
			t.Errorf("flaky-but-recovering shard was failed over: %s", st)
		}
	}
}
