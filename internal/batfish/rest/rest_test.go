package rest

import (
	"net/http/httptest"
	"testing"

	"repro/internal/exampledata"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/netgen"
)

func newTestClient(t *testing.T) *Client {
	t.Helper()
	srv := httptest.NewServer(NewHandler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL)
}

func TestHealth(t *testing.T) {
	c := newTestClient(t)
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
}

func TestSyntaxRoundTrip(t *testing.T) {
	c := newTestClient(t)
	warns, err := c.CheckSyntax("configure terminal\nhostname r1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 1 {
		t.Fatalf("warnings = %v, want exactly the CLI keyword warning", warns)
	}
	warns, err = c.CheckSyntax(exampledata.CiscoExample)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("example config should be clean, got %v", warns)
	}
}

func TestDiffRoundTrip(t *testing.T) {
	c := newTestClient(t)
	// Diffing the original against an empty Juniper config must produce
	// structural findings.
	findings, err := c.DiffTranslation(exampledata.CiscoExample, "system {\n    host-name border1;\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("expected structural findings against an empty translation")
	}
}

func TestTopologyRoundTrip(t *testing.T) {
	c := newTestClient(t)
	topo, err := netgen.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	spec := topo.Router("R2")
	findings, err := c.VerifyTopology(*spec, "hostname R2\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("empty config should violate the topology spec")
	}
}

func TestLocalRoundTrip(t *testing.T) {
	c := newTestClient(t)
	req := lightyear.Requirement{
		Kind:      lightyear.EgressDropsCommunity,
		Router:    "R1",
		Policy:    "FILTER",
		Community: netcfg.MustCommunity("100:1"),
	}
	cfg := "hostname R1\n" +
		"ip community-list 1 permit 100:1\n" +
		"route-map FILTER permit 10\n"
	viol, bad, err := c.CheckLocalPolicy(cfg, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Fatal("permit-all policy must violate the drop requirement")
	}
	if viol.Witness == nil || !viol.Witness.HasCommunity(netcfg.MustCommunity("100:1")) {
		t.Fatalf("witness should carry 100:1, got %v", viol.Witness)
	}
}
