package rest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/suite"
	"repro/internal/topology"
)

// ClientOptions tunes the REST client.
type ClientOptions struct {
	// Timeout bounds each request (default 30s). Batched requests carry a
	// whole iteration's checks, so set it with the batch size in mind.
	Timeout time.Duration
	// MaxIdleConnsPerHost sizes the connection pool (default 16, against
	// net/http's default of 2): concurrent suite checks and back-to-back
	// batches reuse warm connections instead of opening one per check.
	MaxIdleConnsPerHost int
}

// Client calls the verification suite over HTTP. It implements
// core.Verifier — and core.BatchVerifier via CheckSuite, which ships many
// checks in one /v1/batch round-trip, falling back to per-check calls
// against servers that predate the batch endpoint.
type Client struct {
	base string
	http *http.Client
	// calls counts HTTP round-trips issued, for round-trip accounting in
	// benchmarks and tests.
	calls atomic.Int64
	// batchUnsupported latches after a 404/405 (no batch endpoint) or 400
	// (batch dialect rejected, e.g. a protocol-version mismatch) from
	// /v1/batch so an old server costs the probe exactly once.
	batchUnsupported atomic.Bool
}

// NewClient returns a client for a batfishd base URL (e.g.
// "http://localhost:9876") with default options.
func NewClient(base string) *Client {
	return NewClientOpts(base, ClientOptions{})
}

// NewClientOpts returns a client with tuned transport options.
func NewClientOpts(base string, opts ClientOptions) *Client {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.MaxIdleConnsPerHost == 0 {
		opts.MaxIdleConnsPerHost = 16
	}
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = opts.MaxIdleConnsPerHost
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: opts.Timeout, Transport: transport},
	}
}

// Calls returns the number of HTTP round-trips issued so far.
func (c *Client) Calls() int64 { return c.calls.Load() }

// post sends a JSON request and decodes the JSON response into out; the
// returned status is valid whenever err is nil or the status was not OK.
func (c *Client) post(path string, in, out interface{}) (status int, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("encoding %s request: %w", path, err)
	}
	c.calls.Add(1)
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("calling %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return resp.StatusCode, fmt.Errorf("reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s: %s", path, e.Error)
		}
		return resp.StatusCode, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
	}
	return resp.StatusCode, nil
}

// Health checks the service.
func (c *Client) Health() error {
	c.calls.Add(1)
	resp, err := c.http.Get(c.base + PathHealth)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: HTTP %d", resp.StatusCode)
	}
	return nil
}

// CheckSyntax implements core.Verifier.
func (c *Client) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	var resp SyntaxResponse
	if _, err := c.post(PathSyntax, SyntaxRequest{Config: config}, &resp); err != nil {
		return nil, err
	}
	return resp.Warnings, nil
}

// DiffTranslation implements core.Verifier.
func (c *Client) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	var resp DiffResponse
	if _, err := c.post(PathDiff, DiffRequest{Original: original, Translation: translation}, &resp); err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// VerifyTopology implements core.Verifier.
func (c *Client) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	var resp TopologyResponse
	if _, err := c.post(PathTopology, TopologyRequest{Spec: spec, Config: config}, &resp); err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// CheckLocalPolicy implements core.Verifier. The per-check endpoint is
// the v1 protocol, so the advisory attachment identity is stripped from
// the wire: servers predating the attachment model decode the payload
// strictly and would reject the unknown field, and no server dispatches
// on the identity. The batched endpoint (protocol v2) ships it intact.
func (c *Client) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	wire := req
	wire.Attachment = lightyear.AttachmentRef{}
	var resp LocalResponse
	if _, err := c.post(PathLocal, LocalRequest{Config: config, Requirement: wire}, &resp); err != nil {
		return lightyear.Violation{}, false, err
	}
	if !resp.Violated {
		return lightyear.Violation{}, false, nil
	}
	if resp.Violation == nil {
		return lightyear.Violation{}, false,
			fmt.Errorf("%s: violated but no violation in response", PathLocal)
	}
	return *resp.Violation, true, nil
}

// GlobalNoTransit implements core.Verifier.
func (c *Client) GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error) {
	var resp NoTransitResponse
	if _, err := c.post(PathNoTransit, NoTransitRequest{Topology: t, Configs: configs}, &resp); err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Search asks a SearchRoutePolicies question about one config.
func (c *Client) Search(config string, q batfish.SearchQuery) (batfish.SearchResult, error) {
	var resp SearchResponse
	if _, err := c.post(PathSearch, SearchRequest{Config: config, Query: q}, &resp); err != nil {
		return batfish.SearchResult{}, err
	}
	return resp.Result, nil
}

// CheckSuite implements the engine's batched-verifier seam (core.BatchVerifier): all checks ship as one
// /v1/batch round-trip. Against a server without the batch endpoint the
// client falls back to one call per check — same results, old cost — and
// remembers, so the probe is paid once per client.
func (c *Client) CheckSuite(checks []suite.Check) ([]suite.Result, error) {
	if len(checks) == 0 {
		return nil, nil
	}
	if !c.batchUnsupported.Load() {
		req := BatchRequest{Version: BatchProtocolVersion,
			Checks: make([]BatchCheck, len(checks))}
		for i, sc := range checks {
			req.Checks[i] = BatchCheck{
				Kind:        string(sc.Kind),
				Config:      sc.Config,
				Original:    sc.Original,
				Spec:        sc.Spec,
				Requirement: sc.Req,
			}
		}
		var resp BatchResponse
		status, err := c.post(PathBatch, req, &resp)
		switch {
		case err == nil:
			if len(resp.Results) != len(checks) {
				return nil, fmt.Errorf("%s: %d results for %d checks",
					PathBatch, len(resp.Results), len(checks))
			}
			out := make([]suite.Result, len(checks))
			for i, r := range resp.Results {
				if r.Error != "" {
					return nil, fmt.Errorf("%s: check %d (%s): %s",
						PathBatch, i, checks[i].Kind, r.Error)
				}
				out[i] = suite.Result{
					Warnings:  r.Warnings,
					Findings:  r.Findings,
					Diffs:     r.Diffs,
					Violated:  r.Violated,
					Violation: r.Violation,
				}
			}
			return out, nil
		case status == http.StatusNotFound || status == http.StatusMethodNotAllowed,
			status == http.StatusBadRequest:
			// 404/405: the server predates the batch endpoint entirely.
			// 400: the server rejected the batch dialect — either an old
			// server's strict decoder choking on the version field, or a
			// versioned server refusing a newer protocol. Both downgrade
			// to per-check calls, whose payloads stay v1-shaped.
			c.batchUnsupported.Store(true)
		default:
			return nil, err
		}
	}
	out := make([]suite.Result, len(checks))
	for i, sc := range checks {
		// suite.Eval dispatches onto this client's pre-batch endpoints.
		res, err := suite.Eval(c, sc)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}
