package rest

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/topology"
)

// TransportError marks a request that failed at the transport layer — the
// connection could not be established, died mid-request, or the response
// body was cut off — as opposed to a server that answered with an error.
// The distinction drives shard failover: a transport failure means the
// endpoint is down and its work should re-hash onto surviving shards,
// while a served error (bad request, semantic rejection) would reproduce
// identically on any shard and must propagate instead.
type TransportError struct {
	Path string
	Err  error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("calling %s: %v", e.Path, e.Err)
}

// Unwrap exposes the underlying transport failure.
func (e *TransportError) Unwrap() error { return e.Err }

// IsTransportError reports whether err (or anything it wraps) is a
// transport-layer failure rather than a served error response.
func IsTransportError(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// ClientOptions tunes the REST client.
type ClientOptions struct {
	// Timeout bounds each request attempt (default 30s) — the per-attempt
	// deadline of the retry loop. Batched requests carry a whole
	// iteration's checks, so set it with the batch size in mind.
	Timeout time.Duration
	// MaxIdleConnsPerHost sizes the connection pool (default 16, against
	// net/http's default of 2): concurrent suite checks and back-to-back
	// batches reuse warm connections instead of opening one per check.
	MaxIdleConnsPerHost int
	// MaxAttempts bounds transport-layer attempts per request (default 3,
	// 1 disables retries). Every check is a pure function of its inputs,
	// so a request that died at the transport layer — connection refused,
	// connection reset, attempt timeout — is safe to re-send; the client
	// retries it with capped exponential backoff and jitter before the
	// failure propagates to the failover layer. Served errors and caller
	// context cancellation are never retried.
	MaxAttempts int
	// RetryBaseDelay is the backoff before the first retry (default
	// 50ms); each further retry doubles it.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff growth (default 2s).
	RetryMaxDelay time.Duration
}

// Client calls the verification suite over HTTP. It implements
// core.Verifier — and the engine's backend seam (suite.Backend) via
// CheckBatch, which ships many checks in one /v1/batch round-trip,
// falling back to per-check calls against servers that predate the batch
// endpoint. ShardedClient fans the same seam out over several endpoints.
type Client struct {
	base string
	http *http.Client
	// maxAttempts / retryBase / retryMax are the transport retry policy
	// (see ClientOptions).
	maxAttempts int
	retryBase   time.Duration
	retryMax    time.Duration
	// calls counts HTTP round-trips issued, for round-trip accounting in
	// benchmarks and tests. It is an obs instrument from birth so SetObs
	// can adopt it into a metrics registry without losing counts.
	calls *obs.Counter
	// retries counts transport-layer attempts beyond each request's first
	// — how much transient-fault riding the retry loop did.
	retries *obs.Counter
	// batchUnsupported latches after a 404/405 (no batch endpoint) or 400
	// (batch dialect rejected, e.g. a protocol-version mismatch) from
	// /v1/batch so an old server costs the probe exactly once.
	batchUnsupported atomic.Bool
	// prewarm records the scenario a WarmScenario call registered
	// resolvable spec bodies for (ScenarioResponse.SpecsRegistered > 0):
	// while set, batched checks ship SpecRef/ReqRef digests instead of the
	// spec and requirement bodies (batch protocol v3).
	prewarm atomic.Pointer[prewarmState]
	// refsUnsupported latches after a 400 on a ref-carrying batch — an
	// older server, or a registry that no longer resolves this client's
	// digests — so the run pays exactly one extra round-trip before
	// settling back on full-bodied payloads.
	refsUnsupported atomic.Bool
	// noTransitIncUnsupported latches after a 400 on a v2 (session-
	// carrying) no-transit request — an old server's strict decoder
	// rejecting the unknown fields, or a versioned server refusing the
	// dialect — so the run pays exactly one extra round-trip before
	// settling back on stateless v1 checks.
	noTransitIncUnsupported atomic.Bool
	// deltasUnsupported latches after a 400 on a delta-carrying batch
	// (batch protocol v4) — an older server's version gate or strict
	// decoder — so the run pays exactly one extra round-trip before
	// settling back on full config bodies. A 409 (stale revision) never
	// latches: it is repaired per call by re-sending full bodies.
	deltasUnsupported atomic.Bool
	// bytesOut sums the request-body bytes this client put on the wire —
	// the quantity the delta protocol exists to shrink, compared directly
	// by the benchmarks.
	bytesOut *obs.Counter
	// tracer is the optional trace sink (nil = off): one batch_rpc span
	// per /v1/batch round-trip and one retry event per backoff attempt.
	// batchSeconds is the optional RPC-duration histogram a bound
	// registry provides.
	tracer       *obs.Tracer
	batchSeconds *obs.Histogram
	// revMu guards the delta bookkeeping: which configuration revisions
	// the server is believed to hold (revs, FIFO-bounded via revOrder) and
	// which revision was last sent for each device (lastRev, keyed by
	// deltaKey). digests memoizes revision hashing across it all.
	revMu    sync.Mutex
	revs     map[string][]string
	revOrder []string
	lastRev  map[string]string
	digests  *suite.Digests
}

// maxClientRevisions bounds the client's stored revision splits: a run
// touches one config set's worth of devices, so 64 covers every registry
// scenario with room while keeping a long multi-scenario process from
// accumulating splits forever.
const maxClientRevisions = 64

// prewarmState names the scenario whose bodies a server holds resolvable.
type prewarmState struct {
	scenario string
	seed     int64
}

// NewClient returns a client for a batfishd base URL (e.g.
// "http://localhost:9876") with default options.
func NewClient(base string) *Client {
	return NewClientOpts(base, ClientOptions{})
}

// NewClientOpts returns a client with tuned transport options.
func NewClientOpts(base string, opts ClientOptions) *Client {
	if opts.Timeout == 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.MaxIdleConnsPerHost == 0 {
		opts.MaxIdleConnsPerHost = 16
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 3
	}
	if opts.RetryBaseDelay == 0 {
		opts.RetryBaseDelay = 50 * time.Millisecond
	}
	if opts.RetryMaxDelay == 0 {
		opts.RetryMaxDelay = 2 * time.Second
	}
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = opts.MaxIdleConnsPerHost
	return &Client{
		base:        strings.TrimRight(base, "/"),
		http:        &http.Client{Timeout: opts.Timeout, Transport: transport},
		maxAttempts: opts.MaxAttempts,
		retryBase:   opts.RetryBaseDelay,
		retryMax:    opts.RetryMaxDelay,
		revs:        map[string][]string{},
		lastRev:     map[string]string{},
		digests:     suite.NewDigests(),
		calls:       &obs.Counter{},
		retries:     &obs.Counter{},
		bytesOut:    &obs.Counter{},
	}
}

// Calls returns the number of HTTP round-trips issued so far.
func (c *Client) Calls() int64 { return int64(c.calls.Value()) }

// BytesSent returns the request-body bytes put on the wire so far.
func (c *Client) BytesSent() int64 { return int64(c.bytesOut.Value()) }

// Retries returns the number of transport-layer retry attempts issued —
// round-trips beyond each request's first.
func (c *Client) Retries() int64 { return int64(c.retries.Value()) }

// SetObs adopts the client's transport counters into a metrics registry
// (labeled by endpoint) and binds an optional trace sink; either may be
// nil. Telemetry never changes what the client sends or accepts.
func (c *Client) SetObs(reg *obs.Registry, tr *obs.Tracer) {
	c.tracer = tr
	if reg == nil {
		return
	}
	reg.RegisterCounter("cosynth_rest_calls_total", c.calls, "endpoint", c.base)
	reg.RegisterCounter("cosynth_rest_retries_total", c.retries, "endpoint", c.base)
	reg.RegisterCounter("cosynth_rest_bytes_out_total", c.bytesOut, "endpoint", c.base)
	c.batchSeconds = reg.Histogram("cosynth_rest_batch_seconds", obs.DefSecondsBuckets,
		"endpoint", c.base)
}

// post sends a JSON request and decodes the JSON response into out; the
// returned status is valid whenever err is nil or the status was not OK.
func (c *Client) post(path string, in, out interface{}) (status int, err error) {
	return c.postCtx(context.Background(), path, in, out)
}

// postCtx is post with a request-scoped context. Transport-layer failures
// are retried with capped exponential backoff and jitter (the per-attempt
// deadline is the client's Timeout) up to the MaxAttempts budget; a
// failure that survives the budget comes back as *TransportError so
// callers (the sharded client) can tell a dead endpoint from a served
// error. Caller cancellation is different in kind: the ctx going away is
// the caller's decision, not the endpoint's health, so it propagates
// immediately as the bare context error — no retry, no backoff sleep,
// and no *TransportError wrapper for the failover layer to misread as a
// dead shard.
func (c *Client) postCtx(ctx context.Context, path string, in, out interface{}) (status int, err error) {
	delay := c.retryBase
	for attempt := 1; ; attempt++ {
		status, err = c.post1(ctx, path, in, out)
		if err == nil || !IsTransportError(err) {
			return status, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return status, cerr
		}
		if attempt >= c.maxAttempts {
			return status, err
		}
		c.retries.Inc()
		if c.tracer != nil {
			c.tracer.Emit(obs.Event{Stage: obs.StageRetry, Shard: c.base,
				Detail: path, Outcome: fmt.Sprintf("attempt %d", attempt)})
		}
		// Full jitter over the capped exponential window: concurrent
		// retries against one recovering endpoint spread out instead of
		// stampeding it in lockstep.
		if delay > c.retryMax {
			delay = c.retryMax
		}
		sleep := time.Duration(rand.Int64N(int64(delay))) + delay/2
		t := time.NewTimer(sleep)
		select {
		case <-ctx.Done():
			t.Stop()
			return status, ctx.Err()
		case <-t.C:
		}
		delay *= 2
	}
}

// post1 issues one attempt of a JSON POST. Transport-layer failures come
// back as *TransportError; caller cancellation comes back as the bare
// context error.
func (c *Client) post1(ctx context.Context, path string, in, out interface{}) (status int, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("building %s request: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	c.calls.Inc()
	c.bytesOut.Add(uint64(len(body)))
	resp, err := c.http.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return 0, cerr
		}
		return 0, &TransportError{Path: path, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return resp.StatusCode, cerr
		}
		return resp.StatusCode, &TransportError{Path: path, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return resp.StatusCode, fmt.Errorf("%s: %s", path, e.Error)
		}
		return resp.StatusCode, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
	}
	return resp.StatusCode, nil
}

// Health checks the service.
func (c *Client) Health() error {
	c.calls.Inc()
	resp, err := c.http.Get(c.base + PathHealth)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: HTTP %d", resp.StatusCode)
	}
	return nil
}

// ctxChecker carries a request context into the per-check fallback: it
// satisfies suite.Checker over a Client so suite.Eval's dispatch reuses
// the ctx-aware endpoint calls instead of dropping the caller's context.
type ctxChecker struct {
	c   *Client
	ctx context.Context
}

func (cc ctxChecker) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	return cc.c.checkSyntaxCtx(cc.ctx, config)
}

func (cc ctxChecker) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	return cc.c.diffTranslationCtx(cc.ctx, original, translation)
}

func (cc ctxChecker) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	return cc.c.verifyTopologyCtx(cc.ctx, spec, config)
}

func (cc ctxChecker) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	return cc.c.checkLocalPolicyCtx(cc.ctx, config, req)
}

// CheckSyntax implements core.Verifier.
func (c *Client) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	return c.checkSyntaxCtx(context.Background(), config)
}

func (c *Client) checkSyntaxCtx(ctx context.Context, config string) ([]netcfg.ParseWarning, error) {
	var resp SyntaxResponse
	if _, err := c.postCtx(ctx, PathSyntax, SyntaxRequest{Config: config}, &resp); err != nil {
		return nil, err
	}
	return resp.Warnings, nil
}

// DiffTranslation implements core.Verifier.
func (c *Client) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	return c.diffTranslationCtx(context.Background(), original, translation)
}

func (c *Client) diffTranslationCtx(ctx context.Context, original, translation string) ([]campion.Finding, error) {
	var resp DiffResponse
	if _, err := c.postCtx(ctx, PathDiff, DiffRequest{Original: original, Translation: translation}, &resp); err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// VerifyTopology implements core.Verifier.
func (c *Client) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	return c.verifyTopologyCtx(context.Background(), spec, config)
}

func (c *Client) verifyTopologyCtx(ctx context.Context, spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	var resp TopologyResponse
	if _, err := c.postCtx(ctx, PathTopology, TopologyRequest{Spec: spec, Config: config}, &resp); err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// CheckLocalPolicy implements core.Verifier. The per-check endpoint is
// the v1 protocol, so the advisory attachment identity is stripped from
// the wire: servers predating the attachment model decode the payload
// strictly and would reject the unknown field, and no server dispatches
// on the identity. The batched endpoint (protocol v2) ships it intact.
func (c *Client) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	return c.checkLocalPolicyCtx(context.Background(), config, req)
}

func (c *Client) checkLocalPolicyCtx(ctx context.Context, config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	wire := req
	wire.Attachment = lightyear.AttachmentRef{}
	var resp LocalResponse
	if _, err := c.postCtx(ctx, PathLocal, LocalRequest{Config: config, Requirement: wire}, &resp); err != nil {
		return lightyear.Violation{}, false, err
	}
	if !resp.Violated {
		return lightyear.Violation{}, false, nil
	}
	if resp.Violation == nil {
		return lightyear.Violation{}, false,
			fmt.Errorf("%s: violated but no violation in response", PathLocal)
	}
	return *resp.Violation, true, nil
}

// GlobalNoTransit implements core.Verifier.
func (c *Client) GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error) {
	var resp NoTransitResponse
	if _, err := c.post(PathNoTransit, NoTransitRequest{Topology: t, Configs: configs}, &resp); err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// GlobalNoTransitIncremental implements the engine's incremental-global
// capability (suite.IncrementalGlobal): the check ships v2-shaped (see
// NoTransitProtocolVersion), carrying the run's prior-configuration
// digest so the server continues its simulator session and re-simulates
// only the changed routers' flooding frontier. Results are byte-identical
// to GlobalNoTransit — the hint changes cost, never verdicts. Against a
// server that rejects the dialect (old strict decoder or version gate)
// the client falls back to the stateless v1 check and remembers, so the
// probe is paid once per client.
func (c *Client) GlobalNoTransitIncremental(t *topology.Topology, configs map[string]string,
	hint *suite.GlobalHint) (*lightyear.GlobalResult, error) {
	if hint == nil || c.noTransitIncUnsupported.Load() {
		return c.GlobalNoTransit(t, configs)
	}
	req := NoTransitRequest{
		Topology:    t,
		Configs:     configs,
		Version:     NoTransitProtocolVersion,
		PriorDigest: hint.PriorDigest,
		Changed:     hint.Changed,
	}
	var resp NoTransitResponse
	status, err := c.post(PathNoTransit, req, &resp)
	if err != nil {
		if !IsTransportError(err) && status == http.StatusBadRequest {
			c.noTransitIncUnsupported.Store(true)
			return c.GlobalNoTransit(t, configs)
		}
		return nil, err
	}
	return resp.Result, nil
}

// scenarioUnsupportedError marks a server that cannot serve the registry
// pre-warm dialect at all: no endpoint (404/405, a pre-registry binary) or
// a version-gate rejection (400, a server older than this client's
// dialect). The warm-up is an optimization, so callers skip it against
// such servers instead of failing.
type scenarioUnsupportedError struct {
	err error
}

// Error implements error.
func (e *scenarioUnsupportedError) Error() string {
	return fmt.Sprintf("scenario pre-warm unsupported by server: %v", e.err)
}

// Unwrap exposes the server's answer.
func (e *scenarioUnsupportedError) Unwrap() error { return e.err }

// IsScenarioUnsupported reports whether a WarmScenario error means the
// server simply does not speak the registry pre-warm dialect (old binary
// or older protocol version), as opposed to an unknown family or a
// warm-up failure.
func IsScenarioUnsupported(err error) bool {
	var se *scenarioUnsupportedError
	return errors.As(err, &se)
}

// WarmScenario asks the server to pre-warm its verification state for one
// registered topology family ("fat-tree:4"; size optional) at the given
// simulated-LLM seed (zero: default). The request stays v1-shaped — the
// oldest dialect any registry-aware server accepts — so old servers warm
// exactly as before; servers that predate the endpoint or its protocol
// version yield an error that satisfies IsScenarioUnsupported, so callers
// degrade gracefully — the warm-up is never required for correctness. A
// server that reports registered spec bodies arms the client's v3 batch
// references: later batches ship content digests instead of the bodies.
func (c *Client) WarmScenario(scenario string, seed int64) (ScenarioResponse, error) {
	return c.warmScenario(ScenarioRequest{Version: 1, Scenario: scenario, Seed: seed})
}

// WarmScenarioRing is WarmScenario scoped to this server's share of a
// shard fleet (scenario protocol v2): endpoints is the full list the
// client's consistent-hash ring is built from, self the endpoint this
// client addresses. Servers speaking only the v1 dialect reject the shape
// with an IsScenarioUnsupported error; callers retry with the plain
// WarmScenario.
func (c *Client) WarmScenarioRing(scenario string, seed int64, endpoints []string, self string) (ScenarioResponse, error) {
	return c.warmScenario(ScenarioRequest{Version: ScenarioProtocolVersion,
		Scenario: scenario, Seed: seed, ShardEndpoints: endpoints, Self: self})
}

func (c *Client) warmScenario(req ScenarioRequest) (ScenarioResponse, error) {
	var resp ScenarioResponse
	status, err := c.post(PathScenario, req, &resp)
	if err != nil {
		switch status {
		case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusBadRequest:
			return ScenarioResponse{}, &scenarioUnsupportedError{err: err}
		}
		return ScenarioResponse{}, err
	}
	if resp.SpecsRegistered > 0 {
		// The server holds this family's bodies content-addressed; switch
		// the batch path to references. The server echoes the resolved
		// name:size, which is what its registry is keyed by.
		c.prewarm.Store(&prewarmState{scenario: resp.Scenario, seed: req.Seed})
	}
	return resp, nil
}

// Search asks a SearchRoutePolicies question about one config.
func (c *Client) Search(config string, q batfish.SearchQuery) (batfish.SearchResult, error) {
	var resp SearchResponse
	if _, err := c.post(PathSearch, SearchRequest{Config: config, Query: q}, &resp); err != nil {
		return batfish.SearchResult{}, err
	}
	return resp.Result, nil
}

// Capabilities implements suite.Backend: one batched endpoint.
func (c *Client) Capabilities() suite.Capabilities {
	return suite.Capabilities{Batched: true}
}

// configDelta builds the v4 delta for one configuration, or nil when no
// usable prior revision is known (first sight of the device, identical
// revision, or a delta that would not pay).
func (c *Client) configDelta(text string) *ConfigDelta {
	key := deltaKey(text)
	if key == "" {
		return nil
	}
	dg := c.digests.Of(text)
	c.revMu.Lock()
	last, ok := c.lastRev[key]
	var prior []string
	if ok && last != dg {
		prior = c.revs[last] // stored splits are never mutated, safe outside the lock
	}
	c.revMu.Unlock()
	if prior == nil {
		return nil
	}
	return buildDelta(last, prior, text, c.digests)
}

// recordRevision remembers that the server now holds this revision (it
// just served a batch carrying or reassembling it), splitting the text
// once so later deltas can be built against it.
func (c *Client) recordRevision(text string) {
	key := deltaKey(text)
	if key == "" {
		return
	}
	dg := c.digests.Of(text)
	c.revMu.Lock()
	_, stored := c.revs[dg]
	c.revMu.Unlock()
	var split []string
	if !stored {
		split = stanzaTexts(text)
	}
	c.revMu.Lock()
	defer c.revMu.Unlock()
	if _, ok := c.revs[dg]; !ok && split != nil {
		c.revs[dg] = split
		c.revOrder = append(c.revOrder, dg)
		for len(c.revOrder) > maxClientRevisions {
			delete(c.revs, c.revOrder[0])
			c.revOrder = c.revOrder[1:]
		}
	}
	c.lastRev[key] = dg
}

// clearRevisions forgets every revision the server was believed to hold —
// the reaction to a 409, which proves the belief stale (restart,
// eviction, or a fleet re-shuffle landing the device elsewhere).
func (c *Client) clearRevisions() {
	c.revMu.Lock()
	defer c.revMu.Unlock()
	c.revs = map[string][]string{}
	c.revOrder = nil
	c.lastRev = map[string]string{}
}

// CheckBatch implements the engine's backend seam (suite.Backend): all
// checks ship as one /v1/batch round-trip. After a registry pre-warm
// against a server that registered resolvable bodies (see WarmScenario),
// spec and requirement bodies leave the wire: checks carry their
// RefDigest instead, and the request is stamped v3 with the scenario the
// server resolves them against. Configurations the server already holds a
// prior revision of leave the wire too: their checks carry a stanza-level
// ConfigDelta instead of the body, and the request is stamped v4 (see
// BatchProtocolVersion). Against a server without the batch endpoint the
// client falls back to one call per check — same results, old cost — and
// remembers, so the probe is paid once per client; likewise a rejected
// reference or delta dialect is retried without it once and remembered,
// and a stale-revision 409 is repaired per call by re-sending full
// bodies, which re-seed the server's revision store.
func (c *Client) CheckBatch(ctx context.Context, checks []suite.Check) ([]suite.Result, error) {
	if len(checks) == 0 {
		return nil, nil
	}
	// skipDeltas suppresses deltas for this call only: after a 409 the
	// resend must carry full bodies, but the capability itself is intact.
	skipDeltas := false
	for !c.batchUnsupported.Load() {
		prewarmed := c.prewarm.Load()
		useRefs := prewarmed != nil && !c.refsUnsupported.Load()
		useDeltas := !skipDeltas && !c.deltasUnsupported.Load()
		// Stamp the request with the dialect its payload actually uses: a
		// full-bodied batch is a v2 payload even from this client, so only
		// ref- or delta-carrying requests are ever version-rejected by
		// older servers.
		req := BatchRequest{Version: 2, Checks: make([]BatchCheck, len(checks))}
		refs, deltas := false, false
		// One delta per distinct revision: a batch carries the same
		// configuration for its syntax, topology, and local checks, and
		// they all diff against the same prior.
		deltaFor := map[string]*ConfigDelta{}
		for i, sc := range checks {
			bc := BatchCheck{Kind: string(sc.Kind), Config: sc.Config, Original: sc.Original}
			if useDeltas && sc.Config != "" {
				cd, ok := deltaFor[sc.Config]
				if !ok {
					cd = c.configDelta(sc.Config)
					deltaFor[sc.Config] = cd
				}
				if cd != nil {
					bc.ConfigDelta = cd
					bc.Config = ""
					deltas = true
				}
			}
			if useRefs && sc.Spec != nil {
				bc.SpecRef = RefDigest(sc.Spec)
				refs = true
			} else {
				bc.Spec = sc.Spec
			}
			if useRefs && sc.Req != nil {
				bc.ReqRef = RefDigest(sc.Req)
				refs = true
			} else {
				bc.Requirement = sc.Req
			}
			req.Checks[i] = bc
		}
		if refs {
			req.Version = 3
			req.Scenario = prewarmed.scenario
			req.Seed = prewarmed.seed
		}
		if deltas {
			req.Version = BatchProtocolVersion
		}
		var resp BatchResponse
		var rpcStart time.Time
		if c.tracer != nil || c.batchSeconds != nil {
			rpcStart = time.Now()
		}
		sentBefore := c.bytesOut.Value()
		status, err := c.postCtx(ctx, PathBatch, req, &resp)
		if !rpcStart.IsZero() {
			if c.batchSeconds != nil {
				c.batchSeconds.Observe(time.Since(rpcStart).Seconds())
			}
			if c.tracer != nil {
				outcome := "ok"
				if err != nil {
					outcome = fmt.Sprintf("http %d", status)
				}
				c.tracer.Span(rpcStart, obs.Event{Stage: obs.StageBatchRPC,
					Shard: c.base, Proto: req.Version, Checks: len(checks),
					Bytes: int64(c.bytesOut.Value() - sentBefore), Outcome: outcome})
			}
		}
		switch {
		case err == nil:
			if len(resp.Results) != len(checks) {
				return nil, fmt.Errorf("%s: %d results for %d checks",
					PathBatch, len(resp.Results), len(checks))
			}
			// The server now holds every revision this batch carried (as a
			// body or a reassembled delta); remember them so the next batch
			// can ship deltas against them.
			if !c.deltasUnsupported.Load() {
				recorded := map[string]bool{}
				for _, sc := range checks {
					if sc.Config != "" && !recorded[sc.Config] {
						recorded[sc.Config] = true
						c.recordRevision(sc.Config)
					}
				}
			}
			out := make([]suite.Result, len(checks))
			for i, r := range resp.Results {
				if r.Error != "" {
					return nil, fmt.Errorf("%s: check %d (%s): %s",
						PathBatch, i, checks[i].Kind, r.Error)
				}
				out[i] = suite.Result{
					Warnings:  r.Warnings,
					Findings:  r.Findings,
					Diffs:     r.Diffs,
					Violated:  r.Violated,
					Violation: r.Violation,
				}
			}
			return out, nil
		case IsTransportError(err):
			// A transport failure can still carry a status (the body read
			// died after the status line); it means the endpoint is down,
			// not that the dialect was rejected — never latch on it.
			return nil, err
		case deltas && status == http.StatusConflict:
			// The server no longer holds (or could not reproduce) a prior
			// revision — a restart, an eviction, or a fleet re-shuffle.
			// Re-send this batch with full bodies, which re-seed its store,
			// without giving up deltas for the run.
			c.clearRevisions()
			skipDeltas = true
			continue
		case deltas && status == http.StatusBadRequest:
			// The delta dialect was rejected: an older server's version
			// gate, or its strict decoder choking on the unknown field. Pay
			// one retry with full bodies and remember.
			c.deltasUnsupported.Store(true)
			continue
		case refs && status == http.StatusBadRequest:
			// The reference dialect was rejected: an older server, or a
			// registry that does not resolve this client's digests. Pay
			// one retry with full bodies and remember.
			c.refsUnsupported.Store(true)
			continue
		case status == http.StatusNotFound || status == http.StatusMethodNotAllowed,
			status == http.StatusBadRequest:
			// 404/405: the server predates the batch endpoint entirely.
			// 400: the server rejected the batch dialect — either an old
			// server's strict decoder choking on the version field, or a
			// versioned server refusing a newer protocol. Both downgrade
			// to per-check calls, whose payloads stay v1-shaped. The latch
			// flips the loop condition, landing on the fallback below.
			c.batchUnsupported.Store(true)
		default:
			return nil, err
		}
	}
	out := make([]suite.Result, len(checks))
	for i, sc := range checks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// suite.Eval dispatches onto this client's pre-batch endpoints,
		// carrying the caller's context into every request.
		res, err := suite.Eval(ctxChecker{c: c, ctx: ctx}, sc)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}
