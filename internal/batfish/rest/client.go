package rest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/batfish"
	"repro/internal/campion"
	"repro/internal/lightyear"
	"repro/internal/netcfg"
	"repro/internal/topology"
)

// Client calls the verification suite over HTTP. It implements
// core.Verifier, so the COSYNTH engine can run against a remote batfishd
// unchanged.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for a batfishd base URL (e.g.
// "http://localhost:9876").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// post sends a JSON request and decodes the JSON response into out.
func (c *Client) post(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("encoding %s request: %w", path, err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("calling %s: %w", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return fmt.Errorf("reading %s response: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", path, e.Error)
		}
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("decoding %s response: %w", path, err)
	}
	return nil
}

// Health checks the service.
func (c *Client) Health() error {
	resp, err := c.http.Get(c.base + PathHealth)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health: HTTP %d", resp.StatusCode)
	}
	return nil
}

// CheckSyntax implements core.Verifier.
func (c *Client) CheckSyntax(config string) ([]netcfg.ParseWarning, error) {
	var resp SyntaxResponse
	if err := c.post(PathSyntax, SyntaxRequest{Config: config}, &resp); err != nil {
		return nil, err
	}
	return resp.Warnings, nil
}

// DiffTranslation implements core.Verifier.
func (c *Client) DiffTranslation(original, translation string) ([]campion.Finding, error) {
	var resp DiffResponse
	if err := c.post(PathDiff, DiffRequest{Original: original, Translation: translation}, &resp); err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// VerifyTopology implements core.Verifier.
func (c *Client) VerifyTopology(spec topology.RouterSpec, config string) ([]topology.Finding, error) {
	var resp TopologyResponse
	if err := c.post(PathTopology, TopologyRequest{Spec: spec, Config: config}, &resp); err != nil {
		return nil, err
	}
	return resp.Findings, nil
}

// CheckLocalPolicy implements core.Verifier.
func (c *Client) CheckLocalPolicy(config string, req lightyear.Requirement) (lightyear.Violation, bool, error) {
	var resp LocalResponse
	if err := c.post(PathLocal, LocalRequest{Config: config, Requirement: req}, &resp); err != nil {
		return lightyear.Violation{}, false, err
	}
	if !resp.Violated {
		return lightyear.Violation{}, false, nil
	}
	return *resp.Violation, true, nil
}

// GlobalNoTransit implements core.Verifier.
func (c *Client) GlobalNoTransit(t *topology.Topology, configs map[string]string) (*lightyear.GlobalResult, error) {
	var resp NoTransitResponse
	if err := c.post(PathNoTransit, NoTransitRequest{Topology: t, Configs: configs}, &resp); err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Search asks a SearchRoutePolicies question about one config.
func (c *Client) Search(config string, q batfish.SearchQuery) (batfish.SearchResult, error) {
	var resp SearchResponse
	if err := c.post(PathSearch, SearchRequest{Config: config, Query: q}, &resp); err != nil {
		return batfish.SearchResult{}, err
	}
	return resp.Result, nil
}
