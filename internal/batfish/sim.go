package batfish

import (
	"fmt"
	"sort"

	"repro/internal/netcfg"
)

// Sim is the BGP control-plane simulator: the paper's final global check
// ("we simulate the entire BGP communication using Batfish as a final
// step, in order to ensure that the global policy is satisfied", §4.1).
//
// The model: every configured device and every external stub is a BGP
// speaker; eBGP sessions form between speakers that declare each other;
// announcements flow through the sender's export route map and the
// receiver's import route map; AS-path loop detection drops looped routes;
// best-path selection is local-pref, then AS-path length, then MED, then
// lowest peer address. Propagation iterates to a fixpoint.
type Sim struct {
	nodes   map[string]*simNode
	byAddr  map[uint32]*simNode
	added   []string // node names in AddDevice/AddExternal order
	maxIter int

	// Persistent-session state (see RunIncremental). record turns on
	// per-round history capture; history is the last run's round-by-round
	// RIB trajectory; dirty names the routers Update replaced since that
	// run; coldNeeded forces the next RunIncremental back onto the cold
	// path (set when an update changes interface addressing, which can
	// re-route other routers' neighbor declarations through byAddr in ways
	// the flooding frontier does not track).
	record     bool
	history    *simHistory
	dirty      map[string]bool
	coldNeeded bool
}

// simHistory is one run's round-by-round trajectory: rounds[0] holds the
// originated-routes-only initial state, rounds[k] the state after round k.
// Unchanged nodes share their previous round's map pointer, so memory
// cost is proportional to RIB churn, not rounds × nodes. The maps (and
// the candidates inside, which are immutable once installed) are never
// mutated after capture — the live per-node ribs are separate clones.
type simHistory struct {
	rounds     []historyRound
	iterations int
	converged  bool
}

type historyRound struct {
	ribs map[string]map[netcfg.Prefix]*candidate
	// changed names the nodes whose RIB changed in this round (empty for
	// round 0).
	changed map[string]bool
}

// ribAt returns a node's RIB after round k, reading past the recorded
// end as the converged fixpoint (a round that changes nothing can never
// resume changing, so the final state extends forever).
func (h *simHistory) ribAt(k int, name string) map[netcfg.Prefix]*candidate {
	if k >= len(h.rounds) {
		k = len(h.rounds) - 1
	}
	return h.rounds[k].ribs[name]
}

type simNode struct {
	name     string
	asn      uint32
	external bool
	dev      *netcfg.Device // nil for external stubs
	addrs    []uint32
	origin   []*netcfg.Route // self-originated routes

	// rib maps prefix -> selected best candidate.
	rib map[netcfg.Prefix]*candidate
	// sessions to peers.
	sessions []*session
}

type candidate struct {
	route *netcfg.Route
	from  string // peer node name ("" = originated locally)
}

type session struct {
	peer      *simNode
	peerAddr  uint32 // address we dial (for policy lookup on our side)
	localAddr uint32
	exportPol *netcfg.RoutePolicy
	importPol *netcfg.RoutePolicy
	envExport netcfg.PolicyEnv
	envImport netcfg.PolicyEnv
}

// NewSim returns an empty simulator.
func NewSim() *Sim {
	return &Sim{nodes: map[string]*simNode{}, byAddr: map[uint32]*simNode{}, maxIter: 64}
}

// AddDevice adds a configured router. Its interface addresses become
// dialable endpoints and its BGP network statements become originated
// routes.
func (s *Sim) AddDevice(name string, dev *netcfg.Device) error {
	if _, dup := s.nodes[name]; dup {
		return fmt.Errorf("duplicate node %s", name)
	}
	n := &simNode{name: name, rib: map[netcfg.Prefix]*candidate{}}
	initDevice(n, dev)
	for _, a := range n.addrs {
		s.byAddr[a] = n
	}
	s.nodes[name] = n
	s.added = append(s.added, name)
	return nil
}

// initDevice (re)derives a node's device-dependent state: ASN, originated
// routes, and interface addresses. byAddr maintenance is the caller's.
func initDevice(n *simNode, dev *netcfg.Device) {
	n.dev = dev
	n.asn = 0
	n.origin = nil
	n.addrs = nil
	if dev.BGP != nil {
		n.asn = dev.BGP.ASN
		for _, p := range dev.BGP.Networks {
			r := netcfg.NewRoute(p)
			r.Protocol = netcfg.ProtoBGP
			n.origin = append(n.origin, r)
		}
	}
	for _, ifc := range dev.Interfaces {
		if ifc.HasAddress && !ifc.Shutdown {
			n.addrs = append(n.addrs, ifc.Address.Addr)
		}
	}
}

// AddExternal adds an unconfigured stub speaker (an ISP or customer): it
// originates the given prefixes, accepts everything, and filters nothing.
func (s *Sim) AddExternal(name string, addr uint32, asn uint32, originates []netcfg.Prefix) error {
	if _, dup := s.nodes[name]; dup {
		return fmt.Errorf("duplicate node %s", name)
	}
	n := &simNode{name: name, asn: asn, external: true, rib: map[netcfg.Prefix]*candidate{}}
	n.addrs = append(n.addrs, addr)
	s.byAddr[addr] = n
	for _, p := range originates {
		r := netcfg.NewRoute(p)
		n.origin = append(n.origin, r)
	}
	s.nodes[name] = n
	s.added = append(s.added, name)
	return nil
}

// connect resolves sessions. A device-device session requires both sides
// to declare each other; a device-external session requires the device to
// declare the external stub's address.
func (s *Sim) connect() {
	for _, n := range s.nodes {
		n.sessions = nil
	}
	names := s.nodeNames()
	for _, name := range names {
		n := s.nodes[name]
		if n.dev == nil || n.dev.BGP == nil {
			continue
		}
		for _, nb := range n.dev.BGP.Neighbors {
			peer := s.byAddr[nb.Addr]
			if peer == nil || peer == n {
				continue
			}
			if !peer.external && !declares(peer, n) {
				continue // one-sided peering never comes up
			}
			sess := &session{
				peer:      peer,
				peerAddr:  nb.Addr,
				exportPol: n.dev.RoutePolicies[nb.ExportPolicy],
				importPol: n.dev.RoutePolicies[nb.ImportPolicy],
				envExport: n.dev,
				envImport: n.dev,
			}
			if nb.ExportPolicy != "" && sess.exportPol == nil {
				// Undefined policy: announce nothing (fail closed).
				sess.exportPol = &netcfg.RoutePolicy{Name: nb.ExportPolicy,
					Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Deny}}}
			}
			if nb.ImportPolicy != "" && sess.importPol == nil {
				sess.importPol = &netcfg.RoutePolicy{Name: nb.ImportPolicy,
					Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Deny}}}
			}
			n.sessions = append(n.sessions, sess)
			// External stubs get a mirror session (accept-all).
			if peer.external {
				peer.sessions = append(peer.sessions, &session{peer: n, peerAddr: n.addrs[0]})
			}
		}
	}
	// Deduplicate external mirror sessions.
	for _, n := range s.nodes {
		if !n.external {
			continue
		}
		seen := map[string]bool{}
		var uniq []*session
		for _, sess := range n.sessions {
			if !seen[sess.peer.name] {
				seen[sess.peer.name] = true
				uniq = append(uniq, sess)
			}
		}
		n.sessions = uniq
	}
}

func declares(n *simNode, peer *simNode) bool {
	if n.dev == nil || n.dev.BGP == nil {
		return true
	}
	for _, nb := range n.dev.BGP.Neighbors {
		for _, a := range peer.addrs {
			if nb.Addr == a {
				return true
			}
		}
	}
	return false
}

// Result holds the converged state.
type Result struct {
	// RIB maps node -> prefix -> best route (post-import attributes).
	RIB map[string]map[netcfg.Prefix]*netcfg.Route
	// Iterations is the number of propagation rounds to convergence.
	Iterations int
	// Converged is false if maxIter was hit (a propagation oscillation).
	Converged bool
}

// Run propagates announcements to a fixpoint and returns per-node RIBs.
// Outside a persistent session (see RunIncremental) it records nothing
// and costs exactly what the seed's one-shot simulation cost.
func (s *Sim) Run() *Result {
	s.connect()
	// Install originated routes.
	for _, n := range s.nodes {
		n.rib = map[netcfg.Prefix]*candidate{}
		for _, r := range n.origin {
			n.rib[r.Prefix] = &candidate{route: r.Clone(), from: ""}
		}
	}
	var hist *simHistory
	if s.record {
		hist = &simHistory{}
		round0 := historyRound{ribs: make(map[string]map[netcfg.Prefix]*candidate, len(s.nodes))}
		for name, n := range s.nodes {
			round0.ribs[name] = cloneRib(n.rib)
		}
		hist.rounds = append(hist.rounds, round0)
	}
	iter := 0
	converged := false
	for ; iter < s.maxIter; iter++ {
		changed := s.step()
		if len(changed) == 0 {
			converged = true
			break
		}
		if hist != nil {
			prev := hist.rounds[len(hist.rounds)-1].ribs
			round := historyRound{
				ribs:    make(map[string]map[netcfg.Prefix]*candidate, len(s.nodes)),
				changed: changed,
			}
			for name, n := range s.nodes {
				if changed[name] {
					round.ribs[name] = cloneRib(n.rib)
				} else {
					round.ribs[name] = prev[name]
				}
			}
			hist.rounds = append(hist.rounds, round)
		}
	}
	if hist != nil {
		hist.iterations = iter
		hist.converged = converged
	}
	s.history = hist
	s.dirty = nil
	s.coldNeeded = false
	res := &Result{RIB: map[string]map[netcfg.Prefix]*netcfg.Route{}, Iterations: iter, Converged: converged}
	for name, n := range s.nodes {
		ribs := map[netcfg.Prefix]*netcfg.Route{}
		for p, c := range n.rib {
			ribs[p] = c.route.Clone()
		}
		res.RIB[name] = ribs
	}
	return res
}

// step performs one synchronous propagation round; it returns the set of
// nodes whose RIB changed (nil/empty when the round reached a fixpoint).
func (s *Sim) step() map[string]bool {
	type incoming struct {
		to    *simNode
		from  *simNode
		route *netcfg.Route
	}
	var inbox []incoming
	for _, name := range s.nodeNames() {
		n := s.nodes[name]
		if len(n.sessions) == 0 {
			continue
		}
		// One sort per node per round: every session announces the same
		// round-start RIB.
		prefixes := sortedPrefixes(n.rib)
		for _, sess := range n.sessions {
			sess := sess
			announce(n, sess, n.rib, prefixes, func(r *netcfg.Route) {
				inbox = append(inbox, incoming{to: sess.peer, from: n, route: r})
			})
		}
	}
	var changed map[string]bool
	for _, msg := range inbox {
		if deliver(msg.to, msg.to.rib, msg.from, msg.route) {
			if changed == nil {
				changed = map[string]bool{}
			}
			changed[msg.to.name] = true
		}
	}
	return changed
}

// announce generates the routes node n offers on one session from the
// given round-start RIB snapshot, in sorted prefix order, calling emit
// for each route that survives split horizon and the export policy.
func announce(n *simNode, sess *session, rib map[netcfg.Prefix]*candidate,
	prefixes []netcfg.Prefix, emit func(*netcfg.Route)) {
	for _, p := range prefixes {
		c := rib[p]
		// Split horizon: do not send a route back to the peer that
		// supplied it.
		if c.from == sess.peer.name {
			continue
		}
		out := c.route.Clone()
		if !n.external && sess.exportPol != nil {
			res := netcfg.EvalPolicy(sess.exportPol, sess.envExport, out)
			if !res.Permitted {
				continue
			}
			out = res.Route
		}
		// eBGP: prepend sender AS, reset local preference.
		out.ASPath = append([]uint32{n.asn}, out.ASPath...)
		out.LocalPref = 100
		emit(out)
	}
}

// deliver processes one incoming announcement against a receiver RIB —
// loop detection, import policy, best-path selection — and reports
// whether the RIB changed. The RIB is passed explicitly so the frontier
// replay can run the identical logic against a detached map.
func deliver(to *simNode, rib map[netcfg.Prefix]*candidate, from *simNode, r *netcfg.Route) bool {
	// AS-path loop detection.
	if to.asn != 0 && r.HasASInPath(to.asn) {
		return false
	}
	if !to.external {
		if sess := to.sessionTo(from); sess != nil && sess.importPol != nil {
			res := netcfg.EvalPolicy(sess.importPol, sess.envImport, r)
			if !res.Permitted {
				return false
			}
			r = res.Route
		}
	}
	cur := rib[r.Prefix]
	if cur != nil && cur.from == "" {
		return false // locally originated always wins
	}
	cand := &candidate{route: r, from: from.name}
	if cur == nil || better(cand, cur) {
		if cur == nil || !routesEqual(cur.route, cand.route) || cur.from != cand.from {
			rib[r.Prefix] = cand
			return true
		}
	}
	return false
}

// Update replaces one configured router's device inside a persistent
// session and marks it dirty for the next RunIncremental. It returns an
// error for a router the session does not know (a topology change —
// callers rebuild the session instead). An update that changes the
// router's interface addressing flags the session for a cold replay: an
// address reassignment can re-route *other* routers' neighbor
// declarations through the address table in ways the flooding frontier
// does not track.
func (s *Sim) Update(router string, dev *netcfg.Device) error {
	n := s.nodes[router]
	if n == nil || n.external {
		return fmt.Errorf("unknown router %s", router)
	}
	if dev == nil {
		return fmt.Errorf("nil device for %s", router)
	}
	oldAddrs := n.addrs
	initDevice(n, dev)
	if !addrsEqual(oldAddrs, n.addrs) {
		s.coldNeeded = true
		s.rebuildByAddr()
	}
	if s.dirty == nil {
		s.dirty = map[string]bool{}
	}
	s.dirty[router] = true
	return nil
}

// rebuildByAddr re-derives the address table in the original node-add
// order, exactly reproducing what the same sequence of AddDevice and
// AddExternal calls would have built.
func (s *Sim) rebuildByAddr() {
	s.byAddr = map[uint32]*simNode{}
	for _, name := range s.added {
		n := s.nodes[name]
		for _, a := range n.addrs {
			s.byAddr[a] = n
		}
	}
}

func addrsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunIncremental is the persistent-session entry point: it propagates the
// routers marked dirty by Update through the previous run's recorded
// trajectory, recomputing only the flooding frontier, and returns a
// Result byte-identical to what a cold Run over the same devices would
// produce. The first call of a session (and any call without a usable
// baseline — prior non-convergence, an addressing change, or no pending
// updates recorded against a cleared history) pays one cold run, which
// also records the round-by-round history the next call replays against.
//
// Correctness rests on exact replay, not route withdrawal: the simulator's
// monotone no-withdrawal semantics make the converged RIB depend on the
// whole announcement history, so the frontier replay recomputes each
// affected node round by round with the cold step's exact per-receiver
// message order, and reuses the recorded round state for every node whose
// inputs provably match the previous run.
func (s *Sim) RunIncremental() *Result {
	s.record = true
	if s.history == nil || !s.history.converged || s.coldNeeded {
		return s.Run()
	}
	if len(s.dirty) == 0 {
		return s.resultFromHistory()
	}
	return s.replay()
}

// replay recomputes the flooding frontier against the recorded history.
//
// Terminology: a node is *structurally dirty* when its own policies — or
// a session touching a dirty router — may differ from the previous run
// (the dirty routers plus their old and new session peers); it is *value
// dirty* at round k when its round-k RIB differs from the recorded one.
// Round k recomputes exactly the structurally dirty nodes, the nodes
// value-dirty at k-1, and the session successors of the latter; every
// other node's inputs are provably identical to the previous run, so its
// recorded round-k state is reused verbatim (and the frontier contracts
// again when a recomputed RIB re-converges onto the recorded one).
func (s *Sim) replay() *Result {
	old := s.history
	// Structural dirt: the updated routers plus their session adjacency in
	// the pre-update session graph (still in place) and the post-update
	// one.
	structDirty := map[string]bool{}
	for name := range s.dirty {
		structDirty[name] = true
	}
	s.addAdjacency(structDirty, s.dirty)
	s.connect()
	s.addAdjacency(structDirty, s.dirty)

	names := s.nodeNames()
	newHist := &simHistory{}
	// Round 0: dirty routers re-install their originated routes; everyone
	// else matches the recorded initial state.
	round0 := historyRound{ribs: make(map[string]map[netcfg.Prefix]*candidate, len(s.nodes))}
	for _, name := range names {
		round0.ribs[name] = old.rounds[0].ribs[name]
	}
	valueDirty := map[string]bool{}
	for name := range s.dirty {
		n := s.nodes[name]
		rib := map[netcfg.Prefix]*candidate{}
		for _, r := range n.origin {
			rib[r.Prefix] = &candidate{route: r.Clone(), from: ""}
		}
		round0.ribs[name] = rib
		if !ribsEqual(rib, old.ribAt(0, name)) {
			valueDirty[name] = true
		}
	}
	newHist.rounds = append(newHist.rounds, round0)

	iter := 0
	converged := false
	for k := 1; k <= s.maxIter; k++ {
		prevRibs := newHist.rounds[len(newHist.rounds)-1].ribs
		// The recompute set for this round.
		recompute := map[string]bool{}
		for name := range structDirty {
			recompute[name] = true
		}
		for name := range valueDirty {
			recompute[name] = true
			for _, sess := range s.nodes[name].sessions {
				recompute[sess.peer.name] = true
			}
		}
		roundChanged := map[string]bool{}
		curNew := map[string]map[netcfg.Prefix]*candidate{}
		for _, name := range names {
			if !recompute[name] {
				continue
			}
			rib := s.replayReceive(s.nodes[name], names, prevRibs)
			curNew[name] = rib
			if !ribsEqual(rib, prevRibs[name]) {
				roundChanged[name] = true
			}
		}
		// Nodes outside the recompute set follow the recorded trajectory
		// verbatim, including whether they changed this round.
		if k < len(old.rounds) {
			for name := range old.rounds[k].changed {
				if !recompute[name] {
					roundChanged[name] = true
				}
			}
		}
		if len(roundChanged) == 0 {
			converged = true
			break
		}
		iter = k
		round := historyRound{
			ribs:    make(map[string]map[netcfg.Prefix]*candidate, len(s.nodes)),
			changed: roundChanged,
		}
		nextDirty := map[string]bool{}
		for _, name := range names {
			switch {
			case curNew[name] != nil:
				round.ribs[name] = curNew[name]
				if !ribsEqual(curNew[name], old.ribAt(k, name)) {
					nextDirty[name] = true
				}
			case k < len(old.rounds):
				round.ribs[name] = old.rounds[k].ribs[name]
			default:
				round.ribs[name] = prevRibs[name]
			}
		}
		newHist.rounds = append(newHist.rounds, round)
		valueDirty = nextDirty
	}
	if !converged {
		iter = s.maxIter
	}
	newHist.iterations = iter
	newHist.converged = converged
	s.history = newHist
	s.dirty = nil
	// Re-materialize the live ribs (detached from the shared history maps).
	final := newHist.rounds[len(newHist.rounds)-1].ribs
	for _, name := range names {
		s.nodes[name].rib = cloneRib(final[name])
	}
	return s.resultFromHistory()
}

// replayReceive recomputes one node's next-round RIB exactly as the cold
// step would: messages from every in-neighbor, generated from the
// senders' round-start RIBs, processed in the cold inbox's per-receiver
// order (senders sorted by name, each sender's sessions in declaration
// order, prefixes sorted). Per-receiver processing is independent in the
// cold step — a round's inbox is built entirely from round-start state and
// only the receiver's own RIB mutates while its messages apply — which is
// what makes recomputing one receiver in isolation exact.
func (s *Sim) replayReceive(x *simNode, names []string,
	startRibs map[string]map[netcfg.Prefix]*candidate) map[netcfg.Prefix]*candidate {
	rib := cloneRib(startRibs[x.name])
	for _, yname := range names {
		y := s.nodes[yname]
		var prefixes []netcfg.Prefix
		for _, sess := range y.sessions {
			if sess.peer != x {
				continue
			}
			if prefixes == nil {
				prefixes = sortedPrefixes(startRibs[yname])
			}
			announce(y, sess, startRibs[yname], prefixes, func(r *netcfg.Route) {
				deliver(x, rib, y, r)
			})
		}
	}
	return rib
}

// addAdjacency adds every session peer of the dirty set — in either
// direction — to out, reading the session graph as currently connected.
func (s *Sim) addAdjacency(out map[string]bool, dirty map[string]bool) {
	for name, n := range s.nodes {
		for _, sess := range n.sessions {
			if dirty[name] {
				out[sess.peer.name] = true
			}
			if dirty[sess.peer.name] {
				out[name] = true
			}
		}
	}
}

// resultFromHistory rebuilds the Result of the session's recorded run.
func (s *Sim) resultFromHistory() *Result {
	h := s.history
	final := h.rounds[len(h.rounds)-1].ribs
	res := &Result{
		RIB:        map[string]map[netcfg.Prefix]*netcfg.Route{},
		Iterations: h.iterations,
		Converged:  h.converged,
	}
	for name := range s.nodes {
		ribs := map[netcfg.Prefix]*netcfg.Route{}
		for p, c := range final[name] {
			ribs[p] = c.route.Clone()
		}
		res.RIB[name] = ribs
	}
	return res
}

func cloneRib(rib map[netcfg.Prefix]*candidate) map[netcfg.Prefix]*candidate {
	out := make(map[netcfg.Prefix]*candidate, len(rib))
	for p, c := range rib {
		out[p] = c
	}
	return out
}

// ribsEqual compares two RIBs by content: same prefixes, and per prefix
// the same supplying peer and route attributes — the same equality the
// cold step's change detection uses.
func ribsEqual(a, b map[netcfg.Prefix]*candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for p, ca := range a {
		cb := b[p]
		if cb == nil || ca.from != cb.from || !routesEqual(ca.route, cb.route) {
			return false
		}
	}
	return true
}

func (n *simNode) sessionTo(peer *simNode) *session {
	for _, sess := range n.sessions {
		if sess.peer == peer {
			return sess
		}
	}
	return nil
}

// better implements BGP best-path comparison between a new candidate and
// the incumbent.
func better(a, b *candidate) bool {
	if a.route.LocalPref != b.route.LocalPref {
		return a.route.LocalPref > b.route.LocalPref
	}
	if len(a.route.ASPath) != len(b.route.ASPath) {
		return len(a.route.ASPath) < len(b.route.ASPath)
	}
	if a.route.MED != b.route.MED {
		return a.route.MED < b.route.MED
	}
	return a.from < b.from
}

func routesEqual(a, b *netcfg.Route) bool {
	if a.Prefix != b.Prefix || a.MED != b.MED || a.LocalPref != b.LocalPref ||
		len(a.ASPath) != len(b.ASPath) || len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	for c := range a.Communities {
		if !b.Communities[c] {
			return false
		}
	}
	return true
}

func (s *Sim) nodeNames() []string {
	names := make([]string, 0, len(s.nodes))
	for n := range s.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedPrefixes(rib map[netcfg.Prefix]*candidate) []netcfg.Prefix {
	out := make([]netcfg.Prefix, 0, len(rib))
	for p := range rib {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// CanReach reports whether node has a route covering the prefix.
func (r *Result) CanReach(node string, p netcfg.Prefix) bool {
	rib := r.RIB[node]
	if rib == nil {
		return false
	}
	for got := range rib {
		if got.Contains(p) || got == p {
			return true
		}
	}
	return false
}
