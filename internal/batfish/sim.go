package batfish

import (
	"fmt"
	"sort"

	"repro/internal/netcfg"
)

// Sim is the BGP control-plane simulator: the paper's final global check
// ("we simulate the entire BGP communication using Batfish as a final
// step, in order to ensure that the global policy is satisfied", §4.1).
//
// The model: every configured device and every external stub is a BGP
// speaker; eBGP sessions form between speakers that declare each other;
// announcements flow through the sender's export route map and the
// receiver's import route map; AS-path loop detection drops looped routes;
// best-path selection is local-pref, then AS-path length, then MED, then
// lowest peer address. Propagation iterates to a fixpoint.
type Sim struct {
	nodes   map[string]*simNode
	byAddr  map[uint32]*simNode
	maxIter int
}

type simNode struct {
	name     string
	asn      uint32
	external bool
	dev      *netcfg.Device // nil for external stubs
	addrs    []uint32
	origin   []*netcfg.Route // self-originated routes

	// rib maps prefix -> selected best candidate.
	rib map[netcfg.Prefix]*candidate
	// sessions to peers.
	sessions []*session
}

type candidate struct {
	route *netcfg.Route
	from  string // peer node name ("" = originated locally)
}

type session struct {
	peer      *simNode
	peerAddr  uint32 // address we dial (for policy lookup on our side)
	localAddr uint32
	exportPol *netcfg.RoutePolicy
	importPol *netcfg.RoutePolicy
	envExport netcfg.PolicyEnv
	envImport netcfg.PolicyEnv
}

// NewSim returns an empty simulator.
func NewSim() *Sim {
	return &Sim{nodes: map[string]*simNode{}, byAddr: map[uint32]*simNode{}, maxIter: 64}
}

// AddDevice adds a configured router. Its interface addresses become
// dialable endpoints and its BGP network statements become originated
// routes.
func (s *Sim) AddDevice(name string, dev *netcfg.Device) error {
	if _, dup := s.nodes[name]; dup {
		return fmt.Errorf("duplicate node %s", name)
	}
	n := &simNode{name: name, dev: dev, rib: map[netcfg.Prefix]*candidate{}}
	if dev.BGP != nil {
		n.asn = dev.BGP.ASN
		for _, p := range dev.BGP.Networks {
			r := netcfg.NewRoute(p)
			r.Protocol = netcfg.ProtoBGP
			n.origin = append(n.origin, r)
		}
	}
	for _, ifc := range dev.Interfaces {
		if ifc.HasAddress && !ifc.Shutdown {
			n.addrs = append(n.addrs, ifc.Address.Addr)
			s.byAddr[ifc.Address.Addr] = n
		}
	}
	s.nodes[name] = n
	return nil
}

// AddExternal adds an unconfigured stub speaker (an ISP or customer): it
// originates the given prefixes, accepts everything, and filters nothing.
func (s *Sim) AddExternal(name string, addr uint32, asn uint32, originates []netcfg.Prefix) error {
	if _, dup := s.nodes[name]; dup {
		return fmt.Errorf("duplicate node %s", name)
	}
	n := &simNode{name: name, asn: asn, external: true, rib: map[netcfg.Prefix]*candidate{}}
	n.addrs = append(n.addrs, addr)
	s.byAddr[addr] = n
	for _, p := range originates {
		r := netcfg.NewRoute(p)
		n.origin = append(n.origin, r)
	}
	s.nodes[name] = n
	return nil
}

// connect resolves sessions. A device-device session requires both sides
// to declare each other; a device-external session requires the device to
// declare the external stub's address.
func (s *Sim) connect() {
	for _, n := range s.nodes {
		n.sessions = nil
	}
	names := s.nodeNames()
	for _, name := range names {
		n := s.nodes[name]
		if n.dev == nil || n.dev.BGP == nil {
			continue
		}
		for _, nb := range n.dev.BGP.Neighbors {
			peer := s.byAddr[nb.Addr]
			if peer == nil || peer == n {
				continue
			}
			if !peer.external && !declares(peer, n) {
				continue // one-sided peering never comes up
			}
			sess := &session{
				peer:      peer,
				peerAddr:  nb.Addr,
				exportPol: n.dev.RoutePolicies[nb.ExportPolicy],
				importPol: n.dev.RoutePolicies[nb.ImportPolicy],
				envExport: n.dev,
				envImport: n.dev,
			}
			if nb.ExportPolicy != "" && sess.exportPol == nil {
				// Undefined policy: announce nothing (fail closed).
				sess.exportPol = &netcfg.RoutePolicy{Name: nb.ExportPolicy,
					Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Deny}}}
			}
			if nb.ImportPolicy != "" && sess.importPol == nil {
				sess.importPol = &netcfg.RoutePolicy{Name: nb.ImportPolicy,
					Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Deny}}}
			}
			n.sessions = append(n.sessions, sess)
			// External stubs get a mirror session (accept-all).
			if peer.external {
				peer.sessions = append(peer.sessions, &session{peer: n, peerAddr: n.addrs[0]})
			}
		}
	}
	// Deduplicate external mirror sessions.
	for _, n := range s.nodes {
		if !n.external {
			continue
		}
		seen := map[string]bool{}
		var uniq []*session
		for _, sess := range n.sessions {
			if !seen[sess.peer.name] {
				seen[sess.peer.name] = true
				uniq = append(uniq, sess)
			}
		}
		n.sessions = uniq
	}
}

func declares(n *simNode, peer *simNode) bool {
	if n.dev == nil || n.dev.BGP == nil {
		return true
	}
	for _, nb := range n.dev.BGP.Neighbors {
		for _, a := range peer.addrs {
			if nb.Addr == a {
				return true
			}
		}
	}
	return false
}

// Result holds the converged state.
type Result struct {
	// RIB maps node -> prefix -> best route (post-import attributes).
	RIB map[string]map[netcfg.Prefix]*netcfg.Route
	// Iterations is the number of propagation rounds to convergence.
	Iterations int
	// Converged is false if maxIter was hit (a propagation oscillation).
	Converged bool
}

// Run propagates announcements to a fixpoint and returns per-node RIBs.
func (s *Sim) Run() *Result {
	s.connect()
	// Install originated routes.
	for _, n := range s.nodes {
		n.rib = map[netcfg.Prefix]*candidate{}
		for _, r := range n.origin {
			n.rib[r.Prefix] = &candidate{route: r.Clone(), from: ""}
		}
	}
	iter := 0
	converged := false
	for ; iter < s.maxIter; iter++ {
		if !s.step() {
			converged = true
			break
		}
	}
	res := &Result{RIB: map[string]map[netcfg.Prefix]*netcfg.Route{}, Iterations: iter, Converged: converged}
	for name, n := range s.nodes {
		ribs := map[netcfg.Prefix]*netcfg.Route{}
		for p, c := range n.rib {
			ribs[p] = c.route.Clone()
		}
		res.RIB[name] = ribs
	}
	return res
}

// step performs one synchronous propagation round; it reports whether any
// RIB changed.
func (s *Sim) step() bool {
	type incoming struct {
		to    *simNode
		from  *simNode
		route *netcfg.Route
	}
	var inbox []incoming
	for _, name := range s.nodeNames() {
		n := s.nodes[name]
		for _, sess := range n.sessions {
			for _, p := range sortedPrefixes(n.rib) {
				c := n.rib[p]
				// Split horizon: do not send a route back to the peer that
				// supplied it.
				if c.from == sess.peer.name {
					continue
				}
				out := c.route.Clone()
				if !n.external && sess.exportPol != nil {
					res := netcfg.EvalPolicy(sess.exportPol, sess.envExport, out)
					if !res.Permitted {
						continue
					}
					out = res.Route
				}
				// eBGP: prepend sender AS, reset local preference.
				out.ASPath = append([]uint32{n.asn}, out.ASPath...)
				out.LocalPref = 100
				inbox = append(inbox, incoming{to: sess.peer, from: n, route: out})
			}
		}
	}
	changed := false
	for _, msg := range inbox {
		to := msg.to
		r := msg.route
		// AS-path loop detection.
		if to.asn != 0 && r.HasASInPath(to.asn) {
			continue
		}
		if !to.external {
			if sess := to.sessionTo(msg.from); sess != nil && sess.importPol != nil {
				res := netcfg.EvalPolicy(sess.importPol, sess.envImport, r)
				if !res.Permitted {
					continue
				}
				r = res.Route
			}
		}
		cur := to.rib[r.Prefix]
		if cur != nil && cur.from == "" {
			continue // locally originated always wins
		}
		cand := &candidate{route: r, from: msg.from.name}
		if cur == nil || better(cand, cur) {
			if cur == nil || !routesEqual(cur.route, cand.route) || cur.from != cand.from {
				to.rib[r.Prefix] = cand
				changed = true
			}
		}
	}
	return changed
}

func (n *simNode) sessionTo(peer *simNode) *session {
	for _, sess := range n.sessions {
		if sess.peer == peer {
			return sess
		}
	}
	return nil
}

// better implements BGP best-path comparison between a new candidate and
// the incumbent.
func better(a, b *candidate) bool {
	if a.route.LocalPref != b.route.LocalPref {
		return a.route.LocalPref > b.route.LocalPref
	}
	if len(a.route.ASPath) != len(b.route.ASPath) {
		return len(a.route.ASPath) < len(b.route.ASPath)
	}
	if a.route.MED != b.route.MED {
		return a.route.MED < b.route.MED
	}
	return a.from < b.from
}

func routesEqual(a, b *netcfg.Route) bool {
	if a.Prefix != b.Prefix || a.MED != b.MED || a.LocalPref != b.LocalPref ||
		len(a.ASPath) != len(b.ASPath) || len(a.Communities) != len(b.Communities) {
		return false
	}
	for i := range a.ASPath {
		if a.ASPath[i] != b.ASPath[i] {
			return false
		}
	}
	for c := range a.Communities {
		if !b.Communities[c] {
			return false
		}
	}
	return true
}

func (s *Sim) nodeNames() []string {
	names := make([]string, 0, len(s.nodes))
	for n := range s.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func sortedPrefixes(rib map[netcfg.Prefix]*candidate) []netcfg.Prefix {
	out := make([]netcfg.Prefix, 0, len(rib))
	for p := range rib {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Len < out[j].Len
	})
	return out
}

// CanReach reports whether node has a route covering the prefix.
func (r *Result) CanReach(node string, p netcfg.Prefix) bool {
	rib := r.RIB[node]
	if rib == nil {
		return false
	}
	for got := range rib {
		if got.Contains(p) || got == p {
			return true
		}
	}
	return false
}
