package batfish

import (
	"reflect"
	"testing"

	"repro/internal/netcfg"
)

// coldResult runs a fresh one-shot simulation of the two-node pair with
// the given policies — the authority the incremental session must match
// byte for byte.
func coldResult(t *testing.T, exportMap, importMap string,
	mutate func(a, b *netcfg.Device)) *Result {
	t.Helper()
	a, b := twoNodeConfigs(t, exportMap, importMap)
	if mutate != nil {
		mutate(a, b)
	}
	sim := NewSim()
	if err := sim.AddDevice("A", a); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddDevice("B", b); err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

// requireSameResult asserts the incremental result is indistinguishable
// from the cold one: RIB contents, convergence, and iteration count.
func requireSameResult(t *testing.T, label string, cold, inc *Result) {
	t.Helper()
	if !reflect.DeepEqual(cold, inc) {
		t.Errorf("%s: incremental result diverges from cold\ncold: %+v\nincremental: %+v",
			label, cold, inc)
	}
}

// TestRunIncrementalMatchesCold drives one persistent session through a
// mutate/revert sequence and pins every step against a fresh cold run:
// the session must be a pure cost optimization.
func TestRunIncrementalMatchesCold(t *testing.T) {
	a, b := twoNodeConfigs(t, "", "")
	sim := NewSim()
	if err := sim.AddDevice("A", a); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddDevice("B", b); err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "baseline", coldResult(t, "", "", nil), sim.RunIncremental())

	// No updates: the recorded result is served again, unchanged.
	requireSameResult(t, "no-change", coldResult(t, "", "", nil), sim.RunIncremental())

	// Break A's export with a deny-all, replay, then revert.
	deny := func(dev *netcfg.Device) {
		dev.RoutePolicies["BLOCK"] = &netcfg.RoutePolicy{Name: "BLOCK",
			Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Deny}}}
	}
	a2, _ := twoNodeConfigs(t, "BLOCK", "")
	deny(a2)
	if err := sim.Update("A", a2); err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "deny-all export",
		coldResult(t, "BLOCK", "", func(a, _ *netcfg.Device) { deny(a) }),
		sim.RunIncremental())

	a3, _ := twoNodeConfigs(t, "", "")
	if err := sim.Update("A", a3); err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "revert", coldResult(t, "", "", nil), sim.RunIncremental())

	// An import-policy change on the receiver.
	setPref := func(dev *netcfg.Device) {
		dev.RoutePolicies["PREF"] = &netcfg.RoutePolicy{Name: "PREF",
			Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Permit,
				Sets: []netcfg.SetAction{netcfg.SetLocalPref{Pref: 200}}}}}
	}
	_, b2 := twoNodeConfigs(t, "", "PREF")
	setPref(b2)
	if err := sim.Update("B", b2); err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "import set-pref",
		coldResult(t, "", "PREF", func(_, b *netcfg.Device) { setPref(b) }),
		sim.RunIncremental())

	// An interface-address change forces the cold fallback (the session
	// graph may re-route through byAddr); results must still match.
	a4, _ := twoNodeConfigs(t, "", "")
	a4.Interfaces[0].Address.Addr = mustIP(t, "192.168.0.9")
	if err := sim.Update("A", a4); err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "address change",
		coldResult(t, "", "", func(a, _ *netcfg.Device) {
			a.Interfaces[0].Address.Addr = mustIP(t, "192.168.0.9")
		}),
		sim.RunIncremental())
}

// TestUpdateRejectsUnknownAndExternal pins Update's contract: only
// configured routers the session already knows can be updated in place.
func TestUpdateRejectsUnknownAndExternal(t *testing.T) {
	a, b := twoNodeConfigs(t, "", "")
	sim := NewSim()
	_ = sim.AddDevice("A", a)
	_ = sim.AddDevice("B", b)
	if err := sim.AddExternal("ISP", mustIP(t, "192.168.1.2"), 99,
		[]netcfg.Prefix{netcfg.MustPrefix("20.0.0.0/8")}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Update("C", a); err == nil {
		t.Error("updating an unknown router should error")
	}
	if err := sim.Update("ISP", a); err == nil {
		t.Error("updating an external stub should error")
	}
	if err := sim.Update("A", nil); err == nil {
		t.Error("updating with a nil device should error")
	}
}
