package batfish

import (
	"os"
	"strings"
	"testing"

	"repro/internal/netcfg"
)

func searchDevice() *netcfg.Device {
	d := netcfg.NewDevice("r", netcfg.VendorCisco)
	d.CommunityLists["1"] = &netcfg.CommunityList{Name: "1", Entries: []netcfg.CommunityListEntry{
		{Action: netcfg.Permit, Community: netcfg.MustCommunity("100:1")},
	}}
	d.PrefixLists["nets"] = &netcfg.PrefixList{Name: "nets", Entries: []netcfg.PrefixListEntry{
		{Seq: 5, Action: netcfg.Permit, Prefix: netcfg.MustPrefix("1.2.3.0/24"), Ge: 24},
	}}
	d.RoutePolicies["DROP_COMMUNITY"] = &netcfg.RoutePolicy{Name: "DROP_COMMUNITY",
		Clauses: []*netcfg.PolicyClause{
			{Seq: 10, Action: netcfg.Permit}, // wrong: permits everything
		}}
	d.RoutePolicies["GOOD"] = &netcfg.RoutePolicy{Name: "GOOD",
		Clauses: []*netcfg.PolicyClause{
			{Seq: 10, Action: netcfg.Deny,
				Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "1"}}},
			{Seq: 20, Action: netcfg.Permit},
		}}
	return d
}

func TestSearchFindsTable3Violation(t *testing.T) {
	// Table 3 semantic error: "The route-map DROP_COMMUNITY permits routes
	// that have the community 100:1. However, they should be denied."
	res, err := SearchRoutePolicies(searchDevice(), SearchQuery{
		Policy: "DROP_COMMUNITY",
		Action: "permit",
		Constraints: RouteConstraints{
			HasCommunities: []string{"100:1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("expected a witness")
	}
	if len(res.WitnessCommunities) != 1 || res.WitnessCommunities[0] != "100:1" {
		t.Errorf("witness communities = %v", res.WitnessCommunities)
	}
}

func TestSearchCleanOnCorrectPolicy(t *testing.T) {
	res, err := SearchRoutePolicies(searchDevice(), SearchQuery{
		Policy: "GOOD",
		Action: "permit",
		Constraints: RouteConstraints{
			HasCommunities: []string{"100:1"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("unexpected witness %q", res.Witness)
	}
}

func TestSearchPrefixConstraint(t *testing.T) {
	res, err := SearchRoutePolicies(searchDevice(), SearchQuery{
		Policy:      "GOOD",
		Action:      "permit",
		Constraints: RouteConstraints{Prefix: "1.2.3.0/24"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !strings.HasPrefix(res.WitnessPrefix, "1.2.3.") {
		t.Fatalf("witness = %+v", res)
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := SearchRoutePolicies(searchDevice(), SearchQuery{Policy: "nope", Action: "permit"}); err == nil {
		t.Error("undefined policy should error")
	}
	if _, err := SearchRoutePolicies(searchDevice(), SearchQuery{Policy: "GOOD", Action: "maybe"}); err == nil {
		t.Error("bad action should error")
	}
	if _, err := SearchRoutePolicies(searchDevice(), SearchQuery{Policy: "GOOD", Action: "permit",
		Constraints: RouteConstraints{Prefix: "garbage"}}); err == nil {
		t.Error("bad prefix constraint should error")
	}
	if _, err := SearchRoutePolicies(searchDevice(), SearchQuery{Policy: "GOOD", Action: "permit",
		Constraints: RouteConstraints{HasCommunities: []string{"100:1"},
			LacksCommunities: []string{"100:1"}}}); err == nil {
		t.Error("inconsistent constraints should error")
	}
	if _, err := SearchRoutePolicies(searchDevice(), SearchQuery{Policy: "GOOD", Action: "permit",
		Constraints: RouteConstraints{Protocol: "ipx"}}); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestDetectVendor(t *testing.T) {
	if v := DetectVendor("hostname r1\nrouter bgp 1\n"); v != netcfg.VendorCisco {
		t.Errorf("cisco detected as %v", v)
	}
	if v := DetectVendor("system {\n  host-name r1;\n}\n"); v != netcfg.VendorJuniper {
		t.Errorf("junos detected as %v", v)
	}
}

func TestSnapshotAddAndNames(t *testing.T) {
	s := NewSnapshot()
	s.AddConfig("b", "hostname b\n")
	s.AddConfig("a", "system {\n  host-name a;\n}\n")
	names := s.DeviceNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if s.Devices["a"].Vendor != netcfg.VendorJuniper {
		t.Error("vendor detection in snapshot failed")
	}
}

func TestLoadSnapshotFromDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/r1.cfg", "hostname r1\n")
	writeFile(t, dir+"/r2.cfg", "hostname r2\nbogus line\n")
	writeFile(t, dir+"/notes.txt", "ignored")
	s, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Devices) != 2 {
		t.Fatalf("devices = %v", s.DeviceNames())
	}
	if len(s.Warnings["r2"]) != 1 {
		t.Errorf("r2 warnings = %v", s.Warnings["r2"])
	}
	if _, err := LoadSnapshot(dir + "/missing"); err == nil {
		t.Error("missing dir should error")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
