package batfish_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/batfish"
	"repro/internal/cisco"
	"repro/internal/durable"
	"repro/internal/juniper"
	"repro/internal/llm"
	"repro/internal/modularizer"
	"repro/internal/netcfg"
	"repro/internal/netgen"
)

// stanzaCorpus generates the property corpus: for every registry scenario
// and every fuzz error class (plus the clean case), the per-router config
// the simulated LLM emits with that class injected on every router.
func stanzaCorpus(t *testing.T) map[string]string {
	t.Helper()
	corpus := map[string]string{}
	for _, sc := range netgen.Scenarios() {
		topo, err := netgen.Generate(sc.Name, sc.DefaultSize)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		tasks := modularizer.Tasks(topo)
		for class := llm.SErrCLIKeywords; class <= llm.SErrEgressDenyAll+1; class++ {
			errs := map[string][]llm.SynthError{}
			if class <= llm.SErrEgressDenyAll {
				for _, task := range tasks {
					errs[task.Router] = []llm.SynthError{class}
				}
			}
			s := llm.NewSynthesizer(llm.SynthConfig{Seed: 1, Errors: errs})
			var msgs []llm.Message
			for _, task := range tasks {
				msgs = append(msgs, llm.Message{Role: llm.RoleAutomated, Content: task.Prompt})
				resp, err := s.Complete(msgs)
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", sc.Name, class, task.Router, err)
				}
				msgs = append(msgs, llm.Message{Role: llm.RoleModel, Content: resp})
				corpus[sc.Name+"/"+class.String()+"/"+task.Router] = resp
			}
		}
	}
	return corpus
}

// TestStanzaSplitRoundTrip is the splitter's core property: split→join is
// byte-identical for every config emitted across all registry scenarios
// and all fuzz error classes, in both dialects.
func TestStanzaSplitRoundTrip(t *testing.T) {
	corpus := stanzaCorpus(t)
	if len(corpus) == 0 {
		t.Fatal("empty corpus")
	}
	for name, text := range corpus {
		stanzas := cisco.SplitStanzas(text)
		if got := netcfg.JoinStanzas(stanzas); got != text {
			t.Fatalf("%s: cisco split/join not byte-identical\nsplit kinds: %v", name, stanzaKinds(stanzas))
		}
		if len(stanzas) < 2 {
			t.Errorf("%s: config split into %d stanzas, expected addressable segments", name, len(stanzas))
		}
		// The same device printed as Junos must round-trip through the
		// juniper splitter.
		dev, _ := cisco.Parse(text)
		jtext := juniper.Print(dev)
		jstanzas := juniper.SplitStanzas(jtext)
		if got := netcfg.JoinStanzas(jstanzas); got != jtext {
			t.Fatalf("%s: juniper split/join not byte-identical", name)
		}
	}
}

func stanzaKinds(stanzas []netcfg.Stanza) []string {
	out := make([]string, len(stanzas))
	for i, s := range stanzas {
		out[i] = s.Kind + ":" + s.Name
	}
	return out
}

// TestIncrementalParseMatchesWholeParse pins the stanza-assembled parse
// against the whole parse for the full corpus: identical devices (modulo
// the provenance field only the incremental path records) and identical
// warning feeds.
func TestIncrementalParseMatchesWholeParse(t *testing.T) {
	corpus := stanzaCorpus(t)
	inc := batfish.NewParseCache()
	whole := batfish.NewWholeParseCache()
	assembled := 0
	for name, text := range corpus {
		got := inc.Parse(text)
		want := whole.Parse(text)
		if len(got.Device.Stanzas) > 0 {
			assembled++
		}
		gd := *got.Device
		gd.Stanzas = nil
		if !reflect.DeepEqual(&gd, want.Device) {
			t.Fatalf("%s: assembled device differs from whole parse", name)
		}
		if !reflect.DeepEqual(got.ParseWarnings, want.ParseWarnings) {
			t.Fatalf("%s: parse warnings differ\nincremental: %v\nwhole: %v",
				name, got.ParseWarnings, want.ParseWarnings)
		}
		if !reflect.DeepEqual(got.CheckWarnings, want.CheckWarnings) {
			t.Fatalf("%s: check warnings differ\nincremental: %v\nwhole: %v",
				name, got.CheckWarnings, want.CheckWarnings)
		}
	}
	if assembled == 0 {
		t.Error("no config took the stanza-assembly path; incremental parse is not exercised")
	}
	if hits, misses, _ := inc.FragmentStats(); hits == 0 || misses == 0 {
		t.Errorf("fragment sub-cache unexercised: hits=%d misses=%d", hits, misses)
	}
}

// TestStanzaSubCacheConcurrent hammers one stanza-enabled cache from
// parallel workers over a shared corpus — the -race CI leg proves the
// fragment sub-cache is data-race free, and every worker must observe
// identical parse products.
func TestStanzaSubCacheConcurrent(t *testing.T) {
	topo, err := netgen.Generate("random", 20)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	tasks := modularizer.Tasks(topo)
	s := llm.NewSynthesizer(llm.DefaultSynthConfig())
	var msgs []llm.Message
	for _, task := range tasks {
		msgs = append(msgs, llm.Message{Role: llm.RoleAutomated, Content: task.Prompt})
		resp, err := s.Complete(msgs)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, llm.Message{Role: llm.RoleModel, Content: resp})
		texts = append(texts, resp)
	}
	cache := batfish.NewParseCache()
	const workers = 8
	results := make([][]*netcfg.Parsed, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([]*netcfg.Parsed, len(texts))
			for i, text := range texts {
				out[i] = cache.Parse(text)
			}
			results[w] = out
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range texts {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d saw a different parse product for config %d", w, i)
			}
		}
	}
}

// TestStanzaFragmentsDurable proves the durable tier serves fragment
// parses across cache instances: a second cache mounted on the same store
// answers stanzas from disk without re-parsing, with identical results.
func TestStanzaFragmentsDurable(t *testing.T) {
	topo, err := netgen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	s := llm.NewSynthesizer(llm.DefaultSynthConfig())
	var msgs []llm.Message
	for _, task := range modularizer.Tasks(topo) {
		msgs = append(msgs, llm.Message{Role: llm.RoleAutomated, Content: task.Prompt})
		resp, err := s.Complete(msgs)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, llm.Message{Role: llm.RoleModel, Content: resp})
		texts = append(texts, resp)
	}
	dir := t.TempDir()
	store, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmCache := batfish.NewParseCache()
	warmCache.SetFragmentStore(store)
	want := make([]*netcfg.Parsed, len(texts))
	for i, text := range texts {
		want[i] = warmCache.Parse(text)
	}

	store2, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coldCache := batfish.NewParseCache()
	coldCache.SetFragmentStore(store2)
	for i, text := range texts {
		got := coldCache.Parse(text)
		if !reflect.DeepEqual(got.Device, want[i].Device) {
			t.Fatalf("config %d: durable-fragment device differs from fresh parse", i)
		}
		if !reflect.DeepEqual(got.CheckWarnings, want[i].CheckWarnings) {
			t.Fatalf("config %d: durable-fragment warnings differ", i)
		}
	}
	if _, _, diskHits := coldCache.FragmentStats(); diskHits == 0 {
		t.Error("second cache answered no fragments from the durable tier")
	}
	_ = topo
}

// TestSplitMemoResumeMatchesWholeParse drives a chain of single-point
// edits — appended tail, middle rewrite, head rewrite, stanza insertion
// and deletion — through one stanza-enabled cache, so every revision after
// the first can resume from the memoized split of its predecessor. Each
// revision must parse identically to a fresh whole parse; stanza
// granularity at the resume seam is allowed to differ (the assembler
// rejects any seam that would change the device), so only the device and
// warning feeds are pinned.
func TestSplitMemoResumeMatchesWholeParse(t *testing.T) {
	topo, err := netgen.Generate("random", 20)
	if err != nil {
		t.Fatal(err)
	}
	tasks := modularizer.Tasks(topo)
	s := llm.NewSynthesizer(llm.SynthConfig{Seed: 1})
	var msgs []llm.Message
	base := ""
	for _, task := range tasks {
		msgs = append(msgs, llm.Message{Role: llm.RoleAutomated, Content: task.Prompt})
		resp, err := s.Complete(msgs)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, llm.Message{Role: llm.RoleModel, Content: resp})
		if len(resp) > len(base) {
			base = resp
		}
	}
	if base == "" {
		t.Fatal("no base config")
	}

	// Locate a middle stanza boundary to splice at.
	stanzas := cisco.SplitStanzas(base)
	if len(stanzas) < 4 {
		t.Fatalf("base config split into %d stanzas, need at least 4", len(stanzas))
	}
	mid := 0
	for i := 1; i < len(stanzas)-1; i++ {
		mid += len(stanzas[i-1].Text)
		if mid > len(base)/2 {
			break
		}
	}

	revisions := []string{
		base,
		// Tail append: the whole prior split is reusable.
		base + "!\nip community-list 77 permit 65000:77\n",
		base + "!\nip community-list 77 permit 65000:77\n!\nip community-list 78 permit 65000:78\n",
		// Middle insertion: the prefix up to mid is reusable.
		base[:mid] + "!\nip route 192.0.2.0 255.255.255.0 Null0\n" + base[mid:],
		// Middle deletion: back to base (already memoized — whole-split hit).
		base,
		// Head rewrite: nothing reusable, full re-split.
		"! edited head\n" + base,
		// Tail append again on the edited-head revision.
		"! edited head\n" + base + "!\nip community-list 79 permit 65000:79\n",
	}

	inc := batfish.NewParseCache()
	for i, text := range revisions {
		got := inc.Parse(text)
		want := batfish.ParseAndCheck(text)
		gd := *got.Device
		gd.Stanzas = nil
		if !reflect.DeepEqual(&gd, want.Device) {
			t.Fatalf("revision %d: memo-resumed device differs from whole parse", i)
		}
		if !reflect.DeepEqual(got.ParseWarnings, want.ParseWarnings) {
			t.Fatalf("revision %d: parse warnings differ\nincremental: %v\nwhole: %v",
				i, got.ParseWarnings, want.ParseWarnings)
		}
		if !reflect.DeepEqual(got.CheckWarnings, want.CheckWarnings) {
			t.Fatalf("revision %d: check warnings differ\nincremental: %v\nwhole: %v",
				i, got.CheckWarnings, want.CheckWarnings)
		}
		if got2 := inc.Parse(text); got2 != got {
			t.Fatalf("revision %d: repeat parse returned a different product", i)
		}
	}
}
