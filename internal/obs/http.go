package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// MetricsPath and VarsPath are the two endpoints every metrics surface in
// the system mounts: Prometheus text exposition and an expvar-style JSON
// snapshot of the same registry.
const (
	MetricsPath = "/metrics"
	VarsPath    = "/debug/vars"
)

// Handler returns an http.Handler serving MetricsPath and VarsPath over
// the registry. Mount it on any mux (batfishd does; cosynth/cofuzz serve
// it standalone via Serve).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(MetricsPath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc(VarsPath, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	return mux
}

// Serve starts an HTTP server for the registry on addr (host:port; an
// empty or ":0" port picks one). It returns the bound address and a stop
// function; errors after startup are dropped — telemetry must never take
// the run down.
func Serve(addr string, reg *Registry) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
