package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Trace-event stages. Every span a pipeline run emits carries one of
// these in Event.Stage; the -trace-summary post-processor keys its
// attribution table on them.
const (
	// StageRun is the enclosing span of one whole Synthesize/Translate
	// run; its duration is the denominator of the attribution table.
	StageRun = "run"
	// StageLLMCall is one model completion (session.send), including
	// prompt rendering.
	StageLLMCall = "llm_call"
	// StageRender is one stanza/config render inside the model layer.
	StageRender = "render"
	// StageParse is one cache-missing configuration parse.
	StageParse = "parse"
	// StageLocalCheck is one verification dispatch through the cached
	// verifier — a single check or a prefetch batch (Outcome "check" or
	// "prefetch"); cache lookups, parses and batch RPCs nest inside it.
	StageLocalCheck = "local_check"
	// StageGlobalCheck is one global no-transit check; Outcome records
	// the method ("incremental", "cold", "compositional", "simulated").
	StageGlobalCheck = "global_check"
	// StageCacheHit / StageCacheMiss are point events from the
	// verification result cache; Outcome is the tier ("memory", "disk").
	StageCacheHit  = "cache_hit"
	StageCacheMiss = "cache_miss"
	// StageBatchRPC is one POST to a shard's batch endpoint, with
	// protocol version, check count, and bytes on the wire.
	StageBatchRPC = "batch_rpc"
	// StageRetry is one transport retry; StageFailover is a shard being
	// marked dead and its keys re-hashed.
	StageRetry    = "retry"
	StageFailover = "failover"
	// StageCheckpointSave / StageCheckpointRestore bracket durability.
	StageCheckpointSave    = "checkpoint_save"
	StageCheckpointRestore = "checkpoint_restore"
	// StageFuzzCase is one fuzz campaign case verdict.
	StageFuzzCase = "fuzz_case"
)

// Event is one JSONL trace record. TS is wall-clock; DurNS is the span
// duration (zero for point events). Run/Iter/Router/Attachment key the
// event to the pipeline position that emitted it; Shard/Proto/Checks/
// Bytes describe transport work; Outcome and Detail are
// stage-specific.
type Event struct {
	TS         time.Time `json:"ts"`
	Stage      string    `json:"stage"`
	DurNS      int64     `json:"dur_ns,omitempty"`
	Run        string    `json:"run,omitempty"`
	Iter       int       `json:"iter,omitempty"`
	Router     string    `json:"router,omitempty"`
	Attachment string    `json:"attachment,omitempty"`
	Shard      string    `json:"shard,omitempty"`
	Proto      int       `json:"proto,omitempty"`
	Checks     int       `json:"checks,omitempty"`
	Bytes      int64     `json:"bytes,omitempty"`
	Outcome    string    `json:"outcome,omitempty"`
	Detail     string    `json:"detail,omitempty"`
}

// Tracer serializes Events to a JSONL sink. All methods are nil-safe: a
// nil *Tracer is the disabled state and every Emit on it is a no-op, so
// call sites thread one pointer and never branch. A non-nil Tracer is
// safe for concurrent use.
type Tracer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewTracer returns a tracer writing JSONL events to w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// OpenTrace creates (truncating) the JSONL trace file at path.
func OpenTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Emit appends one event. Events with a zero TS are stamped with the
// current time. Write errors are sticky and surfaced by Close.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if ev.TS.IsZero() {
		ev.TS = time.Now()
	}
	data, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(data); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
	}
}

// Span emits a duration event for work that began at start: TS is the
// start time and DurNS the elapsed time since. The remaining fields come
// from ev.
func (t *Tracer) Span(start time.Time, ev Event) {
	if t == nil {
		return
	}
	ev.TS = start
	ev.DurNS = time.Since(start).Nanoseconds()
	t.Emit(ev)
}

// Flush forces buffered events to the sink (the live tail case).
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Close flushes and closes the sink, returning the first error the
// tracer hit. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ferr := t.w.Flush()
	if t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}
