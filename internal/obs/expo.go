package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// WritePrometheus renders every series in the registry in the Prometheus
// text exposition format (version 0.0.4): one `# TYPE` line per metric
// family, then its samples sorted by label set. Histograms expand into
// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range r.sorted() {
		if s.name != lastFamily {
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind)
			lastFamily = s.name
		}
		switch s.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", s.name, s.labels, s.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", s.name, s.labels, s.g.Value())
		case kindHistogram:
			buckets, count, sum := s.h.snapshot()
			cum := uint64(0)
			for i, b := range s.h.bounds {
				cum += buckets[i]
				fmt.Fprintf(bw, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", formatBound(b)), cum)
			}
			cum += buckets[len(buckets)-1]
			fmt.Fprintf(bw, "%s_bucket%s %d\n", s.name, withLabel(s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(bw, "%s_sum%s %s\n", s.name, s.labels, strconv.FormatFloat(sum, 'g', -1, 64))
			fmt.Fprintf(bw, "%s_count%s %d\n", s.name, s.labels, count)
		}
	}
	return bw.Flush()
}

// withLabel splices one extra label pair into an already-rendered label
// block (histogram `le` handling).
func withLabel(labels, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidateExposition checks that r is a well-formed Prometheus text
// exposition: every sample line parses (name, optional label block,
// float value), label blocks are well-quoted, every sample's family has
// a preceding # TYPE line whose kind admits the sample's suffix, no
// series appears twice, and every histogram family carries its +Inf
// bucket, _sum, and _count. It is the no-external-dep parser CI uses to
// gate the /metrics surface. Returns nil for a valid exposition.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}
	seen := map[string]bool{}
	hist := map[string]*histCheck{}
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE line: %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !metricNameRe.MatchString(name) {
					return fmt.Errorf("line %d: bad metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
				}
				if prev, ok := types[name]; ok && prev != kind {
					return fmt.Errorf("line %d: family %s re-typed %s -> %s", lineNo, name, prev, kind)
				}
				types[name] = kind
				if kind == "histogram" && hist[name] == nil {
					hist[name] = &histCheck{}
				}
			}
			continue // HELP and other comments pass through
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		family, suffix := familyOf(name, types)
		if family == "" {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE line", lineNo, name)
		}
		if types[family] == "histogram" {
			hc := hist[family]
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket %q without le label", lineNo, name)
				}
				if le == "+Inf" {
					hc.inf = true
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: bad le bound %q", lineNo, le)
				}
			case "_sum":
				hc.sum = true
			case "_count":
				hc.count = true
			default:
				return fmt.Errorf("line %d: sample %q does not belong to histogram family %s", lineNo, name, family)
			}
		}
		var kv []string
		for k, v := range labels {
			kv = append(kv, k, v)
		}
		key := name + renderLabels(kv)
		if seen[key] {
			return fmt.Errorf("line %d: duplicate series %q", lineNo, key)
		}
		seen[key] = true
		_ = value
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	for name, hc := range hist {
		if !hc.inf || !hc.sum || !hc.count {
			return fmt.Errorf("histogram family %s missing +Inf bucket, _sum, or _count", name)
		}
	}
	return nil
}

type histCheck struct{ inf, sum, count bool }

// familyOf resolves a sample name to its declared family, honoring the
// histogram suffixes.
func familyOf(name string, types map[string]string) (family, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if _, ok := types[base]; ok {
				return base, suf
			}
		}
	}
	return "", ""
}

// parseSample parses one `name{labels} value [timestamp]` sample line.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unbalanced label braces in %q", line)
		}
		if err := parseLabels(rest[brace+1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample %q has no value", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q has %d value fields, want 1 or 2", line, len(fields))
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses the inside of a label block: k="v" pairs,
// comma-separated, values escaped with \\, \", \n.
func parseLabels(s string, out map[string]string) error {
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i >= len(s) {
			break
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label pair without '=' in %q", s)
		}
		key := strings.TrimSpace(s[i : i+eq])
		if !labelNameRe.MatchString(key) {
			return fmt.Errorf("bad label name %q", key)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return fmt.Errorf("label value for %q is not quoted", key)
		}
		i++
		var val strings.Builder
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label value for %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label value for %q", s[i+1], key)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		out[key] = val.String()
	}
	return nil
}
