package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentHammer drives counters, gauges, and histograms
// from N goroutines while a scraper renders the exposition in a loop —
// the shape a live /metrics endpoint sees mid-run. Run under -race this
// is the registry's thread-safety gate; the count assertions prove no
// increment is lost.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 16
		rounds  = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrape loop: exposition and snapshot must stay valid while every
	// series is being written and new series are still appearing.
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if buf.Len() > 0 {
				if err := ValidateExposition(&buf); err != nil {
					t.Errorf("mid-hammer exposition invalid: %v", err)
					return
				}
			}
			_ = reg.Snapshot()
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := []string{"shard", string(rune('a' + w%4))}
			for i := 0; i < rounds; i++ {
				reg.Counter("hammer_ops_total", shard...).Inc()
				reg.Counter("hammer_bytes_total").Add(3)
				reg.Gauge("hammer_inflight").Add(1)
				reg.Histogram("hammer_seconds", DefSecondsBuckets, shard...).Observe(float64(i%100) / 1000)
				reg.Gauge("hammer_inflight").Add(-1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	var total uint64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += reg.Counter("hammer_ops_total", "shard", lbl).Value()
	}
	if want := uint64(workers * rounds); total != want {
		t.Fatalf("lost increments: ops_total = %d, want %d", total, want)
	}
	if got, want := reg.Counter("hammer_bytes_total").Value(), uint64(3*workers*rounds); got != want {
		t.Fatalf("bytes_total = %d, want %d", got, want)
	}
	if got := reg.Gauge("hammer_inflight").Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after all workers exited, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2, 100} {
		h.Observe(v)
	}
	buckets, count, sum := h.snapshot()
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	// le semantics: 0.005 and 0.01 land in the 0.01 bucket.
	if got := []uint64{buckets[0], buckets[1], buckets[2], buckets[3]}; got[0] != 2 || got[1] != 1 || got[2] != 1 || got[3] != 2 {
		t.Fatalf("bucket counts = %v, want [2 1 1 2]", got)
	}
	if want := 0.005 + 0.01 + 0.05 + 0.5 + 2 + 100; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "shard", `weird"name\with`+"\n"+`stuff`).Add(7)
	reg.Gauge("y_current").Set(-4)
	reg.Histogram("z_seconds", []float64{0.5, 1}).Observe(0.7)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE x_total counter",
		"# TYPE y_current gauge",
		"y_current -4",
		"# TYPE z_seconds histogram",
		`z_seconds_bucket{le="0.5"} 0`,
		`z_seconds_bucket{le="1"} 1`,
		`z_seconds_bucket{le="+Inf"} 1`,
		"z_seconds_sum 0.7",
		"z_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, text)
	}
}

func TestRegisterAdoptsExistingCounts(t *testing.T) {
	// The rebind contract: a component's counter accumulates before any
	// registry exists, then adoption exposes the same instrument — no
	// counts lost, and later increments are visible to the scrape.
	c := &Counter{}
	c.Add(41)
	reg := NewRegistry()
	reg.RegisterCounter("adopted_total", c, "tier", "memory")
	c.Inc()
	if got := reg.Counter("adopted_total", "tier", "memory").Value(); got != 42 {
		t.Fatalf("adopted counter = %d, want 42", got)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no type":          "no_type_metric 1\n",
		"bad value":        "# TYPE m counter\nm one\n",
		"duplicate":        "# TYPE m counter\nm 1\nm 2\n",
		"unbalanced brace": "# TYPE m counter\nm{a=\"b\" 1\n",
		"bad label":        "# TYPE m counter\nm{9bad=\"b\"} 1\n",
		"histogram no inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"empty":            "\n",
	}
	for name, text := range cases {
		if err := ValidateExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected validation error for %q", name, text)
		}
	}
}
