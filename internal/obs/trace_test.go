package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerEmitsValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	start := time.Unix(100, 0)
	tr.Emit(Event{TS: start, Stage: StageRun, DurNS: int64(8 * time.Second), Run: "synth"})
	tr.Emit(Event{TS: start, Stage: StageBatchRPC, Shard: "http://127.0.0.1:9/", Proto: 4, Checks: 12, Bytes: 3400, DurNS: 5})
	tr.Emit(Event{TS: start, Stage: StageCacheHit, Outcome: "disk", Router: "r3"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		n++
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", n, err)
		}
		if ev.Stage == "" {
			t.Fatalf("line %d has no stage", n)
		}
	}
	if n != 3 {
		t.Fatalf("got %d lines, want 3", n)
	}
}

func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Stage: StageLLMCall})
	tr.Span(time.Now(), Event{Stage: StageParse})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Event{Stage: StageParse, Router: "r"})
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte("\n")); got != 8*200 {
		t.Fatalf("got %d lines, want %d (events interleaved or lost)", got, 8*200)
	}
}

// traceFixture builds a synthetic sequential run: the top-level stages
// tile 9.5s of a 10s run span, with nested transport/cache/parse detail
// events that must NOT be double counted.
func traceFixture() string {
	ts := time.Unix(1000, 0)
	evs := []Event{
		{TS: ts, Stage: StageRun, DurNS: int64(10 * time.Second), Run: "synth"},
		{TS: ts, Stage: StageLLMCall, DurNS: int64(4 * time.Second), Iter: 1, Router: "r1"},
		{TS: ts, Stage: StageLocalCheck, DurNS: int64(3 * time.Second), Outcome: "prefetch", Checks: 20},
		{TS: ts, Stage: StageGlobalCheck, DurNS: int64(2 * time.Second), Outcome: "incremental"},
		{TS: ts, Stage: StageCheckpointSave, DurNS: int64(500 * time.Millisecond)},
		// Nested detail: inside local_check and llm_call above.
		{TS: ts, Stage: StageBatchRPC, DurNS: int64(2 * time.Second), Shard: "http://a", Proto: 4, Checks: 20, Bytes: 999},
		{TS: ts, Stage: StageRetry, Shard: "http://a"},
		{TS: ts, Stage: StageParse, DurNS: int64(1 * time.Second), Router: "r1"},
		{TS: ts, Stage: StageCacheHit, Outcome: "memory"},
		{TS: ts, Stage: StageCacheHit, Outcome: "disk"},
		{TS: ts, Stage: StageCacheMiss},
	}
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	for _, ev := range evs {
		tr.Emit(ev)
	}
	tr.Close()
	return buf.String()
}

func TestSummarizeAttribution(t *testing.T) {
	s, err := Summarize(strings.NewReader(traceFixture()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Runs != 1 || s.RunNS != int64(10*time.Second) {
		t.Fatalf("run span: %d spans, %v", s.Runs, time.Duration(s.RunNS))
	}
	// 4 + 3 + 2 + 0.5 = 9.5s of the 10s run: 95%, with the nested 3s of
	// batch_rpc+parse excluded from attribution.
	if got := s.AttributedNS(); got != int64(9500*time.Millisecond) {
		t.Fatalf("attributed = %v, want 9.5s", time.Duration(got))
	}
	if f := s.AttributedFraction(); f < 0.949 || f > 0.951 {
		t.Fatalf("attributed fraction = %v, want 0.95", f)
	}
	sh := s.Shards["http://a"]
	if sh == nil || sh.RPCs != 1 || sh.Checks != 20 || sh.Bytes != 999 || sh.Retries != 1 || sh.Protos[4] != 1 {
		t.Fatalf("shard table wrong: %+v", sh)
	}
	if s.CacheHitsMemory != 1 || s.CacheHitsDisk != 1 || s.CacheMisses != 1 {
		t.Fatalf("cache tallies: %d/%d/%d", s.CacheHitsMemory, s.CacheHitsDisk, s.CacheMisses)
	}
	out := s.String()
	for _, want := range []string{"llm_call", "attributed", "95.0%", "http://a"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeToleratesTornTail(t *testing.T) {
	text := traceFixture() + `{"ts":"2026-01-01T00:00:00Z","stage":"parse","dur_` // killed mid-write
	s, err := Summarize(strings.NewReader(text))
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if s.Runs != 1 {
		t.Fatalf("runs = %d, want 1", s.Runs)
	}
}
