// Package obs is the engine's zero-dependency observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms with atomic
// hot paths) with Prometheus text-format exposition, and a structured
// JSONL trace-event sink that reconstructs where a run's time and
// round-trips went.
//
// The registry is per-instance, never a process global: a run (or a
// daemon) creates one, hands it to the components it wants observed, and
// scrapes it. Metric instruments are usable standalone — new(Counter)
// works without any registry — so components own their counters from
// birth and *adopt* them into a registry when one is bound
// (RegisterCounter and friends). Adoption preserves accumulated counts,
// which is what keeps the pre-existing stats structs (CacheStats,
// ShardStat, durable.Stats) byte-identical as views over the same
// instruments.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; it is safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; it is safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Buckets are cumulative-at-exposition upper bounds (Prometheus `le`
// semantics); an implicit +Inf bucket catches the tail. Construct with
// NewHistogram; the zero value is not usable.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefSecondsBuckets is the default bucket layout for duration histograms,
// in seconds: sub-millisecond parse hits through multi-second global
// checks.
var DefSecondsBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30}

// NewHistogram returns a histogram over the given upper bounds. Bounds
// are sorted and deduplicated; an empty list yields a single +Inf bucket.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	out := bs[:0]
	for _, b := range bs {
		if math.IsInf(b, +1) || math.IsNaN(b) {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == b {
			continue
		}
		out = append(out, b)
	}
	return &Histogram{bounds: out, counts: make([]atomic.Uint64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v: the `le` bucket
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot returns (per-bucket counts, total count, sum). The reads are
// individually atomic but not mutually consistent; exposition tolerates
// that, as Prometheus clients do.
func (h *Histogram) snapshot() (buckets []uint64, count uint64, sum float64) {
	buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return buckets, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// kind discriminates the series union in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one (name, label-set) instrument in the registry.
type series struct {
	name   string
	labels string // rendered `{k="v",...}` or ""
	kind   metricKind

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry is a named collection of metric series. All methods are safe
// for concurrent use, including concurrent registration and scraping.
// Metric names must match Prometheus conventions
// ([a-zA-Z_:][a-zA-Z0-9_:]*); labels are passed as alternating key/value
// pairs and are sorted by key, so the argument order never creates a
// distinct series.
type Registry struct {
	mu     sync.RWMutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: map[string]*series{}}
}

// renderLabels folds alternating key/value pairs into the canonical
// `{k="v",...}` form (keys sorted). Values are escaped per the Prometheus
// text format. An odd trailing key is paired with "".
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		v := ""
		if i+1 < len(kv) {
			v = kv[i+1]
		}
		pairs = append(pairs, pair{kv[i], v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the series for (name, labels), creating it with mk when
// absent. A type clash (same name+labels, different kind) replaces the
// prior series — last registration wins, so rebinding a fresh run over a
// long-lived registry is well-defined.
func (r *Registry) get(name string, labels []string, k metricKind, mk func() *series) *series {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s != nil && s.kind == k {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.series[key]; s != nil && s.kind == k {
		return s
	}
	s = mk()
	s.name, s.labels, s.kind = name, ls, k
	r.series[key] = s
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. labels are alternating key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.get(name, labels, kindCounter, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.get(name, labels, kindGauge, func() *series { return &series{g: &Gauge{}} }).g
}

// Histogram returns the histogram for (name, labels), creating it with
// the given buckets on first use (later calls ignore buckets).
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return r.get(name, labels, kindHistogram, func() *series { return &series{h: NewHistogram(buckets...)} }).h
}

// RegisterCounter adopts an existing counter as the series for
// (name, labels), preserving its accumulated count. If the series already
// exists it is replaced — the components rebinding onto a registry own
// the truth, the registry is the view.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...string) {
	r.put(&series{name: name, labels: renderLabels(labels), kind: kindCounter, c: c})
}

// RegisterGauge adopts an existing gauge (see RegisterCounter).
func (r *Registry) RegisterGauge(name string, g *Gauge, labels ...string) {
	r.put(&series{name: name, labels: renderLabels(labels), kind: kindGauge, g: g})
}

// RegisterHistogram adopts an existing histogram (see RegisterCounter).
func (r *Registry) RegisterHistogram(name string, h *Histogram, labels ...string) {
	r.put(&series{name: name, labels: renderLabels(labels), kind: kindHistogram, h: h})
}

func (r *Registry) put(s *series) {
	r.mu.Lock()
	r.series[s.name+s.labels] = s
	r.mu.Unlock()
}

// sorted returns the series sorted by (name, labels) — the deterministic
// exposition order.
func (r *Registry) sorted() []*series {
	r.mu.RLock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Snapshot returns every series as a flat name{labels} -> value map:
// counters and gauges as numbers, histograms as {count, sum, buckets}.
// This is the /debug/vars payload and the merged-stats read surface.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, s := range r.sorted() {
		key := s.name + s.labels
		switch s.kind {
		case kindCounter:
			out[key] = s.c.Value()
		case kindGauge:
			out[key] = s.g.Value()
		case kindHistogram:
			buckets, count, sum := s.h.snapshot()
			bm := map[string]uint64{}
			cum := uint64(0)
			for i, b := range s.h.bounds {
				cum += buckets[i]
				bm[formatBound(b)] = cum
			}
			cum += buckets[len(buckets)-1]
			bm["+Inf"] = cum
			out[key] = map[string]any{"count": count, "sum": sum, "buckets": bm}
		}
	}
	return out
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}
