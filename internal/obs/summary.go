package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// topStages are the stages whose spans partition a sequential run's wall
// time: model completions, verification dispatch, the global check, and
// checkpointing. Everything else in a trace (parses, cache events, batch
// RPCs, retries) nests inside one of these, so summing only the top set
// attributes the run without double counting. On a parallel run top
// spans overlap and the attributed fraction can exceed 1.
var topStages = map[string]bool{
	StageLLMCall:           true,
	StageLocalCheck:        true,
	StageGlobalCheck:       true,
	StageCheckpointSave:    true,
	StageCheckpointRestore: true,
}

// StageAgg aggregates one stage's spans.
type StageAgg struct {
	Stage string
	Count int
	NS    int64
}

// ShardAgg aggregates one shard's batch RPCs.
type ShardAgg struct {
	Shard    string
	RPCs     int
	Checks   int
	Bytes    int64
	NS       int64
	Protos   map[int]int
	Retries  int
	Failover int
}

// Summary is the folded view of one trace file: where the run's wall
// time and round-trips went.
type Summary struct {
	Events int
	Runs   int
	RunNS  int64 // summed duration of StageRun spans
	Stages map[string]*StageAgg
	Shards map[string]*ShardAgg
	// Cache tallies from point events.
	CacheHitsMemory, CacheHitsDisk, CacheMisses int
}

// Summarize folds a JSONL trace stream into a Summary. Unknown stages
// are aggregated like any other; malformed lines are an error (a trace
// file is machine-written, so damage means truncation worth surfacing).
// A trailing partial line (process killed mid-write) is tolerated.
func Summarize(r io.Reader) (*Summary, error) {
	s := &Summary{Stages: map[string]*StageAgg{}, Shards: map[string]*ShardAgg{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			if !sc.Scan() { // last line: torn write from a killed process
				break
			}
			return nil, fmt.Errorf("trace line %d: %v", lineNo, err)
		}
		s.add(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Events == 0 {
		return nil, fmt.Errorf("trace contains no events")
	}
	return s, nil
}

func (s *Summary) add(ev Event) {
	s.Events++
	if ev.Stage == StageRun {
		s.Runs++
		s.RunNS += ev.DurNS
		return
	}
	agg := s.Stages[ev.Stage]
	if agg == nil {
		agg = &StageAgg{Stage: ev.Stage}
		s.Stages[ev.Stage] = agg
	}
	agg.Count++
	agg.NS += ev.DurNS

	switch ev.Stage {
	case StageCacheHit:
		if ev.Outcome == "disk" {
			s.CacheHitsDisk++
		} else {
			s.CacheHitsMemory++
		}
	case StageCacheMiss:
		s.CacheMisses++
	}
	if ev.Shard != "" {
		sh := s.Shards[ev.Shard]
		if sh == nil {
			sh = &ShardAgg{Shard: ev.Shard, Protos: map[int]int{}}
			s.Shards[ev.Shard] = sh
		}
		switch ev.Stage {
		case StageBatchRPC:
			sh.RPCs++
			sh.Checks += ev.Checks
			sh.Bytes += ev.Bytes
			sh.NS += ev.DurNS
			if ev.Proto != 0 {
				sh.Protos[ev.Proto]++
			}
		case StageRetry:
			sh.Retries++
		case StageFailover:
			sh.Failover++
		}
	}
}

// AttributedNS returns the wall time accounted to top-level stages.
func (s *Summary) AttributedNS() int64 {
	var n int64
	for stage, agg := range s.Stages {
		if topStages[stage] {
			n += agg.NS
		}
	}
	return n
}

// AttributedFraction is AttributedNS over the run span — the "where did
// the time go" coverage. Zero when the trace has no run span.
func (s *Summary) AttributedFraction() float64 {
	if s.RunNS == 0 {
		return 0
	}
	return float64(s.AttributedNS()) / float64(s.RunNS)
}

// String renders the attribution table: per-stage wall time against the
// run span, then the per-shard transport table.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %d run span(s), wall %v\n", s.Events, s.Runs, time.Duration(s.RunNS))
	fmt.Fprintf(&b, "\n%-20s %10s %14s %8s\n", "stage", "count", "time", "of run")
	stages := make([]*StageAgg, 0, len(s.Stages))
	for _, agg := range s.Stages {
		stages = append(stages, agg)
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].NS != stages[j].NS {
			return stages[i].NS > stages[j].NS
		}
		return stages[i].Stage < stages[j].Stage
	})
	for _, agg := range stages {
		pct := "-"
		mark := " "
		if topStages[agg.Stage] {
			mark = "*"
		}
		if s.RunNS > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(agg.NS)/float64(s.RunNS))
		}
		fmt.Fprintf(&b, "%-20s %10d %14v %8s%s\n", agg.Stage, agg.Count, time.Duration(agg.NS), pct, mark)
	}
	fmt.Fprintf(&b, "%-20s %10s %14v %7.1f%%  (* = top-level stages; nested stages excluded)\n",
		"attributed", "", time.Duration(s.AttributedNS()), 100*s.AttributedFraction())
	if s.CacheHitsMemory+s.CacheHitsDisk+s.CacheMisses > 0 {
		fmt.Fprintf(&b, "\ncache: %d memory hits, %d disk hits, %d misses\n",
			s.CacheHitsMemory, s.CacheHitsDisk, s.CacheMisses)
	}
	if len(s.Shards) > 0 {
		fmt.Fprintf(&b, "\n%-28s %6s %8s %12s %12s %8s %9s %6s\n",
			"shard", "rpcs", "checks", "bytes", "time", "retries", "failovers", "proto")
		shards := make([]*ShardAgg, 0, len(s.Shards))
		for _, sh := range s.Shards {
			shards = append(shards, sh)
		}
		sort.Slice(shards, func(i, j int) bool { return shards[i].Shard < shards[j].Shard })
		for _, sh := range shards {
			protos := make([]int, 0, len(sh.Protos))
			for p := range sh.Protos {
				protos = append(protos, p)
			}
			sort.Ints(protos)
			ps := make([]string, 0, len(protos))
			for _, p := range protos {
				ps = append(ps, fmt.Sprintf("v%d:%d", p, sh.Protos[p]))
			}
			fmt.Fprintf(&b, "%-28s %6d %8d %12d %12v %8d %9d %6s\n",
				sh.Shard, sh.RPCs, sh.Checks, sh.Bytes, time.Duration(sh.NS), sh.Retries, sh.Failover, strings.Join(ps, ","))
		}
	}
	return b.String()
}
