// Package cisco parses and prints the Cisco IOS configuration dialect used
// throughout the paper: interfaces, OSPF, BGP, prefix lists, community
// lists, static routes, and route maps. Parsing is mode-based (like IOS
// itself): block headers such as "interface", "router bgp", and "route-map"
// switch the current mode, and sub-commands are interpreted in that mode.
//
// The parser is deliberately tolerant: anything it does not understand
// becomes a netcfg.ParseWarning rather than a fatal error, because the
// whole point of the VPP loop is to surface those warnings to the LLM as
// syntax-error prompts.
package cisco

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netcfg"
)

// ForbiddenKeywords are the CLI/session keywords the paper's IIP database
// tells GPT-4 not to emit (§4.2 "Wrong keywords"). The parser flags them.
var ForbiddenKeywords = []string{
	"exit", "end", "configure", "conf", "write", "enable", "copy",
}

type mode int

const (
	modeTop mode = iota
	modeInterface
	modeOSPF
	modeBGP
	modeRouteMap
)

type parser struct {
	dev      *netcfg.Device
	warnings []netcfg.ParseWarning

	mode   mode
	curIfc *netcfg.Interface
	curMap *netcfg.PolicyClause
}

// Parse parses a Cisco IOS configuration into the vendor-neutral IR,
// returning the device and any parse warnings. Parse never fails outright;
// a config consisting only of garbage yields an empty device and one
// warning per line.
func Parse(text string) (*netcfg.Device, []netcfg.ParseWarning) {
	p := &parser{dev: netcfg.NewDevice("", netcfg.VendorCisco)}
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		lineNo := i + 1
		if line == "" || strings.HasPrefix(line, "!") {
			if line == "!" {
				p.mode = modeTop
				p.curIfc = nil
				p.curMap = nil
			}
			continue
		}
		p.parseLine(lineNo, line)
	}
	return p.dev, p.warnings
}

func (p *parser) warn(line int, text, reason string) {
	p.warnings = append(p.warnings, netcfg.ParseWarning{Line: line, Text: text, Reason: reason})
}

func (p *parser) parseLine(lineNo int, line string) {
	fields := strings.Fields(line)
	head := strings.ToLower(fields[0])

	// Forbidden session keywords are always top-level errors.
	for _, kw := range ForbiddenKeywords {
		if head == kw {
			p.warn(lineNo, line, "CLI session keyword is not valid in a configuration file")
			return
		}
	}
	if head == "hostname" {
		if len(fields) != 2 {
			p.warn(lineNo, line, "hostname expects one argument")
			return
		}
		p.dev.Hostname = fields[1]
		p.mode = modeTop
		return
	}

	// Block headers switch mode regardless of the current mode.
	switch head {
	case "interface":
		p.enterInterface(lineNo, line, fields)
		return
	case "router":
		p.enterRouter(lineNo, line, fields)
		return
	case "route-map":
		p.enterRouteMap(lineNo, line, fields)
		return
	case "ip":
		if len(fields) >= 2 {
			switch strings.ToLower(fields[1]) {
			case "prefix-list":
				p.parsePrefixList(lineNo, line, fields)
				return
			case "community-list":
				p.parseCommunityList(lineNo, line, fields)
				return
			case "route":
				p.parseStaticRoute(lineNo, line, fields)
				return
			case "routing":
				p.warn(lineNo, line, "'ip routing' is a CLI command, not a configuration statement")
				return
			}
		}
	}

	switch p.mode {
	case modeInterface:
		p.parseInterfaceSub(lineNo, line, fields)
	case modeOSPF:
		p.parseOSPFSub(lineNo, line, fields)
	case modeBGP:
		p.parseBGPSub(lineNo, line, fields)
	case modeRouteMap:
		p.parseRouteMapSub(lineNo, line, fields)
	default:
		p.parseTopSub(lineNo, line, fields)
	}
}

func (p *parser) enterInterface(lineNo int, line string, fields []string) {
	if len(fields) != 2 {
		p.warn(lineNo, line, "interface expects a name")
		p.mode = modeTop
		return
	}
	p.curIfc = p.dev.EnsureInterface(fields[1])
	p.mode = modeInterface
}

func (p *parser) enterRouter(lineNo int, line string, fields []string) {
	if len(fields) < 3 {
		p.warn(lineNo, line, "router expects a protocol and process/AS number")
		p.mode = modeTop
		return
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n <= 0 {
		p.warn(lineNo, line, "invalid process/AS number")
		p.mode = modeTop
		return
	}
	switch strings.ToLower(fields[1]) {
	case "ospf":
		p.dev.EnsureOSPF(n)
		p.mode = modeOSPF
	case "bgp":
		p.dev.EnsureBGP(uint32(n))
		p.mode = modeBGP
	default:
		p.warn(lineNo, line, "unsupported routing protocol")
		p.mode = modeTop
	}
}

func (p *parser) enterRouteMap(lineNo int, line string, fields []string) {
	// route-map NAME [permit|deny] [seq]
	if len(fields) < 2 {
		p.warn(lineNo, line, "route-map expects a name")
		p.mode = modeTop
		return
	}
	name := fields[1]
	action := netcfg.Permit
	seq := 10
	if len(fields) >= 3 {
		switch strings.ToLower(fields[2]) {
		case "permit":
			action = netcfg.Permit
		case "deny":
			action = netcfg.Deny
		default:
			p.warn(lineNo, line, "route-map action must be permit or deny")
			p.mode = modeTop
			return
		}
	}
	rp := p.dev.RoutePolicies[name]
	if rp == nil {
		rp = &netcfg.RoutePolicy{Name: name}
		p.dev.RoutePolicies[name] = rp
	}
	if len(fields) >= 4 {
		n, err := strconv.Atoi(fields[3])
		if err != nil {
			p.warn(lineNo, line, "invalid route-map sequence number")
			p.mode = modeTop
			return
		}
		seq = n
	} else if len(rp.Clauses) > 0 {
		seq = rp.Clauses[len(rp.Clauses)-1].Seq + 10
	}
	cl := rp.Clause(seq)
	if cl == nil {
		cl = &netcfg.PolicyClause{Seq: seq, Action: action}
		rp.Clauses = append(rp.Clauses, cl)
		rp.SortClauses()
	} else {
		cl.Action = action
	}
	p.curMap = cl
	p.mode = modeRouteMap
}

func (p *parser) parseInterfaceSub(lineNo int, line string, fields []string) {
	head := strings.ToLower(fields[0])
	switch head {
	case "description":
		p.curIfc.Description = strings.TrimSpace(strings.TrimPrefix(line, fields[0]))
	case "shutdown":
		p.curIfc.Shutdown = true
	case "no":
		if len(fields) >= 2 && strings.ToLower(fields[1]) == "shutdown" {
			p.curIfc.Shutdown = false
			return
		}
		p.warn(lineNo, line, "unsupported 'no' command in interface mode")
	case "ip":
		if len(fields) >= 4 && strings.ToLower(fields[1]) == "address" {
			addr, err1 := netcfg.ParseIP(fields[2])
			mask, err2 := netcfg.ParseIP(fields[3])
			if err1 != nil || err2 != nil {
				p.warn(lineNo, line, "invalid ip address")
				return
			}
			p.curIfc.Address = netcfg.Prefix{Addr: addr, Len: maskLen(mask)}
			p.curIfc.HasAddress = true
			return
		}
		if len(fields) >= 4 && strings.ToLower(fields[1]) == "ospf" && strings.ToLower(fields[2]) == "cost" {
			n, err := strconv.Atoi(fields[3])
			if err != nil || n < 0 {
				p.warn(lineNo, line, "invalid ospf cost")
				return
			}
			p.curIfc.OSPFCost = n
			return
		}
		p.warn(lineNo, line, "unsupported ip command in interface mode")
	default:
		p.warn(lineNo, line, "unknown command in interface mode")
	}
}

func (p *parser) parseOSPFSub(lineNo int, line string, fields []string) {
	o := p.dev.OSPF
	head := strings.ToLower(fields[0])
	switch head {
	case "router-id":
		if len(fields) != 2 {
			p.warn(lineNo, line, "router-id expects an address")
			return
		}
		id, err := netcfg.ParseIP(fields[1])
		if err != nil {
			p.warn(lineNo, line, "invalid router-id")
			return
		}
		o.RouterID = id
	case "passive-interface":
		if len(fields) != 2 {
			p.warn(lineNo, line, "passive-interface expects an interface name")
			return
		}
		o.PassiveInterfaces = append(o.PassiveInterfaces, fields[1])
	case "network":
		// network A.B.C.D W.W.W.W area N
		if len(fields) != 5 || strings.ToLower(fields[3]) != "area" {
			p.warn(lineNo, line, "network expects 'network <addr> <wildcard> area <n>'")
			return
		}
		addr, err1 := netcfg.ParseIP(fields[1])
		wild, err2 := netcfg.ParseIP(fields[2])
		area, err3 := strconv.ParseInt(fields[4], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			p.warn(lineNo, line, "invalid network statement")
			return
		}
		o.Networks = append(o.Networks, netcfg.OSPFNetwork{
			Prefix: netcfg.NewPrefix(addr, maskLen(^wild)),
			Area:   area,
		})
	default:
		p.warn(lineNo, line, "unknown command in router ospf mode")
	}
}

func (p *parser) parseBGPSub(lineNo int, line string, fields []string) {
	b := p.dev.BGP
	head := strings.ToLower(fields[0])
	switch head {
	case "bgp":
		if len(fields) == 3 && strings.ToLower(fields[1]) == "router-id" {
			id, err := netcfg.ParseIP(fields[2])
			if err != nil {
				p.warn(lineNo, line, "invalid bgp router-id")
				return
			}
			b.RouterID = id
			return
		}
		p.warn(lineNo, line, "unsupported bgp sub-command")
	case "network":
		p.parseBGPNetwork(lineNo, line, fields, b)
	case "neighbor":
		p.parseNeighbor(lineNo, line, fields, b)
	case "redistribute":
		p.parseRedistribute(lineNo, line, fields, b)
	default:
		p.warn(lineNo, line, "unknown command in router bgp mode")
	}
}

func (p *parser) parseBGPNetwork(lineNo int, line string, fields []string, b *netcfg.BGP) {
	// network A.B.C.D [mask M.M.M.M]
	if len(fields) != 2 && !(len(fields) == 4 && strings.ToLower(fields[2]) == "mask") {
		p.warn(lineNo, line, "network expects 'network <addr> [mask <mask>]'")
		return
	}
	addr, err := netcfg.ParseIP(fields[1])
	if err != nil {
		p.warn(lineNo, line, "invalid network address")
		return
	}
	length := classfulLen(addr)
	if len(fields) == 4 {
		mask, err := netcfg.ParseIP(fields[3])
		if err != nil {
			p.warn(lineNo, line, "invalid network mask")
			return
		}
		length = maskLen(mask)
	}
	b.Networks = append(b.Networks, netcfg.NewPrefix(addr, length))
}

func (p *parser) parseNeighbor(lineNo int, line string, fields []string, b *netcfg.BGP) {
	if len(fields) < 3 {
		p.warn(lineNo, line, "incomplete neighbor command")
		return
	}
	addr, err := netcfg.ParseIP(fields[1])
	if err != nil {
		p.warn(lineNo, line, "invalid neighbor address")
		return
	}
	n := b.EnsureNeighbor(addr)
	switch strings.ToLower(fields[2]) {
	case "remote-as":
		if len(fields) != 4 {
			p.warn(lineNo, line, "remote-as expects an AS number")
			return
		}
		asn, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			p.warn(lineNo, line, "invalid AS number")
			return
		}
		n.RemoteAS = uint32(asn)
	case "local-as":
		if len(fields) != 4 {
			p.warn(lineNo, line, "local-as expects an AS number")
			return
		}
		asn, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			p.warn(lineNo, line, "invalid AS number")
			return
		}
		n.LocalAS = uint32(asn)
	case "description":
		n.Description = strings.Join(fields[3:], " ")
	case "route-map":
		if len(fields) != 5 {
			p.warn(lineNo, line, "neighbor route-map expects '<name> in|out'")
			return
		}
		switch strings.ToLower(fields[4]) {
		case "in":
			n.ImportPolicy = fields[3]
		case "out":
			n.ExportPolicy = fields[3]
		default:
			p.warn(lineNo, line, "neighbor route-map direction must be 'in' or 'out'")
		}
	default:
		p.warn(lineNo, line, "unsupported neighbor attribute")
	}
}

func (p *parser) parseRedistribute(lineNo int, line string, fields []string, b *netcfg.BGP) {
	// redistribute <proto> [<process>] [route-map NAME]
	if len(fields) < 2 {
		p.warn(lineNo, line, "redistribute expects a protocol")
		return
	}
	proto, err := netcfg.ParseRedistProtocol(strings.ToLower(fields[1]))
	if err != nil {
		p.warn(lineNo, line, "unknown redistribution protocol")
		return
	}
	r := netcfg.Redistribution{Protocol: proto}
	rest := fields[2:]
	if len(rest) > 0 {
		if _, err := strconv.Atoi(rest[0]); err == nil {
			rest = rest[1:] // optional process id, e.g. "redistribute ospf 1"
		}
	}
	if len(rest) == 2 && strings.ToLower(rest[0]) == "route-map" {
		r.Policy = rest[1]
		rest = nil
	}
	if len(rest) != 0 {
		p.warn(lineNo, line, "malformed redistribute statement")
		return
	}
	b.Redistribute = append(b.Redistribute, r)
}

func (p *parser) parseRouteMapSub(lineNo int, line string, fields []string) {
	cl := p.curMap
	head := strings.ToLower(fields[0])
	switch head {
	case "match":
		p.parseRouteMapMatch(lineNo, line, fields, cl)
	case "set":
		p.parseRouteMapSet(lineNo, line, fields, cl)
	default:
		p.warn(lineNo, line, "unknown command in route-map mode")
	}
}

func (p *parser) parseRouteMapMatch(lineNo int, line string, fields []string, cl *netcfg.PolicyClause) {
	if len(fields) < 3 {
		p.warn(lineNo, line, "incomplete match statement")
		return
	}
	switch strings.ToLower(fields[1]) {
	case "ip":
		// match ip address prefix-list NAME
		if len(fields) == 5 && strings.ToLower(fields[2]) == "address" &&
			strings.ToLower(fields[3]) == "prefix-list" {
			cl.Matches = append(cl.Matches, netcfg.MatchPrefixList{List: fields[4]})
			return
		}
		p.warn(lineNo, line, "match ip expects 'match ip address prefix-list <name>'")
	case "community":
		if len(fields) != 3 {
			p.warn(lineNo, line, "match community expects one community-list reference")
			return
		}
		arg := fields[2]
		if strings.Contains(arg, ":") {
			// The paper's "Match Community" error: matching a literal
			// community instead of a community list is invalid syntax.
			if c, err := netcfg.ParseCommunity(arg); err == nil {
				cl.Matches = append(cl.Matches, netcfg.MatchCommunityLiteral{Community: c})
			}
			p.warn(lineNo, line, "match community must reference a community-list, not a literal community")
			return
		}
		cl.Matches = append(cl.Matches, netcfg.MatchCommunityList{List: arg})
	case "as-path":
		if len(fields) != 3 {
			p.warn(lineNo, line, "match as-path expects one access-list or regex")
			return
		}
		cl.Matches = append(cl.Matches, netcfg.MatchASPathRegex{Regex: fields[2]})
	case "source-protocol":
		if len(fields) != 3 {
			p.warn(lineNo, line, "match source-protocol expects a protocol")
			return
		}
		proto, err := netcfg.ParseRedistProtocol(strings.ToLower(fields[2]))
		if err != nil {
			p.warn(lineNo, line, "unknown protocol in match source-protocol")
			return
		}
		cl.Matches = append(cl.Matches, netcfg.MatchProtocol{Protocol: proto})
	default:
		p.warn(lineNo, line, "unsupported match type")
	}
}

func (p *parser) parseRouteMapSet(lineNo int, line string, fields []string, cl *netcfg.PolicyClause) {
	if len(fields) < 3 {
		p.warn(lineNo, line, "incomplete set statement")
		return
	}
	switch strings.ToLower(fields[1]) {
	case "metric":
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			p.warn(lineNo, line, "invalid metric value")
			return
		}
		cl.Sets = append(cl.Sets, netcfg.SetMED{MED: n})
	case "local-preference":
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			p.warn(lineNo, line, "invalid local-preference value")
			return
		}
		cl.Sets = append(cl.Sets, netcfg.SetLocalPref{Pref: n})
	case "community":
		var comms []netcfg.Community
		additive := false
		for _, f := range fields[2:] {
			if strings.ToLower(f) == "additive" {
				additive = true
				continue
			}
			c, err := netcfg.ParseCommunity(f)
			if err != nil {
				p.warn(lineNo, line, "invalid community value")
				return
			}
			comms = append(comms, c)
		}
		if len(comms) == 0 {
			p.warn(lineNo, line, "set community expects at least one community")
			return
		}
		cl.Sets = append(cl.Sets, netcfg.SetCommunity{Communities: comms, Additive: additive})
	case "ip":
		if len(fields) == 4 && strings.ToLower(fields[2]) == "next-hop" {
			hop, err := netcfg.ParseIP(fields[3])
			if err != nil {
				p.warn(lineNo, line, "invalid next-hop address")
				return
			}
			cl.Sets = append(cl.Sets, netcfg.SetNextHop{Hop: hop})
			return
		}
		p.warn(lineNo, line, "unsupported set ip command")
	default:
		p.warn(lineNo, line, "unsupported set type")
	}
}

// parseTopSub handles commands that require a block context but appear at
// top level — notably the paper's "Placing neighbor commands in the wrong
// location" error. The warning is intentionally generic: the paper reports
// Batfish catches the error but its output is "not informative enough for
// GPT-4 to be able to fix the issue".
func (p *parser) parseTopSub(lineNo int, line string, fields []string) {
	head := strings.ToLower(fields[0])
	switch head {
	case "neighbor":
		p.warn(lineNo, line, "'neighbor' is not a top-level command")
	case "network":
		p.warn(lineNo, line, "'network' is not a top-level command")
	case "match", "set":
		p.warn(lineNo, line, fmt.Sprintf("%q is not a top-level command", head))
	default:
		p.warn(lineNo, line, "unknown top-level command")
	}
}

// maskLen converts a contiguous netmask to a prefix length; non-contiguous
// masks yield the count of leading ones.
func maskLen(mask uint32) int {
	n := 0
	for n < 32 && mask&(1<<uint(31-n)) != 0 {
		n++
	}
	return n
}

// classfulLen returns the historical classful prefix length for an address,
// used when a BGP network statement omits the mask.
func classfulLen(addr uint32) int {
	switch {
	case addr>>31 == 0:
		return 8
	case addr>>30 == 0b10:
		return 16
	default:
		return 24
	}
}
