package cisco

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/exampledata"
	"repro/internal/netcfg"
)

func TestParseExampleConfigClean(t *testing.T) {
	dev, warns := Parse(exampledata.CiscoExample)
	if len(warns) != 0 {
		t.Fatalf("warnings: %v", warns)
	}
	if dev.Hostname != "border1" {
		t.Errorf("hostname = %q", dev.Hostname)
	}
	if len(dev.Interfaces) != 3 {
		t.Errorf("interfaces = %d, want 3", len(dev.Interfaces))
	}
	lo := dev.Interface("Loopback0")
	if lo == nil || !lo.HasAddress || lo.Address.Len != 32 {
		t.Fatalf("Loopback0 = %+v", lo)
	}
	gi := dev.Interface("GigabitEthernet0/0")
	if gi == nil || gi.OSPFCost != 5 || gi.Description != "LAN" {
		t.Fatalf("GigabitEthernet0/0 = %+v", gi)
	}
	if dev.OSPF == nil || dev.OSPF.ProcessID != 1 || len(dev.OSPF.Networks) != 2 {
		t.Fatalf("OSPF = %+v", dev.OSPF)
	}
	if !dev.OSPF.IsPassive("Loopback0") {
		t.Error("Loopback0 should be passive")
	}
	if dev.BGP == nil || dev.BGP.ASN != 65000 {
		t.Fatalf("BGP = %+v", dev.BGP)
	}
	nbr := dev.BGP.Neighbor(mustIP(t, "2.3.4.5"))
	if nbr == nil || nbr.RemoteAS != 65001 {
		t.Fatalf("neighbor = %+v", nbr)
	}
	if nbr.ImportPolicy != "from_provider" || nbr.ExportPolicy != "to_provider" {
		t.Errorf("policies = %q/%q", nbr.ImportPolicy, nbr.ExportPolicy)
	}
	if len(dev.BGP.Redistribute) != 1 || dev.BGP.Redistribute[0].Policy != "ospf_to_bgp" {
		t.Errorf("redistribute = %+v", dev.BGP.Redistribute)
	}
	pl := dev.PrefixLists["our-networks"]
	if pl == nil || len(pl.Entries) != 1 || pl.Entries[0].Ge != 24 {
		t.Fatalf("our-networks = %+v", pl)
	}
	if len(dev.RoutePolicies) != 3 {
		t.Errorf("route maps = %d, want 3", len(dev.RoutePolicies))
	}
	fp := dev.RoutePolicies["from_provider"]
	if fp == nil || len(fp.Clauses) != 3 {
		t.Fatalf("from_provider = %+v", fp)
	}
	if fp.Clauses[2].Seq != 100 || fp.Clauses[2].Action != netcfg.Deny {
		t.Errorf("final clause = %+v", fp.Clauses[2])
	}
}

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	v, err := netcfg.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPrintParseRoundTrip(t *testing.T) {
	dev, warns := Parse(exampledata.CiscoExample)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	text := Print(dev)
	dev2, warns2 := Parse(text)
	if len(warns2) != 0 {
		t.Fatalf("reparse warnings: %v\n%s", warns2, text)
	}
	text2 := Print(dev2)
	if text != text2 {
		t.Errorf("print not idempotent:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestForbiddenKeywordsWarn(t *testing.T) {
	cfg := "configure terminal\nhostname r1\nexit\nwrite\nend\n"
	warns := Check(cfg)
	if len(warns) != 4 {
		t.Fatalf("warnings = %d (%v), want 4", len(warns), warns)
	}
	for _, w := range warns {
		if !strings.Contains(w.Reason, "CLI session keyword") &&
			!strings.Contains(w.Reason, "CLI command") {
			t.Errorf("unexpected reason %q", w.Reason)
		}
	}
}

func TestNeighborOutsideRouterBGPWarns(t *testing.T) {
	// The paper's "Placing neighbor commands in the wrong location" (§4.2):
	// caught as a syntax error, with deliberately uninformative output.
	cfg := "hostname r1\n!\nrouter bgp 1\n neighbor 1.0.0.1 remote-as 2\n!\nneighbor 1.0.0.1 route-map X in\n"
	dev, warns := Parse(cfg)
	if len(warns) != 1 || !strings.Contains(warns[0].Reason, "not a top-level command") {
		t.Fatalf("warnings = %v", warns)
	}
	// The misplaced attachment must NOT take effect.
	if n := dev.BGP.Neighbor(mustIP(t, "1.0.0.1")); n.ImportPolicy != "" {
		t.Error("misplaced route-map attachment was applied")
	}
}

func TestMatchCommunityLiteralWarns(t *testing.T) {
	// §4.2 "Match Community": literal community in a route-map is invalid.
	cfg := "route-map F permit 10\n match community 100:1\n"
	warns := Check(cfg)
	found := false
	for _, w := range warns {
		if strings.Contains(w.Reason, "must reference a community-list") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected literal-community warning, got %v", warns)
	}
}

func TestCommunityListRegexWarns(t *testing.T) {
	// Table 3's syntax example.
	cfg := "ip community-list standard COMM_LIST_R2_OUT permit .+\n"
	warns := Check(cfg)
	if len(warns) != 1 || !strings.Contains(warns[0].Reason, "invalid community value") {
		t.Fatalf("warnings = %v", warns)
	}
}

func TestUndefinedListReferencesLint(t *testing.T) {
	cfg := "route-map F permit 10\n match ip address prefix-list nope\n match community alsono\n"
	warns := Check(cfg)
	var reasons []string
	for _, w := range warns {
		reasons = append(reasons, w.Reason)
	}
	joined := strings.Join(reasons, "; ")
	if !strings.Contains(joined, "prefix-list nope is not defined") {
		t.Errorf("missing prefix-list lint: %v", reasons)
	}
	if !strings.Contains(joined, "community-list alsono is not defined") {
		t.Errorf("missing community-list lint: %v", reasons)
	}
}

func TestPrefixListParsingVariants(t *testing.T) {
	cfg := strings.Join([]string{
		"ip prefix-list a seq 5 permit 10.0.0.0/8",
		"ip prefix-list a seq 10 deny 10.1.0.0/16 ge 24 le 28",
		"ip prefix-list b permit 0.0.0.0/0",
	}, "\n")
	dev, warns := Parse(cfg)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	a := dev.PrefixLists["a"]
	if len(a.Entries) != 2 {
		t.Fatalf("a = %+v", a)
	}
	if a.Entries[1].Action != netcfg.Deny || a.Entries[1].Ge != 24 || a.Entries[1].Le != 28 {
		t.Errorf("entry = %+v", a.Entries[1])
	}
	b := dev.PrefixLists["b"]
	if len(b.Entries) != 1 || b.Entries[0].Seq != 5 {
		t.Errorf("auto-seq entry = %+v", b.Entries)
	}
}

func TestPrefixListMalformedWarns(t *testing.T) {
	for _, line := range []string{
		"ip prefix-list x allow 10.0.0.0/8",        // bad action
		"ip prefix-list x permit 10.0.0.0",         // missing /len
		"ip prefix-list x permit 10.0.0.0/8 ge",    // dangling ge
		"ip prefix-list x permit 10.0.0.0/8 ge 40", // out of range
		"ip prefix-list x permit 10.0.0.0/8 zz 12", // unknown token
		"ip prefix-list x seq q permit 10.0.0.0/8", // bad seq
	} {
		if warns := Check(line + "\n"); len(warns) == 0 {
			t.Errorf("no warning for %q", line)
		}
	}
}

func TestStaticRouteParsing(t *testing.T) {
	dev, warns := Parse("ip route 7.0.0.0 255.0.0.0 2.3.4.5\n")
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	if len(dev.StaticRoutes) != 1 {
		t.Fatal("no static route")
	}
	sr := dev.StaticRoutes[0]
	if sr.Prefix.String() != "7.0.0.0/8" || netcfg.FormatIP(sr.NextHop) != "2.3.4.5" {
		t.Errorf("static route = %+v", sr)
	}
}

func TestBGPNetworkClassfulDefault(t *testing.T) {
	dev, warns := Parse("router bgp 1\n network 10.0.0.0\n network 172.16.0.0\n network 192.168.1.0\n")
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	want := []string{"10.0.0.0/8", "172.16.0.0/16", "192.168.1.0/24"}
	for i, n := range dev.BGP.Networks {
		if n.String() != want[i] {
			t.Errorf("network %d = %s, want %s", i, n, want[i])
		}
	}
}

func TestRouteMapImplicitSequence(t *testing.T) {
	cfg := "route-map m permit\nroute-map m deny\n"
	dev, warns := Parse(cfg)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	m := dev.RoutePolicies["m"]
	if len(m.Clauses) != 2 || m.Clauses[0].Seq != 10 || m.Clauses[1].Seq != 20 {
		t.Fatalf("clauses = %+v", m.Clauses)
	}
}

func TestGarbageYieldsWarningsNotPanic(t *testing.T) {
	garbage := "zzz yyy\ninterface\nrouter bgp\nrouter ospf x\nroute-map\nset metric\nmatch x\n"
	dev, warns := Parse(garbage)
	if dev == nil {
		t.Fatal("nil device")
	}
	if len(warns) < 5 {
		t.Errorf("warnings = %d (%v), want one per bad line", len(warns), warns)
	}
}

func TestBangResetsMode(t *testing.T) {
	cfg := "interface eth0\n ip address 1.0.0.1 255.255.255.0\n!\n ip address 2.0.0.1 255.255.255.0\n"
	_, warns := Parse(cfg)
	// The second "ip address" is outside any interface: must warn, not
	// silently apply to eth0.
	if len(warns) != 1 {
		t.Fatalf("warnings = %v", warns)
	}
}

// TestParseNeverPanics feeds arbitrary text to the parser.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		dev, _ := Parse(s)
		return dev != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestParsePrintParseFixpoint: for arbitrary config-shaped inputs, one
// Parse→Print round trip reaches a fixpoint (Print(Parse(Print(Parse(x))))
// == Print(Parse(x))) — the printer emits only what the parser accepts.
func TestParsePrintParseFixpoint(t *testing.T) {
	f := func(s string) bool {
		dev1, _ := Parse(s)
		text1 := Print(dev1)
		dev2, _ := Parse(text1)
		return Print(dev2) == text1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
