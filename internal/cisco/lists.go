package cisco

import (
	"strconv"
	"strings"

	"repro/internal/netcfg"
)

func (p *parser) parsePrefixList(lineNo int, line string, fields []string) {
	// ip prefix-list NAME [seq N] permit|deny P [ge N] [le M]
	rest := fields[2:]
	if len(rest) < 3 {
		p.warn(lineNo, line, "incomplete prefix-list entry")
		return
	}
	name := rest[0]
	rest = rest[1:]
	entry := netcfg.PrefixListEntry{Seq: 0}
	if strings.ToLower(rest[0]) == "seq" {
		if len(rest) < 2 {
			p.warn(lineNo, line, "prefix-list seq expects a number")
			return
		}
		n, err := strconv.Atoi(rest[1])
		if err != nil {
			p.warn(lineNo, line, "invalid prefix-list sequence number")
			return
		}
		entry.Seq = n
		rest = rest[2:]
	}
	if len(rest) < 2 {
		p.warn(lineNo, line, "prefix-list entry missing action or prefix")
		return
	}
	switch strings.ToLower(rest[0]) {
	case "permit":
		entry.Action = netcfg.Permit
	case "deny":
		entry.Action = netcfg.Deny
	default:
		p.warn(lineNo, line, "prefix-list action must be permit or deny")
		return
	}
	pfx, err := netcfg.ParsePrefix(rest[1])
	if err != nil {
		p.warn(lineNo, line, "invalid prefix in prefix-list entry")
		return
	}
	entry.Prefix = pfx
	rest = rest[2:]
	for len(rest) >= 2 {
		n, err := strconv.Atoi(rest[1])
		if err != nil || n < 0 || n > 32 {
			p.warn(lineNo, line, "invalid prefix-length bound in prefix-list entry")
			return
		}
		switch strings.ToLower(rest[0]) {
		case "ge":
			entry.Ge = n
		case "le":
			entry.Le = n
		default:
			p.warn(lineNo, line, "unexpected token in prefix-list entry")
			return
		}
		rest = rest[2:]
	}
	if len(rest) != 0 {
		p.warn(lineNo, line, "trailing tokens in prefix-list entry")
		return
	}
	pl := p.dev.PrefixLists[name]
	if pl == nil {
		pl = &netcfg.PrefixList{Name: name}
		p.dev.PrefixLists[name] = pl
	}
	if entry.Seq == 0 {
		entry.Seq = 5 * (len(pl.Entries) + 1)
	}
	pl.Entries = append(pl.Entries, entry)
}

func (p *parser) parseCommunityList(lineNo int, line string, fields []string) {
	// ip community-list [standard|expanded] NAME permit|deny COMM...
	rest := fields[2:]
	if len(rest) > 0 {
		switch strings.ToLower(rest[0]) {
		case "standard":
			rest = rest[1:]
		case "expanded":
			p.warn(lineNo, line, "expanded community-lists are not supported")
			return
		}
	}
	if len(rest) < 3 {
		p.warn(lineNo, line, "incomplete community-list entry")
		return
	}
	name := rest[0]
	var action netcfg.Action
	switch strings.ToLower(rest[1]) {
	case "permit":
		action = netcfg.Permit
	case "deny":
		action = netcfg.Deny
	default:
		p.warn(lineNo, line, "community-list action must be permit or deny")
		return
	}
	cl := p.dev.CommunityLists[name]
	if cl == nil {
		cl = &netcfg.CommunityList{Name: name}
		p.dev.CommunityLists[name] = cl
	}
	for _, tok := range rest[2:] {
		c, err := netcfg.ParseCommunity(tok)
		if err != nil {
			// The paper's Table 3 syntax example: a community-list entry with
			// a regex (".+") instead of a community value.
			p.warn(lineNo, line, "invalid community value in community-list")
			return
		}
		cl.Entries = append(cl.Entries, netcfg.CommunityListEntry{Action: action, Community: c})
	}
}

func (p *parser) parseStaticRoute(lineNo int, line string, fields []string) {
	// ip route A.B.C.D M.M.M.M NEXTHOP
	if len(fields) != 5 {
		p.warn(lineNo, line, "static route expects 'ip route <addr> <mask> <next-hop>'")
		return
	}
	addr, err1 := netcfg.ParseIP(fields[2])
	mask, err2 := netcfg.ParseIP(fields[3])
	hop, err3 := netcfg.ParseIP(fields[4])
	if err1 != nil || err2 != nil || err3 != nil {
		p.warn(lineNo, line, "invalid address in static route")
		return
	}
	p.dev.StaticRoutes = append(p.dev.StaticRoutes, netcfg.StaticRoute{
		Prefix:  netcfg.NewPrefix(addr, maskLen(mask)),
		NextHop: hop,
	})
}

// Check parses the text and returns only the warnings, plus semantic lint
// warnings for constructs that parse but are invalid: literal-community
// matches and references to undefined lists.
func Check(text string) []netcfg.ParseWarning {
	_, _, checkWarns := ParseAndCheck(text)
	return checkWarns
}

// ParseAndCheck parses the text once and returns the device together with
// both warning feeds: the parser's own warnings and the full Check output
// (parse plus lint). Callers that need the IR and the syntax verdict for
// the same configuration revision — the verification cache in particular —
// avoid the second parse a separate Check call would cost.
func ParseAndCheck(text string) (dev *netcfg.Device, parseWarns, checkWarns []netcfg.ParseWarning) {
	dev, parseWarns = Parse(text)
	lint := Lint(dev)
	checkWarns = make([]netcfg.ParseWarning, 0, len(parseWarns)+len(lint))
	checkWarns = append(append(checkWarns, parseWarns...), lint...)
	return dev, parseWarns, checkWarns
}

// Lint reports IR-level problems that are syntax errors in spirit: a
// route-map clause matching a literal community (must use a community
// list), and references to prefix/community lists that are never defined.
func Lint(d *netcfg.Device) []netcfg.ParseWarning {
	var warns []netcfg.ParseWarning
	for _, name := range d.PolicyNames() {
		rp := d.RoutePolicies[name]
		for _, cl := range rp.Clauses {
			for _, m := range cl.Matches {
				switch m := m.(type) {
				case netcfg.MatchCommunityLiteral:
					warns = append(warns, netcfg.ParseWarning{
						Text: "route-map " + name + " / match community " + m.Community.String(),
						Reason: "match community must reference a community-list declared with " +
							"'ip community-list', not a literal community",
					})
				case netcfg.MatchCommunityList:
					if d.CommunityLists[m.List] == nil {
						warns = append(warns, netcfg.ParseWarning{
							Text:   "route-map " + name + " / match community " + m.List,
							Reason: "community-list " + m.List + " is not defined",
						})
					}
				case netcfg.MatchPrefixList:
					if d.PrefixLists[m.List] == nil {
						warns = append(warns, netcfg.ParseWarning{
							Text:   "route-map " + name + " / match ip address prefix-list " + m.List,
							Reason: "prefix-list " + m.List + " is not defined",
						})
					}
				}
			}
		}
	}
	if d.BGP != nil {
		for _, n := range d.BGP.Neighbors {
			for _, pol := range []string{n.ImportPolicy, n.ExportPolicy} {
				if pol != "" && d.RoutePolicies[pol] == nil {
					warns = append(warns, netcfg.ParseWarning{
						Text:   "neighbor " + netcfg.FormatIP(n.Addr) + " route-map " + pol,
						Reason: "route-map " + pol + " is not defined",
					})
				}
			}
			if n.RemoteAS == 0 {
				warns = append(warns, netcfg.ParseWarning{
					Text:   "neighbor " + netcfg.FormatIP(n.Addr),
					Reason: "neighbor has no remote-as",
				})
			}
		}
	}
	return warns
}
