package cisco

import (
	"strings"

	"repro/internal/netcfg"
)

// This file segments a Cisco configuration into stanzas whose isolated
// parses compose back into the whole-file parse. The invariant that makes
// it sound is fragment replay: every stanza starts either at a point where
// the parser is provably at top level (file start, after a literal "!"
// line, after a valid two-field hostname line) or at a block header
// (interface / router / route-map), which sets the parser mode
// unconditionally — so parsing a stanza in isolation walks exactly the
// state transitions the same lines would walk in context. Cross-stanza
// coupling that replay cannot reproduce (duplicate blocks whose sequence
// defaults or field merges depend on earlier stanzas) is detected at
// assembly time and answered with a whole-parse fallback, never a wrong
// device.

// Stanza kinds emitted by SplitStanzas.
const (
	stInterface = "interface"
	stBGP       = "router-bgp"
	stOSPF      = "router-ospf"
	stRouter    = "router"
	stRouteMap  = "route-map"
	stHostname  = "hostname"
	stPrefix    = "prefix-list"
	stCommunity = "community-list"
	stStatic    = "static"
	stExtra     = "extra"
)

// SplitStanzas segments the configuration text. The split is lossless:
// netcfg.JoinStanzas over the result reproduces text byte for byte.
// Stanzas cover contiguous byte ranges of the input, so each Text is a
// substring of text (no per-line copying — the split is O(n) and
// allocation-light, which the incremental parse path depends on: it
// splits every revision).
func SplitStanzas(text string) []netcfg.Stanza {
	stanzas, _ := splitFrom(text, true, 1)
	return stanzas
}

// SplitStanzasResume splits text as the continuation of a larger
// configuration: the parser is assumed to enter it with the given
// top-level state, and the first line is numbered startLine. Alongside the
// split it reports each stanza's entry state, which is what lets a later
// call resume from any stanza boundary. SplitStanzasResume(text, true, 1)
// is exactly SplitStanzas.
func SplitStanzasResume(text string, atTop bool, startLine int) ([]netcfg.Stanza, []bool, bool) {
	stanzas, atTops := splitFrom(text, atTop, startLine)
	return stanzas, atTops, true
}

func splitFrom(text string, atTop bool, startLine int) ([]netcfg.Stanza, []bool) {
	if text == "" {
		return nil, nil
	}

	// In rendered configs almost every stanza ends with a "!" separator
	// line, so counting them sizes both slices in one vectorized scan and
	// spares the append-growth copies.
	est := strings.Count(text, "\n!") + 2
	out := make([]netcfg.Stanza, 0, est)
	atTops := make([]bool, 0, est)
	starts := make([]int, 0, est)
	cur := -1 // index in out of the open stanza, -1 before the first
	off := 0  // byte offset of the current line
	// atTop: parser provably in top-level mode before the next line

	open := func(kind, name string, lineNo int) {
		out = append(out, netcfg.Stanza{Kind: kind, Name: name, Line: lineNo})
		atTops = append(atTops, atTop)
		starts = append(starts, off)
		cur = len(out) - 1
	}
	// glue attaches the line to the open stanza — a no-op on the offsets,
	// except that a line before any boundary opens the implicit stExtra
	// stanza the old accumulating splitter created.
	glue := func(lineNo int) {
		if cur < 0 {
			open(stExtra, "", lineNo)
		}
	}

	// Lines are walked in place (no intermediate line slice): off is the
	// current line's start, end the start of the next.
	lineNo := startLine - 1
	for off < len(text) {
		end := len(text)
		if j := strings.IndexByte(text[off:], '\n'); j >= 0 {
			end = off + j + 1
		}
		raw := text[off:end]
		lineNo++
		trimmed := strings.TrimSpace(raw)

		// Inert lines attach to the current stanza; a literal "!" also
		// resets the parser to top level, making the next significant line
		// a safe stanza boundary.
		if trimmed == "" || strings.HasPrefix(trimmed, "!") {
			glue(lineNo)
			if trimmed == "!" {
				atTop = true
			}
			off = end
			continue
		}

		// Body lines inside a block only need to be recognized as
		// non-boundaries: every kind that can open or extend a stanza at
		// depth starts with 'i' (interface, ip …), 'r' (router,
		// route-map), or 'h' (hostname), so any other first letter glues
		// without paying for tokenization.
		if !atTop {
			switch trimmed[0] | 0x20 {
			case 'i':
				// "ip …" is never a boundary — it only matters as a
				// continuation of an open list run, so inside any other
				// block (the common case: interface bodies are full of
				// "ip address …") it glues without tokenization.
				if len(trimmed) > 2 && trimmed[1]|0x20 == 'p' &&
					(trimmed[2] == ' ' || trimmed[2] == '\t') {
					switch out[cur].Kind {
					case stPrefix, stCommunity, stStatic:
					default:
						glue(lineNo)
						off = end
						continue
					}
				}
			case 'r', 'h':
			default:
				glue(lineNo)
				off = end
				continue
			}
		}
		kind, name := classifyLine(trimmed)
		switch {
		case kind == stRouteMap && name != "" && cur >= 0 &&
			out[cur].Kind == stRouteMap && out[cur].Name == name:
			// Consecutive clauses of one route map (each clause line is a
			// fresh "route-map NAME ..." header) stay in one stanza, so
			// sequence-number defaults replay against the full clause list.
			glue(lineNo)
			atTop = false
		case kind == stPrefix && name != "" && cur >= 0 &&
			out[cur].Kind == stPrefix && out[cur].Name == name:
			// One prefix list's entry lines group together for the same
			// reason: the default sequence is 5×(entry count so far).
			glue(lineNo)
		case kind == stCommunity && name != "" && cur >= 0 &&
			out[cur].Kind == stCommunity && out[cur].Name == name:
			glue(lineNo)
		case kind == stStatic && cur >= 0 && out[cur].Kind == stStatic:
			glue(lineNo)
		case kind == stInterface || kind == stRouter || kind == stBGP ||
			kind == stOSPF || kind == stRouteMap:
			// Block headers set the parser mode unconditionally (error
			// paths included), so they are always safe boundaries.
			open(kind, name, lineNo)
			atTop = false
		case kind == stHostname:
			// Only a valid two-field hostname resets the mode; the
			// malformed form leaves the mode unchanged and is glued below.
			open(kind, name, lineNo)
			atTop = true
		case atTop:
			// Mode-independent or top-level-only lines: start a stanza of
			// their own kind. Top-level lines leave the parser at top, so
			// atTop stays true.
			if cur >= 0 && out[cur].Kind == kind && (kind == stExtra || name == out[cur].Name) {
				glue(lineNo)
			} else {
				open(kind, name, lineNo)
			}
		default:
			// Inside a block: the line belongs to the block's stanza, and
			// fragment replay parses it under the same mode.
			glue(lineNo)
		}
		off = end
	}
	for i := range out {
		end := len(text)
		if i+1 < len(out) {
			end = starts[i+1]
		}
		out[i].Text = text[starts[i]:end]
	}
	return out, atTops
}

// headFields scans up to len(dst) space- or tab-separated tokens of a
// trimmed line into dst without allocating (the splitter classifies every
// line of every revision, so a strings.Fields slice per line is measurable
// at scale). Returns the token count, or len(dst)+1 when more tokens
// remain — enough to distinguish "exactly n" from "more than n".
func headFields(s string, dst []string) int {
	n := 0
	for i := 0; i < len(s); {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		start := i
		for i < len(s) && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		if n == len(dst) {
			return n + 1
		}
		dst[n] = s[start:i]
		n++
	}
	return n
}

// classifyLine maps one significant (non-blank, non-comment) trimmed line
// to the stanza kind and identity it opens — or would open, were it at a
// boundary. Mirrors the head dispatch of parseLine.
func classifyLine(trimmed string) (kind, name string) {
	var f [4]string
	n := headFields(trimmed, f[:])
	if n == 0 {
		return stExtra, ""
	}
	head := strings.ToLower(f[0])
	switch head {
	case "interface":
		if n == 2 {
			return stInterface, f[1]
		}
		return stInterface, ""
	case "router":
		if n >= 2 {
			switch strings.ToLower(f[1]) {
			case "ospf":
				return stOSPF, ""
			case "bgp":
				return stBGP, ""
			}
		}
		return stRouter, ""
	case "route-map":
		if n >= 2 {
			return stRouteMap, f[1]
		}
		return stRouteMap, ""
	case "hostname":
		if n == 2 {
			return stHostname, f[1]
		}
		return stExtra, "" // malformed: parsed in place, not a boundary
	case "ip":
		if n >= 2 {
			switch strings.ToLower(f[1]) {
			case "prefix-list":
				if n >= 3 {
					return stPrefix, f[2]
				}
				return stPrefix, ""
			case "community-list":
				return stCommunity, communityListName(f[:], n)
			case "route":
				return stStatic, ""
			case "routing":
				return stExtra, ""
			}
		}
	}
	return stExtra, ""
}

// communityListName extracts the list name the parser would use: the first
// token after "ip community-list", with an optional "standard" keyword
// stripped ("expanded" lines are rejected by the parser and stay unnamed).
// fields holds the first captured tokens of the line, n the headFields
// count (which may exceed len(fields) when the line has more tokens).
func communityListName(fields []string, n int) string {
	if n > len(fields) {
		n = len(fields)
	}
	rest := fields[2:n]
	if len(rest) > 0 {
		switch strings.ToLower(rest[0]) {
		case "standard":
			rest = rest[1:]
		case "expanded":
			return ""
		}
	}
	if len(rest) > 0 {
		return rest[0]
	}
	return ""
}

// ParseFragment parses one stanza in isolation: the parser's own warnings
// only, stanza-relative line numbers. Cross-stanza lint runs on the
// assembled device.
func ParseFragment(st netcfg.Stanza) *netcfg.Parsed {
	dev, warns := Parse(st.Text)
	return &netcfg.Parsed{Device: dev, ParseWarnings: warns}
}

// AssembleFragments merges the fragment parses of a split back into one
// device, re-derives the lint feed, and records stanza provenance. It
// returns ok=false — demanding a whole-parse fallback — whenever two
// fragments claim the same identity (interface name, BGP/OSPF process,
// route map, or prefix list): in context the parser would merge such
// blocks with sequence defaults and field precedence that fragment
// isolation cannot reproduce. Community lists and static routes
// append-merge exactly as the whole parse does, so they never force a
// fallback.
func AssembleFragments(stanzas []netcfg.Stanza, refs []netcfg.StanzaRef, frags []*netcfg.Parsed) (*netcfg.Parsed, bool) {
	// Size the merge maps exactly from the ref kinds: assembly is on the
	// hot incremental-parse path, where both incremental map growth and
	// oversized table allocation are measurable.
	var nIfc, nPfx, nRM, nCL int
	for _, r := range refs {
		switch r.Kind {
		case stInterface:
			nIfc++
		case stPrefix:
			nPfx++
		case stRouteMap:
			nRM++
		case stCommunity:
			nCL++
		}
	}
	dev := netcfg.NewDevice("", netcfg.VendorCisco)
	dev.PrefixLists = make(map[string]*netcfg.PrefixList, nPfx)
	dev.CommunityLists = make(map[string]*netcfg.CommunityList, nCL)
	dev.RoutePolicies = make(map[string]*netcfg.RoutePolicy, nRM)
	dev.Interfaces = make([]*netcfg.Interface, 0, nIfc)
	ifcNames := make(map[string]bool, nIfc)
	var parseWarns []netcfg.ParseWarning
	for i, st := range stanzas {
		f := frags[i]
		if f == nil || f.Device == nil {
			return nil, false
		}
		fd := f.Device
		if fd.Hostname != "" {
			dev.Hostname = fd.Hostname // later wins, as in a sequential parse
		}
		for _, ifc := range fd.Interfaces {
			if ifcNames[ifc.Name] {
				return nil, false
			}
			ifcNames[ifc.Name] = true
			dev.Interfaces = append(dev.Interfaces, ifc)
		}
		if fd.BGP != nil {
			if dev.BGP != nil {
				return nil, false
			}
			dev.BGP = fd.BGP
		}
		if fd.OSPF != nil {
			if dev.OSPF != nil {
				return nil, false
			}
			dev.OSPF = fd.OSPF
		}
		for name, pl := range fd.PrefixLists {
			if _, dup := dev.PrefixLists[name]; dup {
				return nil, false
			}
			dev.PrefixLists[name] = pl
		}
		for name, rp := range fd.RoutePolicies {
			if _, dup := dev.RoutePolicies[name]; dup {
				return nil, false
			}
			dev.RoutePolicies[name] = rp
		}
		for name, cl := range fd.CommunityLists {
			if have, ok := dev.CommunityLists[name]; ok {
				// Copy-on-merge: the fragment devices are shared cache
				// entries and must stay untouched.
				merged := &netcfg.CommunityList{Name: have.Name}
				merged.Entries = append(append([]netcfg.CommunityListEntry(nil),
					have.Entries...), cl.Entries...)
				dev.CommunityLists[name] = merged
			} else {
				dev.CommunityLists[name] = cl
			}
		}
		dev.StaticRoutes = append(dev.StaticRoutes, fd.StaticRoutes...)
		for _, w := range f.ParseWarnings {
			w.Line += st.Line - 1
			parseWarns = append(parseWarns, w)
		}
	}
	dev.Stanzas = refs
	lint := Lint(dev)
	checkWarns := make([]netcfg.ParseWarning, 0, len(parseWarns)+len(lint))
	checkWarns = append(append(checkWarns, parseWarns...), lint...)
	return &netcfg.Parsed{Device: dev, ParseWarnings: parseWarns, CheckWarnings: checkWarns}, true
}
