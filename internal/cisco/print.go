package cisco

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/netcfg"
)

// Print renders a device in Cisco IOS syntax. The output is deterministic
// (sorted names, stable ordering) so that golden tests and round-trip
// properties hold.
func Print(d *netcfg.Device) string {
	var b strings.Builder
	if d.Hostname != "" {
		fmt.Fprintf(&b, "hostname %s\n!\n", d.Hostname)
	}
	for _, ifc := range d.Interfaces {
		printInterface(&b, ifc)
	}
	if d.OSPF != nil {
		printOSPF(&b, d.OSPF)
	}
	if d.BGP != nil {
		printBGP(&b, d.BGP)
	}
	for _, name := range d.PrefixListNames() {
		printPrefixList(&b, d.PrefixLists[name])
	}
	for _, name := range d.CommunityListNames() {
		printCommunityList(&b, d.CommunityLists[name])
	}
	for _, sr := range d.StaticRoutes {
		fmt.Fprintf(&b, "ip route %s %s %s\n", netcfg.FormatIP(sr.Prefix.Addr),
			sr.Prefix.MaskString(), netcfg.FormatIP(sr.NextHop))
	}
	if len(d.StaticRoutes) > 0 {
		b.WriteString("!\n")
	}
	for _, name := range d.PolicyNames() {
		printRouteMap(&b, d.RoutePolicies[name])
	}
	return b.String()
}

// The exported stanza printers below render exactly one section in the
// same form Print emits it — the building blocks of the incremental
// renderer, which re-prints only the sections whose inputs changed and
// concatenates cached text for the rest. Keeping them as thin wrappers
// over the private printers Print calls guarantees byte-identity between
// the incremental and whole-config paths.

// PrintHostname renders the hostname stanza ("" when the device has none).
func PrintHostname(hostname string) string {
	if hostname == "" {
		return ""
	}
	return fmt.Sprintf("hostname %s\n!\n", hostname)
}

// PrintInterfaceStanza renders one interface block.
func PrintInterfaceStanza(ifc *netcfg.Interface) string {
	var b strings.Builder
	printInterface(&b, ifc)
	return b.String()
}

// PrintOSPFStanza renders the OSPF block.
func PrintOSPFStanza(o *netcfg.OSPF) string {
	var b strings.Builder
	printOSPF(&b, o)
	return b.String()
}

// PrintBGPStanza renders the BGP block.
func PrintBGPStanza(bgp *netcfg.BGP) string {
	var b strings.Builder
	printBGP(&b, bgp)
	return b.String()
}

// PrintPrefixListStanza renders one prefix list.
func PrintPrefixListStanza(pl *netcfg.PrefixList) string {
	var b strings.Builder
	printPrefixList(&b, pl)
	return b.String()
}

// PrintCommunityListStanza renders one community list.
func PrintCommunityListStanza(cl *netcfg.CommunityList) string {
	var b strings.Builder
	printCommunityList(&b, cl)
	return b.String()
}

// PrintStaticRoutes renders the static-route stanza (all routes plus the
// closing "!"), or "" when there are none.
func PrintStaticRoutes(routes []netcfg.StaticRoute) string {
	if len(routes) == 0 {
		return ""
	}
	var b strings.Builder
	for _, sr := range routes {
		fmt.Fprintf(&b, "ip route %s %s %s\n", netcfg.FormatIP(sr.Prefix.Addr),
			sr.Prefix.MaskString(), netcfg.FormatIP(sr.NextHop))
	}
	b.WriteString("!\n")
	return b.String()
}

// PrintRouteMapStanza renders one route map (all clauses).
func PrintRouteMapStanza(rp *netcfg.RoutePolicy) string {
	var b strings.Builder
	printRouteMap(&b, rp)
	return b.String()
}

func printInterface(b *strings.Builder, ifc *netcfg.Interface) {
	fmt.Fprintf(b, "interface %s\n", ifc.Name)
	if ifc.Description != "" {
		fmt.Fprintf(b, " description %s\n", ifc.Description)
	}
	if ifc.HasAddress {
		fmt.Fprintf(b, " ip address %s %s\n", netcfg.FormatIP(ifc.Address.Addr), ifc.Address.MaskString())
	}
	if ifc.OSPFCost > 0 {
		fmt.Fprintf(b, " ip ospf cost %d\n", ifc.OSPFCost)
	}
	if ifc.Shutdown {
		b.WriteString(" shutdown\n")
	}
	b.WriteString("!\n")
}

func printOSPF(b *strings.Builder, o *netcfg.OSPF) {
	fmt.Fprintf(b, "router ospf %d\n", o.ProcessID)
	if o.RouterID != 0 {
		fmt.Fprintf(b, " router-id %s\n", netcfg.FormatIP(o.RouterID))
	}
	for _, p := range o.PassiveInterfaces {
		fmt.Fprintf(b, " passive-interface %s\n", p)
	}
	for _, n := range o.Networks {
		fmt.Fprintf(b, " network %s %s area %d\n",
			netcfg.FormatIP(n.Prefix.Addr), n.Prefix.WildcardString(), n.Area)
	}
	b.WriteString("!\n")
}

func printBGP(b *strings.Builder, bgp *netcfg.BGP) {
	fmt.Fprintf(b, "router bgp %d\n", bgp.ASN)
	if bgp.RouterID != 0 {
		fmt.Fprintf(b, " bgp router-id %s\n", netcfg.FormatIP(bgp.RouterID))
	}
	for _, n := range bgp.Networks {
		fmt.Fprintf(b, " network %s mask %s\n", netcfg.FormatIP(n.Addr), n.MaskString())
	}
	for _, r := range bgp.Redistribute {
		if r.Policy != "" {
			fmt.Fprintf(b, " redistribute %s route-map %s\n", r.Protocol, r.Policy)
		} else {
			fmt.Fprintf(b, " redistribute %s\n", r.Protocol)
		}
	}
	for _, n := range bgp.Neighbors {
		addr := netcfg.FormatIP(n.Addr)
		if n.RemoteAS != 0 {
			fmt.Fprintf(b, " neighbor %s remote-as %d\n", addr, n.RemoteAS)
		}
		if n.LocalAS != 0 && n.LocalAS != bgp.ASN {
			fmt.Fprintf(b, " neighbor %s local-as %d\n", addr, n.LocalAS)
		}
		if n.Description != "" {
			fmt.Fprintf(b, " neighbor %s description %s\n", addr, n.Description)
		}
		if n.ImportPolicy != "" {
			fmt.Fprintf(b, " neighbor %s route-map %s in\n", addr, n.ImportPolicy)
		}
		if n.ExportPolicy != "" {
			fmt.Fprintf(b, " neighbor %s route-map %s out\n", addr, n.ExportPolicy)
		}
	}
	b.WriteString("!\n")
}

func printPrefixList(b *strings.Builder, pl *netcfg.PrefixList) {
	for _, e := range pl.Entries {
		fmt.Fprintf(b, "ip prefix-list %s seq %d %s %s", pl.Name, e.Seq, e.Action, e.Prefix)
		if e.Ge > 0 {
			fmt.Fprintf(b, " ge %d", e.Ge)
		}
		if e.Le > 0 {
			fmt.Fprintf(b, " le %d", e.Le)
		}
		b.WriteString("\n")
	}
	b.WriteString("!\n")
}

func printCommunityList(b *strings.Builder, cl *netcfg.CommunityList) {
	for _, e := range cl.Entries {
		if _, err := strconv.Atoi(cl.Name); err == nil {
			fmt.Fprintf(b, "ip community-list %s %s %s\n", cl.Name, e.Action, e.Community)
		} else {
			fmt.Fprintf(b, "ip community-list standard %s %s %s\n", cl.Name, e.Action, e.Community)
		}
	}
	b.WriteString("!\n")
}

func printRouteMap(b *strings.Builder, rp *netcfg.RoutePolicy) {
	for _, cl := range rp.Clauses {
		fmt.Fprintf(b, "route-map %s %s %d\n", rp.Name, cl.Action, cl.Seq)
		for _, m := range cl.Matches {
			switch m := m.(type) {
			case netcfg.MatchPrefixList:
				fmt.Fprintf(b, " match ip address prefix-list %s\n", m.List)
			case netcfg.MatchCommunityList:
				fmt.Fprintf(b, " match community %s\n", m.List)
			case netcfg.MatchCommunityLiteral:
				// Invalid on purpose: the simulated LLM emits this form and
				// the syntax checker must flag it.
				fmt.Fprintf(b, " match community %s\n", m.Community)
			case netcfg.MatchProtocol:
				fmt.Fprintf(b, " match source-protocol %s\n", m.Protocol)
			case netcfg.MatchASPathRegex:
				fmt.Fprintf(b, " match as-path %s\n", m.Regex)
			}
		}
		for _, s := range cl.Sets {
			switch s := s.(type) {
			case netcfg.SetMED:
				fmt.Fprintf(b, " set metric %d\n", s.MED)
			case netcfg.SetLocalPref:
				fmt.Fprintf(b, " set local-preference %d\n", s.Pref)
			case netcfg.SetCommunity:
				parts := make([]string, len(s.Communities))
				for i, c := range s.Communities {
					parts[i] = c.String()
				}
				if s.Additive {
					fmt.Fprintf(b, " set community %s additive\n", strings.Join(parts, " "))
				} else {
					fmt.Fprintf(b, " set community %s\n", strings.Join(parts, " "))
				}
			case netcfg.SetNextHop:
				fmt.Fprintf(b, " set ip next-hop %s\n", netcfg.FormatIP(s.Hop))
			}
		}
	}
	b.WriteString("!\n")
}
