// Package topology defines the machine-readable network description the
// Modularizer consumes (a JSON dictionary, §2) and the topology verifier
// that checks a generated configuration against it (§4.1): interface
// addresses, local AS, router ID, declared BGP neighbors, and announced
// networks.
package topology

import (
	"encoding/json"
	"fmt"

	"repro/internal/netcfg"
)

// Topology is the machine-readable description of the whole network: the
// "JSON dictionary" output of the paper's network generator.
type Topology struct {
	Name    string       `json:"name"`
	Routers []RouterSpec `json:"routers"`
}

// Router returns the named router spec, or nil.
func (t *Topology) Router(name string) *RouterSpec {
	for i := range t.Routers {
		if t.Routers[i].Name == name {
			return &t.Routers[i]
		}
	}
	return nil
}

// Marshal renders the topology as indented JSON.
func (t *Topology) Marshal() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// Unmarshal parses a topology from JSON.
func Unmarshal(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("parsing topology: %w", err)
	}
	return &t, nil
}

// RouterSpec describes one router: what the generated config must declare.
type RouterSpec struct {
	Name       string          `json:"name"`
	ASN        uint32          `json:"asn"`
	RouterID   string          `json:"router_id"`
	Interfaces []InterfaceSpec `json:"interfaces"`
	Neighbors  []NeighborSpec  `json:"neighbors"`
	Networks   []string        `json:"networks"`
}

// InterfaceSpec is one interface with its CIDR address.
type InterfaceSpec struct {
	Name    string `json:"name"`
	Address string `json:"address"` // host address in CIDR form, e.g. 2.0.0.1/24
}

// NeighborSpec is one required BGP peering.
type NeighborSpec struct {
	PeerName string `json:"peer_name"`
	PeerIP   string `json:"peer_ip"`
	PeerAS   uint32 `json:"peer_as"`
	External bool   `json:"external"` // true for ISP/customer peers outside the managed network
	// Prefixes lists the prefixes an external peer originates, so the
	// global BGP simulation can stub the peer from the topology dictionary
	// alone. Empty on internal peerings; when empty on an external peering
	// the simulation falls back to the star generator's conventions.
	Prefixes []string `json:"prefixes,omitempty"`
	// Attachment is the first-class attachment-point ordinal of an
	// external ISP peering: the key for the community tag, the ISP subnet,
	// and the stub AS in the attachment-keyed addressing scheme. It makes
	// the (router, neighbor) pair — not the router — the unit the local
	// no-transit specification is derived for, which is what admits
	// several ISPs on one router (dual-homing). Zero means the peering
	// predates the attachment model and keeps the legacy router-index
	// keying; the field is omitted from the JSON dictionary in that case,
	// so pre-attachment topologies serialize byte-identically.
	Attachment int `json:"attachment,omitempty"`
}

// AttachmentPoint is one external attachment of the network: the router
// holding the peering and the external neighbor spec. It is the identity
// the local specification, the community allocation, and the verification
// suite key their per-attachment obligations on.
type AttachmentPoint struct {
	Router string
	Peer   NeighborSpec
}

// ExternalAttachments lists every external attachment point (ISPs and
// customers alike) in topology order: routers in declaration order, each
// router's external neighbors in declaration order.
func (t *Topology) ExternalAttachments() []AttachmentPoint {
	var out []AttachmentPoint
	for i := range t.Routers {
		r := &t.Routers[i]
		for _, nb := range r.Neighbors {
			if nb.External {
				out = append(out, AttachmentPoint{Router: r.Name, Peer: nb})
			}
		}
	}
	return out
}

// Interface returns the named interface spec, or nil.
func (r *RouterSpec) Interface(name string) *InterfaceSpec {
	for i := range r.Interfaces {
		if r.Interfaces[i].Name == name {
			return &r.Interfaces[i]
		}
	}
	return nil
}

// ConnectedPrefixes returns the subnets the router is directly attached to.
func (r *RouterSpec) ConnectedPrefixes() ([]netcfg.Prefix, error) {
	var out []netcfg.Prefix
	for _, ifc := range r.Interfaces {
		p, err := parseCIDRNetwork(ifc.Address)
		if err != nil {
			return nil, fmt.Errorf("router %s interface %s: %w", r.Name, ifc.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseCIDRNetwork parses "a.b.c.d/len" and returns the *network* prefix
// (host bits cleared).
func parseCIDRNetwork(s string) (netcfg.Prefix, error) {
	p, err := netcfg.ParsePrefix(s)
	if err != nil {
		return netcfg.Prefix{}, err
	}
	return netcfg.NewPrefix(p.Addr, p.Len), nil
}

// hostAddr parses "a.b.c.d/len" and returns the host address.
func hostAddr(s string) (uint32, int, error) {
	var ip string
	var length int
	if _, err := fmt.Sscanf(s, "%31s", &ip); err != nil {
		return 0, 0, err
	}
	slash := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return 0, 0, fmt.Errorf("address %q missing /len", s)
	}
	addr, err := netcfg.ParseIP(s[:slash])
	if err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(s[slash+1:], "%d", &length); err != nil {
		return 0, 0, fmt.Errorf("address %q has invalid length", s)
	}
	return addr, length, nil
}
