package topology

import (
	"strings"
	"testing"

	"repro/internal/netcfg"
)

func spec() *RouterSpec {
	return &RouterSpec{
		Name:     "R1",
		ASN:      1,
		RouterID: "1.0.0.1",
		Interfaces: []InterfaceSpec{
			{Name: "eth0/0", Address: "1.0.0.1/24"},
			{Name: "eth0/1", Address: "2.0.0.1/24"},
		},
		Neighbors: []NeighborSpec{
			{PeerName: "CUSTOMER", PeerIP: "1.0.0.2", PeerAS: 65500, External: true},
			{PeerName: "R2", PeerIP: "2.0.0.2", PeerAS: 2},
		},
		Networks: []string{"1.0.0.0/24", "2.0.0.0/24"},
	}
}

func conformingDevice(t *testing.T) *netcfg.Device {
	t.Helper()
	d := netcfg.NewDevice("R1", netcfg.VendorCisco)
	for _, ifc := range spec().Interfaces {
		slash := strings.IndexByte(ifc.Address, '/')
		addr, err := netcfg.ParseIP(ifc.Address[:slash])
		if err != nil {
			t.Fatal(err)
		}
		i := d.EnsureInterface(ifc.Name)
		i.Address = netcfg.Prefix{Addr: addr, Len: 24}
		i.HasAddress = true
	}
	b := d.EnsureBGP(1)
	id, _ := netcfg.ParseIP("1.0.0.1")
	b.RouterID = id
	for _, nb := range spec().Neighbors {
		ip, _ := netcfg.ParseIP(nb.PeerIP)
		b.EnsureNeighbor(ip).RemoteAS = nb.PeerAS
	}
	for _, n := range spec().Networks {
		b.Networks = append(b.Networks, netcfg.MustPrefix(n))
	}
	return d
}

func TestVerifyConformingDeviceClean(t *testing.T) {
	if finds := Verify(spec(), conformingDevice(t)); len(finds) != 0 {
		t.Fatalf("findings on conforming device: %v", finds)
	}
}

func expectIssue(t *testing.T, dev *netcfg.Device, want string) {
	t.Helper()
	finds := Verify(spec(), dev)
	for _, f := range finds {
		if strings.Contains(f.Issue, want) {
			return
		}
	}
	t.Fatalf("no finding containing %q; got %v", want, finds)
}

func TestVerifyWrongInterfaceAddress(t *testing.T) {
	d := conformingDevice(t)
	d.Interface("eth0/1").Address.Addr++
	expectIssue(t, d, "Interface eth0/1 ip address does not match with given config. Expected 2.0.0.1, found 2.0.0.2")
}

func TestVerifyMissingInterface(t *testing.T) {
	d := conformingDevice(t)
	d.Interfaces = d.Interfaces[:1]
	expectIssue(t, d, "Interface eth0/1 with IP address 2.0.0.1 not configured")
}

func TestVerifyWrongLocalAS(t *testing.T) {
	d := conformingDevice(t)
	d.BGP.ASN = 3
	expectIssue(t, d, "Local AS number does not match. Expected 1, found 3")
}

func TestVerifyWrongRouterID(t *testing.T) {
	d := conformingDevice(t)
	d.BGP.RouterID++
	expectIssue(t, d, "Router ID does not match with given config. Expected 1.0.0.1, found 1.0.0.2")
}

func TestVerifyMissingNeighbor(t *testing.T) {
	d := conformingDevice(t)
	d.BGP.Neighbors = d.BGP.Neighbors[1:]
	expectIssue(t, d, "Neighbor with IP address 1.0.0.2 and AS 65500 not declared")
}

func TestVerifyWrongNeighborAS(t *testing.T) {
	d := conformingDevice(t)
	d.BGP.Neighbors[1].RemoteAS = 99
	expectIssue(t, d, "Neighbor with IP address 2.0.0.2 has wrong AS. Expected 2, found 99")
}

func TestVerifyMissingNetwork(t *testing.T) {
	d := conformingDevice(t)
	d.BGP.Networks = d.BGP.Networks[1:]
	expectIssue(t, d, "Network 1.0.0.0/24 not declared")
}

func TestVerifyDisconnectedNetwork(t *testing.T) {
	d := conformingDevice(t)
	d.BGP.Networks = append(d.BGP.Networks, netcfg.MustPrefix("7.0.0.0/24"))
	expectIssue(t, d, "Incorrect network declaration. 7.0.0.0/24 is not directly connected to R1")
}

func TestVerifyExtraNeighbor(t *testing.T) {
	d := conformingDevice(t)
	n := d.BGP.EnsureNeighbor(netcfg.MustPrefix("7.0.0.2/32").Addr)
	n.RemoteAS = 7
	expectIssue(t, d, "Incorrect neighbor declaration. No neighbor with IP address 7.0.0.2 AS 7 found")
}

func TestVerifyNoBGPBlock(t *testing.T) {
	d := netcfg.NewDevice("R1", netcfg.VendorCisco)
	expectIssue(t, d, "No 'router bgp 1' block declared")
}

func TestVerifyAllReportsMissingDevice(t *testing.T) {
	topo := &Topology{Name: "t", Routers: []RouterSpec{*spec()}}
	finds := VerifyAll(topo, map[string]*netcfg.Device{})
	if len(finds) != 1 || !strings.Contains(finds[0].Issue, "no configuration") {
		t.Fatalf("findings = %v", finds)
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	topo := &Topology{Name: "t", Routers: []RouterSpec{*spec()}}
	data, err := topo.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "t" || len(back.Routers) != 1 {
		t.Fatalf("round trip = %+v", back)
	}
	r := back.Router("R1")
	if r == nil || r.ASN != 1 || len(r.Interfaces) != 2 || len(r.Neighbors) != 2 {
		t.Fatalf("router = %+v", r)
	}
	if back.Router("R9") != nil {
		t.Error("lookup of unknown router should be nil")
	}
}

func TestConnectedPrefixes(t *testing.T) {
	ps, err := spec().ConnectedPrefixes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0].String() != "1.0.0.0/24" || ps[1].String() != "2.0.0.0/24" {
		t.Fatalf("prefixes = %v", ps)
	}
}
