package topology

import (
	"fmt"

	"repro/internal/netcfg"
)

// Finding is one inconsistency between a router's generated configuration
// and its topology spec. Issue is phrased exactly like the paper's Table 3
// topology-error prompts, so the humanizer can pass it through verbatim.
type Finding struct {
	Router string
	Issue  string
}

// String implements fmt.Stringer.
func (f Finding) String() string { return f.Router + ": " + f.Issue }

// Verify checks a parsed device configuration against the router's spec.
// It reproduces the seven topology-error categories of Table 3: interface
// address mismatches, local-AS mismatch, router-ID mismatch, undeclared
// neighbors, undeclared networks, networks not directly connected, and
// neighbors that should not exist.
func Verify(spec *RouterSpec, dev *netcfg.Device) []Finding {
	var out []Finding
	add := func(format string, args ...interface{}) {
		out = append(out, Finding{Router: spec.Name, Issue: fmt.Sprintf(format, args...)})
	}

	// 1. Interfaces and addresses.
	for _, ifcSpec := range spec.Interfaces {
		wantAddr, wantLen, err := hostAddr(ifcSpec.Address)
		if err != nil {
			add("topology spec for interface %s is invalid: %v", ifcSpec.Name, err)
			continue
		}
		ifc := dev.Interface(ifcSpec.Name)
		if ifc == nil || !ifc.HasAddress {
			add("Interface %s with IP address %s not configured", ifcSpec.Name,
				netcfg.FormatIP(wantAddr))
			continue
		}
		if ifc.Address.Addr != wantAddr || ifc.Address.Len != wantLen {
			add("Interface %s ip address does not match with given config. Expected %s, found %s",
				ifcSpec.Name, netcfg.FormatIP(wantAddr), netcfg.FormatIP(ifc.Address.Addr))
		}
	}

	// 2. Local AS.
	if dev.BGP == nil {
		add("No 'router bgp %d' block declared", spec.ASN)
		return out
	}
	if dev.BGP.ASN != spec.ASN {
		add("Local AS number does not match. Expected %d, found %d", spec.ASN, dev.BGP.ASN)
	}

	// 3. Router ID.
	wantID, err := netcfg.ParseIP(spec.RouterID)
	if err == nil && dev.BGP.RouterID != 0 && dev.BGP.RouterID != wantID {
		add("Router ID does not match with given config. Expected %s, found %s",
			spec.RouterID, netcfg.FormatIP(dev.BGP.RouterID))
	}

	// 4. Required neighbors declared.
	for _, nb := range spec.Neighbors {
		peerIP, err := netcfg.ParseIP(nb.PeerIP)
		if err != nil {
			add("topology spec for neighbor %s is invalid: %v", nb.PeerName, err)
			continue
		}
		got := dev.BGP.Neighbor(peerIP)
		if got == nil {
			add("Neighbor with IP address %s and AS %d not declared", nb.PeerIP, nb.PeerAS)
			continue
		}
		if got.RemoteAS != nb.PeerAS {
			add("Neighbor with IP address %s has wrong AS. Expected %d, found %d",
				nb.PeerIP, nb.PeerAS, got.RemoteAS)
		}
	}

	// 5. Required networks declared; 6. declared networks must be directly
	// connected.
	connected, connErr := spec.ConnectedPrefixes()
	for _, netStr := range spec.Networks {
		want, err := netcfg.ParsePrefix(netStr)
		if err != nil {
			add("topology spec network %q is invalid: %v", netStr, err)
			continue
		}
		if !dev.BGP.HasNetwork(want) {
			add("Network %s not declared", want)
		}
	}
	if connErr == nil {
		for _, got := range dev.BGP.Networks {
			if !isSpecNetwork(spec, got) && !isConnected(connected, got) {
				add("Incorrect network declaration. %s is not directly connected to %s",
					got, spec.Name)
			}
		}
	}

	// 7. Extra neighbors.
	for _, got := range dev.BGP.Neighbors {
		if !isSpecNeighbor(spec, got.Addr) {
			add("Incorrect neighbor declaration. No neighbor with IP address %s AS %d found",
				netcfg.FormatIP(got.Addr), got.RemoteAS)
		}
	}
	return out
}

// VerifyAll verifies every router of a topology against a set of parsed
// devices keyed by router name. Missing devices yield a finding.
func VerifyAll(t *Topology, devs map[string]*netcfg.Device) []Finding {
	var out []Finding
	for i := range t.Routers {
		spec := &t.Routers[i]
		dev := devs[spec.Name]
		if dev == nil {
			out = append(out, Finding{Router: spec.Name, Issue: "no configuration generated"})
			continue
		}
		out = append(out, Verify(spec, dev)...)
	}
	return out
}

func isSpecNetwork(spec *RouterSpec, p netcfg.Prefix) bool {
	for _, n := range spec.Networks {
		if want, err := netcfg.ParsePrefix(n); err == nil && want == p {
			return true
		}
	}
	return false
}

func isConnected(connected []netcfg.Prefix, p netcfg.Prefix) bool {
	for _, c := range connected {
		if c == p {
			return true
		}
	}
	return false
}

func isSpecNeighbor(spec *RouterSpec, addr uint32) bool {
	for _, nb := range spec.Neighbors {
		if ip, err := netcfg.ParseIP(nb.PeerIP); err == nil && ip == addr {
			return true
		}
	}
	return false
}
