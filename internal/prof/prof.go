// Package prof wires the runtime/pprof profilers behind the
// -cpuprofile/-memprofile/-blockprofile/-mutexprofile flags shared by the
// cosynth and cofuzz CLIs, so a scale run can be profiled in place
// (`go tool pprof cosynth cpu.out`) without rebuilding anything as a
// benchmark.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Options names every profile the CLIs can enable; an empty path
// disables that profile.
type Options struct {
	// CPUPath receives the CPU profile (-cpuprofile).
	CPUPath string
	// MemPath receives the heap profile, written after a final GC at stop
	// time (-memprofile).
	MemPath string
	// BlockPath receives the goroutine blocking profile (-blockprofile):
	// where goroutines waited on channels, locks, and condition variables.
	// Enabling it sets runtime.SetBlockProfileRate(1) for the run — full
	// sampling, the useful setting for a one-shot CLI profile — and
	// restores rate 0 at stop.
	BlockPath string
	// MutexPath receives the mutex contention profile (-mutexprofile):
	// which locks goroutines contended on and for how long. Enabling it
	// sets runtime.SetMutexProfileFraction(1) and restores the previous
	// fraction at stop.
	MutexPath string
}

// Start begins the profiles the two classic paths enable and returns an
// idempotent stop function that flushes them. Retained for the original
// two-profile call sites; StartOpts is the full surface.
func Start(cpuPath, memPath string) (func(), error) {
	return StartOpts(Options{CPUPath: cpuPath, MemPath: memPath})
}

// StartOpts begins every profile opts enables and returns an idempotent
// stop function that flushes them: the CPU profile stops, the heap
// profile is written after a final GC so it reflects live allocations at
// stop time, and the block/mutex profiles are snapshotted and their
// runtime sampling switched back off.
func StartOpts(opts Options) (func(), error) {
	var cpuFile *os.File
	if opts.CPUPath != "" {
		f, err := os.Create(opts.CPUPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	prevMutexFraction := 0
	if opts.BlockPath != "" {
		runtime.SetBlockProfileRate(1)
	}
	if opts.MutexPath != "" {
		prevMutexFraction = runtime.SetMutexProfileFraction(1)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if opts.BlockPath != "" {
			writeLookup("block", opts.BlockPath, "-blockprofile")
			runtime.SetBlockProfileRate(0)
		}
		if opts.MutexPath != "" {
			writeLookup("mutex", opts.MutexPath, "-mutexprofile")
			runtime.SetMutexProfileFraction(prevMutexFraction)
		}
		if opts.MemPath != "" {
			f, err := os.Create(opts.MemPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}
	}, nil
}

// writeLookup snapshots one named pprof profile to path; failures warn
// rather than fail — a profile is diagnostics, never the run's outcome.
func writeLookup(name, path, flag string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag, err)
	}
}
