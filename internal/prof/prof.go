// Package prof wires the runtime/pprof profilers behind the
// -cpuprofile/-memprofile flags shared by the cosynth and cofuzz CLIs, so
// a scale run can be profiled in place (`go tool pprof cosynth cpu.out`)
// without rebuilding anything as a benchmark.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles the two paths enable (an empty path disables
// that profile) and returns an idempotent stop function that flushes
// them: the CPU profile stops, and the heap profile is written after a
// final GC so it reflects live allocations at stop time.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}
	}, nil
}
