package campion_test

import (
	"strings"
	"testing"

	"repro/internal/campion"
	"repro/internal/cisco"
	"repro/internal/exampledata"
	"repro/internal/juniper"
	"repro/internal/netcfg"
	"repro/internal/translate"
)

func parsedPair(t *testing.T, mutate func(trans *netcfg.Device)) (*netcfg.Device, *netcfg.Device) {
	t.Helper()
	orig, warns := cisco.Parse(exampledata.CiscoExample)
	if len(warns) != 0 {
		t.Fatal(warns)
	}
	trans := translate.Golden(orig)
	if mutate != nil {
		mutate(trans)
	}
	// Round-trip through the printer so Diff sees parsed text, exactly as
	// the VPP loop does.
	reparsed, warns := juniper.Parse(juniper.Print(trans))
	if len(warns) != 0 {
		t.Fatalf("mutated translation has parse warnings: %v", warns)
	}
	return orig, reparsed
}

func onlyKind(t *testing.T, findings []campion.Finding, kind campion.Kind) campion.Finding {
	t.Helper()
	var match []campion.Finding
	for _, f := range findings {
		if f.Kind == kind {
			match = append(match, f)
		}
	}
	if len(match) != 1 {
		t.Fatalf("findings of kind %v = %d, want 1; all: %v", kind, len(match), findings)
	}
	return match[0]
}

func TestDiffCleanOnGolden(t *testing.T) {
	orig, trans := parsedPair(t, nil)
	if findings := campion.Diff(orig, trans); len(findings) != 0 {
		t.Fatalf("golden translation should be diff-free: %v", findings)
	}
}

func TestDiffMissingImportPolicy(t *testing.T) {
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		d.BGP.Neighbors[0].ImportPolicy = ""
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.StructuralMismatch)
	if !f.InOriginal || f.InTranslation {
		t.Errorf("sides wrong: %+v", f)
	}
	if !strings.Contains(f.Component, "import route map for bgp neighbor 2.3.4.5") {
		t.Errorf("component = %q", f.Component)
	}
}

func TestDiffExtraNeighbor(t *testing.T) {
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		n := d.BGP.EnsureNeighbor(netcfg.MustPrefix("9.9.9.9/32").Addr)
		n.RemoteAS = 9
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.StructuralMismatch)
	if f.InOriginal || !f.InTranslation {
		t.Errorf("sides wrong: %+v", f)
	}
}

func TestDiffOSPFCost(t *testing.T) {
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		d.Interface("lo0.0").OSPFCost = 0
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.AttributeDifference)
	if f.Attribute != "cost" || f.OriginalValue != "1" || f.TranslationValue != "0" {
		t.Errorf("finding = %+v", f)
	}
	if f.Component != "OSPF link for Loopback0" || f.TranslationComponent != "lo0.0" {
		t.Errorf("components = %q / %q", f.Component, f.TranslationComponent)
	}
}

func TestDiffOSPFPassive(t *testing.T) {
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		d.Interface("lo0.0").OSPFPassive = false
		d.OSPF.PassiveInterfaces = nil
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.AttributeDifference)
	if f.Attribute != "passive interface setting" {
		t.Errorf("finding = %+v", f)
	}
}

func TestDiffRemoteAS(t *testing.T) {
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		d.BGP.Neighbors[0].RemoteAS = 65002
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.AttributeDifference)
	if f.Attribute != "remote AS" || f.TranslationValue != "65002" {
		t.Errorf("finding = %+v", f)
	}
}

func TestDiffMissingMED(t *testing.T) {
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		for _, cl := range d.RoutePolicies["to_provider"].Clauses {
			var kept []netcfg.SetAction
			for _, s := range cl.Sets {
				// Strip only the original export term's MED (50), not the
				// redistribution term's (10).
				if m, ok := s.(netcfg.SetMED); ok && m.MED == 50 {
					continue
				}
				kept = append(kept, s)
			}
			cl.Sets = kept
		}
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.PolicyBehaviorDifference)
	if f.Witness.Prefix.String() != "1.2.3.0/24" {
		t.Errorf("witness = %s, want 1.2.3.0/24", f.Witness.Prefix)
	}
	if f.Direction != "export" || !strings.Contains(f.OriginalBehavior, "MED 50") {
		t.Errorf("finding = %+v", f)
	}
	if strings.Contains(f.TranslationBehavior, "MED") {
		t.Errorf("translation behavior should lack MED: %+v", f)
	}
}

func TestDiffNarrowedRouteFilter(t *testing.T) {
	// The dropped "ge 24": exact instead of /24-/32 must yield the paper's
	// 1.2.3.0/25 witness.
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		for _, cl := range d.RoutePolicies["to_provider"].Clauses {
			for i, m := range cl.Matches {
				if rf, ok := m.(netcfg.MatchRouteFilter); ok {
					cl.Matches[i] = netcfg.NewMatchRouteFilterExact(rf.Prefix)
				}
			}
		}
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.PolicyBehaviorDifference)
	if f.Witness.Prefix.String() != "1.2.3.0/25" {
		t.Errorf("witness = %s, want 1.2.3.0/25", f.Witness.Prefix)
	}
	if !strings.HasPrefix(f.OriginalBehavior, "ACCEPT") || f.TranslationBehavior != "REJECT" {
		t.Errorf("behaviors = %q / %q", f.OriginalBehavior, f.TranslationBehavior)
	}
}

func TestDiffRedistributionLeak(t *testing.T) {
	// Stripping the protocol gates makes the Juniper side export routes
	// the Cisco side does not (§3.2).
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		for _, cl := range d.RoutePolicies["to_provider"].Clauses {
			var kept []netcfg.Match
			for _, m := range cl.Matches {
				if _, ok := m.(netcfg.MatchProtocol); !ok {
					kept = append(kept, m)
				}
			}
			cl.Matches = kept
		}
	})
	f := onlyKind(t, campion.Diff(orig, trans), campion.PolicyBehaviorDifference)
	if f.OriginalBehavior != "REJECT" || !strings.HasPrefix(f.TranslationBehavior, "ACCEPT") {
		t.Errorf("behaviors = %q / %q (want translation accepting more)",
			f.OriginalBehavior, f.TranslationBehavior)
	}
}

func TestDiffOrderStructuralBeforeAttributeBeforePolicy(t *testing.T) {
	orig, trans := parsedPair(t, func(d *netcfg.Device) {
		d.BGP.Neighbors[0].ImportPolicy = ""                        // structural
		d.Interface("lo0.0").OSPFCost = 0                           // attribute
		for _, cl := range d.RoutePolicies["to_provider"].Clauses { // policy
			cl.Sets = nil
		}
	})
	findings := campion.Diff(orig, trans)
	if len(findings) < 3 {
		t.Fatalf("findings = %v", findings)
	}
	order := []campion.Kind{}
	for _, f := range findings {
		order = append(order, f.Kind)
	}
	last := campion.StructuralMismatch
	for _, k := range order {
		if k < last {
			t.Fatalf("findings out of masking order: %v", order)
		}
		last = k
	}
}

func TestCiscoToJuniperIfc(t *testing.T) {
	cases := map[string]string{
		"GigabitEthernet0/0": "ge-0/0/0.0",
		"GigabitEthernet1/3": "ge-1/0/3.0",
		"Ethernet0/1":        "ge-0/0/1.0",
		"Loopback0":          "lo0.0",
		"Loopback12":         "lo12.0",
		"Tunnel0":            "Tunnel0", // unknown passes through
	}
	for in, want := range cases {
		if got := campion.CiscoToJuniperIfc(in); got != want {
			t.Errorf("campion.CiscoToJuniperIfc(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCanonicalIfcPairsAcrossVendors(t *testing.T) {
	pairs := [][2]string{
		{"GigabitEthernet0/0", "ge-0/0/0.0"},
		{"GigabitEthernet2/7", "ge-2/0/7.0"},
		{"Loopback0", "lo0.0"},
		{"Ethernet0/1", "ge-0/0/1.0"},
	}
	for _, p := range pairs {
		if campion.CanonicalIfc(p[0]) != campion.CanonicalIfc(p[1]) {
			t.Errorf("canonical(%q)=%q != canonical(%q)=%q",
				p[0], campion.CanonicalIfc(p[0]), p[1], campion.CanonicalIfc(p[1]))
		}
	}
	if campion.CanonicalIfc("GigabitEthernet0/0") == campion.CanonicalIfc("GigabitEthernet0/1") {
		t.Error("distinct interfaces must not collide")
	}
}
