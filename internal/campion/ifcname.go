package campion

import (
	"fmt"
	"strings"
)

// CiscoToJuniperIfc maps a Cisco interface name to the Juniper logical
// interface a faithful translation would use:
//
//	GigabitEthernetX/Y -> ge-X/0/Y.0
//	EthernetX/Y        -> ge-X/0/Y.0
//	LoopbackN          -> loN.0
//
// Unknown names map to themselves so that diffing degrades gracefully.
func CiscoToJuniperIfc(name string) string {
	if rest, ok := cutPrefixFold(name, "GigabitEthernet"); ok {
		if a, b, ok := splitSlash(rest); ok {
			return fmt.Sprintf("ge-%s/0/%s.0", a, b)
		}
	}
	if rest, ok := cutPrefixFold(name, "Ethernet"); ok {
		if a, b, ok := splitSlash(rest); ok {
			return fmt.Sprintf("ge-%s/0/%s.0", a, b)
		}
	}
	if rest, ok := cutPrefixFold(name, "Loopback"); ok {
		return "lo" + rest + ".0"
	}
	return name
}

// CanonicalIfc maps either vendor's interface name to a vendor-neutral key
// used to pair interfaces across a translation.
func CanonicalIfc(name string) string {
	// Cisco forms.
	if rest, ok := cutPrefixFold(name, "GigabitEthernet"); ok {
		if a, b, ok := splitSlash(rest); ok {
			return "eth:" + a + "/" + b
		}
	}
	if rest, ok := cutPrefixFold(name, "Ethernet"); ok {
		if a, b, ok := splitSlash(rest); ok {
			return "eth:" + a + "/" + b
		}
	}
	if rest, ok := cutPrefixFold(name, "Loopback"); ok {
		return "lo:" + rest
	}
	// Juniper forms: ge-A/B/C.U and loN.U (unit ignored for pairing).
	if rest, ok := cutPrefixFold(name, "ge-"); ok {
		rest = strings.SplitN(rest, ".", 2)[0]
		parts := strings.Split(rest, "/")
		if len(parts) == 3 {
			return "eth:" + parts[0] + "/" + parts[2]
		}
	}
	if rest, ok := cutPrefixFold(name, "lo"); ok {
		rest = strings.SplitN(rest, ".", 2)[0]
		if rest != "" && isDigits(rest) {
			return "lo:" + rest
		}
	}
	return "raw:" + name
}

func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix) {
		return s[len(prefix):], true
	}
	return "", false
}

func splitSlash(s string) (a, b string, ok bool) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 || !isDigits(parts[0]) || !isDigits(parts[1]) {
		return "", "", false
	}
	return parts[0], parts[1], true
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
