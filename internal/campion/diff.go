package campion

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netcfg"
	"repro/internal/symbolic"
)

// Diff compares an original Cisco device against its Juniper translation
// and returns localized findings, ordered structural mismatches first, then
// attribute differences, then policy behaviour differences — the order the
// paper says they must be handled in, because earlier classes mask later
// ones (§3.1).
func Diff(orig, trans *netcfg.Device) []Finding {
	var structural, attribute, policy []Finding
	structural = append(structural, diffInterfacesStructural(orig, trans)...)
	structural = append(structural, diffBGPStructural(orig, trans)...)
	structural = append(structural, diffPrefixLists(orig, trans)...)

	attribute = append(attribute, diffInterfaceAttributes(orig, trans)...)
	attribute = append(attribute, diffBGPAttributes(orig, trans)...)

	policy = append(policy, diffPolicies(orig, trans)...)

	out := append(structural, attribute...)
	return append(out, policy...)
}

func diffInterfacesStructural(orig, trans *netcfg.Device) []Finding {
	var out []Finding
	transByKey := map[string]*netcfg.Interface{}
	for _, ifc := range trans.Interfaces {
		transByKey[CanonicalIfc(ifc.Name)] = ifc
	}
	origKeys := map[string]bool{}
	for _, ifc := range orig.Interfaces {
		key := CanonicalIfc(ifc.Name)
		origKeys[key] = true
		if transByKey[key] == nil {
			out = append(out, Finding{
				Kind:          StructuralMismatch,
				Component:     "interface " + ifc.Name,
				InOriginal:    true,
				InTranslation: false,
			})
		}
	}
	for _, ifc := range trans.Interfaces {
		if !origKeys[CanonicalIfc(ifc.Name)] {
			out = append(out, Finding{
				Kind:          StructuralMismatch,
				Component:     "interface " + ifc.Name,
				InOriginal:    false,
				InTranslation: true,
			})
		}
	}
	return out
}

func diffBGPStructural(orig, trans *netcfg.Device) []Finding {
	var out []Finding
	switch {
	case orig.BGP != nil && trans.BGP == nil:
		return []Finding{{Kind: StructuralMismatch, Component: "bgp process", InOriginal: true}}
	case orig.BGP == nil && trans.BGP != nil:
		return []Finding{{Kind: StructuralMismatch, Component: "bgp process", InTranslation: true}}
	case orig.BGP == nil:
		return nil
	}
	for _, n := range orig.BGP.Neighbors {
		tn := trans.BGP.Neighbor(n.Addr)
		if tn == nil {
			out = append(out, Finding{
				Kind:       StructuralMismatch,
				Component:  "bgp neighbor " + netcfg.FormatIP(n.Addr),
				InOriginal: true,
			})
			continue
		}
		// Paper Table 1: "there is an import route map for bgp neighbor
		// 2.3.4.5, but in the translation, there is no corresponding route
		// map".
		if n.ImportPolicy != "" && tn.ImportPolicy == "" {
			out = append(out, Finding{
				Kind:       StructuralMismatch,
				Component:  "import route map for bgp neighbor " + netcfg.FormatIP(n.Addr),
				InOriginal: true,
			})
		}
		if n.ImportPolicy == "" && tn.ImportPolicy != "" {
			out = append(out, Finding{
				Kind:          StructuralMismatch,
				Component:     "import route map for bgp neighbor " + netcfg.FormatIP(n.Addr),
				InTranslation: true,
			})
		}
		if n.ExportPolicy != "" && tn.ExportPolicy == "" {
			out = append(out, Finding{
				Kind:       StructuralMismatch,
				Component:  "export route map for bgp neighbor " + netcfg.FormatIP(n.Addr),
				InOriginal: true,
			})
		}
		if n.ExportPolicy == "" && tn.ExportPolicy != "" {
			out = append(out, Finding{
				Kind:          StructuralMismatch,
				Component:     "export route map for bgp neighbor " + netcfg.FormatIP(n.Addr),
				InTranslation: true,
			})
		}
	}
	for _, tn := range trans.BGP.Neighbors {
		if orig.BGP.Neighbor(tn.Addr) == nil {
			out = append(out, Finding{
				Kind:          StructuralMismatch,
				Component:     "bgp neighbor " + netcfg.FormatIP(tn.Addr),
				InTranslation: true,
			})
		}
	}
	return out
}

func diffPrefixLists(orig, trans *netcfg.Device) []Finding {
	var out []Finding
	for _, name := range orig.PrefixListNames() {
		if trans.PrefixLists[name] == nil && !prefixListInlined(trans, orig.PrefixLists[name]) {
			out = append(out, Finding{
				Kind:       StructuralMismatch,
				Component:  "prefix list " + name,
				InOriginal: true,
			})
		}
	}
	return out
}

// prefixListInlined reports whether the translation expresses the list as
// inline route-filter conditions instead of a named prefix-list — a
// legitimate Juniper idiom for Cisco's ge/le entries, not a structural
// mismatch. The check is intentionally structural only (a route-filter on
// one of the list's patterns exists); whether the translated length range
// is *behaviourally* equivalent is the policy-difference stage's job —
// that is exactly where the paper's "ge 24" error class surfaces (Table 2,
// "Different prefix lengths match in BGP": a policy error, not a
// structural one).
func prefixListInlined(trans *netcfg.Device, pl *netcfg.PrefixList) bool {
	for _, name := range trans.PolicyNames() {
		for _, cl := range trans.RoutePolicies[name].Clauses {
			for _, m := range cl.Matches {
				rf, ok := m.(netcfg.MatchRouteFilter)
				if !ok {
					continue
				}
				for _, e := range pl.Entries {
					if rf.Prefix == e.Prefix {
						return true
					}
				}
			}
		}
	}
	return false
}

func diffInterfaceAttributes(orig, trans *netcfg.Device) []Finding {
	var out []Finding
	transByKey := map[string]*netcfg.Interface{}
	for _, ifc := range trans.Interfaces {
		transByKey[CanonicalIfc(ifc.Name)] = ifc
	}
	for _, ifc := range orig.Interfaces {
		tifc := transByKey[CanonicalIfc(ifc.Name)]
		if tifc == nil {
			continue // structural finding already covers it
		}
		if ifc.HasAddress && tifc.HasAddress && ifc.Address != tifc.Address {
			out = append(out, Finding{
				Kind:                 AttributeDifference,
				Component:            "interface " + ifc.Name,
				TranslationComponent: tifc.Name,
				Attribute:            "ip address",
				OriginalValue:        fmt.Sprintf("%s/%d", netcfg.FormatIP(ifc.Address.Addr), ifc.Address.Len),
				TranslationValue:     fmt.Sprintf("%s/%d", netcfg.FormatIP(tifc.Address.Addr), tifc.Address.Len),
			})
		}
		oOSPF := effectiveOSPF(orig, ifc)
		tOSPF := effectiveOSPF(trans, tifc)
		if oOSPF.Enabled && tOSPF.Enabled {
			if oOSPF.Cost != tOSPF.Cost {
				out = append(out, Finding{
					Kind:                 AttributeDifference,
					Component:            "OSPF link for " + ifc.Name,
					TranslationComponent: tifc.Name,
					Attribute:            "cost",
					OriginalValue:        fmt.Sprint(oOSPF.Cost),
					TranslationValue:     fmt.Sprint(tOSPF.Cost),
				})
			}
			if oOSPF.Passive != tOSPF.Passive {
				out = append(out, Finding{
					Kind:                 AttributeDifference,
					Component:            "OSPF link for " + ifc.Name,
					TranslationComponent: tifc.Name,
					Attribute:            "passive interface setting",
					OriginalValue:        fmt.Sprint(oOSPF.Passive),
					TranslationValue:     fmt.Sprint(tOSPF.Passive),
				})
			}
		} else if oOSPF.Enabled != tOSPF.Enabled {
			out = append(out, Finding{
				Kind:                 AttributeDifference,
				Component:            "OSPF link for " + ifc.Name,
				TranslationComponent: tifc.Name,
				Attribute:            "ospf enabled",
				OriginalValue:        fmt.Sprint(oOSPF.Enabled),
				TranslationValue:     fmt.Sprint(tOSPF.Enabled),
			})
		}
	}
	return out
}

// ospfIfc is the effective OSPF state of one interface.
type ospfIfc struct {
	Enabled bool
	Cost    int
	Passive bool
}

// effectiveOSPF computes per-interface OSPF attributes under either
// vendor's configuration style. Defaults follow the repo's reference
// model: an enabled Cisco interface with no explicit cost defaults to 1,
// while a Juniper interface with no metric statement reports 0 — exactly
// the paper's Table 1 attribute example ("cost set to 1" vs "cost set to
// 0"), which a faithful translation avoids by emitting "metric 1".
func effectiveOSPF(d *netcfg.Device, ifc *netcfg.Interface) ospfIfc {
	var st ospfIfc
	switch d.Vendor {
	case netcfg.VendorJuniper:
		st.Enabled = ifc.OSPFArea >= 0
		st.Cost = ifc.OSPFCost
		st.Passive = ifc.OSPFPassive
	default:
		if d.OSPF == nil || !ifc.HasAddress {
			return st
		}
		for _, n := range d.OSPF.Networks {
			if n.Prefix.ContainsIP(ifc.Address.Addr) {
				st.Enabled = true
				break
			}
		}
		if !st.Enabled {
			return st
		}
		st.Cost = ifc.OSPFCost
		if st.Cost == 0 {
			st.Cost = 1
		}
		st.Passive = d.OSPF.IsPassive(ifc.Name)
	}
	return st
}

func diffBGPAttributes(orig, trans *netcfg.Device) []Finding {
	if orig.BGP == nil || trans.BGP == nil {
		return nil
	}
	var out []Finding
	if orig.BGP.RouterID != 0 && trans.BGP.RouterID != 0 && orig.BGP.RouterID != trans.BGP.RouterID {
		out = append(out, Finding{
			Kind:             AttributeDifference,
			Component:        "bgp process",
			Attribute:        "router-id",
			OriginalValue:    netcfg.FormatIP(orig.BGP.RouterID),
			TranslationValue: netcfg.FormatIP(trans.BGP.RouterID),
		})
	}
	for _, n := range orig.BGP.Neighbors {
		tn := trans.BGP.Neighbor(n.Addr)
		if tn == nil {
			continue
		}
		if n.RemoteAS != tn.RemoteAS {
			out = append(out, Finding{
				Kind:             AttributeDifference,
				Component:        "bgp neighbor " + netcfg.FormatIP(n.Addr),
				Attribute:        "remote AS",
				OriginalValue:    fmt.Sprint(n.RemoteAS),
				TranslationValue: fmt.Sprint(tn.RemoteAS),
			})
		}
		oLocal := effectiveLocalAS(orig.BGP, n)
		tLocal := effectiveLocalAS(trans.BGP, tn)
		if oLocal != tLocal && tLocal != 0 {
			out = append(out, Finding{
				Kind:             AttributeDifference,
				Component:        "bgp neighbor " + netcfg.FormatIP(n.Addr),
				Attribute:        "local AS",
				OriginalValue:    fmt.Sprint(oLocal),
				TranslationValue: fmt.Sprint(tLocal),
			})
		}
	}
	return out
}

func effectiveLocalAS(b *netcfg.BGP, n *netcfg.BGPNeighbor) uint32 {
	if n.LocalAS != 0 {
		return n.LocalAS
	}
	return b.ASN
}

// diffPolicies compares route-policy behaviour per neighbor attachment
// point via differential evaluation over a symbolically derived test
// universe, reporting a concrete witness route per difference.
func diffPolicies(orig, trans *netcfg.Device) []Finding {
	if orig.BGP == nil || trans.BGP == nil {
		return nil
	}
	universe := symbolic.Universe(orig, trans)
	var out []Finding
	for _, n := range orig.BGP.Neighbors {
		tn := trans.BGP.Neighbor(n.Addr)
		if tn == nil {
			continue
		}
		// Import: both sides see BGP announcements only.
		if n.ImportPolicy != "" && tn.ImportPolicy != "" {
			if f, ok := comparePolicyBehavior(orig, trans,
				orig.RoutePolicies[n.ImportPolicy], trans.RoutePolicies[tn.ImportPolicy],
				universe, onlyBGP); ok {
				f.Policy = n.ImportPolicy
				f.Direction = "import"
				f.Neighbor = netcfg.FormatIP(n.Addr)
				out = append(out, f)
			}
		}
		// Export: the effective behaviour includes redistribution
		// semantics, so non-BGP routes are part of the input space.
		if f, ok := compareExportBehavior(orig, trans, n, tn, universe); ok {
			f.Policy = n.ExportPolicy
			f.Direction = "export"
			f.Neighbor = netcfg.FormatIP(n.Addr)
			out = append(out, f)
		}
	}
	return out
}

func onlyBGP(r *netcfg.Route) bool { return r.Protocol == netcfg.ProtoBGP }

func anyProto(*netcfg.Route) bool { return true }

func comparePolicyBehavior(origEnv, transEnv netcfg.PolicyEnv, op, tp *netcfg.RoutePolicy,
	universe []*netcfg.Route, filter func(*netcfg.Route) bool) (Finding, bool) {
	for _, r := range universe {
		if !filter(r) {
			continue
		}
		oRes := netcfg.EvalPolicy(op, origEnv, r)
		tRes := netcfg.EvalPolicy(tp, transEnv, r)
		if desc, differs := describeDifference(oRes, tRes); differs {
			return Finding{
				Kind:                PolicyBehaviorDifference,
				Witness:             r.Clone(),
				OriginalBehavior:    desc[0],
				TranslationBehavior: desc[1],
			}, true
		}
	}
	return Finding{}, false
}

func compareExportBehavior(orig, trans *netcfg.Device, n, tn *netcfg.BGPNeighbor,
	universe []*netcfg.Route) (Finding, bool) {
	for _, r := range universe {
		oRes := EffectiveExport(orig, n, r)
		tRes := EffectiveExport(trans, tn, r)
		if desc, differs := describeDifference(oRes, tRes); differs {
			return Finding{
				Kind:                PolicyBehaviorDifference,
				Witness:             r.Clone(),
				OriginalBehavior:    desc[0],
				TranslationBehavior: desc[1],
			}, true
		}
	}
	return Finding{}, false
}

// EffectiveExport models what each vendor actually exports to a neighbor:
//
//   - Cisco: the neighbor's export route map filters BGP routes; non-BGP
//     routes reach BGP only through a matching "redistribute" statement
//     (its route map, if any, filters them).
//   - Juniper: the single export policy sees the whole routing table —
//     every protocol — which is why a faithful translation adds "from
//     protocol bgp" conditions (the paper's redistribution difference,
//     §3.2). With no export policy, Junos exports BGP routes only.
func EffectiveExport(d *netcfg.Device, n *netcfg.BGPNeighbor, r *netcfg.Route) netcfg.EvalResult {
	if d.Vendor == netcfg.VendorJuniper {
		pol := d.RoutePolicies[n.ExportPolicy]
		if n.ExportPolicy == "" || pol == nil {
			if r.Protocol == netcfg.ProtoBGP {
				return netcfg.EvalResult{Permitted: true, Route: r.Clone(), ClauseSeq: -1}
			}
			return netcfg.EvalResult{Permitted: false, ClauseSeq: -1}
		}
		return netcfg.EvalPolicy(pol, d, r)
	}
	// Cisco.
	if r.Protocol == netcfg.ProtoBGP {
		if n.ExportPolicy == "" {
			return netcfg.EvalResult{Permitted: true, Route: r.Clone(), ClauseSeq: -1}
		}
		return netcfg.EvalPolicy(d.RoutePolicies[n.ExportPolicy], d, r)
	}
	if d.BGP != nil {
		for _, red := range d.BGP.Redistribute {
			if red.Protocol != r.Protocol.RedistSource() {
				continue
			}
			if red.Policy == "" {
				return netcfg.EvalResult{Permitted: true, Route: r.Clone(), ClauseSeq: -1}
			}
			return netcfg.EvalPolicy(d.RoutePolicies[red.Policy], d, r)
		}
	}
	return netcfg.EvalResult{Permitted: false, ClauseSeq: -1}
}

// describeDifference renders the two behaviours if they differ.
func describeDifference(o, t netcfg.EvalResult) ([2]string, bool) {
	od, td := behaviorString(o), behaviorString(t)
	if od == td {
		return [2]string{}, false
	}
	return [2]string{od, td}, true
}

func behaviorString(res netcfg.EvalResult) string {
	if !res.Permitted {
		return "REJECT"
	}
	parts := []string{"ACCEPT"}
	r := res.Route
	if r.MED != 0 {
		parts = append(parts, fmt.Sprintf("MED %d", r.MED))
	}
	if r.LocalPref != 0 && r.LocalPref != 100 {
		parts = append(parts, fmt.Sprintf("local-preference %d", r.LocalPref))
	}
	if comms := r.CommunityStrings(); len(comms) > 0 {
		sort.Strings(comms)
		parts = append(parts, "communities "+strings.Join(comms, " "))
	}
	if len(parts) == 1 {
		return "ACCEPT"
	}
	return parts[0] + " with " + strings.Join(parts[1:], ", ")
}
