// Package campion reimplements the role Campion (SIGCOMM'21) plays in the
// paper: given an original Cisco configuration and its Juniper translation,
// detect and *localize* three classes of semantic differences (§3.1):
//
//   - structural mismatches: a component, connection, or named policy
//     present on one side only (e.g. a BGP neighbor's import route map);
//   - attribute differences: a numerical attribute differing between
//     corresponding components (e.g. OSPF link cost);
//   - policy behaviour differences: a route map / policy statement treating
//     some route announcement differently, reported with an example prefix.
//
// Findings carry enough structure for the humanizer to instantiate the
// Table 1 prompt formulas.
package campion

import (
	"fmt"

	"repro/internal/netcfg"
)

// Kind classifies a finding (the paper's four classes minus syntax errors,
// which Batfish reports).
type Kind int

// Finding kinds.
const (
	StructuralMismatch Kind = iota
	AttributeDifference
	PolicyBehaviorDifference
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case StructuralMismatch:
		return "structural mismatch"
	case AttributeDifference:
		return "attribute difference"
	case PolicyBehaviorDifference:
		return "policy behavior difference"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Finding is one localized difference between original and translation.
type Finding struct {
	Kind Kind

	// Component names the configuration element, phrased from the original
	// config's point of view (e.g. "import route map for bgp neighbor
	// 2.3.4.5", "OSPF link for Loopback0").
	Component string

	// Structural mismatch: which side has the component.
	InOriginal    bool
	InTranslation bool

	// Attribute difference: the attribute and both values.
	Attribute        string
	OriginalValue    string
	TranslationValue string
	// TranslationComponent names the corresponding element in the
	// translation when it differs lexically (e.g. "lo0.0" for "Loopback0").
	TranslationComponent string

	// Policy behaviour difference: the policy, its attachment point, a
	// witness route, and the two observed behaviours.
	Policy              string
	Direction           string // "import" or "export"
	Neighbor            string // peer address
	Witness             *netcfg.Route
	OriginalBehavior    string // e.g. "ACCEPT", "REJECT", "ACCEPT with MED 50"
	TranslationBehavior string
}

// String renders a compact one-line description (transcripts, tests).
func (f Finding) String() string {
	switch f.Kind {
	case StructuralMismatch:
		side := "translation"
		if f.InOriginal {
			side = "original"
		}
		return fmt.Sprintf("[structural] %s present only in %s", f.Component, side)
	case AttributeDifference:
		return fmt.Sprintf("[attribute] %s %s: original=%s translation=%s",
			f.Component, f.Attribute, f.OriginalValue, f.TranslationValue)
	default:
		return fmt.Sprintf("[policy] %s %s for neighbor %s on %s: original=%s translation=%s",
			f.Direction, f.Policy, f.Neighbor, f.Witness.Prefix, f.OriginalBehavior, f.TranslationBehavior)
	}
}
