package lightyear

import (
	"strings"
	"testing"

	"repro/internal/netgen"
	"repro/internal/topology"
)

func scenarioTopos(t *testing.T) []*topology.Topology {
	t.Helper()
	var out []*topology.Topology
	for _, gen := range []struct {
		make func(int) (*topology.Topology, error)
		n    int
	}{
		{netgen.Star, 7},
		{netgen.Ring, 6},
		{netgen.FullMesh, 5},
		{netgen.FatTree, 4},
	} {
		topo, err := gen.make(gen.n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, topo)
	}
	return out
}

// TestSpecForCoverageComplete is the modular proof obligation on every
// scenario: the derived local specification must imply the global
// no-transit policy (for every ordered pair of ISP attachment points the
// tag is added at one and dropped at the other).
func TestSpecForCoverageComplete(t *testing.T) {
	for _, topo := range scenarioTopos(t) {
		if err := CoverageComplete(topo, SpecFor(topo)); err != nil {
			t.Errorf("%s: coverage incomplete: %v", topo.Name, err)
		}
	}
}

// TestSpecForDispatch pins the spec-derivation split: stars keep the
// paper's hub-centric requirements on R1; other graphs place requirements
// at the ISP attachment points only.
func TestSpecForDispatch(t *testing.T) {
	star, _ := netgen.Star(5)
	for _, r := range SpecFor(star) {
		if r.Router != "R1" {
			t.Errorf("star requirement on %s, want all on the hub R1", r.Router)
		}
	}

	ring, _ := netgen.Ring(5)
	reqs := SpecFor(ring)
	byRouter := map[string]int{}
	for _, r := range reqs {
		byRouter[r.Router]++
		if !strings.Contains(r.Policy, "ISP") {
			t.Errorf("ring policy %q should be named after the ISP peer", r.Policy)
		}
	}
	if byRouter["R1"] != 0 {
		t.Errorf("R1 has %d requirements, want 0 (customer attachment only)", byRouter["R1"])
	}
	for _, router := range []string{"R2", "R3", "R4", "R5"} {
		// One ingress, three egress-drops (one per other ISP), one clean.
		if byRouter[router] != 5 {
			t.Errorf("%s has %d requirements, want 5", router, byRouter[router])
		}
	}
}

// TestCoverageIncompleteDetected removes one egress-drop requirement and
// expects the proof obligation to fail.
func TestCoverageIncompleteDetected(t *testing.T) {
	for _, topo := range scenarioTopos(t) {
		reqs := SpecFor(topo)
		var pruned []Requirement
		dropped := false
		for _, r := range reqs {
			if !dropped && r.Kind == EgressDropsCommunity {
				dropped = true
				continue
			}
			pruned = append(pruned, r)
		}
		if !dropped {
			t.Fatalf("%s: no egress-drop requirement to prune", topo.Name)
		}
		if err := CoverageComplete(topo, pruned); err == nil {
			t.Errorf("%s: pruned spec should be incomplete", topo.Name)
		}
	}
}

// TestSingleAttachmentNeedsNoEgressFilter: with one ISP there is no
// transit to prevent, so the spec must not require an egress route-map
// the modularizer never prompts for (an undefined route-map would be an
// unfixable violation). fat-tree k=2 is the minimal such topology.
func TestSingleAttachmentNeedsNoEgressFilter(t *testing.T) {
	topo, err := netgen.FatTree(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ISPAttachments(topo)); got != 1 {
		t.Fatalf("attachments = %d, want 1", got)
	}
	for _, r := range SpecFor(topo) {
		if r.Kind != IngressAddsCommunity {
			t.Errorf("single-ISP topology has non-ingress requirement %+v", r)
		}
	}
	if err := CoverageComplete(topo, SpecFor(topo)); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

// TestHandBuiltNamesGetDistinctTags: a hand-built dictionary whose
// routers are not named R<i> must still derive one distinct community
// per ISP (keyed on the peer AS), not collide on index 0.
func TestHandBuiltNamesGetDistinctTags(t *testing.T) {
	topo := &topology.Topology{Name: "custom", Routers: []topology.RouterSpec{
		{Name: "edge-west", ASN: 1, Neighbors: []topology.NeighborSpec{
			{PeerName: "ISP-A", PeerIP: "20.1.0.2", PeerAS: 300, External: true},
			{PeerName: "edge-east", PeerIP: "10.1.2.2", PeerAS: 2},
		}},
		{Name: "edge-east", ASN: 2, Neighbors: []topology.NeighborSpec{
			{PeerName: "ISP-B", PeerIP: "20.2.0.2", PeerAS: 301, External: true},
			{PeerName: "edge-west", PeerIP: "10.1.2.1", PeerAS: 1},
		}},
	}}
	atts := ISPAttachments(topo)
	if len(atts) != 2 {
		t.Fatalf("attachments = %d, want 2", len(atts))
	}
	if atts[0].Community() == atts[1].Community() {
		t.Errorf("tags collide: both %s", atts[0].Community())
	}
	if err := CoverageComplete(topo, SpecFor(topo)); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

// TestAttachmentDerivation pins the attachment collection: topology
// order, one attachment per ISP-facing router, customers excluded.
func TestAttachmentDerivation(t *testing.T) {
	ring, _ := netgen.Ring(4)
	atts := ISPAttachments(ring)
	if len(atts) != 3 {
		t.Fatalf("attachments = %d, want 3", len(atts))
	}
	for i, want := range []string{"R2", "R3", "R4"} {
		if atts[i].Router != want {
			t.Errorf("attachment[%d] = %s, want %s", i, atts[i].Router, want)
		}
	}
	a := atts[0]
	if a.IngressPolicy() != "ADD_COMM_ISP2" || a.EgressPolicy() != "FILTER_COMM_OUT_ISP2" {
		t.Errorf("policy names = %s / %s", a.IngressPolicy(), a.EgressPolicy())
	}
	if a.Community() != netgen.ISPCommunity(2) {
		t.Errorf("community = %s", a.Community())
	}
}
