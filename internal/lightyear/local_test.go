package lightyear

import (
	"strings"
	"testing"

	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
)

func scenarioTopos(t *testing.T) []*topology.Topology {
	t.Helper()
	var out []*topology.Topology
	for _, gen := range []struct {
		make func(int) (*topology.Topology, error)
		n    int
	}{
		{netgen.Star, 7},
		{netgen.Ring, 6},
		{netgen.FullMesh, 5},
		{netgen.FatTree, 4},
		{netgen.DualHomed, 5},
		{netgen.MultiCustomer, 6},
		{netgen.Random, 10},
	} {
		topo, err := gen.make(gen.n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, topo)
	}
	return out
}

// TestSpecForCoverageComplete is the modular proof obligation on every
// scenario: the derived local specification must imply the global
// no-transit policy (for every ordered pair of ISP attachment points the
// tag is added at one and dropped at the other).
func TestSpecForCoverageComplete(t *testing.T) {
	for _, topo := range scenarioTopos(t) {
		if err := CoverageComplete(topo, SpecFor(topo)); err != nil {
			t.Errorf("%s: coverage incomplete: %v", topo.Name, err)
		}
	}
}

// TestSpecForDispatch pins the spec-derivation split: stars keep the
// paper's hub-centric requirements on R1; other graphs place requirements
// at the ISP attachment points only.
func TestSpecForDispatch(t *testing.T) {
	star, _ := netgen.Star(5)
	for _, r := range SpecFor(star) {
		if r.Router != "R1" {
			t.Errorf("star requirement on %s, want all on the hub R1", r.Router)
		}
	}

	ring, _ := netgen.Ring(5)
	reqs := SpecFor(ring)
	byRouter := map[string]int{}
	for _, r := range reqs {
		byRouter[r.Router]++
		if !strings.Contains(r.Policy, "ISP") {
			t.Errorf("ring policy %q should be named after the ISP peer", r.Policy)
		}
	}
	if byRouter["R1"] != 0 {
		t.Errorf("R1 has %d requirements, want 0 (customer attachment only)", byRouter["R1"])
	}
	for _, router := range []string{"R2", "R3", "R4", "R5"} {
		// One ingress, three egress-drops (one per other ISP), one clean.
		if byRouter[router] != 5 {
			t.Errorf("%s has %d requirements, want 5", router, byRouter[router])
		}
	}
}

// TestCoverageIncompleteDetected removes one egress-drop requirement and
// expects the proof obligation to fail.
func TestCoverageIncompleteDetected(t *testing.T) {
	for _, topo := range scenarioTopos(t) {
		reqs := SpecFor(topo)
		var pruned []Requirement
		dropped := false
		for _, r := range reqs {
			if !dropped && r.Kind == EgressDropsCommunity {
				dropped = true
				continue
			}
			pruned = append(pruned, r)
		}
		if !dropped {
			t.Fatalf("%s: no egress-drop requirement to prune", topo.Name)
		}
		if err := CoverageComplete(topo, pruned); err == nil {
			t.Errorf("%s: pruned spec should be incomplete", topo.Name)
		}
	}
}

// TestSingleAttachmentNeedsNoEgressFilter: with one ISP there is no
// transit to prevent, so the spec must not require an egress route-map
// the modularizer never prompts for (an undefined route-map would be an
// unfixable violation). fat-tree k=2 is the minimal such topology.
func TestSingleAttachmentNeedsNoEgressFilter(t *testing.T) {
	topo, err := netgen.FatTree(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ISPAttachments(topo)); got != 1 {
		t.Fatalf("attachments = %d, want 1", got)
	}
	for _, r := range SpecFor(topo) {
		if r.Kind != IngressAddsCommunity {
			t.Errorf("single-ISP topology has non-ingress requirement %+v", r)
		}
	}
	if err := CoverageComplete(topo, SpecFor(topo)); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

// TestHandBuiltNamesGetDistinctTags: a hand-built dictionary whose
// routers are not named R<i> must still derive one distinct community
// per ISP (keyed on the peer AS), not collide on index 0.
func TestHandBuiltNamesGetDistinctTags(t *testing.T) {
	topo := &topology.Topology{Name: "custom", Routers: []topology.RouterSpec{
		{Name: "edge-west", ASN: 1, Neighbors: []topology.NeighborSpec{
			{PeerName: "ISP-A", PeerIP: "20.1.0.2", PeerAS: 300, External: true},
			{PeerName: "edge-east", PeerIP: "10.1.2.2", PeerAS: 2},
		}},
		{Name: "edge-east", ASN: 2, Neighbors: []topology.NeighborSpec{
			{PeerName: "ISP-B", PeerIP: "20.2.0.2", PeerAS: 301, External: true},
			{PeerName: "edge-west", PeerIP: "10.1.2.1", PeerAS: 1},
		}},
	}}
	atts := ISPAttachments(topo)
	if len(atts) != 2 {
		t.Fatalf("attachments = %d, want 2", len(atts))
	}
	if atts[0].Community() == atts[1].Community() {
		t.Errorf("tags collide: both %s", atts[0].Community())
	}
	if err := CoverageComplete(topo, SpecFor(topo)); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

// TestDualHomedSpecDerivation is the per-attachment acceptance test: two
// ISPs homed on one router must get distinct communities and distinct
// ingress/egress policies, each obligation carrying its own attachment
// identity, and the egress of each attachment must drop the *other
// same-router* attachment's tag — the no-transit pair the per-router
// model could not express.
func TestDualHomedSpecDerivation(t *testing.T) {
	topo, err := netgen.DualHomed(4)
	if err != nil {
		t.Fatal(err)
	}
	atts := ISPAttachments(topo)
	if len(atts) != 6 {
		t.Fatalf("attachments = %d, want 6", len(atts))
	}
	// R2 holds attachments 1 and 2.
	var r2 []Attachment
	for _, a := range atts {
		if a.Router == "R2" {
			r2 = append(r2, a)
		}
	}
	if len(r2) != 2 {
		t.Fatalf("R2 attachments = %d, want 2", len(r2))
	}
	if r2[0].Community() == r2[1].Community() {
		t.Errorf("same-router attachments share the tag %s", r2[0].Community())
	}
	if r2[0].Community() != netgen.AttachmentCommunity(1) ||
		r2[1].Community() != netgen.AttachmentCommunity(2) {
		t.Errorf("tags = %s / %s, want the ordinal-keyed pair %s / %s",
			r2[0].Community(), r2[1].Community(),
			netgen.AttachmentCommunity(1), netgen.AttachmentCommunity(2))
	}
	if r2[0].IngressPolicy() == r2[1].IngressPolicy() ||
		r2[0].EgressPolicy() == r2[1].EgressPolicy() {
		t.Errorf("same-router attachments share policies: %s/%s and %s/%s",
			r2[0].IngressPolicy(), r2[0].EgressPolicy(),
			r2[1].IngressPolicy(), r2[1].EgressPolicy())
	}

	reqs := SpecFor(topo)
	// Each attachment gets its own ingress-tag obligation with its own
	// identity.
	ingressByRef := map[AttachmentRef]netcfg.Community{}
	for _, r := range reqs {
		if r.Kind == IngressAddsCommunity {
			if r.Attachment == (AttachmentRef{}) {
				t.Errorf("requirement %q lacks an attachment identity", r.Description)
			}
			ingressByRef[r.Attachment] = r.Community
		}
	}
	if len(ingressByRef) != len(atts) {
		t.Errorf("ingress obligations = %d, want one per attachment (%d)",
			len(ingressByRef), len(atts))
	}
	// The egress of R2's first attachment must drop the second's tag.
	found := false
	for _, r := range reqs {
		if r.Kind == EgressDropsCommunity &&
			r.Attachment == r2[0].Ref(DirOut) &&
			r.Community == r2[1].Community() {
			found = true
		}
	}
	if !found {
		t.Errorf("no egress obligation drops the same-router sibling tag %s at %s",
			r2[1].Community(), r2[0].EgressPolicy())
	}
	if err := CoverageComplete(topo, reqs); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

// TestAttachmentDerivation pins the attachment collection: topology
// order, one attachment per ISP-facing router, customers excluded.
func TestAttachmentDerivation(t *testing.T) {
	ring, _ := netgen.Ring(4)
	atts := ISPAttachments(ring)
	if len(atts) != 3 {
		t.Fatalf("attachments = %d, want 3", len(atts))
	}
	for i, want := range []string{"R2", "R3", "R4"} {
		if atts[i].Router != want {
			t.Errorf("attachment[%d] = %s, want %s", i, atts[i].Router, want)
		}
	}
	a := atts[0]
	if a.IngressPolicy() != "ADD_COMM_ISP2" || a.EgressPolicy() != "FILTER_COMM_OUT_ISP2" {
		t.Errorf("policy names = %s / %s", a.IngressPolicy(), a.EgressPolicy())
	}
	if a.Community() != netgen.ISPCommunity(2) {
		t.Errorf("community = %s", a.Community())
	}
}
