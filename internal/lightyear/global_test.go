package lightyear_test

import (
	"testing"

	"repro/internal/batfish"
	"repro/internal/core"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/netcfg"
	"repro/internal/netgen"
)

// goldenStarConfigs produces verified star configurations by running the
// pipeline with an error-free synthesizer.
func goldenStarConfigs(t *testing.T, n int) (map[string]*netcfg.Device, map[string]string) {
	t.Helper()
	topo, err := netgen.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(topo, core.SynthOptions{
		Model:           llm.NewSynthesizer(llm.SynthConfig{Seed: 1, Errors: map[string][]llm.SynthError{}}),
		SkipGlobalCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("golden synthesis did not verify:\n%s", res.Transcript)
	}
	devs := map[string]*netcfg.Device{}
	for name, text := range res.Configs {
		dev, warns := batfish.ParseConfig(text)
		if len(warns) != 0 {
			t.Fatalf("%s warnings: %v", name, warns)
		}
		devs[name] = dev
	}
	return devs, res.Configs
}

func TestGlobalNoTransitHoldsOnGoldenConfigs(t *testing.T) {
	topo, _ := netgen.Star(5)
	devs, _ := goldenStarConfigs(t, 5)
	res, err := lightyear.CheckGlobalNoTransit(topo, devs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("violations=%v missing=%v converged=%v",
			res.Violations, res.MissingReachability, res.Converged)
	}
}

// TestGlobalNoTransitCatchesMissingEgressFilter removes R1's egress
// filtering: the simulation must report transit violations — the exact
// failure the final global check exists to catch (§4.1).
func TestGlobalNoTransitCatchesMissingEgressFilter(t *testing.T) {
	topo, _ := netgen.Star(5)
	devs, _ := goldenStarConfigs(t, 5)
	for _, nb := range devs["R1"].BGP.Neighbors {
		nb.ExportPolicy = ""
	}
	res, err := lightyear.CheckGlobalNoTransit(topo, devs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("unfiltered hub should produce transit violations")
	}
}

// TestGlobalNoTransitCatchesOverFiltering makes R1 deny everything toward
// the spokes: the positive reachability requirements must fail.
func TestGlobalNoTransitCatchesOverFiltering(t *testing.T) {
	topo, _ := netgen.Star(5)
	devs, _ := goldenStarConfigs(t, 5)
	deny := &netcfg.RoutePolicy{Name: "DENY_ALL", Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny},
	}}
	devs["R1"].RoutePolicies["DENY_ALL"] = deny
	for _, nb := range devs["R1"].BGP.Neighbors {
		nb.ExportPolicy = "DENY_ALL"
	}
	res, err := lightyear.CheckGlobalNoTransit(topo, devs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissingReachability) == 0 {
		t.Fatal("deny-all hub should break required reachability")
	}
	if len(res.Violations) != 0 {
		t.Errorf("deny-all hub cannot have transit violations: %v", res.Violations)
	}
}

// TestGlobalNoTransitCatchesANDFilter wires the paper's AND-semantics
// egress error into the simulation: single-tag routes leak, so transit
// violations appear end to end, not just in the local check.
func TestGlobalNoTransitCatchesANDFilter(t *testing.T) {
	topo, err := netgen.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(topo, core.SynthOptions{
		Model: llm.NewSynthesizer(llm.SynthConfig{Seed: 1,
			Errors: map[string][]llm.SynthError{"R1": {llm.SErrAndOr}}}),
		SkipGlobalCheck:       true,
		MaxAttemptsPerFinding: 1,
		Human:                 core.NoHuman{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verified {
		t.Fatal("AND filter should fail local verification")
	}
	devs := map[string]*netcfg.Device{}
	for name, text := range res.Configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	global, err := lightyear.CheckGlobalNoTransit(topo, devs)
	if err != nil {
		t.Fatal(err)
	}
	if len(global.Violations) == 0 {
		t.Fatal("AND-semantics egress should leak transit routes in the simulation")
	}
}

func TestGlobalNoTransitMissingDeviceErrors(t *testing.T) {
	topo, _ := netgen.Star(3)
	if _, err := lightyear.CheckGlobalNoTransit(topo, map[string]*netcfg.Device{}); err == nil {
		t.Fatal("missing devices should error")
	}
}
