package lightyear

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/netcfg"
	"repro/internal/topology"
)

// ErrCoverageIncomplete marks a topology the compositional fast path
// cannot stand in for the full simulation on: its derived local
// specification does not discharge the local-implies-global proof
// obligation (CoverageComplete). Callers fall back to the simulation.
var ErrCoverageIncomplete = errors.New("compositional check inapplicable: local spec coverage incomplete")

// CompositionalOptions parameterize the seeded sampled falsification of
// CheckCompositionalNoTransit.
type CompositionalOptions struct {
	// Samples bounds how many egress filters the falsification pass
	// neutralizes; <= 0 samples min(4, filters).
	Samples int
	// Seed keys the deterministic filter sampling; 0 means seed 1. The
	// same seed always selects the same filters on the same topology.
	Seed int64
	// RecentRouters biases the sample toward egress policies on the named
	// routers — typically the ones a repair loop just touched, where a
	// filter is likeliest to have regressed. Targets on recent routers
	// fill the sample budget first (seeded, like the rest); any remaining
	// budget falls on the other targets. Empty samples unbiased, exactly
	// as without the field; the bias never changes the sample size or the
	// determinism, only which filters the budget lands on.
	RecentRouters []string
}

// CheckCompositionalNoTransit is the verified-local-specs fast path for
// the global no-transit check: instead of simulating the whole network's
// BGP (cost super-linear in the network, the scale wall at hundreds of
// routers), it discharges the policy compositionally:
//
//  1. Coverage — CoverageComplete proves the derived local specification
//     covers every attachment pair, i.e. local obligations compose into
//     the global no-transit guarantee (the proof obligation the fuzz
//     oracle exercises end to end on every campaign). Incomplete coverage
//     returns ErrCoverageIncomplete and the caller falls back to the
//     simulation.
//  2. Local obligations — every requirement of the spec must hold on the
//     final devices (CheckAll); failures surface as Violations.
//  3. Reachability, structurally — every topology-declared BGP session
//     must exist on its device, every connected network must be
//     announced, and every ISP attachment's ingress policy must admit the
//     ISP's own originated route (the clean-egress obligation of the spec
//     covers the export half), so the positive ISP<->customer
//     reachability the simulation would verify holds hop by hop.
//  4. Seeded sampled falsification — a deterministic sample of egress
//     filters is neutralized (replaced by permit-all on a copy of the
//     device) and the local checks must flag each mutant; a probe no
//     local check catches means the obligations are vacuous here, which
//     is reported as a violation rather than silently trusted.
//
// The result mirrors CheckGlobalNoTransit's verdict on every registry
// scenario (the agreement gate pins this); the full simulation remains
// the default and the authority wherever the two could diverge.
func CheckCompositionalNoTransit(t *topology.Topology, devs map[string]*netcfg.Device,
	opts CompositionalOptions) (*GlobalResult, error) {
	reqs := SpecFor(t)
	if err := CoverageComplete(t, reqs); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCoverageIncomplete, err)
	}
	out := &GlobalResult{Converged: true, Method: MethodCompositional}

	// Local obligations on the final devices.
	for _, v := range CheckAll(reqs, devs) {
		out.Violations = append(out.Violations, v.String())
	}

	// Structural reachability: sessions up, networks announced.
	for i := range t.Routers {
		spec := &t.Routers[i]
		dev := devs[spec.Name]
		if dev == nil {
			return nil, fmt.Errorf("router %s has no configuration", spec.Name)
		}
		if dev.BGP == nil {
			out.MissingReachability = append(out.MissingReachability,
				fmt.Sprintf("%s runs no BGP, so nothing can reach through it", spec.Name))
			continue
		}
		for _, nb := range spec.Neighbors {
			addr, err := netcfg.ParseIP(nb.PeerIP)
			if err != nil {
				return nil, fmt.Errorf("neighbor %s of %s: %w", nb.PeerName, spec.Name, err)
			}
			if dev.BGP.Neighbor(addr) == nil {
				out.MissingReachability = append(out.MissingReachability,
					fmt.Sprintf("%s declares no BGP session toward %s (%s)",
						spec.Name, nb.PeerName, nb.PeerIP))
			}
		}
		announced := map[netcfg.Prefix]bool{}
		for _, p := range dev.BGP.Networks {
			announced[p] = true
		}
		for _, ns := range spec.Networks {
			p, err := netcfg.ParsePrefix(ns)
			if err != nil {
				return nil, fmt.Errorf("network %q of %s: %w", ns, spec.Name, err)
			}
			if !announced[p] {
				out.MissingReachability = append(out.MissingReachability,
					fmt.Sprintf("%s does not announce its connected network %s", spec.Name, p))
			}
		}
	}

	// Ingress liveness: each attachment's ingress policy must admit the
	// ISP's own originated route, or the tagged-at-ingress obligations
	// hold vacuously while the ISP is cut off. Missing policies are
	// already violations via CheckAll; unprobeable attachments (no
	// declared stub prefixes) are left to the egress obligations.
	for _, a := range ISPAttachments(t) {
		dev := devs[a.Router]
		if dev == nil || len(a.Peer.Prefixes) == 0 {
			continue
		}
		pol := dev.RoutePolicies[a.IngressPolicy()]
		if pol == nil {
			continue
		}
		p, err := netcfg.ParsePrefix(a.Peer.Prefixes[0])
		if err != nil {
			return nil, fmt.Errorf("attachment %s: prefix %q: %w", a.Ref(DirIn), a.Peer.Prefixes[0], err)
		}
		probe := netcfg.NewRoute(p)
		probe.ASPath = []uint32{a.Peer.PeerAS}
		if res := netcfg.EvalPolicy(pol, dev, probe); !res.Permitted {
			out.MissingReachability = append(out.MissingReachability,
				fmt.Sprintf("%s's ingress policy %s denies %s's own route %s",
					a.Router, a.IngressPolicy(), a.Peer.PeerName, p))
		}
	}

	// Seeded sampled falsification over the egress filters the spec
	// obligates (hub-keyed on stars, attachment-keyed elsewhere).
	for _, probe := range sampleFalsificationTargets(reqs, opts) {
		out.FalsificationProbes = append(out.FalsificationProbes,
			probe.router+":"+probe.policy)
		dev := devs[probe.router]
		if dev == nil {
			continue
		}
		if !falsifiableLocally(dev, reqs, probe) {
			out.Violations = append(out.Violations, fmt.Sprintf(
				"falsification probe: neutralizing %s's egress filter %s raised no local violation",
				probe.router, probe.policy))
		}
	}
	return out, nil
}

// falsificationTarget is one egress filter the sampling pass neutralizes.
type falsificationTarget struct {
	router, policy string
}

// sampleFalsificationTargets deterministically samples the distinct
// (router, egress-policy) pairs the specification obligates: the same
// seed always yields the same sample on the same requirement list,
// returned in topology (requirement) order.
func sampleFalsificationTargets(reqs []Requirement, opts CompositionalOptions) []falsificationTarget {
	var targets []falsificationTarget
	seen := map[falsificationTarget]bool{}
	for _, r := range reqs {
		if r.Kind != EgressDropsCommunity {
			continue
		}
		tg := falsificationTarget{router: r.Router, policy: r.Policy}
		if !seen[tg] {
			seen[tg] = true
			targets = append(targets, tg)
		}
	}
	n := opts.Samples
	if n <= 0 {
		n = 4
	}
	if n >= len(targets) {
		return targets
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var picks []int
	if len(opts.RecentRouters) > 0 {
		// Coverage-guided: spend the budget on recently-repaired routers'
		// filters first, then on the rest. Both halves sample through the
		// same seeded generator, so a given (seed, recency) pair always
		// yields the same filters.
		recent := make(map[string]bool, len(opts.RecentRouters))
		for _, r := range opts.RecentRouters {
			recent[r] = true
		}
		var hot, cold []int
		for i := range targets {
			if recent[targets[i].router] {
				hot = append(hot, i)
			} else {
				cold = append(cold, i)
			}
		}
		if len(hot) >= n {
			for _, j := range rng.Perm(len(hot))[:n] {
				picks = append(picks, hot[j])
			}
		} else {
			picks = append(picks, hot...)
			for _, j := range rng.Perm(len(cold))[:n-len(hot)] {
				picks = append(picks, cold[j])
			}
		}
	} else {
		picks = rng.Perm(len(targets))[:n]
	}
	sort.Ints(picks)
	out := make([]falsificationTarget, 0, n)
	for _, i := range picks {
		out = append(out, targets[i])
	}
	return out
}

// falsifiableLocally neutralizes one egress filter on a copy of its
// device — the policy is replaced with a single permit-everything clause —
// and reports whether any of the filter's drop obligations flags the
// mutant. The original device map is never modified.
func falsifiableLocally(dev *netcfg.Device, reqs []Requirement, probe falsificationTarget) bool {
	mut := *dev
	mut.RoutePolicies = make(map[string]*netcfg.RoutePolicy, len(dev.RoutePolicies))
	for name, pol := range dev.RoutePolicies {
		mut.RoutePolicies[name] = pol
	}
	mut.RoutePolicies[probe.policy] = &netcfg.RoutePolicy{
		Name:    probe.policy,
		Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Permit}},
	}
	for _, r := range reqs {
		if r.Kind != EgressDropsCommunity || r.Router != probe.router || r.Policy != probe.policy {
			continue
		}
		if _, violated := Check(&mut, r); violated {
			return true
		}
	}
	return false
}
