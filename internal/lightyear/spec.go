// Package lightyear substitutes for Lightyear (SIGCOMM'23) in the role the
// paper uses it for: expressing a global policy as *local* per-router
// specifications, verifying each locally (via the Batfish substitute's
// SearchRoutePolicies), and checking that the local specs compose into the
// global no-transit guarantee. Modular verification is what lets the VPP
// loop localize semantic errors "to specific routers and specific route
// maps within those routers" (§4.1).
package lightyear

import (
	"fmt"

	"repro/internal/batfish"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// ReqKind classifies a local requirement.
type ReqKind int

// Requirement kinds.
const (
	// IngressAddsCommunity: every route accepted by the policy must carry
	// the community after evaluation.
	IngressAddsCommunity ReqKind = iota
	// EgressDropsCommunity: the policy must deny every route carrying the
	// community.
	EgressDropsCommunity
	// EgressPermitsClean: the policy must permit routes carrying none of
	// the listed communities.
	EgressPermitsClean
)

// Attachment flow directions for AttachmentRef.
const (
	// DirIn marks an obligation on routes flowing in from the peer.
	DirIn = "in"
	// DirOut marks an obligation on routes flowing out toward the peer.
	DirOut = "out"
)

// AttachmentRef is the per-attachment identity of a requirement: the
// router holding the attachment, the peer whose route flow the obligation
// constrains, and the direction of that flow. It is the unit the spec
// derivation allocates communities and policies for — one ingress-tag and
// one egress-filter obligation family per (router, peer) attachment, not
// per router — which is what admits several external attachments on one
// router. On the paper's hub-centric star the peer is the internal spoke
// standing in for its ISP; everywhere else it is the external ISP itself.
// The zero value marks a requirement built before the attachment model
// (hand-built requirement literals keep working; the verifier never
// dispatches on the identity).
type AttachmentRef struct {
	Router    string `json:"router,omitempty"`
	Peer      string `json:"peer,omitempty"`
	Direction string `json:"direction,omitempty"` // DirIn or DirOut
}

// String renders the identity for keys and diagnostics.
func (a AttachmentRef) String() string {
	arrow := "<-"
	if a.Direction == DirOut {
		arrow = "->"
	}
	return a.Router + arrow + a.Peer
}

// Requirement is one locally-checkable obligation on one route policy at
// one attachment point. Router is kept alongside the Attachment identity
// because transcripts, violation phrasings, and the repair loop's
// per-target accounting address configurations by router name.
type Requirement struct {
	Kind   ReqKind
	Router string
	// Attachment is the per-attachment identity (zero on hand-built
	// requirements). It is omitted from JSON when zero so requirements
	// without an identity serialize exactly as they did before the
	// attachment model — the REST client's old-server fallback relies on
	// being able to ship a v1-shaped payload.
	Attachment  AttachmentRef `json:",omitzero"`
	Policy      string
	Community   netcfg.Community   // for IngressAdds / EgressDrops
	Communities []netcfg.Community // for EgressPermitsClean
	Description string             // NL rendering for specs and prompts
}

// Violation reports a requirement that does not hold, with a witness route.
type Violation struct {
	Requirement Requirement
	Witness     *netcfg.Route
	// Explanation phrases the violation like the paper's Table 3 semantic
	// error ("The route-map DROP_COMMUNITY permits routes that have the
	// community 100:1. However, they should be denied.").
	Explanation string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Requirement.Router + ": " + v.Explanation }

// NoTransitSpec derives the per-router local specification implementing the
// no-transit policy on a star topology (§4.1): the hub R1 adds a distinct
// community at the ingress from each ISP-facing router and drops routes
// carrying any other router's community at the egress toward each ISP
// router.
//
// Policy naming matches the paper's examples: ADD_COMM_R<i> at ingress and
// FILTER_COMM_OUT_R<i> at egress.
func NoTransitSpec(t *topology.Topology) []Requirement {
	var reqs []Requirement
	hub := t.Router("R1")
	if hub == nil {
		return nil
	}
	var spokes []int
	for i := range t.Routers {
		if t.Routers[i].Name != "R1" {
			spokes = append(spokes, indexOf(t.Routers[i].Name))
		}
	}
	var all []netcfg.Community
	for _, i := range spokes {
		all = append(all, netgen.ISPCommunity(i))
	}
	for _, i := range spokes {
		tag := netgen.ISPCommunity(i)
		// The hub enforces each spoke's attachment, so the attachment
		// identity names the spoke peering the obligation rides on.
		spoke := fmt.Sprintf("R%d", i)
		reqs = append(reqs, Requirement{
			Kind:       IngressAddsCommunity,
			Router:     "R1",
			Attachment: AttachmentRef{Router: "R1", Peer: spoke, Direction: DirIn},
			Policy:     IngressPolicyName(i),
			Community:  tag,
			Description: fmt.Sprintf(
				"Every route R1 accepts from R%d must carry community %s after ingress processing.",
				i, tag),
		})
		for _, j := range spokes {
			if j == i {
				continue
			}
			other := netgen.ISPCommunity(j)
			reqs = append(reqs, Requirement{
				Kind:       EgressDropsCommunity,
				Router:     "R1",
				Attachment: AttachmentRef{Router: "R1", Peer: spoke, Direction: DirOut},
				Policy:     EgressPolicyName(i),
				Community:  other,
				Description: fmt.Sprintf(
					"R1 must not export to R%d any route carrying community %s (learned from R%d).",
					i, other, j),
			})
		}
		reqs = append(reqs, Requirement{
			Kind:        EgressPermitsClean,
			Router:      "R1",
			Attachment:  AttachmentRef{Router: "R1", Peer: spoke, Direction: DirOut},
			Policy:      EgressPolicyName(i),
			Communities: all,
			Description: fmt.Sprintf(
				"R1 must export to R%d routes that carry no ISP community (customer routes).", i),
		})
	}
	return reqs
}

// IngressPolicyName is the route map R1 applies on routes from Ri.
func IngressPolicyName(i int) string { return fmt.Sprintf("ADD_COMM_R%d", i) }

// EgressPolicyName is the route map R1 applies on routes toward Ri.
func EgressPolicyName(i int) string { return fmt.Sprintf("FILTER_COMM_OUT_R%d", i) }

func indexOf(name string) int {
	var i int
	if _, err := fmt.Sscanf(name, "R%d", &i); err != nil {
		return 0
	}
	return i
}

// Check verifies one requirement against a parsed device, returning a
// violation with a witness route if it fails.
func Check(dev *netcfg.Device, req Requirement) (Violation, bool) {
	pol := dev.RoutePolicies[req.Policy]
	if pol == nil {
		return Violation{
			Requirement: req,
			Explanation: fmt.Sprintf("The route-map %s is not defined, so the local policy %q cannot hold.",
				req.Policy, req.Description),
		}, true
	}
	switch req.Kind {
	case IngressAddsCommunity:
		return checkIngressAdds(dev, pol, req)
	case EgressDropsCommunity:
		res, err := batfish.SearchRoutePolicies(dev, batfish.SearchQuery{
			Policy: req.Policy,
			Action: "permit",
			Constraints: batfish.RouteConstraints{
				HasCommunities: []string{req.Community.String()},
			},
		})
		if err == nil && res.Found {
			return Violation{
				Requirement: req,
				Witness:     witnessRoute(res),
				Explanation: fmt.Sprintf(
					"The route-map %s permits routes that have the community %s. However, they should be denied.",
					req.Policy, req.Community),
			}, true
		}
	case EgressPermitsClean:
		var lacks []string
		for _, c := range req.Communities {
			lacks = append(lacks, c.String())
		}
		res, err := batfish.SearchRoutePolicies(dev, batfish.SearchQuery{
			Policy: req.Policy,
			Action: "deny",
			Constraints: batfish.RouteConstraints{
				LacksCommunities: lacks,
			},
		})
		if err == nil && res.Found {
			return Violation{
				Requirement: req,
				Witness:     witnessRoute(res),
				Explanation: fmt.Sprintf(
					"The route-map %s denies routes that carry no ISP community (for example %s). "+
						"However, customer routes should be permitted.",
					req.Policy, res.WitnessPrefix),
			}, true
		}
	}
	return Violation{}, false
}

// checkIngressAdds verifies that every accept path of the policy results
// in a route carrying the required community, by applying each accept
// region's transforms to a sample route.
func checkIngressAdds(dev *netcfg.Device, pol *netcfg.RoutePolicy, req Requirement) (Violation, bool) {
	for _, cl := range pol.Clauses {
		if cl.Action != netcfg.Permit {
			continue
		}
		sample := sampleForClause(dev, cl)
		if sample == nil {
			continue
		}
		res := netcfg.EvalPolicy(pol, dev, sample)
		if res.Permitted && !res.Route.HasCommunity(req.Community) {
			return Violation{
				Requirement: req,
				Witness:     sample,
				Explanation: fmt.Sprintf(
					"The route-map %s permits the route %s without adding the community %s. "+
						"Every route accepted at this ingress must carry %s.",
					req.Policy, sample.Prefix, req.Community, req.Community),
			}, true
		}
		// The paper's "Adding Communities" pitfall: a non-additive set
		// wipes existing communities. Check with a pre-tagged route.
		tagged := sample.Clone()
		probe := netcfg.NewCommunity(65000, 999)
		tagged.AddCommunity(probe)
		res = netcfg.EvalPolicy(pol, dev, tagged)
		if res.Permitted && !res.Route.HasCommunity(probe) {
			return Violation{
				Requirement: req,
				Witness:     tagged,
				Explanation: fmt.Sprintf(
					"The route-map %s replaces the communities already present on the route instead of "+
						"adding %s. Use the 'additive' keyword so existing communities are preserved.",
					req.Policy, req.Community),
			}, true
		}
	}
	return Violation{}, false
}

// sampleForClause produces a concrete route matching a clause, or nil.
func sampleForClause(dev *netcfg.Device, cl *netcfg.PolicyClause) *netcfg.Route {
	r := netcfg.NewRoute(netcfg.MustPrefix("150.0.0.0/16"))
	for _, m := range cl.Matches {
		switch m := m.(type) {
		case netcfg.MatchPrefixList:
			pl := dev.PrefixLists[m.List]
			if pl == nil {
				return nil
			}
			for _, e := range pl.Entries {
				if e.Action == netcfg.Permit {
					min, _ := e.Bounds()
					r.Prefix = netcfg.NewPrefix(e.Prefix.Addr, min)
					break
				}
			}
		case netcfg.MatchRouteFilter:
			r.Prefix = netcfg.NewPrefix(m.Prefix.Addr, m.MinLen)
		case netcfg.MatchCommunityList:
			cml := dev.CommunityLists[m.List]
			if cml == nil {
				return nil
			}
			for _, e := range cml.Entries {
				if e.Action == netcfg.Permit {
					r.AddCommunity(e.Community)
					break
				}
			}
		case netcfg.MatchCommunityLiteral:
			r.AddCommunity(m.Community)
		case netcfg.MatchProtocol:
			switch m.Protocol {
			case netcfg.RedistOSPF:
				r.Protocol = netcfg.ProtoOSPF
			case netcfg.RedistConnected:
				r.Protocol = netcfg.ProtoConnected
			case netcfg.RedistStatic:
				r.Protocol = netcfg.ProtoStatic
			default:
				r.Protocol = netcfg.ProtoBGP
			}
		}
	}
	if !clauseAccepts(dev, cl, r) {
		return nil
	}
	return r
}

func clauseAccepts(dev *netcfg.Device, cl *netcfg.PolicyClause, r *netcfg.Route) bool {
	for _, m := range cl.Matches {
		if !netcfg.EvalMatch(m, dev, r) {
			return false
		}
	}
	return true
}

func witnessRoute(res batfish.SearchResult) *netcfg.Route {
	p, err := netcfg.ParsePrefix(res.WitnessPrefix)
	if err != nil {
		p = netcfg.MustPrefix("10.0.0.0/8")
	}
	r := netcfg.NewRoute(p)
	for _, cs := range res.WitnessCommunities {
		if c, err := netcfg.ParseCommunity(cs); err == nil {
			r.AddCommunity(c)
		}
	}
	return r
}

// CheckAll verifies every requirement against the devices (keyed by router
// name), returning all violations.
func CheckAll(reqs []Requirement, devs map[string]*netcfg.Device) []Violation {
	var out []Violation
	for _, req := range reqs {
		dev := devs[req.Router]
		if dev == nil {
			out = append(out, Violation{Requirement: req,
				Explanation: "router " + req.Router + " has no configuration"})
			continue
		}
		if v, bad := Check(dev, req); bad {
			out = append(out, v)
		}
	}
	return out
}

// CoverageComplete is the modular proof obligation: the requirement set
// implies global no-transit iff for every ordered pair of distinct ISP
// attachment points (i, j) there is an ingress-tag requirement at i and
// an egress-drop requirement of i's tag at j's egress. This is the
// "local policies imply the global one" check the paper attributes to
// Lightyear's proof technique. Star topologies check the paper's
// hub-centric scheme; all other graphs check the attachment-point scheme.
func CoverageComplete(t *topology.Topology, reqs []Requirement) error {
	if !netgen.IsStar(t) {
		return coverageCompleteLocal(t, reqs)
	}
	return coverageCompleteStar(t, reqs)
}

// coverageCompleteLocal checks the attachment-point scheme: each
// attachment tags its own ingress and drops every other attachment's tag
// at its egress.
func coverageCompleteLocal(t *topology.Topology, reqs []Requirement) error {
	type key struct{ router, policy string }
	ingress := map[key]map[netcfg.Community]bool{}
	egress := map[key]map[netcfg.Community]bool{}
	for _, r := range reqs {
		k := key{r.Router, r.Policy}
		switch r.Kind {
		case IngressAddsCommunity:
			if ingress[k] == nil {
				ingress[k] = map[netcfg.Community]bool{}
			}
			ingress[k][r.Community] = true
		case EgressDropsCommunity:
			if egress[k] == nil {
				egress[k] = map[netcfg.Community]bool{}
			}
			egress[k][r.Community] = true
		}
	}
	attaches := ISPAttachments(t)
	for _, a := range attaches {
		if !ingress[key{a.Router, a.IngressPolicy()}][a.Community()] {
			return fmt.Errorf("no ingress requirement tags routes from %s with %s at %s",
				a.Peer.PeerName, a.Community(), a.Router)
		}
		for _, b := range attaches {
			if b.Router == a.Router && b.Peer.PeerName == a.Peer.PeerName {
				continue
			}
			if !egress[key{b.Router, b.EgressPolicy()}][a.Community()] {
				return fmt.Errorf("egress to %s at %s does not drop community %s of %s",
					b.Peer.PeerName, b.Router, a.Community(), a.Peer.PeerName)
			}
		}
	}
	return nil
}

// coverageCompleteStar checks the paper's hub-centric scheme.
func coverageCompleteStar(t *topology.Topology, reqs []Requirement) error {
	ingress := map[netcfg.Community]bool{}
	egress := map[string]map[netcfg.Community]bool{}
	for _, r := range reqs {
		switch r.Kind {
		case IngressAddsCommunity:
			ingress[r.Community] = true
		case EgressDropsCommunity:
			if egress[r.Policy] == nil {
				egress[r.Policy] = map[netcfg.Community]bool{}
			}
			egress[r.Policy][r.Community] = true
		}
	}
	for i := range t.Routers {
		ri := indexOf(t.Routers[i].Name)
		if t.Routers[i].Name == "R1" {
			continue
		}
		tag := netgen.ISPCommunity(ri)
		if !ingress[tag] {
			return fmt.Errorf("no ingress requirement tags routes from R%d with %s", ri, tag)
		}
		for j := range t.Routers {
			rj := indexOf(t.Routers[j].Name)
			if t.Routers[j].Name == "R1" || ri == rj {
				continue
			}
			if !egress[EgressPolicyName(rj)][tag] {
				return fmt.Errorf("egress to R%d does not drop community %s of R%d", rj, tag, ri)
			}
		}
	}
	return nil
}
