package lightyear

import (
	"strings"
	"testing"

	"repro/internal/netcfg"
	"repro/internal/netgen"
)

func TestNoTransitSpecShape(t *testing.T) {
	topo, err := netgen.Star(7)
	if err != nil {
		t.Fatal(err)
	}
	reqs := NoTransitSpec(topo)
	// 6 spokes: 6 ingress + 6*5 egress-drop + 6 egress-permit = 42.
	if len(reqs) != 42 {
		t.Fatalf("requirements = %d, want 42", len(reqs))
	}
	var ingress, drop, clean int
	for _, r := range reqs {
		if r.Router != "R1" {
			t.Errorf("requirement on %s; all no-transit obligations live on the hub", r.Router)
		}
		switch r.Kind {
		case IngressAddsCommunity:
			ingress++
		case EgressDropsCommunity:
			drop++
		case EgressPermitsClean:
			clean++
		}
	}
	if ingress != 6 || drop != 30 || clean != 6 {
		t.Errorf("breakdown = %d/%d/%d, want 6/30/6", ingress, drop, clean)
	}
	if err := CoverageComplete(topo, reqs); err != nil {
		t.Errorf("coverage: %v", err)
	}
}

func TestCoverageDetectsMissingObligation(t *testing.T) {
	topo, err := netgen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	reqs := NoTransitSpec(topo)
	// Remove one egress-drop requirement: the composition proof must fail.
	var pruned []Requirement
	for _, r := range reqs {
		if r.Kind == EgressDropsCommunity && r.Policy == EgressPolicyName(2) &&
			r.Community == netgen.ISPCommunity(3) {
			continue
		}
		pruned = append(pruned, r)
	}
	if err := CoverageComplete(topo, pruned); err == nil {
		t.Fatal("incomplete requirement set passed the coverage check")
	}
}

// hubDevice builds R1 with correct ingress tagging and an egress filter
// built by the caller.
func hubDevice(egress func(dev *netcfg.Device)) *netcfg.Device {
	dev := netcfg.NewDevice("R1", netcfg.VendorCisco)
	b := dev.EnsureBGP(1)
	_ = b
	pol := &netcfg.RoutePolicy{Name: IngressPolicyName(2), Clauses: []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Permit, Sets: []netcfg.SetAction{
			netcfg.SetCommunity{Communities: []netcfg.Community{netgen.ISPCommunity(2)},
				Additive: true},
		}},
	}}
	dev.RoutePolicies[pol.Name] = pol
	egress(dev)
	return dev
}

func correctEgress(dev *netcfg.Device) {
	// Correct: one deny stanza per foreign tag, then permit.
	lists := map[int]string{3: "2", 4: "3"}
	for i, name := range lists {
		dev.CommunityLists[name] = &netcfg.CommunityList{Name: name,
			Entries: []netcfg.CommunityListEntry{
				{Action: netcfg.Permit, Community: netgen.ISPCommunity(i)},
			}}
	}
	dev.RoutePolicies[EgressPolicyName(2)] = &netcfg.RoutePolicy{Name: EgressPolicyName(2),
		Clauses: []*netcfg.PolicyClause{
			{Seq: 10, Action: netcfg.Deny,
				Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "2"}}},
			{Seq: 20, Action: netcfg.Deny,
				Matches: []netcfg.Match{netcfg.MatchCommunityList{List: "3"}}},
			{Seq: 30, Action: netcfg.Permit},
		}}
}

func andEgress(dev *netcfg.Device) {
	// The §4.2 AND error: both matches in one stanza.
	correctEgress(dev)
	pol := dev.RoutePolicies[EgressPolicyName(2)]
	pol.Clauses = []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny, Matches: []netcfg.Match{
			netcfg.MatchCommunityList{List: "2"},
			netcfg.MatchCommunityList{List: "3"},
		}},
		{Seq: 20, Action: netcfg.Permit},
	}
}

func TestCheckIngressAddsPasses(t *testing.T) {
	dev := hubDevice(correctEgress)
	req := Requirement{Kind: IngressAddsCommunity, Router: "R1",
		Policy: IngressPolicyName(2), Community: netgen.ISPCommunity(2)}
	if v, bad := Check(dev, req); bad {
		t.Fatalf("unexpected violation: %s", v.Explanation)
	}
}

func TestCheckIngressDetectsMissingAdditive(t *testing.T) {
	dev := hubDevice(correctEgress)
	sets := dev.RoutePolicies[IngressPolicyName(2)].Clauses[0].Sets
	sc := sets[0].(netcfg.SetCommunity)
	sc.Additive = false
	sets[0] = sc
	req := Requirement{Kind: IngressAddsCommunity, Router: "R1",
		Policy: IngressPolicyName(2), Community: netgen.ISPCommunity(2)}
	v, bad := Check(dev, req)
	if !bad {
		t.Fatal("non-additive set community passed the ingress check")
	}
	if !strings.Contains(v.Explanation, "additive") {
		t.Errorf("explanation should mention 'additive': %s", v.Explanation)
	}
}

func TestCheckIngressDetectsMissingTag(t *testing.T) {
	dev := hubDevice(correctEgress)
	dev.RoutePolicies[IngressPolicyName(2)].Clauses[0].Sets = nil
	req := Requirement{Kind: IngressAddsCommunity, Router: "R1",
		Policy: IngressPolicyName(2), Community: netgen.ISPCommunity(2)}
	if _, bad := Check(dev, req); !bad {
		t.Fatal("untagged ingress passed")
	}
}

func TestCheckEgressDropsCorrectFilter(t *testing.T) {
	dev := hubDevice(correctEgress)
	req := Requirement{Kind: EgressDropsCommunity, Router: "R1",
		Policy: EgressPolicyName(2), Community: netgen.ISPCommunity(3)}
	if v, bad := Check(dev, req); bad {
		t.Fatalf("correct filter flagged: %s", v.Explanation)
	}
}

func TestCheckEgressDetectsANDSemantics(t *testing.T) {
	dev := hubDevice(andEgress)
	req := Requirement{Kind: EgressDropsCommunity, Router: "R1",
		Policy: EgressPolicyName(2), Community: netgen.ISPCommunity(3)}
	v, bad := Check(dev, req)
	if !bad {
		t.Fatal("AND-semantics filter passed the egress check")
	}
	if !strings.Contains(v.Explanation, "permits routes that have the community") {
		t.Errorf("explanation should follow Table 3: %s", v.Explanation)
	}
	if v.Witness == nil || !v.Witness.HasCommunity(netgen.ISPCommunity(3)) {
		t.Errorf("witness should carry the leaked community: %v", v.Witness)
	}
}

func TestCheckEgressPermitsClean(t *testing.T) {
	dev := hubDevice(correctEgress)
	req := Requirement{Kind: EgressPermitsClean, Router: "R1",
		Policy:      EgressPolicyName(2),
		Communities: []netcfg.Community{netgen.ISPCommunity(3), netgen.ISPCommunity(4)}}
	if v, bad := Check(dev, req); bad {
		t.Fatalf("clean-permitting filter flagged: %s", v.Explanation)
	}
	// Break it: deny everything.
	dev.RoutePolicies[EgressPolicyName(2)].Clauses = []*netcfg.PolicyClause{
		{Seq: 10, Action: netcfg.Deny},
	}
	if _, bad := Check(dev, req); !bad {
		t.Fatal("deny-all egress passed the customer-reachability check")
	}
}

func TestCheckMissingPolicyIsViolation(t *testing.T) {
	dev := netcfg.NewDevice("R1", netcfg.VendorCisco)
	req := Requirement{Kind: EgressDropsCommunity, Router: "R1",
		Policy: "NOPE", Community: netgen.ISPCommunity(2)}
	v, bad := Check(dev, req)
	if !bad || !strings.Contains(v.Explanation, "not defined") {
		t.Fatalf("missing policy: bad=%v %s", bad, v.Explanation)
	}
}

func TestCheckAllAggregates(t *testing.T) {
	topo, err := netgen.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := NoTransitSpec(topo)
	viols := CheckAll(reqs, map[string]*netcfg.Device{})
	if len(viols) != len(reqs) {
		t.Fatalf("violations = %d, want one per requirement for a missing device", len(viols))
	}
}
