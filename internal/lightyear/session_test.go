package lightyear_test

import (
	"reflect"
	"testing"

	"repro/internal/batfish"
	"repro/internal/core"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// scenarioConfigs synthesizes one scenario's configurations with an
// error-free model; the equivalence tests only need deterministic,
// realistic configs, not a verified run.
func scenarioConfigs(t *testing.T, topo *topology.Topology) map[string]string {
	t.Helper()
	res, err := core.Synthesize(topo, core.SynthOptions{
		Model:           llm.NewSynthesizer(llm.SynthConfig{Seed: 1, Errors: map[string][]llm.SynthError{}}),
		SkipGlobalCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Configs
}

// parseDevs parses configuration texts into fresh devices. Each call
// returns an independent device set, so tests can mutate one step's
// devices without corrupting another's.
func parseDevs(t *testing.T, configs map[string]string) map[string]*netcfg.Device {
	t.Helper()
	devs := make(map[string]*netcfg.Device, len(configs))
	for name, text := range configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	return devs
}

// requireSameGlobal pins an incremental verdict against the cold one.
func requireSameGlobal(t *testing.T, label string, cold, inc *lightyear.GlobalResult) {
	t.Helper()
	if !reflect.DeepEqual(cold, inc) {
		t.Errorf("%s: session verdict diverges from cold check\ncold: %+v\nsession: %+v",
			label, cold, inc)
	}
}

// TestGlobalSessionMatchesColdAcrossScenarios drives one GlobalSession per
// registry scenario through a mutate/revert sequence — export stripped
// (transit leak), deny-all (reachability loss) — and pins every verdict
// against a cold CheckGlobalNoTransit of the same devices.
func TestGlobalSessionMatchesColdAcrossScenarios(t *testing.T) {
	for _, s := range netgen.Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			topo, err := s.Generate(s.DefaultSize)
			if err != nil {
				t.Fatal(err)
			}
			configs := scenarioConfigs(t, topo)

			// Mutate a router that carries policy: an ISP attachment point
			// when the scenario has one, the hub otherwise.
			mut := "R1"
			if atts := lightyear.ISPAttachments(topo); len(atts) > 0 {
				mut = atts[0].Router
			}

			cold0, err := lightyear.CheckGlobalNoTransit(topo, parseDevs(t, configs))
			if err != nil {
				t.Fatal(err)
			}
			sess := lightyear.NewGlobalSession(topo)
			inc0, err := sess.Check(parseDevs(t, configs), nil)
			if err != nil {
				t.Fatal(err)
			}
			requireSameGlobal(t, "baseline", cold0, inc0)

			// An explicitly empty change set re-serves the converged state.
			incSame, err := sess.Check(parseDevs(t, configs), []string{})
			if err != nil {
				t.Fatal(err)
			}
			requireSameGlobal(t, "no-change", cold0, incSame)

			step := func(label string, mutate func(dev *netcfg.Device)) {
				devs := parseDevs(t, configs)
				if mutate != nil {
					mutate(devs[mut])
				}
				cold, err := lightyear.CheckGlobalNoTransit(topo, devs)
				if err != nil {
					t.Fatal(err)
				}
				inc, err := sess.Check(devs, []string{mut})
				if err != nil {
					t.Fatal(err)
				}
				requireSameGlobal(t, label, cold, inc)
			}

			step("export stripped", func(dev *netcfg.Device) {
				if dev.BGP == nil {
					return
				}
				for _, nb := range dev.BGP.Neighbors {
					nb.ExportPolicy = ""
				}
			})
			step("revert after leak", nil)
			step("deny-all export", func(dev *netcfg.Device) {
				dev.RoutePolicies["DENY_ALL"] = &netcfg.RoutePolicy{Name: "DENY_ALL",
					Clauses: []*netcfg.PolicyClause{{Seq: 10, Action: netcfg.Deny}}}
				if dev.BGP == nil {
					return
				}
				for _, nb := range dev.BGP.Neighbors {
					nb.ExportPolicy = "DENY_ALL"
				}
			})
			step("revert after deny-all", nil)
		})
	}
}

// TestGlobalSessionMatchesColdOnSynthErrorClasses replays every
// erroneous-LLM-output class the fuzz campaign injects through one
// persistent session: golden -> mutant -> golden per class, with the
// change set derived by diffing configuration text — exactly how the
// repair loop's tracker computes it.
func TestGlobalSessionMatchesColdOnSynthErrorClasses(t *testing.T) {
	classes := []llm.SynthError{
		llm.SErrCLIKeywords, llm.SErrMatchCommunityLiteral, llm.SErrMissingAdditive,
		llm.SErrCommunityListRegex, llm.SErrTopoWrongIP, llm.SErrTopoMissingNetwork,
		llm.SErrNeighborOutsideBGP, llm.SErrAndOr, llm.SErrEgressDenyAll,
	}
	topo, err := netgen.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	golden := scenarioConfigs(t, topo)

	sess := lightyear.NewGlobalSession(topo)
	coldGolden, err := lightyear.CheckGlobalNoTransit(topo, parseDevs(t, golden))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sess.Check(parseDevs(t, golden), nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGlobal(t, "golden baseline", coldGolden, inc)

	for _, class := range classes {
		res, err := core.Synthesize(topo, core.SynthOptions{
			Model: llm.NewSynthesizer(llm.SynthConfig{Seed: 1,
				Errors: map[string][]llm.SynthError{"R1": {class}}}),
			SkipGlobalCheck:       true,
			MaxAttemptsPerFinding: 1,
			Human:                 core.NoHuman{},
		})
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		changed := []string{}
		for name, text := range golden {
			if res.Configs[name] != text {
				changed = append(changed, name)
			}
		}

		cold, err := lightyear.CheckGlobalNoTransit(topo, parseDevs(t, res.Configs))
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		inc, err := sess.Check(parseDevs(t, res.Configs), changed)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		requireSameGlobal(t, class.String()+" mutant", cold, inc)

		inc, err = sess.Check(parseDevs(t, golden), changed)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		requireSameGlobal(t, class.String()+" reverted", coldGolden, inc)
	}
}

// TestGlobalSessionSurvivesTopologyDrift updates a router the session has
// never seen (a drifted device map): the session must fall back to a cold
// rebuild and report exactly what the cold check would — including the
// cold check's error when a configuration is missing.
func TestGlobalSessionSurvivesTopologyDrift(t *testing.T) {
	topo, _ := netgen.Star(3)
	configs := scenarioConfigs(t, topo)

	sess := lightyear.NewGlobalSession(topo)
	if _, err := sess.Check(parseDevs(t, configs), nil); err != nil {
		t.Fatal(err)
	}

	// A router named in changed but absent from the device map: cold
	// errors, so the session must too.
	devs := parseDevs(t, configs)
	delete(devs, "R2")
	if _, err := sess.Check(devs, []string{"R2"}); err == nil {
		t.Fatal("missing device should error like the cold check")
	}

	// The session recovers on the next complete device set.
	cold, err := lightyear.CheckGlobalNoTransit(topo, parseDevs(t, configs))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := sess.Check(parseDevs(t, configs), nil)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGlobal(t, "recovery", cold, inc)
}
