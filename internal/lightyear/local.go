package lightyear

import (
	"fmt"

	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// Attachment is one ISP attachment point: a (router, external neighbor)
// pair. On non-star topologies the no-transit policy is enforced at the
// attachment points — each tags at its ISP ingress and filters at its ISP
// egress — instead of at a central hub, since transit routes may cross
// arbitrarily many internal hops. Community tags, policy names, and
// requirement identities are all keyed on the attachment, never the
// router alone, so a router may hold any number of attachments
// (dual-homing) without the tags colliding.
type Attachment struct {
	// Router is the attaching router's name (R<Index> for generated
	// topologies; hand-built dictionaries may use any name).
	Router string
	// Index is the router's numeric index (0 when the name is not of the
	// generators' R<i> form), which keys the community tag for legacy
	// single-attachment topologies whose neighbors carry no attachment
	// ordinal.
	Index int
	// Peer is the external ISP neighbor; its Attachment ordinal, when
	// set, keys the community tag.
	Peer topology.NeighborSpec
}

// Community returns the tag this attachment point adds at ingress, in
// precedence order:
//
//  1. the attachment-ordinal scheme when the neighbor spec declares a
//     first-class attachment ordinal — one distinct tag per attachment,
//     however many share a router;
//  2. the generators' legacy router-index scheme for R<i> routers with
//     implicit single attachments;
//  3. the ISP's AS number otherwise — so hand-built topologies with
//     arbitrary router names still get one distinct tag per ISP (ISP AS
//     numbers are unique in any sane dictionary) instead of all colliding
//     on index 0.
func (a Attachment) Community() netcfg.Community {
	switch {
	case a.Peer.Attachment > 0:
		return netgen.AttachmentCommunity(a.Peer.Attachment)
	case a.Index > 0:
		return netgen.ISPCommunity(a.Index)
	default:
		return netcfg.NewCommunity(uint16(a.Peer.PeerAS), 1)
	}
}

// IngressPolicy names the route map applied on routes from the ISP. Peer
// names are unique per attachment (ISP<ordinal> on attachment-keyed
// topologies), so dual-homed routers get one ingress policy per ISP.
func (a Attachment) IngressPolicy() string { return "ADD_COMM_" + a.Peer.PeerName }

// EgressPolicy names the route map applied on routes toward the ISP.
func (a Attachment) EgressPolicy() string { return "FILTER_COMM_OUT_" + a.Peer.PeerName }

// Ref returns the attachment's requirement identity for one direction.
func (a Attachment) Ref(direction string) AttachmentRef {
	return AttachmentRef{Router: a.Router, Peer: a.Peer.PeerName, Direction: direction}
}

// ISPAttachments collects the ISP attachment points of a topology in
// topology order: every external neighbor that is not a customer network,
// via the dictionary's first-class attachment listing.
func ISPAttachments(t *topology.Topology) []Attachment {
	var out []Attachment
	for _, ap := range t.ExternalAttachments() {
		if !netgen.IsCustomerPeer(ap.Peer.PeerName) {
			out = append(out, Attachment{Router: ap.Router, Index: indexOf(ap.Router), Peer: ap.Peer})
		}
	}
	return out
}

// SpecFor derives the per-router local no-transit specification for any
// topology: the paper's hub-centric specification for stars (§4.1,
// byte-compatible with the seed), the attachment-point specification for
// every other graph.
func SpecFor(t *topology.Topology) []Requirement {
	if netgen.IsStar(t) {
		return NoTransitSpec(t)
	}
	return LocalNoTransitSpec(t)
}

// LocalNoTransitSpec derives the attachment-point local specification of
// the no-transit policy for an arbitrary topology: every ISP attachment
// tags incoming routes with its own community at ingress, and at egress
// denies routes carrying any other attachment's community while
// permitting untagged (customer) routes. Because the BGP simulation
// propagates communities across internal hops, the local obligations
// compose into the global no-transit guarantee on any graph.
func LocalNoTransitSpec(t *topology.Topology) []Requirement {
	attaches := ISPAttachments(t)
	var all []netcfg.Community
	for _, a := range attaches {
		all = append(all, a.Community())
	}
	var reqs []Requirement
	for _, a := range attaches {
		tag := a.Community()
		reqs = append(reqs, Requirement{
			Kind:       IngressAddsCommunity,
			Router:     a.Router,
			Attachment: a.Ref(DirIn),
			Policy:     a.IngressPolicy(),
			Community:  tag,
			Description: fmt.Sprintf(
				"Every route %s accepts from %s must carry community %s after ingress processing.",
				a.Router, a.Peer.PeerName, tag),
		})
		others := 0
		for _, b := range attaches {
			if b.Router == a.Router && b.Peer.PeerName == a.Peer.PeerName {
				continue
			}
			// Note b ranges over every *other attachment*, including a
			// second ISP on the same router: the no-transit pair between
			// two ISPs homed on one router is enforced by these same
			// egress obligations.
			others++
			reqs = append(reqs, Requirement{
				Kind:       EgressDropsCommunity,
				Router:     a.Router,
				Attachment: a.Ref(DirOut),
				Policy:     a.EgressPolicy(),
				Community:  b.Community(),
				Description: fmt.Sprintf(
					"%s must not export to %s any route carrying community %s (learned from %s).",
					a.Router, a.Peer.PeerName, b.Community(), b.Peer.PeerName),
			})
		}
		// A lone attachment has no transit to prevent, so no egress filter
		// is prompted for — and none must be required, or the undefined
		// route-map would be an unfixable violation (the modularizer emits
		// the egress sentence only when there is something to filter).
		if others > 0 {
			reqs = append(reqs, Requirement{
				Kind:        EgressPermitsClean,
				Router:      a.Router,
				Attachment:  a.Ref(DirOut),
				Policy:      a.EgressPolicy(),
				Communities: all,
				Description: fmt.Sprintf(
					"%s must export to %s routes that carry no ISP community (customer routes).",
					a.Router, a.Peer.PeerName),
			})
		}
	}
	return reqs
}
