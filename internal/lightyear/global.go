package lightyear

import (
	"fmt"

	"repro/internal/batfish"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// GlobalResult reports the end-to-end BGP simulation check of the global
// no-transit policy.
type GlobalResult struct {
	// Violations lists transit paths that must not exist (ISP i reaches
	// ISP j's prefix through the customer network).
	Violations []string
	// MissingReachability lists required connectivity that is absent
	// (an ISP cannot reach the customer, or vice versa).
	MissingReachability []string
	Converged           bool
}

// OK reports whether the global policy holds.
func (g *GlobalResult) OK() bool {
	return g.Converged && len(g.Violations) == 0 && len(g.MissingReachability) == 0
}

// CheckGlobalNoTransit runs the full BGP simulation on a star topology and
// verifies the global policy: no two ISPs can reach each other through the
// network, while every ISP and the customer can reach each other (§4.1).
func CheckGlobalNoTransit(t *topology.Topology, devs map[string]*netcfg.Device) (*GlobalResult, error) {
	sim := batfish.NewSim()
	var spokes []int
	for i := range t.Routers {
		spec := &t.Routers[i]
		dev := devs[spec.Name]
		if dev == nil {
			return nil, fmt.Errorf("router %s has no configuration", spec.Name)
		}
		if err := sim.AddDevice(spec.Name, dev); err != nil {
			return nil, err
		}
		if spec.Name != "R1" {
			spokes = append(spokes, indexOf(spec.Name))
		}
	}
	// External stubs: the customer behind R1 and one ISP behind each spoke.
	custAddr, err := netcfg.ParseIP("1.0.0.2")
	if err != nil {
		return nil, err
	}
	if err := sim.AddExternal("CUSTOMER", custAddr, netgen.CustomerAS,
		[]netcfg.Prefix{netgen.CustomerPrefix()}); err != nil {
		return nil, err
	}
	for _, i := range spokes {
		addr, err := netcfg.ParseIP(fmt.Sprintf("20.%d.0.2", i))
		if err != nil {
			return nil, err
		}
		if err := sim.AddExternal(ispName(i), addr, uint32(netgen.ISPBaseAS+i),
			[]netcfg.Prefix{netgen.ISPPrefix(i)}); err != nil {
			return nil, err
		}
	}
	res := sim.Run()

	out := &GlobalResult{Converged: res.Converged}
	for _, i := range spokes {
		// Positive requirements.
		if !res.CanReach(ispName(i), netgen.CustomerPrefix()) {
			out.MissingReachability = append(out.MissingReachability,
				fmt.Sprintf("%s cannot reach the customer prefix %s", ispName(i), netgen.CustomerPrefix()))
		}
		if !res.CanReach("CUSTOMER", netgen.ISPPrefix(i)) {
			out.MissingReachability = append(out.MissingReachability,
				fmt.Sprintf("CUSTOMER cannot reach %s's prefix %s", ispName(i), netgen.ISPPrefix(i)))
		}
		// No-transit: ISP i must not see ISP j's prefix.
		for _, j := range spokes {
			if i == j {
				continue
			}
			if res.CanReach(ispName(i), netgen.ISPPrefix(j)) {
				out.Violations = append(out.Violations,
					fmt.Sprintf("transit violation: %s can reach %s's prefix %s",
						ispName(i), ispName(j), netgen.ISPPrefix(j)))
			}
		}
	}
	return out, nil
}

func ispName(i int) string { return fmt.Sprintf("ISP%d", i) }
