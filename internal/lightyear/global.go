package lightyear

import (
	"fmt"

	"repro/internal/batfish"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// Global check methods, recorded on GlobalResult.Method.
const (
	// MethodSimulated is the paper-faithful whole-network BGP simulation.
	MethodSimulated = "simulated"
	// MethodCompositional is the verified-local-specs fast path plus
	// seeded sampled falsification (CheckCompositionalNoTransit).
	MethodCompositional = "compositional"
)

// GlobalResult reports the whole-network check of the global no-transit
// policy — produced either by the full BGP simulation
// (CheckGlobalNoTransit) or by the compositional fast path
// (CheckCompositionalNoTransit); Method records which.
type GlobalResult struct {
	// Violations lists transit paths that must not exist (ISP i reaches
	// ISP j's prefix through the customer network). The compositional
	// checker reports unmet local obligations and failed falsification
	// probes here instead of simulated transit paths.
	Violations []string
	// MissingReachability lists required connectivity that is absent
	// (an ISP cannot reach the customer, or vice versa).
	MissingReachability []string
	Converged           bool
	// Method is the checker that produced this result (MethodSimulated or
	// MethodCompositional); empty on results from servers predating the
	// compositional check.
	Method string
	// FalsificationProbes lists the egress filters the compositional
	// checker's seeded sampling neutralized to prove the local obligations
	// non-vacuous, as "router:policy" in topology order. Empty for
	// simulated results.
	FalsificationProbes []string
}

// OK reports whether the global policy holds.
func (g *GlobalResult) OK() bool {
	return g.Converged && len(g.Violations) == 0 && len(g.MissingReachability) == 0
}

// externalStub is one external BGP speaker derived from the topology
// dictionary: a customer network or an ISP.
type externalStub struct {
	name     string
	addr     uint32
	asn      uint32
	prefixes []netcfg.Prefix
	customer bool
}

// CheckGlobalNoTransit runs the full BGP simulation on any topology and
// verifies the global policy: no two ISPs can reach each other through
// the network, while every ISP and every customer can reach each other
// (§4.1). External speakers are derived from the topology dictionary's
// external neighbors — their originated prefixes come from the spec's
// prefixes field, falling back to the star generator's conventions
// (CUSTOMER originates CustomerPrefix, ISP behind Ri originates
// ISPPrefix(i)) when the field is absent.
func CheckGlobalNoTransit(t *topology.Topology, devs map[string]*netcfg.Device) (*GlobalResult, error) {
	sim, isps, customers, err := buildNoTransitSim(t, devs)
	if err != nil {
		return nil, err
	}
	return evalNoTransit(sim.Run(), isps, customers), nil
}

// buildNoTransitSim assembles the simulator for a topology: every
// configured router plus the external stubs its dictionary declares,
// partitioned into ISPs and customers for the verdict evaluation.
func buildNoTransitSim(t *topology.Topology, devs map[string]*netcfg.Device) (
	*batfish.Sim, []externalStub, []externalStub, error) {
	sim := batfish.NewSim()
	var stubs []externalStub
	for i := range t.Routers {
		spec := &t.Routers[i]
		dev := devs[spec.Name]
		if dev == nil {
			return nil, nil, nil, fmt.Errorf("router %s has no configuration", spec.Name)
		}
		if err := sim.AddDevice(spec.Name, dev); err != nil {
			return nil, nil, nil, err
		}
		ispPeers := 0
		for _, nb := range spec.Neighbors {
			if nb.External && !netgen.IsCustomerPeer(nb.PeerName) {
				ispPeers++
			}
		}
		for _, nb := range spec.Neighbors {
			if !nb.External {
				continue
			}
			stub, err := stubFor(spec, nb, ispPeers)
			if err != nil {
				return nil, nil, nil, err
			}
			stubs = append(stubs, stub)
		}
	}
	var isps, customers []externalStub
	for _, s := range stubs {
		if err := sim.AddExternal(s.name, s.addr, s.asn, s.prefixes); err != nil {
			return nil, nil, nil, err
		}
		if s.customer {
			customers = append(customers, s)
		} else {
			isps = append(isps, s)
		}
	}
	return sim, isps, customers, nil
}

// evalNoTransit derives the global verdict from a converged simulation.
func evalNoTransit(res *batfish.Result, isps, customers []externalStub) *GlobalResult {
	out := &GlobalResult{Converged: res.Converged, Method: MethodSimulated}
	for _, isp := range isps {
		// Positive requirements: every ISP and every customer reach each
		// other.
		for _, cust := range customers {
			for _, p := range cust.prefixes {
				if !res.CanReach(isp.name, p) {
					out.MissingReachability = append(out.MissingReachability,
						fmt.Sprintf("%s cannot reach the customer prefix %s", isp.name, p))
				}
			}
			for _, p := range isp.prefixes {
				if !res.CanReach(cust.name, p) {
					out.MissingReachability = append(out.MissingReachability,
						fmt.Sprintf("%s cannot reach %s's prefix %s", cust.name, isp.name, p))
				}
			}
		}
		// No-transit: ISP i must not see ISP j's prefix.
		for _, other := range isps {
			if other.name == isp.name {
				continue
			}
			for _, p := range other.prefixes {
				if res.CanReach(isp.name, p) {
					out.Violations = append(out.Violations,
						fmt.Sprintf("transit violation: %s can reach %s's prefix %s",
							isp.name, other.name, p))
				}
			}
		}
	}
	return out
}

// GlobalSession is the incremental counterpart of CheckGlobalNoTransit:
// it keeps the BGP simulator's converged state alive between checks of
// the same topology, so a repair iteration that changed one router's
// configuration re-simulates only the flooding frontier instead of the
// whole network (batfish.Sim.RunIncremental). Results are byte-identical
// to the cold check — the simulator's equivalence gate guarantees the
// RIBs, and the verdict evaluation is shared code.
//
// A GlobalSession is not safe for concurrent use; callers serialize.
type GlobalSession struct {
	topo            *topology.Topology
	sim             *batfish.Sim
	isps, customers []externalStub
}

// NewGlobalSession returns a session for one topology. The first Check
// pays a full cold simulation; later Checks replay incrementally.
func NewGlobalSession(t *topology.Topology) *GlobalSession {
	return &GlobalSession{topo: t}
}

// Check verifies the global no-transit policy against the given devices.
// changed names the routers whose device differs from the previous Check
// of this session; nil means unknown (or first call), which rebuilds the
// simulator and runs cold. A changed router the session cannot update in
// place (a topology drift) also falls back to a cold rebuild, so the
// session never returns a result the cold path would not.
func (gs *GlobalSession) Check(devs map[string]*netcfg.Device, changed []string) (*GlobalResult, error) {
	if gs.sim == nil || changed == nil {
		if err := gs.rebuild(devs); err != nil {
			return nil, err
		}
	} else {
		for _, r := range changed {
			dev := devs[r]
			if dev == nil {
				// A router vanished from the config set: rebuild, so the
				// session errors (or not) exactly as the cold check would.
				if rerr := gs.rebuild(devs); rerr != nil {
					return nil, rerr
				}
				break
			}
			if err := gs.sim.Update(r, dev); err != nil {
				// Unknown router: the topology drifted under the session.
				if rerr := gs.rebuild(devs); rerr != nil {
					return nil, rerr
				}
				break
			}
		}
	}
	return evalNoTransit(gs.sim.RunIncremental(), gs.isps, gs.customers), nil
}

// rebuild constructs a fresh simulator for the session's topology; the
// next RunIncremental runs cold and records a new baseline.
func (gs *GlobalSession) rebuild(devs map[string]*netcfg.Device) error {
	sim, isps, customers, err := buildNoTransitSim(gs.topo, devs)
	if err != nil {
		return err
	}
	gs.sim, gs.isps, gs.customers = sim, isps, customers
	return nil
}

// stubFor derives the external speaker behind one external neighbor.
// ispPeers is the number of ISP attachments on the router: the
// index-keyed star fallback prefix is only safe when the router has a
// single ISP, otherwise dual-homed peers would share one stub prefix.
func stubFor(spec *topology.RouterSpec, nb topology.NeighborSpec, ispPeers int) (externalStub, error) {
	addr, err := netcfg.ParseIP(nb.PeerIP)
	if err != nil {
		return externalStub{}, fmt.Errorf("external peer %s of %s: %w", nb.PeerName, spec.Name, err)
	}
	s := externalStub{
		name:     nb.PeerName,
		addr:     addr,
		asn:      nb.PeerAS,
		customer: netgen.IsCustomerPeer(nb.PeerName),
	}
	for _, ps := range nb.Prefixes {
		p, err := netcfg.ParsePrefix(ps)
		if err != nil {
			return externalStub{}, fmt.Errorf("external peer %s of %s: prefix %q: %w",
				nb.PeerName, spec.Name, ps, err)
		}
		s.prefixes = append(s.prefixes, p)
	}
	if len(s.prefixes) == 0 {
		// Star-generator conventions; for hand-built dictionaries (names
		// not of the R<i> form, or several ISPs on one router) key the
		// fallback prefix on the peer AS so distinct ISPs never share a
		// stub prefix.
		switch {
		case s.customer:
			s.prefixes = []netcfg.Prefix{netgen.CustomerPrefix()}
		case indexOf(spec.Name) > 0 && ispPeers == 1:
			s.prefixes = []netcfg.Prefix{netgen.ISPPrefix(indexOf(spec.Name))}
		default:
			s.prefixes = []netcfg.Prefix{netcfg.MustPrefix(fmt.Sprintf(
				"150.%d.%d.0/24", (nb.PeerAS>>8)&0xff, nb.PeerAS&0xff))}
		}
	}
	return s, nil
}
