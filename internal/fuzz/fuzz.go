// Package fuzz treats erroneous LLM output as a first-class, generatable
// input space. The paper's central claim is that a verify-and-rectify
// loop repairs the error classes real LLMs inject into router configs;
// the repo's registry scenarios only ever exercised one fixed error plan
// per topology. This package explores the space property-based: a seeded
// Campaign sweeps (scenario family × size × seed × error plan) cases on
// a bounded worker pool against any verification backend, an oracle
// asserts the pipeline's end-to-end properties on every case —
//
//   - coverage-complete: the derived local spec satisfies the modular
//     proof obligation (lightyear.CoverageComplete);
//   - verified-synthesis: the repair loop converges to a verified result
//     under the case's injected error plan;
//   - local-specs-imply-global: the final configurations independently
//     pass the whole-network no-transit simulation (and, with Falsify,
//     breaking one attachment's egress filter breaks it — the composed
//     check is not vacuous);
//   - iteration-budget: the loop's verify/correct cycles stay bounded in
//     the injected-error count (core.Result.Iterations);
//
// and a deterministic shrinker minimizes any failing case along two axes
// — topology size/extra edges and error-plan cardinality — down to a
// replayable minimal counterexample emitted in a JSON report. Replay is
// exact: cofuzz -replay re-runs the minimized case through the oracle,
// and cosynth -errors replays it byte-identically through the main CLI
// (the topology regenerates from (family, size, seed, extraEdges), the
// plan rides in the report).
package fuzz

import (
	"encoding/json"
	"fmt"

	"repro/internal/llm"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// Case is one point of the fuzzed input space: a topology variant plus
// the error plan the simulated LLM injects into it. A case is fully
// replayable from its JSON form — the topology regenerates from
// (Family, Size, Seed, ExtraEdges) and the plan is carried verbatim.
type Case struct {
	Family string `json:"family"`
	Size   int    `json:"size"`
	// Seed selects the graph variant (random family) and derives the
	// generated error plan; campaigns vary it per size.
	Seed int64 `json:"seed"`
	// ExtraEdges caps the random family's non-tree edges; -1 keeps the
	// family default of Size/2. Other families ignore it.
	ExtraEdges int       `json:"extraEdges"`
	Plan       ErrorPlan `json:"plan"`
}

// UnmarshalJSON defaults ExtraEdges to -1 (the family default) when the
// field is absent, so hand-written plan files need not know the knob.
func (c *Case) UnmarshalJSON(b []byte) error {
	type alias Case
	a := alias{ExtraEdges: -1}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*c = Case(a)
	return nil
}

// String renders the case's coordinates for logs and failures.
func (c Case) String() string {
	s := fmt.Sprintf("%s:%d seed=%d", c.Family, c.Size, c.Seed)
	if c.ExtraEdges >= 0 {
		s += fmt.Sprintf(" extra-edges=%d", c.ExtraEdges)
	}
	return fmt.Sprintf("%s plan=%s", s, c.Plan)
}

// Topology regenerates the case's graph. The random family resolves
// through netgen.RandomWith so seed and edge-cap variants reproduce; all
// other families are deterministic in size alone. Size <= 0 falls back
// to the family's registry default, so hand-written replay files can
// omit it.
func (c Case) Topology() (*topology.Topology, error) {
	size := c.Size
	if size <= 0 {
		if sc, ok := netgen.Lookup(c.Family); ok {
			size = sc.DefaultSize
		}
	}
	if c.Family == "random" {
		return netgen.RandomWith(size, netgen.RandomOpts{Seed: c.Seed, ExtraEdges: c.ExtraEdges})
	}
	return netgen.GenerateSeeded(c.Family, size, c.Seed)
}

// DefaultAlphabet lists the synthesis error classes the default pipeline
// (automated rectification formulas plus the PaperHuman oracle) always
// repairs — the safe plan alphabet: a campaign drawing from it should
// report zero failures, so any failure is a real pipeline regression.
// llm.SErrEgressDenyAll is deliberately excluded: no formula and no
// operator prompt repairs it, which makes it the knob for seeding a
// deliberate oracle violation (see the campaign tests and cofuzz
// -classes).
func DefaultAlphabet() []llm.SynthError {
	return []llm.SynthError{
		llm.SErrCLIKeywords,
		llm.SErrMatchCommunityLiteral,
		llm.SErrMissingAdditive,
		llm.SErrCommunityListRegex,
		llm.SErrTopoWrongIP,
		llm.SErrTopoMissingNetwork,
		llm.SErrNeighborOutsideBGP,
		llm.SErrAndOr,
	}
}
