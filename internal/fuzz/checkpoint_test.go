package fuzz

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// checkpointCampaign is the small sweep the crash/resume tests run: four
// cases, sequential so the kill point is deterministic.
func checkpointCampaign(path string) Campaign {
	return Campaign{
		Family:     "random",
		Sizes:      []int{4, 6},
		Seeds:      2,
		Workers:    1,
		Checkpoint: path,
	}
}

// requireSameSweep compares two reports case by case on every
// deterministic dimension (wall-clock stats legitimately differ across
// runs).
func requireSameSweep(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if a.Cases != b.Cases || a.Skipped != b.Skipped || a.Failures != b.Failures {
		t.Fatalf("%s: sweep shape diverged: %d/%d/%d vs %d/%d/%d", label,
			a.Cases, a.Skipped, a.Failures, b.Cases, b.Skipped, b.Failures)
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("%s: %d results vs %d", label, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		x, y := a.Results[i], b.Results[i]
		if !reflect.DeepEqual(x.Case, y.Case) || !reflect.DeepEqual(x.Failure, y.Failure) ||
			x.Iterations != y.Iterations || x.Automated != y.Automated || x.Human != y.Human {
			t.Fatalf("%s: case %d diverged:\n%+v\n%+v", label, i, x, y)
		}
	}
}

// TestCampaignCrashResumeMatchesUninterrupted kills a sweep after its
// second case via the crash seam, then resumes it: the recorded cases
// must be reused without re-running (proved by a zero-budget probe that
// still reports them) and the completed resume must match an
// uninterrupted baseline case for case.
func TestCampaignCrashResumeMatchesUninterrupted(t *testing.T) {
	base := checkpointCampaign("")
	base.Checkpoint = ""
	baseline, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "campaign.json")
	crashed := checkpointCampaign(path)
	crashed.AbortAfterCases = 2
	if _, err := crashed.Run(context.Background()); !errors.Is(err, ErrCampaignAborted) {
		t.Fatalf("crash seam did not fire: err = %v", err)
	}

	// Zero budget: fresh cases are skipped, yet the two recorded cases
	// still enter the report — reuse is free.
	probe := checkpointCampaign(path)
	probe.Resume = true
	probe.Budget = 1
	prep, err := probe.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prep.Cases != 2 || prep.Skipped != 2 {
		t.Fatalf("probe reused %d cases and skipped %d, want 2/2", prep.Cases, prep.Skipped)
	}

	resumed := checkpointCampaign(path)
	resumed.Resume = true
	rep, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireSameSweep(t, "crash-resume", baseline, rep)
}

// TestCampaignResumeRefusesDifferentKnobs pins the campaign-key check: a
// checkpoint recorded under one alphabet must not seed a campaign whose
// knobs would produce different outcomes.
func TestCampaignResumeRefusesDifferentKnobs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	c := Campaign{Family: "random", Sizes: []int{4}, Seeds: 1, Checkpoint: path}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	other := Campaign{Family: "random", Sizes: []int{4}, Seeds: 2,
		Checkpoint: path, Resume: true}
	_, err := other.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "different knobs") {
		t.Fatalf("knob mismatch not refused: err = %v", err)
	}
}
