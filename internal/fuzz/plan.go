package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/netgen"
	"repro/internal/topology"
)

// ErrorPlan is an attachment-keyed injection plan: which synthesis error
// classes fire at which (router, external-neighbor, direction) site. It
// is the JSON form of the llm.SynthConfig.Plan seam — classes travel as
// their stable String names, so plans and reports survive enum
// renumbering — and the unit the shrinker minimizes cardinality over.
type ErrorPlan struct {
	Sites []PlanSite `json:"sites,omitempty"`
}

// PlanSite assigns error classes to one site; Peer empty addresses the
// whole router (router-scoped classes only).
type PlanSite struct {
	Router    string   `json:"router"`
	Peer      string   `json:"peer,omitempty"`
	Direction string   `json:"direction,omitempty"`
	Classes   []string `json:"classes"`
}

// String renders the plan compactly for logs.
func (p ErrorPlan) String() string {
	if len(p.Sites) == 0 {
		return "{}"
	}
	var parts []string
	for _, s := range p.Sites {
		site := s.Router
		if s.Peer != "" {
			arrow := "<-"
			if s.Direction == "out" {
				arrow = "->"
			}
			site += arrow + s.Peer
		}
		parts = append(parts, site+":"+strings.Join(s.Classes, "+"))
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Cardinality counts the planned class instances — the shrinker's
// second minimization axis.
func (p ErrorPlan) Cardinality() int {
	n := 0
	for _, s := range p.Sites {
		n += len(s.Classes)
	}
	return n
}

// SiteErrors resolves the plan into the llm seam's form, validating
// every class name. The result is non-nil even for an empty plan, so
// handing it to llm.SynthConfig.Plan always selects plan mode (an empty
// plan injects nothing, unlike a nil one which selects the paper's
// default scenario).
func (p ErrorPlan) SiteErrors() ([]llm.SiteErrors, error) {
	out := make([]llm.SiteErrors, 0, len(p.Sites))
	for _, s := range p.Sites {
		se := llm.SiteErrors{Site: llm.ErrorSite{
			Router: s.Router, Peer: s.Peer, Direction: s.Direction,
		}}
		for _, name := range s.Classes {
			e, err := llm.ParseSynthError(name)
			if err != nil {
				return nil, fmt.Errorf("plan site %s%s: %w", s.Router, s.Peer, err)
			}
			se.Classes = append(se.Classes, e)
		}
		out = append(out, se)
	}
	return out, nil
}

// Normalize returns the canonical form of a plan: sites merged per
// (router, peer, direction) and sorted in natural order, classes
// deduplicated and sorted by class, empty sites dropped. Generated and
// shrunk plans are always normalized, which is what makes shrinking —
// and the minimal-counterexample comparison in tests — deterministic.
func (p ErrorPlan) Normalize() ErrorPlan {
	type key struct{ router, peer, dir string }
	merged := map[key]map[string]bool{}
	var order []key
	for _, s := range p.Sites {
		k := key{s.Router, s.Peer, s.Direction}
		if merged[k] == nil {
			merged[k] = map[string]bool{}
			order = append(order, k)
		}
		for _, c := range s.Classes {
			merged[k][c] = true
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.router != b.router {
			return natLess(a.router, b.router)
		}
		if a.peer != b.peer {
			return natLess(a.peer, b.peer)
		}
		return a.dir < b.dir
	})
	var out ErrorPlan
	for _, k := range order {
		classes := classNames(merged[k])
		if len(classes) == 0 {
			continue
		}
		out.Sites = append(out.Sites, PlanSite{
			Router: k.router, Peer: k.peer, Direction: k.dir, Classes: classes,
		})
	}
	return out
}

// classNames sorts a class-name set by class value (falling back to
// name order for unknown classes, so normalization never errors).
func classNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, aerr := llm.ParseSynthError(names[i])
		b, berr := llm.ParseSynthError(names[j])
		if aerr != nil || berr != nil {
			return names[i] < names[j]
		}
		return a < b
	})
	return names
}

// natLess compares names like R2 < R10 numerically where a plain string
// compare would not, keeping normalized plans readable.
func natLess(a, b string) bool {
	pa, na := splitNum(a)
	pb, nb := splitNum(b)
	if pa != pb {
		return pa < pb
	}
	return na < nb
}

func splitNum(s string) (string, int) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	n := 0
	for _, r := range s[i:] {
		n = n*10 + int(r-'0')
	}
	return s[:i], n
}

// PolicySite is one site a plan can corrupt: an enforcement point of the
// derived no-transit specification. On the paper's hub-centric star the
// enforcing router is the hub and the peer the internal spoke; on every
// other graph the sites are the ISP attachment points themselves —
// mirroring exactly how lightyear.SpecFor keys the requirements.
type PolicySite struct {
	Router string
	Peer   string
}

// PolicySites enumerates a topology's enforcement sites in topology
// order.
func PolicySites(t *topology.Topology) []PolicySite {
	var out []PolicySite
	if netgen.IsStar(t) {
		for i := range t.Routers {
			if t.Routers[i].Name != "R1" {
				out = append(out, PolicySite{Router: "R1", Peer: t.Routers[i].Name})
			}
		}
		return out
	}
	for _, a := range lightyear.ISPAttachments(t) {
		out = append(out, PolicySite{Router: a.Router, Peer: a.Peer.PeerName})
	}
	return out
}

// PlanFor derives a case's injection plan from its seed: roughly half
// the topology's enforcement sites get an egress-side class, a third an
// ingress-side class, and a quarter of the routers a router-scoped
// class, all drawn from the alphabet. The same (topology, seed,
// alphabet) always yields the same plan.
func PlanFor(t *topology.Topology, seed int64, alphabet []llm.SynthError) ErrorPlan {
	var inPool, outPool, routerPool []string
	for _, e := range alphabet {
		switch e.ScopeDirection() {
		case "in":
			inPool = append(inPool, e.String())
		case "out":
			outPool = append(outPool, e.String())
		default:
			routerPool = append(routerPool, e.String())
		}
	}
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(len(t.Routers))*7907))
	var plan ErrorPlan
	for _, site := range PolicySites(t) {
		if len(outPool) > 0 && rng.Intn(2) == 0 {
			plan.Sites = append(plan.Sites, PlanSite{
				Router: site.Router, Peer: site.Peer, Direction: "out",
				Classes: []string{outPool[rng.Intn(len(outPool))]},
			})
		}
		if len(inPool) > 0 && rng.Intn(3) == 0 {
			plan.Sites = append(plan.Sites, PlanSite{
				Router: site.Router, Peer: site.Peer, Direction: "in",
				Classes: []string{inPool[rng.Intn(len(inPool))]},
			})
		}
	}
	for i := range t.Routers {
		if len(routerPool) > 0 && rng.Intn(4) == 0 {
			plan.Sites = append(plan.Sites, PlanSite{
				Router:  t.Routers[i].Name,
				Classes: []string{routerPool[rng.Intn(len(routerPool))]},
			})
		}
	}
	return plan.Normalize()
}

// remapToTopology keeps a plan meaningful on a smaller graph by
// re-homing sites whose coordinates vanished: surviving sites stay put,
// dropped attachment sites move onto the smaller topology's enforcement
// sites in deterministic round-robin order, and dropped router sites
// move to the first router. The shrinker's oracle gate decides whether
// the re-homed plan still fails.
func remapToTopology(p ErrorPlan, t *topology.Topology) ErrorPlan {
	routers := map[string]bool{}
	for i := range t.Routers {
		routers[t.Routers[i].Name] = true
	}
	targets := PolicySites(t)
	valid := map[PolicySite]bool{}
	for _, s := range targets {
		valid[s] = true
	}
	next := 0
	var out ErrorPlan
	for _, s := range p.Sites {
		switch {
		case s.Peer == "" && routers[s.Router]:
			out.Sites = append(out.Sites, s)
		case s.Peer == "" && len(t.Routers) > 0:
			out.Sites = append(out.Sites, PlanSite{
				Router: t.Routers[0].Name, Classes: s.Classes,
			})
		case valid[PolicySite{Router: s.Router, Peer: s.Peer}]:
			out.Sites = append(out.Sites, s)
		case len(targets) > 0:
			target := targets[next%len(targets)]
			next++
			out.Sites = append(out.Sites, PlanSite{
				Router: target.Router, Peer: target.Peer,
				Direction: s.Direction, Classes: s.Classes,
			})
		}
	}
	return out.Normalize()
}

// pruneForTopology drops plan sites that address routers or enforcement
// sites absent from a topology — the adjustment a size-shrunk candidate
// needs so its plan stays meaningful on the smaller graph.
func pruneForTopology(p ErrorPlan, t *topology.Topology) ErrorPlan {
	routers := map[string]bool{}
	for i := range t.Routers {
		routers[t.Routers[i].Name] = true
	}
	sites := map[PolicySite]bool{}
	for _, s := range PolicySites(t) {
		sites[s] = true
	}
	var out ErrorPlan
	for _, s := range p.Sites {
		if s.Peer == "" {
			if routers[s.Router] {
				out.Sites = append(out.Sites, s)
			}
			continue
		}
		if sites[PolicySite{Router: s.Router, Peer: s.Peer}] {
			out.Sites = append(out.Sites, s)
		}
	}
	return out
}
