package fuzz

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/batfish"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/lightyear"
	"repro/internal/llm"
	"repro/internal/netcfg"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Oracle property names — the end-to-end pipeline properties every case
// must satisfy (see the package comment).
const (
	PropCoverage   = "coverage-complete"
	PropVerified   = "verified-synthesis"
	PropGlobal     = "local-specs-imply-global"
	PropFalsify    = "falsifiable-global"
	PropIterations = "iteration-budget"
	PropError      = "pipeline-error"
)

// Failure records which oracle property a case violated.
type Failure struct {
	Property string `json:"property"`
	Detail   string `json:"detail"`
}

// CaseResult is one case's oracle outcome plus its run stats.
type CaseResult struct {
	Case       Case     `json:"case"`
	Failure    *Failure `json:"failure,omitempty"`
	Iterations int      `json:"iterations"`
	Automated  int      `json:"automated"`
	Human      int      `json:"human"`
	ElapsedMS  int64    `json:"elapsedMs"`
}

// Campaign sweeps the fuzzed input space: for every (size, seed) pair of
// the family it derives a seeded error plan, runs the full synthesis
// pipeline under it, and asserts the oracle properties. Cases run on a
// bounded worker pool until the sweep completes or the wall-clock budget
// expires; the first failing case (in enumeration order) is shrunk to a
// minimal counterexample. The zero value plus a Family is runnable.
type Campaign struct {
	// Family is the netgen scenario family (default "random").
	Family string
	// Sizes lists the topology sizes to sweep (default: the family's
	// registry default size).
	Sizes []int
	// Seeds is the number of seeds swept per size (1..Seeds; default 1).
	Seeds int
	// Workers bounds the concurrent cases (default 1). Cases are
	// independent full pipeline runs; results are deterministic per case
	// regardless of scheduling.
	Workers int
	// Budget bounds the campaign's wall clock; 0 sweeps everything.
	// Cases not started before the budget expires are skipped (counted
	// in the report), so a campaign is always bounded without making any
	// individual case's outcome timing-dependent.
	Budget time.Duration
	// Verifier is the verification backend each case dispatches through
	// — nil for the in-process suite; rest.Client and rest.ShardedClient
	// (the suite.Backend seam) plug in unchanged. Must be safe for
	// concurrent use when Workers > 1 (the built-ins are).
	Verifier core.Verifier
	// Alphabet is the error-class pool plans draw from (nil =
	// DefaultAlphabet). Adding llm.SErrEgressDenyAll deliberately seeds
	// oracle violations.
	Alphabet []llm.SynthError
	// MaxIterations caps each case's pipeline cycles (0 = core default).
	MaxIterations int
	// IterationBound overrides the iteration-budget property's bound for
	// a case; nil uses a generous default linear in router count and
	// plan cardinality.
	IterationBound func(cs Case, t *topology.Topology) int
	// Falsify additionally checks non-vacuousness of the composed global
	// check: breaking one attachment's egress filter must surface a
	// transit violation. Skipped on star topologies, whose egress
	// filters live on the hub under the legacy naming scheme.
	Falsify bool
	// ShrinkBudget caps the oracle runs the shrinker may spend
	// (default 500).
	ShrinkBudget int
	// Checkpoint names a file the sweep snapshots into: after every
	// completed case the accumulated results are atomically rewritten, so
	// a campaign killed mid-sweep loses at most its in-flight cases. The
	// shrink phase is not checkpointed — it is deterministic in the first
	// failure, which the checkpointed sweep pins.
	Checkpoint string
	// Resume loads Checkpoint and reuses its recorded case results: only
	// the remainder of the sweep runs, and reused cases cost nothing
	// (their recorded stats, ElapsedMS included, enter the report
	// verbatim). A missing file starts fresh; a checkpoint from different
	// campaign knobs is an error.
	Resume bool
	// AbortAfterCases, when > 0, aborts Run with ErrCampaignAborted after
	// that many fresh case results were checkpointed — the in-process
	// crash-injection seam, mirroring core.CheckpointOptions.
	AbortAfterCases int
	// DurableCache mounts a disk-backed verification-cache tier into every
	// case's pipeline run (see core.SynthOptions.DurableCache): verifier
	// results persist across campaign restarts and are shared with any
	// concurrent run pointed at the same directory. Results are pure
	// functions of their inputs, so the tier changes cost, never outcomes
	// — it stays out of the campaign key.
	DurableCache *durable.Cache
	// Metrics, when set, is the registry every case's pipeline run
	// registers its instruments into — one shared surface for the whole
	// sweep. Like DurableCache it shapes observability, never outcomes,
	// and stays out of the campaign key.
	Metrics *obs.Registry
	// Tracer, when set, receives every case's pipeline trace events plus
	// one fuzz_case verdict event per completed case (stage "fuzz_case",
	// run label "fuzz:<case>", outcome "ok" or the failed property).
	// Observability only; out of the campaign key.
	Tracer *obs.Tracer

	// filled latches fill so the concurrent workers' RunCase calls read
	// the defaults applied before they were spawned instead of rewriting
	// them.
	filled bool

	// topos memoizes generated topologies by case coordinates: Cases()
	// already generates every swept topology to derive its error plan, so
	// RunCase reuses that graph instead of regenerating it. Topologies
	// are read-only throughout the pipeline, so sharing one across
	// concurrent workers is safe. Shrunk variants miss and regenerate.
	topos sync.Map
}

// topoKey is the memoization key of one case's topology coordinates.
type topoKey struct {
	family     string
	size       int
	seed       int64
	extraEdges int
}

// cachedTopology returns the case's (read-only) topology, generating and
// memoizing it on first sight of the coordinates.
func (c *Campaign) cachedTopology(cs Case) (*topology.Topology, error) {
	key := topoKey{family: cs.Family, size: cs.Size, seed: cs.Seed, extraEdges: cs.ExtraEdges}
	if t, ok := c.topos.Load(key); ok {
		return t.(*topology.Topology), nil
	}
	topo, err := cs.Topology()
	if err != nil {
		return nil, err
	}
	c.topos.Store(key, topo)
	return topo, nil
}

// fill applies defaults, returning an error for an unknown family.
func (c *Campaign) fill() error {
	if c.filled {
		return nil
	}
	if c.Family == "" {
		c.Family = "random"
	}
	sc, ok := netgen.Lookup(c.Family)
	if !ok {
		return fmt.Errorf("fuzz: unknown scenario family %q (have %v)",
			c.Family, netgen.ScenarioNames())
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{sc.DefaultSize}
	}
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Alphabet == nil {
		c.Alphabet = DefaultAlphabet()
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 500
	}
	c.filled = true
	return nil
}

// Cases enumerates the campaign's sweep deterministically: size-major,
// seed-minor, each case's plan derived from its coordinates.
func (c *Campaign) Cases() ([]Case, error) {
	if err := c.fill(); err != nil {
		return nil, err
	}
	var cases []Case
	for _, size := range c.Sizes {
		for s := 1; s <= c.Seeds; s++ {
			cs := Case{Family: c.Family, Size: size, Seed: int64(s), ExtraEdges: -1}
			topo, err := c.cachedTopology(cs)
			if err != nil {
				return nil, fmt.Errorf("fuzz: %s:%d: %w", c.Family, size, err)
			}
			cs.Plan = PlanFor(topo, cs.Seed, c.Alphabet)
			cases = append(cases, cs)
		}
	}
	return cases, nil
}

// Run executes the campaign: the full sweep on the worker pool, then —
// if any case failed — deterministic shrinking of the first failure to
// a minimal counterexample. The returned report is self-contained: it
// carries the campaign's knobs, so Replay reproduces the exact oracle.
func (c *Campaign) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	cases, err := c.Cases()
	if err != nil {
		return nil, err
	}
	var deadline time.Time
	if c.Budget > 0 {
		deadline = start.Add(c.Budget)
	}
	expired := func() bool {
		if ctx.Err() != nil {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	var saver *campaignSaver
	done := map[string]CaseResult{}
	if c.Checkpoint != "" {
		key := c.campaignKey()
		if c.Resume {
			done, err = loadCampaignCheckpoint(c.Checkpoint, key)
			if err != nil {
				return nil, err
			}
		}
		saver = newCampaignSaver(c.Checkpoint, key, c.AbortAfterCases, done)
	}

	results := make([]*CaseResult, len(cases))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := c.Workers
	if workers > len(cases) {
		workers = len(cases)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A resumed case costs nothing: its recorded result enters
				// the report verbatim, budget or no budget.
				if prev, ok := done[caseKey(cases[i])]; ok {
					res := prev
					results[i] = &res
					continue
				}
				if expired() || saver.isAborted() {
					continue // skipped: budget ran out (or the crash seam fired)
				}
				res := c.RunCase(cases[i])
				results[i] = &res
				if saver != nil {
					// The abort (crash seam) is observed via isAborted by
					// every worker; in-flight cases still land in the
					// checkpoint first, like work a real kill raced with.
					_ = saver.record(res)
				}
			}
		}()
	}
	for i := range cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if saver.isAborted() {
		return nil, ErrCampaignAborted
	}

	rep := c.newReport()
	var firstFailure *CaseResult
	for _, res := range results {
		if res == nil {
			rep.Skipped++
			continue
		}
		rep.Cases++
		rep.PlannedErrors += res.Case.Plan.Cardinality()
		rep.TotalIterations += res.Iterations
		rep.Results = append(rep.Results, *res)
		if res.Failure != nil {
			rep.Failures++
			if firstFailure == nil {
				firstFailure = res
			}
		}
	}
	if firstFailure != nil {
		min, steps, runs := c.Shrink(firstFailure.Case, *firstFailure.Failure)
		final := c.RunCase(min)
		cx := &Counterexample{
			Case:        min,
			Original:    firstFailure.Case,
			Failure:     *firstFailure.Failure,
			ShrinkSteps: len(steps),
			OracleRuns:  runs,
			Replay:      "cofuzz -replay <report.json>; cosynth -mode notransit -errors <report.json>",
		}
		if final.Failure != nil {
			cx.Failure = *final.Failure
		}
		rep.Counterexample = cx
	}
	elapsed := time.Since(start)
	rep.ElapsedMS = elapsed.Milliseconds()
	if secs := elapsed.Seconds(); secs > 0 {
		rep.CasesPerSecond = float64(rep.Cases) / secs
	}
	return rep, nil
}

// RunCase runs the oracle on one case: regenerate the topology, assert
// spec coverage, run the synthesis pipeline under the case's error plan,
// and assert the end-to-end properties on the outcome. It is
// deterministic in the case alone (given the campaign's knobs), which
// replay and the shrinker both rely on.
func (c *Campaign) RunCase(cs Case) CaseResult {
	if err := c.fill(); err != nil {
		return CaseResult{Case: cs, Failure: &Failure{Property: PropError, Detail: err.Error()}}
	}
	start := time.Now()
	out := CaseResult{Case: cs}
	verdict := func(r CaseResult) CaseResult {
		if c.Tracer != nil {
			outcome := "ok"
			if r.Failure != nil {
				outcome = r.Failure.Property
			}
			c.Tracer.Span(start, obs.Event{
				Stage:   obs.StageFuzzCase,
				Run:     "fuzz:" + cs.String(),
				Iter:    r.Iterations,
				Outcome: outcome,
			})
		}
		return r
	}
	fail := func(prop, detail string) CaseResult {
		out.Failure = &Failure{Property: prop, Detail: detail}
		out.ElapsedMS = time.Since(start).Milliseconds()
		return verdict(out)
	}

	topo, err := c.cachedTopology(cs)
	if err != nil {
		return fail(PropError, err.Error())
	}
	reqs := lightyear.SpecFor(topo)
	if err := lightyear.CoverageComplete(topo, reqs); err != nil {
		return fail(PropCoverage, err.Error())
	}
	for _, r := range reqs {
		if r.Attachment == (lightyear.AttachmentRef{}) && !netgen.IsStar(topo) {
			return fail(PropCoverage,
				fmt.Sprintf("requirement %q lacks an attachment identity", r.Description))
		}
	}

	sites, err := cs.Plan.SiteErrors()
	if err != nil {
		return fail(PropError, err.Error())
	}
	// The pipeline-internal global check runs compositionally: the
	// oracle's independent full simulation below re-proves
	// local-implies-global on every case anyway, so the in-pipeline
	// simulation was pure duplication — on profile it was half of every
	// passing case's simulation time.
	res, err := core.Synthesize(topo, core.SynthOptions{
		Model:           llm.NewSynthesizer(llm.SynthConfig{Seed: 1, RespectIIP: true, Plan: sites}),
		Verifier:        c.Verifier,
		MaxIterations:   c.MaxIterations,
		DurableCache:    c.DurableCache,
		GlobalCheck:     core.GlobalCheckCompositional,
		GlobalCheckSeed: cs.Seed,
		Metrics:         c.Metrics,
		Trace:           c.Tracer,
		RunLabel:        "fuzz:" + cs.String(),
	})
	if err != nil {
		return fail(PropError, err.Error())
	}
	out.Iterations = res.Iterations
	out.Automated, out.Human = res.Transcript.Counts()
	if !res.Verified {
		detail := "pipeline did not verify"
		if len(res.PuntedFindings) > 0 {
			detail += "; punted: " + strings.Join(res.PuntedFindings, ", ")
		}
		return fail(PropVerified, detail)
	}
	bound := 8 + 2*len(topo.Routers) + 6*cs.Plan.Cardinality()
	if c.IterationBound != nil {
		bound = c.IterationBound(cs, topo)
	}
	if res.Iterations > bound {
		return fail(PropIterations,
			fmt.Sprintf("%d iterations exceed the bound %d for %d routers and %d planned errors",
				res.Iterations, bound, len(topo.Routers), cs.Plan.Cardinality()))
	}

	// Independent composition check: re-parse the final configurations
	// and re-run the whole-network simulation outside the pipeline.
	devs := map[string]*netcfg.Device{}
	for name, text := range res.Configs {
		dev, _ := batfish.ParseConfig(text)
		devs[name] = dev
	}
	global, err := lightyear.CheckGlobalNoTransit(topo, devs)
	if err != nil {
		return fail(PropError, err.Error())
	}
	if !global.OK() {
		return fail(PropGlobal, fmt.Sprintf("verified configs fail the global check: %+v",
			global.Violations))
	}
	if c.Falsify && !netgen.IsStar(topo) {
		if f := falsify(topo, devs); f != nil {
			out.Failure = f
		}
	}
	out.ElapsedMS = time.Since(start).Milliseconds()
	return verdict(out)
}

// falsify proves the composed global check non-vacuous on this graph:
// detaching the first ISP attachment's egress filter must surface a
// transit violation. The devices are mutated, so callers pass a map they
// are done with.
func falsify(topo *topology.Topology, devs map[string]*netcfg.Device) *Failure {
	atts := lightyear.ISPAttachments(topo)
	if len(atts) < 2 {
		return &Failure{Property: PropFalsify,
			Detail: fmt.Sprintf("%d ISP attachments, want >= 2", len(atts))}
	}
	victim := atts[0]
	for _, nb := range devs[victim.Router].BGP.Neighbors {
		if nb.ExportPolicy == victim.EgressPolicy() {
			nb.ExportPolicy = ""
		}
	}
	broken, err := lightyear.CheckGlobalNoTransit(topo, devs)
	if err != nil {
		return &Failure{Property: PropError, Detail: err.Error()}
	}
	if broken.OK() || len(broken.Violations) == 0 {
		return &Failure{Property: PropFalsify,
			Detail: fmt.Sprintf("removing %s's egress filter toward %s was not caught",
				victim.Router, victim.Peer.PeerName)}
	}
	return nil
}
