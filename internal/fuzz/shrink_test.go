package fuzz

import (
	"reflect"
	"testing"
)

// failingCase returns a deliberately failing case for the seeded-
// violation campaign: the plan carries the unrepairable egress-deny-all
// class, derived like a campaign case so the shrinker has real work on
// both axes.
func failingCase(t *testing.T, c *Campaign) (Case, Failure) {
	t.Helper()
	cases, err := c.Cases()
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range cases {
		res := c.RunCase(cs)
		if res.Failure != nil {
			return cs, *res.Failure
		}
	}
	t.Fatal("no failing case in the seeded-violation sweep")
	return Case{}, Failure{}
}

func TestShrinkDeterministicAcrossRuns(t *testing.T) {
	c := seededViolation()
	cs, f := failingCase(t, &c)
	min1, steps1, runs1 := c.Shrink(cs, f)
	min2, steps2, runs2 := c.Shrink(cs, f)
	if !reflect.DeepEqual(min1, min2) || !reflect.DeepEqual(steps1, steps2) || runs1 != runs2 {
		t.Fatalf("shrinking diverged across runs:\n%+v (%d steps, %d runs)\n%+v (%d steps, %d runs)",
			min1, len(steps1), runs1, min2, len(steps2), runs2)
	}
	if len(steps1) == 0 {
		t.Fatal("the campaign case was already minimal: the shrinker had no work")
	}
	if !reflect.DeepEqual(steps1[len(steps1)-1], min1) {
		t.Fatal("the last accepted step is not the minimal case")
	}
}

func TestShrinkIdempotent(t *testing.T) {
	c := seededViolation()
	cs, f := failingCase(t, &c)
	min, _, _ := c.Shrink(cs, f)
	again, steps, _ := c.Shrink(min, f)
	if !reflect.DeepEqual(again, min) {
		t.Fatalf("shrinking a minimal case changed it: %+v -> %+v", min, again)
	}
	if len(steps) != 0 {
		t.Fatalf("shrinking a minimal case accepted %d steps", len(steps))
	}
}

func TestShrinkEveryStepPreservesTheFailure(t *testing.T) {
	c := seededViolation()
	cs, f := failingCase(t, &c)
	_, steps, _ := c.Shrink(cs, f)
	for i, step := range steps {
		res := c.RunCase(step)
		if res.Failure == nil || res.Failure.Property != f.Property {
			t.Fatalf("shrink step %d/%d lost the failure %q: %+v",
				i+1, len(steps), f.Property, res.Failure)
		}
		// Each step is genuinely smaller or equal on both axes, and
		// strictly smaller on at least one.
		prev := cs
		if i > 0 {
			prev = steps[i-1]
		}
		if step.Size > prev.Size || step.Plan.Cardinality() > prev.Plan.Cardinality() {
			t.Fatalf("shrink step %d grew the case: %+v -> %+v", i+1, prev, step)
		}
	}
}

func TestShrinkBudgetStopsEarly(t *testing.T) {
	c := seededViolation()
	cs, f := failingCase(t, &c)
	c.ShrinkBudget = 2
	_, _, runs := c.Shrink(cs, f)
	if runs > 2 {
		t.Fatalf("shrinker spent %d oracle runs over a budget of 2", runs)
	}
	// An unrelated failure property shrinks to nothing: no candidate
	// reproduces it, so the case comes back unchanged.
	c2 := seededViolation()
	min, steps, _ := c2.Shrink(cs, Failure{Property: PropCoverage})
	if len(steps) != 0 || !reflect.DeepEqual(min.Plan, cs.Plan.Normalize()) {
		t.Fatalf("unreproducible failure still shrank: %+v (%d steps)", min, len(steps))
	}
}
