package fuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/llm"
)

// Report is a campaign's machine-readable outcome. It is self-contained:
// it records the knobs the oracle ran under (family, alphabet, iteration
// cap, falsification), so Replay re-runs the minimized counterexample
// through the identical oracle, and cosynth -errors can lift the case
// straight out of the report file.
type Report struct {
	Family        string   `json:"family"`
	Sizes         []int    `json:"sizes"`
	Seeds         int      `json:"seeds"`
	Alphabet      []string `json:"alphabet"`
	MaxIterations int      `json:"maxIterations,omitempty"`
	Falsify       bool     `json:"falsify,omitempty"`
	BudgetMS      int64    `json:"budgetMs,omitempty"`

	Cases           int     `json:"cases"`
	Skipped         int     `json:"skipped,omitempty"`
	Failures        int     `json:"failures"`
	PlannedErrors   int     `json:"plannedErrors"`
	TotalIterations int     `json:"totalIterations"`
	ElapsedMS       int64   `json:"elapsedMs"`
	CasesPerSecond  float64 `json:"casesPerSecond"`

	Results        []CaseResult    `json:"results"`
	Counterexample *Counterexample `json:"counterexample,omitempty"`
}

// Counterexample is the shrunk, replayable form of a campaign failure.
type Counterexample struct {
	// Case is the minimal failing case.
	Case Case `json:"case"`
	// Original is the campaign case the shrinker started from.
	Original Case `json:"original"`
	// Failure is the violated oracle property (re-asserted on the
	// minimal case).
	Failure     Failure `json:"failure"`
	ShrinkSteps int     `json:"shrinkSteps"`
	OracleRuns  int     `json:"oracleRuns"`
	// Replay documents how to reproduce the failure outside the engine.
	Replay string `json:"replay"`
}

// newReport seeds a report with the campaign's (filled) configuration.
func (c *Campaign) newReport() *Report {
	var alphabet []string
	for _, e := range c.Alphabet {
		alphabet = append(alphabet, e.String())
	}
	return &Report{
		Family:        c.Family,
		Sizes:         c.Sizes,
		Seeds:         c.Seeds,
		Alphabet:      alphabet,
		MaxIterations: c.MaxIterations,
		Falsify:       c.Falsify,
		BudgetMS:      c.Budget.Milliseconds(),
	}
}

// CampaignFor rebuilds the campaign configuration a report was produced
// under, so a replay runs the counterexample through the same oracle.
func (r *Report) CampaignFor() (*Campaign, error) {
	var alphabet []llm.SynthError
	for _, name := range r.Alphabet {
		e, err := llm.ParseSynthError(name)
		if err != nil {
			return nil, fmt.Errorf("report alphabet: %w", err)
		}
		alphabet = append(alphabet, e)
	}
	return &Campaign{
		Family:        r.Family,
		Sizes:         r.Sizes,
		Seeds:         r.Seeds,
		Alphabet:      alphabet,
		MaxIterations: r.MaxIterations,
		Falsify:       r.Falsify,
	}, nil
}

// Replay re-runs the report's minimized counterexample through the
// oracle it was found under and reports whether the recorded failure
// property reproduces.
func (r *Report) Replay() (CaseResult, bool, error) {
	if r.Counterexample == nil {
		return CaseResult{}, false, fmt.Errorf("report has no counterexample to replay")
	}
	c, err := r.CampaignFor()
	if err != nil {
		return CaseResult{}, false, err
	}
	res := c.RunCase(r.Counterexample.Case)
	reproduced := res.Failure != nil && res.Failure.Property == r.Counterexample.Failure.Property
	return res, reproduced, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report written by WriteFile.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// LoadReplayCase reads a replayable case from a file holding either a
// campaign report (the minimized counterexample is extracted) or a bare
// Case / plan JSON — the one loader behind cosynth -errors. A bare plan
// file may omit the topology coordinates; the caller then supplies them
// (cosynth falls back to its -topo/-seed flags).
func LoadReplayCase(path string) (Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Case{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err == nil {
		if rep.Counterexample != nil {
			return rep.Counterexample.Case, nil
		}
		// Report-only fields distinguish a passing campaign's report from
		// a bare case file; falling through would misread the report's
		// "family" as a case and silently replay an empty plan.
		if rep.Alphabet != nil || rep.Results != nil || rep.Cases > 0 {
			return Case{}, fmt.Errorf("%s: the campaign passed — no counterexample to replay", path)
		}
	}
	var cs Case
	if err := json.Unmarshal(data, &cs); err != nil {
		return Case{}, fmt.Errorf("%s: neither a campaign report nor a case file: %w", path, err)
	}
	if cs.Family == "" && cs.Size == 0 && len(cs.Plan.Sites) == 0 {
		return Case{}, fmt.Errorf("%s: no counterexample case or plan found", path)
	}
	return cs, nil
}
