package fuzz

import "reflect"

// Shrink deterministically minimizes a failing case along two axes —
// topology (size, then the random family's extra edges) and error-plan
// cardinality (whole sites, then single classes) — accepting a candidate
// only when it reproduces the original failure's property through the
// full oracle. The axes interleave to a fixed point: dropping a plan
// site can unlock a further size reduction and vice versa. Because every
// candidate is re-run through the same deterministic oracle, the result
// is reproducible, idempotent (shrinking a minimal case is a no-op), and
// every accepted step is itself a failing case.
//
// It returns the minimal case, the accepted intermediate steps in order
// (ending with the minimal case when any progress was made), and the
// number of oracle runs spent. The campaign's ShrinkBudget caps the
// runs; hitting the cap simply stops early with the best case so far.
func (c *Campaign) Shrink(cs Case, orig Failure) (Case, []Case, int) {
	if err := c.fill(); err != nil {
		return cs, nil, 0
	}
	cur := cs
	cur.Plan = cur.Plan.Normalize()
	runs := 0
	reproduces := func(cand Case) bool {
		if runs >= c.ShrinkBudget {
			return false
		}
		runs++
		res := c.RunCase(cand)
		return res.Failure != nil && res.Failure.Property == orig.Property
	}
	var steps []Case
	accept := func(cand Case) {
		cur = cand
		steps = append(steps, cand)
	}

	for progress := true; progress && runs < c.ShrinkBudget; {
		progress = false

		// Axis 1a: topology size. The candidate's plan is first pruned to
		// the sites that still exist on the smaller graph; when pruning
		// loses sites (seeded graph variants renumber their attachments
		// as the size changes), a second candidate re-homes the dropped
		// sites deterministically onto the smaller graph's enforcement
		// sites — either way the candidate only survives if the original
		// failure reproduces.
		for cur.Size > 2 {
			cand := cur
			cand.Size = cur.Size - 1
			topo, err := cand.Topology()
			if err != nil {
				break // below the family's minimum size
			}
			pruned := cand
			pruned.Plan = pruneForTopology(cur.Plan, topo).Normalize()
			if reproduces(pruned) {
				accept(pruned)
				progress = true
				continue
			}
			remapped := cand
			remapped.Plan = remapToTopology(cur.Plan, topo)
			if reflect.DeepEqual(remapped.Plan, pruned.Plan) || !reproduces(remapped) {
				break
			}
			accept(remapped)
			progress = true
		}

		// Axis 1b: the random family's extra edges, capped down toward a
		// bare spanning tree. The generator keeps its rng stream fixed,
		// so each candidate differs from its parent only in the dropped
		// edges.
		if cur.Family == "random" {
			extra := cur.ExtraEdges
			if extra < 0 {
				extra = cur.Size / 2
			}
			for extra > 0 {
				cand := cur
				cand.ExtraEdges = extra - 1
				if !reproduces(cand) {
					break
				}
				accept(cand)
				extra--
				progress = true
			}
		}

		// Axis 2a: drop whole plan sites.
		for i := 0; i < len(cur.Plan.Sites); {
			cand := cur
			cand.Plan = dropSite(cur.Plan, i)
			if reproduces(cand) {
				accept(cand)
				progress = true
				continue // the next site now sits at index i
			}
			i++
		}

		// Axis 2b: drop single classes within a site. Accepting a drop
		// that empties a site removes the site, shifting the indices; the
		// bounds re-checks keep the scan in range (the fixed-point outer
		// loop revisits anything skipped by the shift).
		for i := 0; i < len(cur.Plan.Sites); i++ {
			for j := 0; i < len(cur.Plan.Sites) && j < len(cur.Plan.Sites[i].Classes); {
				cand := cur
				cand.Plan = dropClass(cur.Plan, i, j)
				if reproduces(cand) {
					accept(cand)
					progress = true
					continue
				}
				j++
			}
			if i >= len(cur.Plan.Sites) {
				break
			}
		}
	}
	return cur, steps, runs
}

// dropSite returns a copy of the plan without site i (normalized, so
// shrunk plans stay canonical).
func dropSite(p ErrorPlan, i int) ErrorPlan {
	var out ErrorPlan
	for k, s := range p.Sites {
		if k != i {
			out.Sites = append(out.Sites, s)
		}
	}
	return out.Normalize()
}

// dropClass returns a copy of the plan without class j of site i.
func dropClass(p ErrorPlan, i, j int) ErrorPlan {
	var out ErrorPlan
	for k, s := range p.Sites {
		if k != i {
			out.Sites = append(out.Sites, s)
			continue
		}
		var classes []string
		for l, cl := range s.Classes {
			if l != j {
				classes = append(classes, cl)
			}
		}
		if len(classes) > 0 {
			out.Sites = append(out.Sites, PlanSite{
				Router: s.Router, Peer: s.Peer, Direction: s.Direction, Classes: classes,
			})
		}
	}
	return out.Normalize()
}
