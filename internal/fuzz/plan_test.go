package fuzz

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/llm"
	"repro/internal/netgen"
	"repro/internal/topology"
)

func TestNormalizeMergesSortsAndDedupes(t *testing.T) {
	p := ErrorPlan{Sites: []PlanSite{
		{Router: "R10", Peer: "ISP3", Direction: "out", Classes: []string{"and-or-semantics"}},
		{Router: "R2", Peer: "ISP1", Direction: "out", Classes: []string{"egress-deny-all"}},
		{Router: "R2", Peer: "ISP1", Direction: "out", Classes: []string{"and-or-semantics", "and-or-semantics"}},
		{Router: "R2", Classes: []string{"cli-keywords"}},
		{Router: "R7", Peer: "ISP2", Direction: "in", Classes: nil}, // empty: dropped
	}}
	got := p.Normalize()
	want := ErrorPlan{Sites: []PlanSite{
		{Router: "R2", Classes: []string{"cli-keywords"}},
		{Router: "R2", Peer: "ISP1", Direction: "out",
			Classes: []string{"and-or-semantics", "egress-deny-all"}},
		{Router: "R10", Peer: "ISP3", Direction: "out", Classes: []string{"and-or-semantics"}},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("normalize = %+v, want %+v", got, want)
	}
	// Normalization is idempotent.
	if again := got.Normalize(); !reflect.DeepEqual(again, got) {
		t.Fatalf("normalize not idempotent: %+v", again)
	}
}

func TestSiteErrorsRejectsUnknownClass(t *testing.T) {
	p := ErrorPlan{Sites: []PlanSite{{Router: "R2", Classes: []string{"no-such-class"}}}}
	if _, err := p.SiteErrors(); err == nil {
		t.Fatal("unknown class accepted")
	}
	// Every real class round-trips through its name.
	for _, e := range llm.AllSynthErrors() {
		got, err := llm.ParseSynthError(e.String())
		if err != nil || got != e {
			t.Fatalf("class %v does not round-trip: %v, %v", e, got, err)
		}
	}
}

func TestPlanForDeterministicAndSeedSensitive(t *testing.T) {
	topo, err := netgen.Generate("random", 10)
	if err != nil {
		t.Fatal(err)
	}
	a := PlanFor(topo, 3, DefaultAlphabet())
	b := PlanFor(topo, 3, DefaultAlphabet())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%v\n%v", a, b)
	}
	// Across a handful of seeds, at least two distinct plans appear.
	distinct := map[string]bool{}
	for s := int64(1); s <= 6; s++ {
		data, _ := json.Marshal(PlanFor(topo, s, DefaultAlphabet()))
		distinct[string(data)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("6 seeds produced %d distinct plans", len(distinct))
	}
}

func TestPolicySitesStarTargetsHub(t *testing.T) {
	star, err := netgen.Star(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range PolicySites(star) {
		if s.Router != "R1" {
			t.Fatalf("star site %+v not on the hub", s)
		}
	}
	dual, err := netgen.Generate("dual-homed", 4)
	if err != nil {
		t.Fatal(err)
	}
	sites := PolicySites(dual)
	if len(sites) != 2*(4-1) {
		t.Fatalf("dual-homed-4 has %d sites, want 6", len(sites))
	}
}

func TestRandomWithSeedVariesGraphAndSeedZeroIsLegacy(t *testing.T) {
	legacy, err := netgen.Random(12)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := netgen.RandomWith(12, netgen.RandomOpts{Seed: 0, ExtraEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, zero) {
		t.Fatal("seed 0 is not byte-identical to the legacy stream")
	}
	seeded, err := netgen.RandomWith(12, netgen.RandomOpts{Seed: 5, ExtraEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(legacy, seeded) {
		t.Fatal("seed 5 did not vary the graph")
	}
	// Shrinking the edge cap only drops edges: ISP placement is stable.
	sparse, err := netgen.RandomWith(12, netgen.RandomOpts{Seed: 5, ExtraEdges: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ext, sparseExt := len(seeded.ExternalAttachments()), len(sparse.ExternalAttachments()); ext != sparseExt {
		t.Fatalf("edge cap changed ISP placement: %d vs %d attachments", ext, sparseExt)
	}
	if internalEdges(seeded) <= internalEdges(sparse) {
		t.Fatalf("edge cap did not drop edges: %d vs %d", internalEdges(seeded), internalEdges(sparse))
	}
}

// internalEdges counts internal adjacencies (each undirected edge twice).
func internalEdges(t *topology.Topology) int {
	n := 0
	for i := range t.Routers {
		for _, nb := range t.Routers[i].Neighbors {
			if !nb.External {
				n++
			}
		}
	}
	return n
}
