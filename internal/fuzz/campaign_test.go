package fuzz

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/llm"
)

// TestCampaignDefaultAlphabetPasses is the engine's own regression gate:
// a sweep over the random family drawing plans from the repairable
// alphabet must satisfy every oracle property on every case — any
// failure here is a real pipeline bug, exactly what a production
// campaign run would flag.
func TestCampaignDefaultAlphabetPasses(t *testing.T) {
	c := Campaign{
		Family:  "random",
		Sizes:   []int{4, 6, 8},
		Seeds:   3,
		Workers: 4,
		Falsify: true,
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases != 9 || rep.Skipped != 0 {
		t.Fatalf("ran %d cases (%d skipped), want 9", rep.Cases, rep.Skipped)
	}
	if rep.Failures != 0 {
		t.Fatalf("campaign failed %d cases; counterexample: %+v",
			rep.Failures, rep.Counterexample)
	}
	if rep.PlannedErrors == 0 {
		t.Fatal("no errors were planned: the sweep was vacuous")
	}
	if rep.TotalIterations < rep.Cases {
		t.Fatalf("iterations stat missing: %d over %d cases",
			rep.TotalIterations, rep.Cases)
	}
}

// seededViolation is the deliberately failing campaign the acceptance
// criterion describes: the alphabet includes llm.SErrEgressDenyAll,
// which no rectification formula and no operator prompt repairs, so
// any case whose plan carries it on a live egress filter can never
// verify.
func seededViolation() Campaign {
	return Campaign{
		Family:   "random",
		Sizes:    []int{6, 8},
		Seeds:    4,
		Alphabet: append(DefaultAlphabet(), llm.SErrEgressDenyAll),
	}
}

func TestCampaignSeededViolationFindsShrinksAndReplays(t *testing.T) {
	c := seededViolation()
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 || rep.Counterexample == nil {
		t.Fatalf("seeded violation not found: %d failures, cx=%v",
			rep.Failures, rep.Counterexample)
	}
	cx := rep.Counterexample
	if cx.Failure.Property != PropVerified {
		t.Fatalf("failure property = %q, want %q", cx.Failure.Property, PropVerified)
	}

	// The minimal case is genuinely minimal: a single planned class on
	// the family's smallest failing graph, with every removable extra
	// edge gone.
	if got := cx.Case.Plan.Cardinality(); got != 1 {
		t.Errorf("minimal plan cardinality = %d, want 1 (%v)", got, cx.Case.Plan)
	}
	if cx.Case.Size > cx.Original.Size {
		t.Errorf("shrinker grew the topology: %d > %d", cx.Case.Size, cx.Original.Size)
	}
	if cx.Case.Size != 4 {
		t.Errorf("minimal size = %d, want the family minimum 4", cx.Case.Size)
	}
	if cx.Case.ExtraEdges != 0 {
		t.Errorf("minimal extra edges = %d, want 0", cx.Case.ExtraEdges)
	}
	if classes := cx.Case.Plan.Sites[0].Classes; len(classes) != 1 ||
		classes[0] != llm.SErrEgressDenyAll.String() {
		t.Errorf("minimal class = %v, want [%s]", classes, llm.SErrEgressDenyAll)
	}

	// The report replays to the same failure through the recorded
	// oracle (the cofuzz -replay path) — including after a JSON
	// round-trip through disk.
	path := filepath.Join(t.TempDir(), "fuzz.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	res, reproduced, err := loaded.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !reproduced {
		t.Fatalf("replay did not reproduce %q: %+v", cx.Failure.Property, res.Failure)
	}

	// The same file serves the cosynth -errors path: the replay case
	// lifts straight out of the report.
	cs, err := LoadReplayCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cs, cx.Case) {
		t.Fatalf("LoadReplayCase = %+v, want %+v", cs, cx.Case)
	}
}

// TestCampaignBudgetSkipsNotFails pins the budget semantics: an
// already-expired budget skips every case rather than failing any.
func TestCampaignBudgetSkipsNotFails(t *testing.T) {
	c := Campaign{Family: "random", Sizes: []int{6}, Seeds: 3, Budget: 1}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("budget expiry produced failures: %+v", rep)
	}
	if rep.Cases+rep.Skipped != 3 {
		t.Fatalf("cases+skipped = %d+%d, want 3", rep.Cases, rep.Skipped)
	}
	if rep.Skipped == 0 {
		t.Fatal("a 1ns budget skipped nothing")
	}
}

// TestCampaignAgainstBackendSeam runs a sweep through a CachedVerifier-
// compatible REST-style verifier to pin that the Verifier knob reaches
// the pipeline (the suite.Backend seam itself is exercised by the
// root-package byte-identical tests).
func TestCampaignWorkerDeterminism(t *testing.T) {
	run := func(workers int) *Report {
		t.Helper()
		c := Campaign{Family: "random", Sizes: []int{6}, Seeds: 2, Workers: workers}
		rep, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	seq, par := run(1), run(4)
	if seq.Failures != par.Failures || seq.Cases != par.Cases {
		t.Fatalf("worker count changed outcomes: %+v vs %+v", seq, par)
	}
	for i := range seq.Results {
		a, b := seq.Results[i], par.Results[i]
		if !reflect.DeepEqual(a.Case, b.Case) || a.Iterations != b.Iterations ||
			a.Automated != b.Automated || a.Human != b.Human {
			t.Fatalf("case %d diverged across worker counts:\n%+v\n%+v", i, a, b)
		}
	}
}
