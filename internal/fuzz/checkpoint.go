package fuzz

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/durable"
	"repro/internal/llm"
)

// CheckpointVersion is the campaign checkpoint's format version; a file
// declaring a newer version is refused at resume.
const CheckpointVersion = 1

// ErrCampaignAborted is returned by a Run whose crash-injection seam
// (AbortAfterCases) fired; the checkpoint on disk holds every case
// result recorded up to the abort.
var ErrCampaignAborted = errors.New("campaign aborted by checkpoint crash-injection seam")

// campaignCheckpoint is the on-disk snapshot: every completed case's
// result, keyed by case coordinates, plus the campaign key the results
// were produced under.
type campaignCheckpoint struct {
	Version int                   `json:"version"`
	Key     string                `json:"key"`
	Results map[string]CaseResult `json:"results"`
}

// caseKey is one sweep case's coordinate identity. Sweep cases are fully
// determined by (family, size, seed) — the plan is derived from them —
// so shrunk variants (which carry explicit plans) never collide with
// sweep entries.
func caseKey(cs Case) string {
	return fmt.Sprintf("%s:%d:%d", cs.Family, cs.Size, cs.Seed)
}

// campaignKey hashes every knob that determines a case's outcome, so a
// checkpoint is never resumed into a campaign that would have produced
// different results for the same coordinates. Workers and Budget shape
// scheduling, not outcomes, and stay out of the key; a custom
// IterationBound cannot be hashed, so its presence is keyed instead —
// resuming across two differently-bounded campaigns is refused only when
// one of them has no custom bound at all.
func (c *Campaign) campaignKey() string {
	data, _ := json.Marshal(struct {
		Family        string           `json:"family"`
		Sizes         []int            `json:"sizes"`
		Seeds         int              `json:"seeds"`
		Alphabet      []llm.SynthError `json:"alphabet"`
		MaxIterations int              `json:"max_iterations"`
		Falsify       bool             `json:"falsify"`
		CustomBound   bool             `json:"custom_bound"`
	}{c.Family, c.Sizes, c.Seeds, c.Alphabet, c.MaxIterations, c.Falsify,
		c.IterationBound != nil})
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// loadCampaignCheckpoint reads the results a killed campaign left
// behind. A missing file is a fresh start; an unreadable file, a newer
// format version, or a key from different campaign knobs is an error the
// caller surfaces rather than silently restarting.
func loadCampaignCheckpoint(path, key string) (map[string]CaseResult, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	var ck campaignCheckpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("resume: checkpoint %s is unreadable: %w", path, err)
	}
	if ck.Version > CheckpointVersion {
		return nil, fmt.Errorf("resume: checkpoint %s is format version %d, this binary speaks %d",
			path, ck.Version, CheckpointVersion)
	}
	if ck.Key != "" && key != "" && ck.Key != key {
		return nil, fmt.Errorf("resume: checkpoint %s belongs to a campaign with different knobs", path)
	}
	return ck.Results, nil
}

// campaignSaver checkpoints the sweep: after every fresh case result it
// atomically rewrites the accumulated result map, so a kill at any
// moment leaves a loadable snapshot of exactly the completed cases. The
// mutex orders the concurrent workers' writes.
type campaignSaver struct {
	path       string
	key        string
	abortAfter int

	mu      sync.Mutex
	results map[string]CaseResult
	saves   int
	aborted bool
}

// newCampaignSaver seeds the saver with the resumed results so a second
// kill preserves the first run's work too.
func newCampaignSaver(path, key string, abortAfter int,
	seed map[string]CaseResult) *campaignSaver {
	results := make(map[string]CaseResult, len(seed))
	for k, v := range seed {
		results[k] = v
	}
	return &campaignSaver{path: path, key: key, abortAfter: abortAfter, results: results}
}

// record adds one completed case and rewrites the checkpoint, firing the
// crash-injection seam after the write (matching a kill immediately
// after a completed snapshot).
func (s *campaignSaver) record(res CaseResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.results[caseKey(res.Case)] = res
	data, err := json.Marshal(campaignCheckpoint{
		Version: CheckpointVersion, Key: s.key, Results: s.results})
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := durable.WriteFileAtomic(s.path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.saves++
	if s.abortAfter > 0 && s.saves >= s.abortAfter {
		s.aborted = true
		return ErrCampaignAborted
	}
	return nil
}

// isAborted reports whether the seam fired; workers stop starting new
// cases once it has, like a process that is no longer there.
func (s *campaignSaver) isAborted() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborted
}
