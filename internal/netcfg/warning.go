package netcfg

import "fmt"

// ParseWarning is a Batfish-style parse warning: the line that failed to
// parse (or parsed but is invalid/misplaced) and a human-readable reason.
// The humanizer turns these directly into syntax-error prompts (Table 1:
// "There is a syntax error: '<line>'").
type ParseWarning struct {
	Line   int    // 1-based line number in the source text
	Text   string // the offending source line, trimmed
	Reason string // why it was rejected
}

// String implements fmt.Stringer.
func (w ParseWarning) String() string {
	return fmt.Sprintf("line %d: %s: %q", w.Line, w.Reason, w.Text)
}
