package netcfg

import (
	"testing"
	"testing/quick"
)

func TestPrefixListEntryBounds(t *testing.T) {
	cases := []struct {
		entry    PrefixListEntry
		min, max int
	}{
		{PrefixListEntry{Prefix: MustPrefix("1.2.3.0/24")}, 24, 24},
		{PrefixListEntry{Prefix: MustPrefix("1.2.3.0/24"), Ge: 24}, 24, 32},
		{PrefixListEntry{Prefix: MustPrefix("1.2.3.0/24"), Ge: 25, Le: 28}, 25, 28},
		{PrefixListEntry{Prefix: MustPrefix("1.2.3.0/24"), Le: 28}, 24, 28},
		{PrefixListEntry{Prefix: MustPrefix("1.2.3.0/24"), Ge: 30, Le: 25}, 30, 30}, // clamp
	}
	for i, c := range cases {
		min, max := c.entry.Bounds()
		if min != c.min || max != c.max {
			t.Errorf("case %d: bounds = (%d,%d), want (%d,%d)", i, min, max, c.min, c.max)
		}
	}
}

func TestPrefixListGe24MatchesPaperSemantics(t *testing.T) {
	// "ip prefix-list our-networks seq 5 permit 1.2.3.0/24 ge 24": match
	// prefixes with length 24 or greater whose first 24 bits match (§3.2).
	pl := &PrefixList{Name: "our-networks", Entries: []PrefixListEntry{
		{Seq: 5, Action: Permit, Prefix: MustPrefix("1.2.3.0/24"), Ge: 24},
	}}
	cases := []struct {
		p    string
		want bool
	}{
		{"1.2.3.0/24", true},
		{"1.2.3.0/25", true},
		{"1.2.3.128/25", true},
		{"1.2.3.7/32", true},
		{"1.2.0.0/16", false}, // too short
		{"1.2.2.0/24", false}, // wrong bits
	}
	for _, c := range cases {
		if got := pl.Matches(MustPrefix(c.p)); got != c.want {
			t.Errorf("Matches(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCommunityListFirstMatchWins(t *testing.T) {
	cl := &CommunityList{Name: "l", Entries: []CommunityListEntry{
		{Action: Deny, Community: MustCommunity("100:1")},
		{Action: Permit, Community: MustCommunity("100:2")},
	}}
	has := func(ss ...string) map[Community]bool {
		m := map[Community]bool{}
		for _, s := range ss {
			m[MustCommunity(s)] = true
		}
		return m
	}
	if cl.Matches(has("100:1", "100:2")) {
		t.Error("deny entry should win when its community is present")
	}
	if !cl.Matches(has("100:2")) {
		t.Error("permit entry should match")
	}
	if cl.Matches(has("100:3")) {
		t.Error("unlisted community should not match")
	}
}

func newTestDevice() *Device {
	d := NewDevice("r", VendorCisco)
	d.PrefixLists["nets"] = &PrefixList{Name: "nets", Entries: []PrefixListEntry{
		{Seq: 5, Action: Permit, Prefix: MustPrefix("1.2.3.0/24"), Ge: 24},
	}}
	d.CommunityLists["1"] = &CommunityList{Name: "1", Entries: []CommunityListEntry{
		{Action: Permit, Community: MustCommunity("100:1")},
	}}
	return d
}

func TestEvalPolicyFirstMatchingClauseDecides(t *testing.T) {
	d := newTestDevice()
	pol := &RoutePolicy{Name: "p", Clauses: []*PolicyClause{
		{Seq: 10, Action: Deny, Matches: []Match{MatchCommunityList{List: "1"}}},
		{Seq: 20, Action: Permit, Matches: []Match{MatchPrefixList{List: "nets"}},
			Sets: []SetAction{SetMED{MED: 50}}},
	}}
	tagged := NewRoute(MustPrefix("1.2.3.0/24"))
	tagged.AddCommunity(MustCommunity("100:1"))
	if res := EvalPolicy(pol, d, tagged); res.Permitted || res.ClauseSeq != 10 {
		t.Errorf("tagged route: %+v, want deny at clause 10", res)
	}
	clean := NewRoute(MustPrefix("1.2.3.0/25"))
	res := EvalPolicy(pol, d, clean)
	if !res.Permitted || res.ClauseSeq != 20 {
		t.Fatalf("clean route: %+v, want permit at clause 20", res)
	}
	if res.Route.MED != 50 {
		t.Errorf("MED = %d, want 50", res.Route.MED)
	}
	outside := NewRoute(MustPrefix("9.9.9.0/24"))
	if res := EvalPolicy(pol, d, outside); res.Permitted || res.ClauseSeq != -1 {
		t.Errorf("outside route: %+v, want implicit deny", res)
	}
}

func TestEvalPolicyMatchesAreANDedWithinClause(t *testing.T) {
	d := newTestDevice()
	pol := &RoutePolicy{Name: "p", Clauses: []*PolicyClause{
		{Seq: 10, Action: Permit, Matches: []Match{
			MatchPrefixList{List: "nets"},
			MatchCommunityList{List: "1"},
		}},
	}}
	prefixOnly := NewRoute(MustPrefix("1.2.3.0/24"))
	if EvalPolicy(pol, d, prefixOnly).Permitted {
		t.Error("route matching only one condition should not match the clause")
	}
	both := NewRoute(MustPrefix("1.2.3.0/24"))
	both.AddCommunity(MustCommunity("100:1"))
	if !EvalPolicy(pol, d, both).Permitted {
		t.Error("route matching both conditions should match")
	}
}

func TestEvalPolicyNilPermitsUnchanged(t *testing.T) {
	d := newTestDevice()
	r := NewRoute(MustPrefix("5.5.5.0/24"))
	r.MED = 7
	res := EvalPolicy(nil, d, r)
	if !res.Permitted || res.Route.MED != 7 {
		t.Errorf("nil policy should permit unchanged, got %+v", res)
	}
}

func TestSetCommunityAdditiveVsReplace(t *testing.T) {
	r := NewRoute(MustPrefix("1.0.0.0/8"))
	r.AddCommunity(MustCommunity("65000:1"))

	add := r.Clone()
	ApplySets([]SetAction{SetCommunity{Communities: []Community{MustCommunity("100:1")},
		Additive: true}}, add)
	if !add.HasCommunity(MustCommunity("65000:1")) || !add.HasCommunity(MustCommunity("100:1")) {
		t.Errorf("additive set lost communities: %v", add.CommunityStrings())
	}

	// The paper's "Adding Communities" pitfall (§4.2): without 'additive'
	// the existing communities are wiped.
	replace := r.Clone()
	ApplySets([]SetAction{SetCommunity{Communities: []Community{MustCommunity("100:1")}}}, replace)
	if replace.HasCommunity(MustCommunity("65000:1")) {
		t.Error("non-additive set should replace existing communities")
	}
	if !replace.HasCommunity(MustCommunity("100:1")) {
		t.Error("non-additive set should still add the new community")
	}
}

func TestMatchASPathRegexSubset(t *testing.T) {
	cases := []struct {
		re   string
		path []uint32
		want bool
	}{
		{"^$", nil, true},
		{"^$", []uint32{1}, false},
		{"^65001_", []uint32{65001, 2}, true},
		{"^65001_", []uint32{2, 65001}, false},
		{"_65001$", []uint32{2, 65001}, true},
		{"_65001$", []uint32{65001, 2}, false},
		{"_65001_", []uint32{1, 65001, 2}, true},
		{"_65001_", []uint32{1, 2}, false},
		{"garbage", []uint32{1}, false},
	}
	for _, c := range cases {
		r := NewRoute(MustPrefix("1.0.0.0/8"))
		r.ASPath = c.path
		got := EvalMatch(MatchASPathRegex{Regex: c.re}, newTestDevice(), r)
		if got != c.want {
			t.Errorf("regex %q on %v = %v, want %v", c.re, c.path, got, c.want)
		}
	}
}

func TestRouteCloneIsDeep(t *testing.T) {
	r := NewRoute(MustPrefix("1.0.0.0/8"))
	r.ASPath = []uint32{1, 2}
	r.AddCommunity(MustCommunity("100:1"))
	c := r.Clone()
	c.ASPath[0] = 99
	c.AddCommunity(MustCommunity("200:2"))
	if r.ASPath[0] == 99 {
		t.Error("clone shares AS path")
	}
	if r.HasCommunity(MustCommunity("200:2")) {
		t.Error("clone shares communities")
	}
}

func TestDeviceCloneIsDeep(t *testing.T) {
	d := newTestDevice()
	d.EnsureBGP(65000).EnsureNeighbor(1).ImportPolicy = "p"
	d.RoutePolicies["p"] = &RoutePolicy{Name: "p", Clauses: []*PolicyClause{
		{Seq: 10, Action: Permit, Sets: []SetAction{SetMED{MED: 1}}},
	}}
	d.EnsureInterface("eth0").OSPFCost = 5

	c := d.Clone()
	c.BGP.Neighbors[0].ImportPolicy = "q"
	c.RoutePolicies["p"].Clauses[0].Action = Deny
	c.Interface("eth0").OSPFCost = 9
	c.PrefixLists["nets"].Entries[0].Ge = 30

	if d.BGP.Neighbors[0].ImportPolicy != "p" {
		t.Error("clone shares neighbors")
	}
	if d.RoutePolicies["p"].Clauses[0].Action != Permit {
		t.Error("clone shares policy clauses")
	}
	if d.Interface("eth0").OSPFCost != 5 {
		t.Error("clone shares interfaces")
	}
	if d.PrefixLists["nets"].Entries[0].Ge != 24 {
		t.Error("clone shares prefix lists")
	}
}

func TestEvalPolicyDoesNotMutateInput(t *testing.T) {
	d := newTestDevice()
	pol := &RoutePolicy{Name: "p", Clauses: []*PolicyClause{
		{Seq: 10, Action: Permit, Sets: []SetAction{
			SetMED{MED: 99},
			SetCommunity{Communities: []Community{MustCommunity("100:1")}},
		}},
	}}
	f := func(addr uint32, l uint8) bool {
		r := NewRoute(NewPrefix(addr, int(l%33)))
		r.MED = 1
		res := EvalPolicy(pol, d, r)
		return r.MED == 1 && len(r.Communities) == 0 && res.Route.MED == 99
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
