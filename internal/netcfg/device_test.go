package netcfg

import "testing"

func TestVendorString(t *testing.T) {
	if VendorCisco.String() != "cisco" || VendorJuniper.String() != "juniper" ||
		VendorUnknown.String() != "unknown" {
		t.Error("vendor strings wrong")
	}
}

func TestEnsureInterfaceIdempotent(t *testing.T) {
	d := NewDevice("r", VendorCisco)
	a := d.EnsureInterface("eth0")
	b := d.EnsureInterface("eth0")
	if a != b {
		t.Error("EnsureInterface created a duplicate")
	}
	if len(d.Interfaces) != 1 {
		t.Errorf("interfaces = %d", len(d.Interfaces))
	}
	if d.Interface("nope") != nil {
		t.Error("unknown interface should be nil")
	}
}

func TestEnsureBGPAndNeighbor(t *testing.T) {
	d := NewDevice("r", VendorCisco)
	b := d.EnsureBGP(65000)
	if d.EnsureBGP(1) != b || b.ASN != 65000 {
		t.Error("EnsureBGP should not replace an existing process")
	}
	n := b.EnsureNeighbor(42)
	if b.EnsureNeighbor(42) != n || len(b.Neighbors) != 1 {
		t.Error("EnsureNeighbor created a duplicate")
	}
	if b.Neighbor(43) != nil {
		t.Error("unknown neighbor should be nil")
	}
}

func TestBGPHasNetwork(t *testing.T) {
	b := &BGP{Networks: []Prefix{MustPrefix("10.0.0.0/8")}}
	if !b.HasNetwork(MustPrefix("10.0.0.0/8")) {
		t.Error("exact network not found")
	}
	if b.HasNetwork(MustPrefix("10.0.0.0/9")) {
		t.Error("different length should not match")
	}
}

func TestSortedNameAccessors(t *testing.T) {
	d := NewDevice("r", VendorCisco)
	d.RoutePolicies["b"] = &RoutePolicy{Name: "b"}
	d.RoutePolicies["a"] = &RoutePolicy{Name: "a"}
	d.PrefixLists["z"] = &PrefixList{Name: "z"}
	d.PrefixLists["y"] = &PrefixList{Name: "y"}
	d.CommunityLists["2"] = &CommunityList{Name: "2"}
	d.CommunityLists["1"] = &CommunityList{Name: "1"}
	if got := d.PolicyNames(); got[0] != "a" || got[1] != "b" {
		t.Errorf("policies = %v", got)
	}
	if got := d.PrefixListNames(); got[0] != "y" || got[1] != "z" {
		t.Errorf("prefix lists = %v", got)
	}
	if got := d.CommunityListNames(); got[0] != "1" || got[1] != "2" {
		t.Errorf("community lists = %v", got)
	}
}

func TestRedistProtocolParseAndString(t *testing.T) {
	for _, s := range []string{"connected", "static", "ospf", "bgp"} {
		p, err := ParseRedistProtocol(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != s {
			t.Errorf("round trip %q -> %q", s, p.String())
		}
	}
	if p, err := ParseRedistProtocol("direct"); err != nil || p != RedistConnected {
		t.Error("direct should alias connected")
	}
	if _, err := ParseRedistProtocol("rip"); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestRouteProtocolRedistSource(t *testing.T) {
	cases := map[RouteProtocol]RedistProtocol{
		ProtoConnected: RedistConnected,
		ProtoStatic:    RedistStatic,
		ProtoOSPF:      RedistOSPF,
		ProtoBGP:       RedistBGP,
	}
	for rp, want := range cases {
		if rp.RedistSource() != want {
			t.Errorf("%v -> %v, want %v", rp, rp.RedistSource(), want)
		}
	}
}

func TestOSPFIsPassive(t *testing.T) {
	o := &OSPF{PassiveInterfaces: []string{"Loopback0"}}
	if !o.IsPassive("Loopback0") || o.IsPassive("eth0") {
		t.Error("passive lookup wrong")
	}
}

func TestPolicyCloneIndependent(t *testing.T) {
	p := &RoutePolicy{Name: "p", Clauses: []*PolicyClause{
		{Seq: 10, Action: Permit,
			Matches: []Match{MatchPrefixList{List: "l"}},
			Sets:    []SetAction{SetMED{MED: 1}}},
	}}
	c := p.Clone()
	c.Clauses[0].Action = Deny
	c.Clauses[0].Matches = append(c.Clauses[0].Matches, MatchProtocol{Protocol: RedistBGP})
	if p.Clauses[0].Action != Permit || len(p.Clauses[0].Matches) != 1 {
		t.Error("clone shares clause state")
	}
}

func TestParseWarningString(t *testing.T) {
	w := ParseWarning{Line: 3, Text: "bad line", Reason: "nonsense"}
	if w.String() != `line 3: nonsense: "bad line"` {
		t.Errorf("warning = %q", w.String())
	}
}

func TestMatchAndSetStrings(t *testing.T) {
	cases := map[string]string{
		MatchPrefixList{List: "l"}.MatchString():                             "prefix-list l",
		MatchCommunityList{List: "c"}.MatchString():                          "community-list c",
		MatchCommunityLiteral{Community: MustCommunity("1:2")}.MatchString(): "community-literal 1:2",
		MatchProtocol{Protocol: RedistOSPF}.MatchString():                    "protocol ospf",
		MatchASPathRegex{Regex: "^$"}.MatchString():                          "as-path ^$",
		SetMED{MED: 5}.SetString():                                           "med 5",
		SetLocalPref{Pref: 200}.SetString():                                  "local-preference 200",
		SetNextHop{Hop: 1}.SetString():                                       "next-hop 0.0.0.1",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
	sc := SetCommunity{Communities: []Community{MustCommunity("1:2")}, Additive: true}
	if sc.SetString() != "community 1:2 additive" {
		t.Errorf("set community = %q", sc.SetString())
	}
}
