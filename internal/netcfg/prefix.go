// Package netcfg defines the vendor-neutral intermediate representation (IR)
// shared by every other module in the repository: devices, interfaces, BGP and
// OSPF processes, prefix lists, community lists, and route policies, together
// with concrete route announcements and a reference evaluator for route
// policies.
//
// Both the Cisco and Juniper front ends parse into this IR; Campion diffs two
// IR devices; the Batfish substitute evaluates IR route policies; and the
// simulated LLM plans its output (and its injected errors) as IR mutations.
package netcfg

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 prefix: a 32-bit address plus a prefix length.
// Only the top Len bits of Addr are significant; constructors normalize the
// remaining bits to zero so Prefix values are comparable with ==.
type Prefix struct {
	Addr uint32
	Len  int
}

// Mask returns the network mask implied by the prefix length.
func Mask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - length)
}

// NewPrefix builds a normalized prefix from an address and length.
func NewPrefix(addr uint32, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & Mask(length), Len: length}
}

// ParseIP parses a dotted-quad IPv4 address into its 32-bit value.
func ParseIP(s string) (uint32, error) {
	parts := strings.Split(strings.TrimSpace(s), ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("invalid IPv4 address %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("invalid IPv4 address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return v, nil
}

// FormatIP renders a 32-bit value as a dotted quad.
func FormatIP(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", v>>24&0xff, v>>16&0xff, v>>8&0xff, v&0xff)
}

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("prefix %q missing /len", s)
	}
	addr, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	length, err := strconv.Atoi(s[slash+1:])
	if err != nil || length < 0 || length > 32 {
		return Prefix{}, fmt.Errorf("invalid prefix length in %q", s)
	}
	return NewPrefix(addr, length), nil
}

// MustPrefix is ParsePrefix that panics on error; intended for tests and
// compiled-in example data.
func MustPrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the prefix in "a.b.c.d/len" form.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", FormatIP(p.Addr), p.Len)
}

// Contains reports whether q falls inside p (q at least as long as p and
// matching p's significant bits).
func (p Prefix) Contains(q Prefix) bool {
	return q.Len >= p.Len && q.Addr&Mask(p.Len) == p.Addr
}

// ContainsIP reports whether the host address is inside the prefix.
func (p Prefix) ContainsIP(ip uint32) bool {
	return ip&Mask(p.Len) == p.Addr
}

// MaskString renders the prefix length as a dotted-quad netmask
// (e.g. 24 -> "255.255.255.0"), as used in Cisco interface syntax.
func (p Prefix) MaskString() string {
	return FormatIP(Mask(p.Len))
}

// WildcardString renders the inverted mask used by Cisco OSPF network
// statements (e.g. /24 -> "0.0.0.255").
func (p Prefix) WildcardString() string {
	return FormatIP(^Mask(p.Len))
}

// Network returns the prefix covering the subnet that contains this prefix's
// address with the given length.
func (p Prefix) Network(length int) Prefix {
	return NewPrefix(p.Addr, length)
}

// Community is a BGP standard community encoded as high<<16|low.
type Community uint32

// NewCommunity builds a community from its high and low 16-bit halves.
func NewCommunity(high, low uint16) Community {
	return Community(uint32(high)<<16 | uint32(low))
}

// ParseCommunity parses "high:low" notation.
func ParseCommunity(s string) (Community, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, fmt.Errorf("community %q missing ':'", s)
	}
	high, err := strconv.Atoi(s[:colon])
	if err != nil || high < 0 || high > 0xffff {
		return 0, fmt.Errorf("invalid community %q", s)
	}
	low, err := strconv.Atoi(s[colon+1:])
	if err != nil || low < 0 || low > 0xffff {
		return 0, fmt.Errorf("invalid community %q", s)
	}
	return NewCommunity(uint16(high), uint16(low)), nil
}

// MustCommunity is ParseCommunity that panics on error.
func MustCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders the community in "high:low" form.
func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff)
}
