package netcfg

import (
	"fmt"
	"sort"
)

// Vendor identifies the configuration dialect a Device was parsed from or
// will be printed as.
type Vendor int

// Supported vendors.
const (
	VendorUnknown Vendor = iota
	VendorCisco
	VendorJuniper
)

// String implements fmt.Stringer.
func (v Vendor) String() string {
	switch v {
	case VendorCisco:
		return "cisco"
	case VendorJuniper:
		return "juniper"
	default:
		return "unknown"
	}
}

// Device is the vendor-neutral model of a single router configuration.
type Device struct {
	Hostname string
	Vendor   Vendor

	Interfaces []*Interface
	BGP        *BGP
	OSPF       *OSPF

	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	RoutePolicies  map[string]*RoutePolicy

	StaticRoutes []StaticRoute

	// Stanzas records the provenance of an incrementally-assembled parse:
	// one ref per stanza of the source text, in order. Empty for devices
	// built by a whole parse or by hand; purely informational (semantic
	// equality between devices ignores it).
	Stanzas []StanzaRef
}

// NewDevice returns a Device with all maps initialized.
func NewDevice(hostname string, vendor Vendor) *Device {
	return &Device{
		Hostname:       hostname,
		Vendor:         vendor,
		PrefixLists:    make(map[string]*PrefixList),
		CommunityLists: make(map[string]*CommunityList),
		RoutePolicies:  make(map[string]*RoutePolicy),
	}
}

// Interface returns the named interface, or nil.
func (d *Device) Interface(name string) *Interface {
	for _, ifc := range d.Interfaces {
		if ifc.Name == name {
			return ifc
		}
	}
	return nil
}

// EnsureInterface returns the named interface, creating it if absent.
func (d *Device) EnsureInterface(name string) *Interface {
	if ifc := d.Interface(name); ifc != nil {
		return ifc
	}
	ifc := &Interface{Name: name}
	d.Interfaces = append(d.Interfaces, ifc)
	return ifc
}

// EnsureBGP returns the device's BGP process, creating it if absent.
func (d *Device) EnsureBGP(asn uint32) *BGP {
	if d.BGP == nil {
		d.BGP = &BGP{ASN: asn}
	}
	return d.BGP
}

// EnsureOSPF returns the device's OSPF process, creating it if absent.
func (d *Device) EnsureOSPF(process int) *OSPF {
	if d.OSPF == nil {
		d.OSPF = &OSPF{ProcessID: process}
	}
	return d.OSPF
}

// PolicyNames returns route-policy names in sorted order (for deterministic
// printing and diffing).
func (d *Device) PolicyNames() []string {
	names := make([]string, 0, len(d.RoutePolicies))
	for n := range d.RoutePolicies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PrefixListNames returns prefix-list names in sorted order.
func (d *Device) PrefixListNames() []string {
	names := make([]string, 0, len(d.PrefixLists))
	for n := range d.PrefixLists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CommunityListNames returns community-list names in sorted order.
func (d *Device) CommunityListNames() []string {
	names := make([]string, 0, len(d.CommunityLists))
	for n := range d.CommunityLists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone returns a deep copy of the device. The simulated LLM mutates clones
// so that error injection never corrupts the caller's golden model.
func (d *Device) Clone() *Device {
	c := NewDevice(d.Hostname, d.Vendor)
	for _, ifc := range d.Interfaces {
		dup := *ifc
		c.Interfaces = append(c.Interfaces, &dup)
	}
	if d.BGP != nil {
		b := *d.BGP
		b.Networks = append([]Prefix(nil), d.BGP.Networks...)
		b.Neighbors = nil
		for _, n := range d.BGP.Neighbors {
			dup := *n
			b.Neighbors = append(b.Neighbors, &dup)
		}
		b.Redistribute = append([]Redistribution(nil), d.BGP.Redistribute...)
		c.BGP = &b
	}
	if d.OSPF != nil {
		o := *d.OSPF
		o.Networks = append([]OSPFNetwork(nil), d.OSPF.Networks...)
		o.PassiveInterfaces = append([]string(nil), d.OSPF.PassiveInterfaces...)
		c.OSPF = &o
	}
	for name, pl := range d.PrefixLists {
		dup := *pl
		dup.Entries = append([]PrefixListEntry(nil), pl.Entries...)
		c.PrefixLists[name] = &dup
	}
	for name, cl := range d.CommunityLists {
		dup := *cl
		dup.Entries = append([]CommunityListEntry(nil), cl.Entries...)
		c.CommunityLists[name] = &dup
	}
	for name, rp := range d.RoutePolicies {
		c.RoutePolicies[name] = rp.Clone()
	}
	c.StaticRoutes = append([]StaticRoute(nil), d.StaticRoutes...)
	c.Stanzas = append([]StanzaRef(nil), d.Stanzas...)
	return c
}

// Interface is a router interface with its address and OSPF attributes.
type Interface struct {
	Name        string
	Description string
	Address     Prefix // host address with subnet length
	HasAddress  bool
	Shutdown    bool

	// OSPF link attributes (paper: "Different OSPF link cost",
	// "Different OSPF passive interface setting").
	OSPFCost    int // 0 = unset
	OSPFPassive bool
	OSPFArea    int64 // -1 = not enabled
}

// StaticRoute is a static route to a next hop.
type StaticRoute struct {
	Prefix  Prefix
	NextHop uint32
}

// BGP models a single BGP process.
type BGP struct {
	ASN          uint32
	RouterID     uint32 // 0 = unset
	Networks     []Prefix
	Neighbors    []*BGPNeighbor
	Redistribute []Redistribution
}

// Neighbor returns the neighbor with the given peer address, or nil.
func (b *BGP) Neighbor(addr uint32) *BGPNeighbor {
	for _, n := range b.Neighbors {
		if n.Addr == addr {
			return n
		}
	}
	return nil
}

// EnsureNeighbor returns the neighbor with the given address, creating it if
// absent.
func (b *BGP) EnsureNeighbor(addr uint32) *BGPNeighbor {
	if n := b.Neighbor(addr); n != nil {
		return n
	}
	n := &BGPNeighbor{Addr: addr}
	b.Neighbors = append(b.Neighbors, n)
	return n
}

// HasNetwork reports whether the process originates the given prefix.
func (b *BGP) HasNetwork(p Prefix) bool {
	for _, n := range b.Networks {
		if n == p {
			return true
		}
	}
	return false
}

// BGPNeighbor is one BGP peering session.
type BGPNeighbor struct {
	Addr        uint32
	RemoteAS    uint32
	LocalAS     uint32 // 0 = unset (paper: "Missing BGP local-as attribute")
	Description string

	ImportPolicy string // route-map / policy-statement applied on ingress
	ExportPolicy string // route-map / policy-statement applied on egress
}

// RedistProtocol enumerates source protocols for BGP redistribution.
type RedistProtocol int

// Redistribution source protocols.
const (
	RedistConnected RedistProtocol = iota
	RedistStatic
	RedistOSPF
	RedistBGP
)

// String implements fmt.Stringer.
func (p RedistProtocol) String() string {
	switch p {
	case RedistConnected:
		return "connected"
	case RedistStatic:
		return "static"
	case RedistOSPF:
		return "ospf"
	case RedistBGP:
		return "bgp"
	default:
		return fmt.Sprintf("redist(%d)", int(p))
	}
}

// ParseRedistProtocol parses a protocol keyword.
func ParseRedistProtocol(s string) (RedistProtocol, error) {
	switch s {
	case "connected", "direct":
		return RedistConnected, nil
	case "static":
		return RedistStatic, nil
	case "ospf":
		return RedistOSPF, nil
	case "bgp":
		return RedistBGP, nil
	default:
		return 0, fmt.Errorf("unknown redistribution protocol %q", s)
	}
}

// Redistribution is a "redistribute <proto> route-map <policy>" statement.
type Redistribution struct {
	Protocol RedistProtocol
	Policy   string // optional route map / policy name
}

// OSPF models a single OSPF process.
type OSPF struct {
	ProcessID         int
	RouterID          uint32
	Networks          []OSPFNetwork
	PassiveInterfaces []string
}

// OSPFNetwork is a "network <prefix> area <n>" statement.
type OSPFNetwork struct {
	Prefix Prefix
	Area   int64
}

// IsPassive reports whether the named interface is in the passive list.
func (o *OSPF) IsPassive(ifc string) bool {
	for _, p := range o.PassiveInterfaces {
		if p == ifc {
			return true
		}
	}
	return false
}
