package netcfg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func countingParser(calls *atomic.Int64) ParseFunc {
	return func(text string) *Parsed {
		calls.Add(1)
		return &Parsed{Device: NewDevice(text, VendorCisco)}
	}
}

func TestParseCacheParsesEachRevisionOnce(t *testing.T) {
	var calls atomic.Int64
	c := NewParseCache(countingParser(&calls))
	a1 := c.Parse("rev-a")
	a2 := c.Parse("rev-a")
	if a1 != a2 {
		t.Error("same revision must return the same shared product")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("parse calls = %d, want 1", got)
	}
	// A changed revision is a different key: it must be parsed anew.
	b := c.Parse("rev-b")
	if b == a1 {
		t.Error("different revision must not share a product")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("parse calls = %d, want 2", got)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestParseCacheConcurrent(t *testing.T) {
	var calls atomic.Int64
	c := NewParseCache(countingParser(&calls))
	const workers, revisions = 8, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rev := fmt.Sprintf("rev-%d", (i+w)%revisions)
				if p := c.Parse(rev); p.Device.Hostname != rev {
					t.Errorf("wrong product for %s", rev)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != revisions {
		t.Errorf("len = %d, want %d", c.Len(), revisions)
	}
	hits, misses := c.Stats()
	if hits+misses != workers*200 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, workers*200)
	}
}

// TestParseCacheStripedHammer drives every stripe of the sharded revision
// map from 16 goroutines at once — enough concurrent writers that a
// single-mutex regression shows up under -race and as contention, and
// enough distinct revisions (512, SHA-keyed) that all 64 shards see
// traffic. Every caller must observe the one shared product per revision.
func TestParseCacheStripedHammer(t *testing.T) {
	var calls atomic.Int64
	c := NewParseCache(countingParser(&calls))
	const workers, revisions, rounds = 16, 512, 300
	products := make([]atomic.Pointer[Parsed], revisions)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				n := (i*workers + w*7) % revisions
				p := c.Parse(fmt.Sprintf("rev-%d", n))
				if prev := products[n].Swap(p); prev != nil && prev != p {
					t.Errorf("revision %d returned two distinct products", n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != revisions {
		t.Errorf("len = %d, want %d", c.Len(), revisions)
	}
	// First-writer-wins dedup may parse a colliding revision twice, but
	// the cache must never under-parse.
	if got := calls.Load(); got < revisions {
		t.Errorf("parse calls = %d, want >= %d", got, revisions)
	}
}
