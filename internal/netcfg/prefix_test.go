package netcfg

import (
	"testing"
	"testing/quick"
)

func TestParseFormatIPRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		got, err := ParseIP(FormatIP(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.0.0.0"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) should fail", s)
		}
	}
}

func TestParsePrefixNormalizesHostBits(t *testing.T) {
	p, err := ParsePrefix("10.1.2.3/8")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("got %s, want 10.0.0.0/8", p)
	}
}

func TestParsePrefixRejectsMalformed(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x", "1.2.3.0/24-32"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", s)
		}
	}
}

func TestMaskBoundaries(t *testing.T) {
	cases := map[int]uint32{
		0:  0,
		8:  0xff000000,
		24: 0xffffff00,
		32: 0xffffffff,
		-3: 0,
		40: 0xffffffff,
	}
	for length, want := range cases {
		if got := Mask(length); got != want {
			t.Errorf("Mask(%d) = %#x, want %#x", length, got, want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustPrefix("10.0.0.0/8")
	cases := []struct {
		q    string
		want bool
	}{
		{"10.0.0.0/8", true},
		{"10.1.0.0/16", true},
		{"10.255.255.255/32", true},
		{"11.0.0.0/8", false},
		{"0.0.0.0/0", false}, // shorter prefix is not contained
	}
	for _, c := range cases {
		if got := p.Contains(MustPrefix(c.q)); got != c.want {
			t.Errorf("Contains(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPrefixContainsIsPartialOrder(t *testing.T) {
	f := func(a, b uint32, la, lb uint8) bool {
		p := NewPrefix(a, int(la%33))
		q := NewPrefix(b, int(lb%33))
		if p.Contains(q) && q.Contains(p) {
			return p == q // antisymmetry
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskAndWildcardStrings(t *testing.T) {
	p := MustPrefix("1.2.3.0/24")
	if p.MaskString() != "255.255.255.0" {
		t.Errorf("mask = %s", p.MaskString())
	}
	if p.WildcardString() != "0.0.0.255" {
		t.Errorf("wildcard = %s", p.WildcardString())
	}
}

func TestCommunityRoundTrip(t *testing.T) {
	f := func(high, low uint16) bool {
		c := NewCommunity(high, low)
		got, err := ParseCommunity(c.String())
		return err == nil && got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCommunityRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "100", "100:", ":1", "65536:1", "100:65536", "a:b", "100:1:2"} {
		if _, err := ParseCommunity(s); err == nil {
			t.Errorf("ParseCommunity(%q) should fail", s)
		}
	}
}
