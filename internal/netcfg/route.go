package netcfg

import (
	"fmt"
	"sort"
	"strings"
)

// RouteProtocol identifies where a candidate route came from.
type RouteProtocol int

// Route origins used by policy evaluation and the BGP simulator.
const (
	ProtoConnected RouteProtocol = iota
	ProtoStatic
	ProtoOSPF
	ProtoBGP
)

// String implements fmt.Stringer.
func (p RouteProtocol) String() string {
	switch p {
	case ProtoConnected:
		return "connected"
	case ProtoStatic:
		return "static"
	case ProtoOSPF:
		return "ospf"
	case ProtoBGP:
		return "bgp"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// RedistSource converts a route protocol to the equivalent redistribution
// protocol keyword.
func (p RouteProtocol) RedistSource() RedistProtocol {
	switch p {
	case ProtoConnected:
		return RedistConnected
	case ProtoStatic:
		return RedistStatic
	case ProtoOSPF:
		return RedistOSPF
	default:
		return RedistBGP
	}
}

// Route is a concrete route announcement: the unit of policy evaluation,
// counterexample reporting, and BGP propagation.
type Route struct {
	Prefix      Prefix
	Protocol    RouteProtocol
	NextHop     uint32
	MED         int
	LocalPref   int
	ASPath      []uint32
	Communities map[Community]bool
}

// NewRoute returns a BGP route for the prefix with default attributes
// (local-pref 100, empty AS path, no communities).
func NewRoute(p Prefix) *Route {
	return &Route{
		Prefix:      p,
		Protocol:    ProtoBGP,
		LocalPref:   100,
		Communities: make(map[Community]bool),
	}
}

// Clone deep-copies the route.
func (r *Route) Clone() *Route {
	c := *r
	c.ASPath = append([]uint32(nil), r.ASPath...)
	c.Communities = make(map[Community]bool, len(r.Communities))
	for k, v := range r.Communities {
		if v {
			c.Communities[k] = true
		}
	}
	return &c
}

// AddCommunity tags the route with a community.
func (r *Route) AddCommunity(c Community) {
	if r.Communities == nil {
		r.Communities = make(map[Community]bool)
	}
	r.Communities[c] = true
}

// HasCommunity reports whether the route carries the community.
func (r *Route) HasCommunity(c Community) bool { return r.Communities[c] }

// CommunityStrings returns the route's communities sorted for display.
func (r *Route) CommunityStrings() []string {
	out := make([]string, 0, len(r.Communities))
	for c, ok := range r.Communities {
		if ok {
			out = append(out, c.String())
		}
	}
	sort.Strings(out)
	return out
}

// HasASInPath reports whether the AS path contains the given ASN.
func (r *Route) HasASInPath(asn uint32) bool {
	for _, a := range r.ASPath {
		if a == asn {
			return true
		}
	}
	return false
}

// String renders the route for transcripts and counterexample prompts.
func (r *Route) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s proto=%s", r.Prefix, r.Protocol)
	if len(r.ASPath) > 0 {
		parts := make([]string, len(r.ASPath))
		for i, a := range r.ASPath {
			parts[i] = fmt.Sprint(a)
		}
		fmt.Fprintf(&b, " as-path=[%s]", strings.Join(parts, " "))
	}
	if comms := r.CommunityStrings(); len(comms) > 0 {
		fmt.Fprintf(&b, " communities=[%s]", strings.Join(comms, " "))
	}
	if r.MED != 0 {
		fmt.Fprintf(&b, " med=%d", r.MED)
	}
	return b.String()
}

// PolicyEnv supplies the named lists a policy's matches refer to.
// A *Device satisfies it directly.
type PolicyEnv interface {
	LookupPrefixList(name string) *PrefixList
	LookupCommunityList(name string) *CommunityList
}

// LookupPrefixList implements PolicyEnv.
func (d *Device) LookupPrefixList(name string) *PrefixList { return d.PrefixLists[name] }

// LookupCommunityList implements PolicyEnv.
func (d *Device) LookupCommunityList(name string) *CommunityList { return d.CommunityLists[name] }

// EvalResult is the outcome of evaluating a policy on a route.
type EvalResult struct {
	Permitted bool
	Route     *Route // transformed route (nil when denied)
	ClauseSeq int    // sequence of the deciding clause, -1 for implicit deny
}

// EvalPolicy is the reference concrete evaluator: clauses are tried in
// order; within a clause all matches must hold (AND); the first matching
// clause's action decides; a route matching no clause is denied
// (implicit deny at the end, Cisco semantics).
func EvalPolicy(p *RoutePolicy, env PolicyEnv, r *Route) EvalResult {
	if p == nil {
		// No policy attached: default permit (routes flow unfiltered).
		return EvalResult{Permitted: true, Route: r.Clone(), ClauseSeq: -1}
	}
	for _, cl := range p.Clauses {
		if !clauseMatches(cl, env, r) {
			continue
		}
		if cl.Action == Deny {
			return EvalResult{Permitted: false, ClauseSeq: cl.Seq}
		}
		out := r.Clone()
		ApplySets(cl.Sets, out)
		return EvalResult{Permitted: true, Route: out, ClauseSeq: cl.Seq}
	}
	return EvalResult{Permitted: false, ClauseSeq: -1}
}

func clauseMatches(cl *PolicyClause, env PolicyEnv, r *Route) bool {
	for _, m := range cl.Matches {
		if !EvalMatch(m, env, r) {
			return false
		}
	}
	return true
}

// EvalMatch evaluates a single match condition on a concrete route.
func EvalMatch(m Match, env PolicyEnv, r *Route) bool {
	switch m := m.(type) {
	case MatchPrefixList:
		pl := env.LookupPrefixList(m.List)
		if pl == nil {
			return false // undefined list matches nothing
		}
		return pl.Matches(r.Prefix)
	case MatchCommunityList:
		cl := env.LookupCommunityList(m.List)
		if cl == nil {
			return false
		}
		return cl.Matches(r.Communities)
	case MatchCommunityLiteral:
		return r.HasCommunity(m.Community)
	case MatchRouteFilter:
		return m.MatchesPrefix(r.Prefix)
	case MatchProtocol:
		return r.Protocol.RedistSource() == m.Protocol
	case MatchASPathRegex:
		return matchASPathRegex(m.Regex, r.ASPath)
	default:
		return false
	}
}

// ApplySets applies set actions to a route in place.
func ApplySets(sets []SetAction, r *Route) {
	for _, s := range sets {
		switch s := s.(type) {
		case SetMED:
			r.MED = s.MED
		case SetLocalPref:
			r.LocalPref = s.Pref
		case SetCommunity:
			if !s.Additive {
				r.Communities = make(map[Community]bool)
			}
			for _, c := range s.Communities {
				r.AddCommunity(c)
			}
		case SetNextHop:
			r.NextHop = s.Hop
		}
	}
}

// matchASPathRegex supports the tiny AS-path regex subset that appears in
// generated configs: "^$" (empty path), "^N_" (first hop), "_N_"
// (contains N), and "_N$" (originated by N).
func matchASPathRegex(re string, path []uint32) bool {
	switch {
	case re == "^$":
		return len(path) == 0
	case strings.HasPrefix(re, "^") && strings.HasSuffix(re, "_"):
		n, err := parseASN(re[1 : len(re)-1])
		if err != nil {
			return false
		}
		return len(path) > 0 && path[0] == n
	case strings.HasPrefix(re, "_") && strings.HasSuffix(re, "$"):
		n, err := parseASN(re[1 : len(re)-1])
		if err != nil {
			return false
		}
		return len(path) > 0 && path[len(path)-1] == n
	case strings.HasPrefix(re, "_") && strings.HasSuffix(re, "_"):
		n, err := parseASN(re[1 : len(re)-1])
		if err != nil {
			return false
		}
		for _, a := range path {
			if a == n {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func parseASN(s string) (uint32, error) {
	var n uint32
	if s == "" {
		return 0, fmt.Errorf("empty ASN")
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid ASN %q", s)
		}
		n = n*10 + uint32(c-'0')
	}
	return n, nil
}
