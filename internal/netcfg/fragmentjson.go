package netcfg

import (
	"encoding/json"
	"fmt"
)

// This file gives the stanza sub-cache a durable on-disk form: one
// fragment parse serialized as JSON. Everything in Device marshals
// structurally except PolicyClause, whose Matches and Sets are interface
// values — those get a tagged-union codec so a decoded clause round-trips
// to the same concrete types the parser produced.

// fragmentEntry is the durable payload of one stanza's fragment parse.
// CheckWarnings are deliberately absent: fragments carry parser warnings
// only; cross-stanza lint always runs on the assembled device.
type fragmentEntry struct {
	Device   *Device        `json:"device"`
	Warnings []ParseWarning `json:"warnings,omitempty"`
}

// encodeFragment serializes a fragment parse for the durable tier.
func encodeFragment(p *Parsed) ([]byte, error) {
	return json.Marshal(fragmentEntry{Device: p.Device, Warnings: p.ParseWarnings})
}

// decodeFragment deserializes a durable fragment entry. A payload that
// fails to decode is treated by the caller as a miss, never an error.
func decodeFragment(payload []byte) (*Parsed, error) {
	var e fragmentEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return nil, err
	}
	if e.Device == nil {
		return nil, fmt.Errorf("netcfg: fragment entry has no device")
	}
	// Assembly copies map entries into a fresh NewDevice, but a decoded
	// single-fragment device may be consulted directly — normalize nil maps.
	if e.Device.PrefixLists == nil {
		e.Device.PrefixLists = map[string]*PrefixList{}
	}
	if e.Device.CommunityLists == nil {
		e.Device.CommunityLists = map[string]*CommunityList{}
	}
	if e.Device.RoutePolicies == nil {
		e.Device.RoutePolicies = map[string]*RoutePolicy{}
	}
	return &Parsed{Device: e.Device, ParseWarnings: e.Warnings}, nil
}

// taggedValue is the wire form of one Match or SetAction: a type tag
// naming the concrete struct, and its fields.
type taggedValue struct {
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// policyClauseJSON is the wire form of PolicyClause.
type policyClauseJSON struct {
	Seq     int           `json:"seq"`
	Action  Action        `json:"action"`
	Matches []taggedValue `json:"matches,omitempty"`
	Sets    []taggedValue `json:"sets,omitempty"`
}

// MarshalJSON implements json.Marshaler with a tagged union for the
// interface-typed Matches and Sets.
func (c *PolicyClause) MarshalJSON() ([]byte, error) {
	out := policyClauseJSON{Seq: c.Seq, Action: c.Action}
	for _, m := range c.Matches {
		tv, err := encodeMatch(m)
		if err != nil {
			return nil, err
		}
		out.Matches = append(out.Matches, tv)
	}
	for _, s := range c.Sets {
		tv, err := encodeSet(s)
		if err != nil {
			return nil, err
		}
		out.Sets = append(out.Sets, tv)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *PolicyClause) UnmarshalJSON(data []byte) error {
	var in policyClauseJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	c.Seq = in.Seq
	c.Action = in.Action
	c.Matches = nil
	c.Sets = nil
	for _, tv := range in.Matches {
		m, err := decodeMatch(tv)
		if err != nil {
			return err
		}
		c.Matches = append(c.Matches, m)
	}
	for _, tv := range in.Sets {
		s, err := decodeSet(tv)
		if err != nil {
			return err
		}
		c.Sets = append(c.Sets, s)
	}
	return nil
}

func encodeTagged(tag string, v any) (taggedValue, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return taggedValue{}, err
	}
	return taggedValue{Type: tag, Data: data}, nil
}

func encodeMatch(m Match) (taggedValue, error) {
	switch mm := m.(type) {
	case MatchPrefixList:
		return encodeTagged("prefix-list", mm)
	case MatchCommunityList:
		return encodeTagged("community-list", mm)
	case MatchCommunityLiteral:
		return encodeTagged("community-literal", mm)
	case MatchProtocol:
		return encodeTagged("protocol", mm)
	case MatchASPathRegex:
		return encodeTagged("as-path", mm)
	case MatchRouteFilter:
		return encodeTagged("route-filter", mm)
	default:
		return taggedValue{}, fmt.Errorf("netcfg: unencodable match %T", m)
	}
}

func decodeMatch(tv taggedValue) (Match, error) {
	switch tv.Type {
	case "prefix-list":
		var m MatchPrefixList
		return m, json.Unmarshal(tv.Data, &m)
	case "community-list":
		var m MatchCommunityList
		return m, json.Unmarshal(tv.Data, &m)
	case "community-literal":
		var m MatchCommunityLiteral
		return m, json.Unmarshal(tv.Data, &m)
	case "protocol":
		var m MatchProtocol
		return m, json.Unmarshal(tv.Data, &m)
	case "as-path":
		var m MatchASPathRegex
		return m, json.Unmarshal(tv.Data, &m)
	case "route-filter":
		var m MatchRouteFilter
		return m, json.Unmarshal(tv.Data, &m)
	default:
		return nil, fmt.Errorf("netcfg: unknown match tag %q", tv.Type)
	}
}

func encodeSet(s SetAction) (taggedValue, error) {
	switch ss := s.(type) {
	case SetMED:
		return encodeTagged("med", ss)
	case SetLocalPref:
		return encodeTagged("local-preference", ss)
	case SetCommunity:
		return encodeTagged("community", ss)
	case SetNextHop:
		return encodeTagged("next-hop", ss)
	default:
		return taggedValue{}, fmt.Errorf("netcfg: unencodable set action %T", s)
	}
}

func decodeSet(tv taggedValue) (SetAction, error) {
	switch tv.Type {
	case "med":
		var s SetMED
		return s, json.Unmarshal(tv.Data, &s)
	case "local-preference":
		var s SetLocalPref
		return s, json.Unmarshal(tv.Data, &s)
	case "community":
		var s SetCommunity
		return s, json.Unmarshal(tv.Data, &s)
	case "next-hop":
		var s SetNextHop
		return s, json.Unmarshal(tv.Data, &s)
	default:
		return nil, fmt.Errorf("netcfg: unknown set tag %q", tv.Type)
	}
}
