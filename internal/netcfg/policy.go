package netcfg

import (
	"fmt"
	"sort"
	"strings"
)

// Action is the disposition of a policy clause or list entry.
type Action int

// Permit and Deny dispositions.
const (
	Deny Action = iota
	Permit
)

// String implements fmt.Stringer.
func (a Action) String() string {
	if a == Permit {
		return "permit"
	}
	return "deny"
}

// PrefixList is a named ordered list of prefix match entries.
type PrefixList struct {
	Name    string
	Entries []PrefixListEntry
}

// PrefixListEntry is one sequence entry. Ge/Le of zero mean "unset"; an
// unset bound defaults to exactly the entry prefix length (Cisco semantics).
type PrefixListEntry struct {
	Seq    int
	Action Action
	Prefix Prefix
	Ge     int
	Le     int
}

// Bounds returns the effective [min,max] matched prefix-length range.
func (e PrefixListEntry) Bounds() (min, max int) {
	min, max = e.Prefix.Len, e.Prefix.Len
	if e.Ge > 0 {
		min = e.Ge
		max = 32 // "ge N" alone admits any longer prefix
	}
	if e.Le > 0 {
		max = e.Le
	}
	if max < min {
		max = min
	}
	return min, max
}

// MatchesPrefix reports whether a concrete announced prefix matches the
// entry (regardless of the entry's action).
func (e PrefixListEntry) MatchesPrefix(p Prefix) bool {
	min, max := e.Bounds()
	if p.Len < min || p.Len > max {
		return false
	}
	return p.Addr&Mask(e.Prefix.Len) == e.Prefix.Addr
}

// Matches evaluates the full list against a prefix: first matching entry
// wins; a permit entry matches the list, a deny entry rejects it; no match
// rejects (implicit deny).
func (l *PrefixList) Matches(p Prefix) bool {
	for _, e := range l.Entries {
		if e.MatchesPrefix(p) {
			return e.Action == Permit
		}
	}
	return false
}

// CommunityList is a named list of community match entries.
type CommunityList struct {
	Name    string
	Entries []CommunityListEntry
}

// CommunityListEntry permits or denies routes carrying a community.
type CommunityListEntry struct {
	Action    Action
	Community Community
}

// Matches reports whether a route carrying the given communities matches the
// list: first entry whose community is present decides.
func (l *CommunityList) Matches(comms map[Community]bool) bool {
	for _, e := range l.Entries {
		if comms[e.Community] {
			return e.Action == Permit
		}
	}
	return false
}

// RoutePolicy is a vendor-neutral route map / policy statement: an ordered
// sequence of clauses ("stanzas" / "terms"). Within a clause all matches are
// ANDed; across clauses the first matching clause decides — the exact
// semantics whose AND/OR distinction GPT-4 confused in the paper (§4.2).
type RoutePolicy struct {
	Name    string
	Clauses []*PolicyClause
}

// Clone deep-copies the policy.
func (p *RoutePolicy) Clone() *RoutePolicy {
	c := &RoutePolicy{Name: p.Name}
	for _, cl := range p.Clauses {
		dup := &PolicyClause{Seq: cl.Seq, Action: cl.Action}
		dup.Matches = append([]Match(nil), cl.Matches...)
		dup.Sets = append([]SetAction(nil), cl.Sets...)
		c.Clauses = append(c.Clauses, dup)
	}
	return c
}

// Clause returns the clause with the given sequence number, or nil.
func (p *RoutePolicy) Clause(seq int) *PolicyClause {
	for _, c := range p.Clauses {
		if c.Seq == seq {
			return c
		}
	}
	return nil
}

// SortClauses orders clauses by sequence number.
func (p *RoutePolicy) SortClauses() {
	sort.SliceStable(p.Clauses, func(i, j int) bool {
		return p.Clauses[i].Seq < p.Clauses[j].Seq
	})
}

// PolicyClause is one stanza/term: ANDed matches, an action, and attribute
// set actions applied when the clause fires with a Permit action.
type PolicyClause struct {
	Seq     int
	Action  Action
	Matches []Match
	Sets    []SetAction
}

// String renders a compact debugging form.
func (c *PolicyClause) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d", c.Action, c.Seq)
	for _, m := range c.Matches {
		fmt.Fprintf(&b, " [%s]", m.MatchString())
	}
	for _, s := range c.Sets {
		fmt.Fprintf(&b, " {%s}", s.SetString())
	}
	return b.String()
}

// Match is a clause match condition.
type Match interface {
	// MatchString renders a vendor-neutral description of the condition.
	MatchString() string
}

// MatchPrefixList matches routes whose prefix is permitted by a named
// prefix list.
type MatchPrefixList struct{ List string }

// MatchString implements Match.
func (m MatchPrefixList) MatchString() string { return "prefix-list " + m.List }

// MatchCommunityList matches routes carrying a community permitted by a
// named community list.
type MatchCommunityList struct{ List string }

// MatchString implements Match.
func (m MatchCommunityList) MatchString() string { return "community-list " + m.List }

// MatchCommunityLiteral matches a literal community. This is *invalid* in
// Cisco route maps (the paper's "Match Community" error: GPT-4 writes
// "match community 100:1" instead of referencing a community list); the IR
// keeps it representable so that the syntax checker can flag it.
type MatchCommunityLiteral struct{ Community Community }

// MatchString implements Match.
func (m MatchCommunityLiteral) MatchString() string {
	return "community-literal " + m.Community.String()
}

// MatchProtocol matches the protocol a candidate route came from
// (Juniper "from bgp" / Cisco redistribution source). Central to the
// paper's "Different redistribution into BGP" error.
type MatchProtocol struct{ Protocol RedistProtocol }

// MatchString implements Match.
func (m MatchProtocol) MatchString() string { return "protocol " + m.Protocol.String() }

// MatchASPathRegex matches an AS-path regular expression (the "innovative
// strategy" GPT-4 produced for global no-transit prompts, §4.1).
type MatchASPathRegex struct{ Regex string }

// MatchString implements Match.
func (m MatchASPathRegex) MatchString() string { return "as-path " + m.Regex }

// SetAction is a clause attribute-transform action.
type SetAction interface {
	// SetString renders a vendor-neutral description of the action.
	SetString() string
}

// SetMED sets the BGP MED attribute (paper: "Setting wrong BGP MED value").
type SetMED struct{ MED int }

// SetString implements SetAction.
func (s SetMED) SetString() string { return fmt.Sprintf("med %d", s.MED) }

// SetLocalPref sets the BGP local preference.
type SetLocalPref struct{ Pref int }

// SetString implements SetAction.
func (s SetLocalPref) SetString() string { return fmt.Sprintf("local-preference %d", s.Pref) }

// SetCommunity sets or adds communities. Additive=false *replaces* the
// route's communities — the distinction behind the paper's "Adding
// Communities" IIP (§4.2: GPT-4 forgets the 'additive' keyword).
type SetCommunity struct {
	Communities []Community
	Additive    bool
}

// SetString implements SetAction.
func (s SetCommunity) SetString() string {
	parts := make([]string, len(s.Communities))
	for i, c := range s.Communities {
		parts[i] = c.String()
	}
	out := "community " + strings.Join(parts, " ")
	if s.Additive {
		out += " additive"
	}
	return out
}

// SetNextHop sets the BGP next hop.
type SetNextHop struct{ Hop uint32 }

// SetString implements SetAction.
func (s SetNextHop) SetString() string { return "next-hop " + FormatIP(s.Hop) }
