package netcfg

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Stanza is one addressable segment of a configuration text: an interface
// block, a routing-process block, one route map or policy statement, a run
// of prefix-list or static-route lines, and so on. Splitting is purely
// textual and lossless — Text keeps every byte of the segment (newlines
// included), so concatenating a split in order reproduces the original
// configuration exactly. Stanzas are the unit of the incremental pipeline:
// the parse cache reuses unchanged stanzas by digest, and the batch
// protocol ships only the stanzas that changed between revisions.
type Stanza struct {
	Kind string // dialect-specific block class ("interface", "route-map", ...)
	Name string // block identity within the kind, "" when anonymous
	Line int    // 1-based line number of the stanza's first line
	Text string // raw bytes of the segment, newline-inclusive
}

// Digest returns the hex SHA-256 of the stanza text — the stable identity
// used by the stanza sub-cache and the delta wire protocol.
func (s Stanza) Digest() string {
	sum := sha256.Sum256([]byte(s.Text))
	return hex.EncodeToString(sum[:])
}

// JoinStanzas reassembles the original configuration text from a split.
func JoinStanzas(stanzas []Stanza) string {
	var b strings.Builder
	for _, s := range stanzas {
		b.WriteString(s.Text)
	}
	return b.String()
}

// StanzaRef records the provenance of one stanza on a parsed Device: which
// block classes the text contained, where each began, and the raw content
// digest its fragment parse is cached under (hex-encode for display — the
// raw form keeps the hot incremental-parse path free of per-stanza string
// allocation).
type StanzaRef struct {
	Kind   string
	Name   string
	Digest [sha256.Size]byte
	Line   int
}

// StanzaRefs summarizes a split for Device provenance.
func StanzaRefs(stanzas []Stanza) []StanzaRef {
	refs := make([]StanzaRef, len(stanzas))
	for i, s := range stanzas {
		refs[i] = StanzaRef{Kind: s.Kind, Name: s.Name,
			Digest: sha256.Sum256([]byte(s.Text)), Line: s.Line}
	}
	return refs
}

// splitRefs derives the provenance refs of a lossless split from the
// already-converted text bytes: because JoinStanzas over the split
// reproduces text exactly, each stanza's bytes are a contiguous window of
// b, so hashing all stanzas costs no per-stanza copies. Falls back to the
// per-stanza path if the split turns out not to cover the text (a splitter
// bug — the result is still correct, just slower).
func splitRefs(b []byte, stanzas []Stanza) []StanzaRef {
	total := 0
	for _, s := range stanzas {
		total += len(s.Text)
	}
	if total != len(b) {
		return StanzaRefs(stanzas)
	}
	refs := make([]StanzaRef, len(stanzas))
	off := 0
	for i, s := range stanzas {
		refs[i] = StanzaRef{Kind: s.Kind, Name: s.Name,
			Digest: sha256.Sum256(b[off : off+len(s.Text)]), Line: s.Line}
		off += len(s.Text)
	}
	return refs
}

// BlobStore is the durable tier seam of the stanza sub-cache: a
// content-addressed key/value store with JSON payloads. durable.Cache
// satisfies it; the interface lives here so netcfg does not import the
// durable package.
type BlobStore interface {
	Get(key [sha256.Size]byte) ([]byte, bool)
	Put(key [sha256.Size]byte, payload []byte) error
}

// StanzaSupport wires a dialect's splitter into a ParseCache. All three
// hooks may decline: Split returns ok=false when the dialect cannot be
// segmented safely (the cache falls back to a whole parse), ParseFragment
// returns the parse product of one isolated stanza (parser warnings only —
// cross-stanza lint runs after assembly), and Assemble merges the fragment
// products back into one device, returning ok=false whenever isolation
// would change the result (the cache again falls back to a whole parse).
// Assemble receives the refs the cache already derived (each stanza's
// digest is computed exactly once per parse, shared between the fragment
// lookup and device provenance).
type StanzaSupport struct {
	Split         func(text string) ([]Stanza, bool)
	ParseFragment func(st Stanza) *Parsed
	Assemble      func(stanzas []Stanza, refs []StanzaRef, frags []*Parsed) (*Parsed, bool)

	// SplitResume, when non-nil, is a resumable splitter: it splits text
	// assuming the dialect parser enters it in the given state (atTop,
	// first line numbered startLine) and reports each stanza's entry state
	// alongside the split. It powers the split memo: a revision that
	// shares a byte prefix with a recently split text reuses the prefix's
	// stanzas and refs outright and re-splits only the changed tail, from
	// the recorded state. The resumed split may group the seam differently
	// than a fresh whole split would (a continuation line can open its own
	// stanza instead of gluing); that never changes the assembled result —
	// merge-sensitive kinds collide at assembly and fall back to a whole
	// parse, append-merge kinds assemble identically — it only costs the
	// fallback.
	SplitResume func(text string, atTop bool, startLine int) (stanzas []Stanza, atTops []bool, ok bool)
}

// fragmentKey is the durable-tier content address of one stanza's fragment
// parse. It is derived from the stanza's raw digest (already computed once
// per parse for the StanzaRefs provenance) rather than re-hashing the
// stanza text; the prefix keeps stanza entries disjoint from the suite.Key
// result entries that share the same durable directory.
func fragmentKey(digest [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte("cfg-stanza\x00"))
	h.Write(digest[:])
	var key [sha256.Size]byte
	copy(key[:], h.Sum(nil))
	return key
}

// EnableStanzas mounts dialect stanza support on the cache. Must be called
// before the cache is shared between goroutines (it is wired at
// construction by batfish.NewParseCache).
func (c *ParseCache) EnableStanzas(s StanzaSupport) {
	if s.Split == nil || s.ParseFragment == nil || s.Assemble == nil {
		return
	}
	c.stanza = &s
	for i := range c.fragShards {
		c.fragShards[i].entries = map[[sha256.Size]byte]*Parsed{}
	}
}

// SetFragmentStore mounts a durable tier under the stanza sub-cache:
// fragment parses missing in memory are looked up on disk before parsing,
// and fresh fragment parses are persisted. Safe to call while the cache is
// in use.
func (c *ParseCache) SetFragmentStore(store BlobStore) {
	if store == nil {
		return
	}
	c.fragStore.Store(&store)
}

// FragmentStats returns the stanza sub-cache counters: in-memory hits,
// misses (distinct stanzas parsed), and durable-tier promotions.
func (c *ParseCache) FragmentStats() (hits, misses, diskHits uint64) {
	return c.fragHits.Value(), c.fragMisses.Value(), c.fragDiskHits.Value()
}

// stanzaParse attempts the incremental path for one whole-config miss:
// split, reuse or parse each stanza fragment by digest, reassemble. A nil
// return means "take the whole-parse path". b is the caller's byte
// conversion of text, shared so the digest passes don't re-copy it.
func (c *ParseCache) stanzaParse(text string, b []byte) *Parsed {
	stanzas, refs := c.splitWithMemo(text, b)
	if len(stanzas) == 0 {
		return nil
	}
	frags := make([]*Parsed, len(stanzas))
	for i, st := range stanzas {
		frags[i] = c.fragment(st, refs[i].Digest)
		if frags[i] == nil {
			return nil
		}
	}
	p, ok := c.stanza.Assemble(stanzas, refs, frags)
	if !ok {
		return nil
	}
	return p
}

// splitMemoSize bounds the ring of recent splits kept for prefix reuse. A
// repair loop's working set is the handful of configs currently being
// revised; eight entries cover a parallel worker pool without making the
// candidate scan noticeable.
const splitMemoSize = 8

// splitMemo is one remembered split: the text it describes and the
// artifacts a prefix-sharing revision can reuse. Entries are immutable
// once published.
type splitMemo struct {
	text    string
	stanzas []Stanza
	atTops  []bool
	starts  []int // byte offset of each stanza, derived once from the lens
	refs    []StanzaRef
}

// splitWithMemo splits text and derives its refs, reusing the longest
// usable prefix of a recently split text when the dialect supports
// resumable splits. Returns empty stanzas when the dialect declines.
func (c *ParseCache) splitWithMemo(text string, b []byte) ([]Stanza, []StanzaRef) {
	sr := c.stanza.SplitResume
	if sr == nil {
		stanzas, ok := c.stanza.Split(text)
		if !ok {
			return nil, nil
		}
		return stanzas, splitRefs(b, stanzas)
	}

	// Pick the remembered split sharing the longest byte prefix. The first
	// bytes discriminate cheaply (configs open with their hostname), so
	// most entries drop out before the full comparison.
	var best *splitMemo
	bestLCP := 0
	c.memoMu.Lock()
	ring := c.memoRing
	c.memoMu.Unlock()
	for _, e := range ring {
		if e == nil || !quickPrefixMatch(text, e.text) {
			continue
		}
		if l := commonPrefixLen(text, e.text); l > bestLCP {
			best, bestLCP = e, l
		}
	}

	var stanzas []Stanza
	var atTops []bool
	var refs []StanzaRef
	// j = number of leading stanzas of best that lie entirely within the
	// common prefix; those split (and hashed) identically for text, so
	// they are reused verbatim and only text[starts[j]:] is re-split from
	// the recorded entry state.
	j := 0
	if best != nil {
		j = sort.Search(len(best.starts), func(i int) bool {
			return best.starts[i] > bestLCP
		}) - 1
	}
	if j >= 1 {
		off := best.starts[j]
		tail, tailTops, ok := sr(text[off:], best.atTops[j], best.stanzas[j].Line)
		if !ok {
			return nil, nil
		}
		stanzas = append(best.stanzas[:j:j], tail...)
		atTops = append(best.atTops[:j:j], tailTops...)
		refs = append(best.refs[:j:j], splitRefs(b[off:], tail)...)
	} else {
		var ok bool
		stanzas, atTops, ok = sr(text, true, 1)
		if !ok {
			return nil, nil
		}
		refs = splitRefs(b, stanzas)
	}
	if len(stanzas) == 0 {
		return nil, nil
	}

	starts := make([]int, len(stanzas))
	off := 0
	for i, st := range stanzas {
		starts[i] = off
		off += len(st.Text)
	}
	entry := &splitMemo{text: text, stanzas: stanzas, atTops: atTops,
		starts: starts, refs: refs}
	c.memoMu.Lock()
	c.memoRing[c.memoNext%splitMemoSize] = entry
	c.memoNext++
	c.memoMu.Unlock()
	return stanzas, refs
}

// quickPrefixMatch screens memo candidates by their first bytes.
func quickPrefixMatch(a, b string) bool {
	n := 64
	if len(a) < n || len(b) < n {
		n = min(len(a), len(b))
	}
	return a[:n] == b[:n]
}

// commonPrefixLen returns the length of the longest common prefix of a and
// b, probing in doubling windows so the cost is proportional to the prefix
// actually shared (vectorized string compares, no per-byte loop).
func commonPrefixLen(a, b string) int {
	n := min(len(a), len(b))
	lo := 0
	step := 64
	for lo < n {
		hi := min(lo+step, n)
		if a[lo:hi] == b[lo:hi] {
			lo = hi
			step *= 2
			continue
		}
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if a[lo:mid] == b[lo:mid] {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}
	return n
}

// fragment returns the memoized fragment parse for one stanza, consulting
// memory, then the durable tier, then the dialect parser. The in-memory
// sub-cache is keyed on the stanza's raw content digest directly — the
// domain-separated fragmentKey is derived only when the durable tier is
// actually consulted, which keeps the hot hit path to one hash per stanza.
func (c *ParseCache) fragment(st Stanza, digest [sha256.Size]byte) *Parsed {
	s := &c.fragShards[digest[0]%parseShards]
	s.mu.RLock()
	p := s.entries[digest]
	s.mu.RUnlock()
	if p != nil {
		c.fragHits.Inc()
		return p
	}
	fromDisk := false
	if box := c.fragStore.Load(); box != nil {
		if payload, ok := (*box).Get(fragmentKey(digest)); ok {
			if dp, err := decodeFragment(payload); err == nil {
				p = dp
				fromDisk = true
			}
		}
	}
	if p == nil {
		p = c.stanza.ParseFragment(st)
		if p == nil || p.Device == nil {
			return nil
		}
	}
	s.mu.Lock()
	if prev, ok := s.entries[digest]; ok {
		p = prev
		c.fragHits.Inc()
	} else {
		s.entries[digest] = p
		if fromDisk {
			c.fragDiskHits.Inc()
		} else {
			c.fragMisses.Inc()
		}
	}
	s.mu.Unlock()
	if !fromDisk {
		if box := c.fragStore.Load(); box != nil {
			if payload, err := encodeFragment(p); err == nil {
				// best-effort: a failed write is a future miss
				_ = (*box).Put(fragmentKey(digest), payload)
			}
		}
	}
	return p
}

// fragShard mirrors parseShard for the stanza sub-cache (a distinct type
// keeps the two maps' lock ordering trivially independent).
type fragShard struct {
	mu      sync.RWMutex
	entries map[[sha256.Size]byte]*Parsed
}

// stanzaFields groups the incremental-parse state added to ParseCache so
// the core cache stays readable.
type stanzaFields struct {
	stanza     *StanzaSupport
	fragShards [parseShards]fragShard
	fragStore  atomic.Pointer[BlobStore]

	// Split memo (see splitWithMemo): a small ring of recent splits that
	// prefix-sharing revisions resume from.
	memoMu   sync.Mutex
	memoRing [splitMemoSize]*splitMemo
	memoNext int

	fragHits     *obs.Counter
	fragMisses   *obs.Counter
	fragDiskHits *obs.Counter
}
