package netcfg

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// Parsed is one configuration revision's complete parse product: the IR
// device, the parser's own warnings, and the full syntax-check feed (parse
// warnings plus the dialect's lint pass). Keeping all three together lets a
// cache answer both "give me the device" and "is the syntax clean" from a
// single parse. The device is shared between callers and must be treated
// as immutable — every verifier in the suite reads the IR without
// modifying it.
type Parsed struct {
	Device        *Device
	ParseWarnings []ParseWarning
	CheckWarnings []ParseWarning
}

// ParseFunc parses one configuration revision into its Parsed product.
type ParseFunc func(text string) *Parsed

// ParseCache memoizes a ParseFunc keyed by the SHA-256 of the
// configuration text, so each revision of a config is parsed exactly once
// no matter how many verifier stages and repair iterations inspect it. It
// is safe for concurrent use; concurrent misses on the same revision may
// parse twice, but both results are identical and one wins.
type ParseCache struct {
	parse ParseFunc

	mu      sync.RWMutex
	entries map[[sha256.Size]byte]*Parsed
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewParseCache returns an empty cache over the given parser.
func NewParseCache(parse ParseFunc) *ParseCache {
	return &ParseCache{parse: parse, entries: map[[sha256.Size]byte]*Parsed{}}
}

// Parse returns the memoized parse product for the text, parsing on first
// sight of the revision.
func (c *ParseCache) Parse(text string) *Parsed {
	key := sha256.Sum256([]byte(text))
	c.mu.RLock()
	p := c.entries[key]
	c.mu.RUnlock()
	if p != nil {
		c.hits.Add(1)
		return p
	}
	p = c.parse(text)
	c.mu.Lock()
	if prev, ok := c.entries[key]; ok {
		// A concurrent miss beat us to it; keep the first result so every
		// caller shares one device.
		p = prev
		c.hits.Add(1)
	} else {
		c.entries[key] = p
		c.misses.Add(1)
	}
	c.mu.Unlock()
	return p
}

// Stats returns the hit/miss counters. Misses equal the number of distinct
// revisions parsed.
func (c *ParseCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached revisions.
func (c *ParseCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
